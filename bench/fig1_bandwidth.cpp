// Figure 1 regeneration: "Per-device bandwidth consumption" — the data
// series the iPhone display plots, for a scripted family evening. Also the
// per-protocol breakdown of one device (the paper's Figure 5 screenshot:
// "Bandwidth consumption per machine (left-hand side) and usage per protocol
// for 'Tom's Mac Air' (right-hand side)").
#include <cstdio>

#include "ui/bandwidth_monitor.hpp"
#include "workload/scenario.hpp"

using namespace hw;

int main() {
  std::printf("=== Figure 1: per-device per-protocol bandwidth ===\n\n");

  workload::HomeScenario::Config config;
  config.router.admission = homework::DeviceRegistry::AdmissionDefault::PermitAll;
  config.seed = 2011;
  workload::HomeScenario home(config);
  home.populate_standard_home();
  home.start();
  home.start_dhcp_all();
  if (!home.wait_all_bound()) {
    std::fprintf(stderr, "scenario failed to lease devices\n");
    return 1;
  }

  ui::BandwidthMonitor monitor(home.router().db(),
                               {.window_secs = 10, .refresh = kSecond});
  const std::vector<std::pair<const char*, const char*>> labels = {
      {"toms-mac-air", "Tom's Mac Air"},
      {"kates-phone", "Kate's phone"},
      {"living-room-tv", "Living-room TV"},
      {"kids-console", "Kids' console"},
      {"printer", "Printer"},
      {"network-artifact", "Network artifact"}};
  for (const auto& [name, label] : labels) {
    if (auto* d = home.device(name)) {
      monitor.set_label(d->host->mac().to_string(), label);
    }
  }

  home.start_apps_all();

  // Left-hand side: per-device series, one sample every 15 virtual seconds.
  std::printf("-- per-device bandwidth series (KB/s, 10 s window) --\n");
  std::printf("%8s", "t[s]");
  for (const auto& [_, label] : labels) std::printf(" %16s", label);
  std::printf("\n");
  for (int sample = 0; sample < 8; ++sample) {
    home.run_for(15 * kSecond);
    monitor.refresh();
    std::printf("%8llu",
                static_cast<unsigned long long>(home.loop().now() / kSecond));
    for (const auto& [name, label] : labels) {
      double rate = 0;
      for (const auto& d : monitor.devices()) {
        if (d.label == label) rate = d.total_bytes_per_sec;
      }
      std::printf(" %16.1f", rate / 1024.0);
    }
    std::printf("\n");
  }

  // Right-hand side: the per-protocol breakdown for Tom's Mac Air.
  monitor.refresh();
  std::printf("\n-- usage per protocol, Tom's Mac Air --\n");
  const std::string tom_mac =
      home.device("toms-mac-air")->host->mac().to_string();
  for (const auto& usage : monitor.device_breakdown(tom_mac)) {
    std::printf("  %-12s %10.1f KB/s\n", usage.app.c_str(),
                usage.bytes_per_sec / 1024.0);
  }

  // The demo's feedback loop: pause Tom's apps, show the visible drop.
  auto* tom = home.device("toms-mac-air");
  for (auto& app : tom->apps) app->stop();
  home.run_for(15 * kSecond);
  monitor.refresh();
  double tom_rate = 0;
  for (const auto& d : monitor.devices()) {
    if (d.device == tom_mac) tom_rate = d.total_bytes_per_sec;
  }
  std::printf("\n-- after Tom pauses his applications --\n");
  std::printf("  Tom's Mac Air: %.1f KB/s (was streaming above)\n",
              tom_rate / 1024.0);

  std::printf("\nshape checks: heaviest device is TV or laptop; pause -> ~0\n");
  home.stop_apps_all();
  return 0;
}
