// Live-operations plane bench: how much operator load a running fleet
// sustains. Two measurements (docs/liveops.md):
//
//  * subscription fan-out — S operator subscriptions (S in the ladder) over
//    a fleet advancing barrier by barrier; reports barriers/sec and delta
//    frames/sec the LiveServer pushed through its send hook, plus the mean
//    encoded frame size.
//  * mutation apply — wall-clock cost of submit -> barrier apply for a
//    quarantine/release toggle, measured per mutation over ~200 mutations;
//    reports p50/p99 wall microseconds.
//
// All virtual-time behaviour is deterministic per seed; wall_ms and the
// p50/p99 columns track the simulator's real cost.
//
// Emits BENCH_live_perf.json (path overridable with --out) for the CI
// artifact upload.
//
// Usage: live_perf [--smoke] [--homes N] [--seed S] [--subs 1,16,64]
//                  [--out PATH]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "live/server.hpp"
#include "telemetry/metrics.hpp"

using namespace hw;

namespace {

std::vector<std::size_t> parse_size_list(const char* arg) {
  std::vector<std::size_t> out;
  std::string item;
  for (const char* p = arg;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!item.empty()) out.push_back(std::strtoull(item.c_str(), nullptr, 10));
      item.clear();
      if (*p == '\0') break;
    } else {
      item.push_back(*p);
    }
  }
  return out;
}

double wall_ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

std::uint64_t percentile_us(std::vector<std::uint64_t> samples, double q) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(idx, samples.size() - 1)];
}

struct FanoutRow {
  std::size_t subs = 0;
  std::size_t barriers = 0;
  double wall_ms = 0.0;
  double barriers_per_sec = 0.0;
  std::uint64_t frames = 0;
  double frames_per_sec = 0.0;
  double mean_frame_bytes = 0.0;
};

live::LiveConfig fleet_config(std::size_t homes, std::uint64_t seed) {
  live::LiveConfig config;
  config.homes = homes;
  config.threads = 1;
  config.seed = seed;
  config.attack.kind = live::LiveAttack::Kind::DhcpFlood;
  config.attack.home = 0;
  return config;
}

/// Drives `barriers` pumps with S pattern-subscribed operators whose frames
/// land in a counting sink (no real socket: this measures server-side
/// sampling, delta encoding and flush, not loopback UDP).
FanoutRow run_fanout(std::size_t homes, std::uint64_t seed, std::size_t subs,
                     std::size_t barriers) {
  telemetry::MetricRegistry registry;
  telemetry::ScopedMetricRegistry scoped(registry);

  live::LiveFleet fleet(fleet_config(homes, seed), registry);
  fleet.start();

  std::uint64_t frames = 0;
  std::uint64_t frame_bytes = 0;
  live::LiveServer server(
      fleet,
      [&](live::ClientAddress, const Bytes& datagram) {
        ++frames;
        frame_bytes += datagram.size();
      },
      registry);

  for (std::size_t s = 0; s < subs; ++s) {
    hwdb::rpc::SubscribeSeriesRequest req;
    req.pattern = "*";
    // Mix fleet-merged and per-home subscriptions like a real operator wall.
    req.home = s % 2 == 0 ? hwdb::rpc::kAllHomes
                          : static_cast<std::uint32_t>(s % homes);
    const hwdb::rpc::Request wire{static_cast<std::uint32_t>(s + 1), req};
    const Bytes datagram = hwdb::rpc::encode(wire);
    server.handle_datagram(static_cast<live::ClientAddress>(s), datagram);
  }
  // Subscription responses counted so far are handshake, not stream traffic.
  frames = 0;
  frame_bytes = 0;

  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t b = 0; b < barriers; ++b) server.pump();
  const double wall_ms = wall_ms_since(t0);

  FanoutRow row;
  row.subs = subs;
  row.barriers = barriers;
  row.wall_ms = wall_ms;
  row.barriers_per_sec =
      wall_ms > 0.0 ? static_cast<double>(barriers) / (wall_ms / 1e3) : 0.0;
  row.frames = frames;
  row.frames_per_sec =
      wall_ms > 0.0 ? static_cast<double>(frames) / (wall_ms / 1e3) : 0.0;
  row.mean_frame_bytes =
      frames > 0 ? static_cast<double>(frame_bytes) / static_cast<double>(frames)
                 : 0.0;
  return row;
}

struct MutateRow {
  std::size_t mutations = 0;
  std::uint64_t p50_us = 0;
  std::uint64_t p99_us = 0;
  double wall_ms = 0.0;
};

/// Measures submit -> applied-barrier wall cost for a quarantine/release
/// toggle against the attacker's device, one mutation per barrier.
MutateRow run_mutations(std::size_t homes, std::uint64_t seed,
                        std::size_t count) {
  telemetry::MetricRegistry registry;
  telemetry::ScopedMetricRegistry scoped(registry);

  live::LiveFleet fleet(fleet_config(homes, seed), registry);
  fleet.start();
  fleet.advance_to(4 * kSecond);  // past boot, attack underway
  const std::string mac = fleet.device_mac(0, "guest");

  std::vector<std::uint64_t> samples;
  samples.reserve(count);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < count; ++i) {
    const auto m0 = std::chrono::steady_clock::now();
    fleet.submit(i % 2 == 0 ? live::quarantine(0, mac)
                            : live::release(0, mac));
    fleet.step();  // the barrier that ingests and applies the mutation
    samples.push_back(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - m0)
            .count()));
  }

  MutateRow row;
  row.mutations = count;
  row.p50_us = percentile_us(samples, 0.50);
  row.p99_us = percentile_us(samples, 0.99);
  row.wall_ms = wall_ms_since(t0);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::size_t homes = 8;
  std::uint64_t seed = 2011;
  std::vector<std::size_t> sub_ladder = {1, 16, 64};
  std::string out_path = "BENCH_live_perf.json";

  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--homes") == 0) {
      homes = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--subs") == 0) {
      sub_ladder = parse_size_list(next());
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_path = next();
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }
  if (smoke) homes = std::min<std::size_t>(homes, 4);
  const std::size_t barriers = smoke ? 24 : 120;    // 6s / 30s virtual
  const std::size_t mutation_count = smoke ? 60 : 200;

  std::printf("=== live_perf: %zu homes, seed %llu%s ===\n\n", homes,
              static_cast<unsigned long long>(seed), smoke ? " (smoke)" : "");

  std::printf("-- subscription fan-out (%zu barriers each) --\n", barriers);
  std::printf("%6s %10s %14s %10s %14s %14s\n", "subs", "wall_ms",
              "barriers/sec", "frames", "frames/sec", "frame_bytes");
  std::vector<FanoutRow> fanout;
  for (const std::size_t subs : sub_ladder) {
    fanout.push_back(run_fanout(homes, seed, subs, barriers));
    const FanoutRow& r = fanout.back();
    std::printf("%6zu %10.1f %14.1f %10llu %14.1f %14.1f\n", r.subs, r.wall_ms,
                r.barriers_per_sec, static_cast<unsigned long long>(r.frames),
                r.frames_per_sec, r.mean_frame_bytes);
  }

  std::printf("\n-- mutation apply (quarantine/release toggle) --\n");
  const MutateRow mut = run_mutations(homes, seed, mutation_count);
  std::printf("%zu mutations: p50 %llu us, p99 %llu us (%.1f ms total)\n",
              mut.mutations, static_cast<unsigned long long>(mut.p50_us),
              static_cast<unsigned long long>(mut.p99_us), mut.wall_ms);

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"live_perf\",\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"homes\": %zu,\n", homes);
  std::fprintf(out, "  \"fanout\": [\n");
  for (std::size_t i = 0; i < fanout.size(); ++i) {
    const FanoutRow& r = fanout[i];
    std::fprintf(out,
                 "    {\"subs\": %zu, \"barriers\": %zu, \"wall_ms\": %.1f, "
                 "\"barriers_per_sec\": %.1f, \"frames\": %llu, "
                 "\"frames_per_sec\": %.1f, \"mean_frame_bytes\": %.1f}%s\n",
                 r.subs, r.barriers, r.wall_ms, r.barriers_per_sec,
                 static_cast<unsigned long long>(r.frames), r.frames_per_sec,
                 r.mean_frame_bytes, i + 1 < fanout.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"mutation_apply\": {\"mutations\": %zu, \"p50_us\": %llu, "
               "\"p99_us\": %llu, \"wall_ms\": %.1f}\n",
               mut.mutations, static_cast<unsigned long long>(mut.p50_us),
               static_cast<unsigned long long>(mut.p99_us), mut.wall_ms);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
