// Figure 4 regeneration: the interactive policy interface. Compiles the
// paper's canonical cartoon policy, walks the schedule across the week, and
// drives the USB key insert/remove cycle, verifying the per-device network
// and DNS state flips at each step.
#include <cstdio>

#include "ui/policy_editor.hpp"
#include "workload/scenario.hpp"

using namespace hw;

namespace {

bool resolves(workload::HomeScenario& home, sim::Host& host,
              const std::string& name) {
  bool ok = false;
  host.resolve(name, [&](Result<Ipv4Address> r, const std::string&) {
    ok = r.ok();
  });
  home.run_for(4 * kSecond);
  return ok;
}

void advance_to(workload::HomeScenario& home, Duration day_offset) {
  const Duration into_day = home.loop().now() % kDay;
  Duration target = (home.loop().now() - into_day) + day_offset;
  if (target <= home.loop().now()) target += kDay;
  home.run_for(target - home.loop().now());
}

}  // namespace

int main() {
  std::printf("=== Figure 4: novel interactive policy interface ===\n\n");

  workload::HomeScenario::Config config;
  config.router.admission = homework::DeviceRegistry::AdmissionDefault::PermitAll;
  config.seed = 4;
  workload::HomeScenario home(config);
  home.populate_standard_home();
  home.start();
  home.start_dhcp_all();
  home.wait_all_bound();

  auto& console = *home.device("kids-console")->host;
  const std::string kids_mac = console.mac().to_string();

  // Panel selections → policy document ("the kids can only use Facebook on
  // weekdays after they've finished their homework").
  {
    homework::HttpRequest req;
    req.method = "PUT";
    req.path = "/api/devices/" + kids_mac + "/metadata";
    req.body = R"({"name": "Kids console", "tags": ["kids"]})";
    home.router().control_api().handle(req);
  }
  ui::PolicyEditor editor(home.router().control_api());
  const auto doc = editor.kids_facebook_weekdays_example();
  editor.submit(doc);
  std::printf("compiled policy '%s':\n%s\n\n", doc.id.c_str(),
              doc.to_json().dump(2).c_str());

  // Schedule sweep: the restriction only bites in the policy window.
  std::printf("-- schedule sweep (kids console) --\n");
  std::printf("%-22s %10s %10s\n", "virtual time", "facebook", "netflix");
  struct Probe {
    const char* label;
    Duration day_offset;
  };
  const Probe probes[] = {
      {"Mon 10:00 (school)", 10 * kHour},
      {"Mon 17:00 (policy)", 17 * kHour},
      {"Mon 22:00 (late)", 22 * kHour},
      {"Sat 17:00 (weekend)", 5 * kDay + 17 * kHour},
  };
  Timestamp base = home.loop().now() - home.loop().now() % kDay;
  for (const auto& probe : probes) {
    const Timestamp target = base + probe.day_offset;
    if (target > home.loop().now()) {
      home.run_for(target - home.loop().now());
    }
    const bool fb = resolves(home, console, "www.facebook.com");
    const bool nf = resolves(home, console, "video.netflix.com");
    std::printf("%-22s %10s %10s\n", probe.label, fb ? "allowed" : "blocked",
                nf ? "allowed" : "blocked");
  }

  // USB mediation cycle at Monday 17:00 next week.
  advance_to(home, 17 * kHour);
  // Make sure it's a weekday; epoch is Monday so day%7 in {0..4} is Mon-Fri.
  while (((home.loop().now() / kDay) % 7) > 4) home.run_for(kDay);

  std::printf("\n-- USB key mediation (weekday 17:00) --\n");
  auto state = [&](const char* phase) {
    const bool nf = resolves(home, console, "video.netflix.com");
    const auto& dns = home.router().dns().stats();
    std::printf("%-28s netflix=%-8s dns_blocked_total=%llu\n", phase,
                nf ? "allowed" : "blocked",
                static_cast<unsigned long long>(dns.blocked));
  };
  state("before key");
  const auto key = ui::PolicyEditor::make_unlock_key("parent-key");
  const Timestamp inserted_at = home.loop().now();
  const auto slot = home.router().policy().usb().insert(key);
  std::printf("  key recognised and policies suspended in %.3f ms (virtual)\n",
              static_cast<double>(home.loop().now() - inserted_at) / 1000.0);
  state("key inserted");
  home.router().policy().usb().remove(slot);
  state("key removed");

  // A forged key must not unlock.
  const auto forged = ui::PolicyEditor::make_unlock_key("kid-forgery");
  const auto forged_slot = home.router().policy().usb().insert(forged);
  state("forged key inserted");
  home.router().policy().usb().remove(forged_slot);

  std::printf("\nshape checks: blocked only in the Mon-Fri 16:00-21:00 window;"
              "\n  genuine key lifts, forged key does not; removal restores.\n");
  return 0;
}
