// hwdb performance: the quantitative claims behind the measurement plane
// (companion paper: Sventek et al., IM 2011). Insert throughput, query cost
// vs window size, aggregation cost, subscription fan-out, and the
// constant-memory steady state of the ephemeral tables.
#include <benchmark/benchmark.h>

#include "hwdb/database.hpp"
#include "telemetry/metrics.hpp"
#include "util/rand.hpp"

using namespace hw;
using namespace hw::hwdb;

namespace {

/// Reports insert latency percentiles from the database's registry
/// histogram — the same instrument MetricsExport publishes into hwdb.
void report_insert_latency(benchmark::State& state, const Database& db) {
  const telemetry::Histogram& h = db.insert_latency();
  state.counters["insert_p50_ns"] = h.percentile(0.50);
  state.counters["insert_p99_ns"] = h.percentile(0.99);
}

Schema flows_schema() {
  return Schema("Flows", {{"device", ColumnType::Text},
                          {"app", ColumnType::Text},
                          {"bytes", ColumnType::Int}});
}

/// Fills a table with `rows` entries spaced 1 ms apart ending at `end`.
void fill(Database& db, std::size_t rows, Rng& rng) {
  static const char* kApps[] = {"web", "dns", "streaming", "voip"};
  for (std::size_t i = 0; i < rows; ++i) {
    db.loop().run_for(kMillisecond);
    db.insert("Flows",
              {Value{"dev-" + std::to_string(rng.uniform(8))},
               Value{kApps[rng.uniform(4)]},
               Value{static_cast<std::int64_t>(rng.uniform(10000))}});
  }
}

void BM_Insert(benchmark::State& state) {
  sim::EventLoop loop;
  Database db(loop);
  (void)db.create_table(flows_schema(), 65536);
  Rng rng(1);
  std::int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db.insert("Flows", {Value{"dev"}, Value{"web"}, Value{i++}}));
  }
  state.SetItemsProcessed(state.iterations());
  report_insert_latency(state, db);
}
BENCHMARK(BM_Insert);

void BM_InsertEvicting(benchmark::State& state) {
  // Ring full: every insert also evicts — steady-state of a long-lived home.
  sim::EventLoop loop;
  Database db(loop);
  (void)db.create_table(flows_schema(), 1024);
  Rng rng(1);
  fill(db, 1024, rng);
  std::int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db.insert("Flows", {Value{"dev"}, Value{"web"}, Value{i++}}));
  }
  state.SetItemsProcessed(state.iterations());
  report_insert_latency(state, db);
}
BENCHMARK(BM_InsertEvicting);

void BM_QueryWindow(benchmark::State& state) {
  // Cost of a RANGE window scan vs window length (table holds ~60 s of
  // 1 kHz data; windows of 1/4/16/64 s).
  sim::EventLoop loop;
  Database db(loop);
  (void)db.create_table(flows_schema(), 65536);
  Rng rng(1);
  fill(db, 60000, rng);
  const std::string query = "SELECT * FROM Flows [RANGE " +
                            std::to_string(state.range(0)) + " SECONDS]";
  for (auto _ : state) {
    auto rs = db.query(query);
    benchmark::DoNotOptimize(rs);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QueryWindow)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_QueryRows(benchmark::State& state) {
  sim::EventLoop loop;
  Database db(loop);
  (void)db.create_table(flows_schema(), 65536);
  Rng rng(1);
  fill(db, 60000, rng);
  const std::string query =
      "SELECT * FROM Flows [ROWS " + std::to_string(state.range(0)) + "]";
  for (auto _ : state) {
    auto rs = db.query(query);
    benchmark::DoNotOptimize(rs);
  }
}
BENCHMARK(BM_QueryRows)->Arg(10)->Arg(100)->Arg(1000);

void BM_GroupByAggregate(benchmark::State& state) {
  // The Figure 1 display's query: per-device per-app sums over a window.
  sim::EventLoop loop;
  Database db(loop);
  (void)db.create_table(flows_schema(), 65536);
  Rng rng(1);
  fill(db, 60000, rng);
  const std::string query =
      "SELECT device, app, sum(bytes) FROM Flows [RANGE " +
      std::to_string(state.range(0)) +
      " SECONDS] GROUP BY device, app";
  for (auto _ : state) {
    auto rs = db.query(query);
    benchmark::DoNotOptimize(rs);
  }
}
BENCHMARK(BM_GroupByAggregate)->Arg(10)->Arg(60);

void BM_WherePredicate(benchmark::State& state) {
  sim::EventLoop loop;
  Database db(loop);
  (void)db.create_table(flows_schema(), 65536);
  Rng rng(1);
  fill(db, 20000, rng);
  for (auto _ : state) {
    auto rs = db.query(
        "SELECT * FROM Flows [RANGE 10 SECONDS] "
        "WHERE app = 'web' AND bytes > 5000");
    benchmark::DoNotOptimize(rs);
  }
}
BENCHMARK(BM_WherePredicate);

void BM_ParseQuery(benchmark::State& state) {
  for (auto _ : state) {
    auto q = parse_query(
        "SELECT device, app, sum(bytes), count(*) FROM Flows "
        "[RANGE 30 SECONDS] WHERE bytes > 100 AND (app = 'web' OR app = 'dns') "
        "GROUP BY device, app");
    benchmark::DoNotOptimize(q);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ParseQuery);

void BM_AsOfJoin(benchmark::State& state) {
  // The Figure-1-with-names query: join the Flows window against the Leases
  // history to label devices. Window of `arg` seconds at 1 kHz.
  sim::EventLoop loop;
  Database db(loop);
  (void)db.create_table(flows_schema(), 65536);
  (void)db.create_table(
      Schema("Leases", {{"mac", ColumnType::Text}, {"hostname", ColumnType::Text}}),
      256);
  Rng rng(1);
  for (int i = 0; i < 8; ++i) {
    db.insert("Leases", {Value{"dev-" + std::to_string(i)},
                         Value{"host-" + std::to_string(i)}});
  }
  fill(db, 30000, rng);
  const std::string query =
      "SELECT hostname, sum(bytes) FROM Flows [RANGE " +
      std::to_string(state.range(0)) +
      " SECONDS] JOIN Leases ON device = mac GROUP BY hostname";
  for (auto _ : state) {
    auto rs = db.query(query);
    benchmark::DoNotOptimize(rs);
  }
}
BENCHMARK(BM_AsOfJoin)->Arg(1)->Arg(10);

void BM_SubscriptionFanout(benchmark::State& state) {
  // Cost of one insert when N on-insert continuous queries are registered —
  // the paper's displays all subscribe to the same plane.
  sim::EventLoop loop;
  Database db(loop);
  (void)db.create_table(flows_schema(), 4096);
  const int subscribers = static_cast<int>(state.range(0));
  for (int i = 0; i < subscribers; ++i) {
    (void)db.subscribe("SELECT device, sum(bytes) FROM Flows [ROWS 64] "
                       "GROUP BY device",
                       SubscriptionMode::OnInsert, 0,
                       [](SubscriptionId, const ResultSet&) {});
  }
  std::int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db.insert("Flows", {Value{"dev"}, Value{"web"}, Value{i++}}));
  }
  state.SetItemsProcessed(state.iterations());
  report_insert_latency(state, db);
}
BENCHMARK(BM_SubscriptionFanout)->Arg(0)->Arg(1)->Arg(4)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
