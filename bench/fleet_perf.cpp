// Fleet-scale performance sweep: runs the same fleet (same fleet seed, same
// homes) across a ladder of worker-pool sizes and reports homes/sec,
// frames/sec and the speedup over the single-threaded run. Also re-checks
// the fleet determinism contract the hard way: the merged non-histogram
// telemetry must be bit-identical at every pool size.
//
// Emits BENCH_fleet_perf.json (path overridable with --out) for the CI
// artifact upload.
//
// Usage: fleet_perf [--smoke] [--chaos] [--list] [--homes N] [--seed S]
//                   [--duration-secs D] [--devices N] [--threads 1,2,4,8]
//                   [--out PATH]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "fleet/fleet.hpp"

using namespace hw;

namespace {

std::vector<std::size_t> parse_thread_list(const char* arg) {
  std::vector<std::size_t> out;
  std::string item;
  for (const char* p = arg;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!item.empty()) out.push_back(std::strtoull(item.c_str(), nullptr, 10));
      item.clear();
      if (*p == '\0') break;
    } else {
      item.push_back(*p);
    }
  }
  return out;
}

struct RunRow {
  std::size_t threads = 0;
  double wall_ms = 0.0;
  double homes_per_sec = 0.0;
  double frames_per_sec = 0.0;
  double speedup = 1.0;
  std::size_t homes_ok = 0;
  std::uint64_t total_frames = 0;
};

}  // namespace

int main(int argc, char** argv) {
  fleet::FleetConfig config;
  config.homes = 1000;
  config.seed = 2011;
  config.duration = 10 * kSecond;
  config.devices_per_home = 3;
  config.run_apps = true;
  config.chaos = false;
  std::vector<std::size_t> thread_ladder = {1, 2, 4, 8};
  std::string out_path = "BENCH_fleet_perf.json";

  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (std::strcmp(argv[i], "--smoke") == 0) {
      config.homes = 64;
      config.duration = 5 * kSecond;
    } else if (std::strcmp(argv[i], "--chaos") == 0) {
      config.chaos = true;
      config.duration = 30 * kSecond;
    } else if (std::strcmp(argv[i], "--homes") == 0) {
      config.homes = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      config.seed = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--duration-secs") == 0) {
      config.duration = std::strtoull(next(), nullptr, 10) * kSecond;
    } else if (std::strcmp(argv[i], "--devices") == 0) {
      config.devices_per_home = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      thread_ladder = parse_thread_list(next());
    } else if (std::strcmp(argv[i], "--list") == 0) {
      std::printf("baseline   DHCP + DNS + periodic traffic per seeded home "
                  "(default)\n"
                  "apps       baseline plus per-device application mixes "
                  "(Web/Streaming/VoIP/Gaming/Bulk/Email)\n"
                  "chaos      apps plus fault injection: crash-restart, "
                  "link flaps, lease storms (--chaos)\n");
      return 0;
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_path = next();
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }

  const unsigned hw_threads = std::max(1u, std::thread::hardware_concurrency());
  std::printf("=== fleet_perf: %zu homes, seed %llu, %.0fs virtual each, "
              "%zu devices/home, chaos %s (%u hardware threads) ===\n\n",
              config.homes, static_cast<unsigned long long>(config.seed),
              to_seconds(config.duration), config.devices_per_home,
              config.chaos ? "on" : "off", hw_threads);
  std::printf("%8s %12s %12s %14s %10s %9s\n", "threads", "wall_ms",
              "homes/sec", "frames/sec", "speedup", "homes_ok");

  std::vector<RunRow> rows;
  std::map<std::string, double> reference_totals;
  bool deterministic = true;
  double wall_ms_at_1 = 0.0;

  for (const std::size_t threads : thread_ladder) {
    config.threads = threads;
    const fleet::FleetResult result = fleet::FleetRunner(config).run();

    RunRow row;
    row.threads = result.threads_used;
    row.wall_ms = result.wall_ms;
    row.homes_per_sec = result.homes_per_sec();
    row.frames_per_sec = result.frames_per_sec();
    row.homes_ok = result.homes_ok;
    row.total_frames = result.total_frames;
    if (threads == thread_ladder.front()) wall_ms_at_1 = result.wall_ms;
    row.speedup = result.wall_ms > 0.0 ? wall_ms_at_1 / result.wall_ms : 0.0;
    rows.push_back(row);

    if (reference_totals.empty()) {
      reference_totals = result.scalar_totals;
    } else if (result.scalar_totals != reference_totals) {
      deterministic = false;
    }

    std::printf("%8zu %12.1f %12.1f %14.1f %9.2fx %9zu\n", row.threads,
                row.wall_ms, row.homes_per_sec, row.frames_per_sec, row.speedup,
                row.homes_ok);
  }

  std::printf("\nmerged telemetry identical across pool sizes: %s\n",
              deterministic ? "yes" : "NO — DETERMINISM VIOLATION");

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"fleet_perf\",\n");
  std::fprintf(out, "  \"fleet_seed\": %llu,\n",
               static_cast<unsigned long long>(config.seed));
  std::fprintf(out, "  \"homes\": %zu,\n", config.homes);
  std::fprintf(out, "  \"devices_per_home\": %zu,\n", config.devices_per_home);
  std::fprintf(out, "  \"virtual_duration_s\": %.3f,\n",
               to_seconds(config.duration));
  std::fprintf(out, "  \"chaos\": %s,\n", config.chaos ? "true" : "false");
  std::fprintf(out, "  \"hardware_threads\": %u,\n", hw_threads);
  std::fprintf(out, "  \"deterministic_across_threads\": %s,\n",
               deterministic ? "true" : "false");
  std::fprintf(out, "  \"runs\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const RunRow& r = rows[i];
    std::fprintf(out,
                 "    {\"threads\": %zu, \"wall_ms\": %.3f, "
                 "\"homes_per_sec\": %.3f, \"frames_per_sec\": %.3f, "
                 "\"speedup_vs_first\": %.3f, \"homes_ok\": %zu, "
                 "\"total_frames\": %llu}%s\n",
                 r.threads, r.wall_ms, r.homes_per_sec, r.frames_per_sec,
                 r.speedup, r.homes_ok,
                 static_cast<unsigned long long>(r.total_frames),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  return deterministic ? 0 : 1;
}
