// Figure 2 regeneration: the network artifact's three modes as data series —
// LED frames against scripted stimuli (coverage walk, bandwidth ramp, DHCP
// event timeline with a retry storm).
#include <cstdio>

#include "ui/artifact.hpp"
#include "workload/scenario.hpp"

using namespace hw;

int main() {
  std::printf("=== Figure 2: the network artifact ===\n\n");

  workload::HomeScenario::Config config;
  config.router.admission = homework::DeviceRegistry::AdmissionDefault::PermitAll;
  config.seed = 2;
  workload::HomeScenario home(config);
  home.populate_standard_home();
  home.start();
  home.start_dhcp_all();
  home.wait_all_bound();

  auto* carrier = home.device("network-artifact");
  ui::NetworkArtifact artifact(
      home.router().db(),
      {.led_count = 12, .own_mac = carrier->host->mac().to_string()});

  // -- Mode 1: RSSI → number of lit LEDs, walking away from the AP.
  std::printf("-- mode 1: signal strength (walk away from the AP) --\n");
  std::printf("%10s %10s %6s  %s\n", "dist[m]", "rssi[dBm]", "lit", "LEDs");
  artifact.set_mode(ui::ArtifactMode::SignalStrength);
  for (int step = 0; step <= 10; ++step) {
    const double d = 1.0 + step * 4.0;
    home.router().move_device(carrier->host->mac(),
                              sim::Position{5 + d, 5});
    home.run_for(2 * kSecond);
    auto rssi = home.router().wireless().sample_rssi(carrier->host->mac());
    auto frame = artifact.render();
    const auto lit = std::count_if(frame.begin(), frame.end(),
                                   [](ui::LedColor c) { return !(c == ui::kLedOff); });
    std::printf("%10.0f %10.1f %6zd  [%s]\n", d, rssi.value_or(-100),
                static_cast<std::ptrdiff_t>(lit),
                ui::NetworkArtifact::to_string(frame).c_str());
  }

  // -- Mode 2: bandwidth proportion → animation speed.
  std::printf("\n-- mode 2: bandwidth -> animation speed --\n");
  std::printf("%12s %14s %16s\n", "phase", "load[KB/s]", "anim[steps/s]");
  artifact.set_mode(ui::ArtifactMode::Bandwidth);
  auto measure_speed = [&](const char* phase) {
    // Current total vs peak, mapped through the artifact's speed function.
    auto rs = home.router().db().query(
        "SELECT sum(bytes) FROM Flows [RANGE 10 SECONDS] GROUP BY app");
    double current = 0;
    if (rs.ok()) {
      for (const auto& row : rs.value().rows) current += row[0].as_real();
    }
    current /= 10.0;
    auto peak_rs = home.router().db().query(
        "SELECT max(bytes) FROM Flows [RANGE 86400 SECONDS] GROUP BY device");
    double peak = 1;
    if (peak_rs.ok()) {
      for (const auto& row : peak_rs.value().rows) {
        peak = std::max(peak, row[0].as_real());
      }
    }
    const double proportion = std::min(current / peak, 1.0);
    std::printf("%12s %14.1f %16.2f\n", phase, current / 1024.0,
                artifact.animation_speed(proportion) * 12);
  };
  home.run_for(5 * kSecond);
  measure_speed("idle");
  home.start_apps_all();
  home.run_for(20 * kSecond);
  measure_speed("evening");
  home.device("living-room-tv")->apps.front()->stop();
  home.run_for(15 * kSecond);
  measure_speed("tv-off");
  home.stop_apps_all();

  // -- Mode 3: DHCP lease events and retry storms as flash timeline.
  std::printf("\n-- mode 3: event flashes --\n");
  artifact.set_mode(ui::ArtifactMode::Events);
  auto show = [&](const char* event) {
    auto frame = artifact.render();
    std::printf("  %-24s [%s]\n", event,
                ui::NetworkArtifact::to_string(frame).c_str());
  };
  show("baseline");

  const auto idx = home.add_device({"guest-phone", workload::DeviceKind::Phone,
                                    sim::Position{9, 2}});
  auto& guest = *home.devices()[idx].host;
  guest.start_dhcp();
  home.run_for(2 * kSecond);
  show("guest lease granted");
  for (int i = 0; i < 2; ++i) show("  (flash continues)");
  guest.release_dhcp();
  home.run_for(2 * kSecond);
  show("guest lease released");
  for (int i = 0; i < 2; ++i) show("  (flash continues)");
  show("after flashes drain");

  std::printf("\nshape checks: lit count falls monotonically-ish with distance;"
              "\n  animation speeds: idle < evening, tv-off < evening;"
              "\n  grant flashes G, release flashes B.\n");
  return 0;
}
