// Shared-controller fan-out bench: one controller event loop serving N home
// datapaths over framed stream channels. Measures flow-setup throughput and
// the wall-clock fan-out latency from a device's first packet of a new flow
// to the first FlowMod landing back in its datapath — with all N homes
// demanding setup at the same virtual instant, so the tail shows how the
// controller's serial dispatch stretches as the fleet grows.
//
// Emits BENCH_ctrl_fanout.json (path overridable with --out) for the CI
// artifact upload.
//
// Usage: ctrl_fanout [--smoke] [--rounds R] [--fleet 1,16,128] [--seed S]
//                    [--out PATH]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "homework/device_registry.hpp"
#include "homework/dhcp_server.hpp"
#include "homework/dns_proxy.hpp"
#include "homework/forwarding.hpp"
#include "nox/controller.hpp"
#include "openflow/datapath.hpp"
#include "openflow/stream_channel.hpp"
#include "policy/engine.hpp"
#include "sim/event_loop.hpp"
#include "sim/host.hpp"
#include "sim/link.hpp"
#include "util/rand.hpp"

using namespace hw;

namespace {

using Clock = std::chrono::steady_clock;

std::vector<std::size_t> parse_size_list(const char* arg) {
  std::vector<std::size_t> out;
  std::string item;
  for (const char* p = arg;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!item.empty()) out.push_back(std::strtoull(item.c_str(), nullptr, 10));
      item.clear();
      if (*p == '\0') break;
    } else {
      item.push_back(*p);
    }
  }
  return out;
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

struct RunRow {
  std::size_t datapaths = 0;
  std::size_t flow_setups = 0;
  double throughput_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double wall_ms = 0.0;
};

/// One home on the shared loop: a datapath behind a framed stream channel
/// with two directly-attached devices.
struct Home {
  std::uint64_t dpid = 0;
  std::unique_ptr<Rng> rng;
  std::unique_ptr<ofp::Datapath> datapath;
  std::unique_ptr<ofp::StreamConnection> conn;
  std::vector<std::unique_ptr<sim::Host>> hosts;
  std::vector<std::unique_ptr<sim::DuplexLink>> links;
  Clock::time_point sent_at{};
  bool pending = false;
};

RunRow run_fanout(std::size_t n_datapaths, int rounds, std::uint64_t seed) {
  telemetry::MetricRegistry registry;
  telemetry::ScopedMetricRegistry scoped(registry);
  sim::EventLoop loop;

  homework::DeviceRegistry devices(
      homework::DeviceRegistry::AdmissionDefault::PermitAll);
  policy::PolicyEngine policy([&loop] { return loop.now(); });
  nox::Controller controller(loop, registry);
  controller.add_component(std::make_unique<homework::DhcpServer>(
      homework::DhcpServer::Config{}, devices));
  controller.add_component(std::make_unique<homework::DnsProxy>(
      homework::DnsProxy::Config{}, devices, policy));
  controller.add_component(std::make_unique<homework::Forwarding>(
      homework::Forwarding::Config{}, devices, policy));
  controller.start();

  std::deque<Home> homes;
  std::vector<double> latencies_us;
  for (std::size_t h = 0; h < n_datapaths; ++h) {
    Home home;
    home.dpid = h + 1;
    std::uint64_t mix = seed ^ (h + 1);
    home.rng = std::make_unique<Rng>(splitmix64(mix));
    ofp::Datapath::Config dp_config;
    dp_config.datapath_id = home.dpid;
    home.datapath = std::make_unique<ofp::Datapath>(loop, dp_config, registry);
    home.conn = std::make_unique<ofp::StreamConnection>(
        loop, ofp::StreamConnection::Config{}, home.rng.get());
    for (std::size_t i = 0; i < 2; ++i) {
      sim::Host::Config host_config;
      host_config.name = "dev" + std::to_string(i);
      host_config.mac =
          MacAddress::from_index(1 + static_cast<std::uint32_t>(i));
      home.hosts.push_back(
          std::make_unique<sim::Host>(loop, host_config, *home.rng));
      home.links.push_back(std::make_unique<sim::DuplexLink>(
          loop, sim::LinkChannel::Config{}, home.rng.get()));
      const auto port = static_cast<std::uint16_t>(2 + i);
      home.datapath->add_port(port, "port" + std::to_string(port),
                              MacAddress::from_index(0xfff000u + port),
                              &home.links.back()->b_to_a());
      home.links.back()->b_to_a().connect(home.hosts.back().get());
      home.links.back()->a_to_b().connect(home.datapath->ingress(port));
      home.hosts.back()->attach_uplink(&home.links.back()->a_to_b());
    }
    home.datapath->connect(home.conn->datapath_end());
    controller.connect_datapath(home.conn->controller_end());
    homes.push_back(std::move(home));
  }
  for (Home& home : homes) {
    Home* slot = &home;
    home.datapath->set_flow_mod_observer([slot, &latencies_us](
                                             const ofp::FlowMod& mod) {
      if (!slot->pending || mod.command != ofp::FlowModCommand::Add) return;
      slot->pending = false;
      latencies_us.push_back(std::chrono::duration<double, std::micro>(
                                 Clock::now() - slot->sent_at)
                                 .count());
    });
  }

  // Bind every device (staggered inside each home, same schedule across
  // homes), then let the handshake and leases settle.
  for (Home& home : homes) {
    for (std::size_t i = 0; i < home.hosts.size(); ++i) {
      sim::Host* host = home.hosts[i].get();
      loop.schedule_at(10 * kMillisecond +
                           static_cast<Duration>(i + 1) * 50 * kMillisecond,
                       [host] { host->start_dhcp(); });
    }
  }
  loop.run_until(kSecond);
  for (const Home& home : homes) {
    for (const auto& host : home.hosts) {
      if (!host->ip()) {
        std::fprintf(stderr, "dpid %llu: device failed to bind\n",
                     static_cast<unsigned long long>(home.dpid));
        std::exit(1);
      }
    }
  }

  // Measurement: every round, device 0 of EVERY home opens a brand-new flow
  // (fresh dport) at the same virtual instant; the controller grinds through
  // the resulting packet-in burst serially.
  const Clock::time_point wall_start = Clock::now();
  std::size_t flow_setups = 0;
  for (int round = 0; round < rounds; ++round) {
    const Timestamp at = kSecond + (static_cast<Timestamp>(round) + 1) *
                                       100 * kMillisecond;
    const auto dport = static_cast<std::uint16_t>(10000 + round);
    for (Home& home : homes) {
      Home* slot = &home;
      sim::Host* sender = home.hosts.front().get();
      const Ipv4Address peer = home.hosts.back()->ip().value();
      loop.schedule_at(at, [slot, sender, peer, dport] {
        slot->pending = true;
        slot->sent_at = Clock::now();
        (void)sender->send_udp(peer, 40000, dport, 64);
      });
    }
    loop.run_until(at + 90 * kMillisecond);
    for (Home& home : homes) {
      if (home.pending) {
        std::fprintf(stderr, "dpid %llu: flow setup lost in round %d\n",
                     static_cast<unsigned long long>(home.dpid), round);
        std::exit(1);
      }
      ++flow_setups;
    }
  }
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             Clock::now() - wall_start)
                             .count();

  std::sort(latencies_us.begin(), latencies_us.end());
  RunRow row;
  row.datapaths = n_datapaths;
  row.flow_setups = flow_setups;
  row.throughput_per_sec =
      wall_ms > 0.0 ? static_cast<double>(flow_setups) * 1e3 / wall_ms : 0.0;
  row.p50_us = percentile(latencies_us, 0.50);
  row.p99_us = percentile(latencies_us, 0.99);
  row.wall_ms = wall_ms;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  int rounds = 50;
  std::uint64_t seed = 2011;
  std::vector<std::size_t> fleet_ladder = {1, 16, 128};
  std::string out_path = "BENCH_ctrl_fanout.json";
  bool smoke = false;

  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      rounds = 5;
    } else if (std::strcmp(argv[i], "--rounds") == 0) {
      rounds = static_cast<int>(std::strtol(next(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--fleet") == 0) {
      fleet_ladder = parse_size_list(next());
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_path = next();
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }

  std::printf("=== ctrl_fanout: one controller, N framed datapaths, "
              "%d flow-setup rounds, seed %llu ===\n\n",
              rounds, static_cast<unsigned long long>(seed));
  std::printf("%10s %12s %16s %12s %12s %10s\n", "datapaths", "setups",
              "setups/sec", "p50_us", "p99_us", "wall_ms");

  std::vector<RunRow> rows;
  for (const std::size_t n : fleet_ladder) {
    rows.push_back(run_fanout(n, rounds, seed));
    const RunRow& r = rows.back();
    std::printf("%10zu %12zu %16.1f %12.1f %12.1f %10.1f\n", r.datapaths,
                r.flow_setups, r.throughput_per_sec, r.p50_us, r.p99_us,
                r.wall_ms);
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"ctrl_fanout\",\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"rounds\": %d,\n", rounds);
  std::fprintf(out, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(seed));
  std::fprintf(out, "  \"runs\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const RunRow& r = rows[i];
    std::fprintf(out,
                 "    {\"datapaths\": %zu, \"flow_setups\": %zu, "
                 "\"throughput_per_sec\": %.3f, \"fanout_p50_us\": %.3f, "
                 "\"fanout_p99_us\": %.3f, \"wall_ms\": %.3f}%s\n",
                 r.datapaths, r.flow_setups, r.throughput_per_sec, r.p50_us,
                 r.p99_us, r.wall_ms, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
