// Resync strategy cost sweep: at a ladder of table sizes and divergence
// fractions, compares the blind replay-resync (wipe the owned namespace,
// re-send every desired flow: 1 + N FlowMods regardless of what actually
// changed) against the reconciler's diff-based round (FlowMods proportional
// to the divergence). Measures both the FlowMod counts on the wire and the
// controller-side compute cost of producing them.
//
// The invariant the numbers must show — and this binary enforces with a
// non-zero exit — is that the diff-based resync sends strictly fewer
// FlowMods than full replay at every divergence fraction up to and
// including 100% (even a fully diverged table beats replay by the
// delete-all mod, and partially diverged tables beat it by the whole
// untouched remainder).
//
// Emits BENCH_reconcile_perf.json (path overridable with --out) for the CI
// artifact upload.
//
// Usage: reconcile_perf [--smoke] [--reps N] [--out PATH]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "openflow/actions.hpp"
#include "openflow/match.hpp"
#include "reconcile/actual_state.hpp"
#include "reconcile/desired_state.hpp"
#include "util/rand.hpp"

using namespace hw;

namespace {

struct Row {
  std::size_t rules = 0;
  int divergence_pct = 0;
  std::size_t diverged_rows = 0;
  std::size_t replay_flowmods = 0;  // 1 delete-all + rules adds
  std::size_t diff_flowmods = 0;    // delta.mods()
  double replay_us = 0.0;           // build the full replay FlowMod list
  double diff_us = 0.0;             // readback mirror + compute_flow_delta
};

double us_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// N desired flows shaped like the real population: a few wildcarded
/// service intercepts plus per-address drop/steer rules.
reconcile::DesiredState make_desired(std::size_t rules) {
  reconcile::DesiredState desired;
  for (std::size_t i = 0; i < rules; ++i) {
    reconcile::DesiredFlow f;
    f.key = "bench:" + std::to_string(i);
    f.match = ofp::Match::any();
    f.match.with_dl_type(0x0800).with_nw_dst(Ipv4Address{
        10, static_cast<std::uint8_t>((i >> 16) & 0xff),
        static_cast<std::uint8_t>((i >> 8) & 0xff),
        static_cast<std::uint8_t>(i & 0xff)});
    f.priority = static_cast<std::uint16_t>(0x8000 + (i & 0x0f));
    f.actions = (i % 3 == 0) ? ofp::drop()
                             : ofp::output_to(static_cast<std::uint16_t>(
                                   1 + (i % 4)));
    desired.put_flow(std::move(f));
  }
  return desired;
}

/// The actual table after `pct`% of the rows diverged: a third of the
/// diverged rows vanished, a third drifted their actions, a third drifted a
/// timeout (the delete+add case). 100% is the cold-restart shape — the
/// datapath lost its whole table, so every row is missing rather than
/// drifted in place (a restart does not rewrite rows, it erases them).
std::vector<reconcile::ActualFlow> make_actual(
    const reconcile::DesiredState& desired, int pct, Rng& rng,
    std::size_t* diverged_out) {
  if (pct >= 100) {
    *diverged_out = desired.flows.size();
    return {};
  }
  std::vector<reconcile::ActualFlow> actual;
  std::size_t diverged = 0;
  for (const auto& [key, f] : desired.flows) {
    const bool diverge = rng.uniform(100) < static_cast<std::uint64_t>(pct);
    if (diverge) {
      ++diverged;
      const std::uint64_t kind = rng.uniform(3);
      if (kind == 0) continue;  // row missing entirely
      reconcile::ActualFlow a;
      a.match = f.match;
      a.priority = f.priority;
      a.cookie = f.cookie();
      a.actions = kind == 1 ? ofp::output_to(7) : f.actions;
      a.idle_timeout =
          kind == 2 ? static_cast<std::uint16_t>(f.idle_timeout + 30)
                    : f.idle_timeout;
      a.hard_timeout = f.hard_timeout;
      actual.push_back(std::move(a));
    } else {
      reconcile::ActualFlow a;
      a.match = f.match;
      a.priority = f.priority;
      a.cookie = f.cookie();
      a.actions = f.actions;
      a.idle_timeout = f.idle_timeout;
      a.hard_timeout = f.hard_timeout;
      actual.push_back(std::move(a));
    }
  }
  *diverged_out = diverged;
  return actual;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::size_t> rule_counts = {10, 1000, 10000};
  const std::vector<int> divergences = {0, 10, 100};
  std::size_t reps = 5;
  std::string out_path = "BENCH_reconcile_perf.json";

  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (std::strcmp(argv[i], "--smoke") == 0) {
      rule_counts = {10, 100, 1000};
      reps = 2;
    } else if (std::strcmp(argv[i], "--reps") == 0) {
      reps = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_path = next();
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }

  std::printf("=== reconcile_perf: replay vs diff resync, %zu reps ===\n\n",
              reps);
  std::printf("%8s %6s %9s %12s %12s %10s %10s\n", "rules", "div%", "diverged",
              "replay_mods", "diff_mods", "replay_us", "diff_us");

  std::vector<Row> rows;
  bool diff_always_fewer = true;
  for (const std::size_t rules : rule_counts) {
    const reconcile::DesiredState desired = make_desired(rules);
    for (const int pct : divergences) {
      Rng rng(2011 + static_cast<std::uint64_t>(pct));
      Row row;
      row.rules = rules;
      row.divergence_pct = pct;
      const std::vector<reconcile::ActualFlow> actual =
          make_actual(desired, pct, rng, &row.diverged_rows);

      // Replay: one delete-all over the owned cookie namespace, then every
      // desired flow as an Add — the legacy resync's wire cost. The timed
      // work is materializing the full FlowMod list.
      for (std::size_t r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        std::vector<reconcile::DesiredFlow> replay;
        replay.reserve(desired.flows.size());
        for (const auto& [key, f] : desired.flows) replay.push_back(f);
        const double us = us_since(t0);
        if (r == 0 || us < row.replay_us) row.replay_us = us;
        row.replay_flowmods = 1 + replay.size();
      }

      // Diff: refresh the mirror from the (already parsed) readback and
      // compute the minimal delta — the reconciler's per-round compute.
      for (std::size_t r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        const reconcile::FlowDelta delta =
            reconcile::compute_flow_delta(desired, actual);
        const double us = us_since(t0);
        if (r == 0 || us < row.diff_us) row.diff_us = us;
        row.diff_flowmods = delta.mods();
      }

      if (row.diff_flowmods >= row.replay_flowmods) diff_always_fewer = false;
      std::printf("%8zu %6d %9zu %12zu %12zu %10.1f %10.1f\n", row.rules,
                  row.divergence_pct, row.diverged_rows, row.replay_flowmods,
                  row.diff_flowmods, row.replay_us, row.diff_us);
      rows.push_back(row);
    }
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"reconcile_perf\",\n");
  std::fprintf(out, "  \"reps\": %zu,\n", reps);
  std::fprintf(out, "  \"diff_always_fewer\": %s,\n",
               diff_always_fewer ? "true" : "false");
  std::fprintf(out, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out,
                 "    {\"rules\": %zu, \"divergence_pct\": %d, "
                 "\"diverged_rows\": %zu, \"replay_flowmods\": %zu, "
                 "\"diff_flowmods\": %zu, \"replay_us\": %.1f, "
                 "\"diff_us\": %.1f}%s\n",
                 r.rules, r.divergence_pct, r.diverged_rows, r.replay_flowmods,
                 r.diff_flowmods, r.replay_us, r.diff_us,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path.c_str());

  if (!diff_always_fewer) {
    std::fprintf(stderr,
                 "FAIL: diff-based resync did not beat full replay on every "
                 "row\n");
    return 1;
  }
  return 0;
}
