// Adversarial scenario bench: runs the five seeded hostile workloads
// (ROADMAP item 5) end to end, reporting the attack throughput each one
// sustained (hostile events per virtual second) and the recovery-latency
// p50/p99 the platform delivered — virtual-time samples, so the latency
// columns are deterministic per seed while wall_ms tracks the simulator's
// real cost.
//
// Every invariant of every scenario must hold; any failure prints the
// scenario's verdict block and exits non-zero, so CI smoke doubles as a
// correctness gate on the attack suite.
//
// Emits BENCH_scenario_perf.json (path overridable with --out) for the CI
// artifact upload.
//
// Usage: scenario_perf [--smoke] [--list] [--out PATH]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "scenario/dhcp_starvation.hpp"
#include "scenario/guest_churn.hpp"
#include "scenario/iot_swarm.hpp"
#include "scenario/roaming.hpp"
#include "scenario/table_exhaustion.hpp"
#include "telemetry/metrics.hpp"

using namespace hw;

namespace {

struct Row {
  std::string name;
  bool ok = false;
  std::uint64_t attack_events = 0;
  double attack_rate = 0.0;  // hostile events / virtual attack second
  double wall_ms = 0.0;
  std::uint64_t recovery_samples = 0;
  std::uint64_t recovery_p50_us = 0;
  std::uint64_t recovery_p99_us = 0;
  std::size_t invariants = 0;
};

/// Runs one scenario under a fresh registry (so scenario runs never bleed
/// counters into each other) and flattens its report into a bench row.
Row run_one(scenario::Scenario& s) {
  const auto t0 = std::chrono::steady_clock::now();
  const scenario::Report report = s.run();
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();

  Row row;
  row.name = report.scenario;
  row.ok = report.ok();
  row.attack_events = report.attack_events;
  row.attack_rate = report.attack_rate();
  row.wall_ms = wall_ms;
  row.recovery_samples = report.recovery_samples.size();
  row.recovery_p50_us = static_cast<std::uint64_t>(report.recovery_p50());
  row.recovery_p99_us = static_cast<std::uint64_t>(report.recovery_p99());
  row.invariants = report.invariants.size();
  if (!row.ok) {
    std::fprintf(stderr, "\n%s\n", report.to_string().c_str());
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_scenario_perf.json";

  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--list") == 0) {
      std::printf("dhcp_starvation    MAC-rotating DISCOVER flood against the "
                  "DHCP scope\n"
                  "table_exhaustion   flow-table fill attack with eviction "
                  "pressure\n"
                  "iot_swarm          hundreds of chatty IoT devices joining "
                  "at once\n"
                  "guest_churn        guest admit/expel churn mid-crowd\n"
                  "roaming            device roams across homes; differential "
                  "thread-count pair\n");
      return 0;
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_path = next();
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }

  std::printf("=== scenario_perf: adversarial workload suite%s ===\n\n",
              smoke ? " (smoke)" : "");
  std::printf("%-18s %3s %10s %12s %9s %8s %10s %10s\n", "scenario", "ok",
              "events", "events/s", "wall_ms", "samples", "p50_us", "p99_us");

  std::vector<Row> rows;
  const auto bench = [&rows](auto make) {
    telemetry::MetricRegistry registry;
    telemetry::ScopedMetricRegistry scoped(registry);
    auto s = make();
    rows.push_back(run_one(*s));
    const Row& r = rows.back();
    std::printf("%-18s %3s %10llu %12.1f %9.1f %8llu %10llu %10llu\n",
                r.name.c_str(), r.ok ? "yes" : "NO",
                static_cast<unsigned long long>(r.attack_events), r.attack_rate,
                r.wall_ms, static_cast<unsigned long long>(r.recovery_samples),
                static_cast<unsigned long long>(r.recovery_p50_us),
                static_cast<unsigned long long>(r.recovery_p99_us));
  };

  bench([] {
    return std::make_unique<scenario::DhcpStarvationScenario>(
        scenario::Scenario::Config{});
  });
  bench([] { return std::make_unique<scenario::TableExhaustionScenario>(); });
  bench([smoke = smoke] {
    scenario::IotSwarmScenario::Params params;
    if (smoke) params.devices = 60;  // same shape, a third of the event load
    return std::make_unique<scenario::IotSwarmScenario>(
        scenario::IotSwarmScenario::default_config(), params);
  });
  bench([] { return std::make_unique<scenario::GuestChurnScenario>(); });
  bench([smoke = smoke] {
    scenario::RoamingScenario::Params params;
    if (smoke) params.thread_counts = {1, 2};  // still a differential pair
    return std::make_unique<scenario::RoamingScenario>(
        scenario::RoamingScenario::default_config(), params);
  });

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  bool all_ok = true;
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"scenario_perf\",\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    all_ok = all_ok && r.ok;
    std::fprintf(out,
                 "    {\"scenario\": \"%s\", \"ok\": %s, "
                 "\"attack_events\": %llu, \"attack_rate_per_s\": %.1f, "
                 "\"wall_ms\": %.1f, \"recovery_samples\": %llu, "
                 "\"recovery_p50_us\": %llu, \"recovery_p99_us\": %llu, "
                 "\"invariants\": %zu}%s\n",
                 r.name.c_str(), r.ok ? "true" : "false",
                 static_cast<unsigned long long>(r.attack_events),
                 r.attack_rate, r.wall_ms,
                 static_cast<unsigned long long>(r.recovery_samples),
                 static_cast<unsigned long long>(r.recovery_p50_us),
                 static_cast<unsigned long long>(r.recovery_p99_us),
                 r.invariants, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path.c_str());

  if (!all_ok) {
    std::fprintf(stderr, "FAIL: at least one scenario invariant did not hold\n");
    return 1;
  }
  return 0;
}
