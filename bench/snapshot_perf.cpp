// Checkpoint/restore cost sweep: builds homes at a ladder of state sizes
// (flow rules, hwdb rows, device population), measures capture latency,
// image size and restore-into-fresh-home latency at each rung, and compares
// warm-restart recovery (refill the flow table from the last image) against
// a cold restart that has to re-learn every flow from live traffic.
//
// Emits BENCH_snapshot_perf.json (path overridable with --out) for the CI
// artifact upload.
//
// Usage: snapshot_perf [--smoke] [--reps N] [--out PATH]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "homework/router.hpp"
#include "hwdb/database.hpp"
#include "snapshot/coordinator.hpp"
#include "telemetry/metrics.hpp"

using namespace hw;

namespace {

struct SizeSpec {
  const char* label = "";
  std::size_t devices = 0;
  std::size_t flows = 0;      // distinct destinations driven through the datapath
  std::size_t hwdb_rows = 0;  // rows bulk-inserted into a bench table
};

struct Rung {
  std::string label;
  std::size_t devices = 0;
  std::size_t flow_entries = 0;
  std::size_t hwdb_rows = 0;
  std::size_t image_bytes = 0;
  double capture_us = 0.0;
  double restore_us = 0.0;
  double warm_restart_us = 0.0;
  double cold_rebuild_us = 0.0;
};

double us_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// A booted home inflated to the requested state size.
struct BenchHome {
  explicit BenchHome(const SizeSpec& spec) : rng(7), router(loop, rng, config(), registry) {
    telemetry::ScopedMetricRegistry scope(registry);
    router.start();
    for (std::size_t i = 0; i < spec.devices; ++i) {
      sim::Host::Config hc;
      hc.name = "dev" + std::to_string(i);
      hc.mac = MacAddress::from_index(static_cast<std::uint32_t>(i + 1));
      hosts.push_back(std::make_unique<sim::Host>(loop, hc, rng));
      router.attach_device(*hosts.back(), std::nullopt);
      hosts.back()->start_dhcp();
    }
    loop.run_for(2 * kSecond);

    (void)router.db().create_table(
        hwdb::Schema("BenchRows", {{"v", hwdb::ColumnType::Int}}),
        spec.hwdb_rows + 16);
    for (std::size_t i = 0; i < spec.hwdb_rows; ++i) {
      (void)router.db().insert("BenchRows",
                               {hwdb::Value{static_cast<std::int64_t>(i)}});
    }
    drive_flows(spec.flows);
  }

  static homework::HomeworkRouter::Config config() {
    homework::HomeworkRouter::Config c;
    c.admission = homework::DeviceRegistry::AdmissionDefault::PermitAll;
    c.flow_idle_timeout = 0;  // no idle expiry: the rung size stays put
    return c;
  }

  /// One distinct upstream destination per requested flow.
  void drive_flows(std::size_t flows) {
    if (hosts.empty()) return;
    for (std::size_t i = 0; i < flows; ++i) {
      const Ipv4Address dst{
          10, static_cast<std::uint8_t>((i >> 16) & 0xff),
          static_cast<std::uint8_t>((i >> 8) & 0xff),
          static_cast<std::uint8_t>(1 + (i & 0xfe))};
      hosts[i % hosts.size()]->send_udp(
          dst, static_cast<std::uint16_t>(1024 + i % 20000), 80, 64);
      if (i % 64 == 63) loop.run_for(20 * kMillisecond);
    }
    loop.run_for(kSecond);
  }

  telemetry::MetricRegistry registry;
  sim::EventLoop loop;
  Rng rng;
  homework::HomeworkRouter router;
  std::vector<std::unique_ptr<sim::Host>> hosts;
};

}  // namespace

int main(int argc, char** argv) {
  std::vector<SizeSpec> sizes = {
      {"small", 2, 64, 1024},
      {"medium", 4, 512, 8192},
      {"large", 8, 2048, 32768},
  };
  std::size_t reps = 5;
  std::string out_path = "BENCH_snapshot_perf.json";

  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (std::strcmp(argv[i], "--smoke") == 0) {
      sizes = {{"small", 2, 32, 256}, {"medium", 3, 128, 1024},
               {"large", 4, 256, 4096}};
      reps = 2;
    } else if (std::strcmp(argv[i], "--reps") == 0) {
      reps = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_path = next();
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }

  std::printf("=== snapshot_perf: %zu state sizes, %zu reps each ===\n\n",
              sizes.size(), reps);
  std::printf("%8s %8s %8s %9s %10s %12s %12s %14s %14s\n", "size", "devices",
              "flows", "hwdb", "bytes", "capture_us", "restore_us", "warm_us",
              "cold_rebuild");

  std::vector<Rung> rungs;
  for (const SizeSpec& spec : sizes) {
    BenchHome home(spec);
    telemetry::ScopedMetricRegistry scope(home.registry);
    auto& snaps = home.router.snapshots();

    Rung rung;
    rung.label = spec.label;
    rung.devices = home.hosts.size();
    rung.flow_entries = home.router.datapath().table().size();
    rung.hwdb_rows = home.router.db().table("BenchRows")->size();

    // Capture: best of `reps` (the image is identical each time).
    snapshot::SnapshotImage image;
    for (std::size_t r = 0; r < reps; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      image = snaps.capture();
      const double us = us_since(t0);
      if (r == 0 || us < rung.capture_us) rung.capture_us = us;
    }
    rung.image_bytes = image.bytes.size();

    // Restore into freshly booted homes.
    for (std::size_t r = 0; r < reps; ++r) {
      telemetry::MetricRegistry reg2;
      telemetry::ScopedMetricRegistry scope2(reg2);
      sim::EventLoop loop2;
      Rng rng2(11);
      homework::HomeworkRouter router2(loop2, rng2, BenchHome::config(), reg2);
      router2.start();
      const auto t0 = std::chrono::steady_clock::now();
      if (!router2.snapshots().restore(image).ok()) {
        std::fprintf(stderr, "restore failed at size %s\n", spec.label);
        return 1;
      }
      const double us = us_since(t0);
      if (r == 0 || us < rung.restore_us) rung.restore_us = us;
      if (router2.datapath().table().size() != rung.flow_entries) {
        std::fprintf(stderr, "restore dropped flows at size %s\n", spec.label);
        return 1;
      }
    }

    // Warm restart: restart + refill the flow table from the image.
    for (std::size_t r = 0; r < reps; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      (void)home.router.warm_restart();
      const double us = us_since(t0);
      if (r == 0 || us < rung.warm_restart_us) rung.warm_restart_us = us;
    }

    // Cold restart: wipe, then re-learn every flow from live traffic.
    {
      home.router.datapath().restart();
      const auto t0 = std::chrono::steady_clock::now();
      home.drive_flows(spec.flows);
      rung.cold_rebuild_us = us_since(t0);
    }

    std::printf("%8s %8zu %8zu %9zu %10zu %12.1f %12.1f %14.1f %14.1f\n",
                rung.label.c_str(), rung.devices, rung.flow_entries,
                rung.hwdb_rows, rung.image_bytes, rung.capture_us,
                rung.restore_us, rung.warm_restart_us, rung.cold_rebuild_us);
    rungs.push_back(rung);
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"snapshot_perf\",\n");
  std::fprintf(out, "  \"reps\": %zu,\n", reps);
  std::fprintf(out, "  \"sizes\": [\n");
  for (std::size_t i = 0; i < rungs.size(); ++i) {
    const Rung& r = rungs[i];
    std::fprintf(out,
                 "    {\"label\": \"%s\", \"devices\": %zu, "
                 "\"flow_entries\": %zu, \"hwdb_rows\": %zu, "
                 "\"image_bytes\": %zu, \"capture_us\": %.3f, "
                 "\"restore_us\": %.3f, \"warm_restart_us\": %.3f, "
                 "\"cold_rebuild_us\": %.3f}%s\n",
                 r.label.c_str(), r.devices, r.flow_entries, r.hwdb_rows,
                 r.image_bytes, r.capture_us, r.restore_us, r.warm_restart_us,
                 r.cold_rebuild_us, i + 1 < rungs.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
