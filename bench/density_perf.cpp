// Residency density bench (docs/residency.md): how many homes one process
// can hold when cold homes hibernate to their snapshot images and page back
// on demand. Each rung boots a quiet fleet with hibernate_on_start, advances
// a few checkpoint-aligned periods while deterministic wake probes page
// single homes back in, and reports:
//
//  * density — total homes vs the peak simultaneously-resident count
//    (gate: >= 10x on every rung);
//  * paging cost — resume wall-clock p50/p99 from residency.resume_ns;
//  * image economics — logical vs stored bytes in the content-addressed
//    ImageStore (dedup savings across near-identical quiet homes);
//  * the determinism contract — the residency run's merged non-histogram
//    telemetry, after refresh_telemetry(), is bit-identical to an
//    always-resident twin at every worker-thread count in the ladder
//    (gate: any mismatch fails the bench).
//
// Emits BENCH_fleet_density.json (path overridable with --out) for the CI
// artifact upload.
//
// Usage: density_perf [--smoke] [--homes 40,120] [--seed S]
//                     [--threads 1,2,8] [--out PATH]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "homework/router.hpp"
#include "live/fleet.hpp"
#include "telemetry/metrics.hpp"

using namespace hw;

namespace {

std::vector<std::size_t> parse_size_list(const char* arg) {
  std::vector<std::size_t> out;
  std::string item;
  for (const char* p = arg;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!item.empty()) out.push_back(std::strtoull(item.c_str(), nullptr, 10));
      item.clear();
      if (*p == '\0') break;
    } else {
      item.push_back(*p);
    }
  }
  return out;
}

double wall_ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

live::LiveConfig density_config(std::size_t homes, std::uint64_t seed,
                                std::size_t threads, bool residency_on) {
  live::LiveConfig config;
  config.homes = homes;
  config.threads = threads;
  config.seed = seed;
  config.devices_per_home = 2;
  if (residency_on) {
    config.residency.max_resident = 4;
    config.residency.idle_watermark = 5 * kSecond;
    // The virtual world is closed: a hibernated home's catch-up on wake
    // fires every timer at its recorded virtual time, so sleeping through
    // periodic maintenance ticks is safe — exactly what the fingerprint
    // gate below proves. Waking on every pending tick would keep quiet
    // homes resident and defeat density.
    config.residency.wake_on_due = false;
    config.residency.hibernate_on_start = true;
  }
  return config;
}

/// Wake-probe schedule: one home paged back per aligned period, mid-period,
/// target varying deterministically. Identical for the residency run and the
/// always-resident twin (a Wake on a resident home is a virtual no-op), so
/// both runs carry the same mutation log.
std::uint32_t probe_home(std::size_t seq, std::size_t homes) {
  return static_cast<std::uint32_t>((7 + 13 * seq) % homes);
}

struct RunOutcome {
  std::map<std::string, double> fingerprint;
  std::size_t resident_peak = 0;
  std::uint64_t image_bytes_logical = 0;
  std::uint64_t image_bytes_stored = 0;
  std::uint64_t image_bytes_deduped = 0;
  std::size_t images = 0;
  double resumes = 0.0;
  double resume_p50_ms = 0.0;
  double resume_p99_ms = 0.0;
  double wall_ms = 0.0;
};

RunOutcome run_fleet(std::size_t homes, std::uint64_t seed,
                     std::size_t threads, std::size_t periods,
                     bool residency_on) {
  telemetry::MetricRegistry registry;
  telemetry::ScopedMetricRegistry scoped(registry);

  const auto t0 = std::chrono::steady_clock::now();
  live::LiveFleet fleet(density_config(homes, seed, threads, residency_on),
                        registry);
  fleet.start();

  const Duration align = live::LiveFleet::kCheckpointAlign;
  const Timestamp boot = homework::HomeworkRouter::kBootSettle;
  const Timestamp end = boot + periods * align;
  std::vector<Timestamp> probes;
  for (std::size_t k = 1; k < periods; ++k) {
    probes.push_back(boot + k * align + align / 2);
  }
  std::size_t seq = 0;
  while (fleet.now() < end) {
    if (seq < probes.size() && fleet.next_barrier() == probes[seq]) {
      fleet.submit(live::wake_home(probe_home(seq, homes)));
      ++seq;
    }
    fleet.step();
  }

  RunOutcome out;
  out.resident_peak = fleet.resident_peak();
  out.image_bytes_logical = fleet.image_store().logical_bytes();
  out.image_bytes_stored = fleet.image_store().stored_bytes();
  out.image_bytes_deduped = fleet.image_store().deduped_bytes();
  out.images = fleet.image_store().size();
  // Bring hibernated homes current before fingerprinting (frozen scalars
  // speak for their hibernation barrier, not now()).
  fleet.refresh_telemetry();
  out.fingerprint = fleet.fingerprint();
  if (const auto v = registry.total("residency.resumes")) out.resumes = *v;
  const auto hists = registry.histogram_states();
  if (const auto it = hists.find("residency.resume_ns"); it != hists.end()) {
    out.resume_p50_ms = it->second.percentile(0.50) / 1e6;
    out.resume_p99_ms = it->second.percentile(0.99) / 1e6;
  }
  out.wall_ms = wall_ms_since(t0);
  return out;
}

struct Rung {
  std::size_t homes = 0;
  RunOutcome density;       // residency on, measurement thread count
  double ratio = 0.0;       // homes / resident_peak
  bool ratio_ok = false;
  bool fingerprint_ok = true;
  std::vector<std::size_t> threads_checked;
  double baseline_wall_ms = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::vector<std::size_t> home_ladder = {40, 120};
  std::uint64_t seed = 2011;
  std::vector<std::size_t> thread_ladder = {1, 2, 8};
  std::string out_path = "BENCH_fleet_density.json";

  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--homes") == 0) {
      home_ladder = parse_size_list(next());
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      thread_ladder = parse_size_list(next());
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_path = next();
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }
  if (smoke) {
    home_ladder = {40};
    thread_ladder = {1, 2};
  }
  const std::size_t periods = smoke ? 2 : 3;
  const std::size_t measure_threads = 2;

  std::printf("=== density_perf: seed %llu, %zu aligned periods%s ===\n\n",
              static_cast<unsigned long long>(seed), periods,
              smoke ? " (smoke)" : "");

  bool all_ok = true;
  std::vector<Rung> rungs;
  for (const std::size_t homes : home_ladder) {
    Rung rung;
    rung.homes = homes;
    rung.density = run_fleet(homes, seed, measure_threads, periods,
                             /*residency_on=*/true);
    rung.ratio = rung.density.resident_peak == 0
                     ? 0.0
                     : static_cast<double>(homes) /
                           static_cast<double>(rung.density.resident_peak);
    rung.ratio_ok = rung.ratio >= 10.0;

    // The always-resident twin at one thread is the reference fingerprint;
    // every residency run in the thread ladder must match it bit-for-bit.
    const auto base_t0 = std::chrono::steady_clock::now();
    const RunOutcome baseline =
        run_fleet(homes, seed, 1, periods, /*residency_on=*/false);
    rung.baseline_wall_ms = wall_ms_since(base_t0);
    for (const std::size_t threads : thread_ladder) {
      if (threads > homes) continue;
      rung.threads_checked.push_back(threads);
      const RunOutcome run = threads == measure_threads
                                 ? rung.density
                                 : run_fleet(homes, seed, threads, periods,
                                             /*residency_on=*/true);
      if (run.fingerprint != baseline.fingerprint) {
        rung.fingerprint_ok = false;
        std::fprintf(stderr,
                     "FAIL: %zu homes, %zu threads: residency fingerprint "
                     "diverges from always-resident\n",
                     homes, threads);
      }
    }

    std::printf("-- %zu homes --\n", homes);
    std::printf("resident peak %zu (%.1fx density, gate >= 10x: %s)\n",
                rung.density.resident_peak, rung.ratio,
                rung.ratio_ok ? "ok" : "FAIL");
    std::printf("%zu stored images: %.1f KB logical, %.1f KB stored, "
                "%.1f KB deduped\n",
                rung.density.images,
                static_cast<double>(rung.density.image_bytes_logical) / 1e3,
                static_cast<double>(rung.density.image_bytes_stored) / 1e3,
                static_cast<double>(rung.density.image_bytes_deduped) / 1e3);
    std::printf("%.0f resumes: p50 %.2f ms, p99 %.2f ms\n",
                rung.density.resumes, rung.density.resume_p50_ms,
                rung.density.resume_p99_ms);
    std::printf("fingerprint vs always-resident: %s (threads:",
                rung.fingerprint_ok ? "bit-identical" : "MISMATCH");
    for (const std::size_t t : rung.threads_checked) std::printf(" %zu", t);
    std::printf(")\n");
    std::printf("wall: density %.1f ms, baseline %.1f ms\n\n",
                rung.density.wall_ms, rung.baseline_wall_ms);

    all_ok = all_ok && rung.ratio_ok && rung.fingerprint_ok;
    rungs.push_back(std::move(rung));
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"fleet_density\",\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"periods\": %zu,\n", periods);
  std::fprintf(out, "  \"rungs\": [\n");
  for (std::size_t i = 0; i < rungs.size(); ++i) {
    const Rung& r = rungs[i];
    std::fprintf(
        out,
        "    {\"homes\": %zu, \"resident_peak\": %zu, \"ratio\": %.1f, "
        "\"ratio_ok\": %s, \"fingerprint_ok\": %s, \"images\": %zu, "
        "\"image_bytes_logical\": %llu, \"image_bytes_stored\": %llu, "
        "\"image_bytes_deduped\": %llu, \"resumes\": %.0f, "
        "\"resume_p50_ms\": %.2f, \"resume_p99_ms\": %.2f, "
        "\"wall_ms\": %.1f, \"baseline_wall_ms\": %.1f}%s\n",
        r.homes, r.density.resident_peak, r.ratio,
        r.ratio_ok ? "true" : "false", r.fingerprint_ok ? "true" : "false",
        r.density.images,
        static_cast<unsigned long long>(r.density.image_bytes_logical),
        static_cast<unsigned long long>(r.density.image_bytes_stored),
        static_cast<unsigned long long>(r.density.image_bytes_deduped),
        r.density.resumes, r.density.resume_p50_ms, r.density.resume_p99_ms,
        r.density.wall_ms, r.baseline_wall_ms,
        i + 1 < rungs.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  if (!all_ok) {
    std::fprintf(stderr, "FAIL: density or determinism gate\n");
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
