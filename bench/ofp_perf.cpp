// OpenFlow path performance: flow-table lookup scaling (exact hit vs
// wildcard vs miss), flow-mod application rate, wire codec throughput, and
// the full datapath fast path vs the packet-in slow path — the crossover
// that justifies the architecture.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "net/packet.hpp"
#include "openflow/channel.hpp"
#include "openflow/datapath.hpp"
#include "telemetry/metrics.hpp"

using namespace hw;
using namespace hw::ofp;

namespace {

/// Reports lookup latency percentiles from the table's registry histogram —
/// the same instrument MetricsExport publishes into the hwdb Metrics table.
void report_lookup_latency(benchmark::State& state, const FlowTable& table) {
  const telemetry::Histogram& h = table.lookup_latency();
  state.counters["lookup_p50_ns"] = h.percentile(0.50);
  state.counters["lookup_p99_ns"] = h.percentile(0.99);
}

Match exact_pkt(std::uint32_t i) {
  Match m;
  m.wildcards = 0;
  m.in_port = 1;
  m.dl_src = MacAddress::from_index(1);
  m.dl_dst = MacAddress::from_index(2);
  m.dl_vlan = 0xffff;
  m.dl_type = 0x0800;
  m.nw_proto = 6;
  m.nw_src = Ipv4Address{0x0a000000u + (i % 50000)};
  m.nw_dst = Ipv4Address{8, 8, 8, 8};
  m.tp_src = static_cast<std::uint16_t>(i & 0xffff);
  m.tp_dst = 80;
  return m;
}

void fill_table(FlowTable& table, int rules) {
  for (int i = 0; i < rules; ++i) {
    FlowMod mod;
    mod.match = exact_pkt(static_cast<std::uint32_t>(i));
    mod.command = FlowModCommand::Add;
    mod.actions = output_to(2);
    table.apply(mod, 0);
  }
}

void BM_TableLookupHit(benchmark::State& state) {
  FlowTable table(100000);
  const int rules = static_cast<int>(state.range(0));
  fill_table(table, rules);
  std::uint32_t i = 0;
  for (auto _ : state) {
    // Rotate across installed rules: average positional cost.
    benchmark::DoNotOptimize(
        table.lookup(exact_pkt(i++ % static_cast<std::uint32_t>(rules)), 0, 64));
  }
  state.SetItemsProcessed(state.iterations());
  report_lookup_latency(state, table);
}
BENCHMARK(BM_TableLookupHit)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

void BM_TableLookupMiss(benchmark::State& state) {
  FlowTable table(100000);
  fill_table(table, static_cast<int>(state.range(0)));
  Match miss = exact_pkt(1);
  miss.tp_dst = 9999;  // matches nothing
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(miss, 0, 64));
  }
  state.SetItemsProcessed(state.iterations());
  report_lookup_latency(state, table);
}
BENCHMARK(BM_TableLookupMiss)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

void BM_TableWildcardHit(benchmark::State& state) {
  // A handful of service rules (the Homework pattern) over a busy packet mix.
  FlowTable table;
  auto add = [&](Match m, std::uint16_t priority) {
    FlowMod mod;
    mod.match = m;
    mod.priority = priority;
    mod.actions = send_to_controller();
    table.apply(mod, 0);
  };
  Match dhcp = Match::any();
  dhcp.with_dl_type(0x0800).with_nw_proto(17).with_tp_dst(67);
  add(dhcp, 0xffff);
  Match dns = Match::any();
  dns.with_dl_type(0x0800).with_nw_proto(17).with_tp_dst(53);
  add(dns, 0xfffe);
  Match arp = Match::any();
  arp.with_dl_type(0x0806);
  add(arp, 0xfffd);

  Match dns_pkt = exact_pkt(3);
  dns_pkt.nw_proto = 17;
  dns_pkt.tp_dst = 53;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(dns_pkt, 0, 64));
  }
  state.SetItemsProcessed(state.iterations());
  report_lookup_latency(state, table);
}
BENCHMARK(BM_TableWildcardHit);

void BM_FlowModApply(benchmark::State& state) {
  FlowTable table(1 << 20);
  std::uint32_t i = 0;
  for (auto _ : state) {
    FlowMod mod;
    mod.match = exact_pkt(i++);
    mod.command = FlowModCommand::Add;
    mod.idle_timeout = 10;
    mod.actions = output_to(2);
    benchmark::DoNotOptimize(table.apply(mod, 0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlowModApply);

void BM_CodecEncodeFlowMod(benchmark::State& state) {
  FlowMod mod;
  mod.match = exact_pkt(42);
  mod.actions = {ActionSetDlSrc{MacAddress::from_index(7)},
                 ActionSetDlDst{MacAddress::from_index(8)},
                 ActionOutput{2, 0}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(encode({1, mod}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CodecEncodeFlowMod);

void BM_CodecDecodePacketIn(benchmark::State& state) {
  PacketIn pi;
  pi.buffer_id = 7;
  pi.in_port = 3;
  pi.data = Bytes(128, 0xab);
  const Bytes wire = encode({9, pi});
  for (auto _ : state) {
    benchmark::DoNotOptimize(decode(wire));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CodecDecodePacketIn);

void BM_DatapathFastPath(benchmark::State& state) {
  // A frame matching an installed exact flow: the per-packet cost of the
  // architecture's common case.
  sim::EventLoop loop;
  Datapath dp(loop, {});
  sim::CallbackSink sink([](const Bytes&) {});
  dp.add_port(1, "in", MacAddress::from_index(1), &sink);
  dp.add_port(2, "out", MacAddress::from_index(2), &sink);

  const Bytes frame = net::build_udp(
      MacAddress::from_index(1), MacAddress::from_index(2),
      Ipv4Address{192, 168, 1, 100}, Ipv4Address{8, 8, 8, 8}, 1234, 80,
      Bytes(512, 0));
  auto parsed = net::ParsedPacket::parse(frame);
  FlowMod mod;
  mod.match = Match::from_packet(parsed.value(), 1);
  mod.actions = {ActionSetDlSrc{MacAddress::from_index(9)},
                 ActionSetDlDst{MacAddress::from_index(10)},
                 ActionOutput{2, 0}};
  FlowTable& table = dp.table();
  table.apply(mod, 0);

  for (auto _ : state) {
    dp.receive_frame(1, frame);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(frame.size()));
  report_lookup_latency(state, table);
}
BENCHMARK(BM_DatapathFastPath);

void BM_DatapathFastPathNoRewrite(benchmark::State& state) {
  // Output-only rule: isolates the lookup+forward cost from the MAC/IP
  // rewrite (which re-serializes the frame).
  sim::EventLoop loop;
  Datapath dp(loop, {});
  sim::CallbackSink sink([](const Bytes&) {});
  dp.add_port(1, "in", MacAddress::from_index(1), &sink);
  dp.add_port(2, "out", MacAddress::from_index(2), &sink);
  const Bytes frame = net::build_udp(
      MacAddress::from_index(1), MacAddress::from_index(2),
      Ipv4Address{192, 168, 1, 100}, Ipv4Address{8, 8, 8, 8}, 1234, 80,
      Bytes(512, 0));
  auto parsed = net::ParsedPacket::parse(frame);
  FlowMod mod;
  mod.match = Match::from_packet(parsed.value(), 1);
  mod.actions = output_to(2);
  dp.table().apply(mod, 0);
  for (auto _ : state) {
    dp.receive_frame(1, frame);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DatapathFastPathNoRewrite);

void BM_DatapathFastPathEnqueue(benchmark::State& state) {
  // Rate-limited egress: output replaced by a policing queue with a rate
  // high enough that nothing drops — isolates the bucket bookkeeping cost.
  sim::EventLoop loop;
  Datapath dp(loop, {});
  sim::CallbackSink sink([](const Bytes&) {});
  dp.add_port(1, "in", MacAddress::from_index(1), &sink);
  dp.add_port(2, "out", MacAddress::from_index(2), &sink);
  dp.configure_queue(2, 1, 1'000'000'000'000ull, 1'000'000'000ull);
  const Bytes frame = net::build_udp(
      MacAddress::from_index(1), MacAddress::from_index(2),
      Ipv4Address{192, 168, 1, 100}, Ipv4Address{8, 8, 8, 8}, 1234, 80,
      Bytes(512, 0));
  auto parsed = net::ParsedPacket::parse(frame);
  FlowMod mod;
  mod.match = Match::from_packet(parsed.value(), 1);
  mod.actions = {ActionEnqueue{2, 1}};
  dp.table().apply(mod, 0);
  for (auto _ : state) {
    dp.receive_frame(1, frame);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DatapathFastPathEnqueue);

/// Builds a UDP frame whose 12-tuple is unique per index (source port
/// varies), plus the matching exact-match FlowMod.
Bytes indexed_frame(std::uint32_t i) {
  return net::build_udp(MacAddress::from_index(1), MacAddress::from_index(2),
                        Ipv4Address{192, 168, 1, 100}, Ipv4Address{8, 8, 8, 8},
                        static_cast<std::uint16_t>(1024 + (i % 50000)), 80,
                        Bytes(512, 0));
}

void install_exact_rule(Datapath& dp, const Bytes& frame) {
  FlowMod mod;
  mod.match = Match::from_packet(net::ParsedPacket::parse(frame).value(), 1);
  mod.actions = output_to(2);
  dp.table().apply(mod, 0);
}

void report_microflow(benchmark::State& state, const Datapath& dp) {
  const DatapathStats s = dp.stats();
  const double total =
      static_cast<double>(s.microflow_hits + s.microflow_misses);
  state.counters["microflow_hit_ratio"] =
      total > 0 ? static_cast<double>(s.microflow_hits) / total : 0.0;
  state.counters["microflow_invalidations"] =
      static_cast<double>(s.microflow_invalidations);
}

void BM_DatapathMicroflowHit(benchmark::State& state) {
  // Steady traffic on one flow over a table of range(0) exact rules: after
  // the first packet every lookup resolves in the exact-match cache, so the
  // per-packet cost should be flat in table size.
  sim::EventLoop loop;
  Datapath dp(loop, {.table_capacity = 100000});
  sim::CallbackSink sink([](const Bytes&) {});
  dp.add_port(1, "in", MacAddress::from_index(1), &sink);
  dp.add_port(2, "out", MacAddress::from_index(2), &sink);
  const int rules = static_cast<int>(state.range(0));
  for (int i = 0; i < rules; ++i) {
    install_exact_rule(dp, indexed_frame(static_cast<std::uint32_t>(i)));
  }
  const Bytes frame = indexed_frame(0);
  for (auto _ : state) {
    dp.receive_frame(1, frame);
  }
  state.SetItemsProcessed(state.iterations());
  report_microflow(state, dp);
  report_lookup_latency(state, dp.table());
}
BENCHMARK(BM_DatapathMicroflowHit)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

void BM_DatapathMicroflowMiss(benchmark::State& state) {
  // The cache deliberately thrashed: a tiny microflow capacity with traffic
  // rotating over many more flows than it holds, so (almost) every packet
  // falls through to the tuple-space classifier. The gap against
  // BM_DatapathMicroflowHit is what the cache buys.
  sim::EventLoop loop;
  Datapath dp(loop, {.table_capacity = 100000, .microflow_capacity = 8});
  sim::CallbackSink sink([](const Bytes&) {});
  dp.add_port(1, "in", MacAddress::from_index(1), &sink);
  dp.add_port(2, "out", MacAddress::from_index(2), &sink);
  const int rules = static_cast<int>(state.range(0));
  std::vector<Bytes> frames;
  const int n_flows = std::min(rules, 64);
  for (int i = 0; i < rules; ++i) {
    const Bytes frame = indexed_frame(static_cast<std::uint32_t>(i));
    install_exact_rule(dp, frame);
    if (i < n_flows) frames.push_back(frame);
  }
  std::uint32_t i = 0;
  for (auto _ : state) {
    dp.receive_frame(1, frames[i++ % frames.size()]);
  }
  state.SetItemsProcessed(state.iterations());
  report_microflow(state, dp);
  report_lookup_latency(state, dp.table());
}
BENCHMARK(BM_DatapathMicroflowMiss)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

void BM_DatapathMicroflowChurn(benchmark::State& state) {
  // Worst case for the generation scheme: a table mutation between every
  // packet, so each probe flushes the whole cache and re-runs the
  // classifier. Measures flow-mod + invalidation + cold lookup together.
  sim::EventLoop loop;
  Datapath dp(loop, {.table_capacity = 100000});
  sim::CallbackSink sink([](const Bytes&) {});
  dp.add_port(1, "in", MacAddress::from_index(1), &sink);
  dp.add_port(2, "out", MacAddress::from_index(2), &sink);
  const int rules = static_cast<int>(state.range(0));
  for (int i = 0; i < rules; ++i) {
    install_exact_rule(dp, indexed_frame(static_cast<std::uint32_t>(i)));
  }
  const Bytes frame = indexed_frame(0);
  FlowMod churn;
  churn.match = Match::from_packet(net::ParsedPacket::parse(frame).value(), 1);
  churn.actions = output_to(2);
  for (auto _ : state) {
    dp.table().apply(churn, 0);  // replace: bumps the table generation
    dp.receive_frame(1, frame);
  }
  state.SetItemsProcessed(state.iterations());
  report_microflow(state, dp);
  report_lookup_latency(state, dp.table());
}
BENCHMARK(BM_DatapathMicroflowChurn)->Arg(10)->Arg(1000);

void BM_DatapathSlowPathRoundTrip(benchmark::State& state) {
  // The full miss cost: packet-in encode → channel → controller decodes and
  // answers with a packet-out releasing the buffer → datapath forwards.
  // Compare against BM_DatapathFastPath*: this ratio is why flows exist.
  sim::EventLoop loop;
  Datapath dp(loop, {.datapath_id = 1, .n_buffers = 64});
  sim::CallbackSink sink([](const Bytes&) {});
  dp.add_port(1, "in", MacAddress::from_index(1), &sink);
  dp.add_port(2, "out", MacAddress::from_index(2), &sink);
  InProcConnection conn(loop);
  auto& ctl_end = conn.controller_end();
  ctl_end.on_receive([&](const Bytes& encoded) {
    auto env = decode(encoded);
    if (!env.ok()) return;
    const auto* pi = std::get_if<PacketIn>(&env.value().msg);
    if (pi == nullptr) return;
    PacketOut po;
    po.buffer_id = pi->buffer_id;
    po.in_port = pi->in_port;
    po.actions = output_to(2);
    ctl_end.send(encode({env.value().xid, po}));
  });
  dp.connect(conn.datapath_end());
  loop.run_for(kMillisecond);

  const Bytes frame = net::build_udp(
      MacAddress::from_index(1), MacAddress::from_index(2),
      Ipv4Address{192, 168, 1, 100}, Ipv4Address{8, 8, 8, 8}, 1234, 80,
      Bytes(512, 0));
  for (auto _ : state) {
    dp.receive_frame(1, frame);
    loop.run_for(10);  // drain both channel directions
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DatapathSlowPathRoundTrip);

void BM_MatchFromPacket(benchmark::State& state) {
  const Bytes frame = net::build_tcp(
      MacAddress::from_index(1), MacAddress::from_index(2),
      Ipv4Address{192, 168, 1, 100}, Ipv4Address{8, 8, 8, 8},
      net::TcpHeader{40000, 443, 1, 1, net::TcpFlags::kAck, 65535},
      Bytes(256, 0));
  for (auto _ : state) {
    auto parsed = net::ParsedPacket::parse(frame);
    benchmark::DoNotOptimize(Match::from_packet(parsed.value(), 3));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MatchFromPacket);

}  // namespace

BENCHMARK_MAIN();
