// Control-plane performance and the design-choice ablations from DESIGN.md:
// DHCP transaction rate, DNS interception overhead (cache on/off), the
// router-mediated isolation cost vs plain L2 switching, policy evaluation,
// and control-API request throughput.
#include <benchmark/benchmark.h>

#include "homework/router.hpp"
#include "net/packet.hpp"
#include "openflow/channel.hpp"
#include "telemetry/metrics.hpp"

using namespace hw;
using namespace hw::homework;

namespace {

struct Rig {
  Rig(DeviceRegistry::AdmissionDefault admission =
          DeviceRegistry::AdmissionDefault::PermitAll)
      : rng(1) {
    HomeworkRouter::Config config;
    config.admission = admission;
    router = std::make_unique<HomeworkRouter>(loop, rng, config);
    router->upstream().add_zone_entry("www.example.com",
                                      Ipv4Address{93, 184, 216, 34});
    router->start();
  }

  sim::Host& device(std::uint32_t index) {
    while (hosts.size() <= index) {
      sim::Host::Config hc;
      hc.name = "d" + std::to_string(hosts.size());
      hc.mac = MacAddress::from_index(static_cast<std::uint32_t>(hosts.size()) + 1);
      hosts.push_back(std::make_unique<sim::Host>(loop, hc, rng));
      router->attach_device(*hosts.back(), std::nullopt);
    }
    return *hosts[index];
  }

  sim::EventLoop loop;
  Rng rng;
  std::unique_ptr<HomeworkRouter> router;
  std::vector<std::unique_ptr<sim::Host>> hosts;
};

/// Reports packet-in dispatch percentiles from the controller's registry
/// histogram — the same instrument MetricsExport publishes into hwdb.
void report_dispatch_latency(benchmark::State& state, Rig& rig) {
  const telemetry::Histogram& h = rig.router->controller().packet_in_latency();
  state.counters["dispatch_p50_ns"] = h.percentile(0.50);
  state.counters["dispatch_p99_ns"] = h.percentile(0.99);
}

void BM_DhcpFullTransaction(benchmark::State& state) {
  // DISCOVER→OFFER→REQUEST→ACK through the packet-in path, per device join.
  Rig rig;
  sim::Host& host = rig.device(0);
  for (auto _ : state) {
    host.start_dhcp();
    while (!host.ip()) rig.loop.run_for(100 * kMillisecond);
    state.PauseTiming();
    host.release_dhcp();
    rig.loop.run_for(kSecond);
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations());
  report_dispatch_latency(state, rig);
}
BENCHMARK(BM_DhcpFullTransaction);

void BM_DnsProxyResolution(benchmark::State& state) {
  // Full interception round trip: device → proxy → upstream → proxy → device.
  Rig rig;
  sim::Host& host = rig.device(0);
  host.start_dhcp();
  while (!host.ip()) rig.loop.run_for(100 * kMillisecond);
  for (auto _ : state) {
    bool done = false;
    host.resolve("www.example.com",
                 [&](Result<Ipv4Address>, const std::string&) { done = true; });
    while (!done) rig.loop.run_for(10 * kMillisecond);
  }
  state.SetItemsProcessed(state.iterations());
  report_dispatch_latency(state, rig);
}
BENCHMARK(BM_DnsProxyResolution);

void BM_PolicyRestrictionEval(benchmark::State& state) {
  // The per-query policy check with N installed policies.
  policy::PolicyEngine engine([] { return Timestamp{17 * kHour}; });
  const int policies = static_cast<int>(state.range(0));
  for (int i = 0; i < policies; ++i) {
    policy::PolicyDocument p;
    p.id = "p" + std::to_string(i);
    p.who.tags = {"tag" + std::to_string(i % 4)};
    p.sites.kind = policy::SiteRuleKind::Block;
    p.sites.domains = {"*.site" + std::to_string(i) + ".com"};
    p.when.days = {1, 2, 3, 4, 5};
    engine.install(std::move(p));
  }
  engine.set_tags("aa:bb:cc:dd:ee:ff", {"tag1", "tag3"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.domain_allowed("aa:bb:cc:dd:ee:ff", "www.example.com"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PolicyRestrictionEval)->Arg(1)->Arg(8)->Arg(64);

void BM_ControlApiStatus(benchmark::State& state) {
  Rig rig;
  HttpRequest req;
  req.method = "GET";
  req.path = "/api/status";
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.router->control_api().handle(req));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ControlApiStatus);

void BM_ControlApiInterrogate(benchmark::State& state) {
  // The Figure 3 "interrogate" gesture: three hwdb queries + cache walk.
  Rig rig;
  sim::Host& host = rig.device(0);
  host.start_dhcp();
  while (!host.ip()) rig.loop.run_for(100 * kMillisecond);
  bool resolved = false;
  host.resolve("www.example.com",
               [&](Result<Ipv4Address>, const std::string&) { resolved = true; });
  while (!resolved) rig.loop.run_for(10 * kMillisecond);
  for (int i = 0; i < 50; ++i) {
    host.send_udp(Ipv4Address{93, 184, 216, 34}, 5000, 80, 400);
    rig.loop.run_for(20 * kMillisecond);
  }
  rig.loop.run_for(2 * kSecond);

  HttpRequest req;
  req.method = "GET";
  req.path = "/api/devices/" + host.mac().to_string() + "/interrogate";
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.router->control_api().handle(req));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ControlApiInterrogate);

void BM_ControlApiPermit(benchmark::State& state) {
  Rig rig(DeviceRegistry::AdmissionDefault::Pending);
  HttpRequest permit;
  permit.method = "POST";
  HttpRequest deny = permit;
  permit.path = "/api/devices/aa:bb:cc:dd:ee:01/permit";
  deny.path = "/api/devices/aa:bb:cc:dd:ee:01/deny";
  bool flip = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rig.router->control_api().handle(flip ? permit : deny));
    flip = !flip;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ControlApiPermit);

// ---------------------------------------------------------------------------
// Ablation: router-mediated isolation vs plain NORMAL L2 switching.
// Mediation buys per-flow visibility and control at the cost of MAC
// rewrites and one rule per direction; NORMAL forwards after learning.

void BM_AblationMediatedForwarding(benchmark::State& state) {
  Rig rig;
  sim::Host& a = rig.device(0);
  sim::Host& b = rig.device(1);
  a.start_dhcp();
  b.start_dhcp();
  while (!a.ip() || !b.ip()) rig.loop.run_for(100 * kMillisecond);
  // Prime the flow pair with one exchange.
  a.send_udp(*b.ip(), 1000, 2000, 256);
  rig.loop.run_for(kSecond);

  for (auto _ : state) {
    a.send_udp(*b.ip(), 1000, 2000, 256);
    rig.loop.run_for(5 * kMillisecond);
  }
  state.SetItemsProcessed(state.iterations());
  report_dispatch_latency(state, rig);
}
BENCHMARK(BM_AblationMediatedForwarding);

void BM_AblationNormalSwitching(benchmark::State& state) {
  // Bare datapath with a single NORMAL rule: the stock-switch baseline.
  sim::EventLoop loop;
  ofp::Datapath dp(loop, {});
  sim::CallbackSink sink([](const Bytes&) {});
  dp.add_port(1, "a", MacAddress::from_index(1), &sink);
  dp.add_port(2, "b", MacAddress::from_index(2), &sink);
  ofp::FlowMod mod;
  mod.match = ofp::Match::any();
  mod.actions = ofp::output_to(ofp::port_no(ofp::Port::Normal));
  dp.table().apply(mod, 0);

  // Teach the MAC table both stations.
  const Bytes a_to_b = net::build_udp(
      MacAddress::from_index(0xa), MacAddress::from_index(0xb),
      Ipv4Address{192, 168, 1, 2}, Ipv4Address{192, 168, 1, 3}, 1000, 2000,
      Bytes(256, 0));
  const Bytes b_to_a = net::build_udp(
      MacAddress::from_index(0xb), MacAddress::from_index(0xa),
      Ipv4Address{192, 168, 1, 3}, Ipv4Address{192, 168, 1, 2}, 2000, 1000,
      Bytes(256, 0));
  dp.receive_frame(1, a_to_b);
  dp.receive_frame(2, b_to_a);

  for (auto _ : state) {
    dp.receive_frame(1, a_to_b);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AblationNormalSwitching);

// ---------------------------------------------------------------------------
// Ablation: DNS-derived flow admission with a warm vs cold name cache.

void BM_AblationFlowCheckWarmCache(benchmark::State& state) {
  Rig rig;
  sim::Host& host = rig.device(0);
  host.start_dhcp();
  while (!host.ip()) rig.loop.run_for(100 * kMillisecond);
  // Restrict the device so check_flow consults the cache.
  policy::PolicyDocument p;
  p.id = "kids";
  p.who.macs = {host.mac().to_string()};
  p.sites.kind = policy::SiteRuleKind::AllowOnly;
  p.sites.domains = {"*.example.com"};
  rig.router->policy().install(std::move(p));
  bool done = false;
  host.resolve("www.example.com",
               [&](Result<Ipv4Address>, const std::string&) { done = true; });
  while (!done) rig.loop.run_for(10 * kMillisecond);

  const Ipv4Address target{93, 184, 216, 34};
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.router->dns().check_flow(host.mac(), target));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AblationFlowCheckWarmCache);

void BM_AblationFlowCheckColdReverseLookup(benchmark::State& state) {
  // Unknown address: each admission requires a PTR round trip upstream.
  Rig rig;
  sim::Host& host = rig.device(0);
  host.start_dhcp();
  while (!host.ip()) rig.loop.run_for(100 * kMillisecond);
  policy::PolicyDocument p;
  p.id = "kids";
  p.who.macs = {host.mac().to_string()};
  p.sites.kind = policy::SiteRuleKind::AllowOnly;
  p.sites.domains = {"*.example.com"};
  rig.router->policy().install(std::move(p));
  const auto dpid = rig.router->controller().datapaths()[0];

  for (auto _ : state) {
    state.PauseTiming();
    rig.router->dns().flush_cache();  // force the cold path every iteration
    state.ResumeTiming();
    bool done = false;
    rig.router->dns().reverse_lookup(dpid, host.mac(),
                                     Ipv4Address{93, 184, 216, 34},
                                     [&](DnsProxy::FlowVerdict) { done = true; });
    while (!done) rig.loop.run_for(10 * kMillisecond);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AblationFlowCheckColdReverseLookup);

}  // namespace

BENCHMARK_MAIN();
