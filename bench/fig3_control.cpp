// Figure 3 regeneration: the situated DHCP control interface. Replays a
// device-admission session and measures the latency from each user decision
// (drag to permitted/denied) to network-level enforcement.
#include <cstdio>

#include "ui/control_board.hpp"
#include "workload/scenario.hpp"

using namespace hw;

int main() {
  std::printf("=== Figure 3: simple control interface ===\n\n");

  workload::HomeScenario::Config config;
  config.router.admission = homework::DeviceRegistry::AdmissionDefault::Pending;
  config.seed = 3;
  workload::HomeScenario home(config);
  home.start();

  ui::DhcpControlBoard board(home.router().control_api());

  // A parade of devices appears over the evening.
  const std::vector<std::pair<std::string, std::string>> arrivals = {
      {"toms-mac-air", "Tom's Mac Air"},
      {"kates-phone", "Kate's phone"},
      {"mystery-device", ""},
      {"kids-console", "Kids' console"},
  };
  for (const auto& [name, _] : arrivals) {
    home.add_device({name, workload::DeviceKind::Phone, sim::Position{6, 6}});
  }
  for (auto& d : home.devices()) d.host->start_dhcp();
  home.run_for(3 * kSecond);

  board.refresh();
  std::printf("-- board after the devices appear --\n%s\n",
              board.render().c_str());

  // The user names and permits the known devices, measuring decision→lease.
  std::printf("-- decision -> enforcement latency --\n");
  std::printf("%-18s %-12s %16s\n", "device", "decision", "latency[ms]");
  for (const auto& [name, label] : arrivals) {
    auto* dev = home.device(name);
    const std::string mac = dev->host->mac().to_string();
    if (!label.empty()) board.set_label(mac, label);

    const bool permit = name != "mystery-device";
    const Timestamp decided = home.loop().now();
    if (permit) {
      board.drag_to_permitted(mac);
      // Wait until the device holds a lease.
      while (!dev->host->ip() &&
             home.loop().now() < decided + 30 * kSecond) {
        home.run_for(50 * kMillisecond);
      }
      std::printf("%-18s %-12s %16.1f\n", name.c_str(), "permit",
                  static_cast<double>(home.loop().now() - decided) / 1000.0);
    } else {
      board.drag_to_denied(mac);
      // Enforcement is immediate at the server; the device learns on its
      // next DHCP exchange (NAK).
      int naks_before = static_cast<int>(home.router().dhcp().stats().naks);
      dev->host->start_dhcp();
      while (static_cast<int>(home.router().dhcp().stats().naks) == naks_before &&
             home.loop().now() < decided + 30 * kSecond) {
        home.run_for(50 * kMillisecond);
      }
      std::printf("%-18s %-12s %16.1f\n", name.c_str(), "deny",
                  static_cast<double>(home.loop().now() - decided) / 1000.0);
    }
  }

  board.refresh();
  std::printf("\n-- board after the user's decisions --\n%s\n",
              board.render().c_str());

  // Revocation latency: deny an already-admitted device.
  auto* tom = home.device("toms-mac-air");
  const Timestamp revoke_at = home.loop().now();
  board.drag_to_denied(tom->host->mac().to_string());
  home.run_for(100 * kMillisecond);
  std::printf("-- revocation --\n");
  std::printf("flows for the device revoked within %.1f ms of the drag\n",
              static_cast<double>(home.loop().now() - revoke_at) / 1000.0);

  const auto& stats = home.router().dhcp().stats();
  std::printf("\nDHCP server totals: %llu discovers / %llu offers / %llu acks "
              "/ %llu naks / %llu silenced-pending\n",
              static_cast<unsigned long long>(stats.discovers),
              static_cast<unsigned long long>(stats.offers),
              static_cast<unsigned long long>(stats.acks),
              static_cast<unsigned long long>(stats.naks),
              static_cast<unsigned long long>(stats.ignored_pending));
  std::printf("\nshape checks: permit latency ~ one DHCP retry interval (<= ~4 s);"
              "\n  deny/revocation take effect on the next transaction.\n");
  return 0;
}
