// Figure 5 regeneration: the whole software architecture, end to end.
// Reports the per-stage traffic counts of a scripted evening (what entered
// each box of the architecture diagram) and the platform's throughput:
// datapath-forwarded packets vs controller round-trips, plus wall-clock
// packets/second through the full stack.
#include <chrono>
#include <cstdio>
#include <map>
#include <optional>

#include "hwdb/udp_transport.hpp"
#include "residency/image_store.hpp"
#include "residency/residency.hpp"
#include "workload/scenario.hpp"

using namespace hw;

int main() {
  std::printf("=== Figure 5: Homework router software architecture ===\n\n");

  workload::HomeScenario::Config config;
  config.router.admission = homework::DeviceRegistry::AdmissionDefault::PermitAll;
  config.seed = 5;
  workload::HomeScenario home(config);
  home.populate_standard_home();
  home.start();
  home.start_dhcp_all();
  home.wait_all_bound();
  home.start_apps_all();

  const auto wall_start = std::chrono::steady_clock::now();
  home.run_for(120 * kSecond);  // two minutes of family evening
  const auto wall_end = std::chrono::steady_clock::now();
  home.stop_apps_all();

  auto& router = home.router();
  const auto& dp = router.datapath();
  const auto& ctl = router.controller();

  // Per-port data-plane counters.
  std::uint64_t rx_pkts = 0, tx_pkts = 0, rx_bytes = 0, tx_bytes = 0;
  for (std::uint16_t port = 1; port <= 16; ++port) {
    const auto* counters = dp.port_counters(port);
    if (counters == nullptr) continue;
    rx_pkts += counters->rx_packets;
    tx_pkts += counters->tx_packets;
    rx_bytes += counters->rx_bytes;
    tx_bytes += counters->tx_bytes;
  }

  std::printf("-- per-component activity (120 virtual seconds) --\n");
  std::printf("%-34s %14s\n", "openvswitch datapath rx packets",
              std::to_string(rx_pkts).c_str());
  std::printf("%-34s %14s\n", "openvswitch datapath tx packets",
              std::to_string(tx_pkts).c_str());
  std::printf("%-34s %14.1f\n", "datapath rx volume [MB]",
              static_cast<double>(rx_bytes) / 1e6);
  std::printf("%-34s %14llu\n", "table lookups",
              static_cast<unsigned long long>(dp.table().stats().lookups));
  std::printf("%-34s %14llu\n", "table matches",
              static_cast<unsigned long long>(dp.table().stats().matches));
  std::printf("%-34s %14llu\n", "microflow cache hits",
              static_cast<unsigned long long>(dp.stats().microflow_hits));
  std::printf("%-34s %14llu\n", "microflow cache misses",
              static_cast<unsigned long long>(dp.stats().microflow_misses));
  std::printf("%-34s %14llu\n", "microflow invalidations",
              static_cast<unsigned long long>(
                  dp.stats().microflow_invalidations));
  std::printf("%-34s %14zu\n", "classifier subtables",
              dp.table().subtable_count());
  std::printf("%-34s %14llu\n", "packet-ins to NOX",
              static_cast<unsigned long long>(dp.stats().packet_ins));
  std::printf("%-34s %14llu\n", "flow-mods from NOX",
              static_cast<unsigned long long>(dp.stats().flow_mods));
  std::printf("%-34s %14llu\n", "packet-outs from NOX",
              static_cast<unsigned long long>(dp.stats().packet_outs));
  std::printf("%-34s %14llu\n", "dhcp transactions (acks)",
              static_cast<unsigned long long>(router.dhcp().stats().acks));
  std::printf("%-34s %14llu\n", "dns queries proxied",
              static_cast<unsigned long long>(router.dns().stats().forwarded));
  std::printf("%-34s %14llu\n", "flows admitted",
              static_cast<unsigned long long>(
                  router.forwarding().stats().flows_installed));
  std::printf("%-34s %14llu\n", "hwdb Flows rows",
              static_cast<unsigned long long>(
                  router.event_export().stats().flow_rows));
  std::printf("%-34s %14llu\n", "hwdb Links rows",
              static_cast<unsigned long long>(
                  router.event_export().stats().link_rows));
  std::printf("%-34s %14llu\n", "hwdb Leases rows",
              static_cast<unsigned long long>(
                  router.event_export().stats().lease_rows));

  // The architectural payoff: flows set up once, then forwarded in the
  // datapath — controller involvement must be a small fraction.
  const double ctrl_fraction =
      rx_pkts == 0 ? 0
                   : static_cast<double>(dp.stats().packet_ins) /
                         static_cast<double>(rx_pkts);
  std::printf("\n-- control/data plane split --\n");
  std::printf("controller sees %.2f%% of packets; %.2f%% forwarded by flows\n",
              ctrl_fraction * 100.0, (1.0 - ctrl_fraction) * 100.0);

  const double wall_secs =
      std::chrono::duration<double>(wall_end - wall_start).count();
  std::printf("\n-- simulator throughput --\n");
  std::printf("%.0f packets through the full stack in %.2f s wall "
              "(%.0f pkts/s wall, %.0fx real time)\n",
              static_cast<double>(rx_pkts), wall_secs,
              static_cast<double>(rx_pkts) / wall_secs, 120.0 / wall_secs);

  std::printf("\nshape checks: controller fraction well under 10%%; hwdb rows "
              "grow with traffic;\n  every module in the diagram shows activity.\n");
  std::printf("\ncontroller stats: %llu pktin / %llu flowmod / %llu pktout / "
              "%llu errors\n",
              static_cast<unsigned long long>(ctl.stats().packet_ins),
              static_cast<unsigned long long>(ctl.stats().flow_mods),
              static_cast<unsigned long long>(ctl.stats().packet_outs),
              static_cast<unsigned long long>(ctl.stats().errors));

  // The telemetry registry as a client sees it: MetricsExport has been
  // polling all along; read the latest export back over the hwdb RPC
  // interface, exactly like an external UI would.
  std::printf("\n-- telemetry via hwdb RPC: "
              "SELECT name, value FROM Metrics [NOW] --\n");
  hwdb::rpc::InProcRpcLink rpc_link(router.loop(), router.db());
  hwdb::rpc::RpcClient& rpc_client = rpc_link.make_client();
  // Residency accounting surfaces (docs/residency.md): deposit this home's
  // snapshot image in a content-addressed store and run it through one
  // hibernate/resume cycle, so the fleet.resident_homes / fleet.image_bytes
  // gauges are live in the same registry the Metrics export polls.
  residency::ImageStore image_store;
  residency::ResidencyPolicy residency_policy;
  residency_policy.max_resident = 1;
  residency::ResidencyManager residency(residency_policy);
  residency.reset(1, router.loop().now());
  (void)image_store.put(0, router.snapshots().capture());
  residency.on_hibernated(0, router.loop().now(),
                          residency::ResidencyManager::kNever);
  residency.on_resumed(0, router.loop().now(), 0);
  // The RPC stack's own instruments (hwdb.rpc.*) attach when the link is
  // created; let one export period elapse so they appear in the snapshot.
  home.run_for(2 * kSecond);
  std::optional<hwdb::ResultSet> metrics;
  rpc_client.query("SELECT name, value FROM Metrics [NOW]",
                   [&](Result<hwdb::ResultSet> rs) {
                     if (rs.ok()) metrics = std::move(rs.value());
                   });
  home.run_for(10 * kMillisecond);
  if (!metrics.has_value()) {
    std::printf("RPC query failed\n");
    return 1;
  }

  std::map<std::string, std::size_t> per_layer;
  std::map<std::string, double> by_name;
  for (const auto& row : metrics->rows) {
    const std::string& name = row[0].as_text();
    ++per_layer[name.substr(0, name.find('.'))];
    by_name[name] = row[1].as_real();
  }
  std::printf("%zu samples in the latest export; per layer:",
              metrics->rows.size());
  for (const auto& [layer, n] : per_layer) {
    std::printf(" %s=%zu", layer.c_str(), n);
  }
  std::printf("\n");
  for (const char* name :
       {"openflow.flow_table.lookups", "openflow.flow_table.subtables",
        "openflow.flow_table.subtable_scans",
        "openflow.datapath.microflow_hits",
        "openflow.datapath.microflow_misses",
        "openflow.datapath.microflow_invalidations",
        "openflow.datapath.packet_ins",
        "nox.controller.packet_ins", "homework.dhcp.acks",
        "homework.dhcp.retransmits", "homework.dns.forwarded",
        "hwdb.database.inserts",
        // Recovery telemetry (the chaos suite's series): all zero in this
        // healthy run, but readable over the same RPC path.
        "nox.channel.reconnects", "nox.channel.resynced_flows",
        "hwdb.rpc.retries", "hwdb.rpc.timeouts", "hwdb.rpc.dup_suppressed",
        // Residency-plane accounting (docs/residency.md), read over the same
        // RPC path an external dashboard would use.
        "fleet.resident_homes", "fleet.image_bytes",
        "residency.image_bytes_deduped", "residency.resumes",
        "sim.host.tx_frames", "openflow.flow_table.lookup_ns.p50",
        "openflow.flow_table.lookup_ns.p99",
        "nox.controller.packet_in_dispatch_ns.p50",
        "nox.controller.packet_in_dispatch_ns.p99",
        "hwdb.database.insert_ns.p50", "hwdb.database.insert_ns.p99"}) {
    const auto it = by_name.find(name);
    std::printf("%-44s %14.0f\n", name, it == by_name.end() ? -1.0 : it->second);
  }
  return 0;
}
