#include "reconcile/reconciler.hpp"

#include <set>
#include <utility>
#include <variant>

#include "nox/controller.hpp"

namespace hw::reconcile {

namespace {

constexpr std::uint16_t kPolicyBlockPriority = 0x9100;
constexpr std::uint16_t kIpEthertype = 0x0800;

/// Collects component flow contributions straight into a DesiredState.
class StateSink final : public nox::FlowIntentSink {
 public:
  explicit StateSink(DesiredState& state) : state_(state) {}
  void add(nox::FlowIntent intent) override {
    DesiredFlow f;
    f.key = std::move(intent.key);
    f.match = intent.match;
    f.priority = intent.priority;
    f.actions = std::move(intent.actions);
    f.idle_timeout = intent.idle_timeout;
    f.hard_timeout = intent.hard_timeout;
    f.flags = intent.flags;
    state_.put_flow(std::move(f));
  }

 private:
  DesiredState& state_;
};

}  // namespace

std::vector<DesiredFlow> compile_block_flows(const policy::LoweredStatement& s) {
  std::vector<DesiredFlow> out;
  DesiredFlow src;
  src.key = "policy:block:src:" + s.mac;
  src.priority = kPolicyBlockPriority;
  src.actions = ofp::drop();
  DesiredFlow dst;
  dst.key = "policy:block:dst:" + s.mac;
  dst.priority = kPolicyBlockPriority;
  dst.actions = ofp::drop();
  if (s.ip) {
    // Leased device: drop its IP traffic in both directions.
    src.match = ofp::Match::any().with_dl_type(kIpEthertype).with_nw_src(*s.ip);
    dst.match = ofp::Match::any().with_dl_type(kIpEthertype).with_nw_dst(*s.ip);
  } else {
    // No lease yet: fall back to MAC-level drops.
    auto mac = MacAddress::parse(s.mac);
    if (!mac) return out;
    src.match = ofp::Match::any().with_dl_src(mac.value());
    dst.match = ofp::Match::any().with_dl_dst(mac.value());
  }
  out.push_back(std::move(src));
  out.push_back(std::move(dst));
  return out;
}

Reconciler::Reconciler(DesiredStore& store, telemetry::MetricRegistry& metrics)
    : Component(kName), store_(store), metrics_(metrics) {}

void Reconciler::bind_policy(policy::PolicyEngine& engine) {
  policy_ = &engine;
  engine.on_change([this] {
    if (!installed_) return;
    for (const nox::DatapathId dpid : controller().datapaths()) {
      request_round(dpid);
    }
  });
}

void Reconciler::install(nox::Controller& ctl) {
  Component::install(ctl);
  installed_ = true;
}

void Reconciler::request_round(nox::DatapathId dpid, bool resync) {
  PerDatapath& dp = per_dp_[dpid];
  if (resync) {
    // Abandon any in-flight round outright: its stats/barrier replies were
    // likely lost across the outage that triggered this resync, and waiting
    // for them would wedge the round forever.
    ++dp.generation;
    dp.in_flight = false;
    dp.dirty = false;
    dp.dirty_resync = false;
    dp.resync_origin = true;
  }
  if (dp.in_flight) {
    dp.dirty = true;
    return;
  }
  if (!installed_ || !controller().datapath_connected(dpid)) return;
  start_round(dpid, dp);
}

void Reconciler::start_round(nox::DatapathId dpid, PerDatapath& dp) {
  dp.in_flight = true;
  dp.started = std::chrono::steady_clock::now();
  metrics_.rounds.inc();
  dp.report = RoundReport{};
  dp.report.round = metrics_.rounds.value();
  rebuild_desired(dpid);
  apply_state_fixups(dpid, dp.report);
  const std::uint64_t gen = dp.generation;
  ofp::StatsRequest req;
  req.type = ofp::StatsType::Flow;
  req.body = ofp::FlowStatsRequest{};
  controller().request_stats(
      dpid, req, [this, dpid, gen](const ofp::StatsReply& reply) {
        const auto* entries =
            std::get_if<std::vector<ofp::FlowStatsEntry>>(&reply.body);
        const std::vector<ofp::FlowStatsEntry> empty;
        on_stats(dpid, gen, entries != nullptr ? *entries : empty);
      });
}

void Reconciler::rebuild_desired(nox::DatapathId dpid) {
  DesiredState& want = store_.state(dpid);
  want.flows.clear();
  StateSink sink(want);
  controller().collect_flow_intents(dpid, sink);

  // Rate caps are re-lowered from scratch each round so a lapsed policy
  // (schedule window closed, key removed) tears its cap down.
  for (auto& [mac, intent] : want.devices) intent.rate_limit_bps = 0;
  if (policy_ == nullptr) return;

  std::vector<policy::LoweredDevice> devices;
  devices.reserve(want.devices.size());
  for (const auto& [mac, intent] : want.devices) {
    policy::LoweredDevice dev;
    dev.mac = mac;
    std::set<std::string> tags(intent.tags.begin(), intent.tags.end());
    for (const auto& t : policy_->tags_of(dpid, mac)) tags.insert(t);
    dev.tags.assign(tags.begin(), tags.end());
    dev.ip = intent.lease_ip;
    devices.push_back(std::move(dev));
  }
  const auto statements = policy::lower_policies(
      policy_->policies(), std::move(devices), policy_->eval_context());
  for (const auto& s : statements) {
    switch (s.verb) {
      case policy::LoweredStatement::Verb::BlockNetwork:
        for (DesiredFlow& f : compile_block_flows(s)) {
          want.put_flow(std::move(f));
        }
        break;
      case policy::LoweredStatement::Verb::RateLimit:
        want.devices[s.mac].rate_limit_bps = s.rate_bps;
        break;
    }
  }
}

void Reconciler::apply_state_fixups(nox::DatapathId dpid, RoundReport& report) {
  const DesiredState* want = store_.find(dpid);
  if (want == nullptr) return;
  for (const auto& [mac, intent] : want->devices) {
    if (intent.admission != DeviceIntent::Admission::Unspecified &&
        hooks_.apply_admission &&
        hooks_.apply_admission(dpid, mac, intent.admission)) {
      ++report.registry_fixups;
      metrics_.registry_fixups.inc();
    }
    if (intent.lease_ip && hooks_.adopt_lease &&
        hooks_.adopt_lease(dpid, mac, *intent.lease_ip)) {
      ++report.lease_fixups;
      metrics_.lease_fixups.inc();
    }
    if (hooks_.apply_qos &&
        hooks_.apply_qos(dpid, mac, intent.rate_limit_bps)) {
      ++report.qos_applied;
      metrics_.qos_applied.inc();
    }
  }
}

void Reconciler::on_stats(nox::DatapathId dpid, std::uint64_t generation,
                          const std::vector<ofp::FlowStatsEntry>& entries) {
  auto it = per_dp_.find(dpid);
  if (it == per_dp_.end()) return;
  PerDatapath& dp = it->second;
  if (!dp.in_flight || generation != dp.generation) return;

  dp.actual.refresh(entries);
  const DesiredState& want = store_.state(dpid);
  const FlowDelta delta = compute_flow_delta(want, dp.actual.flows());

  dp.report.added = delta.add.size();
  dp.report.modified = delta.modify.size();
  dp.report.deleted = delta.del.size();
  dp.report.noop = delta.noop;
  metrics_.deltas_added.inc(delta.add.size());
  metrics_.deltas_modified.inc(delta.modify.size());
  metrics_.deltas_deleted.inc(delta.del.size());
  metrics_.deltas_noop.inc(delta.noop);

  if (delta.empty()) {
    dp.report.converged = true;
    metrics_.converged_rounds.inc();
    finish_round(dpid, generation);
    return;
  }

  for (const Deletion& d : delta.del) {
    ofp::FlowMod mod;
    mod.command = ofp::FlowModCommand::DeleteStrict;
    mod.match = d.match;
    mod.priority = d.priority;
    controller().send_flow_mod(dpid, mod);
  }
  auto send = [&](const DesiredFlow& f, ofp::FlowModCommand cmd) {
    ofp::FlowMod mod;
    mod.command = cmd;
    mod.match = f.match;
    mod.priority = f.priority;
    mod.cookie = f.cookie();
    mod.idle_timeout = f.idle_timeout;
    mod.hard_timeout = f.hard_timeout;
    mod.flags = f.flags;
    mod.actions = f.actions;
    controller().send_flow_mod(dpid, mod);
  };
  for (const DesiredFlow& f : delta.modify) {
    send(f, ofp::FlowModCommand::ModifyStrict);
  }
  for (const DesiredFlow& f : delta.add) send(f, ofp::FlowModCommand::Add);
  dp.actual.apply(delta);

  controller().send_barrier(dpid,
                            [this, dpid, generation] {
                              finish_round(dpid, generation);
                            });
}

void Reconciler::finish_round(nox::DatapathId dpid, std::uint64_t generation) {
  auto it = per_dp_.find(dpid);
  if (it == per_dp_.end()) return;
  PerDatapath& dp = it->second;
  if (!dp.in_flight || generation != dp.generation) return;
  dp.in_flight = false;
  const auto elapsed = std::chrono::steady_clock::now() - dp.started;
  metrics_.round_ns.record(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
  dp.last = dp.report;
  dp.has_last = true;
  if (dp.resync_origin) {
    dp.resync_origin = false;
    controller().confirm_resync(dpid, dp.report.added + dp.report.modified);
  }
  if (dp.dirty) {
    dp.dirty = false;
    const bool resync = dp.dirty_resync;
    dp.dirty_resync = false;
    request_round(dpid, resync);
  }
}

bool Reconciler::verify_converged(nox::DatapathId dpid,
                                  const ofp::FlowTable& table) {
  rebuild_desired(dpid);
  std::vector<ActualFlow> rows;
  table.for_each([&](const ofp::FlowEntry& e) {
    rows.push_back({e.match, e.priority, e.cookie, e.actions, e.idle_timeout,
                    e.hard_timeout});
  });
  return compute_flow_delta(store_.state(dpid), rows).empty();
}

const RoundReport* Reconciler::last_report(nox::DatapathId dpid) const {
  auto it = per_dp_.find(dpid);
  if (it == per_dp_.end() || !it->second.has_last) return nullptr;
  return &it->second.last;
}

void Reconciler::handle_datapath_leave(nox::DatapathId dpid) {
  auto it = per_dp_.find(dpid);
  if (it == per_dp_.end()) return;
  ++it->second.generation;
  it->second.in_flight = false;
  it->second.actual.invalidate();
}

void Reconciler::handle_flow_removed(nox::DatapathId dpid,
                                     const ofp::FlowRemoved& fr) {
  auto it = per_dp_.find(dpid);
  if (it != per_dp_.end()) {
    it->second.actual.note_flow_removed(fr.match, fr.priority);
  }
  // Losing one of our own rows (idle/hard timeout, eviction) is divergence:
  // schedule a round to re-install it.
  if (nox::is_desired_cookie(fr.cookie)) request_round(dpid);
}

}  // namespace hw::reconcile
