#include "reconcile/actual_state.hpp"

#include <map>

namespace hw::reconcile {

namespace {

/// Flow identity for delta matching: the serialized match pattern plus the
/// priority. Serialization canonicalizes wildcarded fields, so two matches
/// that compare same_pattern() serialize identically.
std::string flow_identity(const ofp::Match& match, std::uint16_t priority) {
  ByteWriter w;
  match.serialize(w);
  w.u16(priority);
  const Bytes& b = w.bytes();
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

}  // namespace

FlowDelta compute_flow_delta(const DesiredState& desired,
                             const std::vector<ActualFlow>& actual) {
  FlowDelta delta;
  std::map<std::string, const ActualFlow*> by_identity;
  for (const ActualFlow& row : actual) {
    by_identity[flow_identity(row.match, row.priority)] = &row;
  }

  for (const auto& [key, want] : desired.flows) {
    const std::string id = flow_identity(want.match, want.priority);
    auto it = by_identity.find(id);
    if (it == by_identity.end()) {
      delta.add.push_back(want);
      continue;
    }
    const ActualFlow& have = *it->second;
    by_identity.erase(it);  // claimed
    const bool timeouts_equal = have.idle_timeout == want.idle_timeout &&
                                have.hard_timeout == want.hard_timeout;
    const bool payload_equal =
        have.actions == want.actions && have.cookie == want.cookie();
    if (timeouts_equal && payload_equal) {
      ++delta.noop;
    } else if (timeouts_equal) {
      delta.modify.push_back(want);
    } else {
      // Modify never rewrites timeouts, so replace the row outright.
      delta.del.push_back({want.match, want.priority});
      delta.add.push_back(want);
    }
  }

  // Whatever desired-owned rows remain unclaimed are stale — reap them.
  // Foreign rows (reactive flows, cookie 0) are outside our namespace.
  for (const auto& [id, row] : by_identity) {
    if (nox::is_desired_cookie(row->cookie)) {
      delta.del.push_back({row->match, row->priority});
    }
  }
  return delta;
}

void ActualState::refresh(const std::vector<ofp::FlowStatsEntry>& entries) {
  flows_.clear();
  flows_.reserve(entries.size());
  for (const auto& e : entries) {
    flows_.push_back({e.match, e.priority, e.cookie, e.actions, e.idle_timeout,
                      e.hard_timeout});
  }
  fresh_ = true;
}

void ActualState::note_flow_removed(const ofp::Match& match,
                                    std::uint16_t priority) {
  std::erase_if(flows_, [&](const ActualFlow& row) {
    return row.priority == priority && row.match.same_pattern(match);
  });
}

void ActualState::apply(const FlowDelta& delta) {
  for (const Deletion& d : delta.del) note_flow_removed(d.match, d.priority);
  auto upsert = [&](const DesiredFlow& want) {
    for (ActualFlow& row : flows_) {
      if (row.priority == want.priority && row.match.same_pattern(want.match)) {
        row.actions = want.actions;
        row.cookie = want.cookie();
        row.idle_timeout = want.idle_timeout;
        row.hard_timeout = want.hard_timeout;
        return;
      }
    }
    flows_.push_back({want.match, want.priority, want.cookie(), want.actions,
                      want.idle_timeout, want.hard_timeout});
  };
  for (const DesiredFlow& f : delta.add) upsert(f);
  for (const DesiredFlow& f : delta.modify) upsert(f);
}

}  // namespace hw::reconcile
