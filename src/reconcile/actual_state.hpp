// The controller-side mirror of what one datapath's flow table actually
// holds, refreshed from flow-stats readback and kept warm between rounds by
// FLOW_REMOVED notifications and optimistic delta application. The delta
// computation against a DesiredState lives here too — it is a pure function
// so the property tests can hammer it without a datapath.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "openflow/messages.hpp"
#include "reconcile/desired_state.hpp"

namespace hw::reconcile {

/// One row of the mirrored table (the reconciler-relevant subset of
/// FlowStatsEntry).
struct ActualFlow {
  ofp::Match match;
  std::uint16_t priority = 0x8000;
  std::uint64_t cookie = 0;
  ofp::ActionList actions;
  std::uint16_t idle_timeout = 0;
  std::uint16_t hard_timeout = 0;
  bool operator==(const ActualFlow& o) const {
    return match.same_pattern(o.match) && priority == o.priority &&
           cookie == o.cookie && actions == o.actions &&
           idle_timeout == o.idle_timeout && hard_timeout == o.hard_timeout;
  }
};

/// A strict delete (identity = exact match pattern + priority).
struct Deletion {
  ofp::Match match;
  std::uint16_t priority = 0;
};

/// The minimal idempotent delta that moves an actual table to the desired
/// one. Applying it and recomputing must yield an empty delta.
struct FlowDelta {
  std::vector<DesiredFlow> add;
  /// Existing rows whose actions/cookie drifted but whose timeouts agree —
  /// healed in place with OFPFC_MODIFY_STRICT.
  std::vector<DesiredFlow> modify;
  /// Desired-owned rows (cookie tag 0xD5) with no claiming desired flow.
  std::vector<Deletion> del;
  /// Rows already exactly as desired.
  std::size_t noop = 0;

  [[nodiscard]] bool empty() const {
    return add.empty() && modify.empty() && del.empty();
  }
  [[nodiscard]] std::size_t mods() const {
    return add.size() + modify.size() + del.size();
  }
};

/// Computes the delta from `actual` to `desired`. Rules:
///  - identity is (match pattern, priority); rows are matched strictly;
///  - a matched row equal in actions, cookie and both timeouts is a noop;
///  - a matched row differing only in actions/cookie is a ModifyStrict
///    (FlowTable's Modify semantics update actions+cookie but never
///    timeouts, so modifying is only sound when timeouts already agree);
///  - a matched row with different timeouts is DeleteStrict + Add;
///  - an unmatched desired flow is an Add;
///  - an unmatched actual row carrying the desired-state cookie tag is a
///    DeleteStrict — but reactive flows (foreign cookies, incl. 0) are never
///    touched: the reconciler owns only its own namespace.
[[nodiscard]] FlowDelta compute_flow_delta(const DesiredState& desired,
                                           const std::vector<ActualFlow>& actual);

/// Mirror of one datapath's table between stats refreshes.
class ActualState {
 public:
  /// Replaces the mirror with a flow-stats readback.
  void refresh(const std::vector<ofp::FlowStatsEntry>& entries);
  /// Drops the row named by a FLOW_REMOVED (timeout/eviction between rounds).
  void note_flow_removed(const ofp::Match& match, std::uint16_t priority);
  /// Optimistically applies a delta we just sent (barrier-confirmed), so the
  /// mirror stays warm without another readback.
  void apply(const FlowDelta& delta);

  [[nodiscard]] const std::vector<ActualFlow>& flows() const { return flows_; }
  [[nodiscard]] bool fresh() const { return fresh_; }
  void invalidate() { fresh_ = false; }

 private:
  std::vector<ActualFlow> flows_;
  bool fresh_ = false;
};

}  // namespace hw::reconcile
