// Goal-state model: the per-datapath DesiredState document the controller
// owns. Imperative writers (REST control API, USB policy keys, the DHCP
// allocator, the policy compiler's lowering stage) mutate this document;
// the Reconciler diffs it against the datapath's actual table and issues
// minimal idempotent deltas. The store is snapshottable ('DSTA' chunk) so
// desired state survives whole-home checkpoint/restore.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "nox/component.hpp"
#include "openflow/match.hpp"
#include "openflow/actions.hpp"
#include "snapshot/snapshottable.hpp"
#include "util/addr.hpp"

namespace hw::reconcile {

/// One flow that must exist in the datapath's table. Identity is `key`
/// (stable across rounds); the wire cookie is derived from it.
struct DesiredFlow {
  std::string key;
  ofp::Match match;
  std::uint16_t priority = 0x8000;
  ofp::ActionList actions;
  std::uint16_t idle_timeout = 0;
  std::uint16_t hard_timeout = 0;
  std::uint16_t flags = 0;

  [[nodiscard]] std::uint64_t cookie() const {
    return nox::desired_cookie(key);
  }
  bool operator==(const DesiredFlow& o) const {
    return key == o.key && match.same_pattern(o.match) &&
           priority == o.priority && actions == o.actions &&
           idle_timeout == o.idle_timeout && hard_timeout == o.hard_timeout &&
           flags == o.flags;
  }
};

/// Declarative per-device intent: admission verdict, policy tags, the DHCP
/// scope binding, and the lowered QoS cap. The reconciler's state-fixup
/// pass heals registry/lease divergence against these.
struct DeviceIntent {
  enum class Admission : std::uint8_t { Unspecified = 0, Permitted, Denied };
  Admission admission = Admission::Unspecified;
  std::vector<std::string> tags;
  std::optional<Ipv4Address> lease_ip;
  /// Lowered from the active policy set each round (0 = uncapped).
  std::uint64_t rate_limit_bps = 0;
  bool operator==(const DeviceIntent&) const = default;
};

/// The desired-state document for one datapath.
struct DesiredState {
  /// Flow identity key → flow. Map order gives deterministic delta order.
  std::map<std::string, DesiredFlow> flows;
  /// Device mac (canonical string form) → intent.
  std::map<std::string, DeviceIntent> devices;
  /// Bumped on every mutation (observability / cheap change detection).
  std::uint64_t version = 0;

  void put_flow(DesiredFlow flow) {
    ++version;
    flows[flow.key] = std::move(flow);
  }
  bool erase_flow(const std::string& key) {
    if (flows.erase(key) == 0) return false;
    ++version;
    return true;
  }
  DeviceIntent& device(const std::string& mac) {
    ++version;
    return devices[mac];
  }
  bool operator==(const DesiredState& other) const {
    return flows == other.flows && devices == other.devices;
  }
};

/// Per-dpid desired-state documents, snapshottable as the 'DSTA' layer.
class DesiredStore final : public snapshot::Snapshottable {
 public:
  [[nodiscard]] DesiredState& state(nox::DatapathId dpid) {
    return states_[dpid];
  }
  [[nodiscard]] const DesiredState* find(nox::DatapathId dpid) const {
    auto it = states_.find(dpid);
    return it == states_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] std::vector<nox::DatapathId> dpids() const;
  [[nodiscard]] std::size_t size() const { return states_.size(); }

  // -- Snapshottable ('DSTA' chunk) -------------------------------------------
  // Captures every dpid's flows and device intents. Restore is silent (no
  // reconcile round is triggered; the restoring home drives its own rounds
  // through warm restart / resync) and all-or-nothing.
  void save(snapshot::Writer& w) const override;
  Status restore(const snapshot::Reader& r) override;

 private:
  std::map<nox::DatapathId, DesiredState> states_;
};

}  // namespace hw::reconcile
