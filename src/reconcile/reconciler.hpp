// The reconciler: a NOX component that converges each datapath's flow table
// and controller-side state onto the DesiredStore's goal state. A round is
// rebuild (component contributions + compiled policy) → state fixups →
// flow-stats readback → minimal idempotent delta → barrier confirmation.
// Replaces the blind replay-resync: recovery from any divergence costs one
// round and only the FlowMods that divergence actually requires.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "nox/component.hpp"
#include "openflow/flow_table.hpp"
#include "policy/engine.hpp"
#include "reconcile/actual_state.hpp"
#include "reconcile/desired_state.hpp"
#include "telemetry/metrics.hpp"

namespace hw::reconcile {

/// What one reconcile round did (per dpid; exposed for tests/observability).
struct RoundReport {
  std::uint64_t round = 0;  // reconcile.rounds value when this round ran
  std::size_t added = 0;
  std::size_t modified = 0;
  std::size_t deleted = 0;
  std::size_t noop = 0;
  std::size_t registry_fixups = 0;
  std::size_t lease_fixups = 0;
  std::size_t qos_applied = 0;
  /// True when the readback already matched desired state (zero delta).
  bool converged = false;
};

class Reconciler final : public nox::Component {
 public:
  static constexpr const char* kName = "reconciler";

  /// Controller-side state fixups, injected by the router wiring (the
  /// reconcile library must not depend on the homework modules). Each hook
  /// heals one divergence class and returns true if it changed anything.
  struct Hooks {
    /// Registry state vs DeviceIntent::admission.
    std::function<bool(nox::DatapathId, const std::string& mac,
                       DeviceIntent::Admission)>
        apply_admission;
    /// DHCP scope + registry lease vs DeviceIntent::lease_ip.
    std::function<bool(nox::DatapathId, const std::string& mac, Ipv4Address ip)>
        adopt_lease;
    /// Port-queue configuration vs the lowered rate cap.
    std::function<bool(nox::DatapathId, const std::string& mac,
                       std::uint64_t rate_bps)>
        apply_qos;
  };

  explicit Reconciler(DesiredStore& store,
                      telemetry::MetricRegistry& metrics =
                          telemetry::MetricRegistry::current());

  [[nodiscard]] DesiredStore& store() { return store_; }
  void set_hooks(Hooks hooks) { hooks_ = std::move(hooks); }

  /// Binds the policy engine: desired state gains a compiled-policy layer
  /// (drop flows + QoS intents lowered over the device population) and any
  /// policy change schedules a round on every known datapath.
  void bind_policy(policy::PolicyEngine& engine);

  /// Schedules a reconcile round for `dpid`. Rounds in flight coalesce:
  /// requests arriving mid-round mark the state dirty and one follow-up
  /// round runs after the barrier. `resync` marks the round as serving a
  /// channel re-sync: the in-flight round (if any) is abandoned — its stats
  /// replies may never arrive across a restart — and the new round ends in
  /// Controller::confirm_resync.
  void request_round(nox::DatapathId dpid, bool resync = false);

  /// Wire this to Controller::set_resync_hook.
  void on_datapath_ready(nox::DatapathId dpid, bool resync) {
    request_round(dpid, resync);
  }

  /// Synchronous convergence check against a live table (tests / fleet
  /// post-run verification): rebuilds desired state and diffs it against
  /// `table` without touching the datapath.
  [[nodiscard]] bool verify_converged(nox::DatapathId dpid,
                                      const ofp::FlowTable& table);

  [[nodiscard]] const RoundReport* last_report(nox::DatapathId dpid) const;

  // -- Component ---------------------------------------------------------------
  void install(nox::Controller& ctl) override;
  void handle_datapath_leave(nox::DatapathId dpid) override;
  void handle_flow_removed(nox::DatapathId dpid,
                           const ofp::FlowRemoved& fr) override;

 private:
  struct PerDatapath {
    ActualState actual;
    bool in_flight = false;
    bool dirty = false;
    bool dirty_resync = false;
    bool resync_origin = false;
    /// Bumped on force-resets; stats/barrier callbacks from an abandoned
    /// round carry a stale generation and are dropped.
    std::uint64_t generation = 0;
    RoundReport report;
    RoundReport last;
    bool has_last = false;
    std::chrono::steady_clock::time_point started{};
  };

  void start_round(nox::DatapathId dpid, PerDatapath& dp);
  /// Recomputes `dpid`'s desired flows: component contributions overlaid
  /// with the compiled policy layer; device rate caps are re-lowered.
  void rebuild_desired(nox::DatapathId dpid);
  void apply_state_fixups(nox::DatapathId dpid, RoundReport& report);
  void on_stats(nox::DatapathId dpid, std::uint64_t generation,
                const std::vector<ofp::FlowStatsEntry>& entries);
  void finish_round(nox::DatapathId dpid, std::uint64_t generation);

  DesiredStore& store_;
  policy::PolicyEngine* policy_ = nullptr;
  bool installed_ = false;
  Hooks hooks_;
  std::map<nox::DatapathId, PerDatapath> per_dp_;

  struct Instruments {
    explicit Instruments(telemetry::MetricRegistry& reg)
        : rounds{reg, "reconcile.rounds"},
          converged_rounds{reg, "reconcile.converged_rounds"},
          deltas_added{reg, "reconcile.deltas_added"},
          deltas_modified{reg, "reconcile.deltas_modified"},
          deltas_deleted{reg, "reconcile.deltas_deleted"},
          deltas_noop{reg, "reconcile.deltas_noop"},
          registry_fixups{reg, "reconcile.registry_fixups"},
          lease_fixups{reg, "reconcile.lease_fixups"},
          qos_applied{reg, "reconcile.qos_applied"},
          round_ns{reg, "reconcile.round_ns"} {}
    telemetry::Counter rounds;
    telemetry::Counter converged_rounds;
    telemetry::Counter deltas_added;
    telemetry::Counter deltas_modified;
    telemetry::Counter deltas_deleted;
    telemetry::Counter deltas_noop;
    telemetry::Counter registry_fixups;
    telemetry::Counter lease_fixups;
    telemetry::Counter qos_applied;
    telemetry::Histogram round_ns;
  } metrics_;
};

/// Builds the compiled-policy flows for one lowered statement. Exposed for
/// tests; the reconciler calls it per BlockNetwork statement.
std::vector<DesiredFlow> compile_block_flows(const policy::LoweredStatement& s);

}  // namespace hw::reconcile
