#include "reconcile/desired_state.hpp"

namespace hw::reconcile {

namespace {

constexpr std::uint32_t kDesiredTag = snapshot::tag("DSTA");

void put_string_list(ByteWriter& w, const std::vector<std::string>& list) {
  w.u32(static_cast<std::uint32_t>(list.size()));
  for (const auto& s : list) snapshot::put_string(w, s);
}

Result<std::vector<std::string>> get_string_list(ByteReader& r) {
  auto n = r.u32();
  if (!n) return n.error();
  std::vector<std::string> out;
  out.reserve(n.value());
  for (std::uint32_t i = 0; i < n.value(); ++i) {
    auto s = snapshot::get_string(r);
    if (!s) return s.error();
    out.push_back(std::move(s).take());
  }
  return out;
}

void put_flow(ByteWriter& w, const DesiredFlow& f) {
  snapshot::put_string(w, f.key);
  f.match.serialize(w);
  w.u16(f.priority);
  w.u16(f.idle_timeout);
  w.u16(f.hard_timeout);
  w.u16(f.flags);
  ByteWriter actions;
  ofp::serialize_actions(actions, f.actions);
  w.u32(static_cast<std::uint32_t>(actions.size()));
  w.raw(actions.bytes());
}

Result<DesiredFlow> get_flow(ByteReader& r) {
  DesiredFlow f;
  auto key = snapshot::get_string(r);
  if (!key) return key.error();
  f.key = std::move(key).take();
  auto match = ofp::Match::parse(r);
  if (!match) return match.error();
  f.match = match.value();
  auto priority = r.u16();
  auto idle = r.u16();
  auto hard = r.u16();
  auto flags = r.u16();
  auto actions_len = r.u32();
  if (!priority || !idle || !hard || !flags || !actions_len) {
    return make_error("desired snapshot: truncated flow");
  }
  f.priority = priority.value();
  f.idle_timeout = idle.value();
  f.hard_timeout = hard.value();
  f.flags = flags.value();
  auto actions = ofp::parse_actions(r, actions_len.value());
  if (!actions) return actions.error();
  f.actions = std::move(actions).take();
  return f;
}

void put_device(ByteWriter& w, const std::string& mac, const DeviceIntent& d) {
  snapshot::put_string(w, mac);
  w.u8(static_cast<std::uint8_t>(d.admission));
  put_string_list(w, d.tags);
  w.u8(d.lease_ip.has_value() ? 1 : 0);
  if (d.lease_ip) snapshot::put_ip(w, *d.lease_ip);
  w.u64(d.rate_limit_bps);
}

}  // namespace

std::vector<nox::DatapathId> DesiredStore::dpids() const {
  std::vector<nox::DatapathId> out;
  out.reserve(states_.size());
  for (const auto& [dpid, state] : states_) out.push_back(dpid);
  return out;
}

void DesiredStore::save(snapshot::Writer& w) const {
  ByteWriter& c = w.begin_chunk(kDesiredTag);
  c.u32(static_cast<std::uint32_t>(states_.size()));
  for (const auto& [dpid, state] : states_) {
    c.u64(dpid);
    c.u64(state.version);
    c.u32(static_cast<std::uint32_t>(state.flows.size()));
    for (const auto& [key, flow] : state.flows) put_flow(c, flow);
    c.u32(static_cast<std::uint32_t>(state.devices.size()));
    for (const auto& [mac, intent] : state.devices) put_device(c, mac, intent);
  }
  w.end_chunk();
}

Status DesiredStore::restore(const snapshot::Reader& r) {
  const Bytes* chunk = r.find(kDesiredTag);
  if (chunk == nullptr) return Status::success();
  ByteReader br(*chunk);
  auto nstates = br.u32();
  if (!nstates) return nstates.error();
  std::map<nox::DatapathId, DesiredState> states;
  for (std::uint32_t i = 0; i < nstates.value(); ++i) {
    auto dpid = br.u64();
    auto version = br.u64();
    auto nflows = br.u32();
    if (!dpid || !version || !nflows) {
      return make_error("desired snapshot: truncated datapath header");
    }
    DesiredState& state = states[dpid.value()];
    state.version = version.value();
    for (std::uint32_t f = 0; f < nflows.value(); ++f) {
      auto flow = get_flow(br);
      if (!flow) return flow.error();
      std::string key = flow.value().key;
      state.flows.emplace(std::move(key), std::move(flow).take());
    }
    auto ndevices = br.u32();
    if (!ndevices) return ndevices.error();
    for (std::uint32_t d = 0; d < ndevices.value(); ++d) {
      auto mac = snapshot::get_string(br);
      if (!mac) return mac.error();
      auto admission = br.u8();
      if (!admission) return admission.error();
      DeviceIntent intent;
      if (admission.value() >
          static_cast<std::uint8_t>(DeviceIntent::Admission::Denied)) {
        return make_error("desired snapshot: bad admission verdict");
      }
      intent.admission =
          static_cast<DeviceIntent::Admission>(admission.value());
      auto tags = get_string_list(br);
      if (!tags) return tags.error();
      intent.tags = std::move(tags).take();
      auto has_ip = br.u8();
      if (!has_ip) return has_ip.error();
      if (has_ip.value() != 0) {
        auto ip = snapshot::get_ip(br);
        if (!ip) return ip.error();
        intent.lease_ip = ip.value();
      }
      auto rate = br.u64();
      if (!rate) return rate.error();
      intent.rate_limit_bps = rate.value();
      state.devices.emplace(std::move(mac).take(), std::move(intent));
    }
  }
  states_ = std::move(states);
  return Status::success();
}

}  // namespace hw::reconcile
