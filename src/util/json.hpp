// Minimal JSON value model, parser and serializer for the control API
// (REST endpoints exchange JSON) and policy-key payloads. Supports the full
// JSON grammar except \u escapes beyond the BMP-ASCII subset.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.hpp"

namespace hw {

class Json;
using JsonArray = std::vector<Json>;
using JsonObject = std::map<std::string, Json>;

/// Immutable-ish JSON value. Object keys are ordered (std::map) so serialized
/// output is deterministic — important for golden tests.
class Json {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Json() : type_(Type::Null) {}
  Json(std::nullptr_t) : type_(Type::Null) {}          // NOLINT
  Json(bool b) : type_(Type::Bool), bool_(b) {}        // NOLINT
  Json(double n) : type_(Type::Number), num_(n) {}     // NOLINT
  Json(int n) : Json(static_cast<double>(n)) {}        // NOLINT
  Json(std::int64_t n) : Json(static_cast<double>(n)) {}    // NOLINT
  Json(std::uint64_t n) : Json(static_cast<double>(n)) {}   // NOLINT
  Json(std::string s) : type_(Type::String), str_(std::move(s)) {}  // NOLINT
  Json(const char* s) : Json(std::string(s)) {}        // NOLINT
  Json(JsonArray a) : type_(Type::Array), arr_(std::move(a)) {}     // NOLINT
  Json(JsonObject o) : type_(Type::Object), obj_(std::move(o)) {}   // NOLINT

  static Result<Json> parse(std::string_view text);

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::Null; }
  [[nodiscard]] bool is_object() const { return type_ == Type::Object; }
  [[nodiscard]] bool is_array() const { return type_ == Type::Array; }
  [[nodiscard]] bool is_string() const { return type_ == Type::String; }
  [[nodiscard]] bool is_number() const { return type_ == Type::Number; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::Bool; }

  [[nodiscard]] bool as_bool(bool fallback = false) const {
    return type_ == Type::Bool ? bool_ : fallback;
  }
  [[nodiscard]] double as_number(double fallback = 0) const {
    return type_ == Type::Number ? num_ : fallback;
  }
  [[nodiscard]] std::int64_t as_int(std::int64_t fallback = 0) const {
    return type_ == Type::Number ? static_cast<std::int64_t>(num_) : fallback;
  }
  [[nodiscard]] const std::string& as_string() const { return str_; }
  [[nodiscard]] const JsonArray& as_array() const { return arr_; }
  [[nodiscard]] const JsonObject& as_object() const { return obj_; }

  /// Object member lookup; returns a null Json when absent or not an object.
  [[nodiscard]] const Json& operator[](const std::string& key) const;
  [[nodiscard]] bool contains(const std::string& key) const {
    return type_ == Type::Object && obj_.count(key) > 0;
  }

  /// Mutators for building values.
  void set(std::string key, Json value);
  void push_back(Json value);

  [[nodiscard]] std::string dump(int indent = 0) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  JsonArray arr_;
  JsonObject obj_;
};

}  // namespace hw
