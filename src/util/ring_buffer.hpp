// Fixed-capacity overwriting ring buffer: the storage discipline of hwdb's
// "active ephemeral stream database ... fixed size memory buffer" (paper §2).
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace hw {

/// Oldest entries are overwritten once capacity is reached. Iteration visits
/// entries oldest-first. Never allocates after construction.
template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : buf_(capacity) {
    assert(capacity > 0 && "ring buffer needs nonzero capacity");
  }

  /// Inserts, overwriting the oldest entry when full. Returns true if an old
  /// entry was evicted.
  bool push(T value) {
    const bool evicting = size_ == buf_.size();
    buf_[head_] = std::move(value);
    head_ = (head_ + 1) % buf_.size();
    if (evicting) {
      tail_ = head_;
      ++evicted_;
    } else {
      ++size_;
    }
    return evicting;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  /// Total entries overwritten since construction (hwdb exposes this so
  /// clients can detect data loss in long windows).
  [[nodiscard]] std::uint64_t evicted() const { return evicted_; }

  /// Element `i` counting from the oldest (0) to the newest (size()-1).
  [[nodiscard]] const T& at(std::size_t i) const {
    assert(i < size_);
    return buf_[(tail_ + i) % buf_.size()];
  }

  [[nodiscard]] const T& newest() const { return at(size_ - 1); }
  [[nodiscard]] const T& oldest() const { return at(0); }

  void clear() {
    head_ = tail_ = size_ = 0;
  }

  /// Snapshot-restore only: overwrites the eviction count after a clear()
  /// plus refill reproduced the buffer's contents.
  void restore_evicted(std::uint64_t n) { evicted_ = n; }

  /// Visits entries oldest-first; stops early if `fn` returns false.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < size_; ++i) {
      if (!fn(at(i))) return;
    }
  }

  /// Visits entries newest-first; stops early if `fn` returns false. Windowed
  /// queries ([RANGE n] / [ROWS n]) scan from the newest end and stop at the
  /// window boundary, so cost is O(window), not O(table).
  template <typename Fn>
  void for_each_newest_first(Fn&& fn) const {
    for (std::size_t i = size_; i > 0; --i) {
      if (!fn(at(i - 1))) return;
    }
  }

 private:
  std::vector<T> buf_;
  std::size_t head_ = 0;  // next write slot
  std::size_t tail_ = 0;  // oldest element
  std::size_t size_ = 0;
  std::uint64_t evicted_ = 0;
};

}  // namespace hw
