#include "util/strings.hpp"

#include <algorithm>
#include <cctype>

namespace hw {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_whitespace(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  return a.size() == b.size() &&
         std::equal(a.begin(), a.end(), b.begin(), [](char x, char y) {
           return std::tolower(static_cast<unsigned char>(x)) ==
                  std::tolower(static_cast<unsigned char>(y));
         });
}

bool starts_with_i(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && iequals(s.substr(0, prefix.size()), prefix);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool domain_matches(std::string_view name, std::string_view pattern) {
  if (pattern.substr(0, 2) == "*.") {
    const std::string_view suffix = pattern.substr(2);
    if (iequals(name, suffix)) return true;
    if (name.size() > suffix.size() + 1) {
      const std::string_view tail = name.substr(name.size() - suffix.size());
      return iequals(tail, suffix) && name[name.size() - suffix.size() - 1] == '.';
    }
    return false;
  }
  return iequals(name, pattern);
}

}  // namespace hw
