// Minimal expected-style result type (std::expected is C++23; we target C++20).
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace hw {

/// Error payload: a human-readable message. Kept deliberately simple; the
/// router's failure modes are protocol-parse and lookup errors, and callers
/// either propagate or log them.
struct Error {
  std::string message;
};

/// Result<T> holds either a value or an Error. Modeled after std::expected
/// with the subset of the API this codebase needs.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error err) : error_(std::move(err)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const T& value() const& {
    assert(ok());
    return *value_;
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return *value_;
  }
  [[nodiscard]] T&& take() && {
    assert(ok());
    return std::move(*value_);
  }

  [[nodiscard]] const Error& error() const {
    assert(!ok());
    return *error_;
  }

  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  std::optional<Error> error_;
};

/// Result<void> analogue.
class Status {
 public:
  Status() = default;
  Status(Error err) : error_(std::move(err)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }
  [[nodiscard]] const Error& error() const {
    assert(!ok());
    return *error_;
  }

  static Status success() { return {}; }
  static Status failure(std::string message) { return Status{Error{std::move(message)}}; }

 private:
  std::optional<Error> error_;
};

inline Error make_error(std::string message) { return Error{std::move(message)}; }

}  // namespace hw
