// Link-layer and network-layer address value types.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "util/result.hpp"

namespace hw {

/// 48-bit IEEE 802 MAC address.
class MacAddress {
 public:
  constexpr MacAddress() = default;
  explicit constexpr MacAddress(std::array<std::uint8_t, 6> octets) : octets_(octets) {}

  /// Parses "aa:bb:cc:dd:ee:ff" (case-insensitive).
  static Result<MacAddress> parse(std::string_view text);
  /// Deterministic locally-administered address derived from an index; used by
  /// the simulator to mint device MACs.
  static MacAddress from_index(std::uint32_t index);

  static constexpr MacAddress broadcast() {
    return MacAddress{{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}};
  }
  static constexpr MacAddress zero() { return MacAddress{}; }

  [[nodiscard]] bool is_broadcast() const { return *this == broadcast(); }
  [[nodiscard]] bool is_multicast() const { return (octets_[0] & 0x01) != 0; }
  [[nodiscard]] bool is_zero() const { return *this == zero(); }

  [[nodiscard]] const std::array<std::uint8_t, 6>& octets() const { return octets_; }
  [[nodiscard]] std::string to_string() const;
  /// Packs into the low 48 bits of a u64 (OpenFlow stats keys, hashing).
  [[nodiscard]] std::uint64_t to_u64() const;

  auto operator<=>(const MacAddress&) const = default;

 private:
  std::array<std::uint8_t, 6> octets_{};
};

/// IPv4 address stored in host order internally; wire codecs convert.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  explicit constexpr Ipv4Address(std::uint32_t host_order) : value_(host_order) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | d) {}

  /// Parses dotted-quad "192.168.1.1".
  static Result<Ipv4Address> parse(std::string_view text);

  static constexpr Ipv4Address any() { return Ipv4Address{}; }
  static constexpr Ipv4Address broadcast() { return Ipv4Address{0xffffffffu}; }

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] bool is_zero() const { return value_ == 0; }
  [[nodiscard]] bool is_broadcast() const { return value_ == 0xffffffffu; }
  [[nodiscard]] bool is_multicast() const { return (value_ >> 28) == 0xe; }
  [[nodiscard]] std::string to_string() const;

  /// True if `other` is in the same subnet under `prefix_len` bits of mask.
  [[nodiscard]] bool same_subnet(Ipv4Address other, int prefix_len) const;

  auto operator<=>(const Ipv4Address&) const = default;

 private:
  std::uint32_t value_ = 0;
};

/// Subnet description used by the DHCP server and router configuration.
struct Ipv4Subnet {
  Ipv4Address network;
  int prefix_len = 24;

  [[nodiscard]] bool contains(Ipv4Address addr) const {
    return network.same_subnet(addr, prefix_len);
  }
  [[nodiscard]] Ipv4Address mask() const {
    return Ipv4Address{prefix_len == 0 ? 0u : (~0u << (32 - prefix_len))};
  }
  [[nodiscard]] std::string to_string() const;
};

}  // namespace hw

template <>
struct std::hash<hw::MacAddress> {
  std::size_t operator()(const hw::MacAddress& m) const noexcept {
    return std::hash<std::uint64_t>{}(m.to_u64());
  }
};

template <>
struct std::hash<hw::Ipv4Address> {
  std::size_t operator()(const hw::Ipv4Address& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};
