// Core scalar types shared across the Homework router libraries.
#pragma once

#include <cstdint>

namespace hw {

/// Microseconds since simulation epoch. All subsystems share this virtual
/// timebase so runs are deterministic and benches are reproducible.
using Timestamp = std::uint64_t;

/// Duration in microseconds.
using Duration = std::uint64_t;

inline constexpr Duration kMicrosecond = 1;
inline constexpr Duration kMillisecond = 1000;
inline constexpr Duration kSecond = 1'000'000;
inline constexpr Duration kMinute = 60 * kSecond;
inline constexpr Duration kHour = 60 * kMinute;
inline constexpr Duration kDay = 24 * kHour;

/// Seconds (floating) from a microsecond timestamp, for reporting only.
constexpr double to_seconds(Duration d) { return static_cast<double>(d) / 1e6; }

}  // namespace hw
