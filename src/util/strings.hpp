// Small string utilities shared by the CQL parser, HTTP server and config.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hw {

/// Splits on a single character; keeps empty fields.
std::vector<std::string> split(std::string_view s, char sep);
/// Splits on runs of whitespace; drops empty fields.
std::vector<std::string> split_whitespace(std::string_view s);
std::string_view trim(std::string_view s);
std::string to_lower(std::string_view s);
std::string to_upper(std::string_view s);
bool iequals(std::string_view a, std::string_view b);
bool starts_with_i(std::string_view s, std::string_view prefix);
/// Joins with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);
/// True if `name` matches `pattern` where pattern may have a leading "*." to
/// match any subdomain ("*.facebook.com" matches "www.facebook.com" and
/// "facebook.com" itself). Used by the DNS proxy's site lists.
bool domain_matches(std::string_view name, std::string_view pattern);

}  // namespace hw
