#include "util/rand.hpp"

#include <cmath>

namespace hw {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (~bound + 1) % bound;
  while (true) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) {
  return lo + static_cast<std::int64_t>(
                  uniform(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::uniform01() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) { return uniform01() < p; }

double Rng::exponential(double mean) {
  double u = uniform01();
  if (u <= 0) u = 1e-18;
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double sum = 0;
  for (int i = 0; i < 12; ++i) sum += uniform01();
  return mean + stddev * (sum - 6.0);
}

double Rng::pareto(double alpha, double xm) {
  double u = uniform01();
  if (u <= 0) u = 1e-18;
  return xm / std::pow(u, 1.0 / alpha);
}

}  // namespace hw
