#include "util/logging.hpp"

#include <atomic>
#include <cstdio>

namespace hw {
namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};
std::atomic<LogSink> g_sink{nullptr};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }
void set_log_sink(LogSink sink) { g_sink.store(sink, std::memory_order_relaxed); }

void log_message(LogLevel level, std::string_view module, std::string_view msg) {
  if (level < log_level()) return;
  if (auto* sink = g_sink.load(std::memory_order_relaxed)) {
    sink(level, module, msg);
    return;
  }
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(level),
               static_cast<int>(module.size()), module.data(),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace hw
