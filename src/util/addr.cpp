#include "util/addr.hpp"

#include <charconv>
#include <cstdio>

namespace hw {
namespace {

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

Result<MacAddress> MacAddress::parse(std::string_view text) {
  std::array<std::uint8_t, 6> octets{};
  if (text.size() != 17) return make_error("MAC parse: expected aa:bb:cc:dd:ee:ff");
  for (int i = 0; i < 6; ++i) {
    const std::size_t base = static_cast<std::size_t>(i) * 3;
    const int hi = hex_digit(text[base]);
    const int lo = hex_digit(text[base + 1]);
    if (hi < 0 || lo < 0) return make_error("MAC parse: bad hex digit");
    if (i < 5 && text[base + 2] != ':') return make_error("MAC parse: expected ':'");
    octets[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>((hi << 4) | lo);
  }
  return MacAddress{octets};
}

MacAddress MacAddress::from_index(std::uint32_t index) {
  // 0x02 prefix = locally administered, unicast.
  return MacAddress{{0x02, 0x00,
                     static_cast<std::uint8_t>(index >> 24),
                     static_cast<std::uint8_t>(index >> 16),
                     static_cast<std::uint8_t>(index >> 8),
                     static_cast<std::uint8_t>(index)}};
}

std::string MacAddress::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", octets_[0],
                octets_[1], octets_[2], octets_[3], octets_[4], octets_[5]);
  return buf;
}

std::uint64_t MacAddress::to_u64() const {
  std::uint64_t v = 0;
  for (auto o : octets_) v = (v << 8) | o;
  return v;
}

Result<Ipv4Address> Ipv4Address::parse(std::string_view text) {
  std::uint32_t value = 0;
  const char* p = text.data();
  const char* end = text.data() + text.size();
  for (int i = 0; i < 4; ++i) {
    unsigned octet = 0;
    auto [next, ec] = std::from_chars(p, end, octet);
    if (ec != std::errc{} || octet > 255) return make_error("IPv4 parse: bad octet");
    value = (value << 8) | octet;
    p = next;
    if (i < 3) {
      if (p == end || *p != '.') return make_error("IPv4 parse: expected '.'");
      ++p;
    }
  }
  if (p != end) return make_error("IPv4 parse: trailing characters");
  return Ipv4Address{value};
}

std::string Ipv4Address::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", value_ >> 24, (value_ >> 16) & 0xff,
                (value_ >> 8) & 0xff, value_ & 0xff);
  return buf;
}

bool Ipv4Address::same_subnet(Ipv4Address other, int prefix_len) const {
  if (prefix_len <= 0) return true;
  if (prefix_len >= 32) return value_ == other.value_;
  const std::uint32_t mask = ~0u << (32 - prefix_len);
  return (value_ & mask) == (other.value_ & mask);
}

std::string Ipv4Subnet::to_string() const {
  return network.to_string() + "/" + std::to_string(prefix_len);
}

}  // namespace hw
