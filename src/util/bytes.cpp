#include "util/bytes.hpp"

#include <algorithm>

namespace hw {

void ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u32(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 24));
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v >> 32));
  u32(static_cast<std::uint32_t>(v));
}

void ByteWriter::raw(std::span<const std::uint8_t> bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void ByteWriter::raw(const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + len);
}

void ByteWriter::fixed_string(std::string_view s, std::size_t len) {
  const std::size_t copy = std::min(s.size(), len);
  buf_.insert(buf_.end(), s.begin(), s.begin() + static_cast<std::ptrdiff_t>(copy));
  zeros(len - copy);
}

void ByteWriter::zeros(std::size_t count) { buf_.insert(buf_.end(), count, 0); }

void ByteWriter::patch_u16(std::size_t offset, std::uint16_t v) {
  buf_.at(offset) = static_cast<std::uint8_t>(v >> 8);
  buf_.at(offset + 1) = static_cast<std::uint8_t>(v);
}

Result<std::uint8_t> ByteReader::u8() {
  if (remaining() < 1) return make_error("short read: u8");
  return data_[pos_++];
}

Result<std::uint16_t> ByteReader::u16() {
  if (remaining() < 2) return make_error("short read: u16");
  std::uint16_t v = static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(data_[pos_]) << 8) | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

Result<std::uint32_t> ByteReader::u32() {
  if (remaining() < 4) return make_error("short read: u32");
  std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 24) |
                    (static_cast<std::uint32_t>(data_[pos_ + 1]) << 16) |
                    (static_cast<std::uint32_t>(data_[pos_ + 2]) << 8) |
                    static_cast<std::uint32_t>(data_[pos_ + 3]);
  pos_ += 4;
  return v;
}

Result<std::uint64_t> ByteReader::u64() {
  auto hi = u32();
  if (!hi) return hi.error();
  auto lo = u32();
  if (!lo) return lo.error();
  return (static_cast<std::uint64_t>(hi.value()) << 32) | lo.value();
}

Result<Bytes> ByteReader::raw(std::size_t len) {
  if (remaining() < len) return make_error("short read: raw");
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
  pos_ += len;
  return out;
}

Result<std::span<const std::uint8_t>> ByteReader::view(std::size_t len) {
  if (remaining() < len) return make_error("short read: view");
  auto out = data_.subspan(pos_, len);
  pos_ += len;
  return out;
}

Result<std::string> ByteReader::fixed_string(std::size_t len) {
  auto v = view(len);
  if (!v) return v.error();
  auto span = v.value();
  std::size_t end = span.size();
  while (end > 0 && span[end - 1] == 0) --end;
  return std::string(reinterpret_cast<const char*>(span.data()), end);
}

Status ByteReader::skip(std::size_t len) {
  if (remaining() < len) return Status::failure("short read: skip");
  pos_ += len;
  return {};
}

std::string hex_dump(std::span<const std::uint8_t> data, std::size_t max_bytes) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  const std::size_t n = std::min(data.size(), max_bytes);
  out.reserve(n * 3);
  for (std::size_t i = 0; i < n; ++i) {
    if (i) out.push_back(' ');
    out.push_back(kHex[data[i] >> 4]);
    out.push_back(kHex[data[i] & 0xf]);
  }
  if (n < data.size()) out += " ...";
  return out;
}

}  // namespace hw
