#include "util/token_bucket.hpp"

namespace hw {

void TokenBucket::refill(Timestamp now) {
  if (now <= last_) return;
  const double elapsed = static_cast<double>(now - last_) / 1e6;
  tokens_ = std::min<double>(static_cast<double>(burst_),
                             tokens_ + elapsed * static_cast<double>(rate_));
  last_ = now;
}

bool TokenBucket::try_consume(Timestamp now, std::uint64_t bytes) {
  refill(now);
  if (tokens_ >= static_cast<double>(bytes)) {
    tokens_ -= static_cast<double>(bytes);
    return true;
  }
  return false;
}

Timestamp TokenBucket::available_at(Timestamp now, std::uint64_t bytes) const {
  TokenBucket copy = *this;
  copy.refill(now);
  if (copy.tokens_ >= static_cast<double>(bytes)) return now;
  if (rate_ == 0) return ~Timestamp{0};
  const double deficit = static_cast<double>(bytes) - copy.tokens_;
  const double secs = deficit / static_cast<double>(rate_);
  return now + static_cast<Timestamp>(secs * 1e6) + 1;
}

}  // namespace hw
