// Token bucket used for rate-limiting models: link bandwidth shaping in the
// simulator and per-device throttles installed by policies.
#pragma once

#include <algorithm>
#include <cstdint>

#include "util/types.hpp"

namespace hw {

class TokenBucket {
 public:
  /// `rate_bytes_per_sec` refill rate; `burst_bytes` bucket depth.
  TokenBucket(std::uint64_t rate_bytes_per_sec, std::uint64_t burst_bytes)
      : rate_(rate_bytes_per_sec), burst_(burst_bytes), tokens_(burst_bytes) {}

  /// Attempts to consume `bytes` at virtual time `now`; returns true if the
  /// packet conforms (and deducts), false if it must be dropped/queued.
  bool try_consume(Timestamp now, std::uint64_t bytes);

  /// Time at which `bytes` tokens will be available (for queue scheduling).
  [[nodiscard]] Timestamp available_at(Timestamp now, std::uint64_t bytes) const;

  [[nodiscard]] std::uint64_t rate() const { return rate_; }
  void set_rate(std::uint64_t rate_bytes_per_sec) { rate_ = rate_bytes_per_sec; }

 private:
  void refill(Timestamp now);

  std::uint64_t rate_;
  std::uint64_t burst_;
  double tokens_;
  Timestamp last_ = 0;
};

}  // namespace hw
