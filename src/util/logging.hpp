// Lightweight leveled logger. The router runs as a long-lived daemon in the
// paper; components tag messages with their module name ("dhcp", "dns", ...).
// printf-style formatting (the toolchain predates std::format).
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace hw {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global minimum level; messages below it are dropped cheaply.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Sink override for tests (capture) — pass nullptr to restore stderr.
using LogSink = void (*)(LogLevel, std::string_view module, std::string_view msg);
void set_log_sink(LogSink sink);

void log_message(LogLevel level, std::string_view module, std::string_view msg);

template <typename... Args>
void logf(LogLevel level, std::string_view module, const char* fmt, Args&&... args) {
  if (level < log_level()) return;
  if constexpr (sizeof...(Args) == 0) {
    log_message(level, module, fmt);
  } else {
    char buf[512];
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wformat-security"
    std::snprintf(buf, sizeof buf, fmt, args...);
#pragma GCC diagnostic pop
    log_message(level, module, buf);
  }
}

#define HW_LOG_DEBUG(module, ...) ::hw::logf(::hw::LogLevel::Debug, module, __VA_ARGS__)
#define HW_LOG_INFO(module, ...) ::hw::logf(::hw::LogLevel::Info, module, __VA_ARGS__)
#define HW_LOG_WARN(module, ...) ::hw::logf(::hw::LogLevel::Warn, module, __VA_ARGS__)
#define HW_LOG_ERROR(module, ...) ::hw::logf(::hw::LogLevel::Error, module, __VA_ARGS__)

}  // namespace hw
