// Deterministic PRNG (xoshiro256**) so simulations and benches reproduce
// exactly across runs and platforms — std::mt19937 distributions are not
// cross-stdlib stable, so we implement our own distributions too.
#pragma once

#include <array>
#include <cstdint>

namespace hw {

/// One step of the SplitMix64 sequence: advances `state` and returns the
/// next output. This is the seed-derivation primitive (it is also how Rng
/// expands its seed into xoshiro state): the fleet runner derives every
/// home's seed as a SplitMix walk from the fleet seed, so per-home streams
/// are decorrelated yet fully determined by (fleet seed, home id).
std::uint64_t splitmix64(std::uint64_t& state);

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  std::uint64_t next();
  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound);
  /// Uniform in [lo, hi] inclusive.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi);
  /// Uniform double in [0, 1).
  double uniform01();
  /// True with probability p.
  bool chance(double p);
  /// Exponential with mean `mean` (>0).
  double exponential(double mean);
  /// Approximately normal via sum of uniforms (Irwin–Hall, 12 draws).
  double normal(double mean, double stddev);
  /// Pareto heavy-tail with shape alpha and scale xm (flow sizes).
  double pareto(double alpha, double xm);

  /// Raw xoshiro256** state, for checkpoint/restore. A restored stream
  /// continues bit-exactly where the captured one left off.
  [[nodiscard]] std::array<std::uint64_t, 4> state() const {
    return {s_[0], s_[1], s_[2], s_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& s) {
    s_[0] = s[0];
    s_[1] = s[1];
    s_[2] = s[2];
    s_[3] = s[3];
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace hw
