// Big-endian (network order) byte buffer reader/writer used by every wire
// codec in the repository (OpenFlow, DHCP, DNS, hwdb RPC, Ethernet/IP stacks).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.hpp"

namespace hw {

using Bytes = std::vector<std::uint8_t>;

/// Appends integral fields in network byte order to a growable buffer.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void raw(std::span<const std::uint8_t> bytes);
  void raw(const void* data, std::size_t len);
  /// Writes exactly `len` bytes: the string truncated or zero-padded.
  void fixed_string(std::string_view s, std::size_t len);
  void zeros(std::size_t count);

  /// Overwrites a previously written big-endian u16 at `offset` (for length
  /// fields that are only known once the body is complete).
  void patch_u16(std::size_t offset, std::uint16_t v);

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] const Bytes& bytes() const& { return buf_; }
  [[nodiscard]] Bytes take() && { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Reads integral fields in network byte order from a fixed buffer. All reads
/// are bounds-checked; failures surface as Result errors so malformed packets
/// never crash the router.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] std::size_t position() const { return pos_; }
  [[nodiscard]] bool empty() const { return remaining() == 0; }

  Result<std::uint8_t> u8();
  Result<std::uint16_t> u16();
  Result<std::uint32_t> u32();
  Result<std::uint64_t> u64();
  /// Copies `len` bytes out.
  Result<Bytes> raw(std::size_t len);
  /// Zero-copy view of `len` bytes.
  Result<std::span<const std::uint8_t>> view(std::size_t len);
  /// Reads `len` bytes and strips trailing NULs (fixed-width name fields).
  Result<std::string> fixed_string(std::size_t len);
  Status skip(std::size_t len);

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Hex dump helper for diagnostics ("0a 1b ..".)
std::string hex_dump(std::span<const std::uint8_t> data, std::size_t max_bytes = 64);

}  // namespace hw
