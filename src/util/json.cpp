#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace hw {
namespace {

const Json& null_json() {
  static const Json v;
  return v;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> parse() {
    skip_ws();
    auto v = value();
    if (!v) return v;
    skip_ws();
    if (pos_ != text_.size()) return make_error("JSON: trailing characters");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  bool consume(char c) {
    if (peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(std::string_view w) {
    if (text_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  Result<Json> value() {
    if (++depth_ > 128) return make_error("JSON: nesting too deep");
    struct DepthGuard {
      int& d;
      ~DepthGuard() { --d; }
    } guard{depth_};

    skip_ws();
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"': {
        auto s = string();
        if (!s) return s.error();
        return Json(std::move(s).take());
      }
      case 't':
        if (consume_word("true")) return Json(true);
        return make_error("JSON: bad literal");
      case 'f':
        if (consume_word("false")) return Json(false);
        return make_error("JSON: bad literal");
      case 'n':
        if (consume_word("null")) return Json(nullptr);
        return make_error("JSON: bad literal");
      default:
        return number();
    }
  }

  Result<Json> object() {
    ++pos_;  // '{'
    JsonObject obj;
    skip_ws();
    if (consume('}')) return Json(std::move(obj));
    while (true) {
      skip_ws();
      if (peek() != '"') return make_error("JSON: expected object key");
      auto key = string();
      if (!key) return key.error();
      skip_ws();
      if (!consume(':')) return make_error("JSON: expected ':'");
      auto v = value();
      if (!v) return v;
      obj[std::move(key).take()] = std::move(v).take();
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return Json(std::move(obj));
      return make_error("JSON: expected ',' or '}'");
    }
  }

  Result<Json> array() {
    ++pos_;  // '['
    JsonArray arr;
    skip_ws();
    if (consume(']')) return Json(std::move(arr));
    while (true) {
      auto v = value();
      if (!v) return v;
      arr.push_back(std::move(v).take());
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return Json(std::move(arr));
      return make_error("JSON: expected ',' or ']'");
    }
  }

  Result<std::string> string() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return make_error("JSON: bad escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return make_error("JSON: bad \\u escape");
            unsigned code = 0;
            auto [p, ec] = std::from_chars(text_.data() + pos_,
                                           text_.data() + pos_ + 4, code, 16);
            if (ec != std::errc{} || p != text_.data() + pos_ + 4) {
              return make_error("JSON: bad \\u escape");
            }
            pos_ += 4;
            // UTF-8 encode (BMP only; surrogate pairs unsupported).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xc0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3f));
            } else {
              out += static_cast<char>(0xe0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
              out += static_cast<char>(0x80 | (code & 0x3f));
            }
            break;
          }
          default:
            return make_error("JSON: bad escape");
        }
      } else {
        out += c;
      }
    }
    return make_error("JSON: unterminated string");
  }

  Result<Json> number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (pos_ == start) return make_error("JSON: expected value");
    double v = 0;
    auto [p, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, v);
    if (ec != std::errc{} || p != text_.data() + pos_) {
      return make_error("JSON: bad number");
    }
    return Json(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

void escape_to(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

Result<Json> Json::parse(std::string_view text) { return Parser(text).parse(); }

const Json& Json::operator[](const std::string& key) const {
  if (type_ != Type::Object) return null_json();
  auto it = obj_.find(key);
  return it == obj_.end() ? null_json() : it->second;
}

void Json::set(std::string key, Json value) {
  if (type_ != Type::Object) {
    *this = Json(JsonObject{});
  }
  obj_[std::move(key)] = std::move(value);
}

void Json::push_back(Json value) {
  if (type_ != Type::Array) {
    *this = Json(JsonArray{});
  }
  arr_.push_back(std::move(value));
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&] {
    if (indent > 0) {
      out += '\n';
      out.append(static_cast<std::size_t>(indent * (depth + 1)), ' ');
    }
  };
  const auto close_newline = [&] {
    if (indent > 0) {
      out += '\n';
      out.append(static_cast<std::size_t>(indent * depth), ' ');
    }
  };
  switch (type_) {
    case Type::Null:
      out += "null";
      break;
    case Type::Bool:
      out += bool_ ? "true" : "false";
      break;
    case Type::Number: {
      if (std::isfinite(num_) && num_ == std::floor(num_) &&
          std::abs(num_) < 9e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(num_));
        out += buf;
      } else {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.12g", num_);
        out += buf;
      }
      break;
    }
    case Type::String:
      escape_to(out, str_);
      break;
    case Type::Array: {
      out += '[';
      bool first = true;
      for (const auto& v : arr_) {
        if (!first) out += ',';
        first = false;
        newline();
        v.dump_to(out, indent, depth + 1);
      }
      if (!arr_.empty()) close_newline();
      out += ']';
      break;
    }
    case Type::Object: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out += ',';
        first = false;
        newline();
        escape_to(out, k);
        out += indent > 0 ? ": " : ":";
        v.dump_to(out, indent, depth + 1);
      }
      if (!obj_.empty()) close_newline();
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

}  // namespace hw
