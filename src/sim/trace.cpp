#include "sim/trace.hpp"

namespace hw::sim {

std::size_t Trace::count_if(
    const std::function<bool(const net::ParsedPacket&)>& pred) const {
  std::size_t n = 0;
  for (const auto& e : entries_) {
    auto p = net::ParsedPacket::parse(e.frame);
    if (p && pred(p.value())) ++n;
  }
  return n;
}

std::vector<net::ParsedPacket> Trace::parsed_at(const std::string& point) const {
  std::vector<net::ParsedPacket> out;
  for (const auto& e : entries_) {
    if (e.point != point) continue;
    auto p = net::ParsedPacket::parse(e.frame);
    if (p) out.push_back(std::move(p).take());
  }
  return out;
}

}  // namespace hw::sim
