// Wireless medium model: log-distance path loss gives per-station RSSI, and
// low RSSI raises the retry probability. These are exactly the Links-table
// signals (RSSI, retries) that feed the Figure 2 artifact's modes 1 and 3.
#pragma once

#include <cstdint>

#include "util/rand.hpp"

namespace hw::sim {

/// 2-D position in metres within the home.
struct Position {
  double x = 0;
  double y = 0;
};

double distance(Position a, Position b);

struct WirelessConfig {
  double tx_power_dbm = 20.0;       // AP transmit power
  double path_loss_exponent = 3.0;  // indoor, walls
  double reference_loss_db = 40.0;  // loss at 1 m for 2.4 GHz
  double shadowing_stddev_db = 2.0; // lognormal shadowing
  double noise_floor_dbm = -95.0;
};

/// RSSI in dBm seen at distance `d` metres (deterministic part).
double path_loss_rssi(const WirelessConfig& cfg, double d);

/// One shadowing-noised RSSI sample.
double sample_rssi(const WirelessConfig& cfg, double d, Rng& rng);

/// Probability that a transmission needs link-layer retry at a given RSSI.
/// Smoothly rises from ~0 above -65 dBm to ~0.9 near the noise floor.
double retry_probability(const WirelessConfig& cfg, double rssi_dbm);

/// Normalizes RSSI to [0,1] for display (-90 dBm → 0, -30 dBm → 1); the
/// artifact's mode 1 maps this onto its number of lit LEDs.
double rssi_quality(double rssi_dbm);

}  // namespace hw::sim
