#include "sim/host.hpp"

#include "util/logging.hpp"

namespace hw::sim {
namespace {

constexpr std::string_view kLog = "host";

Bytes filler_payload(std::size_t size) { return Bytes(size, 0xab); }

}  // namespace

const char* to_string(DhcpClientState s) {
  switch (s) {
    case DhcpClientState::Init: return "INIT";
    case DhcpClientState::Selecting: return "SELECTING";
    case DhcpClientState::Requesting: return "REQUESTING";
    case DhcpClientState::Bound: return "BOUND";
    case DhcpClientState::Renewing: return "RENEWING";
  }
  return "?";
}

Host::Host(EventLoop& loop, Config config, Rng& rng)
    : loop_(loop), config_(std::move(config)), rng_(rng) {
  if (config_.hostname.empty()) config_.hostname = config_.name;
  dns_port_ = static_cast<std::uint16_t>(49152 + rng_.uniform(16000));
}

void Host::send_frame(Bytes frame) {
  if (uplink_ == nullptr) return;
  metrics_.tx_frames.inc();
  metrics_.tx_bytes.inc(frame.size());
  uplink_->send(frame);
}

void Host::deliver(const Bytes& frame) {
  metrics_.rx_frames.inc();
  metrics_.rx_bytes.inc(frame.size());

  auto parsed = net::ParsedPacket::parse(frame);
  if (!parsed) return;  // malformed frames are dropped silently, as NICs do
  const auto& p = parsed.value();

  // Accept only frames addressed to us, broadcast or multicast.
  if (p.eth.dst != config_.mac && !p.eth.dst.is_broadcast() &&
      !p.eth.dst.is_multicast()) {
    return;
  }

  if (p.arp) {
    handle_arp(*p.arp);
    return;
  }
  if (!p.ip) return;

  if (p.is_dhcp()) {
    handle_dhcp(p);
    return;
  }
  if (p.udp) {
    if (p.udp->src_port == net::kDnsPort && dns_pending_.count(p.udp->dst_port)) {
      handle_dns_response(p);
      return;
    }
    auto it = udp_handlers_.find(p.udp->dst_port);
    if (it != udp_handlers_.end()) it->second(p);
    return;
  }
  if (p.icmp) {
    if (p.icmp->type == net::IcmpType::EchoRequest && ip_ && p.ip->dst == *ip_) {
      send_frame(net::build_icmp_echo(config_.mac, p.eth.src, *ip_, p.ip->src,
                                      net::IcmpType::EchoReply, p.icmp->identifier,
                                      p.icmp->sequence));
    } else if (p.icmp->type == net::IcmpType::EchoReply && on_echo_reply_) {
      on_echo_reply_(p.ip->src, p.icmp->sequence);
    }
  }
}

void Host::handle_arp(const net::ArpMessage& arp) {
  // Learn the sender mapping opportunistically.
  if (!arp.sender_ip.is_zero()) arp_cache_[arp.sender_ip] = arp.sender_mac;

  if (arp.op == net::ArpOp::Request && ip_ && arp.target_ip == *ip_) {
    net::ArpMessage reply;
    reply.op = net::ArpOp::Reply;
    reply.sender_mac = config_.mac;
    reply.sender_ip = *ip_;
    reply.target_mac = arp.sender_mac;
    reply.target_ip = arp.sender_ip;
    send_frame(net::build_arp(reply));
  }

  // Flush sends that were waiting for this resolution.
  for (auto it = pending_sends_.begin(); it != pending_sends_.end();) {
    auto cache_it = arp_cache_.find(it->next_hop);
    if (cache_it != arp_cache_.end()) {
      send_frame(it->builder(cache_it->second));
      it = pending_sends_.erase(it);
    } else {
      ++it;
    }
  }
}

// -- DHCP client --------------------------------------------------------------

void Host::start_dhcp() {
  loop_.cancel(dhcp_timer_);
  dhcp_state_ = DhcpClientState::Init;
  ip_.reset();
  gateway_.reset();
  dns_server_.reset();
  dhcp_server_.reset();
  arp_cache_.clear();
  dhcp_retries_ = 0;
  send_discover();
}

void Host::send_discover() {
  dhcp_state_ = DhcpClientState::Selecting;
  dhcp_xid_ = static_cast<std::uint32_t>(rng_.next());
  auto msg = net::DhcpMessage::discover(dhcp_xid_, config_.mac, config_.hostname);
  send_frame(net::build_dhcp_frame(config_.mac, MacAddress::broadcast(),
                                   Ipv4Address::any(), Ipv4Address::broadcast(),
                                   /*from_client=*/true, msg.serialize()));
  dhcp_timer_ = loop_.schedule(config_.dhcp_retry_interval, [this] { dhcp_timeout(); });
}

void Host::send_request(Ipv4Address requested, Ipv4Address server) {
  dhcp_state_ = DhcpClientState::Requesting;
  auto msg = net::DhcpMessage::request(dhcp_xid_, config_.mac, requested, server,
                                       config_.hostname);
  send_frame(net::build_dhcp_frame(config_.mac, MacAddress::broadcast(),
                                   Ipv4Address::any(), Ipv4Address::broadcast(),
                                   /*from_client=*/true, msg.serialize()));
  dhcp_timer_ = loop_.schedule(config_.dhcp_retry_interval, [this] { dhcp_timeout(); });
}

void Host::dhcp_timeout() {
  if (dhcp_state_ == DhcpClientState::Bound) return;
  if (++dhcp_retries_ > config_.dhcp_max_retries) {
    HW_LOG_WARN(kLog, "%s: DHCP gave up after %d retries", config_.name.c_str(),
                dhcp_retries_ - 1);
    dhcp_state_ = DhcpClientState::Init;
    return;
  }
  // Renewal timeouts fall back to a fresh DISCOVER, as clients do.
  send_discover();
}

void Host::handle_dhcp(const net::ParsedPacket& p) {
  auto parsed = net::DhcpMessage::parse(p.l4_payload);
  if (!parsed) return;
  const auto& m = parsed.value();
  if (m.is_request || m.chaddr != config_.mac || m.xid != dhcp_xid_) return;

  switch (m.message_type) {
    case net::DhcpMessageType::Offer: {
      if (dhcp_state_ != DhcpClientState::Selecting) return;
      loop_.cancel(dhcp_timer_);
      const Ipv4Address server = m.server_identifier.value_or(m.siaddr);
      send_request(m.yiaddr, server);
      break;
    }
    case net::DhcpMessageType::Ack: {
      if (dhcp_state_ != DhcpClientState::Requesting &&
          dhcp_state_ != DhcpClientState::Renewing) {
        return;
      }
      loop_.cancel(dhcp_timer_);
      ip_ = m.yiaddr;
      gateway_ = m.router;
      if (!m.dns_servers.empty()) dns_server_ = m.dns_servers.front();
      dhcp_server_ = m.server_identifier;
      lease_secs_ = m.lease_time_secs.value_or(3600);
      dhcp_state_ = DhcpClientState::Bound;
      dhcp_retries_ = 0;
      metrics_.dhcp_acks.inc();
      HW_LOG_INFO(kLog, "%s: bound %s", config_.name.c_str(),
                  ip_->to_string().c_str());
      schedule_renewal();
      if (on_bound_) on_bound_();
      break;
    }
    case net::DhcpMessageType::Nak: {
      loop_.cancel(dhcp_timer_);
      metrics_.dhcp_naks.inc();
      dhcp_state_ = DhcpClientState::Init;
      ip_.reset();
      if (on_nak_) on_nak_();
      break;
    }
    default:
      break;
  }
}

void Host::adopt_lease(Ipv4Address ip, Ipv4Address gateway, Ipv4Address dns,
                       Ipv4Address server, std::uint32_t lease_secs) {
  ip_ = ip;
  gateway_ = gateway;
  dns_server_ = dns;
  dhcp_server_ = server;
  lease_secs_ = lease_secs;
  dhcp_state_ = DhcpClientState::Bound;
  dhcp_retries_ = 0;
  schedule_renewal();
}

void Host::schedule_renewal() {
  // T1 = lease/2 per RFC 2131.
  const Duration t1 = static_cast<Duration>(lease_secs_) * kSecond / 2;
  dhcp_timer_ = loop_.schedule(t1, [this] {
    if (dhcp_state_ != DhcpClientState::Bound || !ip_ || !dhcp_server_) return;
    dhcp_state_ = DhcpClientState::Renewing;
    dhcp_xid_ = static_cast<std::uint32_t>(rng_.next());
    auto msg = net::DhcpMessage::request(dhcp_xid_, config_.mac, *ip_,
                                         *dhcp_server_, config_.hostname);
    msg.ciaddr = *ip_;
    send_frame(net::build_dhcp_frame(config_.mac, MacAddress::broadcast(),
                                     *ip_, Ipv4Address::broadcast(),
                                     /*from_client=*/true, msg.serialize()));
    dhcp_timer_ =
        loop_.schedule(config_.dhcp_retry_interval, [this] { dhcp_timeout(); });
  });
}

void Host::release_dhcp() {
  if (!ip_ || !dhcp_server_) return;
  loop_.cancel(dhcp_timer_);
  auto msg = net::DhcpMessage::release(static_cast<std::uint32_t>(rng_.next()),
                                       config_.mac, *ip_, *dhcp_server_);
  send_frame(net::build_dhcp_frame(config_.mac, MacAddress::broadcast(), *ip_,
                                   Ipv4Address::broadcast(),
                                   /*from_client=*/true, msg.serialize()));
  dhcp_state_ = DhcpClientState::Init;
  ip_.reset();
  gateway_.reset();
}

// -- Transmission -------------------------------------------------------------

void Host::transmit_via_gateway(Bytes /*frame_placeholder*/, Ipv4Address dst,
                                std::function<Bytes(MacAddress)> builder) {
  // The Homework DHCP module allocates addresses so every destination is
  // off-link: the next hop is always the router (paper §2, avoiding direct
  // Ethernet-layer communication between devices).
  const Ipv4Address next_hop =
      (gateway_ && dst != *gateway_) ? *gateway_
      : dst;
  auto it = arp_cache_.find(next_hop);
  if (it != arp_cache_.end()) {
    send_frame(builder(it->second));
    return;
  }
  pending_sends_.push_back(PendingSend{next_hop, std::move(builder)});
  // Issue an ARP request for the next hop.
  net::ArpMessage req;
  req.op = net::ArpOp::Request;
  req.sender_mac = config_.mac;
  req.sender_ip = ip_.value_or(Ipv4Address::any());
  req.target_mac = MacAddress::zero();
  req.target_ip = next_hop;
  send_frame(net::build_arp(req));
}

bool Host::send_udp(Ipv4Address dst, std::uint16_t sport, std::uint16_t dport,
                    std::size_t payload_size) {
  if (!ip_ || uplink_ == nullptr) return false;
  const Ipv4Address src = *ip_;
  const MacAddress src_mac = config_.mac;
  Bytes payload = filler_payload(payload_size);
  transmit_via_gateway({}, dst, [=](MacAddress dst_mac) {
    return net::build_udp(src_mac, dst_mac, src, dst, sport, dport, payload);
  });
  return true;
}

bool Host::send_tcp(Ipv4Address dst, std::uint16_t sport, std::uint16_t dport,
                    std::uint8_t flags, std::size_t payload_size) {
  if (!ip_ || uplink_ == nullptr) return false;
  const Ipv4Address src = *ip_;
  const MacAddress src_mac = config_.mac;
  net::TcpHeader tcp;
  tcp.src_port = sport;
  tcp.dst_port = dport;
  tcp.flags = flags;
  Bytes payload = filler_payload(payload_size);
  transmit_via_gateway({}, dst, [=](MacAddress dst_mac) {
    return net::build_tcp(src_mac, dst_mac, src, dst, tcp, payload);
  });
  return true;
}

bool Host::ping(Ipv4Address dst, std::uint16_t seq) {
  if (!ip_ || uplink_ == nullptr) return false;
  const Ipv4Address src = *ip_;
  const MacAddress src_mac = config_.mac;
  transmit_via_gateway({}, dst, [=](MacAddress dst_mac) {
    return net::build_icmp_echo(src_mac, dst_mac, src, dst,
                                net::IcmpType::EchoRequest, 1, seq);
  });
  return true;
}

void Host::on_udp(std::uint16_t port,
                  std::function<void(const net::ParsedPacket&)> handler) {
  udp_handlers_[port] = std::move(handler);
}

// -- DNS ------------------------------------------------------------------------

void Host::resolve(const std::string& name, ResolveCallback cb) {
  if (!ip_ || !dns_server_) {
    cb(make_error("not bound / no DNS server"), name);
    return;
  }
  const auto id = static_cast<std::uint16_t>(rng_.uniform(65536));
  // One outstanding query per source port keeps matching trivial; allocate a
  // fresh port when the default is busy.
  std::uint16_t port = dns_port_;
  while (dns_pending_.count(port) != 0) ++port;

  auto query = net::DnsMessage::query(id, name);
  const Ipv4Address src = *ip_;
  const Ipv4Address dst = *dns_server_;
  const MacAddress src_mac = config_.mac;
  Bytes payload = query.serialize();
  transmit_via_gateway({}, dst, [=](MacAddress dst_mac) {
    return net::build_udp(src_mac, dst_mac, src, dst, port, net::kDnsPort,
                          payload);
  });

  PendingQuery pending;
  pending.name = name;
  pending.cb = std::move(cb);
  pending.timeout = loop_.schedule(3 * kSecond, [this, port] {
    auto it = dns_pending_.find(port);
    if (it == dns_pending_.end()) return;
    auto entry = std::move(it->second);
    dns_pending_.erase(it);
    metrics_.dns_failures.inc();
    entry.cb(make_error("DNS timeout"), entry.name);
  });
  dns_pending_.emplace(port, std::move(pending));
}

void Host::handle_dns_response(const net::ParsedPacket& p) {
  auto it = dns_pending_.find(p.udp->dst_port);
  if (it == dns_pending_.end()) return;
  auto msg = net::DnsMessage::parse(p.l4_payload);
  if (!msg) return;
  auto entry = std::move(it->second);
  loop_.cancel(entry.timeout);
  dns_pending_.erase(it);

  const auto& m = msg.value();
  if (m.rcode != net::DnsRcode::NoError) {
    metrics_.dns_failures.inc();
    entry.cb(make_error("DNS rcode " + std::to_string(static_cast<int>(m.rcode))),
             entry.name);
    return;
  }
  for (const auto& rec : m.answers) {
    if (rec.rtype == net::DnsType::A) {
      metrics_.dns_answers.inc();
      entry.cb(rec.address, entry.name);
      return;
    }
  }
  metrics_.dns_failures.inc();
  entry.cb(make_error("DNS: no A record"), entry.name);
}

}  // namespace hw::sim
