#include "sim/wireless.hpp"

#include <algorithm>
#include <cmath>

namespace hw::sim {

double distance(Position a, Position b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

double path_loss_rssi(const WirelessConfig& cfg, double d) {
  const double dist = std::max(d, 0.5);
  const double loss =
      cfg.reference_loss_db + 10.0 * cfg.path_loss_exponent * std::log10(dist);
  return cfg.tx_power_dbm - loss;
}

double sample_rssi(const WirelessConfig& cfg, double d, Rng& rng) {
  const double rssi =
      path_loss_rssi(cfg, d) + rng.normal(0.0, cfg.shadowing_stddev_db);
  return std::max(rssi, cfg.noise_floor_dbm);
}

double retry_probability(const WirelessConfig& cfg, double rssi_dbm) {
  // Logistic in SNR: comfortable above ~30 dB SNR, falls apart below ~10 dB.
  const double snr = rssi_dbm - cfg.noise_floor_dbm;
  const double p = 1.0 / (1.0 + std::exp((snr - 18.0) / 4.0));
  return std::clamp(p * 0.9, 0.0, 0.9);
}

double rssi_quality(double rssi_dbm) {
  return std::clamp((rssi_dbm + 90.0) / 60.0, 0.0, 1.0);
}

}  // namespace hw::sim
