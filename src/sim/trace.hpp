// Frame trace sink for tests and debugging: records (time, direction, frame)
// and offers simple filters, like a tcpdump for the simulated wire.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "util/types.hpp"

namespace hw::sim {

struct TraceEntry {
  Timestamp time = 0;
  std::string point;  // capture point label, e.g. "port1-in"
  Bytes frame;
};

class Trace {
 public:
  void record(Timestamp time, std::string point, const Bytes& frame) {
    entries_.push_back(TraceEntry{time, std::move(point), frame});
  }

  [[nodiscard]] const std::vector<TraceEntry>& entries() const { return entries_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }

  /// Counts entries whose parsed form satisfies `pred` (unparseable frames
  /// are skipped).
  std::size_t count_if(
      const std::function<bool(const net::ParsedPacket&)>& pred) const;

  /// Returns parsed packets at a capture point.
  std::vector<net::ParsedPacket> parsed_at(const std::string& point) const;

 private:
  std::vector<TraceEntry> entries_;
};

}  // namespace hw::sim
