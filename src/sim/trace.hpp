// Frame trace sink for tests and debugging: records (time, direction, frame)
// and offers simple filters, like a tcpdump for the simulated wire.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "util/types.hpp"

namespace hw::sim {

struct TraceEntry {
  Timestamp time = 0;
  std::string point;  // capture point label, e.g. "port1-in"
  Bytes frame;
};

class Trace {
 public:
  Trace() = default;
  /// Caps retention at `max_entries`: once full, recording drops the oldest
  /// entry and counts it in dropped(). 0 means unbounded (unit tests that
  /// inspect a whole short capture).
  explicit Trace(std::size_t max_entries) : max_entries_(max_entries) {}

  /// Takes the frame by value so callers that are done with their buffer
  /// move it in; forwarding shims pay the same one copy they always did.
  void record(Timestamp time, std::string point, Bytes frame) {
    if (max_entries_ != 0 && entries_.size() >= max_entries_) {
      entries_.erase(entries_.begin());
      ++dropped_;
    }
    entries_.push_back(TraceEntry{time, std::move(point), std::move(frame)});
  }

  [[nodiscard]] const std::vector<TraceEntry>& entries() const { return entries_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  /// Entries discarded to honour the cap.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::size_t max_entries() const { return max_entries_; }
  void clear() { entries_.clear(); }

  /// Counts entries whose parsed form satisfies `pred` (unparseable frames
  /// are skipped).
  std::size_t count_if(
      const std::function<bool(const net::ParsedPacket&)>& pred) const;

  /// Returns parsed packets at a capture point.
  std::vector<net::ParsedPacket> parsed_at(const std::string& point) const;

 private:
  std::size_t max_entries_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<TraceEntry> entries_;
};

}  // namespace hw::sim
