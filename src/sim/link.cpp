#include "sim/link.hpp"

#include "util/rand.hpp"

namespace hw::sim {

LinkChannel::LinkChannel(EventLoop& loop, Config config, Rng* rng)
    : loop_(loop), config_(config), rng_(rng) {}

bool LinkChannel::send(const Bytes& frame) {
  if (sink_ == nullptr) return false;
  if (in_flight_ >= config_.queue_limit) {
    metrics_.dropped_frames.inc();
    return false;
  }
  if (rng_ != nullptr && config_.loss_probability > 0 &&
      rng_->chance(config_.loss_probability)) {
    metrics_.dropped_frames.inc();
    return false;
  }

  // Serialization: frames queue behind each other on the wire.
  const Duration tx_time =
      config_.bandwidth_bps == 0
          ? 0
          : static_cast<Duration>(frame.size() * 8 * kSecond /
                                  config_.bandwidth_bps);
  const Timestamp start = std::max(loop_.now(), busy_until_);
  busy_until_ = start + tx_time;
  const Timestamp arrival = busy_until_ + config_.latency;

  metrics_.tx_frames.inc();
  metrics_.tx_bytes.inc(frame.size());
  ++in_flight_;
  loop_.schedule_at(arrival, [this, frame] {
    --in_flight_;
    if (sink_ != nullptr) sink_->deliver(frame);
  });
  return true;
}

}  // namespace hw::sim
