#include "sim/event_loop.hpp"

#include <algorithm>

namespace hw::sim {

EventLoop::EventId EventLoop::schedule_at(Timestamp when, Callback fn) {
  check_owner();
  const EventId id = next_id_++;
  heap_.push(Entry{std::max(when, now_), id, std::move(fn)});
  return id;
}

void EventLoop::cancel(EventId id) {
  check_owner();
  if (id == 0 || id >= next_id_) return;
  cancelled_ids_.push_back(id);
  ++cancelled_;
}

bool EventLoop::pop_one(Timestamp deadline) {
  while (!heap_.empty()) {
    const Entry& top = heap_.top();
    if (top.when > deadline) return false;
    // Lazily discard cancelled entries.
    auto it = std::find(cancelled_ids_.begin(), cancelled_ids_.end(), top.id);
    if (it != cancelled_ids_.end()) {
      cancelled_ids_.erase(it);
      --cancelled_;
      heap_.pop();
      continue;
    }
    Entry entry = std::move(const_cast<Entry&>(top));
    heap_.pop();
    now_ = entry.when;
    ++executed_;
    entry.fn();
    return true;
  }
  return false;
}

Timestamp EventLoop::next_event_at() {
  check_owner();
  while (!heap_.empty()) {
    const Entry& top = heap_.top();
    auto it = std::find(cancelled_ids_.begin(), cancelled_ids_.end(), top.id);
    if (it == cancelled_ids_.end()) return top.when;
    cancelled_ids_.erase(it);
    --cancelled_;
    heap_.pop();
  }
  return kNoEvent;
}

std::size_t EventLoop::run_until(Timestamp deadline) {
  check_owner();
  std::size_t count = 0;
  while (pop_one(deadline)) ++count;
  now_ = std::max(now_, deadline);
  return count;
}

std::size_t EventLoop::run_all() {
  check_owner();
  std::size_t count = 0;
  while (pop_one(~Timestamp{0})) ++count;
  return count;
}

}  // namespace hw::sim
