#include "sim/fault_injector.hpp"

#include "util/logging.hpp"

namespace hw::sim {
namespace {
constexpr std::string_view kLog = "fault";
}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::LinkLoss: return "link-loss";
    case FaultKind::LinkPartition: return "link-partition";
    case FaultKind::ControllerOutage: return "controller-outage";
    case FaultKind::HwdbFault: return "hwdb-fault";
    case FaultKind::DatapathRestart: return "datapath-restart";
    case FaultKind::CrashRestartRestore: return "crash-restart-restore";
  }
  return "?";
}

FaultInjector::FaultInjector(EventLoop& loop) : loop_(loop), rng_(1) {}

FaultInjector::~FaultInjector() {
  for (EventLoop::EventId id : scheduled_) loop_.cancel(id);
}

void FaultInjector::add_link(const std::string& name, DuplexLink& link) {
  add_channel(name, link.a_to_b());
  add_channel(name, link.b_to_a());
}

void FaultInjector::add_channel(const std::string& name, LinkChannel& channel) {
  links_.emplace(name,
                 RegisteredChannel{&channel, channel.config().loss_probability});
}

void FaultInjector::set_controller_channel(std::function<void()> sever,
                                           std::function<void()> restore) {
  sever_controller_ = std::move(sever);
  restore_controller_ = std::move(restore);
}

void FaultInjector::set_hwdb_fault(
    std::function<void(const DatagramFault&, Rng*)> apply) {
  apply_hwdb_fault_ = std::move(apply);
}

void FaultInjector::set_datapath_restart(std::function<void()> restart) {
  restart_datapath_ = std::move(restart);
}

void FaultInjector::set_warm_restart(std::function<void()> restart) {
  warm_restart_ = std::move(restart);
}

void FaultInjector::arm(const FaultPlan& plan) {
  rng_ = Rng(plan.seed);
  armed_ = true;
  for (const FaultWindow& window : plan.windows) {
    scheduled_.push_back(loop_.schedule_at(
        window.start, [this, window] { begin_window(window); }));
    if (window.duration > 0) {
      scheduled_.push_back(
          loop_.schedule_at(window.start + window.duration,
                            [this, window] { end_window(window); }));
    }
  }
}

void FaultInjector::inject(const FaultWindow& window) {
  scheduled_.push_back(
      loop_.schedule_at(window.start, [this, window] { begin_window(window); }));
  if (window.duration > 0) {
    scheduled_.push_back(loop_.schedule_at(window.start + window.duration,
                                           [this, window] { end_window(window); }));
  }
}

std::vector<LinkChannel*> FaultInjector::matching_links(
    const std::string& target) {
  std::vector<LinkChannel*> out;
  for (const auto& [name, reg] : links_) {
    if (target == "*" || target == name) out.push_back(reg.channel);
  }
  return out;
}

void FaultInjector::begin_window(const FaultWindow& window) {
  metrics_.windows_started.inc();
  metrics_.active.add(1);
  HW_LOG_INFO(kLog, "t=%llu begin %s target=%s",
              static_cast<unsigned long long>(loop_.now()),
              to_string(window.kind), window.target.c_str());
  switch (window.kind) {
    case FaultKind::LinkLoss:
    case FaultKind::LinkPartition: {
      const double loss =
          window.kind == FaultKind::LinkPartition ? 1.0 : window.loss;
      for (LinkChannel* ch : matching_links(window.target)) {
        ch->set_loss_probability(loss);
        metrics_.link_faults.inc();
      }
      break;
    }
    case FaultKind::ControllerOutage:
      metrics_.controller_outages.inc();
      if (sever_controller_) sever_controller_();
      break;
    case FaultKind::HwdbFault:
      metrics_.hwdb_faults.inc();
      if (apply_hwdb_fault_) apply_hwdb_fault_(window.hwdb, &rng_);
      break;
    case FaultKind::DatapathRestart:
      metrics_.datapath_restarts.inc();
      if (restart_datapath_) restart_datapath_();
      // Instantaneous: balance the active gauge immediately.
      metrics_.windows_ended.inc();
      metrics_.active.add(-1);
      break;
    case FaultKind::CrashRestartRestore:
      metrics_.crash_restores.inc();
      if (warm_restart_) warm_restart_();
      metrics_.windows_ended.inc();
      metrics_.active.add(-1);
      break;
  }
}

void FaultInjector::end_window(const FaultWindow& window) {
  metrics_.windows_ended.inc();
  metrics_.active.add(-1);
  HW_LOG_INFO(kLog, "t=%llu end %s target=%s",
              static_cast<unsigned long long>(loop_.now()),
              to_string(window.kind), window.target.c_str());
  switch (window.kind) {
    case FaultKind::LinkLoss:
    case FaultKind::LinkPartition:
      for (const auto& [name, reg] : links_) {
        if (window.target == "*" || window.target == name) {
          reg.channel->set_loss_probability(reg.base_loss);
        }
      }
      break;
    case FaultKind::ControllerOutage:
      if (restore_controller_) restore_controller_();
      break;
    case FaultKind::HwdbFault:
      if (apply_hwdb_fault_) apply_hwdb_fault_(DatagramFault{}, &rng_);
      break;
    case FaultKind::DatapathRestart:
    case FaultKind::CrashRestartRestore:
      break;  // handled inline at begin
  }
}

}  // namespace hw::sim
