// Deterministic fault injection for the simulated home network. A FaultPlan
// is a declarative script of fault windows — lossy links, a severed
// controller channel, hwdb datagram mangling, a datapath restart — that the
// injector schedules on the event loop. Everything is driven by the plan's
// seed and the simulation clock, so a given (seed, plan) pair replays the
// exact same failure scenario on every run; the chaos suite leans on this to
// diff telemetry snapshots across runs.
//
// The injector stays decoupled from the layers it breaks: links register
// directly (sim owns them), while the OpenFlow channel, hwdb RPC link and
// datapath plug in through std::function hooks so sim never depends on the
// upper layers.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/event_loop.hpp"
#include "sim/link.hpp"
#include "telemetry/metrics.hpp"
#include "util/rand.hpp"

namespace hw::sim {

enum class FaultKind : std::uint8_t {
  LinkLoss,          // raise loss probability on matching links
  LinkPartition,     // loss probability 1.0 — nothing gets through
  ControllerOutage,  // sever the OpenFlow secure channel
  HwdbFault,         // drop / duplicate / delay hwdb RPC datagrams
  DatapathRestart,   // instantaneous: datapath loses all volatile state
  /// Instantaneous: the datapath crashes and comes back restoring its flow
  /// table from the last snapshot (HomeworkRouter::warm_restart).
  CrashRestartRestore,
};

const char* to_string(FaultKind kind);

/// Datagram mangling applied to the hwdb RPC link while a HwdbFault window
/// is open. Probabilities are independent per datagram; extra_delay adds to
/// the link's base latency.
struct DatagramFault {
  double drop = 0.0;
  double duplicate = 0.0;
  Duration extra_delay = 0;
};

/// One scripted fault: [start, start + duration) on the virtual clock.
/// duration 0 marks an instantaneous fault (DatapathRestart).
struct FaultWindow {
  FaultKind kind = FaultKind::LinkLoss;
  Timestamp start = 0;
  Duration duration = 0;
  /// Link-name filter for Link* kinds; "*" hits every registered link.
  std::string target = "*";
  /// Loss probability for LinkLoss (ignored for LinkPartition: always 1.0).
  double loss = 0.5;
  /// Datagram mangling for HwdbFault windows.
  DatagramFault hwdb;
};

struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<FaultWindow> windows;
};

/// Snapshot view over the injector's telemetry instruments.
struct FaultInjectorStats {
  std::uint64_t windows_started = 0;
  std::uint64_t windows_ended = 0;
  std::uint64_t link_faults = 0;
  std::uint64_t controller_outages = 0;
  std::uint64_t hwdb_faults = 0;
  std::uint64_t datapath_restarts = 0;
  std::uint64_t crash_restores = 0;
  std::int64_t active = 0;
};

class FaultInjector {
 public:
  explicit FaultInjector(EventLoop& loop);
  ~FaultInjector();
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // -- Target registration -----------------------------------------------------
  /// Registers both directions of a device link under `name`. The loss
  /// probability configured at registration time is what window-end restores.
  void add_link(const std::string& name, DuplexLink& link);
  void add_channel(const std::string& name, LinkChannel& channel);

  /// Controller-channel severance hooks (e.g. InProcConnection::disconnect /
  /// reconnect). `restore` runs when the outage window closes.
  void set_controller_channel(std::function<void()> sever,
                              std::function<void()> restore);

  /// hwdb RPC datagram mangling hook (e.g. InProcRpcLink::set_fault). Called
  /// with the window's DatagramFault at start and a neutral fault at end; the
  /// injector's seeded RNG is handed along so chaos draws stay independent
  /// of the scenario's own randomness.
  void set_hwdb_fault(std::function<void(const DatagramFault&, Rng*)> apply);

  /// Datapath cold-restart hook (e.g. ofp::Datapath::restart).
  void set_datapath_restart(std::function<void()> restart);

  /// Crash-restart-with-restore hook (e.g. HomeworkRouter::warm_restart):
  /// the datapath restarts and refills its flow table from the last
  /// snapshot instead of cold-wiping.
  void set_warm_restart(std::function<void()> restart);

  // -- Plan execution ----------------------------------------------------------
  /// Schedules every window of `plan` on the event loop. Re-seeds the
  /// injector RNG from plan.seed first, so arm() is the reproducibility
  /// boundary. May be called once per injector.
  void arm(const FaultPlan& plan);

  /// Schedules one extra window on an already-armed injector without
  /// touching the RNG — the live-operations plane uses this to inject a
  /// fault mid-run while keeping the original plan's draws reproducible.
  /// window.start is an absolute virtual time and must not be in the past.
  void inject(const FaultWindow& window);

  [[nodiscard]] bool armed() const { return armed_; }
  [[nodiscard]] Rng& rng() { return rng_; }
  [[nodiscard]] FaultInjectorStats stats() const {
    return {metrics_.windows_started.value(), metrics_.windows_ended.value(),
            metrics_.link_faults.value(),     metrics_.controller_outages.value(),
            metrics_.hwdb_faults.value(),     metrics_.datapath_restarts.value(),
            metrics_.crash_restores.value(),  metrics_.active.value()};
  }

 private:
  void begin_window(const FaultWindow& window);
  void end_window(const FaultWindow& window);
  [[nodiscard]] std::vector<LinkChannel*> matching_links(
      const std::string& target);

  EventLoop& loop_;
  Rng rng_;
  bool armed_ = false;
  /// Registered channels with the loss probability to restore at window end.
  struct RegisteredChannel {
    LinkChannel* channel = nullptr;
    double base_loss = 0.0;
  };
  std::multimap<std::string, RegisteredChannel> links_;
  std::function<void()> sever_controller_;
  std::function<void()> restore_controller_;
  std::function<void(const DatagramFault&, Rng*)> apply_hwdb_fault_;
  std::function<void()> restart_datapath_;
  std::function<void()> warm_restart_;
  std::vector<EventLoop::EventId> scheduled_;
  struct Instruments {
    telemetry::Counter windows_started{"sim.fault.windows_started"};
    telemetry::Counter windows_ended{"sim.fault.windows_ended"};
    telemetry::Counter link_faults{"sim.fault.link_faults"};
    telemetry::Counter controller_outages{"sim.fault.controller_outages"};
    telemetry::Counter hwdb_faults{"sim.fault.hwdb_faults"};
    telemetry::Counter datapath_restarts{"sim.fault.datapath_restarts"};
    telemetry::Counter crash_restores{"sim.fault.crash_restores"};
    telemetry::Gauge active{"sim.fault.active"};
  } metrics_;
};

}  // namespace hw::sim
