#include "sim/pcap.hpp"

#include <cstdio>

namespace hw::sim {
namespace {

constexpr std::uint32_t kMagic = 0xa1b2c3d4;
constexpr std::uint32_t kMagicSwapped = 0xd4c3b2a1;
constexpr std::uint32_t kLinkTypeEthernet = 1;

void put_u16le(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32le(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

/// Little/big-endian u32 reader chosen by file magic.
class EndianReader {
 public:
  EndianReader(std::span<const std::uint8_t> data, bool swapped)
      : data_(data), swapped_(swapped) {}

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

  Result<std::uint32_t> u32() {
    if (remaining() < 4) return make_error("pcap: truncated");
    std::uint32_t v;
    if (swapped_) {
      v = (static_cast<std::uint32_t>(data_[pos_]) << 24) |
          (static_cast<std::uint32_t>(data_[pos_ + 1]) << 16) |
          (static_cast<std::uint32_t>(data_[pos_ + 2]) << 8) |
          data_[pos_ + 3];
    } else {
      v = static_cast<std::uint32_t>(data_[pos_]) |
          (static_cast<std::uint32_t>(data_[pos_ + 1]) << 8) |
          (static_cast<std::uint32_t>(data_[pos_ + 2]) << 16) |
          (static_cast<std::uint32_t>(data_[pos_ + 3]) << 24);
    }
    pos_ += 4;
    return v;
  }

  Result<Bytes> raw(std::size_t len) {
    if (remaining() < len) return make_error("pcap: truncated packet");
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
    pos_ += len;
    return out;
  }

  Status skip(std::size_t len) {
    if (remaining() < len) return Status::failure("pcap: truncated header");
    pos_ += len;
    return {};
  }

 private:
  std::span<const std::uint8_t> data_;
  bool swapped_;
  std::size_t pos_ = 0;
};

}  // namespace

Bytes to_pcap(const Trace& trace) {
  Bytes out;
  out.reserve(24 + trace.size() * 64);
  // Global header (host-native little-endian layout).
  put_u32le(out, kMagic);
  put_u16le(out, 2);   // version major
  put_u16le(out, 4);   // version minor
  put_u32le(out, 0);   // thiszone
  put_u32le(out, 0);   // sigfigs
  put_u32le(out, 65535);  // snaplen
  put_u32le(out, kLinkTypeEthernet);

  for (const auto& entry : trace.entries()) {
    put_u32le(out, static_cast<std::uint32_t>(entry.time / kSecond));
    put_u32le(out, static_cast<std::uint32_t>(entry.time % kSecond));
    put_u32le(out, static_cast<std::uint32_t>(entry.frame.size()));  // incl_len
    put_u32le(out, static_cast<std::uint32_t>(entry.frame.size()));  // orig_len
    out.insert(out.end(), entry.frame.begin(), entry.frame.end());
  }
  return out;
}

Status write_pcap(const Trace& trace, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::failure("pcap: cannot open " + path);
  const Bytes data = to_pcap(trace);
  const std::size_t written = std::fwrite(data.data(), 1, data.size(), f);
  std::fclose(f);
  if (written != data.size()) return Status::failure("pcap: short write");
  return {};
}

Result<std::vector<PcapPacket>> parse_pcap(std::span<const std::uint8_t> data) {
  if (data.size() < 24) return make_error("pcap: too short for global header");
  // Magic decides endianness; read it little-endian first.
  const std::uint32_t magic_le = static_cast<std::uint32_t>(data[0]) |
                                 (static_cast<std::uint32_t>(data[1]) << 8) |
                                 (static_cast<std::uint32_t>(data[2]) << 16) |
                                 (static_cast<std::uint32_t>(data[3]) << 24);
  bool swapped = false;
  if (magic_le == kMagic) {
    swapped = false;
  } else if (magic_le == kMagicSwapped) {
    swapped = true;
  } else {
    return make_error("pcap: bad magic");
  }

  EndianReader r(data, swapped);
  if (auto s = r.skip(4 + 2 + 2 + 4 + 4); !s.ok()) return s.error();  // → snaplen
  auto snaplen = r.u32();
  if (!snaplen) return snaplen.error();
  auto linktype = r.u32();
  if (!linktype) return linktype.error();
  if (linktype.value() != kLinkTypeEthernet) {
    return make_error("pcap: unsupported link type");
  }

  std::vector<PcapPacket> out;
  while (r.remaining() > 0) {
    auto sec = r.u32();
    if (!sec) return sec.error();
    auto usec = r.u32();
    if (!usec) return usec.error();
    auto incl = r.u32();
    if (!incl) return incl.error();
    auto orig = r.u32();
    if (!orig) return orig.error();
    if (incl.value() > snaplen.value()) return make_error("pcap: incl > snaplen");
    auto frame = r.raw(incl.value());
    if (!frame) return frame.error();
    PcapPacket pkt;
    pkt.time = static_cast<Timestamp>(sec.value()) * kSecond + usec.value();
    pkt.frame = std::move(frame).take();
    out.push_back(std::move(pkt));
  }
  return out;
}

Result<std::vector<PcapPacket>> read_pcap(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return make_error("pcap: cannot open " + path);
  Bytes data;
  std::uint8_t buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    data.insert(data.end(), buf, buf + n);
  }
  std::fclose(f);
  return parse_pcap(data);
}

}  // namespace hw::sim
