// Byte-stream link: the TCP stand-in under the OpenFlow secure channel.
// Unlike LinkChannel (frame-granularity), a StreamLink carries an ordered
// byte stream with no message boundaries: one send may be delivered split
// into several reads (mtu), and several sends may be delivered in one read
// (coalescing) — exactly the conditions a stream framer must survive.
//
// Fault surface (FaultInjector-compatible):
//  - cut()/restore(): connection loss; bytes in flight are dropped, possibly
//    mid-message, and the stream restarts clean (a TCP reconnect).
//  - stall()/unstall(): delivery freezes while sends keep queueing — the
//    half-open TCP connection a liveness watchdog must detect.
//  - set_mangle(): per-byte corruption probability for fuzz/chaos runs.
#pragma once

#include <deque>
#include <functional>
#include <span>

#include "sim/event_loop.hpp"
#include "telemetry/metrics.hpp"
#include "util/bytes.hpp"
#include "util/rand.hpp"

namespace hw::sim {

/// Snapshot view over the link's telemetry instruments.
struct StreamLinkStats {
  std::uint64_t tx_bytes = 0;
  std::uint64_t rx_bytes = 0;
  std::uint64_t rx_chunks = 0;      // on_data invocations
  std::uint64_t mangled_bytes = 0;  // bytes flipped by set_mangle
  std::uint64_t cut_bytes = 0;      // in-flight bytes lost to cut()
};

/// Full-duplex ordered byte pipe between two ends, with latency, optional
/// jitter (delivery order is still preserved: a chunk never overtakes an
/// earlier one) and an optional mtu bounding the bytes handed to on_data per
/// callback.
class StreamLink {
 public:
  struct Config {
    Duration latency = 0;
    /// Max extra delay per send, drawn uniformly from [0, jitter] with the
    /// link's Rng. Zero disables (and needs no Rng).
    Duration jitter = 0;
    /// Max bytes per on_data callback; 0 = unbounded (one callback drains
    /// everything due). Small values force partial-frame delivery.
    std::size_t mtu = 0;
  };

  class End {
   public:
    using DataFn = std::function<void(std::span<const std::uint8_t>)>;

    /// Appends bytes to the stream towards the peer end.
    void send(std::span<const std::uint8_t> data);
    void send(const Bytes& data) {
      send(std::span<const std::uint8_t>(data.data(), data.size()));
    }
    /// Registers the receive callback for bytes arriving at this end.
    void on_data(DataFn fn) { on_data_ = std::move(fn); }
    [[nodiscard]] bool connected() const { return link_->connected_; }

   private:
    friend class StreamLink;
    /// Per-direction in-flight state: bytes this end has *received* come
    /// through peer_->send, so the queue lives on the receiving end.
    struct Chunk {
      Timestamp ready_at = 0;
      Bytes data;
    };

    void enqueue(Bytes data);
    void flush();

    StreamLink* link_ = nullptr;
    End* peer_ = nullptr;
    DataFn on_data_;
    std::deque<Chunk> inbox_;
    Timestamp last_ready_ = 0;  // monotone delivery deadline (ordering)
  };

  StreamLink(EventLoop& loop, Config config, Rng* rng = nullptr);

  End& a() { return a_; }
  End& b() { return b_; }

  /// Connection loss: queued-but-undelivered bytes (both directions) are
  /// dropped — possibly mid-message — and subsequent sends are discarded.
  void cut();
  /// Fresh connection after cut(): both directions restart with an empty
  /// stream. Peers must re-handshake; framers must be reset by the caller.
  void restore();
  [[nodiscard]] bool connected() const { return connected_; }

  /// Freezes delivery: sends keep queueing but nothing reaches on_data until
  /// unstall(). Models a wedged peer / half-open TCP connection.
  void stall();
  void unstall();
  [[nodiscard]] bool stalled() const { return stalled_; }

  /// Per-byte flip probability applied at send time (needs the link Rng).
  void set_mangle(double probability) { mangle_ = probability; }

  [[nodiscard]] StreamLinkStats stats() const {
    return {metrics_.tx_bytes.value(), metrics_.rx_bytes.value(),
            metrics_.rx_chunks.value(), metrics_.mangled_bytes.value(),
            metrics_.cut_bytes.value()};
  }
  [[nodiscard]] const Config& config() const { return config_; }

 private:
  friend class End;

  EventLoop& loop_;
  Config config_;
  Rng* rng_;
  double mangle_ = 0.0;
  bool connected_ = true;
  bool stalled_ = false;
  End a_;
  End b_;
  struct Instruments {
    telemetry::Counter tx_bytes{"sim.stream.tx_bytes"};
    telemetry::Counter rx_bytes{"sim.stream.rx_bytes"};
    telemetry::Counter rx_chunks{"sim.stream.rx_chunks"};
    telemetry::Counter mangled_bytes{"sim.stream.mangled_bytes"};
    telemetry::Counter cut_bytes{"sim.stream.cut_bytes"};
  } metrics_;
};

}  // namespace hw::sim
