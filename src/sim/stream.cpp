#include "sim/stream.hpp"

#include <algorithm>

namespace hw::sim {

StreamLink::StreamLink(EventLoop& loop, Config config, Rng* rng)
    : loop_(loop), config_(config), rng_(rng) {
  a_.link_ = this;
  b_.link_ = this;
  a_.peer_ = &b_;
  b_.peer_ = &a_;
}

void StreamLink::End::send(std::span<const std::uint8_t> data) {
  if (data.empty()) return;
  StreamLink& link = *link_;
  if (!link.connected_) return;  // TCP after RST: writes go nowhere
  link.metrics_.tx_bytes.inc(data.size());
  Bytes bytes(data.begin(), data.end());
  if (link.mangle_ > 0.0 && link.rng_ != nullptr) {
    for (auto& byte : bytes) {
      if (link.rng_->chance(link.mangle_)) {
        byte ^= static_cast<std::uint8_t>(1 + link.rng_->uniform(255));
        link.metrics_.mangled_bytes.inc();
      }
    }
  }
  peer_->enqueue(std::move(bytes));
}

void StreamLink::End::enqueue(Bytes data) {
  StreamLink& link = *link_;
  Duration extra = 0;
  if (link.config_.jitter > 0 && link.rng_ != nullptr) {
    extra = static_cast<Duration>(link.rng_->uniform(
        static_cast<std::uint64_t>(link.config_.jitter) + 1));
  }
  // The stream is ordered: a jittered chunk never overtakes an earlier one.
  const Timestamp ready =
      std::max(link.loop_.now() + link.config_.latency + extra, last_ready_);
  last_ready_ = ready;
  inbox_.push_back(Chunk{ready, std::move(data)});
  link.loop_.schedule_at(ready, [this] { flush(); });
}

void StreamLink::End::flush() {
  StreamLink& link = *link_;
  if (!link.connected_ || link.stalled_) return;
  const Timestamp now = link.loop_.now();
  // Drain every chunk that is due. Consecutive due chunks merge into one
  // read (coalescing); an mtu bounds each read and spills the remainder
  // into further reads at the same instant (partial frames).
  while (!inbox_.empty() && inbox_.front().ready_at <= now) {
    Bytes read = std::move(inbox_.front().data);
    inbox_.pop_front();
    while (!inbox_.empty() && inbox_.front().ready_at <= now &&
           (link.config_.mtu == 0 || read.size() < link.config_.mtu)) {
      Bytes& next = inbox_.front().data;
      read.insert(read.end(), next.begin(), next.end());
      inbox_.pop_front();
    }
    std::size_t offset = 0;
    while (offset < read.size()) {
      const std::size_t take =
          link.config_.mtu == 0 ? read.size() - offset
                                : std::min(link.config_.mtu, read.size() - offset);
      link.metrics_.rx_bytes.inc(take);
      link.metrics_.rx_chunks.inc();
      if (on_data_) {
        on_data_(std::span<const std::uint8_t>(read.data() + offset, take));
      }
      // Receiving may cut the link (a handler reacting to garbage); stop
      // delivering the rest of a stream that no longer exists.
      if (!link.connected_ || link.stalled_) return;
      offset += take;
    }
  }
}

void StreamLink::cut() {
  if (!connected_) return;
  connected_ = false;
  for (End* end : {&a_, &b_}) {
    for (const auto& chunk : end->inbox_) {
      metrics_.cut_bytes.inc(chunk.data.size());
    }
    end->inbox_.clear();
    end->last_ready_ = 0;
  }
}

void StreamLink::restore() { connected_ = true; }

void StreamLink::stall() { stalled_ = true; }

void StreamLink::unstall() {
  if (!stalled_) return;
  stalled_ = false;
  // Deliver whatever queued up during the stall (TCP would: the bytes were
  // acked into the socket buffer). A caller modelling a reset instead calls
  // cut()/restore().
  a_.flush();
  b_.flush();
}

}  // namespace hw::sim
