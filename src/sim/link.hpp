// Point-to-point link models connecting a host NIC to a router port.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "sim/event_loop.hpp"
#include "telemetry/metrics.hpp"
#include "util/bytes.hpp"
#include "util/rand.hpp"

namespace hw::sim {

/// Anything that can accept a frame (host NIC, datapath port adapter).
class FrameSink {
 public:
  virtual ~FrameSink() = default;
  virtual void deliver(const Bytes& frame) = 0;
};

/// Callback-backed sink for lightweight wiring.
class CallbackSink final : public FrameSink {
 public:
  using Fn = std::function<void(const Bytes&)>;
  explicit CallbackSink(Fn fn) : fn_(std::move(fn)) {}
  void deliver(const Bytes& frame) override { fn_(frame); }

 private:
  Fn fn_;
};

/// Snapshot view over the module's telemetry instruments.
struct LinkStats {
  std::uint64_t tx_frames = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t dropped_frames = 0;
  std::uint64_t retried_frames = 0;  // wireless retransmissions
};

/// Half of a duplex link: frames pushed in at one end arrive at the sink
/// after propagation + serialization delay, subject to capacity and loss.
/// Also a FrameSink so channels compose directly with ports and adapters.
class LinkChannel : public FrameSink {
 public:
  struct Config {
    std::uint64_t bandwidth_bps = 100'000'000;  // 100 Mb/s Fast Ethernet
    Duration latency = 500;                     // 0.5 ms
    double loss_probability = 0.0;
    std::size_t queue_limit = 128;  // frames in flight before tail drop
  };

  LinkChannel(EventLoop& loop, Config config, Rng* rng = nullptr);

  void connect(FrameSink* sink) { sink_ = sink; }
  /// Queues a frame for delivery; drops if the queue is full or loss fires.
  /// Returns false on drop.
  bool send(const Bytes& frame);
  void deliver(const Bytes& frame) override { send(frame); }

  [[nodiscard]] LinkStats stats() const {
    return {metrics_.tx_frames.value(),
            metrics_.tx_bytes.value(),
            metrics_.dropped_frames.value(),
            metrics_.retried_frames.value()};
  }
  [[nodiscard]] const Config& config() const { return config_; }
  void set_loss_probability(double p) { config_.loss_probability = p; }
  void set_bandwidth(std::uint64_t bps) { config_.bandwidth_bps = bps; }

 private:
  EventLoop& loop_;
  Config config_;
  Rng* rng_;
  FrameSink* sink_ = nullptr;
  struct Instruments {
    telemetry::Counter tx_frames{"sim.link.tx_frames"};
    telemetry::Counter tx_bytes{"sim.link.tx_bytes"};
    telemetry::Counter dropped_frames{"sim.link.dropped_frames"};
    telemetry::Counter retried_frames{"sim.link.retried_frames"};
  } metrics_;
  Timestamp busy_until_ = 0;
  std::size_t in_flight_ = 0;
};

/// Full-duplex link: two channels plus convenience wiring.
class DuplexLink {
 public:
  DuplexLink(EventLoop& loop, LinkChannel::Config config, Rng* rng = nullptr)
      : a_to_b_(loop, config, rng), b_to_a_(loop, config, rng) {}

  LinkChannel& a_to_b() { return a_to_b_; }
  LinkChannel& b_to_a() { return b_to_a_; }

 private:
  LinkChannel a_to_b_;
  LinkChannel b_to_a_;
};

}  // namespace hw::sim
