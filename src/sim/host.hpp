// A simulated home device: NIC, ARP, DHCP client state machine, DNS stub
// resolver and raw traffic helpers. Hosts attach to a router port through a
// LinkChannel pair and speak real wire formats, so the router's OpenFlow
// pipeline and NOX modules see exactly what physical devices would send.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/dhcp.hpp"
#include "net/dns.hpp"
#include "net/packet.hpp"
#include "sim/event_loop.hpp"
#include "sim/link.hpp"
#include "telemetry/metrics.hpp"
#include "util/rand.hpp"

namespace hw::sim {

/// RFC 2131 client states (subset: no INIT-REBOOT/REBINDING distinction).
enum class DhcpClientState {
  Init,
  Selecting,
  Requesting,
  Bound,
  Renewing,
};

const char* to_string(DhcpClientState s);

/// Snapshot view over the module's telemetry instruments.
struct HostStats {
  std::uint64_t tx_frames = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t rx_frames = 0;
  std::uint64_t rx_bytes = 0;
  std::uint64_t dhcp_acks = 0;
  std::uint64_t dhcp_naks = 0;
  std::uint64_t dns_answers = 0;
  std::uint64_t dns_failures = 0;
};

class Host final : public FrameSink {
 public:
  struct Config {
    std::string name = "device";
    MacAddress mac;
    std::string hostname;  // sent in DHCP option 12; defaults to name
    Duration dhcp_retry_interval = 2 * kSecond;
    int dhcp_max_retries = 4;
  };

  Host(EventLoop& loop, Config config, Rng& rng);

  /// Wires the host's transmit side to a link towards the router.
  void attach_uplink(LinkChannel* uplink) { uplink_ = uplink; }

  // -- FrameSink: frames arriving from the network --------------------------
  void deliver(const Bytes& frame) override;

  // -- DHCP client -----------------------------------------------------------
  /// Starts (or restarts) address acquisition.
  void start_dhcp();
  /// Sends DHCPRELEASE and forgets the lease.
  void release_dhcp();
  /// Snapshot-restore only: adopts a lease the captured home had already
  /// granted this host. Sets the bound state and arms the renewal timer but
  /// sends no traffic and does NOT fire on_bound — a restore reproduces
  /// state, not the exchange that built it.
  void adopt_lease(Ipv4Address ip, Ipv4Address gateway, Ipv4Address dns,
                   Ipv4Address server, std::uint32_t lease_secs);
  /// Snapshot-restore only: re-seeds an ARP entry the captured host had
  /// already learned, so a restored host does not re-resolve (and so emit
  /// traffic) for a next-hop the first life resolved before the capture.
  void seed_arp(Ipv4Address ip, MacAddress mac) { arp_cache_[ip] = mac; }
  [[nodiscard]] const std::unordered_map<Ipv4Address, MacAddress>& arp_cache()
      const {
    return arp_cache_;
  }
  [[nodiscard]] DhcpClientState dhcp_state() const { return dhcp_state_; }
  [[nodiscard]] std::optional<Ipv4Address> ip() const { return ip_; }
  [[nodiscard]] std::optional<Ipv4Address> gateway() const { return gateway_; }
  [[nodiscard]] std::optional<Ipv4Address> dns_server() const { return dns_server_; }
  /// Fired on each transition into Bound (initial bind and renewals).
  void on_bound(std::function<void()> fn) { on_bound_ = std::move(fn); }
  /// Fired when the server NAKs us (e.g. the user denied this device).
  void on_nak(std::function<void()> fn) { on_nak_ = std::move(fn); }

  // -- DNS stub resolver ------------------------------------------------------
  using ResolveCallback =
      std::function<void(Result<Ipv4Address>, const std::string& name)>;
  /// Resolves `name` via the configured DNS server (times out after 3 s).
  void resolve(const std::string& name, ResolveCallback cb);

  // -- Raw traffic helpers ----------------------------------------------------
  /// Sends a UDP datagram of `payload_size` filler bytes to dst; requires a
  /// bound address. Returns false if not bound / no uplink.
  bool send_udp(Ipv4Address dst, std::uint16_t sport, std::uint16_t dport,
                std::size_t payload_size);
  /// Sends a bare TCP segment (the traffic model generates segment trains).
  bool send_tcp(Ipv4Address dst, std::uint16_t sport, std::uint16_t dport,
                std::uint8_t flags, std::size_t payload_size);
  /// ICMP echo request; replies surface via on_echo_reply.
  bool ping(Ipv4Address dst, std::uint16_t seq);
  void on_echo_reply(std::function<void(Ipv4Address, std::uint16_t)> fn) {
    on_echo_reply_ = std::move(fn);
  }

  /// Registers a UDP receive handler for a local port.
  void on_udp(std::uint16_t port,
              std::function<void(const net::ParsedPacket&)> handler);

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] HostStats stats() const {
    return {metrics_.tx_frames.value(),
            metrics_.tx_bytes.value(),
            metrics_.rx_frames.value(),
            metrics_.rx_bytes.value(),
            metrics_.dhcp_acks.value(),
            metrics_.dhcp_naks.value(),
            metrics_.dns_answers.value(),
            metrics_.dns_failures.value()};
  }
  [[nodiscard]] MacAddress mac() const { return config_.mac; }
  [[nodiscard]] const std::string& name() const { return config_.name; }

 private:
  void send_frame(Bytes frame);
  void send_ip(Ipv4Address dst, Bytes frame_bytes);
  void handle_arp(const net::ArpMessage& arp);
  void handle_dhcp(const net::ParsedPacket& p);
  void handle_dns_response(const net::ParsedPacket& p);
  void send_discover();
  void send_request(Ipv4Address requested, Ipv4Address server);
  void dhcp_timeout();
  void schedule_renewal();
  /// Resolves the next-hop MAC (gateway) then transmits, queueing otherwise.
  void transmit_via_gateway(Bytes frame_placeholder, Ipv4Address dst,
                            std::function<Bytes(MacAddress dst_mac)> builder);

  EventLoop& loop_;
  Config config_;
  Rng& rng_;
  LinkChannel* uplink_ = nullptr;
  struct Instruments {
    telemetry::Counter tx_frames{"sim.host.tx_frames"};
    telemetry::Counter tx_bytes{"sim.host.tx_bytes"};
    telemetry::Counter rx_frames{"sim.host.rx_frames"};
    telemetry::Counter rx_bytes{"sim.host.rx_bytes"};
    telemetry::Counter dhcp_acks{"sim.host.dhcp_acks"};
    telemetry::Counter dhcp_naks{"sim.host.dhcp_naks"};
    telemetry::Counter dns_answers{"sim.host.dns_answers"};
    telemetry::Counter dns_failures{"sim.host.dns_failures"};
  } metrics_;

  // DHCP
  DhcpClientState dhcp_state_ = DhcpClientState::Init;
  std::uint32_t dhcp_xid_ = 0;
  int dhcp_retries_ = 0;
  EventLoop::EventId dhcp_timer_ = 0;
  std::optional<Ipv4Address> ip_;
  std::optional<Ipv4Address> gateway_;
  std::optional<Ipv4Address> dns_server_;
  std::optional<Ipv4Address> dhcp_server_;
  std::uint32_t lease_secs_ = 0;
  std::function<void()> on_bound_;
  std::function<void()> on_nak_;

  // ARP
  std::unordered_map<Ipv4Address, MacAddress> arp_cache_;
  struct PendingSend {
    Ipv4Address next_hop;
    std::function<Bytes(MacAddress)> builder;
  };
  std::vector<PendingSend> pending_sends_;

  // DNS
  struct PendingQuery {
    std::string name;
    ResolveCallback cb;
    EventLoop::EventId timeout = 0;
  };
  std::map<std::uint16_t, PendingQuery> dns_pending_;
  std::uint16_t dns_port_ = 0;  // ephemeral source port

  std::map<std::uint16_t, std::function<void(const net::ParsedPacket&)>>
      udp_handlers_;
  std::function<void(Ipv4Address, std::uint16_t)> on_echo_reply_;
};

}  // namespace hw::sim
