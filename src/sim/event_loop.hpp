// Discrete-event scheduler with a virtual microsecond clock. Everything in
// the reproduction (hosts, links, datapath timeouts, hwdb subscriptions,
// artifact animation) runs off this loop, making runs deterministic.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#ifndef NDEBUG
#include <atomic>
#include <thread>
#endif

#include "util/types.hpp"

namespace hw::sim {

class EventLoop {
 public:
  using Callback = std::function<void()>;
  /// Handle for cancelling a scheduled event.
  using EventId = std::uint64_t;

  EventLoop() = default;
  /// Starts the clock at `origin` instead of zero. A home restored from a
  /// checkpoint constructs its loop at the capture time, so relative delays
  /// during reconstruction land on the same absolute instants they did in
  /// the home's first life.
  explicit EventLoop(Timestamp origin) : now_(origin) {}

  [[nodiscard]] Timestamp now() const { return now_; }

  /// Schedules `fn` to run at absolute time `when` (clamped to >= now).
  EventId schedule_at(Timestamp when, Callback fn);
  /// Schedules `fn` to run `delay` after now.
  EventId schedule(Duration delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }
  /// Cancels a pending event; no-op if already fired or cancelled.
  void cancel(EventId id);

  /// Runs events until the queue is empty or the virtual clock passes
  /// `deadline`. Returns the number of events executed.
  std::size_t run_until(Timestamp deadline);
  std::size_t run_for(Duration d) { return run_until(now_ + d); }
  /// Drains every pending event regardless of time. Use in tests only;
  /// periodic timers must be stopped first or this never returns.
  std::size_t run_all();

  [[nodiscard]] std::size_t pending() const { return heap_.size() - cancelled_; }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  /// next_event_at() when nothing is pending.
  static constexpr Timestamp kNoEvent = ~Timestamp{0};
  /// Virtual time of the earliest pending (non-cancelled) event without
  /// running it — what a residency manager records as a hibernated home's
  /// next-wakeup so no timer is ever missed. Discards lazily-cancelled heap
  /// entries along the way, exactly as pop_one() would.
  [[nodiscard]] Timestamp next_event_at();

  // -- Thread ownership (debug builds) -----------------------------------------
  // A loop — and with it an entire simulated home — belongs to exactly one
  // thread: the first thread that schedules or runs it. The fleet runner
  // executes many loops concurrently on a worker pool; scheduling into a
  // foreign home's loop would corrupt its heap silently, so in debug builds
  // every entry point asserts ownership and fails loudly instead.

  /// True when the calling thread owns this loop (or no owner is bound yet).
  /// Always true in release builds.
  [[nodiscard]] bool owned_by_caller() const {
#ifndef NDEBUG
    const auto owner = owner_.load(std::memory_order_relaxed);
    return owner == std::thread::id{} || owner == std::this_thread::get_id();
#else
    return true;
#endif
  }

 private:
#ifndef NDEBUG
  /// Binds the loop to the calling thread on first use, then asserts every
  /// later use comes from that same thread.
  void check_owner() {
    std::thread::id expected{};
    if (owner_.compare_exchange_strong(expected, std::this_thread::get_id(),
                                       std::memory_order_relaxed)) {
      return;
    }
    assert(expected == std::this_thread::get_id() &&
           "sim::EventLoop used from a thread that does not own it");
  }
  mutable std::atomic<std::thread::id> owner_{};
#else
  void check_owner() {}
#endif

  struct Entry {
    Timestamp when;
    EventId id;  // also breaks ties: FIFO among same-time events
    Callback fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.when != b.when ? a.when > b.when : a.id > b.id;
    }
  };

  bool pop_one(Timestamp deadline);

  Timestamp now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t cancelled_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::vector<EventId> cancelled_ids_;
};

/// Repeating timer helper: reschedules itself every `period` until stopped.
class PeriodicTimer {
 public:
  PeriodicTimer(EventLoop& loop, Duration period, EventLoop::Callback fn)
      : loop_(loop), period_(period), fn_(std::move(fn)) {}
  ~PeriodicTimer() { stop(); }
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void start() {
    if (running_) return;
    running_ = true;
    arm();
  }
  /// Starts with the first fire at absolute time `first` (clamped to now),
  /// then every `period` after it. A restored home re-arms its periodic
  /// drivers with this so their tick phase matches the uninterrupted run.
  void start_at(Timestamp first) {
    if (running_) return;
    running_ = true;
    pending_ = loop_.schedule_at(first, [this] {
      if (!running_) return;
      fn_();
      if (running_) arm();
    });
  }
  void stop() {
    if (!running_) return;
    running_ = false;
    loop_.cancel(pending_);
  }
  [[nodiscard]] bool running() const { return running_; }

 private:
  void arm() {
    pending_ = loop_.schedule(period_, [this] {
      if (!running_) return;
      fn_();
      if (running_) arm();
    });
  }

  EventLoop& loop_;
  Duration period_;
  EventLoop::Callback fn_;
  bool running_ = false;
  EventLoop::EventId pending_ = 0;
};

}  // namespace hw::sim
