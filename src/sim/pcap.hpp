// Classic libpcap capture-file writer/reader (no libpcap dependency): traces
// recorded on the simulated wire open directly in tcpdump/tshark. Timestamps
// map the virtual microsecond clock onto the file's sec/usec fields.
#pragma once

#include <string>
#include <vector>

#include "sim/trace.hpp"
#include "util/result.hpp"

namespace hw::sim {

/// Writes `trace` (all capture points) to `path` in pcap format
/// (magic 0xa1b2c3d4, version 2.4, LINKTYPE_ETHERNET).
Status write_pcap(const Trace& trace, const std::string& path);

/// Serializes to bytes instead of a file (tests, in-memory shipping).
Bytes to_pcap(const Trace& trace);

struct PcapPacket {
  Timestamp time = 0;  // microseconds
  Bytes frame;
};

/// Parses a pcap byte stream (both endiannesses); rejects malformed files.
Result<std::vector<PcapPacket>> parse_pcap(std::span<const std::uint8_t> data);

/// Convenience: read a pcap file from disk.
Result<std::vector<PcapPacket>> read_pcap(const std::string& path);

}  // namespace hw::sim
