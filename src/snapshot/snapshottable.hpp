// The layer interface of the checkpoint subsystem. A subsystem that wants
// its state captured implements save()/restore() against the chunked-TLV
// codec; the SnapshotCoordinator walks registered layers in registration
// order. Layers own their chunk tags; a restore must tolerate its chunk
// being absent (older image) by leaving current state alone.
#pragma once

#include "snapshot/codec.hpp"
#include "util/result.hpp"

namespace hw::snapshot {

class Snapshottable {
 public:
  virtual ~Snapshottable() = default;

  /// Serializes this layer's state as one or more chunks.
  virtual void save(Writer& w) const = 0;
  /// Rebuilds this layer's state from a verified image. Must be silent: no
  /// listener callbacks, no telemetry increments, no traffic — a restore
  /// reproduces state, it does not replay the events that built it.
  virtual Status restore(const Reader& r) = 0;
};

}  // namespace hw::snapshot
