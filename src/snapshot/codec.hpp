// Chunked-TLV binary snapshot container. A snapshot is a 20-byte header
// (magic 'HWSN', format version, chunk count, payload size, CRC32 of the
// whole payload) followed by chunks: tag (fourcc), length, CRC32 of the
// chunk payload, payload bytes. The whole-payload CRC guarantees any
// single-byte corruption anywhere in the image is rejected — including
// flips inside a chunk *tag*, which per-chunk CRCs alone would silently
// treat as an unknown chunk. Unknown tags are skipped on read, so newer
// writers can add chunks without breaking older readers.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "util/addr.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"

namespace hw::snapshot {

/// IEEE 802.3 CRC32 (reflected, poly 0xEDB88320), the tcpdump/zip flavour.
std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Chunk tag from a 4-character mnemonic, e.g. tag("FTBL").
constexpr std::uint32_t tag(const char (&s)[5]) {
  return (static_cast<std::uint32_t>(s[0]) << 24) |
         (static_cast<std::uint32_t>(s[1]) << 16) |
         (static_cast<std::uint32_t>(s[2]) << 8) |
         static_cast<std::uint32_t>(s[3]);
}

inline constexpr std::uint32_t kMagic = tag("HWSN");
inline constexpr std::uint16_t kFormatVersion = 1;

/// Length-prefixed string helpers shared by every layer codec.
void put_string(ByteWriter& w, std::string_view s);
Result<std::string> get_string(ByteReader& r);

/// Address helpers shared by the DHCP / registry layer codecs.
void put_mac(ByteWriter& w, MacAddress mac);
Result<MacAddress> get_mac(ByteReader& r);
inline void put_ip(ByteWriter& w, Ipv4Address ip) { w.u32(ip.value()); }
Result<Ipv4Address> get_ip(ByteReader& r);

/// Builds a snapshot image chunk by chunk. Usage:
///   Writer w;
///   ByteWriter& c = w.begin_chunk(tag("FTBL"));
///   c.u64(...);             // chunk payload
///   w.end_chunk();
///   Bytes image = std::move(w).finish();
class Writer {
 public:
  /// Starts a chunk; returns the writer the caller serializes into. Chunks
  /// may not nest.
  ByteWriter& begin_chunk(std::uint32_t chunk_tag);
  void end_chunk();

  /// Seals the image: header + all chunks. The Writer is spent afterwards.
  [[nodiscard]] Bytes finish() &&;

 private:
  struct Chunk {
    std::uint32_t tag = 0;
    Bytes payload;
  };
  std::vector<Chunk> chunks_;
  ByteWriter current_;
  std::uint32_t current_tag_ = 0;
  bool in_chunk_ = false;
};

/// Parsed, fully validated snapshot image. parse() checks the magic, the
/// version (strictly == kFormatVersion), every length field, the whole-
/// payload CRC and every per-chunk CRC up front; a Reader therefore only
/// ever hands out verified bytes.
class Reader {
 public:
  static Result<Reader> parse(std::span<const std::uint8_t> image);

  /// Chunk payload by tag; nullptr when absent (forward compat: callers
  /// treat a missing optional chunk as "nothing to restore").
  [[nodiscard]] const Bytes* find(std::uint32_t chunk_tag) const;
  /// All chunks bearing `chunk_tag`, in image order (hwdb emits one HTBL
  /// chunk per table).
  [[nodiscard]] std::vector<const Bytes*> find_all(
      std::uint32_t chunk_tag) const;
  [[nodiscard]] std::size_t chunk_count() const { return chunks_.size(); }
  /// Visits every chunk in image order. The encoding is canonical — header
  /// fields are pure functions of the chunk sequence — so re-emitting the
  /// visited chunks through a Writer reproduces the image bit-exactly
  /// (what the residency ImageStore's content-addressed pool relies on).
  void for_each_chunk(
      const std::function<void(std::uint32_t, const Bytes&)>& fn) const;

 private:
  struct Chunk {
    std::uint32_t tag = 0;
    Bytes payload;
  };
  std::vector<Chunk> chunks_;
};

}  // namespace hw::snapshot
