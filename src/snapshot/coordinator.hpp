// SnapshotCoordinator: captures a consistent whole-home image and restores
// one into a freshly constructed home.
//
// Consistency model: the simulation is single-threaded on a virtual clock,
// so "quiesce" means capturing between events. Periodic captures are
// scheduled at absolute multiples of the interval and re-post themselves
// once at the same timestamp before capturing — a one-hop barrier that lets
// every event already queued at the capture instant (periodic timer chains
// armed earlier in the home's life have smaller event ids and therefore run
// first) drain before the image is taken. Restore walks the registered
// layers in registration order; callers register the telemetry layer last
// so restored counters overwrite whatever side effects booting the fresh
// home produced.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sim/event_loop.hpp"
#include "snapshot/snapshottable.hpp"
#include "telemetry/metrics.hpp"

namespace hw::snapshot {

struct SnapshotImage {
  Bytes bytes;
  Timestamp captured_at = 0;
};

/// META chunk accessor: the virtual time the image was captured at.
Result<Timestamp> captured_at(const Reader& r);

class SnapshotCoordinator {
 public:
  explicit SnapshotCoordinator(sim::EventLoop& loop,
                               telemetry::MetricRegistry& metrics =
                                   telemetry::MetricRegistry::current())
      : loop_(loop), metrics_(metrics) {}
  ~SnapshotCoordinator();
  SnapshotCoordinator(const SnapshotCoordinator&) = delete;
  SnapshotCoordinator& operator=(const SnapshotCoordinator&) = delete;

  /// Registers a layer under `name`. Capture and restore both walk layers
  /// in registration order; register the telemetry layer last.
  void add_layer(std::string name, Snapshottable* layer);
  [[nodiscard]] std::vector<std::string> layer_names() const;

  /// Captures every registered layer into one image, stamped with now().
  [[nodiscard]] SnapshotImage capture();

  /// Validates `image` and restores every registered layer from it. On any
  /// validation failure returns the error with snapshot.corrupt_rejected
  /// incremented and *no* layer touched.
  Status restore(const SnapshotImage& image) { return restore(image.bytes); }
  Status restore(std::span<const std::uint8_t> image);
  /// Restores only the named layers (warm restart rebuilds the datapath's
  /// flow table without rewinding hwdb or the registry).
  Status restore_layers(std::span<const std::uint8_t> image,
                        const std::vector<std::string>& names);

  /// Schedules captures at every absolute k * interval + phase instant (the
  /// phase-aligned barrier above). Each image replaces last_image() and is
  /// handed to `on_capture` when set. Pass the home's boot-settle duration
  /// as `phase` (HomeworkRouter::kBootSettle) so captures land after the
  /// integer-second timer cascades have drained.
  void start_periodic_captures(
      Duration interval,
      std::function<void(const SnapshotImage&)> on_capture = {},
      Duration phase = 0);
  void stop_periodic_captures();

  /// Most recent image from capture()/start_periodic_captures().
  [[nodiscard]] const std::optional<SnapshotImage>& last_image() const {
    return last_image_;
  }

  /// Atomic file persistence: writes to `path + ".tmp"` then renames, so a
  /// crash mid-write never leaves a torn snapshot at `path`.
  static Status write_file(const std::string& path, const SnapshotImage& image);
  static Result<SnapshotImage> read_file(const std::string& path);

 private:
  void arm_next_capture(Duration interval);

  sim::EventLoop& loop_;
  telemetry::MetricRegistry& metrics_;
  struct Layer {
    std::string name;
    Snapshottable* layer = nullptr;
  };
  std::vector<Layer> layers_;
  std::optional<SnapshotImage> last_image_;
  std::function<void(const SnapshotImage&)> on_capture_;
  Duration interval_ = 0;
  Duration phase_ = 0;
  sim::EventLoop::EventId pending_ = 0;
  bool periodic_ = false;

  struct Instruments {
    explicit Instruments(telemetry::MetricRegistry& reg)
        : captures{reg, "snapshot.captures"},
          restores{reg, "snapshot.restores"},
          bytes{reg, "snapshot.bytes"},
          corrupt_rejected{reg, "snapshot.corrupt_rejected"} {}
    telemetry::Counter captures;
    telemetry::Counter restores;
    telemetry::Gauge bytes;
    telemetry::Counter corrupt_rejected;
  } metrics_instruments_{metrics_};
};

/// Adapts a pair of functions into a layer (small subsystems — RNG state,
/// driver sequence counters — snapshot through one of these instead of
/// implementing the interface).
class LambdaLayer final : public Snapshottable {
 public:
  LambdaLayer(std::function<void(Writer&)> save,
              std::function<Status(const Reader&)> restore)
      : save_(std::move(save)), restore_(std::move(restore)) {}

  void save(Writer& w) const override { save_(w); }
  Status restore(const Reader& r) override { return restore_(r); }

 private:
  std::function<void(Writer&)> save_;
  std::function<Status(const Reader&)> restore_;
};

/// Fleet-wide capture identity stamped into each member's image ('FTAG'
/// chunk). A coordinated checkpoint captures every home at the same barrier
/// instant; the tag records which capture the image belongs to and the
/// member's position, so a restore can reject an image set stitched together
/// from different captures (or with members swapped around).
struct CaptureTag {
  std::uint64_t capture_id = 0;  // fleet-unique, monotonic per checkpoint
  std::uint32_t member = 0;      // home id this image belongs to
  std::uint32_t members = 0;     // fleet size at capture time
};

/// Layer carrying a CaptureTag. The owner sets the tag via value() just
/// before a coordinated capture; after a restore, value() holds the tag
/// read from the image and restored() is true.
class CaptureTagLayer final : public Snapshottable {
 public:
  void save(Writer& w) const override;
  Status restore(const Reader& r) override;

  [[nodiscard]] CaptureTag& value() { return tag_; }
  [[nodiscard]] const CaptureTag& value() const { return tag_; }
  [[nodiscard]] bool restored() const { return restored_; }

 private:
  CaptureTag tag_;
  bool restored_ = false;
};

/// Rewrites the FTAG chunk of an encoded image with `tag`, leaving every
/// other chunk byte-identical (header CRCs recomputed). A fleet checkpoint
/// of a mixed resident/hibernated fleet reuses a hibernated member's stored
/// image, restamped into the new capture so the stitched-set validation
/// still holds. Errors when the image does not parse or has no FTAG chunk.
Result<Bytes> with_capture_tag(std::span<const std::uint8_t> image,
                               const CaptureTag& tag);

/// Snapshots a registry's non-histogram scalars ('TELE' chunk). Restore
/// adjusts live instruments so each series sums to its captured value;
/// histograms time wall-clock nanoseconds and are deliberately excluded.
/// Register this layer last: restoring it erases the telemetry side effects
/// of booting the fresh home.
class TelemetryLayer final : public Snapshottable {
 public:
  explicit TelemetryLayer(telemetry::MetricRegistry& registry)
      : registry_(registry) {}

  void save(Writer& w) const override;
  Status restore(const Reader& r) override;

 private:
  telemetry::MetricRegistry& registry_;
};

}  // namespace hw::snapshot
