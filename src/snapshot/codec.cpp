#include "snapshot/codec.hpp"

#include <array>
#include <cassert>

namespace hw::snapshot {
namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const std::uint8_t byte : data) {
    crc = table[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void put_string(ByteWriter& w, std::string_view s) {
  w.u32(static_cast<std::uint32_t>(s.size()));
  w.raw(s.data(), s.size());
}

Result<std::string> get_string(ByteReader& r) {
  auto len = r.u32();
  if (!len) return len.error();
  auto bytes = r.raw(len.value());
  if (!bytes) return bytes.error();
  return std::string(bytes.value().begin(), bytes.value().end());
}

void put_mac(ByteWriter& w, MacAddress mac) { w.raw(mac.octets()); }

Result<MacAddress> get_mac(ByteReader& r) {
  auto raw = r.view(6);
  if (!raw) return raw.error();
  std::array<std::uint8_t, 6> octets{};
  std::memcpy(octets.data(), raw.value().data(), 6);
  return MacAddress{octets};
}

Result<Ipv4Address> get_ip(ByteReader& r) {
  auto v = r.u32();
  if (!v) return v.error();
  return Ipv4Address{v.value()};
}

ByteWriter& Writer::begin_chunk(std::uint32_t chunk_tag) {
  assert(!in_chunk_ && "snapshot chunks may not nest");
  in_chunk_ = true;
  current_tag_ = chunk_tag;
  current_ = ByteWriter{};
  return current_;
}

void Writer::end_chunk() {
  assert(in_chunk_ && "end_chunk without begin_chunk");
  in_chunk_ = false;
  chunks_.push_back(Chunk{current_tag_, std::move(current_).take()});
}

Bytes Writer::finish() && {
  assert(!in_chunk_ && "finish with an open chunk");
  // Payload: every chunk framed as tag / length / crc / bytes.
  ByteWriter payload;
  for (const Chunk& c : chunks_) {
    payload.u32(c.tag);
    payload.u32(static_cast<std::uint32_t>(c.payload.size()));
    payload.u32(crc32(c.payload));
    payload.raw(c.payload);
  }
  const Bytes body = std::move(payload).take();

  ByteWriter image(20 + body.size());
  image.u32(kMagic);
  image.u16(kFormatVersion);
  image.u16(static_cast<std::uint16_t>(chunks_.size()));
  image.u32(static_cast<std::uint32_t>(body.size()));
  image.u32(crc32(body));
  image.raw(body);
  return std::move(image).take();
}

Result<Reader> Reader::parse(std::span<const std::uint8_t> image) {
  ByteReader r(image);
  auto magic = r.u32();
  if (!magic || magic.value() != kMagic) {
    return make_error("snapshot: bad magic");
  }
  auto version = r.u16();
  if (!version || version.value() != kFormatVersion) {
    return make_error("snapshot: unsupported format version");
  }
  auto chunk_count = r.u16();
  auto payload_size = r.u32();
  auto payload_crc = r.u32();
  if (!chunk_count || !payload_size || !payload_crc) {
    return make_error("snapshot: truncated header");
  }
  if (payload_size.value() != r.remaining()) {
    return make_error("snapshot: payload size mismatch");
  }
  auto body = r.view(payload_size.value());
  if (!body) return make_error("snapshot: truncated payload");
  if (crc32(body.value()) != payload_crc.value()) {
    return make_error("snapshot: payload checksum mismatch");
  }

  Reader out;
  ByteReader chunks(body.value());
  for (std::uint16_t i = 0; i < chunk_count.value(); ++i) {
    auto chunk_tag = chunks.u32();
    auto len = chunks.u32();
    auto crc = chunks.u32();
    if (!chunk_tag || !len || !crc) {
      return make_error("snapshot: truncated chunk header");
    }
    auto chunk_payload = chunks.raw(len.value());
    if (!chunk_payload) return make_error("snapshot: truncated chunk payload");
    if (crc32(chunk_payload.value()) != crc.value()) {
      return make_error("snapshot: chunk checksum mismatch");
    }
    out.chunks_.push_back(
        Chunk{chunk_tag.value(), std::move(chunk_payload).take()});
  }
  if (!chunks.empty()) {
    return make_error("snapshot: trailing bytes after last chunk");
  }
  return out;
}

const Bytes* Reader::find(std::uint32_t chunk_tag) const {
  for (const Chunk& c : chunks_) {
    if (c.tag == chunk_tag) return &c.payload;
  }
  return nullptr;
}

std::vector<const Bytes*> Reader::find_all(std::uint32_t chunk_tag) const {
  std::vector<const Bytes*> out;
  for (const Chunk& c : chunks_) {
    if (c.tag == chunk_tag) out.push_back(&c.payload);
  }
  return out;
}

void Reader::for_each_chunk(
    const std::function<void(std::uint32_t, const Bytes&)>& fn) const {
  for (const Chunk& c : chunks_) fn(c.tag, c.payload);
}

}  // namespace hw::snapshot
