#include "snapshot/coordinator.hpp"

#include <bit>
#include <cstdio>

namespace hw::snapshot {
namespace {

constexpr std::uint32_t kMetaTag = tag("META");
constexpr std::uint32_t kTeleTag = tag("TELE");
constexpr std::uint32_t kFtagTag = tag("FTAG");

}  // namespace

Result<Timestamp> captured_at(const Reader& r) {
  const Bytes* meta = r.find(kMetaTag);
  if (meta == nullptr) return make_error("snapshot: no META chunk");
  ByteReader br(*meta);
  auto at = br.u64();
  if (!at) return at.error();
  return at.value();
}

SnapshotCoordinator::~SnapshotCoordinator() { stop_periodic_captures(); }

void SnapshotCoordinator::add_layer(std::string name, Snapshottable* layer) {
  layers_.push_back(Layer{std::move(name), layer});
}

std::vector<std::string> SnapshotCoordinator::layer_names() const {
  std::vector<std::string> out;
  out.reserve(layers_.size());
  for (const Layer& l : layers_) out.push_back(l.name);
  return out;
}

SnapshotImage SnapshotCoordinator::capture() {
  // Count the capture before walking the layers: the image's own TELE chunk
  // then carries the incremented value, so a home resumed from it continues
  // the series exactly where the uninterrupted run would be.
  metrics_instruments_.captures.inc();
  Writer w;
  w.begin_chunk(kMetaTag).u64(loop_.now());
  w.end_chunk();
  for (const Layer& l : layers_) l.layer->save(w);
  SnapshotImage image;
  image.bytes = std::move(w).finish();
  image.captured_at = loop_.now();
  metrics_instruments_.bytes.set(static_cast<std::int64_t>(image.bytes.size()));
  last_image_ = image;
  return image;
}

Status SnapshotCoordinator::restore(std::span<const std::uint8_t> image) {
  auto reader = Reader::parse(image);
  if (!reader) {
    metrics_instruments_.corrupt_rejected.inc();
    return reader.error();
  }
  for (const Layer& l : layers_) {
    if (auto s = l.layer->restore(reader.value()); !s.ok()) return s;
  }
  metrics_instruments_.restores.inc();
  return Status::success();
}

Status SnapshotCoordinator::restore_layers(
    std::span<const std::uint8_t> image,
    const std::vector<std::string>& names) {
  auto reader = Reader::parse(image);
  if (!reader) {
    metrics_instruments_.corrupt_rejected.inc();
    return reader.error();
  }
  for (const Layer& l : layers_) {
    bool wanted = false;
    for (const std::string& n : names) wanted = wanted || n == l.name;
    if (!wanted) continue;
    if (auto s = l.layer->restore(reader.value()); !s.ok()) return s;
  }
  metrics_instruments_.restores.inc();
  return Status::success();
}

void SnapshotCoordinator::start_periodic_captures(
    Duration interval, std::function<void(const SnapshotImage&)> on_capture,
    Duration phase) {
  stop_periodic_captures();
  interval_ = interval;
  phase_ = phase;
  on_capture_ = std::move(on_capture);
  periodic_ = true;
  arm_next_capture(interval_);
}

void SnapshotCoordinator::stop_periodic_captures() {
  if (!periodic_) return;
  periodic_ = false;
  loop_.cancel(pending_);
}

void SnapshotCoordinator::arm_next_capture(Duration interval) {
  // Absolute k * interval + phase instants, so every restored home's capture
  // schedule lines up with the uninterrupted run's regardless of when the
  // coordinator was (re)started.
  const Timestamp now = loop_.now();
  const Timestamp next = now < phase_
                             ? phase_ + interval
                             : phase_ + ((now - phase_) / interval + 1) * interval;
  pending_ = loop_.schedule_at(next, [this] {
    if (!periodic_) return;
    // One-hop barrier: re-post at the same instant so everything already
    // queued at the capture time runs before the image is taken.
    pending_ = loop_.schedule_at(loop_.now(), [this] {
      if (!periodic_) return;
      const SnapshotImage image = capture();
      if (on_capture_) on_capture_(image);
      arm_next_capture(interval_);
    });
  });
}

Status SnapshotCoordinator::write_file(const std::string& path,
                                       const SnapshotImage& image) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return make_error("snapshot: cannot open " + tmp);
  const std::size_t wrote =
      image.bytes.empty()
          ? 0
          : std::fwrite(image.bytes.data(), 1, image.bytes.size(), f);
  const bool flushed = std::fclose(f) == 0 && wrote == image.bytes.size();
  if (!flushed) {
    std::remove(tmp.c_str());
    return make_error("snapshot: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return make_error("snapshot: cannot rename " + tmp + " to " + path);
  }
  return Status::success();
}

Result<SnapshotImage> SnapshotCoordinator::read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return make_error("snapshot: cannot open " + path);
  Bytes bytes;
  std::uint8_t buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  std::fclose(f);
  auto reader = Reader::parse(bytes);
  if (!reader) return reader.error();
  auto at = captured_at(reader.value());
  if (!at) return at.error();
  return SnapshotImage{std::move(bytes), at.value()};
}

void CaptureTagLayer::save(Writer& w) const {
  ByteWriter& c = w.begin_chunk(kFtagTag);
  c.u64(tag_.capture_id);
  c.u32(tag_.member);
  c.u32(tag_.members);
  w.end_chunk();
}

Status CaptureTagLayer::restore(const Reader& r) {
  const Bytes* chunk = r.find(kFtagTag);
  if (chunk == nullptr) return make_error("snapshot: no FTAG chunk");
  ByteReader br(*chunk);
  auto id = br.u64();
  if (!id) return id.error();
  auto member = br.u32();
  if (!member) return member.error();
  auto members = br.u32();
  if (!members) return members.error();
  tag_ = CaptureTag{id.value(), member.value(), members.value()};
  restored_ = true;
  return Status::success();
}

Result<Bytes> with_capture_tag(std::span<const std::uint8_t> image,
                               const CaptureTag& tag) {
  auto reader = Reader::parse(image);
  if (!reader) return reader.error();
  if (reader.value().find(kFtagTag) == nullptr) {
    return make_error("snapshot: no FTAG chunk to restamp");
  }
  Writer w;
  reader.value().for_each_chunk([&](std::uint32_t chunk_tag,
                                    const Bytes& payload) {
    ByteWriter& c = w.begin_chunk(chunk_tag);
    if (chunk_tag == kFtagTag) {
      c.u64(tag.capture_id);
      c.u32(tag.member);
      c.u32(tag.members);
    } else {
      c.raw(payload);
    }
    w.end_chunk();
  });
  return std::move(w).finish();
}

void TelemetryLayer::save(Writer& w) const {
  const auto scalars = registry_.scalars();
  ByteWriter& c = w.begin_chunk(kTeleTag);
  c.u32(static_cast<std::uint32_t>(scalars.size()));
  for (const auto& [name, value] : scalars) {
    put_string(c, name);
    c.u64(std::bit_cast<std::uint64_t>(value));
  }
  w.end_chunk();
}

Status TelemetryLayer::restore(const Reader& r) {
  const Bytes* chunk = r.find(kTeleTag);
  if (chunk == nullptr) return Status::success();
  ByteReader br(*chunk);
  auto count = br.u32();
  if (!count) return count.error();
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto name = get_string(br);
    if (!name) return name.error();
    auto bits = br.u64();
    if (!bits) return bits.error();
    // A series that no longer exists (instrument not yet constructed in the
    // fresh home) is skipped: the home builds the same instruments it did in
    // its first life, so anything missing here is a genuinely retired series.
    (void)registry_.restore_scalar(name.value(),
                                   std::bit_cast<double>(bits.value()));
  }
  return Status::success();
}

}  // namespace hw::snapshot
