#include "nox/component.hpp"

// Component is header-only behaviour; this TU anchors the vtable.
namespace hw::nox {}  // namespace hw::nox
