// NOX-style component model. The paper's router runs its DHCP server, DNS
// proxy, control API and hwdb export as NOX modules; each is a Component
// receiving ordered OpenFlow events and using the Controller's send API.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "net/packet.hpp"
#include "openflow/messages.hpp"

namespace hw::nox {

class Controller;

using DatapathId = std::uint64_t;

/// One flow a component wants present in a datapath's table — the unit of
/// desired state. `key` is the flow's stable identity ("dhcp:intercept",
/// "policy:block:src:<mac>", …): replay and reconciliation both derive the
/// flow's cookie from it, so a rule installed by blind replay and the same
/// rule installed by a reconcile delta are byte-identical on the wire.
struct FlowIntent {
  std::string key;
  ofp::Match match;
  std::uint16_t priority = 0x8000;
  ofp::ActionList actions;
  std::uint16_t idle_timeout = 0;
  std::uint16_t hard_timeout = 0;
  std::uint16_t flags = 0;
};

/// Receives a component's flow contributions (Component::contribute_flows).
class FlowIntentSink {
 public:
  virtual ~FlowIntentSink() = default;
  virtual void add(FlowIntent intent) = 0;
};

/// Cookie namespace tag for desired-state-owned flows: the top byte marks a
/// flow as declaratively owned, so a reconciler may delete unclaimed entries
/// carrying it while leaving reactive flows (cookie 0) alone.
inline constexpr std::uint64_t kDesiredCookieTag = 0xD5;

/// Deterministic cookie for a desired flow: the namespace tag in the top
/// byte over an FNV-1a hash of the identity key. Pure function of the key —
/// identical across replay/reconcile paths, runs, and thread counts.
[[nodiscard]] constexpr std::uint64_t desired_cookie(std::string_view key) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : key) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return (kDesiredCookieTag << 56) | (h & 0x00ffffffffffffffull);
}

/// True if `cookie` lies in the desired-state namespace.
[[nodiscard]] constexpr bool is_desired_cookie(std::uint64_t cookie) {
  return (cookie >> 56) == kDesiredCookieTag;
}

/// NOX event-handler chain disposition: Continue passes the event to the
/// next component, Stop consumes it.
enum class Disposition { Continue, Stop };

/// Context handed to packet-in handlers: the raw message plus a parsed view
/// (parsed once by the controller, shared by all components).
struct PacketInEvent {
  DatapathId dpid = 0;
  const ofp::PacketIn& msg;
  const net::ParsedPacket& packet;
};

class Component {
 public:
  explicit Component(std::string name) : name_(std::move(name)) {}
  virtual ~Component() = default;
  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Names of components that must be started before this one (NOX's
  /// dependency declaration). Resolved topologically by the Controller.
  [[nodiscard]] virtual std::vector<std::string> dependencies() const {
    return {};
  }

  /// Called once when the controller starts the component, after its
  /// dependencies have been installed. `ctl` outlives the component.
  virtual void install(Controller& ctl) { ctl_ = &ctl; }

  /// Declares the flows this component wants present in `dpid`'s table.
  /// Called by the controller's replay path on every (re)join and by the
  /// reconciler when it rebuilds desired state — must be a pure function of
  /// the component's current state (no sends, no mutation).
  virtual void contribute_flows(DatapathId, FlowIntentSink&) {}

  // -- Event handlers (defaults ignore the event) ---------------------------
  virtual void handle_datapath_join(DatapathId, const ofp::FeaturesReply&) {}
  virtual void handle_datapath_leave(DatapathId) {}
  virtual Disposition handle_packet_in(const PacketInEvent&) {
    return Disposition::Continue;
  }
  virtual void handle_flow_removed(DatapathId, const ofp::FlowRemoved&) {}
  virtual void handle_port_status(DatapathId, const ofp::PortStatus&) {}
  virtual void handle_error(DatapathId, const ofp::ErrorMsg&) {}

 protected:
  [[nodiscard]] Controller& controller() const { return *ctl_; }

 private:
  std::string name_;
  Controller* ctl_ = nullptr;
};

}  // namespace hw::nox
