// NOX-style component model. The paper's router runs its DHCP server, DNS
// proxy, control API and hwdb export as NOX modules; each is a Component
// receiving ordered OpenFlow events and using the Controller's send API.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "openflow/messages.hpp"

namespace hw::nox {

class Controller;

using DatapathId = std::uint64_t;

/// NOX event-handler chain disposition: Continue passes the event to the
/// next component, Stop consumes it.
enum class Disposition { Continue, Stop };

/// Context handed to packet-in handlers: the raw message plus a parsed view
/// (parsed once by the controller, shared by all components).
struct PacketInEvent {
  DatapathId dpid = 0;
  const ofp::PacketIn& msg;
  const net::ParsedPacket& packet;
};

class Component {
 public:
  explicit Component(std::string name) : name_(std::move(name)) {}
  virtual ~Component() = default;
  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Names of components that must be started before this one (NOX's
  /// dependency declaration). Resolved topologically by the Controller.
  [[nodiscard]] virtual std::vector<std::string> dependencies() const {
    return {};
  }

  /// Called once when the controller starts the component, after its
  /// dependencies have been installed. `ctl` outlives the component.
  virtual void install(Controller& ctl) { ctl_ = &ctl; }

  // -- Event handlers (defaults ignore the event) ---------------------------
  virtual void handle_datapath_join(DatapathId, const ofp::FeaturesReply&) {}
  virtual void handle_datapath_leave(DatapathId) {}
  virtual Disposition handle_packet_in(const PacketInEvent&) {
    return Disposition::Continue;
  }
  virtual void handle_flow_removed(DatapathId, const ofp::FlowRemoved&) {}
  virtual void handle_port_status(DatapathId, const ofp::PortStatus&) {}
  virtual void handle_error(DatapathId, const ofp::ErrorMsg&) {}

 protected:
  [[nodiscard]] Controller& controller() const { return *ctl_; }

 private:
  std::string name_;
  Controller* ctl_ = nullptr;
};

}  // namespace hw::nox
