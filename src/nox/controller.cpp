#include "nox/controller.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/logging.hpp"

namespace hw::nox {
namespace {
constexpr std::string_view kLog = "nox";
}  // namespace

Controller::Controller(sim::EventLoop& loop, telemetry::MetricRegistry& metrics)
    : loop_(loop), metrics_(metrics) {}
Controller::~Controller() = default;

void Controller::add_component(std::unique_ptr<Component> component) {
  components_.push_back(std::move(component));
}

Component* Controller::component(const std::string& name) const {
  for (const auto& c : components_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

void Controller::start() {
  if (started_) return;
  // Topological sort of the dependency graph (DFS, cycle detection).
  ordered_.clear();
  std::map<std::string, int> state;  // 0 unvisited, 1 visiting, 2 done
  std::function<void(Component*)> visit = [&](Component* c) {
    int& s = state[c->name()];
    if (s == 2) return;
    if (s == 1) throw std::runtime_error("component dependency cycle at " + c->name());
    s = 1;
    for (const auto& dep : c->dependencies()) {
      Component* d = component(dep);
      if (d == nullptr) {
        throw std::runtime_error("component " + c->name() +
                                 " depends on unknown component " + dep);
      }
      visit(d);
    }
    s = 2;
    ordered_.push_back(c);
  };
  for (const auto& c : components_) visit(c.get());

  for (Component* c : ordered_) {
    HW_LOG_INFO(kLog, "installing component %s", c->name().c_str());
    c->install(*this);
  }
  started_ = true;
}

void Controller::connect_datapath(ofp::ChannelEndpoint& channel) {
  auto conn = std::make_unique<Connection>();
  conn->channel = &channel;
  Connection* raw = conn.get();
  channel.on_receive(
      [this, raw](const Bytes& encoded) { handle_message(*raw, encoded); });
  connections_.push_back(std::move(conn));
  // OpenFlow handshake: HELLO then FEATURES_REQUEST.
  channel.send(ofp::encode({next_xid(), ofp::Hello{}}));
  channel.send(ofp::encode({next_xid(), ofp::FeaturesRequest{}}));
}

std::vector<DatapathId> Controller::datapaths() const {
  std::vector<DatapathId> out;
  for (const auto& c : connections_) {
    if (c->dpid) out.push_back(*c->dpid);
  }
  return out;
}

bool Controller::datapath_connected(DatapathId dpid) const {
  return std::any_of(connections_.begin(), connections_.end(),
                     [&](const auto& c) { return c->dpid == dpid; });
}

const ofp::FeaturesReply* Controller::features(DatapathId dpid) const {
  for (const auto& c : connections_) {
    if (c->dpid == dpid) return &c->features;
  }
  return nullptr;
}

Controller::Connection* Controller::find(DatapathId dpid) {
  for (const auto& c : connections_) {
    if (c->dpid == dpid) return c.get();
  }
  return nullptr;
}

void Controller::handle_message(Connection& conn, const Bytes& encoded) {
  auto env = ofp::decode(encoded);
  if (!env) {
    HW_LOG_WARN(kLog, "undecodable datapath message: %s",
                env.error().message.c_str());
    return;
  }
  const std::uint32_t xid = env.value().xid;

  std::visit(
      [&](auto&& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, ofp::Hello>) {
          if (conn.dpid) {
            // A fresh HELLO on an identified connection means the datapath
            // restarted and lost its flow table: run a full re-sync.
            HW_LOG_WARN(kLog, "datapath %llu re-sent HELLO; re-syncing",
                        static_cast<unsigned long long>(*conn.dpid));
            resync_datapath(*conn.dpid);
          }
          // otherwise nothing further; features request already in flight
        } else if constexpr (std::is_same_v<T, ofp::EchoRequest>) {
          conn.channel->send(ofp::encode({xid, ofp::EchoReply{m.data}}));
        } else if constexpr (std::is_same_v<T, ofp::EchoReply>) {
          auto it = pending_echo_.find(xid);
          if (it != pending_echo_.end()) {
            auto cb = std::move(it->second);
            pending_echo_.erase(it);
            cb();
          }
        } else if constexpr (std::is_same_v<T, ofp::FeaturesReply>) {
          const bool rejoin = conn.dpid.has_value();
          // A resync requested while the dpid was unknown re-arms here: the
          // first reply identifying it runs the full re-sync path.
          const bool rearmed = pending_resync_.erase(m.datapath_id) > 0;
          const bool resync = rejoin || rearmed;
          conn.dpid = m.datapath_id;
          conn.features = m;
          HW_LOG_INFO(kLog, "datapath %llu %sjoined with %zu ports",
                      static_cast<unsigned long long>(m.datapath_id),
                      rejoin ? "re-" : "", m.ports.size());
          const std::uint64_t mods_before = metrics_.flow_mods.value();
          for (Component* c : ordered_) {
            c->handle_datapath_join(m.datapath_id, conn.features);
          }
          if (resync_hook_) {
            // Goal-state mode: the hook triggers a reconcile round that
            // reads the table back, applies the minimal delta and (for
            // resyncs) finishes through confirm_resync().
            resync_hook_(m.datapath_id, resync);
          } else {
            replay_flow_setup(m.datapath_id);
            if (resync) {
              // Everything the components and the replay just pushed is the
              // recovery re-install; a barrier confirms it landed.
              metrics_.resynced_flows.inc(metrics_.flow_mods.value() -
                                          mods_before);
              const DatapathId dpid = m.datapath_id;
              send_barrier(dpid, [this, dpid] {
                HW_LOG_INFO(kLog, "datapath %llu re-sync barrier confirmed",
                            static_cast<unsigned long long>(dpid));
                if (on_resynced_) on_resynced_(dpid);
              });
            }
          }
        } else if constexpr (std::is_same_v<T, ofp::PacketIn>) {
          if (conn.dpid) dispatch_packet_in(*conn.dpid, m);
        } else if constexpr (std::is_same_v<T, ofp::FlowRemoved>) {
          metrics_.flow_removed.inc();
          if (conn.dpid) {
            for (Component* c : ordered_) c->handle_flow_removed(*conn.dpid, m);
          }
        } else if constexpr (std::is_same_v<T, ofp::PortStatus>) {
          if (conn.dpid) {
            for (Component* c : ordered_) c->handle_port_status(*conn.dpid, m);
          }
        } else if constexpr (std::is_same_v<T, ofp::ErrorMsg>) {
          metrics_.errors.inc();
          HW_LOG_WARN(kLog, "datapath error type=%u code=%u",
                      static_cast<unsigned>(m.type), m.code);
          if (conn.dpid) {
            for (Component* c : ordered_) c->handle_error(*conn.dpid, m);
          }
        } else if constexpr (std::is_same_v<T, ofp::StatsReply>) {
          auto it = pending_stats_.find(xid);
          if (it != pending_stats_.end()) {
            // Paginated replies (OFPSF_REPLY_MORE) accumulate until the
            // final fragment; the callback sees one merged reply.
            if (auto* flows =
                    std::get_if<std::vector<ofp::FlowStatsEntry>>(&m.body)) {
              auto& partial = partial_stats_[xid];
              partial.insert(partial.end(),
                             std::make_move_iterator(flows->begin()),
                             std::make_move_iterator(flows->end()));
              if ((m.flags & ofp::kStatsReplyMore) != 0) return;
              m.body = std::move(partial);
              m.flags = 0;
              partial_stats_.erase(xid);
            }
            auto cb = std::move(it->second);
            pending_stats_.erase(it);
            cb(m);
          }
        } else if constexpr (std::is_same_v<T, ofp::BarrierReply>) {
          auto it = pending_barrier_.find(xid);
          if (it != pending_barrier_.end()) {
            auto cb = std::move(it->second);
            pending_barrier_.erase(it);
            if (cb) cb();
          }
        } else {
          HW_LOG_WARN(kLog, "unexpected message type %s from datapath",
                      to_string(ofp::type_of(ofp::Message{m})));
        }
      },
      std::move(env).take().msg);
}

void Controller::dispatch_packet_in(DatapathId dpid, const ofp::PacketIn& pi) {
  const telemetry::ScopedTimer timer(metrics_.packet_in_dispatch_ns);
  metrics_.packet_ins.inc();
  auto parsed = net::ParsedPacket::parse(pi.data);
  if (!parsed) {
    metrics_.unparseable_packets.inc();
    return;
  }
  const PacketInEvent event{dpid, pi, parsed.value()};
  for (Component* c : ordered_) {
    if (c->handle_packet_in(event) == Disposition::Stop) break;
  }
}

void Controller::send_flow_mod(DatapathId dpid, const ofp::FlowMod& mod) {
  Connection* conn = find(dpid);
  if (conn == nullptr) return;
  metrics_.flow_mods.inc();
  conn->channel->send(ofp::encode({next_xid(), mod}));
}

void Controller::send_packet_out(DatapathId dpid, const ofp::PacketOut& po) {
  Connection* conn = find(dpid);
  if (conn == nullptr) return;
  metrics_.packet_outs.inc();
  conn->channel->send(ofp::encode({next_xid(), po}));
}

void Controller::install_flow(DatapathId dpid, const ofp::Match& match,
                              ofp::ActionList actions, std::uint16_t priority,
                              std::uint16_t idle_timeout,
                              std::uint16_t hard_timeout, bool notify_removal,
                              std::uint64_t cookie) {
  ofp::FlowMod mod;
  mod.match = match;
  mod.command = ofp::FlowModCommand::Add;
  mod.actions = std::move(actions);
  mod.priority = priority;
  mod.idle_timeout = idle_timeout;
  mod.hard_timeout = hard_timeout;
  mod.cookie = cookie;
  if (notify_removal) mod.flags |= ofp::FlowModFlags::kSendFlowRem;
  send_flow_mod(dpid, mod);
}

void Controller::delete_flows(DatapathId dpid, const ofp::Match& match) {
  ofp::FlowMod mod;
  mod.match = match;
  mod.command = ofp::FlowModCommand::Delete;
  send_flow_mod(dpid, mod);
}

void Controller::request_stats(DatapathId dpid, const ofp::StatsRequest& req,
                               StatsCallback cb) {
  Connection* conn = find(dpid);
  if (conn == nullptr) return;
  const std::uint32_t xid = next_xid();
  pending_stats_[xid] = std::move(cb);
  conn->channel->send(ofp::encode({xid, req}));
}

void Controller::send_echo(DatapathId dpid, std::function<void()> on_reply) {
  Connection* conn = find(dpid);
  if (conn == nullptr) return;
  const std::uint32_t xid = next_xid();
  pending_echo_[xid] = std::move(on_reply);
  conn->channel->send(ofp::encode({xid, ofp::EchoRequest{}}));
}

void Controller::send_barrier(DatapathId dpid, std::function<void()> cb) {
  Connection* conn = find(dpid);
  if (conn == nullptr) return;
  const std::uint32_t xid = next_xid();
  pending_barrier_[xid] = std::move(cb);
  conn->channel->send(ofp::encode({xid, ofp::BarrierRequest{}}));
}

void Controller::resync_datapath(DatapathId dpid) {
  Connection* conn = find(dpid);
  if (conn == nullptr) {
    // The dpid is not identified on any live connection (it reconnected and
    // has not completed FEATURES yet, or never existed). Count the skip and
    // re-arm: the next FEATURES_REPLY naming this dpid re-syncs it.
    metrics_.resync_skipped.inc();
    pending_resync_.insert(dpid);
    return;
  }
  metrics_.reconnects.inc();
  // Restart the handshake; the FEATURES_REPLY handler re-announces the join
  // to every component and re-syncs the table (replay or reconcile round).
  conn->channel->send(ofp::encode({next_xid(), ofp::FeaturesRequest{}}));
}

void Controller::collect_flow_intents(DatapathId dpid,
                                      FlowIntentSink& sink) const {
  for (Component* c : ordered_) c->contribute_flows(dpid, sink);
}

void Controller::replay_flow_setup(DatapathId dpid) {
  // Direct-wire sink: each contribution becomes an Add flow-mod carrying the
  // deterministic desired-state cookie, exactly what a reconcile Add sends.
  class WireSink final : public FlowIntentSink {
   public:
    WireSink(Controller& ctl, DatapathId dpid) : ctl_(ctl), dpid_(dpid) {}
    void add(FlowIntent intent) override {
      ofp::FlowMod mod;
      mod.match = intent.match;
      mod.command = ofp::FlowModCommand::Add;
      mod.priority = intent.priority;
      mod.idle_timeout = intent.idle_timeout;
      mod.hard_timeout = intent.hard_timeout;
      mod.flags = intent.flags;
      mod.cookie = desired_cookie(intent.key);
      mod.actions = std::move(intent.actions);
      ctl_.send_flow_mod(dpid_, mod);
    }

   private:
    Controller& ctl_;
    DatapathId dpid_;
  } sink(*this, dpid);
  collect_flow_intents(dpid, sink);
}

void Controller::confirm_resync(DatapathId dpid, std::uint64_t flows) {
  metrics_.resynced_flows.inc(flows);
  HW_LOG_INFO(kLog, "datapath %llu reconcile re-sync converged (%llu flows)",
              static_cast<unsigned long long>(dpid),
              static_cast<unsigned long long>(flows));
  if (on_resynced_) on_resynced_(dpid);
}

}  // namespace hw::nox
