#include "nox/liveness.hpp"

#include "util/logging.hpp"

namespace hw::nox {

LivenessMonitor::~LivenessMonitor() = default;

void LivenessMonitor::install(Controller& ctl) {
  Component::install(ctl);
  timer_ = std::make_unique<sim::PeriodicTimer>(
      ctl.loop(), config_.probe_interval, [this] { probe_all(); });
  timer_->start();
}

void LivenessMonitor::handle_datapath_join(DatapathId dpid,
                                           const ofp::FeaturesReply&) {
  peers_[dpid] = PeerState{};
}

const LivenessMonitor::PeerState* LivenessMonitor::peer(DatapathId dpid) const {
  auto it = peers_.find(dpid);
  return it == peers_.end() ? nullptr : &it->second;
}

void LivenessMonitor::probe_all() {
  for (auto& [dpid, state] : peers_) {
    // Account the miss up front; the reply (if any) repairs it.
    ++state.probes;
    ++state.consecutive_misses;
    if (state.alive && state.consecutive_misses > config_.max_misses) {
      state.alive = false;
      HW_LOG_WARN("liveness", "datapath %llu unresponsive",
                  static_cast<unsigned long long>(dpid));
      if (on_dead_) on_dead_(dpid);
    }

    const Timestamp sent_at = controller().loop().now();
    const DatapathId id = dpid;
    controller().send_echo(id, [this, id, sent_at] {
      auto it = peers_.find(id);
      if (it == peers_.end()) return;
      PeerState& peer = it->second;
      peer.consecutive_misses = 0;
      peer.last_rtt = controller().loop().now() - sent_at;
      ++peer.replies;
      if (!peer.alive) {
        peer.alive = true;
        HW_LOG_INFO("liveness", "datapath %llu recovered",
                    static_cast<unsigned long long>(id));
        if (on_recovered_) on_recovered_(id);
      }
    });
  }
}

}  // namespace hw::nox
