// Liveness monitoring component: periodic OpenFlow echo to every joined
// datapath, RTT tracking, and a dead-peer callback after consecutive misses
// — the watchdog a long-lived home router needs over its secure channel.
#pragma once

#include <map>
#include <memory>

#include "nox/component.hpp"
#include "nox/controller.hpp"

namespace hw::nox {

class LivenessMonitor final : public Component {
 public:
  struct Config {
    Duration probe_interval = 5 * kSecond;
    int max_misses = 3;  // consecutive unanswered probes → dead
  };

  static constexpr const char* kName = "liveness-monitor";

  explicit LivenessMonitor(Config config) : Component(kName), config_(config) {}
  LivenessMonitor() : LivenessMonitor(Config{}) {}
  ~LivenessMonitor() override;

  void install(Controller& ctl) override;
  void handle_datapath_join(DatapathId dpid,
                            const ofp::FeaturesReply& features) override;

  struct PeerState {
    bool alive = true;
    int consecutive_misses = 0;
    Duration last_rtt = 0;
    std::uint64_t probes = 0;
    std::uint64_t replies = 0;
  };
  [[nodiscard]] const PeerState* peer(DatapathId dpid) const;

  /// Fired once when a datapath crosses the miss threshold.
  void on_dead(std::function<void(DatapathId)> fn) { on_dead_ = std::move(fn); }
  /// Fired when a previously-dead datapath answers again.
  void on_recovered(std::function<void(DatapathId)> fn) {
    on_recovered_ = std::move(fn);
  }

  /// One probe round immediately (normally timer-driven).
  void probe_all();

 private:
  Config config_;
  std::map<DatapathId, PeerState> peers_;
  std::function<void(DatapathId)> on_dead_;
  std::function<void(DatapathId)> on_recovered_;
  std::unique_ptr<sim::PeriodicTimer> timer_;
};

}  // namespace hw::nox
