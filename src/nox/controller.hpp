// The NOX controller core: owns the secure-channel endpoints towards one or
// more datapaths, performs the OpenFlow handshake, parses events once and
// dispatches them through the ordered component chain, and exposes the
// flow-management API the Homework modules use.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "nox/component.hpp"
#include "openflow/channel.hpp"
#include "openflow/messages.hpp"
#include "sim/event_loop.hpp"
#include "telemetry/metrics.hpp"

namespace hw::nox {

/// Snapshot view over the controller's telemetry instruments.
struct ControllerStats {
  std::uint64_t packet_ins = 0;
  std::uint64_t packet_outs = 0;
  std::uint64_t flow_mods = 0;
  std::uint64_t flow_removed = 0;
  std::uint64_t errors = 0;
  std::uint64_t unparseable_packets = 0;
  std::uint64_t reconnects = 0;       // channel re-handshakes driven
  std::uint64_t resynced_flows = 0;   // flow-mods replayed by re-syncs
  std::uint64_t resync_skipped = 0;   // resyncs requested for unknown dpids
};

class Controller {
 public:
  /// `metrics` scopes the controller's instruments; defaults to the calling
  /// thread's active registry.
  explicit Controller(sim::EventLoop& loop,
                      telemetry::MetricRegistry& metrics =
                          telemetry::MetricRegistry::current());
  ~Controller();
  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  // -- Component management ---------------------------------------------------
  /// Registers a component. Call before start(). Ownership transfers.
  void add_component(std::unique_ptr<Component> component);
  /// Installs all components in dependency order; throws std::runtime_error
  /// on unknown or cyclic dependencies.
  void start();
  /// Finds a registered component by name (for inter-module calls), nullptr
  /// if absent.
  [[nodiscard]] Component* component(const std::string& name) const;
  template <typename T>
  [[nodiscard]] T* component_as(const std::string& name) const {
    return dynamic_cast<T*>(component(name));
  }

  // -- Datapath connections ----------------------------------------------------
  /// Binds a secure-channel endpoint; the controller sends HELLO and
  /// FEATURES_REQUEST and announces the datapath to components on reply.
  void connect_datapath(ofp::ChannelEndpoint& channel);
  [[nodiscard]] std::vector<DatapathId> datapaths() const;
  [[nodiscard]] bool datapath_connected(DatapathId dpid) const;
  [[nodiscard]] const ofp::FeaturesReply* features(DatapathId dpid) const;

  // -- Send API used by components ---------------------------------------------
  void send_flow_mod(DatapathId dpid, const ofp::FlowMod& mod);
  void send_packet_out(DatapathId dpid, const ofp::PacketOut& po);
  /// Convenience: install a rule.
  void install_flow(DatapathId dpid, const ofp::Match& match,
                    ofp::ActionList actions, std::uint16_t priority = 0x8000,
                    std::uint16_t idle_timeout = 0, std::uint16_t hard_timeout = 0,
                    bool notify_removal = false, std::uint64_t cookie = 0);
  /// Convenience: delete rules covered by `match`.
  void delete_flows(DatapathId dpid, const ofp::Match& match);

  /// Async stats: the callback fires when the reply with the matching xid
  /// arrives.
  using StatsCallback = std::function<void(const ofp::StatsReply&)>;
  void request_stats(DatapathId dpid, const ofp::StatsRequest& req,
                     StatsCallback cb);

  /// Sends an echo request; callback fires on reply (liveness checks).
  void send_echo(DatapathId dpid, std::function<void()> on_reply);

  /// Sends a barrier request; `cb` fires when the datapath confirms every
  /// earlier message on the channel has been processed.
  void send_barrier(DatapathId dpid, std::function<void()> cb);

  /// Re-synchronizes a datapath after a channel outage or restart: restarts
  /// the handshake, then on FEATURES_REPLY either replays every component's
  /// flow setup (legacy path) or hands off to the resync hook (reconciler).
  /// on_resynced (if set) fires once the flows are proven in the table. Also
  /// triggered automatically when an identified datapath re-sends HELLO.
  /// If `dpid` is not currently identified, the request is counted in
  /// nox.channel.resync_skipped and re-armed: the next FEATURES_REPLY that
  /// identifies `dpid` is treated as a re-sync even on a fresh connection.
  void resync_datapath(DatapathId dpid);
  void on_resynced(std::function<void(DatapathId)> fn) {
    on_resynced_ = std::move(fn);
  }

  // -- Goal-state integration --------------------------------------------------
  /// Collects every component's flow contributions for `dpid` into `sink`
  /// (install order — later contributions of the same key win downstream).
  void collect_flow_intents(DatapathId dpid, FlowIntentSink& sink) const;
  /// Legacy imperative path: wires every contributed flow straight to the
  /// datapath as an Add (cookie = desired_cookie(key)).
  void replay_flow_setup(DatapathId dpid);
  /// When set, (re)joins no longer replay flow setup; the hook is invoked
  /// with `resync` true on rejoins/re-armed resyncs and is expected to drive
  /// a reconcile round that ends in confirm_resync().
  void set_resync_hook(std::function<void(DatapathId, bool resync)> hook) {
    resync_hook_ = std::move(hook);
  }
  /// Reconciler callback once a resync-origin round has proven the table
  /// converged: accounts `flows` as resynced and fires on_resynced.
  void confirm_resync(DatapathId dpid, std::uint64_t flows);

  [[nodiscard]] sim::EventLoop& loop() const { return loop_; }
  [[nodiscard]] ControllerStats stats() const {
    return {metrics_.packet_ins.value(),     metrics_.packet_outs.value(),
            metrics_.flow_mods.value(),      metrics_.flow_removed.value(),
            metrics_.errors.value(),         metrics_.unparseable_packets.value(),
            metrics_.reconnects.value(),     metrics_.resynced_flows.value(),
            metrics_.resync_skipped.value()};
  }
  /// Packet-in dispatch latency (nanoseconds through the component chain) —
  /// the instrument ctrl_perf and MetricsExport report from.
  [[nodiscard]] const telemetry::Histogram& packet_in_latency() const {
    return metrics_.packet_in_dispatch_ns;
  }

 private:
  struct Connection {
    ofp::ChannelEndpoint* channel = nullptr;
    std::optional<DatapathId> dpid;  // known after FEATURES_REPLY
    ofp::FeaturesReply features;
  };

  void handle_message(Connection& conn, const Bytes& encoded);
  void dispatch_packet_in(DatapathId dpid, const ofp::PacketIn& pi);
  std::uint32_t next_xid() { return next_xid_++; }
  Connection* find(DatapathId dpid);

  sim::EventLoop& loop_;
  std::vector<std::unique_ptr<Component>> components_;
  std::vector<Component*> ordered_;  // install order after topo-sort
  bool started_ = false;
  std::vector<std::unique_ptr<Connection>> connections_;
  std::map<std::uint32_t, StatsCallback> pending_stats_;
  // Flow-stats fragments (OFPSF_REPLY_MORE) accumulating per xid until the
  // final fragment releases the merged reply to the callback.
  std::map<std::uint32_t, std::vector<ofp::FlowStatsEntry>> partial_stats_;
  std::map<std::uint32_t, std::function<void()>> pending_echo_;
  std::map<std::uint32_t, std::function<void()>> pending_barrier_;
  std::function<void(DatapathId)> on_resynced_;
  std::function<void(DatapathId, bool)> resync_hook_;
  /// Dpids whose resync was requested while unidentified: the next
  /// FEATURES_REPLY naming them runs the full re-sync path.
  std::set<DatapathId> pending_resync_;
  std::uint32_t next_xid_ = 1;
  struct Instruments {
    explicit Instruments(telemetry::MetricRegistry& reg)
        : packet_ins{reg, "nox.controller.packet_ins"},
          packet_outs{reg, "nox.controller.packet_outs"},
          flow_mods{reg, "nox.controller.flow_mods"},
          flow_removed{reg, "nox.controller.flow_removed"},
          errors{reg, "nox.controller.errors"},
          unparseable_packets{reg, "nox.controller.unparseable_packets"},
          reconnects{reg, "nox.channel.reconnects"},
          resynced_flows{reg, "nox.channel.resynced_flows"},
          resync_skipped{reg, "nox.channel.resync_skipped"},
          packet_in_dispatch_ns{reg, "nox.controller.packet_in_dispatch_ns"} {}
    telemetry::Counter packet_ins;
    telemetry::Counter packet_outs;
    telemetry::Counter flow_mods;
    telemetry::Counter flow_removed;
    telemetry::Counter errors;
    telemetry::Counter unparseable_packets;
    telemetry::Counter reconnects;
    telemetry::Counter resynced_flows;
    telemetry::Counter resync_skipped;
    telemetry::Histogram packet_in_dispatch_ns;
  } metrics_;
};

}  // namespace hw::nox
