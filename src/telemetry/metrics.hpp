// The router's self-measurement plane: a registry of named instruments. The
// paper's thesis is that hwdb is *the* measurement plane every interface
// reads from; this subsystem lets the router monitor itself through that
// same plane. Modules own Counter/Gauge/Histogram instruments (plain uint64
// cells — each home simulation is single-threaded by design, so no atomics),
// the registry tracks every live instrument, and MetricsExport periodically
// snapshots it into the hwdb Metrics table.
//
// Registries are instance-scoped so many independent homes can coexist in
// one process (the fleet runner gives every home its own). Instruments bind
// to a registry at construction: either explicitly (top-level subsystems —
// Router, Datapath, Controller, Database, the RPC transports — take a
// MetricRegistry& parameter) or implicitly through the calling thread's
// MetricRegistry::current(), which defaults to the legacy process-wide
// instance() and is overridden with a ScopedMetricRegistry. Leaf modules
// therefore inherit whatever registry the enclosing home installed without
// each needing a parameter.
//
// Thread model: a registry's *instrument cells* are owned by one thread at a
// time (the home's worker); only registry membership — attach/detach/
// snapshot — is mutex-guarded, because the process-default registry is
// genuinely shared by every thread that never installed a scope.
//
// Naming convention: `layer.module.name`, e.g. `openflow.flow_table.lookups`
// or `hwdb.database.insert_ns`. Several instances of a module may carry the
// same instrument name (one per sim::Host, per LinkChannel, …); snapshots
// aggregate same-named instruments, so the name identifies the *series*.
#pragma once

#include <array>
#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace hw::telemetry {

enum class MetricKind : std::uint8_t { Counter, Gauge, Histogram };

const char* to_string(MetricKind k);

/// One flattened point of a registry snapshot. Histograms flatten into
/// derived samples (`<name>.count`, `<name>.p50`, `<name>.p99`, …).
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::Counter;
  double value = 0.0;
};

class MetricRegistry;

/// Base of all instruments: registers with a registry on construction,
/// deregisters from that same registry on destruction. Non-copyable and
/// non-movable — instruments live as members of the module they instrument.
class Instrument {
 public:
  Instrument(const Instrument&) = delete;
  Instrument& operator=(const Instrument&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] MetricKind kind() const { return kind_; }

 protected:
  /// Attaches to the calling thread's MetricRegistry::current().
  Instrument(std::string name, MetricKind kind);
  /// Attaches to an explicitly injected registry.
  Instrument(MetricRegistry& registry, std::string name, MetricKind kind);
  ~Instrument();

 private:
  MetricRegistry* registry_;  // where we attached; detach goes here
  std::string name_;
  MetricKind kind_;
};

/// Monotonically increasing event count.
class Counter final : public Instrument {
 public:
  explicit Counter(std::string name)
      : Instrument(std::move(name), MetricKind::Counter) {}
  Counter(MetricRegistry& registry, std::string name)
      : Instrument(registry, std::move(name), MetricKind::Counter) {}

  void inc(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }
  /// Snapshot-restore only: overwrites the count. Counters stay monotone in
  /// normal operation; a checkpoint restore legitimately rewinds them.
  void restore(std::uint64_t v) { value_ = v; }

 private:
  std::uint64_t value_ = 0;
};

/// Point-in-time level (table occupancy, connection count, …).
class Gauge final : public Instrument {
 public:
  explicit Gauge(std::string name)
      : Instrument(std::move(name), MetricKind::Gauge) {}
  Gauge(MetricRegistry& registry, std::string name)
      : Instrument(registry, std::move(name), MetricKind::Gauge) {}

  void set(std::int64_t v) { value_ = v; }
  void add(std::int64_t d) { value_ += d; }
  [[nodiscard]] std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

/// Fixed-bucket histogram over non-negative integer observations (latency in
/// nanoseconds at the hot paths). Buckets are powers of two: bucket b holds
/// values whose bit width is b, so the range never saturates and recording
/// is one bit_width plus one increment.
class Histogram final : public Instrument {
 public:
  static constexpr std::size_t kBuckets = 64;
  using Buckets = std::array<std::uint64_t, kBuckets>;

  explicit Histogram(std::string name)
      : Instrument(std::move(name), MetricKind::Histogram) {}
  Histogram(MetricRegistry& registry, std::string name)
      : Instrument(registry, std::move(name), MetricKind::Histogram) {}

  void record(std::uint64_t v) {
    ++buckets_[std::bit_width(v)];
    ++count_;
    sum_ += v;
    if (v > max_) max_ = v;
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  [[nodiscard]] std::uint64_t max_value() const { return max_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  /// Estimated q-quantile (q in [0,1]), interpolated within the bucket.
  [[nodiscard]] double percentile(double q) const;
  [[nodiscard]] const Buckets& buckets() const { return buckets_; }

  /// Quantile over externally merged buckets (registry aggregation).
  static double percentile_of(const Buckets& buckets, std::uint64_t count,
                              double q);

 private:
  Buckets buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

/// Mergeable raw histogram state: the per-series aggregate a registry export
/// produces and the fleet runner merges across homes (bucket-wise addition
/// keeps quantile estimation exact w.r.t. the bucketing).
struct HistogramState {
  Histogram::Buckets buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;

  void merge(const HistogramState& other) {
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      buckets[b] += other.buckets[b];
    }
    count += other.count;
    sum += other.sum;
    if (other.max > max) max = other.max;
  }
  [[nodiscard]] double percentile(double q) const {
    return Histogram::percentile_of(buckets, count, q);
  }
  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// An instrument registry. Instruments attach themselves; a snapshot
/// aggregates same-named instruments (sum for counters and gauges,
/// bucket-merge for histograms) into a flat, name-sorted sample vector.
///
/// instance() is the process-wide default every bare instrument lands in;
/// current() is the calling thread's active registry (instance() unless a
/// ScopedMetricRegistry overrides it). Membership operations are
/// mutex-guarded; instrument *values* are read unlocked and must only be
/// mutated/snapshotted from the thread that owns the instruments.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// The process-default registry (legacy callers, benches, examples).
  static MetricRegistry& instance();
  /// The calling thread's active registry; instance() unless overridden.
  static MetricRegistry& current();

  /// Flattened, name-sorted view of every live instrument. Histogram series
  /// expand to `<name>.count`, `<name>.sum`, `<name>.mean`, `<name>.p50`,
  /// `<name>.p90`, `<name>.p99` and `<name>.max`.
  [[nodiscard]] std::vector<MetricSample> snapshot() const;

  /// Non-histogram series only: name → summed counter/gauge value. The
  /// deterministic view chaos/fleet runs diff (histograms time wall-clock
  /// nanoseconds and legitimately differ between runs).
  [[nodiscard]] std::map<std::string, double> scalars() const;

  /// Raw merged histogram state per series (fleet-wide merging).
  [[nodiscard]] std::map<std::string, HistogramState> histogram_states() const;

  /// Sum of all counter/gauge instruments bearing `name` (tests, reports);
  /// nullopt when no such instrument is live.
  [[nodiscard]] std::optional<double> total(const std::string& name) const;

  /// Snapshot restore: adjusts the first counter/gauge instrument bearing
  /// `name` so the series sums to `target` (the value scalars() reported at
  /// capture time). Counter cells clamp at zero. Returns false when no
  /// matching non-histogram instrument is live.
  bool restore_scalar(const std::string& name, double target);

  [[nodiscard]] std::size_t instrument_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return instruments_.size();
  }

 private:
  friend class Instrument;
  friend class ScopedMetricRegistry;
  void attach(Instrument* i);
  void detach(Instrument* i);
  [[nodiscard]] std::map<std::string, HistogramState> histogram_states_locked()
      const;

  static MetricRegistry*& current_slot();

  mutable std::mutex mutex_;
  std::vector<Instrument*> instruments_;
};

/// RAII override of the calling thread's MetricRegistry::current(). The
/// fleet runner installs one per home on its worker thread so every
/// instrument the home constructs — down to per-host and per-link cells —
/// lands in that home's registry. Nests; restores the previous scope on
/// destruction.
class ScopedMetricRegistry {
 public:
  explicit ScopedMetricRegistry(MetricRegistry& registry)
      : previous_(MetricRegistry::current_slot()) {
    MetricRegistry::current_slot() = &registry;
  }
  ~ScopedMetricRegistry() { MetricRegistry::current_slot() = previous_; }
  ScopedMetricRegistry(const ScopedMetricRegistry&) = delete;
  ScopedMetricRegistry& operator=(const ScopedMetricRegistry&) = delete;

 private:
  MetricRegistry* previous_;
};

/// Wall-clock nanosecond stopwatch recording into a histogram when it goes
/// out of scope — wraps the hot paths (flow lookup, packet-in dispatch,
/// hwdb insert) so benches and the live router share one latency source.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& h)
      : h_(h), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    h_.record(ns < 0 ? 0 : static_cast<std::uint64_t>(ns));
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram& h_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace hw::telemetry
