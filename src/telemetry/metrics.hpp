// The router's self-measurement plane: a process-wide registry of named
// instruments. The paper's thesis is that hwdb is *the* measurement plane
// every interface reads from; this subsystem lets the router monitor itself
// through that same plane. Modules own Counter/Gauge/Histogram instruments
// (plain uint64 cells — the simulation is single-threaded by design, so no
// atomics), the registry tracks every live instrument, and MetricsExport
// periodically snapshots it into the hwdb Metrics table.
//
// Naming convention: `layer.module.name`, e.g. `openflow.flow_table.lookups`
// or `hwdb.database.insert_ns`. Several instances of a module may carry the
// same instrument name (one per sim::Host, per LinkChannel, …); snapshots
// aggregate same-named instruments, so the name identifies the *series*.
#pragma once

#include <array>
#include <bit>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace hw::telemetry {

enum class MetricKind : std::uint8_t { Counter, Gauge, Histogram };

const char* to_string(MetricKind k);

/// One flattened point of a registry snapshot. Histograms flatten into
/// derived samples (`<name>.count`, `<name>.p50`, `<name>.p99`, …).
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::Counter;
  double value = 0.0;
};

class MetricRegistry;

/// Base of all instruments: registers with the process registry on
/// construction, deregisters on destruction. Non-copyable and non-movable —
/// instruments live as members of the module they instrument.
class Instrument {
 public:
  Instrument(const Instrument&) = delete;
  Instrument& operator=(const Instrument&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] MetricKind kind() const { return kind_; }

 protected:
  Instrument(std::string name, MetricKind kind);
  ~Instrument();

 private:
  std::string name_;
  MetricKind kind_;
};

/// Monotonically increasing event count.
class Counter final : public Instrument {
 public:
  explicit Counter(std::string name)
      : Instrument(std::move(name), MetricKind::Counter) {}

  void inc(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Point-in-time level (table occupancy, connection count, …).
class Gauge final : public Instrument {
 public:
  explicit Gauge(std::string name)
      : Instrument(std::move(name), MetricKind::Gauge) {}

  void set(std::int64_t v) { value_ = v; }
  void add(std::int64_t d) { value_ += d; }
  [[nodiscard]] std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

/// Fixed-bucket histogram over non-negative integer observations (latency in
/// nanoseconds at the hot paths). Buckets are powers of two: bucket b holds
/// values whose bit width is b, so the range never saturates and recording
/// is one bit_width plus one increment.
class Histogram final : public Instrument {
 public:
  static constexpr std::size_t kBuckets = 64;
  using Buckets = std::array<std::uint64_t, kBuckets>;

  explicit Histogram(std::string name)
      : Instrument(std::move(name), MetricKind::Histogram) {}

  void record(std::uint64_t v) {
    ++buckets_[std::bit_width(v)];
    ++count_;
    sum_ += v;
    if (v > max_) max_ = v;
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  [[nodiscard]] std::uint64_t max_value() const { return max_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  /// Estimated q-quantile (q in [0,1]), interpolated within the bucket.
  [[nodiscard]] double percentile(double q) const;
  [[nodiscard]] const Buckets& buckets() const { return buckets_; }

  /// Quantile over externally merged buckets (registry aggregation).
  static double percentile_of(const Buckets& buckets, std::uint64_t count,
                              double q);

 private:
  Buckets buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

/// The process-wide instrument registry. Instruments attach themselves; a
/// snapshot aggregates same-named instruments (sum for counters and gauges,
/// bucket-merge for histograms) into a flat, name-sorted sample vector.
class MetricRegistry {
 public:
  static MetricRegistry& instance();

  /// Flattened, name-sorted view of every live instrument. Histogram series
  /// expand to `<name>.count`, `<name>.sum`, `<name>.mean`, `<name>.p50`,
  /// `<name>.p90`, `<name>.p99` and `<name>.max`.
  [[nodiscard]] std::vector<MetricSample> snapshot() const;

  /// Sum of all counter/gauge instruments bearing `name` (tests, reports);
  /// nullopt when no such instrument is live.
  [[nodiscard]] std::optional<double> total(const std::string& name) const;

  [[nodiscard]] std::size_t instrument_count() const {
    return instruments_.size();
  }

 private:
  friend class Instrument;
  void attach(Instrument* i);
  void detach(Instrument* i);

  std::vector<Instrument*> instruments_;
};

/// Wall-clock nanosecond stopwatch recording into a histogram when it goes
/// out of scope — wraps the hot paths (flow lookup, packet-in dispatch,
/// hwdb insert) so benches and the live router share one latency source.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& h)
      : h_(h), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    h_.record(ns < 0 ? 0 : static_cast<std::uint64_t>(ns));
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram& h_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace hw::telemetry
