#include "telemetry/delta.hpp"

#include <bit>

namespace hw::telemetry {

ScalarMap scalar_delta(const ScalarMap& prev, const ScalarMap& cur) {
  ScalarMap out;
  for (const auto& [name, value] : cur) {
    const auto it = prev.find(name);
    if (it == prev.end() || std::bit_cast<std::uint64_t>(it->second) !=
                                std::bit_cast<std::uint64_t>(value)) {
      out.emplace(name, value);
    }
  }
  return out;
}

void apply_delta(ScalarMap& base, const ScalarMap& delta) {
  for (const auto& [name, value] : delta) base[name] = value;
}

HistogramState histogram_delta(const HistogramState& prev,
                               const HistogramState& cur) {
  HistogramState out;
  for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
    out.buckets[b] = cur.buckets[b] - prev.buckets[b];
  }
  out.count = cur.count - prev.count;
  out.sum = cur.sum - prev.sum;
  out.max = cur.max;
  return out;
}

}  // namespace hw::telemetry
