// Delta encoding over telemetry snapshots, for the live operations plane's
// streaming subscriptions (docs/liveops.md). A delta between two scalar maps
// carries the *absolute* new value of every series that appeared or changed
// — never differences — so applying a delta is idempotent and a receiver
// that missed frames resynchronizes from any later full snapshot without
// arithmetic. Histogram states delta bucket-wise (observations only ever
// accumulate), with the delta's max carrying the current max so a
// merge-round-trip reproduces the target state exactly.
#pragma once

#include <map>
#include <string>

#include "telemetry/metrics.hpp"

namespace hw::telemetry {

using ScalarMap = std::map<std::string, double>;

/// Series of `cur` that are new or bit-wise different from `prev`, at their
/// `cur` value. Series absent from `cur` are not reported: instruments live
/// for the lifetime of the home that owns them, so a series never retires
/// mid-stream. Comparison is bit-wise, not operator==, so a counter stepping
/// through every double value round-trips losslessly.
[[nodiscard]] ScalarMap scalar_delta(const ScalarMap& prev, const ScalarMap& cur);

/// Applies a delta (or a full snapshot) onto `base`: every entry overwrites.
void apply_delta(ScalarMap& base, const ScalarMap& delta);

/// Bucket-wise difference cur - prev (requires prev to be an earlier state
/// of the same histogram: every bucket, count and sum of prev <= cur). The
/// delta's max is cur's max — max is not subtractive — so
/// `prev.merge(histogram_delta(prev, cur)) == cur` holds exactly.
[[nodiscard]] HistogramState histogram_delta(const HistogramState& prev,
                                             const HistogramState& cur);

}  // namespace hw::telemetry
