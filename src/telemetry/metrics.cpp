#include "telemetry/metrics.hpp"

#include <algorithm>

namespace hw::telemetry {

const char* to_string(MetricKind k) {
  switch (k) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Gauge: return "gauge";
    case MetricKind::Histogram: return "histogram";
  }
  return "?";
}

Instrument::Instrument(std::string name, MetricKind kind)
    : Instrument(MetricRegistry::current(), std::move(name), kind) {}

Instrument::Instrument(MetricRegistry& registry, std::string name,
                       MetricKind kind)
    : registry_(&registry), name_(std::move(name)), kind_(kind) {
  registry_->attach(this);
}

Instrument::~Instrument() { registry_->detach(this); }

namespace {

/// Bucket b of a Histogram holds values whose bit width is b: [2^(b-1), 2^b).
constexpr std::uint64_t bucket_lo(std::size_t b) {
  return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
}
constexpr std::uint64_t bucket_hi(std::size_t b) {
  return b == 0 ? 0
         : b >= 64 ? ~std::uint64_t{0}
                   : (std::uint64_t{1} << b) - 1;
}

}  // namespace

double Histogram::percentile_of(const Buckets& buckets, std::uint64_t count,
                                double q) {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // 1-based rank of the requested order statistic.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(q * static_cast<double>(count) + 0.5));
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (buckets[b] == 0) continue;
    if (cumulative + buckets[b] >= rank) {
      const double lo = static_cast<double>(bucket_lo(b));
      const double hi = static_cast<double>(bucket_hi(b));
      const double within =
          static_cast<double>(rank - cumulative) / static_cast<double>(buckets[b]);
      return lo + (hi - lo) * within;
    }
    cumulative += buckets[b];
  }
  return static_cast<double>(bucket_hi(kBuckets - 1));
}

double Histogram::percentile(double q) const {
  return percentile_of(buckets_, count_, q);
}

MetricRegistry& MetricRegistry::instance() {
  static MetricRegistry registry;
  return registry;
}

MetricRegistry*& MetricRegistry::current_slot() {
  thread_local MetricRegistry* current = nullptr;
  return current;
}

MetricRegistry& MetricRegistry::current() {
  MetricRegistry* reg = current_slot();
  return reg != nullptr ? *reg : instance();
}

void MetricRegistry::attach(Instrument* i) {
  std::lock_guard<std::mutex> lock(mutex_);
  instruments_.push_back(i);
}

void MetricRegistry::detach(Instrument* i) {
  std::lock_guard<std::mutex> lock(mutex_);
  instruments_.erase(std::remove(instruments_.begin(), instruments_.end(), i),
                     instruments_.end());
}

std::optional<double> MetricRegistry::total(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::optional<double> out;
  for (const Instrument* i : instruments_) {
    if (i->name() != name) continue;
    double v = 0;
    switch (i->kind()) {
      case MetricKind::Counter:
        v = static_cast<double>(static_cast<const Counter*>(i)->value());
        break;
      case MetricKind::Gauge:
        v = static_cast<double>(static_cast<const Gauge*>(i)->value());
        break;
      case MetricKind::Histogram:
        v = static_cast<double>(static_cast<const Histogram*>(i)->count());
        break;
    }
    out = out.value_or(0.0) + v;
  }
  return out;
}

bool MetricRegistry::restore_scalar(const std::string& name, double target) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Several instances of a module can carry the same series (one per host,
  // per link, ...). Leave all but the first alone and set the first so the
  // *sum* lands on the captured value — the only view scalars() exposes.
  Instrument* first = nullptr;
  double rest = 0.0;
  for (Instrument* i : instruments_) {
    if (i->name() != name || i->kind() == MetricKind::Histogram) continue;
    if (first == nullptr) {
      first = i;
      continue;
    }
    rest += i->kind() == MetricKind::Counter
                ? static_cast<double>(static_cast<const Counter*>(i)->value())
                : static_cast<double>(static_cast<const Gauge*>(i)->value());
  }
  if (first == nullptr) return false;
  const double want = target - rest;
  if (first->kind() == MetricKind::Counter) {
    static_cast<Counter*>(first)->restore(
        want <= 0.0 ? 0 : static_cast<std::uint64_t>(want + 0.5));
  } else {
    static_cast<Gauge*>(first)->set(static_cast<std::int64_t>(
        want < 0.0 ? want - 0.5 : want + 0.5));
  }
  return true;
}

std::map<std::string, double> MetricRegistry::scalars() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, double> out;
  for (const Instrument* i : instruments_) {
    switch (i->kind()) {
      case MetricKind::Counter:
        out[i->name()] +=
            static_cast<double>(static_cast<const Counter*>(i)->value());
        break;
      case MetricKind::Gauge:
        out[i->name()] +=
            static_cast<double>(static_cast<const Gauge*>(i)->value());
        break;
      case MetricKind::Histogram:
        break;
    }
  }
  return out;
}

std::map<std::string, HistogramState>
MetricRegistry::histogram_states_locked() const {
  std::map<std::string, HistogramState> out;
  for (const Instrument* i : instruments_) {
    if (i->kind() != MetricKind::Histogram) continue;
    const auto* h = static_cast<const Histogram*>(i);
    HistogramState& m = out[i->name()];
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      m.buckets[b] += h->buckets()[b];
    }
    m.count += h->count();
    m.sum += h->sum();
    m.max = std::max(m.max, h->max_value());
  }
  return out;
}

std::map<std::string, HistogramState> MetricRegistry::histogram_states() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return histogram_states_locked();
}

std::vector<MetricSample> MetricRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  // Aggregate same-named instruments: instances of a module each carry their
  // own cells, the series is their merge.
  std::map<std::string, double> scalars;  // counters + gauges
  std::map<std::string, MetricKind> scalar_kinds;
  for (const Instrument* i : instruments_) {
    switch (i->kind()) {
      case MetricKind::Counter:
        scalars[i->name()] +=
            static_cast<double>(static_cast<const Counter*>(i)->value());
        scalar_kinds.emplace(i->name(), MetricKind::Counter);
        break;
      case MetricKind::Gauge:
        scalars[i->name()] +=
            static_cast<double>(static_cast<const Gauge*>(i)->value());
        scalar_kinds.emplace(i->name(), MetricKind::Gauge);
        break;
      case MetricKind::Histogram:
        break;
    }
  }
  const auto histograms = histogram_states_locked();

  std::vector<MetricSample> out;
  out.reserve(scalars.size() + histograms.size() * 7);
  for (const auto& [name, value] : scalars) {
    out.push_back({name, scalar_kinds.at(name), value});
  }
  for (const auto& [name, m] : histograms) {
    const auto emit = [&](const char* suffix, double v) {
      out.push_back({name + "." + suffix, MetricKind::Histogram, v});
    };
    emit("count", static_cast<double>(m.count));
    emit("sum", static_cast<double>(m.sum));
    emit("mean", m.mean());
    emit("p50", m.percentile(0.50));
    emit("p90", m.percentile(0.90));
    emit("p99", m.percentile(0.99));
    emit("max", static_cast<double>(m.max));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

}  // namespace hw::telemetry
