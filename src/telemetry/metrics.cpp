#include "telemetry/metrics.hpp"

#include <algorithm>
#include <map>

namespace hw::telemetry {

const char* to_string(MetricKind k) {
  switch (k) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Gauge: return "gauge";
    case MetricKind::Histogram: return "histogram";
  }
  return "?";
}

Instrument::Instrument(std::string name, MetricKind kind)
    : name_(std::move(name)), kind_(kind) {
  MetricRegistry::instance().attach(this);
}

Instrument::~Instrument() { MetricRegistry::instance().detach(this); }

namespace {

/// Bucket b of a Histogram holds values whose bit width is b: [2^(b-1), 2^b).
constexpr std::uint64_t bucket_lo(std::size_t b) {
  return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
}
constexpr std::uint64_t bucket_hi(std::size_t b) {
  return b == 0 ? 0
         : b >= 64 ? ~std::uint64_t{0}
                   : (std::uint64_t{1} << b) - 1;
}

}  // namespace

double Histogram::percentile_of(const Buckets& buckets, std::uint64_t count,
                                double q) {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // 1-based rank of the requested order statistic.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(q * static_cast<double>(count) + 0.5));
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (buckets[b] == 0) continue;
    if (cumulative + buckets[b] >= rank) {
      const double lo = static_cast<double>(bucket_lo(b));
      const double hi = static_cast<double>(bucket_hi(b));
      const double within =
          static_cast<double>(rank - cumulative) / static_cast<double>(buckets[b]);
      return lo + (hi - lo) * within;
    }
    cumulative += buckets[b];
  }
  return static_cast<double>(bucket_hi(kBuckets - 1));
}

double Histogram::percentile(double q) const {
  return percentile_of(buckets_, count_, q);
}

MetricRegistry& MetricRegistry::instance() {
  static MetricRegistry registry;
  return registry;
}

void MetricRegistry::attach(Instrument* i) { instruments_.push_back(i); }

void MetricRegistry::detach(Instrument* i) {
  instruments_.erase(std::remove(instruments_.begin(), instruments_.end(), i),
                     instruments_.end());
}

std::optional<double> MetricRegistry::total(const std::string& name) const {
  std::optional<double> out;
  for (const Instrument* i : instruments_) {
    if (i->name() != name) continue;
    double v = 0;
    switch (i->kind()) {
      case MetricKind::Counter:
        v = static_cast<double>(static_cast<const Counter*>(i)->value());
        break;
      case MetricKind::Gauge:
        v = static_cast<double>(static_cast<const Gauge*>(i)->value());
        break;
      case MetricKind::Histogram:
        v = static_cast<double>(static_cast<const Histogram*>(i)->count());
        break;
    }
    out = out.value_or(0.0) + v;
  }
  return out;
}

std::vector<MetricSample> MetricRegistry::snapshot() const {
  // Aggregate same-named instruments: instances of a module each carry their
  // own cells, the series is their merge.
  std::map<std::string, double> scalars;            // counters + gauges
  std::map<std::string, MetricKind> scalar_kinds;
  struct MergedHistogram {
    Histogram::Buckets buckets{};
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t max = 0;
  };
  std::map<std::string, MergedHistogram> histograms;

  for (const Instrument* i : instruments_) {
    switch (i->kind()) {
      case MetricKind::Counter:
        scalars[i->name()] +=
            static_cast<double>(static_cast<const Counter*>(i)->value());
        scalar_kinds.emplace(i->name(), MetricKind::Counter);
        break;
      case MetricKind::Gauge:
        scalars[i->name()] +=
            static_cast<double>(static_cast<const Gauge*>(i)->value());
        scalar_kinds.emplace(i->name(), MetricKind::Gauge);
        break;
      case MetricKind::Histogram: {
        const auto* h = static_cast<const Histogram*>(i);
        MergedHistogram& m = histograms[i->name()];
        for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
          m.buckets[b] += h->buckets()[b];
        }
        m.count += h->count();
        m.sum += h->sum();
        m.max = std::max(m.max, h->max_value());
        break;
      }
    }
  }

  std::vector<MetricSample> out;
  out.reserve(scalars.size() + histograms.size() * 7);
  for (const auto& [name, value] : scalars) {
    out.push_back({name, scalar_kinds.at(name), value});
  }
  for (const auto& [name, m] : histograms) {
    const auto emit = [&](const char* suffix, double v) {
      out.push_back({name + "." + suffix, MetricKind::Histogram, v});
    };
    emit("count", static_cast<double>(m.count));
    emit("sum", static_cast<double>(m.sum));
    emit("mean", m.count == 0 ? 0.0
                              : static_cast<double>(m.sum) /
                                    static_cast<double>(m.count));
    emit("p50", Histogram::percentile_of(m.buckets, m.count, 0.50));
    emit("p90", Histogram::percentile_of(m.buckets, m.count, 0.90));
    emit("p99", Histogram::percentile_of(m.buckets, m.count, 0.99));
    emit("max", static_cast<double>(m.max));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

}  // namespace hw::telemetry
