// The Homework DNS proxy NOX module. "The second intercepts outgoing DNS
// requests, performing reverse lookups on flows not matching previously
// requested names, to ensure that upstream communication is only allowed
// between permitted devices and sites." (paper §2)
//
// Mechanics: leases point clients at the router for DNS; a controller rule
// brings all port-53 traffic here. Queries are policy-checked per device
// (Figure 4 restrictions); refused names get NXDOMAIN, allowed ones are
// relayed upstream and the answers recorded in a per-device name cache. The
// forwarding module consults that cache before admitting a flow; for an IP
// with no matching name it asks us to reverse-look it up (PTR) and decides
// on the result.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <utility>

#include "homework/device_registry.hpp"
#include "net/dns.hpp"
#include "nox/component.hpp"
#include "nox/controller.hpp"
#include "policy/engine.hpp"
#include "telemetry/metrics.hpp"

namespace hw::homework {

/// Snapshot view over the module's telemetry instruments.
struct DnsProxyStats {
  std::uint64_t queries = 0;
  std::uint64_t blocked = 0;     // refused by policy
  std::uint64_t forwarded = 0;   // relayed upstream
  std::uint64_t responses = 0;   // upstream answers relayed back
  std::uint64_t reverse_lookups = 0;
  std::uint64_t cache_entries = 0;
  std::uint64_t dropped_unpermitted = 0;
};

class DnsProxy final : public nox::Component {
 public:
  struct Config {
    Ipv4Address router_ip{192, 168, 1, 1};
    MacAddress router_mac = MacAddress::from_index(0xffffff);
    Ipv4Address upstream_dns{8, 8, 8, 8};
    std::uint16_t uplink_port = 1;
    MacAddress upstream_gw_mac = MacAddress::from_index(0xfffffe);
    std::uint32_t cache_ttl_secs = 600;
  };

  static constexpr const char* kName = "dns-proxy";

  DnsProxy(Config config, DeviceRegistry& registry, policy::PolicyEngine& policy);

  void contribute_flows(nox::DatapathId dpid,
                        nox::FlowIntentSink& sink) override;
  nox::Disposition handle_packet_in(const nox::PacketInEvent& ev) override;

  // -- Flow admission interface used by the forwarding module ------------------
  enum class FlowVerdict { Allow, Deny, Unknown };
  /// Synchronous check: is `dst` covered by a name this device (behind
  /// `dpid`) was allowed to resolve, or is the device unrestricted?
  [[nodiscard]] FlowVerdict check_flow(nox::DatapathId dpid, MacAddress device,
                                       Ipv4Address dst) const;
  [[nodiscard]] FlowVerdict check_flow(MacAddress device,
                                       Ipv4Address dst) const {
    return check_flow(registry_.default_dpid(), device, dst);
  }
  /// Asynchronous reverse lookup for Unknown verdicts: fires `cb` with the
  /// final Allow/Deny once the PTR answer (or timeout) arrives.
  void reverse_lookup(nox::DatapathId dpid, MacAddress device, Ipv4Address dst,
                      std::function<void(FlowVerdict)> cb);

  /// Names this device successfully resolved recently (for the UI).
  [[nodiscard]] std::vector<std::string> names_for(nox::DatapathId dpid,
                                                   MacAddress device) const;
  [[nodiscard]] std::vector<std::string> names_for(MacAddress device) const {
    return names_for(registry_.default_dpid(), device);
  }

  [[nodiscard]] DnsProxyStats stats() const {
    return {metrics_.queries.value(),
            metrics_.blocked.value(),
            metrics_.forwarded.value(),
            metrics_.responses.value(),
            metrics_.reverse_lookups.value(),
            metrics_.cache_entries.value(),
            metrics_.dropped_unpermitted.value()};
  }
  /// Drops all cached name→address verdicts (policy changed).
  void flush_cache();

 private:
  void handle_query(const nox::PacketInEvent& ev);
  void handle_response(const nox::PacketInEvent& ev);
  void relay_upstream(nox::DatapathId dpid, const net::ParsedPacket& packet);
  void send_to_device(nox::DatapathId dpid, MacAddress device_mac,
                      std::uint16_t device_port, Ipv4Address device_ip,
                      std::uint16_t device_udp_port, const net::DnsMessage& msg);
  void record_answers(nox::DatapathId dpid, MacAddress device,
                      const net::DnsMessage& msg);

  Config config_;
  DeviceRegistry& registry_;
  policy::PolicyEngine& policy_;
  struct Instruments {
    telemetry::Counter queries{"homework.dns.queries"};
    telemetry::Counter blocked{"homework.dns.blocked"};
    telemetry::Counter forwarded{"homework.dns.forwarded"};
    telemetry::Counter responses{"homework.dns.responses"};
    telemetry::Counter reverse_lookups{"homework.dns.reverse_lookups"};
    telemetry::Counter cache_entries{"homework.dns.cache_entries"};
    telemetry::Counter dropped_unpermitted{"homework.dns.dropped_unpermitted"};
  } metrics_;

  /// Per-device name cache: (home, device) → (ip → {names, expiry}). Two
  /// homes resolving the same name must not share verdicts: their devices
  /// are restricted independently.
  struct CacheEntry {
    std::set<std::string> names;
    Timestamp expires_at = 0;
  };
  std::map<std::pair<nox::DatapathId, MacAddress>,
           std::unordered_map<Ipv4Address, CacheEntry>>
      cache_;

  /// Outstanding client queries relayed upstream, keyed by (home, client ip,
  /// dns id) — overlapping private address space means the same (ip, id)
  /// pair can be in flight from two homes at once.
  struct PendingQuery {
    MacAddress device;
    std::uint16_t device_port = 0;  // switch port
    std::string qname;
  };
  std::map<std::tuple<nox::DatapathId, std::uint32_t, std::uint16_t>,
           PendingQuery>
      pending_;

  /// Outstanding reverse lookups keyed by dns id of our own PTR query (ids
  /// are drawn from one shared counter, so the id alone is unambiguous).
  struct PendingReverse {
    nox::DatapathId dpid = 0;
    MacAddress device;
    Ipv4Address target;
    std::function<void(FlowVerdict)> cb;
    sim::EventLoop::EventId timeout = 0;
  };
  std::map<std::uint16_t, PendingReverse> reverse_pending_;
  std::uint16_t next_reverse_id_ = 1;
};

}  // namespace hw::homework
