// Router-mediated forwarding NOX module. Devices hold /32 leases, so every
// packet — even to a peer on the same LAN — arrives addressed to the router.
// This module proxy-ARPs for the gateway (and for peer addresses, keeping
// devices from ever talking at the Ethernet layer, per paper §2), admits
// flows through the policy/DNS checks, and installs exact-match OpenFlow
// rules so admitted traffic is forwarded in the datapath with the MAC
// rewrites of an IP hop.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "homework/device_registry.hpp"
#include "homework/dns_proxy.hpp"
#include "nox/component.hpp"
#include "nox/controller.hpp"
#include "policy/engine.hpp"
#include "telemetry/metrics.hpp"

namespace hw::homework {

/// Snapshot view over the module's telemetry instruments.
struct ForwardingStats {
  std::uint64_t arp_replies = 0;
  std::uint64_t flows_installed = 0;
  std::uint64_t rate_limited_flows = 0;
  std::uint64_t flows_denied = 0;
  std::uint64_t reverse_lookups_triggered = 0;
  std::uint64_t echo_replies = 0;
  std::uint64_t dropped_unknown_source = 0;
  std::uint64_t policy_revocations = 0;
};

class Forwarding final : public nox::Component {
 public:
  struct Config {
    Ipv4Address router_ip{192, 168, 1, 1};
    MacAddress router_mac = MacAddress::from_index(0xffffff);
    Ipv4Subnet subnet{Ipv4Address{192, 168, 1, 0}, 24};
    std::uint16_t uplink_port = 1;
    MacAddress upstream_gw_mac = MacAddress::from_index(0xfffffe);
    std::uint16_t flow_idle_timeout = 10;  // seconds
    std::uint16_t deny_idle_timeout = 5;   // seconds for installed drop rules
    /// Out-of-band queue configuration (the ovs-vsctl role): invoked before
    /// an enqueue action referencing (port, queue_id) is installed for a
    /// rate-limited device. Null disables rate limiting.
    std::function<void(std::uint16_t port, std::uint32_t queue_id,
                       std::uint64_t rate_bps)>
        configure_queue;
  };

  static constexpr const char* kName = "forwarding";

  Forwarding(Config config, DeviceRegistry& registry,
             policy::PolicyEngine& policy);

  [[nodiscard]] std::vector<std::string> dependencies() const override {
    return {DnsProxy::kName};
  }

  void install(nox::Controller& ctl) override;
  void contribute_flows(nox::DatapathId dpid,
                        nox::FlowIntentSink& sink) override;
  void handle_datapath_join(nox::DatapathId dpid,
                            const ofp::FeaturesReply& features) override;
  nox::Disposition handle_packet_in(const nox::PacketInEvent& ev) override;

  [[nodiscard]] ForwardingStats stats() const {
    return {metrics_.arp_replies.value(),
            metrics_.flows_installed.value(),
            metrics_.rate_limited_flows.value(),
            metrics_.flows_denied.value(),
            metrics_.reverse_lookups_triggered.value(),
            metrics_.echo_replies.value(),
            metrics_.dropped_unknown_source.value(),
            metrics_.policy_revocations.value()};
  }

  /// Deletes every forwarding rule (policy changed / manual flush); traffic
  /// re-admits through fresh packet-ins.
  void revoke_all_flows();
  /// Deletes rules touching one device's address on its home datapath — the
  /// same private address is in use in other homes and must stay installed
  /// there.
  void revoke_device_flows(nox::DatapathId dpid, Ipv4Address ip);

 private:
  void handle_arp(const nox::PacketInEvent& ev);
  void handle_ipv4(const nox::PacketInEvent& ev);
  void admit_flow(const nox::PacketInEvent& ev, bool allowed);
  /// Installs forward+reverse exact-match rules for the packet's flow and
  /// releases the buffered packet; or a drop rule when !allowed.
  void install_pair(nox::DatapathId dpid, const net::ParsedPacket& packet,
                    std::uint16_t in_port, std::uint32_t buffer_id, bool allowed);
  struct NextHop {
    std::uint16_t port = 0;
    MacAddress mac;
    bool known = false;
  };
  [[nodiscard]] NextHop next_hop_for(nox::DatapathId dpid,
                                     Ipv4Address dst) const;

  Config config_;
  DeviceRegistry& registry_;
  policy::PolicyEngine& policy_;
  DnsProxy* dns_ = nullptr;  // resolved at install()
  struct Instruments {
    telemetry::Counter arp_replies{"homework.forwarding.arp_replies"};
    telemetry::Counter flows_installed{"homework.forwarding.flows_installed"};
    telemetry::Counter rate_limited_flows{"homework.forwarding.rate_limited_flows"};
    telemetry::Counter flows_denied{"homework.forwarding.flows_denied"};
    telemetry::Counter reverse_lookups_triggered{"homework.forwarding.reverse_lookups_triggered"};
    telemetry::Counter echo_replies{"homework.forwarding.echo_replies"};
    telemetry::Counter dropped_unknown_source{"homework.forwarding.dropped_unknown_source"};
    telemetry::Counter policy_revocations{"homework.forwarding.policy_revocations"};
  } metrics_;
  std::vector<nox::DatapathId> datapaths_;
};

}  // namespace hw::homework
