// The control API NOX module: "a simple RESTful web interface to the router,
// invoked to exercise control over connected devices: by the Linux udev
// subsystem when a suitably formatted USB storage device is inserted; and
// directly by the various graphical control interfaces." (paper §2)
//
// Routes:
//   GET    /api/status                       — router summary
//   GET    /api/devices                      — all devices + state + lease
//   GET    /api/devices/:mac                 — one device
//   GET    /api/devices/:mac/interrogate     — Figure 3 "interrogate": live
//            traffic summary, resolved names, link quality from hwdb
//   POST   /api/devices/:mac/permit          — Figure 3 drag to "permitted"
//   POST   /api/devices/:mac/deny            — Figure 3 drag to "denied"
//   PUT    /api/devices/:mac/metadata        — {"name": "...", "tags": [...]}
//   GET    /api/leases                       — active leases
//   GET    /api/policies                     — installed policy documents
//   POST   /api/policies                     — install policy JSON
//   DELETE /api/policies/:id                 — remove policy
//   POST   /api/usb/insert                   — udev hook: key image JSON
//   POST   /api/usb/remove/:slot             — udev hook: key removed
//   GET    /api/query?q=<CQL>                — hwdb passthrough (read-only)
#pragma once

#include "homework/device_registry.hpp"
#include "homework/http.hpp"
#include "hwdb/database.hpp"
#include "nox/component.hpp"
#include "nox/controller.hpp"
#include "policy/engine.hpp"
#include "reconcile/desired_state.hpp"
#include "telemetry/metrics.hpp"

namespace hw::homework {

/// Snapshot view over the module's telemetry instruments.
struct ControlApiStats {
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  std::uint64_t permits = 0;
  std::uint64_t denies = 0;
  std::uint64_t usb_inserts = 0;
  std::uint64_t usb_removes = 0;
};

class ControlApi final : public nox::Component {
 public:
  static constexpr const char* kName = "control-api";

  ControlApi(DeviceRegistry& registry, policy::PolicyEngine& policy,
             hwdb::Database& db);

  void install(nox::Controller& ctl) override;

  /// Binds the goal-state store: admission decisions and device metadata
  /// writes then mutate the device's DeviceIntent alongside the registry
  /// (the registry write stays immediate; the intent makes it durable and
  /// reconcilable). `changed` fires with the device's dpid after each write
  /// so the caller can schedule a reconcile round.
  void bind_goal_state(reconcile::DesiredStore& store,
                       std::function<void(nox::DatapathId)> changed);

  /// Serves one HTTP request (the in-home interfaces and tests call this;
  /// a socket front-end would parse/serialize around it).
  HttpResponse handle(const HttpRequest& req);
  /// Convenience: parse a raw HTTP/1.1 request text, serve, serialize.
  std::string handle_raw(std::string_view request_text);

  [[nodiscard]] ControlApiStats stats() const {
    return {metrics_.requests.value(),
            metrics_.errors.value(),
            metrics_.permits.value(),
            metrics_.denies.value(),
            metrics_.usb_inserts.value(),
            metrics_.usb_removes.value()};
  }
  [[nodiscard]] const HttpRouter& router() const { return router_; }

 private:
  void setup_routes();
  [[nodiscard]] Json device_json(const DeviceRecord& rec) const;

  DeviceRegistry& registry_;
  policy::PolicyEngine& policy_;
  hwdb::Database& db_;
  reconcile::DesiredStore* desired_ = nullptr;
  std::function<void(nox::DatapathId)> desired_changed_;
  HttpRouter router_;
  struct Instruments {
    telemetry::Counter requests{"homework.control_api.requests"};
    telemetry::Counter errors{"homework.control_api.errors"};
    telemetry::Counter permits{"homework.control_api.permits"};
    telemetry::Counter denies{"homework.control_api.denies"};
    telemetry::Counter usb_inserts{"homework.control_api.usb_inserts"};
    telemetry::Counter usb_removes{"homework.control_api.usb_removes"};
  } metrics_;
  /// USB slot handles returned by /api/usb/insert.
  std::map<std::uint32_t, policy::UsbMonitor::SlotId> usb_slots_;
  std::uint32_t next_usb_handle_ = 1;
};

}  // namespace hw::homework
