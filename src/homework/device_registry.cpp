#include "homework/device_registry.hpp"

namespace hw::homework {

const char* to_string(DeviceState s) {
  switch (s) {
    case DeviceState::Pending: return "pending";
    case DeviceState::Permitted: return "permitted";
    case DeviceState::Denied: return "denied";
  }
  return "?";
}

const char* to_string(RegistryEvent e) {
  switch (e) {
    case RegistryEvent::Discovered: return "discovered";
    case RegistryEvent::StateChanged: return "state_changed";
    case RegistryEvent::LeaseGranted: return "lease_granted";
    case RegistryEvent::LeaseRenewed: return "lease_renewed";
    case RegistryEvent::LeaseReleased: return "lease_released";
    case RegistryEvent::LeaseExpired: return "lease_expired";
    case RegistryEvent::MetadataChanged: return "metadata_changed";
  }
  return "?";
}

DeviceRecord* DeviceRegistry::touch(std::uint64_t dpid, MacAddress mac,
                                    Timestamp now,
                                    const std::string& hostname) {
  const Key key{dpid, mac};
  auto it = devices_.find(key);
  if (it == devices_.end()) {
    DeviceRecord rec;
    rec.dpid = dpid;
    rec.mac = mac;
    rec.state = default_ == AdmissionDefault::PermitAll ? DeviceState::Permitted
                                                        : DeviceState::Pending;
    rec.hostname = hostname;
    rec.first_seen = now;
    rec.last_seen = now;
    rec.dhcp_requests = 1;
    it = devices_.emplace(key, std::move(rec)).first;
    emit(RegistryEvent::Discovered, it->second);
    return &it->second;
  }
  it->second.last_seen = now;
  ++it->second.dhcp_requests;
  if (!hostname.empty()) it->second.hostname = hostname;
  return &it->second;
}

const DeviceRecord* DeviceRegistry::find(std::uint64_t dpid,
                                         MacAddress mac) const {
  auto it = devices_.find(Key{dpid, mac});
  return it == devices_.end() ? nullptr : &it->second;
}

DeviceRecord* DeviceRegistry::find(std::uint64_t dpid, MacAddress mac) {
  auto it = devices_.find(Key{dpid, mac});
  return it == devices_.end() ? nullptr : &it->second;
}

const DeviceRecord* DeviceRegistry::find(MacAddress mac) const {
  if (const DeviceRecord* rec = find(default_dpid_, mac)) return rec;
  for (const auto& [key, rec] : devices_) {
    if (key.second == mac) return &rec;
  }
  return nullptr;
}

DeviceRecord* DeviceRegistry::find(MacAddress mac) {
  if (DeviceRecord* rec = find(default_dpid_, mac)) return rec;
  for (auto& [key, rec] : devices_) {
    if (key.second == mac) return &rec;
  }
  return nullptr;
}

const DeviceRecord* DeviceRegistry::find_by_ip(std::uint64_t dpid,
                                               Ipv4Address ip) const {
  for (const auto& [key, rec] : devices_) {
    if (key.first == dpid && rec.lease && rec.lease->ip == ip) return &rec;
  }
  return nullptr;
}

std::vector<const DeviceRecord*> DeviceRegistry::all() const {
  std::vector<const DeviceRecord*> out;
  out.reserve(devices_.size());
  for (const auto& [_, rec] : devices_) out.push_back(&rec);
  return out;
}

std::vector<const DeviceRecord*> DeviceRegistry::all(std::uint64_t dpid) const {
  std::vector<const DeviceRecord*> out;
  for (const auto& [key, rec] : devices_) {
    if (key.first == dpid) out.push_back(&rec);
  }
  return out;
}

bool DeviceRegistry::set_state(std::uint64_t dpid, MacAddress mac,
                               DeviceState state, Timestamp now) {
  DeviceRecord* rec = find(dpid, mac);
  if (rec == nullptr) {
    // Allow pre-authorisation of devices that have not appeared yet.
    DeviceRecord fresh;
    fresh.dpid = dpid;
    fresh.mac = mac;
    fresh.state = state;
    fresh.first_seen = now;
    fresh.last_seen = now;
    auto [it, _] = devices_.emplace(Key{dpid, mac}, std::move(fresh));
    emit(RegistryEvent::StateChanged, it->second);
    return true;
  }
  if (rec->state == state) return false;
  rec->state = state;
  rec->last_seen = now;
  emit(RegistryEvent::StateChanged, *rec);
  return true;
}

bool DeviceRegistry::set_state(MacAddress mac, DeviceState state,
                               Timestamp now) {
  // Compat path: act on an existing record wherever it lives, else create
  // one under the default home.
  if (DeviceRecord* rec = find(mac)) {
    return set_state(rec->dpid, mac, state, now);
  }
  return set_state(default_dpid_, mac, state, now);
}

bool DeviceRegistry::set_name(std::uint64_t dpid, MacAddress mac,
                              std::string name, Timestamp now) {
  DeviceRecord* rec = find(dpid, mac);
  if (rec == nullptr) return false;
  rec->name = std::move(name);
  rec->last_seen = now;
  emit(RegistryEvent::MetadataChanged, *rec);
  return true;
}

bool DeviceRegistry::set_name(MacAddress mac, std::string name, Timestamp now) {
  DeviceRecord* rec = find(mac);
  if (rec == nullptr) return false;
  return set_name(rec->dpid, mac, std::move(name), now);
}

void DeviceRegistry::record_lease(std::uint64_t dpid, MacAddress mac,
                                  Lease lease, bool renewal, Timestamp now) {
  DeviceRecord* rec = find(dpid, mac);
  if (rec == nullptr) rec = touch(dpid, mac, now, lease.hostname);
  rec->lease = std::move(lease);
  rec->last_seen = now;
  emit(renewal ? RegistryEvent::LeaseRenewed : RegistryEvent::LeaseGranted, *rec);
}

void DeviceRegistry::clear_lease(std::uint64_t dpid, MacAddress mac,
                                 bool expired, Timestamp now) {
  DeviceRecord* rec = find(dpid, mac);
  if (rec == nullptr || !rec->lease) return;
  rec->lease.reset();
  rec->last_seen = now;
  emit(expired ? RegistryEvent::LeaseExpired : RegistryEvent::LeaseReleased, *rec);
}

void DeviceRegistry::note_location(std::uint64_t dpid, MacAddress mac,
                                   std::uint16_t port) {
  DeviceRecord* rec = find(dpid, mac);
  if (rec != nullptr) rec->port = port;
}

void DeviceRegistry::emit(RegistryEvent e, const DeviceRecord& rec) {
  for (const auto& listener : listeners_) listener(e, rec);
}

namespace {
constexpr std::uint32_t kRegistryTag = snapshot::tag("DREG");
constexpr std::uint8_t kRegistryVersion = 2;  // v2: per-record dpid
}  // namespace

void DeviceRegistry::save(snapshot::Writer& w) const {
  ByteWriter& c = w.begin_chunk(kRegistryTag);
  c.u8(kRegistryVersion);
  c.u8(static_cast<std::uint8_t>(default_));
  c.u64(default_dpid_);
  c.u32(static_cast<std::uint32_t>(devices_.size()));
  for (const auto& [key, rec] : devices_) {
    c.u64(key.first);
    snapshot::put_mac(c, rec.mac);
    c.u8(static_cast<std::uint8_t>(rec.state));
    snapshot::put_string(c, rec.name);
    snapshot::put_string(c, rec.hostname);
    c.u8(rec.lease.has_value() ? 1 : 0);
    if (rec.lease) {
      snapshot::put_ip(c, rec.lease->ip);
      c.u64(rec.lease->granted_at);
      c.u64(rec.lease->expires_at);
      snapshot::put_string(c, rec.lease->hostname);
    }
    c.u8(rec.port.has_value() ? 1 : 0);
    if (rec.port) c.u16(*rec.port);
    c.u64(rec.first_seen);
    c.u64(rec.last_seen);
    c.u64(rec.dhcp_requests);
  }
  w.end_chunk();
}

Status DeviceRegistry::restore(const snapshot::Reader& r) {
  const Bytes* chunk = r.find(kRegistryTag);
  if (chunk == nullptr) return Status::success();
  ByteReader br(*chunk);
  auto version = br.u8();
  if (!version) return make_error("registry snapshot: truncated header");
  if (version.value() != kRegistryVersion) {
    return make_error("registry snapshot: unsupported version");
  }
  auto def = br.u8();
  auto default_dpid = br.u64();
  auto count = br.u32();
  if (!def || !default_dpid || !count) {
    return make_error("registry snapshot: truncated header");
  }
  std::map<Key, DeviceRecord> devices;
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    DeviceRecord rec;
    auto dpid = br.u64();
    auto mac = snapshot::get_mac(br);
    auto state = br.u8();
    auto name = snapshot::get_string(br);
    auto hostname = snapshot::get_string(br);
    auto has_lease = br.u8();
    if (!dpid || !mac || !state || !name || !hostname || !has_lease) {
      return make_error("registry snapshot: truncated record");
    }
    rec.dpid = dpid.value();
    rec.mac = mac.value();
    rec.state = static_cast<DeviceState>(state.value());
    rec.name = std::move(name).take();
    rec.hostname = std::move(hostname).take();
    if (has_lease.value() != 0) {
      Lease lease;
      auto ip = snapshot::get_ip(br);
      auto granted = br.u64();
      auto expires = br.u64();
      auto lease_host = snapshot::get_string(br);
      if (!ip || !granted || !expires || !lease_host) {
        return make_error("registry snapshot: truncated lease");
      }
      lease.ip = ip.value();
      lease.granted_at = granted.value();
      lease.expires_at = expires.value();
      lease.hostname = std::move(lease_host).take();
      rec.lease = std::move(lease);
    }
    auto has_port = br.u8();
    if (!has_port) return has_port.error();
    if (has_port.value() != 0) {
      auto port = br.u16();
      if (!port) return port.error();
      rec.port = port.value();
    }
    auto first_seen = br.u64();
    auto last_seen = br.u64();
    auto dhcp_requests = br.u64();
    if (!first_seen || !last_seen || !dhcp_requests) {
      return make_error("registry snapshot: truncated timestamps");
    }
    rec.first_seen = first_seen.value();
    rec.last_seen = last_seen.value();
    rec.dhcp_requests = dhcp_requests.value();
    devices.emplace(Key{rec.dpid, rec.mac}, std::move(rec));
  }
  default_ = static_cast<AdmissionDefault>(def.value());
  default_dpid_ = default_dpid.value();
  devices_ = std::move(devices);
  return Status::success();
}

}  // namespace hw::homework
