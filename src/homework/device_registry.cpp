#include "homework/device_registry.hpp"

namespace hw::homework {

const char* to_string(DeviceState s) {
  switch (s) {
    case DeviceState::Pending: return "pending";
    case DeviceState::Permitted: return "permitted";
    case DeviceState::Denied: return "denied";
  }
  return "?";
}

const char* to_string(RegistryEvent e) {
  switch (e) {
    case RegistryEvent::Discovered: return "discovered";
    case RegistryEvent::StateChanged: return "state_changed";
    case RegistryEvent::LeaseGranted: return "lease_granted";
    case RegistryEvent::LeaseRenewed: return "lease_renewed";
    case RegistryEvent::LeaseReleased: return "lease_released";
    case RegistryEvent::LeaseExpired: return "lease_expired";
    case RegistryEvent::MetadataChanged: return "metadata_changed";
  }
  return "?";
}

DeviceRecord* DeviceRegistry::touch(MacAddress mac, Timestamp now,
                                    const std::string& hostname) {
  auto it = devices_.find(mac);
  if (it == devices_.end()) {
    DeviceRecord rec;
    rec.mac = mac;
    rec.state = default_ == AdmissionDefault::PermitAll ? DeviceState::Permitted
                                                        : DeviceState::Pending;
    rec.hostname = hostname;
    rec.first_seen = now;
    rec.last_seen = now;
    rec.dhcp_requests = 1;
    it = devices_.emplace(mac, std::move(rec)).first;
    emit(RegistryEvent::Discovered, it->second);
    return &it->second;
  }
  it->second.last_seen = now;
  ++it->second.dhcp_requests;
  if (!hostname.empty()) it->second.hostname = hostname;
  return &it->second;
}

const DeviceRecord* DeviceRegistry::find(MacAddress mac) const {
  auto it = devices_.find(mac);
  return it == devices_.end() ? nullptr : &it->second;
}

DeviceRecord* DeviceRegistry::find(MacAddress mac) {
  auto it = devices_.find(mac);
  return it == devices_.end() ? nullptr : &it->second;
}

const DeviceRecord* DeviceRegistry::find_by_ip(Ipv4Address ip) const {
  for (const auto& [_, rec] : devices_) {
    if (rec.lease && rec.lease->ip == ip) return &rec;
  }
  return nullptr;
}

std::vector<const DeviceRecord*> DeviceRegistry::all() const {
  std::vector<const DeviceRecord*> out;
  out.reserve(devices_.size());
  for (const auto& [_, rec] : devices_) out.push_back(&rec);
  return out;
}

bool DeviceRegistry::set_state(MacAddress mac, DeviceState state, Timestamp now) {
  DeviceRecord* rec = find(mac);
  if (rec == nullptr) {
    // Allow pre-authorisation of devices that have not appeared yet.
    DeviceRecord fresh;
    fresh.mac = mac;
    fresh.state = state;
    fresh.first_seen = now;
    fresh.last_seen = now;
    auto [it, _] = devices_.emplace(mac, std::move(fresh));
    emit(RegistryEvent::StateChanged, it->second);
    return true;
  }
  if (rec->state == state) return false;
  rec->state = state;
  rec->last_seen = now;
  emit(RegistryEvent::StateChanged, *rec);
  return true;
}

bool DeviceRegistry::set_name(MacAddress mac, std::string name, Timestamp now) {
  DeviceRecord* rec = find(mac);
  if (rec == nullptr) return false;
  rec->name = std::move(name);
  rec->last_seen = now;
  emit(RegistryEvent::MetadataChanged, *rec);
  return true;
}

void DeviceRegistry::record_lease(MacAddress mac, Lease lease, bool renewal,
                                  Timestamp now) {
  DeviceRecord* rec = find(mac);
  if (rec == nullptr) rec = touch(mac, now, lease.hostname);
  rec->lease = std::move(lease);
  rec->last_seen = now;
  emit(renewal ? RegistryEvent::LeaseRenewed : RegistryEvent::LeaseGranted, *rec);
}

void DeviceRegistry::clear_lease(MacAddress mac, bool expired, Timestamp now) {
  DeviceRecord* rec = find(mac);
  if (rec == nullptr || !rec->lease) return;
  rec->lease.reset();
  rec->last_seen = now;
  emit(expired ? RegistryEvent::LeaseExpired : RegistryEvent::LeaseReleased, *rec);
}

void DeviceRegistry::note_location(MacAddress mac, std::uint16_t port) {
  DeviceRecord* rec = find(mac);
  if (rec != nullptr) rec->port = port;
}

void DeviceRegistry::emit(RegistryEvent e, const DeviceRecord& rec) {
  for (const auto& listener : listeners_) listener(e, rec);
}

}  // namespace hw::homework
