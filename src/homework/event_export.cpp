#include "homework/event_export.hpp"

#include "net/app_map.hpp"
#include "util/logging.hpp"

namespace hw::homework {
namespace {
constexpr std::string_view kLog = "export";
}  // namespace

EventExport::EventExport(Config config, hwdb::Database& db,
                         DeviceRegistry& registry, WirelessMap* wireless)
    : Component(kName),
      config_(config),
      db_(db),
      registry_(registry),
      wireless_(wireless) {}

EventExport::~EventExport() = default;

Status EventExport::create_tables(hwdb::Database& db, const Config& config) {
  using hwdb::ColumnType;
  if (auto s = db.create_table(
          hwdb::Schema("Flows",
                       {{"device", ColumnType::Text},
                        {"src_ip", ColumnType::Text},
                        {"dst_ip", ColumnType::Text},
                        {"proto", ColumnType::Int},
                        {"sport", ColumnType::Int},
                        {"dport", ColumnType::Int},
                        {"app", ColumnType::Text},
                        {"bytes", ColumnType::Int},
                        {"packets", ColumnType::Int}}),
          config.flows_capacity);
      !s.ok()) {
    return s;
  }
  if (auto s = db.create_table(hwdb::Schema("Links", {{"mac", ColumnType::Text},
                                                      {"rssi", ColumnType::Real},
                                                      {"retries", ColumnType::Int},
                                                      {"tx", ColumnType::Int}}),
                               config.links_capacity);
      !s.ok()) {
    return s;
  }
  return db.create_table(
      hwdb::Schema("Leases", {{"mac", ColumnType::Text},
                              {"ip", ColumnType::Text},
                              {"hostname", ColumnType::Text},
                              {"event", ColumnType::Text},
                              {"state", ColumnType::Text}}),
      config.leases_capacity);
}

void EventExport::install(nox::Controller& ctl) {
  Component::install(ctl);
  if (db_.table("Flows") == nullptr) {
    if (auto s = create_tables(db_, config_); !s.ok()) {
      HW_LOG_ERROR(kLog, "cannot create tables: %s", s.error().message.c_str());
    }
  }
  registry_.add_listener([this](RegistryEvent ev, const DeviceRecord& rec) {
    on_registry_event(ev, rec);
  });
  flow_timer_ = std::make_unique<sim::PeriodicTimer>(
      ctl.loop(), config_.flow_poll, [this] { poll_flows(); });
  flow_timer_->start();
  link_timer_ = std::make_unique<sim::PeriodicTimer>(
      ctl.loop(), config_.link_poll, [this] { poll_links(); });
  link_timer_->start();
}

void EventExport::handle_datapath_join(nox::DatapathId dpid,
                                       const ofp::FeaturesReply&) {
  datapaths_.push_back(dpid);
}

void EventExport::handle_flow_removed(nox::DatapathId, const ofp::FlowRemoved& fr) {
  prev_.erase(fr.match.to_string());
}

void EventExport::poll_flows() {
  metrics_.stats_polls.inc();
  for (const auto dpid : datapaths_) {
    ofp::StatsRequest req;
    req.type = ofp::StatsType::Flow;
    req.body = ofp::FlowStatsRequest{};
    controller().request_stats(dpid, req, [this](const ofp::StatsReply& reply) {
      const auto* flows =
          std::get_if<std::vector<ofp::FlowStatsEntry>>(&reply.body);
      if (flows != nullptr) export_flow_stats(*flows);
    });
  }
}

void EventExport::export_flow_stats(
    const std::vector<ofp::FlowStatsEntry>& entries) {
  for (const auto& e : entries) {
    // Only the exact-match forwarding band describes end-user traffic; the
    // wildcard service rules (DHCP/DNS/ARP interception) are skipped.
    if (e.match.wildcards != 0 &&
        (e.match.nw_src_ignored_bits() > 0 || e.match.nw_dst_ignored_bits() > 0)) {
      continue;
    }
    if (e.match.dl_type != static_cast<std::uint16_t>(net::EtherType::Ipv4)) {
      continue;
    }
    // Deny rules (empty actions or the OFPP_MAX null-port drop): nothing
    // actually transited, keep them out of the bandwidth accounting.
    if (e.actions.empty()) continue;
    if (e.actions.size() == 1) {
      if (const auto* out = std::get_if<ofp::ActionOutput>(&e.actions[0]);
          out != nullptr && out->port >= ofp::port_no(ofp::Port::Max)) {
        continue;
      }
    }
    const std::string key = e.match.to_string();
    auto& prev = prev_[key];
    const std::uint64_t dp = e.packet_count - prev.packets;
    const std::uint64_t db_bytes = e.byte_count - prev.bytes;
    prev.packets = e.packet_count;
    prev.bytes = e.byte_count;
    if (dp == 0) continue;  // idle this interval

    // Attribute to the home device on one end of the flow.
    std::string device = "unknown";
    if (const DeviceRecord* rec = registry_.find_by_ip(e.match.nw_src)) {
      device = rec->mac.to_string();
    } else if (const DeviceRecord* rec = registry_.find_by_ip(e.match.nw_dst)) {
      device = rec->mac.to_string();
    }

    net::FiveTuple tuple;
    tuple.src_ip = e.match.nw_src;
    tuple.dst_ip = e.match.nw_dst;
    tuple.protocol = e.match.nw_proto;
    tuple.src_port = e.match.tp_src;
    tuple.dst_port = e.match.tp_dst;
    const std::string app = net::app_protocol_name(net::classify_app(tuple));

    auto status = db_.insert(
        "Flows",
        {hwdb::Value{device}, hwdb::Value{e.match.nw_src.to_string()},
         hwdb::Value{e.match.nw_dst.to_string()},
         hwdb::Value{static_cast<std::int64_t>(e.match.nw_proto)},
         hwdb::Value{static_cast<std::int64_t>(e.match.tp_src)},
         hwdb::Value{static_cast<std::int64_t>(e.match.tp_dst)},
         hwdb::Value{app}, hwdb::Value{static_cast<std::int64_t>(db_bytes)},
         hwdb::Value{static_cast<std::int64_t>(dp)}});
    if (status.ok()) metrics_.flow_rows.inc();
  }
}

void EventExport::poll_links() {
  if (wireless_ == nullptr) return;
  for (const auto& sample : wireless_->sample_all()) {
    auto& prev = prev_link_[sample.mac];
    const std::uint64_t d_retries = sample.retries - prev.retries;
    const std::uint64_t d_tx = sample.tx_frames - prev.tx;
    prev.retries = sample.retries;
    prev.tx = sample.tx_frames;
    auto status =
        db_.insert("Links", {hwdb::Value{sample.mac.to_string()},
                             hwdb::Value{sample.rssi_dbm},
                             hwdb::Value{static_cast<std::int64_t>(d_retries)},
                             hwdb::Value{static_cast<std::int64_t>(d_tx)}});
    if (status.ok()) metrics_.link_rows.inc();
  }
}

void EventExport::on_registry_event(RegistryEvent ev, const DeviceRecord& rec) {
  switch (ev) {
    case RegistryEvent::LeaseGranted:
    case RegistryEvent::LeaseRenewed:
    case RegistryEvent::LeaseReleased:
    case RegistryEvent::LeaseExpired:
    case RegistryEvent::StateChanged:
    case RegistryEvent::Discovered:
      break;
    default:
      return;
  }
  const std::string ip = rec.lease ? rec.lease->ip.to_string() : "";
  auto status = db_.insert(
      "Leases", {hwdb::Value{rec.mac.to_string()}, hwdb::Value{ip},
                 hwdb::Value{rec.hostname}, hwdb::Value{to_string(ev)},
                 hwdb::Value{to_string(rec.state)}});
  if (status.ok()) metrics_.lease_rows.inc();
}

}  // namespace hw::homework
