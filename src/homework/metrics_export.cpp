#include "homework/metrics_export.hpp"

#include "util/logging.hpp"

namespace hw::homework {
namespace {
constexpr std::string_view kLog = "metrics";
}  // namespace

MetricsExport::MetricsExport(Config config, hwdb::Database& db,
                             telemetry::MetricRegistry& registry)
    : Component(kName), config_(config), db_(db), registry_(registry),
      metrics_(registry) {}

MetricsExport::~MetricsExport() = default;

Status MetricsExport::create_table(hwdb::Database& db, const Config& config) {
  using hwdb::ColumnType;
  return db.create_table(hwdb::Schema("Metrics", {{"name", ColumnType::Text},
                                                  {"kind", ColumnType::Text},
                                                  {"value", ColumnType::Real}}),
                         config.capacity);
}

void MetricsExport::install(nox::Controller& ctl) {
  Component::install(ctl);
  if (db_.table("Metrics") == nullptr) {
    if (auto s = create_table(db_, config_); !s.ok()) {
      HW_LOG_ERROR(kLog, "cannot create Metrics table: %s",
                   s.error().message.c_str());
      return;
    }
  }
  timer_ = std::make_unique<sim::PeriodicTimer>(ctl.loop(), config_.poll,
                                                [this] { poll(); });
  timer_->start();
}

void MetricsExport::poll() {
  metrics_.polls.inc();
  for (const auto& sample : registry_.snapshot()) {
    const auto status =
        db_.insert("Metrics", {hwdb::Value{sample.name},
                               hwdb::Value{telemetry::to_string(sample.kind)},
                               hwdb::Value{sample.value}});
    if (status.ok()) metrics_.rows_exported.inc();
  }
}

}  // namespace hw::homework
