#include "homework/wireless_map.hpp"

namespace hw::homework {

void WirelessMap::place_station(MacAddress mac, sim::Position pos) {
  stations_[mac].pos = pos;
}

void WirelessMap::remove_station(MacAddress mac) { stations_.erase(mac); }

std::uint64_t WirelessMap::note_transmission(MacAddress mac) {
  auto it = stations_.find(mac);
  if (it == stations_.end()) return 0;
  ++it->second.tx_frames;
  const double d = sim::distance(it->second.pos, ap_);
  const double rssi = sim::sample_rssi(config_, d, rng_);
  const double p_retry = sim::retry_probability(config_, rssi);
  // Geometric retry count capped at the usual 802.11 retry limit of 7.
  std::uint64_t retries = 0;
  while (retries < 7 && rng_.chance(p_retry)) ++retries;
  it->second.retries += retries;
  return retries;
}

std::optional<double> WirelessMap::sample_rssi(MacAddress mac) {
  auto it = stations_.find(mac);
  if (it == stations_.end()) return std::nullopt;
  const double d = sim::distance(it->second.pos, ap_);
  return sim::sample_rssi(config_, d, rng_);
}

std::vector<StationSample> WirelessMap::sample_all() {
  std::vector<StationSample> out;
  out.reserve(stations_.size());
  for (auto& [mac, st] : stations_) {
    StationSample s;
    s.mac = mac;
    const double d = sim::distance(st.pos, ap_);
    s.rssi_dbm = sim::sample_rssi(config_, d, rng_);
    s.retries = st.retries;
    s.tx_frames = st.tx_frames;
    s.position = st.pos;
    out.push_back(s);
  }
  return out;
}

}  // namespace hw::homework
