#include "homework/router.hpp"

#include <algorithm>

#include "openflow/stream_channel.hpp"

namespace hw::homework {

/// Counts wireless transmissions (for the Links table's retry signal) on the
/// way from a device's link into its datapath port.
class HomeworkRouter::WirelessIngress final : public sim::FrameSink {
 public:
  WirelessIngress(WirelessMap& map, MacAddress mac, sim::FrameSink* next)
      : map_(map), mac_(mac), next_(next) {}

  void deliver(const Bytes& frame) override {
    map_.note_transmission(mac_);
    next_->deliver(frame);
  }

 private:
  WirelessMap& map_;
  MacAddress mac_;
  sim::FrameSink* next_;
};

/// Records frames at a named capture point, then passes them along.
class HomeworkRouter::TraceShim final : public sim::FrameSink {
 public:
  TraceShim(sim::EventLoop& loop, sim::Trace& trace, std::string point,
            sim::FrameSink* next)
      : loop_(loop), trace_(trace), point_(std::move(point)), next_(next) {}

  void deliver(const Bytes& frame) override {
    trace_.record(loop_.now(), point_, frame);
    if (next_ != nullptr) next_->deliver(frame);
  }

 private:
  sim::EventLoop& loop_;
  sim::Trace& trace_;
  std::string point_;
  sim::FrameSink* next_;
};

HomeworkRouter::HomeworkRouter(sim::EventLoop& loop, Rng& rng, Config config,
                               telemetry::MetricRegistry& metrics)
    : loop_(loop),
      rng_(rng),
      config_(config),
      metrics_(metrics),
      uplink_trace_(config_.uplink_trace_max) {
  // Leaf modules (DHCP, DNS, wireless, …) carry bare instruments; scope them
  // to this router's registry for the whole build.
  telemetry::ScopedMetricRegistry scope(metrics_);
  db_ = std::make_unique<hwdb::Database>(loop_, metrics_);
  registry_ = std::make_unique<DeviceRegistry>(config_.admission);
  registry_->set_default_dpid(config_.datapath.datapath_id);
  policy_ = std::make_unique<policy::PolicyEngine>([this] { return loop_.now(); });
  wireless_ = std::make_unique<WirelessMap>(config_.wireless, rng_,
                                            config_.ap_position);

  datapath_ = std::make_unique<ofp::Datapath>(loop_, config_.datapath, metrics_);
  if (config_.transport == Config::Transport::Stream) {
    ofp::StreamConnection::Config stream;
    stream.link.latency = config_.channel_latency;
    stream.link.jitter = config_.channel_jitter;
    stream.link.mtu = config_.channel_mtu;
    connection_ = std::make_unique<ofp::StreamConnection>(loop_, stream, &rng_);
  } else {
    connection_ =
        std::make_unique<ofp::InProcConnection>(loop_, config_.channel_latency);
  }
  controller_ = std::make_unique<nox::Controller>(loop_, metrics_);

  upstream_ = std::make_unique<Upstream>(loop_, config_.upstream);

  // Modules (controller owns them; keep typed pointers for access).
  DhcpServer::Config dhcp_config;
  dhcp_config.server_ip = config_.router_ip;
  dhcp_config.subnet = config_.subnet;
  dhcp_config.pool_start = config_.pool_start;
  dhcp_config.pool_end = config_.pool_end;
  dhcp_config.lease_secs = config_.lease_secs;
  dhcp_config.router_mac = config_.router_mac;
  dhcp_config.isolate = config_.isolate;
  dhcp_config.offer_hold = config_.dhcp_offer_hold;
  auto dhcp = std::make_unique<DhcpServer>(dhcp_config, *registry_);
  dhcp_ = dhcp.get();

  DnsProxy::Config dns_config;
  dns_config.router_ip = config_.router_ip;
  dns_config.router_mac = config_.router_mac;
  dns_config.upstream_dns = config_.upstream.dns_ip;
  dns_config.uplink_port = config_.uplink_port;
  dns_config.upstream_gw_mac = config_.upstream.gw_mac;
  auto dns = std::make_unique<DnsProxy>(dns_config, *registry_, *policy_);
  dns_ = dns.get();

  Forwarding::Config fwd_config;
  fwd_config.router_ip = config_.router_ip;
  fwd_config.router_mac = config_.router_mac;
  fwd_config.subnet = config_.subnet;
  fwd_config.uplink_port = config_.uplink_port;
  fwd_config.upstream_gw_mac = config_.upstream.gw_mac;
  fwd_config.flow_idle_timeout = config_.flow_idle_timeout;
  // Queue configuration side channel (the ovs-vsctl role): policing buckets
  // sized for ~250 ms of traffic at the cap, with a sane floor.
  fwd_config.configure_queue = [this](std::uint16_t port, std::uint32_t queue_id,
                                      std::uint64_t rate_bps) {
    const std::uint64_t burst = std::max<std::uint64_t>(rate_bps / 8 / 4, 3036);
    datapath_->configure_queue(port, queue_id, rate_bps, burst);
  };
  auto fwd = std::make_unique<Forwarding>(fwd_config, *registry_, *policy_);
  forwarding_ = fwd.get();

  auto exp = std::make_unique<EventExport>(config_.event_export, *db_, *registry_,
                                           wireless_.get());
  export_ = exp.get();

  auto metrics_export =
      std::make_unique<MetricsExport>(config_.metrics_export, *db_, metrics_);
  metrics_export_ = metrics_export.get();

  auto api = std::make_unique<ControlApi>(*registry_, *policy_, *db_);
  control_api_ = api.get();

  // Registration order fixes the packet-in chain: DHCP and DNS interceptors
  // consume their traffic before the forwarding module sees it.
  controller_->add_component(std::move(dhcp));
  controller_->add_component(std::move(dns));
  controller_->add_component(std::move(fwd));
  controller_->add_component(std::move(exp));
  controller_->add_component(std::move(metrics_export));
  controller_->add_component(std::move(api));
  auto liveness = std::make_unique<nox::LivenessMonitor>(config_.liveness);
  liveness_ = liveness.get();
  controller_->add_component(std::move(liveness));

  // Recovery loop: once the watchdog hears a previously-dead datapath again
  // (channel restored), the controller re-syncs it — via the reconciler in
  // Reconcile mode, via full flow-setup replay in Replay mode.
  liveness_->on_recovered(
      [this](nox::DatapathId dpid) { controller_->resync_datapath(dpid); });

  if (config_.resync == Config::Resync::Reconcile) {
    desired_ = std::make_unique<reconcile::DesiredStore>();
    auto rec = std::make_unique<reconcile::Reconciler>(*desired_, metrics_);
    reconciler_ = rec.get();
    controller_->add_component(std::move(rec));
    reconciler_->bind_policy(*policy_);
    controller_->set_resync_hook([this](nox::DatapathId dpid, bool resync) {
      reconciler_->on_datapath_ready(dpid, resync);
    });

    // State fixups: each heals one divergence class between desired state
    // and the controller-side stores, reporting whether anything changed.
    reconcile::Reconciler::Hooks hooks;
    hooks.apply_admission = [this](nox::DatapathId dpid,
                                   const std::string& mac_text,
                                   reconcile::DeviceIntent::Admission want) {
      auto mac = MacAddress::parse(mac_text);
      if (!mac) return false;
      const DeviceState want_state =
          want == reconcile::DeviceIntent::Admission::Permitted
              ? DeviceState::Permitted
              : DeviceState::Denied;
      const DeviceRecord* rec = registry_->find(dpid, mac.value());
      if (rec != nullptr && rec->state == want_state) return false;
      return registry_->set_state(dpid, mac.value(), want_state, loop_.now());
    };
    hooks.adopt_lease = [this](nox::DatapathId dpid,
                               const std::string& mac_text, Ipv4Address ip) {
      auto mac = MacAddress::parse(mac_text);
      if (!mac) return false;
      bool changed = dhcp_->adopt_allocation(dpid, mac.value(), ip);
      const DeviceRecord* rec = registry_->find(dpid, mac.value());
      if (rec == nullptr || !rec->lease || rec->lease->ip != ip) {
        Lease lease;
        lease.ip = ip;
        lease.granted_at = loop_.now();
        lease.expires_at =
            loop_.now() + static_cast<Duration>(config_.lease_secs) * kSecond;
        if (rec != nullptr && rec->lease) lease.hostname = rec->lease->hostname;
        registry_->record_lease(dpid, mac.value(), lease,
                                rec != nullptr && rec->lease.has_value(),
                                loop_.now());
        changed = true;
      }
      return changed;
    };
    hooks.apply_qos = [this](nox::DatapathId dpid, const std::string& mac_text,
                             std::uint64_t rate_bps) {
      const std::string key = std::to_string(dpid) + "|" + mac_text;
      auto it = applied_qos_.find(key);
      const std::uint64_t current = it == applied_qos_.end() ? 0 : it->second;
      if (current == rate_bps) return false;
      if (rate_bps == 0) {
        applied_qos_.erase(key);
        return false;  // queue falls out of use; nothing to reconfigure
      }
      auto mac = MacAddress::parse(mac_text);
      if (!mac) return false;
      const DeviceRecord* rec = registry_->find(dpid, mac.value());
      if (rec == nullptr || !rec->lease) return false;
      const std::uint32_t queue_id = rec->lease->ip.value() & 0xffff;
      const std::uint64_t burst = std::max<std::uint64_t>(rate_bps / 8 / 4, 3036);
      datapath_->configure_queue(config_.uplink_port, queue_id, rate_bps, burst);
      applied_qos_[key] = rate_bps;
      return true;
    };
    reconciler_->set_hooks(std::move(hooks));

    // Imperative writers feed the goal state: admission/metadata via the
    // control API, scope bindings via the DHCP allocator.
    control_api_->bind_goal_state(*desired_, [this](nox::DatapathId dpid) {
      reconciler_->request_round(dpid);
    });
    dhcp_->set_allocation_observer([this](nox::DatapathId dpid, MacAddress mac,
                                          std::optional<Ipv4Address> ip) {
      desired_->state(dpid).device(mac.to_string()).lease_ip = ip;
    });
  }

  // Uplink port towards the ISP (Figure 5's "upstream" path), optionally
  // with pcap capture shims on both directions.
  sim::FrameSink* to_upstream = upstream_.get();
  if (config_.capture_uplink) {
    trace_shims_.push_back(std::make_unique<TraceShim>(
        loop_, uplink_trace_, "uplink-tx", upstream_.get()));
    to_upstream = trace_shims_.back().get();
  }
  datapath_->add_port(config_.uplink_port, "uplink",
                      MacAddress::from_index(0xfffff0), to_upstream);
  sim::FrameSink* from_upstream = datapath_->ingress(config_.uplink_port);
  if (config_.capture_uplink) {
    trace_shims_.push_back(std::make_unique<TraceShim>(
        loop_, uplink_trace_, "uplink-rx", from_upstream));
    from_upstream = trace_shims_.back().get();
  }
  upstream_->connect(from_upstream);

  // Checkpoint/restore: the router's durable state layers, in the order a
  // restore must rebuild them. Callers append RNG/telemetry layers.
  snapshots_ = std::make_unique<snapshot::SnapshotCoordinator>(loop_, metrics_);
  snapshots_->add_layer("flow-table", &datapath_->table());
  snapshots_->add_layer("hwdb", db_.get());
  snapshots_->add_layer("dhcp", dhcp_);
  snapshots_->add_layer("registry", registry_.get());
  snapshots_->add_layer("policy", policy_.get());
  if (desired_ != nullptr) snapshots_->add_layer("desired", desired_.get());
}

HomeworkRouter::~HomeworkRouter() = default;

void HomeworkRouter::start() {
  if (started_) return;
  controller_->start();
  datapath_->connect(connection_->datapath_end());
  controller_->connect_datapath(connection_->controller_end());
  // Let HELLO/FEATURES and the modules' table setup settle.
  loop_.run_for(kBootSettle);
  started_ = true;
}

HomeworkRouter::Attachment HomeworkRouter::attach_device(
    sim::Host& host, std::optional<sim::Position> position,
    sim::LinkChannel::Config link_config) {
  // Per-attachment links carry bare instruments; keep them in this router's
  // registry no matter which scope the caller runs under.
  telemetry::ScopedMetricRegistry scope(metrics_);
  const std::uint16_t port = next_port_++;
  links_.push_back(
      std::make_unique<sim::DuplexLink>(loop_, link_config, &rng_));
  sim::DuplexLink* link = links_.back().get();

  datapath_->add_port(port, "port" + std::to_string(port),
                      MacAddress::from_index(0xfff000u + port),
                      &link->b_to_a());
  link->b_to_a().connect(&host);

  sim::FrameSink* ingress = datapath_->ingress(port);
  if (position) {
    wireless_->place_station(host.mac(), *position);
    wireless_shims_.push_back(
        std::make_unique<WirelessIngress>(*wireless_, host.mac(), ingress));
    ingress = wireless_shims_.back().get();
  }
  link->a_to_b().connect(ingress);
  host.attach_uplink(&link->a_to_b());
  return Attachment{port, link};
}

void HomeworkRouter::detach_device(const Attachment& attachment, MacAddress mac) {
  datapath_->remove_port(attachment.port);
  wireless_->remove_station(mac);
  if (attachment.link != nullptr) {
    attachment.link->a_to_b().connect(nullptr);
    attachment.link->b_to_a().connect(nullptr);
  }
}

void HomeworkRouter::move_device(MacAddress mac, sim::Position position) {
  wireless_->place_station(mac, position);
}

Status HomeworkRouter::warm_restart() {
  datapath_->restart();
  const auto& image = snapshots_->last_image();
  if (!image) return Status::success();  // nothing captured yet: cold restart
  return snapshots_->restore_layers(image->bytes, {"flow-table"});
}

void HomeworkRouter::attach_faults(sim::FaultInjector& faults) {
  faults.set_controller_channel([this] { connection_->disconnect(); },
                                [this] { connection_->reconnect(); });
  faults.set_datapath_restart([this] { datapath_->restart(); });
  faults.set_warm_restart([this] { (void)warm_restart(); });
}

}  // namespace hw::homework
