// MetricsExport NOX module: the router monitoring *itself* through its own
// measurement plane. A peer of EventExport — where EventExport populates the
// paper's Flows/Links/Leases tables with network observations, MetricsExport
// polls the router's telemetry::MetricRegistry and appends every sample
// to the hwdb Metrics table, so CQL queries and the RPC interface read
// router internals (packet-ins, flow installs, lookup latency percentiles,
// DHCP counters, …) exactly like any other hwdb table:
//
//   Metrics(ts, name, kind, value)
//     — one row per registry sample per poll interval; `name` follows the
//       layer.module.name convention, `kind` is counter/gauge/histogram.
#pragma once

#include <memory>

#include "hwdb/database.hpp"
#include "nox/component.hpp"
#include "nox/controller.hpp"
#include "telemetry/metrics.hpp"

namespace hw::homework {

/// Snapshot view over the module's telemetry instruments.
struct MetricsExportStats {
  std::uint64_t polls = 0;
  std::uint64_t rows_exported = 0;
};

class MetricsExport final : public nox::Component {
 public:
  struct Config {
    Duration poll = kSecond;
    std::size_t capacity = 65536;
  };

  static constexpr const char* kName = "metrics-export";

  /// `registry` is the registry to poll (and the scope of the module's own
  /// instruments); defaults to the calling thread's active registry.
  MetricsExport(Config config, hwdb::Database& db,
                telemetry::MetricRegistry& registry =
                    telemetry::MetricRegistry::current());
  ~MetricsExport() override;

  void install(nox::Controller& ctl) override;

  [[nodiscard]] MetricsExportStats stats() const {
    return {metrics_.polls.value(), metrics_.rows_exported.value()};
  }

  /// One registry-snapshot-to-table cycle (normally timer-driven).
  void poll();

  /// Creates the Metrics table on `db` (shared with tests).
  static Status create_table(hwdb::Database& db, const Config& config);

 private:
  Config config_;
  hwdb::Database& db_;
  telemetry::MetricRegistry& registry_;  // the registry poll() snapshots
  struct Instruments {
    explicit Instruments(telemetry::MetricRegistry& reg)
        : polls{reg, "homework.metrics_export.polls"},
          rows_exported{reg, "homework.metrics_export.rows_exported"} {}
    telemetry::Counter polls;
    telemetry::Counter rows_exported;
  } metrics_;
  std::unique_ptr<sim::PeriodicTimer> timer_;
};

}  // namespace hw::homework
