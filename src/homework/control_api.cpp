#include "homework/control_api.hpp"

#include "homework/dns_proxy.hpp"

#include "util/strings.hpp"

namespace hw::homework {

ControlApi::ControlApi(DeviceRegistry& registry, policy::PolicyEngine& policy,
                       hwdb::Database& db)
    : Component(kName), registry_(registry), policy_(policy), db_(db) {
  setup_routes();
}

void ControlApi::install(nox::Controller& ctl) { Component::install(ctl); }

void ControlApi::bind_goal_state(reconcile::DesiredStore& store,
                                 std::function<void(nox::DatapathId)> changed) {
  desired_ = &store;
  desired_changed_ = std::move(changed);
}

HttpResponse ControlApi::handle(const HttpRequest& req) {
  metrics_.requests.inc();
  HttpResponse resp = router_.handle(req);
  if (resp.status >= 400) metrics_.errors.inc();
  return resp;
}

std::string ControlApi::handle_raw(std::string_view request_text) {
  auto req = HttpRequest::parse(request_text);
  if (!req) {
    metrics_.requests.inc();
    metrics_.errors.inc();
    return HttpResponse::bad_request(req.error().message).serialize();
  }
  return handle(req.value()).serialize();
}

Json ControlApi::device_json(const DeviceRecord& rec) const {
  Json j(JsonObject{});
  j.set("mac", rec.mac.to_string());
  j.set("state", to_string(rec.state));
  j.set("name", rec.name);
  j.set("hostname", rec.hostname);
  j.set("first_seen", static_cast<std::int64_t>(rec.first_seen));
  j.set("last_seen", static_cast<std::int64_t>(rec.last_seen));
  j.set("dhcp_requests", static_cast<std::int64_t>(rec.dhcp_requests));
  JsonArray tags;
  for (const auto& t : policy_.tags_of(rec.mac.to_string())) tags.emplace_back(t);
  j.set("tags", Json(std::move(tags)));
  if (rec.lease) {
    Json lease(JsonObject{});
    lease.set("ip", rec.lease->ip.to_string());
    lease.set("granted_at", static_cast<std::int64_t>(rec.lease->granted_at));
    lease.set("expires_at", static_cast<std::int64_t>(rec.lease->expires_at));
    lease.set("hostname", rec.lease->hostname);
    j.set("lease", std::move(lease));
  } else {
    j.set("lease", nullptr);
  }
  return j;
}

void ControlApi::setup_routes() {
  using Params = HttpRouter::Params;

  auto parse_mac = [](const Params& p) -> Result<MacAddress> {
    auto it = p.find("mac");
    if (it == p.end()) return make_error("missing mac");
    return MacAddress::parse(it->second);
  };

  router_.add("GET", "/api/status", [this](const HttpRequest&, const Params&) {
    Json j(JsonObject{});
    j.set("devices", static_cast<std::int64_t>(registry_.size()));
    std::int64_t leased = 0;
    for (const auto* rec : registry_.all()) {
      if (rec->lease) ++leased;
    }
    j.set("active_leases", leased);
    j.set("policies", static_cast<std::int64_t>(policy_.policies().size()));
    j.set("usb_keys", static_cast<std::int64_t>(policy_.usb().inserted_count()));
    j.set("time", static_cast<std::int64_t>(controller().loop().now()));
    JsonArray tables;
    for (const auto& name : db_.table_names()) tables.emplace_back(name);
    j.set("hwdb_tables", Json(std::move(tables)));
    return HttpResponse::json(j);
  });

  router_.add("GET", "/api/devices", [this](const HttpRequest&, const Params&) {
    JsonArray arr;
    for (const auto* rec : registry_.all()) arr.push_back(device_json(*rec));
    return HttpResponse::json(Json(std::move(arr)));
  });

  router_.add("GET", "/api/devices/:mac",
              [this, parse_mac](const HttpRequest&, const Params& p) {
                auto mac = parse_mac(p);
                if (!mac) return HttpResponse::bad_request(mac.error().message);
                const DeviceRecord* rec = registry_.find(mac.value());
                if (rec == nullptr) return HttpResponse::not_found();
                return HttpResponse::json(device_json(*rec));
              });

  // "Interrogate" (Figure 3): everything the measurement plane knows about
  // one device — recent traffic by application, the names it resolved, and
  // its wireless link quality — assembled from hwdb queries and the DNS
  // proxy's cache, the same sources any satellite display would use.
  router_.add(
      "GET", "/api/devices/:mac/interrogate",
      [this, parse_mac](const HttpRequest& req, const Params& p) {
        auto mac = parse_mac(p);
        if (!mac) return HttpResponse::bad_request(mac.error().message);
        const DeviceRecord* rec = registry_.find(mac.value());
        if (rec == nullptr) return HttpResponse::not_found();

        int window = 60;
        if (auto it = req.query.find("window"); it != req.query.end()) {
          try {
            window = std::stoi(it->second);
          } catch (...) {
            return HttpResponse::bad_request("bad window");
          }
        }
        const std::string mac_text = mac.value().to_string();
        Json j = device_json(*rec);

        Json traffic(JsonArray{});
        auto flows = db_.query(
            "SELECT app, sum(bytes), sum(packets) FROM Flows [RANGE " +
            std::to_string(window) + " SECONDS] WHERE device = '" + mac_text +
            "' GROUP BY app");
        if (flows.ok()) {
          for (const auto& row : flows.value().rows) {
            Json entry(JsonObject{});
            entry.set("app", row[0].as_text());
            entry.set("bytes", row[1].as_int());
            entry.set("packets", row[2].as_int());
            traffic.push_back(std::move(entry));
          }
        }
        j.set("traffic", std::move(traffic));

        Json names(JsonArray{});
        if (auto* dns = controller().component_as<DnsProxy>(DnsProxy::kName)) {
          for (const auto& name : dns->names_for(mac.value())) {
            names.push_back(Json(name));
          }
        }
        j.set("resolved_names", std::move(names));

        auto link = db_.query(
            "SELECT mac, last(rssi), sum(retries), sum(tx) FROM Links [RANGE " +
            std::to_string(window) + " SECONDS] WHERE mac = '" + mac_text +
            "' GROUP BY mac");
        if (link.ok() && !link.value().rows.empty()) {
          Json wireless(JsonObject{});
          wireless.set("rssi_dbm", link.value().rows[0][1].as_real());
          wireless.set("retries", link.value().rows[0][2].as_int());
          wireless.set("tx", link.value().rows[0][3].as_int());
          j.set("wireless", std::move(wireless));
        } else {
          j.set("wireless", nullptr);  // wired device
        }
        return HttpResponse::json(j);
      });

  auto decide = [this, parse_mac](const Params& p, DeviceState state) {
    auto mac = parse_mac(p);
    if (!mac) return HttpResponse::bad_request(mac.error().message);
    registry_.set_state(mac.value(), state, controller().loop().now());
    if (state == DeviceState::Permitted) metrics_.permits.inc();
    if (state == DeviceState::Denied) metrics_.denies.inc();
    const DeviceRecord* rec = registry_.find(mac.value());
    if (desired_ != nullptr && rec != nullptr) {
      auto& intent = desired_->state(rec->dpid).device(rec->mac.to_string());
      intent.admission = state == DeviceState::Permitted
                             ? reconcile::DeviceIntent::Admission::Permitted
                             : reconcile::DeviceIntent::Admission::Denied;
      if (desired_changed_) desired_changed_(rec->dpid);
    }
    return HttpResponse::json(device_json(*rec));
  };
  router_.add("POST", "/api/devices/:mac/permit",
              [decide](const HttpRequest&, const Params& p) {
                return decide(p, DeviceState::Permitted);
              });
  router_.add("POST", "/api/devices/:mac/deny",
              [decide](const HttpRequest&, const Params& p) {
                return decide(p, DeviceState::Denied);
              });

  router_.add(
      "PUT", "/api/devices/:mac/metadata",
      [this, parse_mac](const HttpRequest& req, const Params& p) {
        auto mac = parse_mac(p);
        if (!mac) return HttpResponse::bad_request(mac.error().message);
        auto body = req.json();
        if (!body) return HttpResponse::bad_request(body.error().message);
        const Json& j = body.value();
        if (j.contains("name")) {
          if (!registry_.set_name(mac.value(), j["name"].as_string(),
                                  controller().loop().now())) {
            return HttpResponse::not_found();
          }
        }
        if (j.contains("tags")) {
          std::vector<std::string> tags;
          for (const auto& t : j["tags"].as_array()) {
            if (t.is_string()) tags.push_back(t.as_string());
          }
          if (desired_ != nullptr) {
            const DeviceRecord* rec = registry_.find(mac.value());
            const nox::DatapathId dpid =
                rec != nullptr ? rec->dpid : registry_.default_dpid();
            desired_->state(dpid).device(mac.value().to_string()).tags = tags;
            if (desired_changed_) desired_changed_(dpid);
          }
          policy_.set_tags(mac.value().to_string(), std::move(tags));
        }
        const DeviceRecord* rec = registry_.find(mac.value());
        if (rec == nullptr) return HttpResponse::not_found();
        return HttpResponse::json(device_json(*rec));
      });

  router_.add("GET", "/api/leases", [this](const HttpRequest&, const Params&) {
    JsonArray arr;
    for (const auto* rec : registry_.all()) {
      if (!rec->lease) continue;
      Json j(JsonObject{});
      j.set("mac", rec->mac.to_string());
      j.set("ip", rec->lease->ip.to_string());
      j.set("hostname", rec->lease->hostname);
      j.set("expires_at", static_cast<std::int64_t>(rec->lease->expires_at));
      arr.push_back(std::move(j));
    }
    return HttpResponse::json(Json(std::move(arr)));
  });

  router_.add("GET", "/api/policies", [this](const HttpRequest&, const Params&) {
    JsonArray arr;
    for (const auto* doc : policy_.policies()) arr.push_back(doc->to_json());
    return HttpResponse::json(Json(std::move(arr)));
  });

  router_.add("POST", "/api/policies",
              [this](const HttpRequest& req, const Params&) {
                auto body = req.json();
                if (!body) return HttpResponse::bad_request(body.error().message);
                auto doc = policy::PolicyDocument::from_json(body.value());
                if (!doc) return HttpResponse::bad_request(doc.error().message);
                policy_.install(std::move(doc).take());
                return HttpResponse::json(Json(JsonObject{}), 201);
              });

  router_.add("DELETE", "/api/policies/:id",
              [this](const HttpRequest&, const Params& p) {
                if (!policy_.uninstall(p.at("id"))) {
                  return HttpResponse::not_found();
                }
                return HttpResponse::text("", 204);
              });

  // udev hook: the platform posts the key's filesystem image as JSON
  // {"files": {"homework/token": "...", ...}}. Returns a handle used by the
  // removal hook.
  router_.add(
      "POST", "/api/usb/insert", [this](const HttpRequest& req, const Params&) {
        auto body = req.json();
        if (!body) return HttpResponse::bad_request(body.error().message);
        policy::UsbKeyImage image;
        for (const auto& [path, contents] : body.value()["files"].as_object()) {
          if (contents.is_string()) image.write_file(path, contents.as_string());
        }
        const auto slot = policy_.usb().insert(image);
        if (slot == 0) {
          return HttpResponse::bad_request("not a valid policy key");
        }
        metrics_.usb_inserts.inc();
        const std::uint32_t handle = next_usb_handle_++;
        usb_slots_[handle] = slot;
        Json j(JsonObject{});
        j.set("handle", static_cast<std::int64_t>(handle));
        return HttpResponse::json(j, 201);
      });

  router_.add("POST", "/api/usb/remove/:slot",
              [this](const HttpRequest&, const Params& p) {
                std::uint32_t handle = 0;
                try {
                  handle = static_cast<std::uint32_t>(std::stoul(p.at("slot")));
                } catch (...) {
                  return HttpResponse::bad_request("bad slot handle");
                }
                auto it = usb_slots_.find(handle);
                if (it == usb_slots_.end()) return HttpResponse::not_found();
                policy_.usb().remove(it->second);
                usb_slots_.erase(it);
                metrics_.usb_removes.inc();
                return HttpResponse::text("", 204);
              });

  router_.add("GET", "/api/query", [this](const HttpRequest& req, const Params&) {
    auto it = req.query.find("q");
    if (it == req.query.end()) {
      return HttpResponse::bad_request("missing q parameter");
    }
    auto rs = db_.query(it->second);
    if (!rs) return HttpResponse::bad_request(rs.error().message);
    Json j(JsonObject{});
    JsonArray cols;
    for (const auto& c : rs.value().columns) cols.emplace_back(c);
    j.set("columns", Json(std::move(cols)));
    JsonArray rows;
    for (const auto& row : rs.value().rows) {
      JsonArray out;
      for (const auto& v : row) {
        switch (v.type()) {
          case hwdb::ColumnType::Int:
          case hwdb::ColumnType::Ts:
            out.emplace_back(static_cast<std::int64_t>(v.as_int()));
            break;
          case hwdb::ColumnType::Real:
            out.emplace_back(v.as_real());
            break;
          case hwdb::ColumnType::Text:
            out.emplace_back(v.as_text());
            break;
        }
      }
      rows.emplace_back(std::move(out));
    }
    j.set("rows", Json(std::move(rows)));
    return HttpResponse::json(j);
  });
}

}  // namespace hw::homework
