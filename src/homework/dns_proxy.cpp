#include "homework/dns_proxy.hpp"

#include "net/packet.hpp"
#include "util/logging.hpp"

namespace hw::homework {
namespace {
constexpr std::string_view kLog = "dns";
}  // namespace

DnsProxy::DnsProxy(Config config, DeviceRegistry& registry,
                   policy::PolicyEngine& policy)
    : Component(kName), config_(config), registry_(registry), policy_(policy) {}

void DnsProxy::contribute_flows(nox::DatapathId, nox::FlowIntentSink& sink) {
  // All DNS traffic (queries out, answers back) comes to the controller.
  nox::FlowIntent query;
  query.key = "dns:query";
  query.match = ofp::Match::any();
  query.match.with_dl_type(static_cast<std::uint16_t>(net::EtherType::Ipv4))
      .with_nw_proto(static_cast<std::uint8_t>(net::IpProto::Udp))
      .with_tp_dst(net::kDnsPort);
  query.actions = ofp::send_to_controller(1024);
  query.priority = 0xfffe;
  sink.add(std::move(query));

  nox::FlowIntent answer;
  answer.key = "dns:answer";
  answer.match = ofp::Match::any();
  answer.match.with_dl_type(static_cast<std::uint16_t>(net::EtherType::Ipv4))
      .with_nw_proto(static_cast<std::uint8_t>(net::IpProto::Udp))
      .with_tp_src(net::kDnsPort);
  answer.actions = ofp::send_to_controller(1024);
  answer.priority = 0xfffe;
  sink.add(std::move(answer));
}

nox::Disposition DnsProxy::handle_packet_in(const nox::PacketInEvent& ev) {
  if (!ev.packet.is_dns()) return nox::Disposition::Continue;
  if (ev.packet.udp->dst_port == net::kDnsPort) {
    handle_query(ev);
  } else {
    handle_response(ev);
  }
  return nox::Disposition::Stop;
}

void DnsProxy::handle_query(const nox::PacketInEvent& ev) {
  metrics_.queries.inc();
  const MacAddress device = ev.packet.eth.src;
  registry_.note_location(ev.dpid, device, ev.msg.in_port);

  const DeviceRecord* rec = registry_.find(ev.dpid, device);
  if (rec == nullptr || rec->state != DeviceState::Permitted || !rec->lease) {
    metrics_.dropped_unpermitted.inc();
    return;  // drop silently; unadmitted devices get no resolution
  }

  auto msg = net::DnsMessage::parse(ev.packet.l4_payload);
  if (!msg || msg.value().questions.empty()) return;
  const auto& query = msg.value();
  const std::string qname = query.questions.front().name;

  if (!policy_.domain_allowed(ev.dpid, device.to_string(), qname)) {
    metrics_.blocked.inc();
    auto refusal = query.make_response();
    refusal.rcode = net::DnsRcode::NxDomain;
    send_to_device(ev.dpid, device, ev.msg.in_port, ev.packet.ip->src,
                   ev.packet.udp->src_port, refusal);
    HW_LOG_INFO(kLog, "blocked %s for %s", qname.c_str(),
                device.to_string().c_str());
    return;
  }

  // Remember where the answer should go, then relay upstream unchanged
  // (transparent proxy: source stays the client, so the upstream reply
  // comes back through our port-53 interception rule).
  pending_[{ev.dpid, ev.packet.ip->src.value(), query.id}] =
      PendingQuery{device, ev.msg.in_port, qname};
  metrics_.forwarded.inc();
  relay_upstream(ev.dpid, ev.packet);
}

void DnsProxy::relay_upstream(nox::DatapathId dpid,
                              const net::ParsedPacket& packet) {
  ofp::PacketOut po;
  po.in_port = ofp::port_no(ofp::Port::None);
  po.actions = {ofp::ActionSetDlSrc{config_.router_mac},
                ofp::ActionSetDlDst{config_.upstream_gw_mac},
                ofp::ActionOutput{config_.uplink_port, 0}};
  // Rebuild the original frame from the parsed packet (the packet-in data
  // may be the full frame; reconstruct to be robust to truncation).
  po.data = net::build_udp(packet.eth.src, packet.eth.dst, packet.ip->src,
                           packet.ip->dst, packet.udp->src_port,
                           packet.udp->dst_port, packet.l4_payload);
  controller().send_packet_out(dpid, po);
}

void DnsProxy::handle_response(const nox::PacketInEvent& ev) {
  auto msg = net::DnsMessage::parse(ev.packet.l4_payload);
  if (!msg) return;
  const auto& resp = msg.value();

  // Is this the answer to one of our own reverse lookups?
  if (ev.packet.ip->dst == config_.router_ip) {
    auto it = reverse_pending_.find(resp.id);
    if (it == reverse_pending_.end()) return;
    PendingReverse pending = std::move(it->second);
    reverse_pending_.erase(it);
    controller().loop().cancel(pending.timeout);

    std::string name;
    for (const auto& rec : resp.answers) {
      if (rec.rtype == net::DnsType::Ptr) {
        name = rec.target;
        break;
      }
    }
    FlowVerdict verdict = FlowVerdict::Deny;
    if (!name.empty() &&
        policy_.domain_allowed(pending.dpid, pending.device.to_string(),
                               name)) {
      verdict = FlowVerdict::Allow;
      // Cache so subsequent flows to this address pass synchronously.
      auto& entry = cache_[{pending.dpid, pending.device}][pending.target];
      entry.names.insert(name);
      entry.expires_at = controller().loop().now() +
                         static_cast<Duration>(config_.cache_ttl_secs) * kSecond;
      metrics_.cache_entries.inc();
    }
    pending.cb(verdict);
    return;
  }

  // Otherwise: an upstream answer for a client query we relayed.
  auto it = pending_.find({ev.dpid, ev.packet.ip->dst.value(), resp.id});
  if (it == pending_.end()) return;
  const PendingQuery pending = it->second;
  pending_.erase(it);

  record_answers(ev.dpid, pending.device, resp);
  metrics_.responses.inc();

  const DeviceRecord* rec = registry_.find(ev.dpid, pending.device);
  if (rec == nullptr || !rec->lease) return;
  send_to_device(ev.dpid, pending.device, pending.device_port, rec->lease->ip,
                 ev.packet.udp->dst_port, resp);
}

void DnsProxy::record_answers(nox::DatapathId dpid, MacAddress device,
                              const net::DnsMessage& msg) {
  const Timestamp expiry =
      controller().loop().now() +
      static_cast<Duration>(config_.cache_ttl_secs) * kSecond;
  std::set<std::string> names;
  for (const auto& q : msg.questions) names.insert(q.name);
  for (const auto& rec : msg.answers) {
    if (rec.rtype == net::DnsType::Cname) {
      names.insert(rec.target);
      continue;
    }
    if (rec.rtype != net::DnsType::A) continue;
    auto& entry = cache_[{dpid, device}][rec.address];
    entry.names.insert(rec.name);
    entry.names.insert(names.begin(), names.end());
    entry.expires_at = expiry;
    metrics_.cache_entries.inc();
  }
}

void DnsProxy::send_to_device(nox::DatapathId dpid, MacAddress device_mac,
                              std::uint16_t device_port, Ipv4Address device_ip,
                              std::uint16_t device_udp_port,
                              const net::DnsMessage& msg) {
  ofp::PacketOut po;
  po.in_port = ofp::port_no(ofp::Port::None);
  po.actions = ofp::output_to(device_port);
  po.data = net::build_udp(config_.router_mac, device_mac, config_.router_ip,
                           device_ip, net::kDnsPort, device_udp_port,
                           msg.serialize());
  controller().send_packet_out(dpid, po);
}

DnsProxy::FlowVerdict DnsProxy::check_flow(nox::DatapathId dpid,
                                           MacAddress device,
                                           Ipv4Address dst) const {
  const auto restriction = policy_.restriction_for(dpid, device.to_string());
  if (restriction.network_blocked) return FlowVerdict::Deny;
  if (restriction.unrestricted()) return FlowVerdict::Allow;

  auto dev_it = cache_.find({dpid, device});
  if (dev_it != cache_.end()) {
    auto it = dev_it->second.find(dst);
    if (it != dev_it->second.end() &&
        it->second.expires_at > controller().loop().now()) {
      for (const auto& name : it->second.names) {
        if (restriction.domain_allowed(name)) return FlowVerdict::Allow;
      }
      return FlowVerdict::Deny;  // known names, none allowed
    }
  }
  return FlowVerdict::Unknown;  // "flow not matching previously requested names"
}

void DnsProxy::reverse_lookup(nox::DatapathId dpid, MacAddress device,
                              Ipv4Address dst,
                              std::function<void(FlowVerdict)> cb) {
  metrics_.reverse_lookups.inc();
  const std::uint16_t id = next_reverse_id_++;
  auto query = net::DnsMessage::query(id, net::DnsMessage::reverse_name(dst),
                                      net::DnsType::Ptr);

  PendingReverse pending;
  pending.dpid = dpid;
  pending.device = device;
  pending.target = dst;
  pending.cb = std::move(cb);
  pending.timeout = controller().loop().schedule(3 * kSecond, [this, id] {
    auto it = reverse_pending_.find(id);
    if (it == reverse_pending_.end()) return;
    auto cb = std::move(it->second.cb);
    reverse_pending_.erase(it);
    cb(FlowVerdict::Deny);  // fail closed
  });
  reverse_pending_.emplace(id, std::move(pending));

  ofp::PacketOut po;
  po.in_port = ofp::port_no(ofp::Port::None);
  po.actions = {ofp::ActionOutput{config_.uplink_port, 0}};
  po.data = net::build_udp(config_.router_mac, config_.upstream_gw_mac,
                           config_.router_ip, config_.upstream_dns, 5353,
                           net::kDnsPort, query.serialize());
  controller().send_packet_out(dpid, po);
}

std::vector<std::string> DnsProxy::names_for(nox::DatapathId dpid,
                                             MacAddress device) const {
  std::vector<std::string> out;
  auto it = cache_.find({dpid, device});
  if (it == cache_.end()) return out;
  std::set<std::string> names;
  for (const auto& [_, entry] : it->second) {
    names.insert(entry.names.begin(), entry.names.end());
  }
  out.assign(names.begin(), names.end());
  return out;
}

void DnsProxy::flush_cache() { cache_.clear(); }

}  // namespace hw::homework
