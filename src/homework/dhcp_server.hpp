// The Homework DHCP server NOX module. "The first manages DHCP allocations
// to ensure that all traffic flows are visible to software running on the
// router, avoiding direct Ethernet-layer communication between devices."
// (paper §2). Admission is gated on the DeviceRegistry state that the
// Figure 3 control interface manipulates; with isolation enabled, leases
// carry a /32 netmask so every client routes all traffic via the router.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>

#include "homework/device_registry.hpp"
#include "net/dhcp.hpp"
#include "nox/component.hpp"
#include "nox/controller.hpp"
#include "snapshot/snapshottable.hpp"
#include "telemetry/metrics.hpp"

namespace hw::homework {

/// Snapshot view over the module's telemetry instruments.
struct DhcpServerStats {
  std::uint64_t discovers = 0;
  std::uint64_t offers = 0;
  std::uint64_t requests = 0;
  std::uint64_t acks = 0;
  std::uint64_t naks = 0;
  std::uint64_t releases = 0;
  std::uint64_t declines = 0;
  std::uint64_t ignored_pending = 0;  // silent treatment of pending devices
  std::uint64_t pool_exhausted = 0;
  std::uint64_t expired = 0;
  /// Offered-but-never-ACKed allocations released back into the pool after
  /// offer_hold — the recovery path from a spoofed-DISCOVER starvation.
  std::uint64_t offers_expired = 0;
  /// Retransmitted DISCOVER/REQUEST messages (lossy network re-sends)
  /// answered idempotently from the existing allocation.
  std::uint64_t retransmits = 0;
};

class DhcpServer final : public nox::Component, public snapshot::Snapshottable {
 public:
  struct Config {
    Ipv4Address server_ip{192, 168, 1, 1};
    Ipv4Subnet subnet{Ipv4Address{192, 168, 1, 0}, 24};
    Ipv4Address pool_start{192, 168, 1, 100};
    Ipv4Address pool_end{192, 168, 1, 199};
    std::uint32_t lease_secs = 3600;
    MacAddress router_mac = MacAddress::from_index(0xffffff);
    /// Router-mediated isolation: /32 netmask in leases.
    bool isolate = true;
    Duration expiry_sweep = 5 * kSecond;
    /// How long an offered-but-never-ACKed allocation is held before the
    /// sweep returns it to the pool. Leased allocations are exempt — once a
    /// device ACKs, its address stays sticky across release/expiry as
    /// before. This bounds how long a spoofed-MAC DISCOVER flood can pin
    /// the scope.
    Duration offer_hold = 10 * kSecond;
  };

  static constexpr const char* kName = "dhcp-server";

  DhcpServer(Config config, DeviceRegistry& registry);
  ~DhcpServer() override;

  void install(nox::Controller& ctl) override;
  void contribute_flows(nox::DatapathId dpid,
                        nox::FlowIntentSink& sink) override;
  nox::Disposition handle_packet_in(const nox::PacketInEvent& ev) override;

  [[nodiscard]] DhcpServerStats stats() const {
    return {metrics_.discovers.value(),
            metrics_.offers.value(),
            metrics_.requests.value(),
            metrics_.acks.value(),
            metrics_.naks.value(),
            metrics_.releases.value(),
            metrics_.declines.value(),
            metrics_.ignored_pending.value(),
            metrics_.pool_exhausted.value(),
            metrics_.expired.value(),
            metrics_.offers_expired.value(),
            metrics_.retransmits.value()};
  }
  [[nodiscard]] const Config& config() const { return config_; }
  /// Current address allocation in `dpid`'s scope, incl. offered-not-acked.
  [[nodiscard]] std::optional<Ipv4Address> allocation(nox::DatapathId dpid,
                                                      MacAddress mac) const;
  [[nodiscard]] std::optional<Ipv4Address> allocation(MacAddress mac) const {
    return allocation(registry_.default_dpid(), mac);
  }
  /// Runs one lease-expiry sweep immediately (normally timer-driven).
  void sweep_expiry();

  /// Observer for allocation lifecycle: fired with the address on ACK and
  /// with nullopt on release/decline/expiry. The goal-state layer mirrors
  /// scope bindings into desired state through this.
  using AllocationObserver =
      std::function<void(nox::DatapathId, MacAddress, std::optional<Ipv4Address>)>;
  void set_allocation_observer(AllocationObserver fn) {
    allocation_observer_ = std::move(fn);
  }
  /// Re-adopts `ip` as `mac`'s allocation in `dpid`'s scope (reconciler
  /// lease fixup after divergence). Returns true if the scope changed.
  bool adopt_allocation(nox::DatapathId dpid, MacAddress mac, Ipv4Address ip);

  // -- Snapshottable ('DHCP' chunk, v3: offer timestamps) ---------------------
  // Captures each home's allocation map (with offer timestamps), and the
  // declined-address set; lease expiry deadlines live in DeviceRegistry
  // records and are restored there. v2 images (no version sentinel, no
  // offer timestamps) still decode — their allocations restore as sticky.
  void save(snapshot::Writer& w) const override;
  Status restore(const snapshot::Reader& r) override;

 private:
  void process(nox::DatapathId dpid, std::uint16_t in_port,
               const net::ParsedPacket& packet, const net::DhcpMessage& msg);
  void send_reply(nox::DatapathId dpid, std::uint16_t port,
                  const net::DhcpMessage& reply, MacAddress client_mac);
  net::DhcpMessage make_reply(const net::DhcpMessage& req,
                              net::DhcpMessageType type, Ipv4Address yiaddr) const;
  /// Sticky allocation: reuse the previous address when possible. Each home
  /// datapath draws from its own copy of the pool. `now` stamps the offer
  /// for the unclaimed-offer hold.
  std::optional<Ipv4Address> allocate(nox::DatapathId dpid, MacAddress mac,
                                      Timestamp now);

  Config config_;
  DeviceRegistry& registry_;
  struct Instruments {
    telemetry::Counter discovers{"homework.dhcp.discovers"};
    telemetry::Counter offers{"homework.dhcp.offers"};
    telemetry::Counter requests{"homework.dhcp.requests"};
    telemetry::Counter acks{"homework.dhcp.acks"};
    telemetry::Counter naks{"homework.dhcp.naks"};
    telemetry::Counter releases{"homework.dhcp.releases"};
    telemetry::Counter declines{"homework.dhcp.declines"};
    telemetry::Counter ignored_pending{"homework.dhcp.ignored_pending"};
    telemetry::Counter pool_exhausted{"homework.dhcp.pool_exhausted"};
    telemetry::Counter expired{"homework.dhcp.expired"};
    telemetry::Counter offers_expired{"homework.dhcp.offers_expired"};
    telemetry::Counter retransmits{"homework.dhcp.retransmits"};
  } metrics_;
  /// One address binding: the allocation plus when it was offered.
  /// offered_at == 0 marks an ACKed (leased at least once) allocation,
  /// which is sticky forever; a non-zero offered_at means the offer was
  /// never claimed and the sweep may reclaim it after offer_hold.
  struct Binding {
    Ipv4Address ip;
    Timestamp offered_at = 0;
  };
  /// One home's address-space state. Homes behind different datapaths use
  /// identical (overlapping) private pools — exactly why scoping by dpid is
  /// load-bearing under a shared controller.
  struct Scope {
    std::map<MacAddress, Binding> allocations;
    std::set<Ipv4Address> declined;  // addresses a client reported in use
    /// Mirror of the allocated addresses so an exhaustion-era flood pays
    /// O(pool log n) per DISCOVER instead of O(pool * allocations).
    std::set<Ipv4Address> in_use;
  };
  std::map<nox::DatapathId, Scope> scopes_;
  std::unique_ptr<sim::PeriodicTimer> expiry_timer_;
  AllocationObserver allocation_observer_;
};

}  // namespace hw::homework
