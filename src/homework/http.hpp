// Minimal HTTP/1.1 message codec and path router for the control API's
// "simple RESTful web interface" (paper §2). Transport-independent: the
// router maps a parsed request to a response; tests and in-home interfaces
// drive it directly, and the wire codec keeps it faithful to HTTP clients.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/result.hpp"

namespace hw::homework {

struct HttpRequest {
  std::string method = "GET";
  std::string path = "/";                       // decoded, no query string
  std::map<std::string, std::string> query;     // ?k=v&k2=v2
  std::map<std::string, std::string> headers;   // lower-case keys
  std::string body;

  /// Parses a full HTTP/1.1 request (start-line + headers + body per
  /// Content-Length).
  static Result<HttpRequest> parse(std::string_view text);
  [[nodiscard]] std::string serialize() const;

  /// Parses the body as JSON.
  [[nodiscard]] Result<Json> json() const { return Json::parse(body); }
};

struct HttpResponse {
  int status = 200;
  std::map<std::string, std::string> headers;
  std::string body;

  static HttpResponse json(const Json& value, int status = 200);
  static HttpResponse text(std::string body, int status = 200);
  static HttpResponse error(int status, const std::string& message);
  static HttpResponse not_found() { return error(404, "not found"); }
  static HttpResponse bad_request(const std::string& msg) {
    return error(400, msg);
  }

  [[nodiscard]] std::string serialize() const;
  static Result<HttpResponse> parse(std::string_view text);
  [[nodiscard]] Result<Json> json_body() const { return Json::parse(body); }
};

const char* http_status_reason(int status);

/// Route patterns use ":name" segments: "/api/devices/:mac/permit".
class HttpRouter {
 public:
  using Params = std::map<std::string, std::string>;
  using Handler =
      std::function<HttpResponse(const HttpRequest&, const Params&)>;

  void add(std::string method, std::string pattern, Handler handler);
  [[nodiscard]] HttpResponse handle(const HttpRequest& req) const;
  [[nodiscard]] std::size_t route_count() const { return routes_.size(); }

 private:
  struct Route {
    std::string method;
    std::vector<std::string> segments;  // ":x" marks a parameter
    Handler handler;
  };
  static bool match(const Route& route, const std::string& path, Params& params);

  std::vector<Route> routes_;
};

}  // namespace hw::homework
