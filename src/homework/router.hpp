// HomeworkRouter: the whole of the paper's Figure 5 wired together — the
// OpenFlow datapath (Open vSwitch stand-in), the NOX controller carrying the
// DHCP server, DNS proxy, forwarding, event-export and control-API modules,
// the hwdb measurement plane, the policy engine with its USB monitor, the
// wireless measurement map, and the upstream ISP cloud on the uplink port.
//
// Devices (sim::Host) attach to numbered ports over duplex links; wireless
// devices additionally register with the wireless map so their RSSI and
// retries appear in the Links table.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "homework/control_api.hpp"
#include "homework/dhcp_server.hpp"
#include "homework/dns_proxy.hpp"
#include "homework/event_export.hpp"
#include "homework/forwarding.hpp"
#include "homework/metrics_export.hpp"
#include "homework/upstream.hpp"
#include "homework/wireless_map.hpp"
#include "hwdb/database.hpp"
#include "nox/controller.hpp"
#include "nox/liveness.hpp"
#include "openflow/datapath.hpp"
#include "policy/engine.hpp"
#include "reconcile/desired_state.hpp"
#include "reconcile/reconciler.hpp"
#include "sim/fault_injector.hpp"
#include "sim/host.hpp"
#include "sim/trace.hpp"
#include "snapshot/coordinator.hpp"
#include "telemetry/metrics.hpp"

namespace hw::homework {

class HomeworkRouter {
 public:
  /// How long start() runs the loop to let the OpenFlow handshake and module
  /// table setup settle. Also the canonical snapshot phase offset: periodic
  /// captures taken at k * interval + kBootSettle land after the
  /// integer-second module timer cascades (liveness echo, hwdb RPC acks)
  /// have drained, so a resumed home whose loop originates at
  /// captured_at - kBootSettle reaches the capture instant exactly at the
  /// end of its own boot settle.
  static constexpr Duration kBootSettle = 10 * kMillisecond;

  struct Config {
    Ipv4Address router_ip{192, 168, 1, 1};
    Ipv4Subnet subnet{Ipv4Address{192, 168, 1, 0}, 24};
    Ipv4Address pool_start{192, 168, 1, 100};
    Ipv4Address pool_end{192, 168, 1, 199};
    std::uint32_t lease_secs = 3600;
    /// Unclaimed-DHCP-offer hold before the sweep reclaims the address
    /// (DhcpServer::Config::offer_hold).
    Duration dhcp_offer_hold = 10 * kSecond;
    MacAddress router_mac = MacAddress::from_index(0xffffff);
    DeviceRegistry::AdmissionDefault admission =
        DeviceRegistry::AdmissionDefault::Pending;
    bool isolate = true;
    std::uint16_t flow_idle_timeout = 10;
    Upstream::Config upstream;
    sim::WirelessConfig wireless;
    sim::Position ap_position{5, 5};
    ofp::Datapath::Config datapath;
    EventExport::Config event_export;
    MetricsExport::Config metrics_export;
    nox::LivenessMonitor::Config liveness;
    /// Secure-channel transport: InProc delivers whole messages through the
    /// loop; Stream runs real OpenFlow wire framing over a byte pipe
    /// (partial/coalesced reads, mid-message cuts on faults).
    enum class Transport { InProc, Stream };
    Transport transport = Transport::InProc;
    Duration channel_latency = 100;  // controller channel, microseconds
    /// Extra per-send jitter on the Stream transport (0 on InProc).
    Duration channel_jitter = 0;
    /// Max bytes per stream read (0 = unbounded); small values force the
    /// framer to reassemble messages from partial reads.
    std::size_t channel_mtu = 0;
    std::uint16_t uplink_port = 1;
    /// How (re)joining datapaths get their flow setup. Replay blindly
    /// re-sends every module's flows (the legacy resync). Reconcile runs the
    /// goal-state reconciler: desired state is diffed against a flow-stats
    /// readback and only the delta is sent.
    enum class Resync { Replay, Reconcile };
    Resync resync = Resync::Reconcile;
    /// Records every frame crossing the uplink into uplink_trace(), from
    /// which sim::write_pcap produces a tcpdump-compatible capture.
    bool capture_uplink = false;
    /// Ring cap on the uplink trace (0 = unbounded); dropped frames are
    /// counted in Trace::dropped().
    std::size_t uplink_trace_max = 0;
  };

  /// `metrics` is the registry every instrument of this router — subsystems
  /// and leaf modules alike — attaches to. It defaults to the calling
  /// thread's active registry, so existing single-home callers land in the
  /// process-wide registry while the fleet runner hands each home its own.
  /// The router passes it explicitly to the subsystems it constructs and
  /// additionally installs it as the thread's scoped registry for the
  /// duration of construction/attachment, so modules without a registry
  /// parameter (DHCP, DNS, links, …) inherit it too.
  HomeworkRouter(sim::EventLoop& loop, Rng& rng, Config config,
                 telemetry::MetricRegistry& metrics =
                     telemetry::MetricRegistry::current());
  ~HomeworkRouter();
  HomeworkRouter(const HomeworkRouter&) = delete;
  HomeworkRouter& operator=(const HomeworkRouter&) = delete;

  /// Boots the platform: starts the controller components and completes the
  /// OpenFlow handshake (runs the loop briefly).
  void start();

  /// Attachment of a device on the next free port. Wireless devices give a
  /// position in the home; wired pass std::nullopt.
  struct Attachment {
    std::uint16_t port = 0;
    sim::DuplexLink* link = nullptr;
  };
  Attachment attach_device(sim::Host& host,
                           std::optional<sim::Position> position,
                           sim::LinkChannel::Config link_config = {});
  void detach_device(const Attachment& attachment, MacAddress mac);

  /// Moves a wireless device (the Figure 2 artifact walks around the house).
  void move_device(MacAddress mac, sim::Position position);

  // -- Subsystem access --------------------------------------------------------
  [[nodiscard]] sim::EventLoop& loop() { return loop_; }
  [[nodiscard]] ofp::Datapath& datapath() { return *datapath_; }
  [[nodiscard]] ofp::SecureLink& connection() { return *connection_; }
  [[nodiscard]] nox::Controller& controller() { return *controller_; }
  [[nodiscard]] nox::LivenessMonitor& liveness() { return *liveness_; }
  [[nodiscard]] hwdb::Database& db() { return *db_; }
  [[nodiscard]] DeviceRegistry& registry() { return *registry_; }
  [[nodiscard]] policy::PolicyEngine& policy() { return *policy_; }
  [[nodiscard]] WirelessMap& wireless() { return *wireless_; }
  [[nodiscard]] Upstream& upstream() { return *upstream_; }
  [[nodiscard]] DhcpServer& dhcp() { return *dhcp_; }
  [[nodiscard]] DnsProxy& dns() { return *dns_; }
  [[nodiscard]] Forwarding& forwarding() { return *forwarding_; }
  [[nodiscard]] EventExport& event_export() { return *export_; }
  [[nodiscard]] MetricsExport& metrics_export() { return *metrics_export_; }
  [[nodiscard]] ControlApi& control_api() { return *control_api_; }
  /// Goal-state store backing the reconciler; null in Replay mode.
  [[nodiscard]] reconcile::DesiredStore* desired_store() {
    return desired_.get();
  }
  /// The reconciler component; null in Replay mode.
  [[nodiscard]] reconcile::Reconciler* reconciler() { return reconciler_; }
  [[nodiscard]] telemetry::MetricRegistry& metrics() { return metrics_; }
  [[nodiscard]] const Config& config() const { return config_; }
  /// Uplink capture (points "uplink-tx"/"uplink-rx"); empty unless
  /// config.capture_uplink was set.
  [[nodiscard]] sim::Trace& uplink_trace() { return uplink_trace_; }

  /// Checkpoint/restore coordinator with the router's state layers
  /// pre-registered ("flow-table", "hwdb", "dhcp", "registry", "policy",
  /// and — in Reconcile mode — "desired").
  /// Callers append their own layers (RNG streams, telemetry — telemetry
  /// last) before capturing or restoring.
  [[nodiscard]] snapshot::SnapshotCoordinator& snapshots() { return *snapshots_; }

  /// Restarts the datapath and restores its flow table from the last
  /// captured snapshot instead of cold-wiping; falls back to a cold restart
  /// when no snapshot exists. The controller's liveness resync then heals the
  /// table: in Reconcile mode one reconcile round reads the restored table
  /// back and sends only the delta; in Replay mode the legacy path re-sends
  /// every module's (idempotent) flow setup.
  Status warm_restart();

  /// Registers the router's fault surfaces with a chaos injector: the
  /// controller secure channel (ControllerOutage severs/restores it) and the
  /// datapath (DatapathRestart cold-boots it). Device links are registered
  /// by the caller per attachment (it owns their names).
  void attach_faults(sim::FaultInjector& faults);

 private:
  /// Wireless TX accounting shim between a device link and its port.
  class WirelessIngress;
  /// Trace-recording shim (pcap capture points).
  class TraceShim;

  sim::EventLoop& loop_;
  Rng& rng_;
  Config config_;
  telemetry::MetricRegistry& metrics_;

  std::unique_ptr<hwdb::Database> db_;
  std::unique_ptr<DeviceRegistry> registry_;
  std::unique_ptr<policy::PolicyEngine> policy_;
  std::unique_ptr<WirelessMap> wireless_;
  std::unique_ptr<ofp::Datapath> datapath_;
  std::unique_ptr<ofp::SecureLink> connection_;
  std::unique_ptr<nox::Controller> controller_;
  std::unique_ptr<Upstream> upstream_;

  // Raw module pointers (owned by the controller).
  DhcpServer* dhcp_ = nullptr;
  DnsProxy* dns_ = nullptr;
  Forwarding* forwarding_ = nullptr;
  EventExport* export_ = nullptr;
  MetricsExport* metrics_export_ = nullptr;
  ControlApi* control_api_ = nullptr;
  nox::LivenessMonitor* liveness_ = nullptr;

  std::unique_ptr<reconcile::DesiredStore> desired_;
  reconcile::Reconciler* reconciler_ = nullptr;  // owned by the controller
  /// Last rate cap pushed per "dpid|mac" (change detection for the QoS hook).
  std::map<std::string, std::uint64_t> applied_qos_;

  std::unique_ptr<snapshot::SnapshotCoordinator> snapshots_;
  std::vector<std::unique_ptr<sim::DuplexLink>> links_;
  std::vector<std::unique_ptr<WirelessIngress>> wireless_shims_;
  sim::Trace uplink_trace_;
  std::vector<std::unique_ptr<TraceShim>> trace_shims_;
  std::uint16_t next_port_ = 2;  // 1 is the uplink
  bool started_ = false;
};

}  // namespace hw::homework
