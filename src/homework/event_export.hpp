// EventExport NOX module: populates the hwdb measurement plane. "Tables used
// are Flows, periodically observed active five-tuples; Links, link-layer
// information, e.g., MAC address and received signal strength (RSSI); and
// Leases, mapping Ethernet to IP address." (paper §2)
//
//   Flows(device, src_ip, dst_ip, proto, sport, dport, app, bytes, packets)
//     — per poll interval, the byte/packet *delta* of each active flow rule
//   Links(mac, rssi, retries, tx)
//     — per poll interval, a fresh RSSI sample and retry/tx deltas
//   Leases(mac, ip, hostname, event, state)
//     — one row per registry event (grant/renew/release/expire/decisions)
#pragma once

#include <map>
#include <memory>

#include "homework/device_registry.hpp"
#include "homework/wireless_map.hpp"
#include "hwdb/database.hpp"
#include "nox/component.hpp"
#include "nox/controller.hpp"
#include "telemetry/metrics.hpp"

namespace hw::homework {

/// Snapshot view over the module's telemetry instruments.
struct EventExportStats {
  std::uint64_t flow_rows = 0;
  std::uint64_t link_rows = 0;
  std::uint64_t lease_rows = 0;
  std::uint64_t stats_polls = 0;
};

class EventExport final : public nox::Component {
 public:
  struct Config {
    Duration flow_poll = kSecond;
    Duration link_poll = kSecond;
    std::size_t flows_capacity = 32768;
    std::size_t links_capacity = 8192;
    std::size_t leases_capacity = 2048;
  };

  static constexpr const char* kName = "event-export";

  /// `wireless` may be null (wired-only deployments skip the Links table).
  EventExport(Config config, hwdb::Database& db, DeviceRegistry& registry,
              WirelessMap* wireless);
  ~EventExport() override;

  void install(nox::Controller& ctl) override;
  void handle_datapath_join(nox::DatapathId dpid,
                            const ofp::FeaturesReply& features) override;
  void handle_flow_removed(nox::DatapathId dpid,
                           const ofp::FlowRemoved& fr) override;

  [[nodiscard]] EventExportStats stats() const {
    return {metrics_.flow_rows.value(),
            metrics_.link_rows.value(),
            metrics_.lease_rows.value(),
            metrics_.stats_polls.value()};
  }
  /// One flow-stats poll cycle (normally timer-driven).
  void poll_flows();
  /// One link sample cycle (normally timer-driven).
  void poll_links();

  /// Creates the three standard tables on `db` (shared with tests).
  static Status create_tables(hwdb::Database& db, const Config& config);

 private:
  void export_flow_stats(const std::vector<ofp::FlowStatsEntry>& entries);
  void on_registry_event(RegistryEvent ev, const DeviceRecord& rec);

  Config config_;
  hwdb::Database& db_;
  DeviceRegistry& registry_;
  WirelessMap* wireless_;
  struct Instruments {
    telemetry::Counter flow_rows{"homework.event_export.flow_rows"};
    telemetry::Counter link_rows{"homework.event_export.link_rows"};
    telemetry::Counter lease_rows{"homework.event_export.lease_rows"};
    telemetry::Counter stats_polls{"homework.event_export.stats_polls"};
  } metrics_;
  std::vector<nox::DatapathId> datapaths_;

  /// Previous cumulative counters per flow (keyed by rendered match).
  struct PrevCounters {
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
  };
  std::map<std::string, PrevCounters> prev_;

  /// Previous cumulative retry/tx counters per station.
  struct PrevLink {
    std::uint64_t retries = 0;
    std::uint64_t tx = 0;
  };
  std::map<MacAddress, PrevLink> prev_link_;

  std::unique_ptr<sim::PeriodicTimer> flow_timer_;
  std::unique_ptr<sim::PeriodicTimer> link_timer_;
};

}  // namespace hw::homework
