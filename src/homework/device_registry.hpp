// Shared device state: every device ever seen on the home network, its
// admission state (the pending/permitted/denied categories of the Figure 3
// control interface), user-supplied metadata, and its current lease if any.
// The DHCP server, DNS proxy, forwarding module and control API all consult
// and update this registry.
//
// Records are keyed by (datapath id, MAC): under a shared controller one
// registry serves many homes, and the same MAC in two homes is two distinct
// devices with independent admission state and leases. Single-home callers
// use the mac-only overloads, which resolve against default_dpid().
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "snapshot/snapshottable.hpp"
#include "util/addr.hpp"
#include "util/types.hpp"

namespace hw::homework {

/// Admission state driven by the Figure 3 drag-to-category interaction.
enum class DeviceState {
  Pending,    // detected, awaiting a decision
  Permitted,  // may obtain a lease and use the network
  Denied,     // DHCP NAKs, traffic dropped
};

const char* to_string(DeviceState s);

struct Lease {
  Ipv4Address ip;
  Timestamp granted_at = 0;
  Timestamp expires_at = 0;
  std::string hostname;
};

struct DeviceRecord {
  std::uint64_t dpid = 0;  // home datapath the device lives behind
  MacAddress mac;
  DeviceState state = DeviceState::Pending;
  std::string name;      // user-supplied metadata ("Tom's Mac Air")
  std::string hostname;  // self-reported via DHCP option 12
  std::optional<Lease> lease;
  /// Switch port the device was last seen on (learned from packet-ins).
  std::optional<std::uint16_t> port;
  Timestamp first_seen = 0;
  Timestamp last_seen = 0;
  std::uint64_t dhcp_requests = 0;
};

/// Registry change events, also exported to hwdb's Leases table.
enum class RegistryEvent {
  Discovered,     // first DHCP message from a new MAC
  StateChanged,   // pending/permitted/denied transition
  LeaseGranted,
  LeaseRenewed,
  LeaseReleased,
  LeaseExpired,
  MetadataChanged,
};

const char* to_string(RegistryEvent e);

class DeviceRegistry final : public snapshot::Snapshottable {
 public:
  using Listener =
      std::function<void(RegistryEvent, const DeviceRecord&)>;

  /// Default admission for never-seen devices (the situated display's
  /// deployment used Pending so users decide; PermitAll matches a stock
  /// home router).
  enum class AdmissionDefault { Pending, PermitAll };

  explicit DeviceRegistry(AdmissionDefault def = AdmissionDefault::Pending)
      : default_(def) {}

  /// The home that mac-only calls refer to. A single-home router sets this
  /// to its datapath id; the shared-controller fleet always passes dpids
  /// explicitly.
  void set_default_dpid(std::uint64_t dpid) { default_dpid_ = dpid; }
  [[nodiscard]] std::uint64_t default_dpid() const { return default_dpid_; }

  /// Notes a DHCP sighting of `mac` behind `dpid`, creating the record if
  /// new. Returns the record (never null).
  DeviceRecord* touch(std::uint64_t dpid, MacAddress mac, Timestamp now,
                      const std::string& hostname);
  DeviceRecord* touch(MacAddress mac, Timestamp now,
                      const std::string& hostname) {
    return touch(default_dpid_, mac, now, hostname);
  }

  [[nodiscard]] const DeviceRecord* find(std::uint64_t dpid,
                                         MacAddress mac) const;
  DeviceRecord* find(std::uint64_t dpid, MacAddress mac);
  /// Mac-only lookup: default home first, then any home (compat for
  /// single-home callers and tests).
  [[nodiscard]] const DeviceRecord* find(MacAddress mac) const;
  DeviceRecord* find(MacAddress mac);

  [[nodiscard]] const DeviceRecord* find_by_ip(std::uint64_t dpid,
                                               Ipv4Address ip) const;
  [[nodiscard]] const DeviceRecord* find_by_ip(Ipv4Address ip) const {
    return find_by_ip(default_dpid_, ip);
  }

  [[nodiscard]] std::vector<const DeviceRecord*> all() const;
  [[nodiscard]] std::vector<const DeviceRecord*> all(std::uint64_t dpid) const;
  [[nodiscard]] std::size_t size() const { return devices_.size(); }

  /// Admission decisions (control API / Figure 3 board).
  bool set_state(std::uint64_t dpid, MacAddress mac, DeviceState state,
                 Timestamp now);
  bool set_state(MacAddress mac, DeviceState state, Timestamp now);
  bool set_name(std::uint64_t dpid, MacAddress mac, std::string name,
                Timestamp now);
  bool set_name(MacAddress mac, std::string name, Timestamp now);

  /// Lease lifecycle (DHCP server).
  void record_lease(std::uint64_t dpid, MacAddress mac, Lease lease,
                    bool renewal, Timestamp now);
  void clear_lease(std::uint64_t dpid, MacAddress mac, bool expired,
                   Timestamp now);

  /// Notes the switch port a packet from `mac` arrived on (no event).
  void note_location(std::uint64_t dpid, MacAddress mac, std::uint16_t port);

  void add_listener(Listener listener) { listeners_.push_back(std::move(listener)); }

  [[nodiscard]] AdmissionDefault admission_default() const { return default_; }
  void set_admission_default(AdmissionDefault def) { default_ = def; }

  // -- Snapshottable ('DREG' chunk, format v2: per-record dpid) ---------------
  // Captures every device record, including admission state, metadata, lease
  // and learned port. Restore replaces the record map directly — listeners
  // stay registered but no Registry events fire.
  void save(snapshot::Writer& w) const override;
  Status restore(const snapshot::Reader& r) override;

 private:
  using Key = std::pair<std::uint64_t, MacAddress>;

  void emit(RegistryEvent e, const DeviceRecord& rec);

  AdmissionDefault default_;
  std::uint64_t default_dpid_ = 1;
  std::map<Key, DeviceRecord> devices_;
  std::vector<Listener> listeners_;
};

}  // namespace hw::homework
