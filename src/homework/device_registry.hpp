// Shared device state: every device ever seen on the home network, its
// admission state (the pending/permitted/denied categories of the Figure 3
// control interface), user-supplied metadata, and its current lease if any.
// The DHCP server, DNS proxy, forwarding module and control API all consult
// and update this registry.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "snapshot/snapshottable.hpp"
#include "util/addr.hpp"
#include "util/types.hpp"

namespace hw::homework {

/// Admission state driven by the Figure 3 drag-to-category interaction.
enum class DeviceState {
  Pending,    // detected, awaiting a decision
  Permitted,  // may obtain a lease and use the network
  Denied,     // DHCP NAKs, traffic dropped
};

const char* to_string(DeviceState s);

struct Lease {
  Ipv4Address ip;
  Timestamp granted_at = 0;
  Timestamp expires_at = 0;
  std::string hostname;
};

struct DeviceRecord {
  MacAddress mac;
  DeviceState state = DeviceState::Pending;
  std::string name;      // user-supplied metadata ("Tom's Mac Air")
  std::string hostname;  // self-reported via DHCP option 12
  std::optional<Lease> lease;
  /// Switch port the device was last seen on (learned from packet-ins).
  std::optional<std::uint16_t> port;
  Timestamp first_seen = 0;
  Timestamp last_seen = 0;
  std::uint64_t dhcp_requests = 0;
};

/// Registry change events, also exported to hwdb's Leases table.
enum class RegistryEvent {
  Discovered,     // first DHCP message from a new MAC
  StateChanged,   // pending/permitted/denied transition
  LeaseGranted,
  LeaseRenewed,
  LeaseReleased,
  LeaseExpired,
  MetadataChanged,
};

const char* to_string(RegistryEvent e);

class DeviceRegistry final : public snapshot::Snapshottable {
 public:
  using Listener =
      std::function<void(RegistryEvent, const DeviceRecord&)>;

  /// Default admission for never-seen devices (the situated display's
  /// deployment used Pending so users decide; PermitAll matches a stock
  /// home router).
  enum class AdmissionDefault { Pending, PermitAll };

  explicit DeviceRegistry(AdmissionDefault def = AdmissionDefault::Pending)
      : default_(def) {}

  /// Notes a DHCP sighting of `mac`, creating the record if new. Returns the
  /// record (never null).
  DeviceRecord* touch(MacAddress mac, Timestamp now, const std::string& hostname);

  [[nodiscard]] const DeviceRecord* find(MacAddress mac) const;
  DeviceRecord* find(MacAddress mac);
  [[nodiscard]] const DeviceRecord* find_by_ip(Ipv4Address ip) const;
  [[nodiscard]] std::vector<const DeviceRecord*> all() const;
  [[nodiscard]] std::size_t size() const { return devices_.size(); }

  /// Admission decisions (control API / Figure 3 board).
  bool set_state(MacAddress mac, DeviceState state, Timestamp now);
  bool set_name(MacAddress mac, std::string name, Timestamp now);

  /// Lease lifecycle (DHCP server).
  void record_lease(MacAddress mac, Lease lease, bool renewal, Timestamp now);
  void clear_lease(MacAddress mac, bool expired, Timestamp now);

  /// Notes the switch port a packet from `mac` arrived on (no event).
  void note_location(MacAddress mac, std::uint16_t port);

  void add_listener(Listener listener) { listeners_.push_back(std::move(listener)); }

  [[nodiscard]] AdmissionDefault admission_default() const { return default_; }
  void set_admission_default(AdmissionDefault def) { default_ = def; }

  // -- Snapshottable ('DREG' chunk) -------------------------------------------
  // Captures every device record, including admission state, metadata, lease
  // and learned port. Restore replaces the record map directly — listeners
  // stay registered but no Registry events fire.
  void save(snapshot::Writer& w) const override;
  Status restore(const snapshot::Reader& r) override;

 private:
  void emit(RegistryEvent e, const DeviceRecord& rec);

  AdmissionDefault default_;
  std::map<MacAddress, DeviceRecord> devices_;
  std::vector<Listener> listeners_;
};

}  // namespace hw::homework
