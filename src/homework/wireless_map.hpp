// Link-layer measurement state for wireless stations: per-station position,
// sampled RSSI and retry counts. This is the source of the hwdb Links table
// ("link-layer information, e.g., MAC address and received signal strength")
// and of the Figure 2 artifact's RSSI and retry modes.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "sim/wireless.hpp"
#include "util/addr.hpp"
#include "util/types.hpp"

namespace hw::homework {

struct StationSample {
  MacAddress mac;
  double rssi_dbm = -100;
  std::uint64_t retries = 0;       // cumulative
  std::uint64_t tx_frames = 0;     // cumulative
  sim::Position position;
};

class WirelessMap {
 public:
  explicit WirelessMap(sim::WirelessConfig config, Rng& rng,
                       sim::Position ap_position = {0, 0})
      : config_(config), rng_(rng), ap_(ap_position) {}

  /// Registers/updates a station at `pos`. Wired devices are simply never
  /// registered here.
  void place_station(MacAddress mac, sim::Position pos);
  void remove_station(MacAddress mac);
  [[nodiscard]] bool has_station(MacAddress mac) const {
    return stations_.count(mac) != 0;
  }

  /// Accounts a transmission: draws retries from the retry probability at
  /// the station's current RSSI. Returns the retry count added.
  std::uint64_t note_transmission(MacAddress mac);

  /// Fresh RSSI sample for one station (empty if unknown/wired).
  [[nodiscard]] std::optional<double> sample_rssi(MacAddress mac);

  /// Snapshot of all stations with fresh RSSI samples.
  [[nodiscard]] std::vector<StationSample> sample_all();

  [[nodiscard]] const sim::WirelessConfig& config() const { return config_; }
  [[nodiscard]] sim::Position ap_position() const { return ap_; }

 private:
  struct Station {
    sim::Position pos;
    std::uint64_t retries = 0;
    std::uint64_t tx_frames = 0;
  };

  sim::WirelessConfig config_;
  Rng& rng_;
  sim::Position ap_;
  std::map<MacAddress, Station> stations_;
};

}  // namespace hw::homework
