// The simulated "upstream ISP" cloud behind the router's uplink port: an
// authoritative DNS service (A + PTR) over a configurable zone, plus generic
// remote servers that complete TCP handshakes, answer pings and return
// download payloads — enough behaviour to exercise every egress code path
// the real Internet would.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "net/dns.hpp"
#include "net/packet.hpp"
#include "sim/event_loop.hpp"
#include "sim/link.hpp"
#include "telemetry/metrics.hpp"

namespace hw::homework {

/// Snapshot view over the module's telemetry instruments.
struct UpstreamStats {
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t dns_queries = 0;
  std::uint64_t dns_nxdomain = 0;
  std::uint64_t tcp_syns = 0;
  std::uint64_t tcp_data_segments = 0;
  std::uint64_t bytes_served = 0;
  std::uint64_t pings = 0;
};

class Upstream final : public sim::FrameSink {
 public:
  struct Config {
    MacAddress gw_mac = MacAddress::from_index(0xfffffe);
    Ipv4Address dns_ip{8, 8, 8, 8};
    Duration rtt = 20 * kMillisecond;  // one-way ~10ms each direction
    /// Response bytes returned per TCP data segment, keyed by server port
    /// (download model); ports not listed echo nothing, just ACK.
    std::map<std::uint16_t, std::size_t> response_bytes = {
        {80, 12000}, {443, 16000}, {8080, 8000}, {554, 32000}, {1935, 32000}};
    std::size_t mtu_payload = 1400;
  };

  Upstream(sim::EventLoop& loop, Config config);

  /// Where responses are injected (the datapath uplink-port ingress).
  void connect(sim::FrameSink* to_router) { to_router_ = to_router; }

  // -- DNS zone management -------------------------------------------------
  /// Registers `name` → `ip` (also serves the matching PTR record).
  void add_zone_entry(const std::string& name, Ipv4Address ip);
  [[nodiscard]] std::optional<Ipv4Address> lookup(const std::string& name) const;
  [[nodiscard]] std::size_t zone_size() const { return zone_.size(); }

  // -- FrameSink: traffic leaving the home ---------------------------------
  void deliver(const Bytes& frame) override;

  [[nodiscard]] UpstreamStats stats() const {
    return {metrics_.frames_in.value(),
            metrics_.frames_out.value(),
            metrics_.dns_queries.value(),
            metrics_.dns_nxdomain.value(),
            metrics_.tcp_syns.value(),
            metrics_.tcp_data_segments.value(),
            metrics_.bytes_served.value(),
            metrics_.pings.value()};
  }

 private:
  void handle_dns(const net::ParsedPacket& p);
  void handle_tcp(const net::ParsedPacket& p);
  void handle_icmp(const net::ParsedPacket& p);
  void send(Bytes frame);

  sim::EventLoop& loop_;
  Config config_;
  sim::FrameSink* to_router_ = nullptr;
  struct Instruments {
    telemetry::Counter frames_in{"homework.upstream.frames_in"};
    telemetry::Counter frames_out{"homework.upstream.frames_out"};
    telemetry::Counter dns_queries{"homework.upstream.dns_queries"};
    telemetry::Counter dns_nxdomain{"homework.upstream.dns_nxdomain"};
    telemetry::Counter tcp_syns{"homework.upstream.tcp_syns"};
    telemetry::Counter tcp_data_segments{"homework.upstream.tcp_data_segments"};
    telemetry::Counter bytes_served{"homework.upstream.bytes_served"};
    telemetry::Counter pings{"homework.upstream.pings"};
  } metrics_;
  std::map<std::string, Ipv4Address> zone_;
  std::map<std::uint32_t, std::string> reverse_zone_;  // ip → name
  std::uint32_t tcp_seq_ = 1000;
};

}  // namespace hw::homework
