#include "homework/http.hpp"

#include <charconv>

#include "util/strings.hpp"

namespace hw::homework {
namespace {

std::string url_decode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      unsigned v = 0;
      auto [p, ec] = std::from_chars(s.data() + i + 1, s.data() + i + 3, v, 16);
      if (ec == std::errc{} && p == s.data() + i + 3) {
        out += static_cast<char>(v);
        i += 2;
        continue;
      }
    }
    out += s[i] == '+' ? ' ' : s[i];
  }
  return out;
}

std::map<std::string, std::string> parse_query(std::string_view qs) {
  std::map<std::string, std::string> out;
  for (const auto& pair : split(qs, '&')) {
    if (pair.empty()) continue;
    const auto eq = pair.find('=');
    if (eq == std::string::npos) {
      out[url_decode(pair)] = "";
    } else {
      out[url_decode(pair.substr(0, eq))] = url_decode(pair.substr(eq + 1));
    }
  }
  return out;
}

}  // namespace

const char* http_status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 500: return "Internal Server Error";
    default: return "Unknown";
  }
}

Result<HttpRequest> HttpRequest::parse(std::string_view text) {
  const auto header_end = text.find("\r\n\r\n");
  if (header_end == std::string_view::npos) {
    return make_error("http: incomplete request (no blank line)");
  }
  const std::string_view head = text.substr(0, header_end);
  const auto first_line_end = head.find("\r\n");
  const std::string_view start_line =
      first_line_end == std::string_view::npos ? head
                                               : head.substr(0, first_line_end);

  const auto parts = split_whitespace(start_line);
  if (parts.size() != 3) return make_error("http: malformed request line");
  HttpRequest req;
  req.method = to_upper(parts[0]);
  if (parts[2].rfind("HTTP/1.", 0) != 0) {
    return make_error("http: unsupported version " + parts[2]);
  }

  std::string_view target = parts[1];
  const auto qpos = target.find('?');
  if (qpos != std::string_view::npos) {
    req.query = parse_query(target.substr(qpos + 1));
    target = target.substr(0, qpos);
  }
  req.path = url_decode(target);
  if (req.path.empty() || req.path[0] != '/') {
    return make_error("http: target must be absolute path");
  }

  // Headers.
  if (first_line_end != std::string_view::npos) {
    std::string_view rest = head.substr(first_line_end + 2);
    while (!rest.empty()) {
      const auto line_end = rest.find("\r\n");
      const std::string_view line =
          line_end == std::string_view::npos ? rest : rest.substr(0, line_end);
      const auto colon = line.find(':');
      if (colon == std::string_view::npos) return make_error("http: bad header");
      req.headers[to_lower(trim(line.substr(0, colon)))] =
          std::string(trim(line.substr(colon + 1)));
      if (line_end == std::string_view::npos) break;
      rest = rest.substr(line_end + 2);
    }
  }

  // Body.
  std::size_t content_length = 0;
  if (auto it = req.headers.find("content-length"); it != req.headers.end()) {
    auto [p, ec] = std::from_chars(it->second.data(),
                                   it->second.data() + it->second.size(),
                                   content_length);
    if (ec != std::errc{}) return make_error("http: bad content-length");
  }
  const std::string_view body = text.substr(header_end + 4);
  if (body.size() < content_length) return make_error("http: truncated body");
  req.body = std::string(body.substr(0, content_length));
  return req;
}

std::string HttpRequest::serialize() const {
  std::string out = method + " " + path;
  if (!query.empty()) {
    out += "?";
    bool first = true;
    for (const auto& [k, v] : query) {
      if (!first) out += "&";
      first = false;
      out += k + "=" + v;
    }
  }
  out += " HTTP/1.1\r\n";
  bool has_length = false;
  for (const auto& [k, v] : headers) {
    out += k + ": " + v + "\r\n";
    if (iequals(k, "content-length")) has_length = true;
  }
  if (!has_length) {
    out += "content-length: " + std::to_string(body.size()) + "\r\n";
  }
  out += "\r\n";
  out += body;
  return out;
}

HttpResponse HttpResponse::json(const Json& value, int status) {
  HttpResponse resp;
  resp.status = status;
  resp.headers["content-type"] = "application/json";
  resp.body = value.dump();
  return resp;
}

HttpResponse HttpResponse::text(std::string body, int status) {
  HttpResponse resp;
  resp.status = status;
  resp.headers["content-type"] = "text/plain";
  resp.body = std::move(body);
  return resp;
}

HttpResponse HttpResponse::error(int status, const std::string& message) {
  Json j(JsonObject{});
  j.set("error", message);
  return json(j, status);
}

std::string HttpResponse::serialize() const {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    http_status_reason(status) + "\r\n";
  for (const auto& [k, v] : headers) out += k + ": " + v + "\r\n";
  out += "content-length: " + std::to_string(body.size()) + "\r\n\r\n";
  out += body;
  return out;
}

Result<HttpResponse> HttpResponse::parse(std::string_view text) {
  const auto header_end = text.find("\r\n\r\n");
  if (header_end == std::string_view::npos) {
    return make_error("http: incomplete response");
  }
  const std::string_view head = text.substr(0, header_end);
  const auto first_line_end = head.find("\r\n");
  const std::string_view status_line =
      first_line_end == std::string_view::npos ? head
                                               : head.substr(0, first_line_end);
  const auto parts = split_whitespace(status_line);
  if (parts.size() < 2 || parts[0].rfind("HTTP/1.", 0) != 0) {
    return make_error("http: malformed status line");
  }
  HttpResponse resp;
  auto [p, ec] = std::from_chars(parts[1].data(),
                                 parts[1].data() + parts[1].size(), resp.status);
  if (ec != std::errc{}) return make_error("http: bad status code");

  if (first_line_end != std::string_view::npos) {
    std::string_view rest = head.substr(first_line_end + 2);
    while (!rest.empty()) {
      const auto line_end = rest.find("\r\n");
      const std::string_view line =
          line_end == std::string_view::npos ? rest : rest.substr(0, line_end);
      const auto colon = line.find(':');
      if (colon != std::string_view::npos) {
        resp.headers[to_lower(trim(line.substr(0, colon)))] =
            std::string(trim(line.substr(colon + 1)));
      }
      if (line_end == std::string_view::npos) break;
      rest = rest.substr(line_end + 2);
    }
  }
  resp.body = std::string(text.substr(header_end + 4));
  return resp;
}

void HttpRouter::add(std::string method, std::string pattern, Handler handler) {
  Route route;
  route.method = to_upper(method);
  for (const auto& seg : split(pattern, '/')) {
    if (!seg.empty()) route.segments.push_back(seg);
  }
  route.handler = std::move(handler);
  routes_.push_back(std::move(route));
}

bool HttpRouter::match(const Route& route, const std::string& path,
                       Params& params) {
  std::vector<std::string> segments;
  for (const auto& seg : split(path, '/')) {
    if (!seg.empty()) segments.push_back(seg);
  }
  if (segments.size() != route.segments.size()) return false;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const std::string& pat = route.segments[i];
    if (!pat.empty() && pat[0] == ':') {
      params[pat.substr(1)] = segments[i];
    } else if (!iequals(pat, segments[i])) {
      return false;
    }
  }
  return true;
}

HttpResponse HttpRouter::handle(const HttpRequest& req) const {
  bool path_matched = false;
  for (const auto& route : routes_) {
    Params params;
    if (!match(route, req.path, params)) continue;
    path_matched = true;
    if (route.method != req.method) continue;
    return route.handler(req, params);
  }
  return path_matched ? HttpResponse::error(405, "method not allowed")
                      : HttpResponse::not_found();
}

}  // namespace hw::homework
