#include "homework/forwarding.hpp"

#include <algorithm>

#include "net/packet.hpp"
#include "util/logging.hpp"

namespace hw::homework {
namespace {
constexpr std::string_view kLog = "forwarding";
}  // namespace

Forwarding::Forwarding(Config config, DeviceRegistry& registry,
                       policy::PolicyEngine& policy)
    : Component(kName), config_(config), registry_(registry), policy_(policy) {}

void Forwarding::install(nox::Controller& ctl) {
  Component::install(ctl);
  dns_ = ctl.component_as<DnsProxy>(DnsProxy::kName);

  // Policy changes invalidate every admission decision: flush installed
  // flows and the DNS proxy's verdict cache so traffic re-admits afresh.
  policy_.on_change([this] {
    metrics_.policy_revocations.inc();
    revoke_all_flows();
    if (dns_ != nullptr) dns_->flush_cache();
  });

  // Device admission changes revoke that device's flows.
  registry_.add_listener([this](RegistryEvent ev, const DeviceRecord& rec) {
    if (ev == RegistryEvent::StateChanged && rec.lease &&
        rec.state != DeviceState::Permitted) {
      revoke_device_flows(rec.dpid, rec.lease->ip);
    }
    if ((ev == RegistryEvent::LeaseReleased || ev == RegistryEvent::LeaseExpired)) {
      // rec.lease is already cleared; nothing to revoke by address here —
      // idle timeouts clean the remnants up.
    }
  });
}

void Forwarding::contribute_flows(nox::DatapathId, nox::FlowIntentSink& sink) {
  // ARP is always handled at the controller (proxy ARP / mediation).
  nox::FlowIntent arp;
  arp.key = "fwd:arp";
  arp.match = ofp::Match::any();
  arp.match.with_dl_type(static_cast<std::uint16_t>(net::EtherType::Arp));
  arp.actions = ofp::send_to_controller(512);
  arp.priority = 0xfffd;
  sink.add(std::move(arp));
}

void Forwarding::handle_datapath_join(nox::DatapathId dpid,
                                      const ofp::FeaturesReply&) {
  if (std::find(datapaths_.begin(), datapaths_.end(), dpid) ==
      datapaths_.end()) {
    datapaths_.push_back(dpid);
  }
}

nox::Disposition Forwarding::handle_packet_in(const nox::PacketInEvent& ev) {
  // DHCP and DNS are owned by the other modules (ordered before us).
  if (ev.packet.is_dhcp() || ev.packet.is_dns()) return nox::Disposition::Continue;

  if (ev.packet.arp) {
    handle_arp(ev);
    return nox::Disposition::Stop;
  }
  if (ev.packet.ip) {
    handle_ipv4(ev);
    return nox::Disposition::Stop;
  }
  return nox::Disposition::Continue;
}

void Forwarding::handle_arp(const nox::PacketInEvent& ev) {
  const auto& arp = *ev.packet.arp;
  registry_.note_location(ev.dpid, arp.sender_mac, ev.msg.in_port);
  if (arp.op != net::ArpOp::Request) return;

  // Proxy-ARP: the router answers for its own address and for every leased
  // device address, so devices never learn each other's MACs ("avoiding
  // direct Ethernet-layer communication between devices").
  const bool for_router = arp.target_ip == config_.router_ip;
  const bool for_device =
      registry_.find_by_ip(ev.dpid, arp.target_ip) != nullptr;
  if (!for_router && !for_device) return;

  net::ArpMessage reply;
  reply.op = net::ArpOp::Reply;
  reply.sender_mac = config_.router_mac;
  reply.sender_ip = arp.target_ip;
  reply.target_mac = arp.sender_mac;
  reply.target_ip = arp.sender_ip;

  ofp::PacketOut po;
  po.in_port = ofp::port_no(ofp::Port::None);
  po.actions = ofp::output_to(ev.msg.in_port);
  po.data = net::build_arp(reply);
  metrics_.arp_replies.inc();
  controller().send_packet_out(ev.dpid, po);
}

Forwarding::NextHop Forwarding::next_hop_for(nox::DatapathId dpid,
                                             Ipv4Address dst) const {
  NextHop hop;
  if (const DeviceRecord* rec = registry_.find_by_ip(dpid, dst);
      rec != nullptr && rec->port) {
    hop.port = *rec->port;
    hop.mac = rec->mac;
    hop.known = true;
    return hop;
  }
  if (!config_.subnet.contains(dst)) {
    hop.port = config_.uplink_port;
    hop.mac = config_.upstream_gw_mac;
    hop.known = true;
    return hop;
  }
  return hop;  // unknown local address
}

void Forwarding::handle_ipv4(const nox::PacketInEvent& ev) {
  const auto& ip = *ev.packet.ip;
  const MacAddress src_mac = ev.packet.eth.src;
  const bool from_upstream = ev.msg.in_port == config_.uplink_port;

  if (!from_upstream) {
    registry_.note_location(ev.dpid, src_mac, ev.msg.in_port);
    const DeviceRecord* rec = registry_.find(ev.dpid, src_mac);
    if (rec == nullptr || rec->state != DeviceState::Permitted || !rec->lease ||
        rec->lease->ip != ip.src) {
      // Unknown/unpermitted source or spoofed address: drop, and install a
      // short-lived drop rule to shed the packet-in load.
      metrics_.dropped_unknown_source.inc();
      install_pair(ev.dpid, ev.packet, ev.msg.in_port, ev.msg.buffer_id,
                   /*allowed=*/false);
      return;
    }
  }

  // Traffic to the router itself: answer pings, drop the rest.
  if (ip.dst == config_.router_ip) {
    if (ev.packet.icmp && ev.packet.icmp->type == net::IcmpType::EchoRequest) {
      ofp::PacketOut po;
      po.in_port = ofp::port_no(ofp::Port::None);
      po.actions = ofp::output_to(ev.msg.in_port);
      po.data = net::build_icmp_echo(
          config_.router_mac, ev.packet.eth.src, config_.router_ip, ip.src,
          net::IcmpType::EchoReply, ev.packet.icmp->identifier,
          ev.packet.icmp->sequence);
      metrics_.echo_replies.inc();
      controller().send_packet_out(ev.dpid, po);
    }
    return;
  }

  // Policy gate 1: blanket network access for the source device.
  if (!from_upstream && !policy_.network_allowed(ev.dpid, src_mac.to_string())) {
    install_pair(ev.dpid, ev.packet, ev.msg.in_port, ev.msg.buffer_id, false);
    return;
  }

  // Local destination must be a leased, permitted device.
  if (config_.subnet.contains(ip.dst)) {
    const DeviceRecord* dst_rec = registry_.find_by_ip(ev.dpid, ip.dst);
    const bool ok = dst_rec != nullptr &&
                    dst_rec->state == DeviceState::Permitted && dst_rec->port;
    install_pair(ev.dpid, ev.packet, ev.msg.in_port, ev.msg.buffer_id, ok);
    return;
  }

  // Inbound from upstream (e.g. the reverse rule idle-timed out while the
  // flow lived on): admit iff the local destination device could itself
  // initiate this exchange. Unknown verdicts fail closed — we never reverse-
  // look-up on behalf of inbound traffic.
  if (from_upstream) {
    const DeviceRecord* dst_rec = registry_.find_by_ip(ev.dpid, ip.dst);
    bool ok = dst_rec != nullptr && dst_rec->state == DeviceState::Permitted &&
              dst_rec->port.has_value() &&
              policy_.network_allowed(ev.dpid, dst_rec->mac.to_string());
    if (ok && dns_ != nullptr) {
      ok = dns_->check_flow(ev.dpid, dst_rec->mac, ip.src) ==
           DnsProxy::FlowVerdict::Allow;
    }
    install_pair(ev.dpid, ev.packet, ev.msg.in_port, ev.msg.buffer_id, ok);
    return;
  }

  const DnsProxy::FlowVerdict verdict =
      dns_ != nullptr ? dns_->check_flow(ev.dpid, src_mac, ip.dst)
                      : DnsProxy::FlowVerdict::Allow;
  switch (verdict) {
    case DnsProxy::FlowVerdict::Allow:
      install_pair(ev.dpid, ev.packet, ev.msg.in_port, ev.msg.buffer_id, true);
      return;
    case DnsProxy::FlowVerdict::Deny:
      install_pair(ev.dpid, ev.packet, ev.msg.in_port, ev.msg.buffer_id, false);
      return;
    case DnsProxy::FlowVerdict::Unknown: {
      // Paper §2: reverse-look the address up, then decide. The packet stays
      // buffered in the datapath until the verdict arrives.
      metrics_.reverse_lookups_triggered.inc();
      const auto dpid = ev.dpid;
      const auto packet = ev.packet;  // copy: event dies with this frame
      const auto in_port = ev.msg.in_port;
      const auto buffer_id = ev.msg.buffer_id;
      dns_->reverse_lookup(dpid, src_mac, ip.dst,
                           [this, dpid, packet, in_port,
                            buffer_id](DnsProxy::FlowVerdict v) {
                             install_pair(dpid, packet, in_port, buffer_id,
                                          v == DnsProxy::FlowVerdict::Allow);
                           });
      return;
    }
  }
}

void Forwarding::install_pair(nox::DatapathId dpid,
                              const net::ParsedPacket& packet,
                              std::uint16_t in_port, std::uint32_t buffer_id,
                              bool allowed) {
  const auto& ip = *packet.ip;
  ofp::Match fwd = ofp::Match::from_packet(packet, in_port);

  if (!allowed) {
    metrics_.flows_denied.inc();
    ofp::FlowMod drop;
    drop.match = fwd;
    drop.command = ofp::FlowModCommand::Add;
    drop.idle_timeout = config_.deny_idle_timeout;
    drop.priority = 0x9000;
    drop.buffer_id = buffer_id;  // consumes the buffered packet (dropped)
    // Output to the never-populated OFPP_MAX port: semantically a drop, but
    // (unlike an empty action list) deletable via the out_port filter when a
    // policy change revokes the forwarding band.
    drop.actions = {ofp::ActionOutput{ofp::port_no(ofp::Port::Max), 0}};
    controller().send_flow_mod(dpid, drop);
    return;
  }

  const NextHop hop = next_hop_for(dpid, ip.dst);
  if (!hop.known) {
    metrics_.flows_denied.inc();
    return;
  }

  // Rate limiting: if the home device on one end of a direction carries a
  // bandwidth cap, egress goes through a per-device policing queue instead
  // of a plain output. The queue id is derived from the device address so
  // all of the device's flows share one bucket per egress port.
  auto egress_action = [&](std::uint16_t egress_port,
                           Ipv4Address device_ip) -> ofp::Action {
    if (config_.configure_queue) {
      if (const DeviceRecord* rec = registry_.find_by_ip(dpid, device_ip)) {
        const auto restriction =
            policy_.restriction_for(dpid, rec->mac.to_string());
        if (restriction.rate_limit_bps > 0) {
          const std::uint32_t queue_id = device_ip.value() & 0xffff;
          config_.configure_queue(egress_port, queue_id,
                                  restriction.rate_limit_bps);
          metrics_.rate_limited_flows.inc();
          return ofp::ActionEnqueue{egress_port, queue_id};
        }
      }
    }
    return ofp::ActionOutput{egress_port, 0};
  };

  // The device whose cap governs an egress: traffic leaving on the uplink is
  // the sender's upload; traffic leaving on a device port is that device's
  // download.
  auto capped_device = [&](std::uint16_t egress_port, Ipv4Address sender,
                           Ipv4Address receiver) {
    return egress_port == config_.uplink_port ? sender : receiver;
  };

  // Forward direction: the triggering packet's exact match.
  ofp::FlowMod mod;
  mod.match = fwd;
  mod.command = ofp::FlowModCommand::Add;
  mod.idle_timeout = config_.flow_idle_timeout;
  mod.priority = 0x8000;
  mod.flags = ofp::FlowModFlags::kSendFlowRem;
  mod.buffer_id = buffer_id;
  mod.actions = {ofp::ActionSetDlSrc{config_.router_mac},
                 ofp::ActionSetDlDst{hop.mac},
                 egress_action(hop.port, capped_device(hop.port, ip.src, ip.dst))};
  controller().send_flow_mod(dpid, mod);
  metrics_.flows_installed.inc();

  // Reverse direction (pre-installed so the response doesn't round-trip
  // through the controller).
  const NextHop back = next_hop_for(dpid, ip.src);
  if (back.known) {
    ofp::Match rev = ofp::Match::any();
    rev.with_dl_type(static_cast<std::uint16_t>(net::EtherType::Ipv4))
        .with_nw_proto(ip.protocol)
        .with_nw_src(ip.dst)
        .with_nw_dst(ip.src);
    if (packet.udp) {
      rev.with_tp_src(packet.udp->dst_port).with_tp_dst(packet.udp->src_port);
    } else if (packet.tcp) {
      rev.with_tp_src(packet.tcp->dst_port).with_tp_dst(packet.tcp->src_port);
    }
    ofp::FlowMod rmod;
    rmod.match = rev;
    rmod.command = ofp::FlowModCommand::Add;
    rmod.idle_timeout = config_.flow_idle_timeout;
    rmod.priority = 0x8000;
    rmod.flags = ofp::FlowModFlags::kSendFlowRem;
    rmod.actions = {
        ofp::ActionSetDlSrc{config_.router_mac},
        ofp::ActionSetDlDst{back.mac},
        egress_action(back.port, capped_device(back.port, ip.dst, ip.src))};
    controller().send_flow_mod(dpid, rmod);
    metrics_.flows_installed.inc();
  }
}

void Forwarding::revoke_all_flows() {
  for (const auto dpid : datapaths_) {
    ofp::Match ipv4 = ofp::Match::any();
    ipv4.with_dl_type(static_cast<std::uint16_t>(net::EtherType::Ipv4));
    // Delete only the mid-priority forwarding band; the 0xfffd+ service
    // rules (DHCP/DNS/ARP interception) must survive. OF1.0 DELETE has no
    // priority filter, so delete by output-port instead: every forwarding
    // rule outputs to a physical port, service rules output to CONTROLLER.
    for (std::uint16_t port = 1; port <= 64; ++port) {
      ofp::FlowMod del;
      del.match = ipv4;
      del.command = ofp::FlowModCommand::Delete;
      del.out_port = port;
      controller().send_flow_mod(dpid, del);
    }
    // And the deny band (drop rules output to the OFPP_MAX null port).
    ofp::FlowMod del_drops;
    del_drops.match = ipv4;
    del_drops.command = ofp::FlowModCommand::Delete;
    del_drops.out_port = ofp::port_no(ofp::Port::Max);
    controller().send_flow_mod(dpid, del_drops);
  }
}

void Forwarding::revoke_device_flows(nox::DatapathId dpid, Ipv4Address ip) {
  ofp::Match as_src = ofp::Match::any();
  as_src.with_dl_type(static_cast<std::uint16_t>(net::EtherType::Ipv4))
      .with_nw_src(ip);
  ofp::Match as_dst = ofp::Match::any();
  as_dst.with_dl_type(static_cast<std::uint16_t>(net::EtherType::Ipv4))
      .with_nw_dst(ip);
  for (const auto& m : {as_src, as_dst}) {
    ofp::FlowMod del;
    del.match = m;
    del.command = ofp::FlowModCommand::Delete;
    controller().send_flow_mod(dpid, del);
  }
}

}  // namespace hw::homework
