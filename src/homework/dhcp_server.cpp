#include "homework/dhcp_server.hpp"

#include "net/packet.hpp"
#include "util/logging.hpp"

namespace hw::homework {
namespace {
constexpr std::string_view kLog = "dhcp";
}  // namespace

DhcpServer::DhcpServer(Config config, DeviceRegistry& registry)
    : Component(kName), config_(config), registry_(registry) {}

DhcpServer::~DhcpServer() = default;

void DhcpServer::install(nox::Controller& ctl) {
  Component::install(ctl);
  expiry_timer_ = std::make_unique<sim::PeriodicTimer>(
      ctl.loop(), config_.expiry_sweep, [this] { sweep_expiry(); });
  expiry_timer_->start();
}

void DhcpServer::contribute_flows(nox::DatapathId, nox::FlowIntentSink& sink) {
  // Client→server DHCP traffic comes to the controller, highest priority.
  nox::FlowIntent intent;
  intent.key = "dhcp:intercept";
  intent.match = ofp::Match::any();
  intent.match.with_dl_type(static_cast<std::uint16_t>(net::EtherType::Ipv4))
      .with_nw_proto(static_cast<std::uint8_t>(net::IpProto::Udp))
      .with_tp_src(net::kDhcpClientPort)
      .with_tp_dst(net::kDhcpServerPort);
  intent.actions = ofp::send_to_controller(1024);
  intent.priority = 0xffff;
  sink.add(std::move(intent));
}

nox::Disposition DhcpServer::handle_packet_in(const nox::PacketInEvent& ev) {
  if (!ev.packet.is_dhcp() || !ev.packet.udp ||
      ev.packet.udp->dst_port != net::kDhcpServerPort) {
    return nox::Disposition::Continue;
  }
  auto msg = net::DhcpMessage::parse(ev.packet.l4_payload);
  if (!msg) {
    HW_LOG_WARN(kLog, "bad DHCP payload: %s", msg.error().message.c_str());
    return nox::Disposition::Stop;
  }
  process(ev.dpid, ev.msg.in_port, ev.packet, msg.value());
  return nox::Disposition::Stop;
}

void DhcpServer::process(nox::DatapathId dpid, std::uint16_t in_port,
                         const net::ParsedPacket& packet,
                         const net::DhcpMessage& msg) {
  const Timestamp now = controller().loop().now();
  DeviceRecord* rec = registry_.touch(dpid, msg.chaddr, now, msg.hostname);
  registry_.note_location(dpid, msg.chaddr, in_port);
  (void)packet;

  switch (msg.message_type) {
    case net::DhcpMessageType::Discover: {
      metrics_.discovers.inc();
      if (rec->state == DeviceState::Denied) {
        metrics_.naks.inc();
        send_reply(dpid, in_port,
                   make_reply(msg, net::DhcpMessageType::Nak, Ipv4Address::any()),
                   msg.chaddr);
        return;
      }
      if (rec->state == DeviceState::Pending) {
        // Silent: the device shows up on the control board as "requesting
        // access" and retries until the user decides (Figure 3).
        metrics_.ignored_pending.inc();
        return;
      }
      // A lossy network re-sends DISCOVERs; the sticky allocator hands the
      // same address back, so a retransmit can never double-allocate. Count
      // it so the chaos suite can read the recovery story off telemetry.
      if (allocation(dpid, msg.chaddr)) metrics_.retransmits.inc();
      auto ip = allocate(dpid, msg.chaddr, now);
      if (!ip) {
        metrics_.pool_exhausted.inc();
        HW_LOG_WARN(kLog, "address pool exhausted for %s",
                    msg.chaddr.to_string().c_str());
        return;
      }
      metrics_.offers.inc();
      send_reply(dpid, in_port,
                 make_reply(msg, net::DhcpMessageType::Offer, *ip), msg.chaddr);
      return;
    }

    case net::DhcpMessageType::Request: {
      metrics_.requests.inc();
      if (rec->state != DeviceState::Permitted) {
        metrics_.naks.inc();
        send_reply(dpid, in_port,
                   make_reply(msg, net::DhcpMessageType::Nak, Ipv4Address::any()),
                   msg.chaddr);
        return;
      }
      // The requested address must match our allocation (either from the
      // preceding OFFER or a renewal of the active lease in ciaddr).
      auto allocated = allocation(dpid, msg.chaddr);
      const Ipv4Address wanted =
          msg.requested_ip.value_or(msg.ciaddr);
      if (!allocated || wanted.is_zero() || wanted != *allocated) {
        metrics_.naks.inc();
        send_reply(dpid, in_port,
                   make_reply(msg, net::DhcpMessageType::Nak, Ipv4Address::any()),
                   msg.chaddr);
        return;
      }
      const bool renewal = rec->lease.has_value();
      // A REQUEST that selects an address (rather than renewing via ciaddr)
      // while the lease already exists is a retransmission of the original
      // REQUEST — re-ACK the same lease, never allocate a second address.
      if (renewal && msg.requested_ip && rec->lease->ip == *allocated) {
        metrics_.retransmits.inc();
      }
      Lease lease;
      lease.ip = *allocated;
      lease.granted_at = now;
      lease.expires_at = now + static_cast<Duration>(config_.lease_secs) * kSecond;
      lease.hostname = msg.hostname;
      registry_.record_lease(dpid, msg.chaddr, lease, renewal, now);
      // The ACK claims the offer: the allocation becomes sticky (exempt
      // from the unclaimed-offer hold) for the life of the scope.
      if (auto it = scopes_[dpid].allocations.find(msg.chaddr);
          it != scopes_[dpid].allocations.end()) {
        it->second.offered_at = 0;
      }
      if (allocation_observer_) allocation_observer_(dpid, msg.chaddr, lease.ip);
      metrics_.acks.inc();
      send_reply(dpid, in_port,
                 make_reply(msg, net::DhcpMessageType::Ack, *allocated),
                 msg.chaddr);
      return;
    }

    case net::DhcpMessageType::Release: {
      metrics_.releases.inc();
      registry_.clear_lease(dpid, msg.chaddr, /*expired=*/false, now);
      if (allocation_observer_) allocation_observer_(dpid, msg.chaddr, std::nullopt);
      return;
    }

    case net::DhcpMessageType::Decline: {
      metrics_.declines.inc();
      // The client saw an address conflict; blacklist the address.
      Scope& scope = scopes_[dpid];
      if (auto it = scope.allocations.find(msg.chaddr);
          it != scope.allocations.end()) {
        scope.declined.insert(it->second.ip);
        scope.in_use.erase(it->second.ip);
        scope.allocations.erase(it);
      }
      registry_.clear_lease(dpid, msg.chaddr, /*expired=*/false, now);
      if (allocation_observer_) allocation_observer_(dpid, msg.chaddr, std::nullopt);
      return;
    }

    default:
      return;  // Inform etc. unsupported
  }
}

net::DhcpMessage DhcpServer::make_reply(const net::DhcpMessage& req,
                                        net::DhcpMessageType type,
                                        Ipv4Address yiaddr) const {
  net::DhcpMessage reply;
  reply.is_request = false;
  reply.xid = req.xid;
  reply.chaddr = req.chaddr;
  reply.message_type = type;
  reply.server_identifier = config_.server_ip;
  if (type == net::DhcpMessageType::Offer || type == net::DhcpMessageType::Ack) {
    reply.yiaddr = yiaddr;
    reply.siaddr = config_.server_ip;
    reply.lease_time_secs = config_.lease_secs;
    // Isolation: a /32 mask leaves the client no on-link destinations, so
    // everything — including "local" peers — is sent to the router.
    reply.subnet_mask = config_.isolate ? Ipv4Address{0xffffffffu}
                                        : config_.subnet.mask();
    reply.router = config_.server_ip;
    reply.dns_servers = {config_.server_ip};
  }
  return reply;
}

void DhcpServer::send_reply(nox::DatapathId dpid, std::uint16_t port,
                            const net::DhcpMessage& reply, MacAddress client_mac) {
  const Bytes payload = reply.serialize();
  const Bytes frame = net::build_dhcp_frame(
      config_.router_mac, client_mac, config_.server_ip,
      Ipv4Address::broadcast(), /*from_client=*/false, payload);
  ofp::PacketOut po;
  po.in_port = ofp::port_no(ofp::Port::None);
  po.actions = ofp::output_to(port);
  po.data = frame;
  controller().send_packet_out(dpid, po);
}

std::optional<Ipv4Address> DhcpServer::allocation(nox::DatapathId dpid,
                                                  MacAddress mac) const {
  auto scope_it = scopes_.find(dpid);
  if (scope_it == scopes_.end()) return std::nullopt;
  auto it = scope_it->second.allocations.find(mac);
  return it == scope_it->second.allocations.end()
             ? std::nullopt
             : std::optional<Ipv4Address>(it->second.ip);
}

std::optional<Ipv4Address> DhcpServer::allocate(nox::DatapathId dpid,
                                                MacAddress mac, Timestamp now) {
  if (auto existing = allocation(dpid, mac)) return existing;
  Scope& scope = scopes_[dpid];
  // Linear scan of the pool for a free address, with set-backed occupancy
  // checks: a DISCOVER flood against an exhausted pool walks the pool once
  // per message but never the allocation map.
  for (std::uint32_t a = config_.pool_start.value(); a <= config_.pool_end.value();
       ++a) {
    const Ipv4Address candidate{a};
    if (scope.declined.count(candidate) != 0) continue;
    if (scope.in_use.count(candidate) != 0) continue;
    scope.allocations[mac] = {candidate, now};
    scope.in_use.insert(candidate);
    return candidate;
  }
  return std::nullopt;
}

void DhcpServer::sweep_expiry() {
  const Timestamp now = controller().loop().now();
  for (const DeviceRecord* rec : registry_.all()) {
    if (rec->lease && rec->lease->expires_at <= now) {
      metrics_.expired.inc();
      const auto dpid = rec->dpid;
      const auto mac = rec->mac;
      registry_.clear_lease(dpid, mac, /*expired=*/true, now);
      if (allocation_observer_) allocation_observer_(dpid, mac, std::nullopt);
    }
  }
  // Reclaim offers nobody ever claimed: a spoofed-MAC DISCOVER flood can
  // drain the pool, but each phantom allocation only survives offer_hold.
  // ACKed allocations carry offered_at == 0 and stay sticky forever.
  for (auto& [dpid, scope] : scopes_) {
    for (auto it = scope.allocations.begin(); it != scope.allocations.end();) {
      if (it->second.offered_at != 0 &&
          it->second.offered_at + config_.offer_hold <= now) {
        metrics_.offers_expired.inc();
        scope.in_use.erase(it->second.ip);
        it = scope.allocations.erase(it);
      } else {
        ++it;
      }
    }
  }
}

bool DhcpServer::adopt_allocation(nox::DatapathId dpid, MacAddress mac,
                                  Ipv4Address ip) {
  Scope& scope = scopes_[dpid];
  auto it = scope.allocations.find(mac);
  if (it != scope.allocations.end() && it->second.ip == ip) return false;
  if (it != scope.allocations.end()) scope.in_use.erase(it->second.ip);
  scope.allocations[mac] = {ip, /*offered_at=*/0};
  scope.in_use.insert(ip);
  scope.declined.erase(ip);
  return true;
}

namespace {
constexpr std::uint32_t kDhcpTag = snapshot::tag("DHCP");
/// v3 format marker: the first u32 of a v2 image is the scope count, which
/// can never be 0xFFFFFFFF, so the sentinel disambiguates the formats.
constexpr std::uint32_t kDhcpVersionSentinel = 0xFFFFFFFFu;
constexpr std::uint32_t kDhcpVersion = 3;
}  // namespace

void DhcpServer::save(snapshot::Writer& w) const {
  ByteWriter& c = w.begin_chunk(kDhcpTag);
  c.u32(kDhcpVersionSentinel);
  c.u32(kDhcpVersion);
  c.u32(static_cast<std::uint32_t>(scopes_.size()));
  for (const auto& [dpid, scope] : scopes_) {
    c.u64(dpid);
    c.u32(static_cast<std::uint32_t>(scope.allocations.size()));
    for (const auto& [mac, binding] : scope.allocations) {
      snapshot::put_mac(c, mac);
      snapshot::put_ip(c, binding.ip);
      c.u64(static_cast<std::uint64_t>(binding.offered_at));
    }
    c.u32(static_cast<std::uint32_t>(scope.declined.size()));
    for (const Ipv4Address ip : scope.declined) snapshot::put_ip(c, ip);
  }
  w.end_chunk();
}

Status DhcpServer::restore(const snapshot::Reader& r) {
  const Bytes* chunk = r.find(kDhcpTag);
  if (chunk == nullptr) return Status::success();
  ByteReader br(*chunk);
  auto first = br.u32();
  if (!first) return first.error();
  std::uint32_t version = 2;  // legacy images lead straight with nscopes
  std::uint32_t nscopes = first.value();
  if (first.value() == kDhcpVersionSentinel) {
    auto ver = br.u32();
    if (!ver) return ver.error();
    if (ver.value() != kDhcpVersion) {
      return make_error("dhcp snapshot: unsupported version");
    }
    version = ver.value();
    auto n = br.u32();
    if (!n) return n.error();
    nscopes = n.value();
  }
  std::map<nox::DatapathId, Scope> scopes;
  for (std::uint32_t s = 0; s < nscopes; ++s) {
    auto dpid = br.u64();
    auto nalloc = br.u32();
    if (!dpid || !nalloc) return make_error("dhcp snapshot: truncated scope");
    Scope scope;
    for (std::uint32_t i = 0; i < nalloc.value(); ++i) {
      auto mac = snapshot::get_mac(br);
      auto ip = snapshot::get_ip(br);
      if (!mac || !ip) return make_error("dhcp snapshot: truncated allocation");
      Binding binding{ip.value(), 0};
      if (version >= 3) {
        auto offered = br.u64();
        if (!offered) return make_error("dhcp snapshot: truncated offer time");
        binding.offered_at = static_cast<Timestamp>(offered.value());
      }
      scope.in_use.insert(binding.ip);
      scope.allocations.emplace(mac.value(), binding);
    }
    auto ndeclined = br.u32();
    if (!ndeclined) return ndeclined.error();
    for (std::uint32_t i = 0; i < ndeclined.value(); ++i) {
      auto ip = snapshot::get_ip(br);
      if (!ip) return make_error("dhcp snapshot: truncated declined set");
      scope.declined.insert(ip.value());
    }
    scopes.emplace(dpid.value(), std::move(scope));
  }
  scopes_ = std::move(scopes);
  return Status::success();
}

}  // namespace hw::homework
