#include "homework/upstream.hpp"

#include "util/strings.hpp"

namespace hw::homework {

Upstream::Upstream(sim::EventLoop& loop, Config config)
    : loop_(loop), config_(std::move(config)) {}

void Upstream::add_zone_entry(const std::string& name, Ipv4Address ip) {
  zone_[to_lower(name)] = ip;
  reverse_zone_[ip.value()] = to_lower(name);
}

std::optional<Ipv4Address> Upstream::lookup(const std::string& name) const {
  auto it = zone_.find(to_lower(name));
  return it == zone_.end() ? std::nullopt : std::optional<Ipv4Address>(it->second);
}

void Upstream::send(Bytes frame) {
  if (to_router_ == nullptr) return;
  metrics_.frames_out.inc();
  loop_.schedule(config_.rtt, [this, frame = std::move(frame)] {
    to_router_->deliver(frame);
  });
}

void Upstream::deliver(const Bytes& frame) {
  metrics_.frames_in.inc();
  auto parsed = net::ParsedPacket::parse(frame);
  if (!parsed || !parsed.value().ip) return;
  const auto& p = parsed.value();

  if (p.is_dns() && p.udp->dst_port == net::kDnsPort) {
    handle_dns(p);
    return;
  }
  if (p.tcp) {
    handle_tcp(p);
    return;
  }
  if (p.icmp && p.icmp->type == net::IcmpType::EchoRequest) {
    handle_icmp(p);
    return;
  }
  // Other UDP etc.: swallowed, as most of the Internet does.
}

void Upstream::handle_dns(const net::ParsedPacket& p) {
  metrics_.dns_queries.inc();
  auto msg = net::DnsMessage::parse(p.l4_payload);
  if (!msg || msg.value().questions.empty()) return;
  const auto& query = msg.value();
  const auto& q = query.questions.front();

  auto resp = query.make_response();
  resp.authoritative = true;

  if (q.qtype == net::DnsType::A) {
    if (auto ip = lookup(q.name)) {
      resp.answers.push_back(net::DnsRecord::a(q.name, *ip));
    } else {
      resp.rcode = net::DnsRcode::NxDomain;
      metrics_.dns_nxdomain.inc();
    }
  } else if (q.qtype == net::DnsType::Ptr) {
    // "d.c.b.a.in-addr.arpa" → a.b.c.d
    const auto labels = split(q.name, '.');
    if (labels.size() == 6 && labels[4] == "in-addr" && labels[5] == "arpa") {
      const std::string quad =
          labels[3] + "." + labels[2] + "." + labels[1] + "." + labels[0];
      if (auto addr = Ipv4Address::parse(quad)) {
        auto it = reverse_zone_.find(addr.value().value());
        if (it != reverse_zone_.end()) {
          resp.answers.push_back(net::DnsRecord::ptr(q.name, it->second));
        } else {
          resp.rcode = net::DnsRcode::NxDomain;
          metrics_.dns_nxdomain.inc();
        }
      } else {
        resp.rcode = net::DnsRcode::FormErr;
      }
    } else {
      resp.rcode = net::DnsRcode::NxDomain;
      metrics_.dns_nxdomain.inc();
    }
  } else {
    resp.rcode = net::DnsRcode::NxDomain;
  }

  send(net::build_udp(config_.gw_mac, p.eth.src, p.ip->dst, p.ip->src,
                      net::kDnsPort, p.udp->src_port, resp.serialize()));
}

void Upstream::handle_tcp(const net::ParsedPacket& p) {
  const auto& tcp = *p.tcp;
  if (tcp.rst()) return;

  if (tcp.syn() && !tcp.ack_set()) {
    metrics_.tcp_syns.inc();
    net::TcpHeader synack;
    synack.src_port = tcp.dst_port;
    synack.dst_port = tcp.src_port;
    synack.seq = tcp_seq_++;
    synack.ack = tcp.seq + 1;
    synack.flags = net::TcpFlags::kSyn | net::TcpFlags::kAck;
    send(net::build_tcp(config_.gw_mac, p.eth.src, p.ip->dst, p.ip->src, synack,
                        {}));
    return;
  }
  if (tcp.fin()) {
    net::TcpHeader finack;
    finack.src_port = tcp.dst_port;
    finack.dst_port = tcp.src_port;
    finack.seq = tcp_seq_++;
    finack.ack = tcp.seq + 1;
    finack.flags = net::TcpFlags::kFin | net::TcpFlags::kAck;
    send(net::build_tcp(config_.gw_mac, p.eth.src, p.ip->dst, p.ip->src, finack,
                        {}));
    return;
  }
  if (!p.l4_payload.empty()) {
    metrics_.tcp_data_segments.inc();
    // Serve the download: N response bytes split into MTU-sized segments.
    auto it = config_.response_bytes.find(tcp.dst_port);
    std::size_t remaining = it == config_.response_bytes.end() ? 0 : it->second;
    std::uint32_t seq = tcp_seq_;
    const std::uint32_t ack = tcp.seq + static_cast<std::uint32_t>(p.l4_payload.size());
    do {
      const std::size_t chunk = std::min(remaining, config_.mtu_payload);
      net::TcpHeader data;
      data.src_port = tcp.dst_port;
      data.dst_port = tcp.src_port;
      data.seq = seq;
      data.ack = ack;
      data.flags = net::TcpFlags::kAck | (chunk > 0 ? net::TcpFlags::kPsh : 0);
      send(net::build_tcp(config_.gw_mac, p.eth.src, p.ip->dst, p.ip->src, data,
                          Bytes(chunk, 0x5a)));
      metrics_.bytes_served.inc(chunk);
      seq += static_cast<std::uint32_t>(chunk);
      remaining -= chunk;
    } while (remaining > 0);
    tcp_seq_ = seq;
  }
}

void Upstream::handle_icmp(const net::ParsedPacket& p) {
  metrics_.pings.inc();
  send(net::build_icmp_echo(config_.gw_mac, p.eth.src, p.ip->dst, p.ip->src,
                            net::IcmpType::EchoReply, p.icmp->identifier,
                            p.icmp->sequence));
}

}  // namespace hw::homework
