#include "hwdb/udp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "util/logging.hpp"

namespace hw::hwdb::rpc {
namespace {
constexpr std::string_view kLog = "hwdb-udp";
constexpr std::size_t kMaxDatagram = 65536;
}  // namespace

// ---------------------------------------------------------------------------
// InProcRpcLink

InProcRpcLink::InProcRpcLink(sim::EventLoop& loop, Database& db, Config config,
                             Rng* rng)
    : loop_(loop), config_(config), rng_(rng) {
  server_ = std::make_unique<RpcServer>(
      db, [this](ClientAddress to, const Bytes& datagram) {
        if (rng_ != nullptr && config_.loss_probability > 0 &&
            rng_->chance(config_.loss_probability)) {
          return;
        }
        loop_.schedule(config_.latency, [this, to, datagram] {
          const std::size_t idx = static_cast<std::size_t>(to);
          if (idx < clients_.size()) clients_[idx]->handle_datagram(datagram);
        });
      });
}

InProcRpcLink::~InProcRpcLink() = default;

RpcClient& InProcRpcLink::make_client() {
  const ClientAddress addr = clients_.size();
  clients_.push_back(std::make_unique<RpcClient>([this, addr](const Bytes& d) {
    if (rng_ != nullptr && config_.loss_probability > 0 &&
        rng_->chance(config_.loss_probability)) {
      return;
    }
    loop_.schedule(config_.latency, [this, addr, d] {
      server_->handle_datagram(addr, d);
    });
  }));
  return *clients_.back();
}

// ---------------------------------------------------------------------------
// UdpServerTransport

UdpServerTransport::UdpServerTransport(Database& db, std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
  if (fd_ < 0) {
    HW_LOG_ERROR(kLog, "socket() failed: %s", std::strerror(errno));
    return;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    HW_LOG_ERROR(kLog, "bind() failed: %s", std::strerror(errno));
    ::close(fd_);
    fd_ = -1;
    return;
  }
  socklen_t len = sizeof addr;
  ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  server_ = std::make_unique<RpcServer>(
      db, [this](ClientAddress to, const Bytes& datagram) {
        // ClientAddress packs (ip, port) of the peer.
        sockaddr_in peer{};
        peer.sin_family = AF_INET;
        peer.sin_addr.s_addr = htonl(static_cast<std::uint32_t>(to >> 16));
        peer.sin_port = htons(static_cast<std::uint16_t>(to & 0xffff));
        ::sendto(fd_, datagram.data(), datagram.size(), 0,
                 reinterpret_cast<sockaddr*>(&peer), sizeof peer);
      });
}

UdpServerTransport::~UdpServerTransport() {
  if (fd_ >= 0) ::close(fd_);
}

std::size_t UdpServerTransport::poll() {
  if (fd_ < 0) return 0;
  std::size_t handled = 0;
  Bytes buf(kMaxDatagram);
  while (true) {
    sockaddr_in peer{};
    socklen_t peer_len = sizeof peer;
    const ssize_t n = ::recvfrom(fd_, buf.data(), buf.size(), 0,
                                 reinterpret_cast<sockaddr*>(&peer), &peer_len);
    if (n < 0) break;  // EWOULDBLOCK: drained
    const ClientAddress from =
        (static_cast<ClientAddress>(ntohl(peer.sin_addr.s_addr)) << 16) |
        ntohs(peer.sin_port);
    server_->handle_datagram(from,
                             std::span(buf.data(), static_cast<std::size_t>(n)));
    ++handled;
  }
  return handled;
}

// ---------------------------------------------------------------------------
// UdpClientTransport

UdpClientTransport::UdpClientTransport(std::uint16_t server_port) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
  if (fd_ < 0) {
    HW_LOG_ERROR(kLog, "socket() failed: %s", std::strerror(errno));
    return;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server_port);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    HW_LOG_ERROR(kLog, "connect() failed: %s", std::strerror(errno));
    ::close(fd_);
    fd_ = -1;
    return;
  }
  client_ = std::make_unique<RpcClient>([this](const Bytes& datagram) {
    if (fd_ >= 0) ::send(fd_, datagram.data(), datagram.size(), 0);
  });
}

UdpClientTransport::~UdpClientTransport() {
  if (fd_ >= 0) ::close(fd_);
}

std::size_t UdpClientTransport::poll() {
  if (fd_ < 0) return 0;
  std::size_t handled = 0;
  Bytes buf(kMaxDatagram);
  while (true) {
    const ssize_t n = ::recv(fd_, buf.data(), buf.size(), 0);
    if (n < 0) break;
    client_->handle_datagram(std::span(buf.data(), static_cast<std::size_t>(n)));
    ++handled;
  }
  return handled;
}

bool UdpClientTransport::wait(int timeout_ms) {
  if (fd_ < 0) return false;
  pollfd pfd{fd_, POLLIN, 0};
  return ::poll(&pfd, 1, timeout_ms) > 0;
}

}  // namespace hw::hwdb::rpc
