#include "hwdb/udp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>

#include "util/logging.hpp"

namespace hw::hwdb::rpc {
namespace {
constexpr std::string_view kLog = "hwdb-udp";
constexpr std::size_t kMaxDatagram = 65536;
}  // namespace

// ---------------------------------------------------------------------------
// InProcRpcLink

InProcRpcLink::InProcRpcLink(sim::EventLoop& loop, Database& db, Config config,
                             Rng* rng, telemetry::MetricRegistry& metrics)
    : loop_(loop), config_(config), rng_(rng), registry_(metrics),
      metrics_(metrics) {
  server_ = std::make_unique<RpcServer>(
      db,
      [this](ClientAddress to, const Bytes& datagram) {
        transmit(datagram, [this, to](Bytes d) {
          const std::size_t idx = static_cast<std::size_t>(to);
          if (idx < clients_.size()) clients_[idx]->handle_datagram(d);
        });
      },
      registry_);
}

InProcRpcLink::~InProcRpcLink() = default;

RpcClient& InProcRpcLink::make_client() {
  const ClientAddress addr = clients_.size();
  clients_.push_back(std::make_unique<RpcClient>(
      [this, addr](const Bytes& d) {
        transmit(d, [this, addr](Bytes dg) { server_->handle_datagram(addr, dg); });
      },
      registry_));
  return *clients_.back();
}

RpcClient& InProcRpcLink::make_client(RetryPolicy policy) {
  const ClientAddress addr = clients_.size();
  clients_.push_back(std::make_unique<RpcClient>(
      [this, addr](const Bytes& d) {
        transmit(d, [this, addr](Bytes dg) { server_->handle_datagram(addr, dg); });
      },
      loop_, policy, registry_));
  return *clients_.back();
}

void InProcRpcLink::set_fault(const sim::DatagramFault& fault, Rng* rng) {
  fault_ = fault;
  fault_rng_ = rng;
}

void InProcRpcLink::transmit(const Bytes& datagram,
                             std::function<void(Bytes)> deliver) {
  // Stage 1: the link's ambient loss model (legacy config).
  if (rng_ != nullptr && config_.loss_probability > 0 &&
      rng_->chance(config_.loss_probability)) {
    return;
  }
  // Stage 2: the chaos fault filter, both directions, injector-owned RNG so
  // fault draws never perturb the scenario's randomness.
  Duration latency = config_.latency;
  std::size_t copies = 1;
  if (fault_rng_ != nullptr) {
    if (fault_.drop > 0 && fault_rng_->chance(fault_.drop)) {
      metrics_.fault_dropped.inc();
      return;
    }
    if (fault_.duplicate > 0 && fault_rng_->chance(fault_.duplicate)) {
      metrics_.fault_duplicated.inc();
      copies = 2;
    }
    if (fault_.extra_delay > 0) {
      metrics_.fault_delayed.inc();
      latency += fault_.extra_delay;
    }
  }
  for (std::size_t i = 0; i < copies; ++i) {
    // Duplicates trail the original by one extra latency so reordering with
    // respect to later traffic is actually exercised.
    loop_.schedule(latency + static_cast<Duration>(i) * config_.latency,
                   [datagram, deliver](){ deliver(datagram); });
  }
}

// ---------------------------------------------------------------------------
// UdpServerTransport

UdpServerTransport::UdpServerTransport(Database& db, std::uint16_t port,
                                       telemetry::MetricRegistry& metrics) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
  if (fd_ < 0) {
    HW_LOG_ERROR(kLog, "socket() failed: %s", std::strerror(errno));
    return;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    HW_LOG_ERROR(kLog, "bind() failed: %s", std::strerror(errno));
    ::close(fd_);
    fd_ = -1;
    return;
  }
  socklen_t len = sizeof addr;
  ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  server_ = std::make_unique<RpcServer>(
      db, [this](ClientAddress to, const Bytes& datagram) {
        // ClientAddress packs (ip, port) of the peer.
        sockaddr_in peer{};
        peer.sin_family = AF_INET;
        peer.sin_addr.s_addr = htonl(static_cast<std::uint32_t>(to >> 16));
        peer.sin_port = htons(static_cast<std::uint16_t>(to & 0xffff));
        ::sendto(fd_, datagram.data(), datagram.size(), 0,
                 reinterpret_cast<sockaddr*>(&peer), sizeof peer);
      },
      metrics);
}

UdpServerTransport::~UdpServerTransport() {
  if (fd_ >= 0) ::close(fd_);
}

std::size_t UdpServerTransport::poll() {
  if (fd_ < 0) return 0;
  std::size_t handled = 0;
  Bytes buf(kMaxDatagram);
  while (true) {
    sockaddr_in peer{};
    socklen_t peer_len = sizeof peer;
    const ssize_t n = ::recvfrom(fd_, buf.data(), buf.size(), 0,
                                 reinterpret_cast<sockaddr*>(&peer), &peer_len);
    if (n < 0) break;  // EWOULDBLOCK: drained
    const ClientAddress from =
        (static_cast<ClientAddress>(ntohl(peer.sin_addr.s_addr)) << 16) |
        ntohs(peer.sin_port);
    server_->handle_datagram(from,
                             std::span(buf.data(), static_cast<std::size_t>(n)));
    ++handled;
  }
  return handled;
}

// ---------------------------------------------------------------------------
// UdpClientTransport

UdpClientTransport::UdpClientTransport(std::uint16_t server_port,
                                       sim::EventLoop* loop,
                                       telemetry::MetricRegistry& metrics)
    : loop_(loop) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
  if (fd_ < 0) {
    HW_LOG_ERROR(kLog, "socket() failed: %s", std::strerror(errno));
    return;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server_port);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    HW_LOG_ERROR(kLog, "connect() failed: %s", std::strerror(errno));
    ::close(fd_);
    fd_ = -1;
    return;
  }
  client_ = std::make_unique<RpcClient>(
      [this](const Bytes& datagram) {
        if (fd_ >= 0) ::send(fd_, datagram.data(), datagram.size(), 0);
      },
      metrics);
}

UdpClientTransport::~UdpClientTransport() {
  if (fd_ >= 0) ::close(fd_);
}

std::size_t UdpClientTransport::poll() {
  if (fd_ < 0) return 0;
  std::size_t handled = 0;
  Bytes buf(kMaxDatagram);
  while (true) {
    const ssize_t n = ::recv(fd_, buf.data(), buf.size(), 0);
    if (n < 0) break;
    client_->handle_datagram(std::span(buf.data(), static_cast<std::size_t>(n)));
    ++handled;
  }
  return handled;
}

bool UdpClientTransport::wait(int timeout_ms) {
  if (fd_ < 0) return false;
  // Run sim work that is already due (virtual time does not advance), then
  // park in a single poll() for the whole remaining budget. The old
  // implementation re-polled in a loop, burning cycles and — when driven
  // from a simulation — consuming events that had not come due yet; a
  // timed-out wait must leave the loop's executed() count unchanged.
  if (loop_ != nullptr) loop_->run_until(loop_->now());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  pollfd pfd{fd_, POLLIN, 0};
  while (true) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    const int budget = timeout_ms < 0 ? -1 : static_cast<int>(
        remaining.count() < 0 ? 0 : remaining.count());
    const int rc = ::poll(&pfd, 1, budget);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno != EINTR) return false;  // real error; surface as timeout
    // EINTR: resume the same wait with the leftover budget (still one
    // logical blocking poll, not a busy loop).
  }
}

}  // namespace hw::hwdb::rpc
