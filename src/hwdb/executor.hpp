// Query execution over hwdb tables.
#pragma once

#include "hwdb/query.hpp"
#include "hwdb/table.hpp"

namespace hw::hwdb {

/// Executes `q` against `table` with `now` as the window reference point.
/// The scan walks newest-first and stops at the window boundary, so cost is
/// proportional to the window, not the buffer.
Result<ResultSet> execute(const SelectQuery& q, const Table& table, Timestamp now);

/// Join-capable overload: `right` is the joined table (may be null when the
/// query has no JOIN clause). Join semantics are temporal "as-of": each
/// driving row pairs with the newest right row of equal key not newer than
/// itself; unmatched rows are dropped.
Result<ResultSet> execute(const SelectQuery& q, const Table& table,
                          const Table* right, Timestamp now);

/// Evaluates a WHERE tree against one row (exposed for property tests).
Result<bool> eval_predicate(const Predicate& p, const Schema& schema,
                            const Row& row);

}  // namespace hw::hwdb
