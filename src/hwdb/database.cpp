#include "hwdb/database.hpp"

#include <algorithm>
#include <bit>

#include "util/logging.hpp"

namespace hw::hwdb {
namespace {
constexpr std::string_view kLog = "hwdb";
}  // namespace

Status Database::create_table(Schema schema, std::size_t capacity) {
  const std::string name = schema.name();
  if (tables_.count(name) != 0) {
    return Status::failure("table exists: " + name);
  }
  if (capacity == 0) return Status::failure("table capacity must be > 0");
  tables_.emplace(name, std::make_unique<Table>(std::move(schema), capacity));
  metrics_.tables.set(static_cast<std::int64_t>(tables_.size()));
  return {};
}

Table* Database::table(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Database::table(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Database::table_names() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, _] : tables_) out.push_back(name);
  return out;
}

Status Database::insert(const std::string& table_name, std::vector<Value> values) {
  const telemetry::ScopedTimer timer(metrics_.insert_ns);
  Table* t = table(table_name);
  if (t == nullptr) {
    metrics_.insert_errors.inc();
    return Status::failure("no such table: " + table_name);
  }
  auto status = t->insert(loop_.now(), std::move(values));
  if (!status.ok()) {
    metrics_.insert_errors.inc();
    HW_LOG_WARN(kLog, "%s", status.error().message.c_str());
    return status;
  }
  metrics_.inserts.inc();

  // Fire on-insert continuous queries bound to this table.
  for (auto& [id, sub] : subs_) {
    if (sub->mode == SubscriptionMode::OnInsert && sub->query.table == table_name) {
      fire(*sub);
    }
  }
  return {};
}

Result<ResultSet> Database::query(std::string_view text) const {
  auto parsed = parse_query(text);
  if (!parsed) return parsed.error();
  return query(parsed.value());
}

Result<ResultSet> Database::query(const SelectQuery& q) const {
  metrics_.queries.inc();
  const Table* t = table(q.table);
  if (t == nullptr) return make_error("no such table: " + q.table);
  const Table* right = nullptr;
  if (q.join) {
    right = table(q.join->table);
    if (right == nullptr) {
      return make_error("no such table: " + q.join->table);
    }
  }
  return execute(q, *t, right, loop_.now());
}

Result<SubscriptionId> Database::subscribe(std::string_view query_text,
                                           SubscriptionMode mode, Duration period,
                                           SubscriptionCallback cb) {
  auto parsed = parse_query(query_text);
  if (!parsed) return parsed.error();
  if (table(parsed.value().table) == nullptr) {
    return make_error("no such table: " + parsed.value().table);
  }
  if (mode == SubscriptionMode::Periodic && period == 0) {
    return make_error("periodic subscription needs period > 0");
  }

  auto sub = std::make_unique<Subscription>();
  sub->id = next_sub_id_++;
  sub->query = std::move(parsed).take();
  sub->mode = mode;
  sub->cb = std::move(cb);

  Subscription* raw = sub.get();
  if (mode == SubscriptionMode::Periodic) {
    sub->timer = std::make_unique<sim::PeriodicTimer>(loop_, period,
                                                      [this, raw] { fire(*raw); });
    sub->timer->start();
  }
  const SubscriptionId id = sub->id;
  subs_.emplace(id, std::move(sub));
  return id;
}

void Database::unsubscribe(SubscriptionId id) { subs_.erase(id); }

void Database::fire(Subscription& sub) {
  auto result = query(sub.query);
  if (!result) {
    HW_LOG_WARN(kLog, "subscription %llu failed: %s",
                static_cast<unsigned long long>(sub.id),
                result.error().message.c_str());
    return;
  }
  metrics_.subscription_fires.inc();
  sub.cb(sub.id, result.value());
}

namespace {

constexpr std::uint32_t kTableTag = snapshot::tag("HTBL");
constexpr std::uint32_t kMetaTag = snapshot::tag("HMET");

void put_value(ByteWriter& w, const Value& v) {
  w.u8(static_cast<std::uint8_t>(v.type()));
  switch (v.type()) {
    case ColumnType::Int:
      w.u64(static_cast<std::uint64_t>(v.as_int()));
      break;
    case ColumnType::Real:
      w.u64(std::bit_cast<std::uint64_t>(v.as_real()));
      break;
    case ColumnType::Text:
      snapshot::put_string(w, v.as_text());
      break;
    case ColumnType::Ts:
      w.u64(v.as_ts());
      break;
  }
}

Result<Value> get_value(ByteReader& r) {
  auto type = r.u8();
  if (!type) return type.error();
  switch (static_cast<ColumnType>(type.value())) {
    case ColumnType::Int: {
      auto v = r.u64();
      if (!v) return v.error();
      return Value{static_cast<std::int64_t>(v.value())};
    }
    case ColumnType::Real: {
      auto v = r.u64();
      if (!v) return v.error();
      return Value{std::bit_cast<double>(v.value())};
    }
    case ColumnType::Text: {
      auto s = snapshot::get_string(r);
      if (!s) return s.error();
      return Value{std::move(s).take()};
    }
    case ColumnType::Ts: {
      auto v = r.u64();
      if (!v) return v.error();
      return Value::ts(v.value());
    }
  }
  return make_error("hwdb snapshot: unknown value type");
}

}  // namespace

void Database::save(snapshot::Writer& w) const {
  // tables_ is an ordered map, so the chunk sequence is deterministic.
  for (const auto& [name, table] : tables_) {
    ByteWriter& c = w.begin_chunk(kTableTag);
    snapshot::put_string(c, name);
    c.u64(table->capacity());
    c.u64(table->inserted());
    c.u64(table->evicted());
    const auto& columns = table->schema().columns();
    c.u32(static_cast<std::uint32_t>(columns.size()));
    for (const auto& col : columns) {
      snapshot::put_string(c, col.name);
      c.u8(static_cast<std::uint8_t>(col.type));
    }
    c.u32(static_cast<std::uint32_t>(table->size()));
    table->rows().for_each([&](const Row& row) {
      c.u64(row.ts);
      for (const Value& v : row.values) put_value(c, v);
      return true;
    });
    w.end_chunk();
  }
  ByteWriter& meta = w.begin_chunk(kMetaTag);
  meta.u64(next_sub_id_);
  w.end_chunk();
}

Status Database::restore(const snapshot::Reader& r) {
  for (const Bytes* chunk : r.find_all(kTableTag)) {
    ByteReader br(*chunk);
    auto name = snapshot::get_string(br);
    if (!name) return name.error();
    auto capacity = br.u64();
    auto inserted = br.u64();
    auto evicted = br.u64();
    auto ncols = br.u32();
    if (!capacity || !inserted || !evicted || !ncols) {
      return make_error("hwdb snapshot: truncated table header");
    }
    std::vector<ColumnDef> columns;
    columns.reserve(ncols.value());
    for (std::uint32_t i = 0; i < ncols.value(); ++i) {
      auto col_name = snapshot::get_string(br);
      auto col_type = br.u8();
      if (!col_name || !col_type) {
        return make_error("hwdb snapshot: truncated column defs");
      }
      columns.push_back(ColumnDef{std::move(col_name).take(),
                                  static_cast<ColumnType>(col_type.value())});
    }
    auto nrows = br.u32();
    if (!nrows) return nrows.error();
    std::vector<Row> rows;
    rows.reserve(nrows.value());
    for (std::uint32_t i = 0; i < nrows.value(); ++i) {
      Row row;
      auto ts = br.u64();
      if (!ts) return ts.error();
      row.ts = ts.value();
      row.values.reserve(columns.size());
      for (std::size_t col = 0; col < columns.size(); ++col) {
        auto v = get_value(br);
        if (!v) return v.error();
        row.values.push_back(std::move(v).take());
      }
      rows.push_back(std::move(row));
    }

    Table* t = table(name.value());
    if (t == nullptr) {
      // A table this home has not (yet) created: materialize it.
      if (auto s = create_table(Schema(name.value(), columns),
                                capacity.value());
          !s.ok()) {
        return s;
      }
      t = table(name.value());
    } else {
      if (t->capacity() != capacity.value() ||
          t->schema().columns().size() != columns.size()) {
        return Status::failure("hwdb snapshot: schema mismatch for table " +
                               name.value());
      }
      for (std::size_t i = 0; i < columns.size(); ++i) {
        if (t->schema().columns()[i].name != columns[i].name ||
            t->schema().columns()[i].type != columns[i].type) {
          return Status::failure("hwdb snapshot: schema mismatch for table " +
                                 name.value());
        }
      }
    }
    if (auto s = t->restore_rows(std::move(rows), inserted.value(),
                                 evicted.value());
        !s.ok()) {
      return s;
    }
  }
  if (const Bytes* meta = r.find(kMetaTag); meta != nullptr) {
    ByteReader br(*meta);
    auto next_id = br.u64();
    if (!next_id) return next_id.error();
    // Live subscriptions keep their ids; only make sure new ones never
    // collide with ids the captured home had handed out.
    next_sub_id_ = std::max(next_sub_id_, next_id.value());
  }
  metrics_.tables.set(static_cast<std::int64_t>(tables_.size()));
  return Status::success();
}

}  // namespace hw::hwdb
