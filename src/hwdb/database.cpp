#include "hwdb/database.hpp"

#include "util/logging.hpp"

namespace hw::hwdb {
namespace {
constexpr std::string_view kLog = "hwdb";
}  // namespace

Status Database::create_table(Schema schema, std::size_t capacity) {
  const std::string name = schema.name();
  if (tables_.count(name) != 0) {
    return Status::failure("table exists: " + name);
  }
  if (capacity == 0) return Status::failure("table capacity must be > 0");
  tables_.emplace(name, std::make_unique<Table>(std::move(schema), capacity));
  metrics_.tables.set(static_cast<std::int64_t>(tables_.size()));
  return {};
}

Table* Database::table(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Database::table(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Database::table_names() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, _] : tables_) out.push_back(name);
  return out;
}

Status Database::insert(const std::string& table_name, std::vector<Value> values) {
  const telemetry::ScopedTimer timer(metrics_.insert_ns);
  Table* t = table(table_name);
  if (t == nullptr) {
    metrics_.insert_errors.inc();
    return Status::failure("no such table: " + table_name);
  }
  auto status = t->insert(loop_.now(), std::move(values));
  if (!status.ok()) {
    metrics_.insert_errors.inc();
    HW_LOG_WARN(kLog, "%s", status.error().message.c_str());
    return status;
  }
  metrics_.inserts.inc();

  // Fire on-insert continuous queries bound to this table.
  for (auto& [id, sub] : subs_) {
    if (sub->mode == SubscriptionMode::OnInsert && sub->query.table == table_name) {
      fire(*sub);
    }
  }
  return {};
}

Result<ResultSet> Database::query(std::string_view text) const {
  auto parsed = parse_query(text);
  if (!parsed) return parsed.error();
  return query(parsed.value());
}

Result<ResultSet> Database::query(const SelectQuery& q) const {
  metrics_.queries.inc();
  const Table* t = table(q.table);
  if (t == nullptr) return make_error("no such table: " + q.table);
  const Table* right = nullptr;
  if (q.join) {
    right = table(q.join->table);
    if (right == nullptr) {
      return make_error("no such table: " + q.join->table);
    }
  }
  return execute(q, *t, right, loop_.now());
}

Result<SubscriptionId> Database::subscribe(std::string_view query_text,
                                           SubscriptionMode mode, Duration period,
                                           SubscriptionCallback cb) {
  auto parsed = parse_query(query_text);
  if (!parsed) return parsed.error();
  if (table(parsed.value().table) == nullptr) {
    return make_error("no such table: " + parsed.value().table);
  }
  if (mode == SubscriptionMode::Periodic && period == 0) {
    return make_error("periodic subscription needs period > 0");
  }

  auto sub = std::make_unique<Subscription>();
  sub->id = next_sub_id_++;
  sub->query = std::move(parsed).take();
  sub->mode = mode;
  sub->cb = std::move(cb);

  Subscription* raw = sub.get();
  if (mode == SubscriptionMode::Periodic) {
    sub->timer = std::make_unique<sim::PeriodicTimer>(loop_, period,
                                                      [this, raw] { fire(*raw); });
    sub->timer->start();
  }
  const SubscriptionId id = sub->id;
  subs_.emplace(id, std::move(sub));
  return id;
}

void Database::unsubscribe(SubscriptionId id) { subs_.erase(id); }

void Database::fire(Subscription& sub) {
  auto result = query(sub.query);
  if (!result) {
    HW_LOG_WARN(kLog, "subscription %llu failed: %s",
                static_cast<unsigned long long>(sub.id),
                result.error().message.c_str());
    return;
  }
  metrics_.subscription_fires.inc();
  sub.cb(sub.id, result.value());
}

}  // namespace hw::hwdb
