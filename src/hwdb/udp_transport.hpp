// Transports binding RpcServer/RpcClient together.
//
// InProcRpcLink routes datagrams through the simulation event loop (with a
// configurable latency and loss model, since UDP gives no guarantees).
// UdpServerTransport/UdpClientTransport use real AF_INET sockets on
// loopback, preserving the paper's deployment shape; they are poll-driven so
// tests can pump them without threads.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "hwdb/rpc_client.hpp"
#include "hwdb/rpc_server.hpp"
#include "sim/event_loop.hpp"
#include "util/rand.hpp"

namespace hw::hwdb::rpc {

/// In-process datagram link between one server and N clients.
class InProcRpcLink {
 public:
  struct Config {
    Duration latency = 200;  // one-way, microseconds
    double loss_probability = 0.0;
  };

  InProcRpcLink(sim::EventLoop& loop, Database& db, Config config,
                Rng* rng = nullptr);
  InProcRpcLink(sim::EventLoop& loop, Database& db)
      : InProcRpcLink(loop, db, Config{}) {}
  ~InProcRpcLink();

  /// Creates a client attached to the link.
  RpcClient& make_client();

  [[nodiscard]] RpcServer& server() { return *server_; }

 private:
  sim::EventLoop& loop_;
  Config config_;
  Rng* rng_;
  std::unique_ptr<RpcServer> server_;
  std::vector<std::unique_ptr<RpcClient>> clients_;
};

/// Real-socket UDP server. Bind to 127.0.0.1:port (0 = ephemeral); call
/// poll() to drain pending datagrams.
class UdpServerTransport {
 public:
  UdpServerTransport(Database& db, std::uint16_t port);
  ~UdpServerTransport();
  UdpServerTransport(const UdpServerTransport&) = delete;
  UdpServerTransport& operator=(const UdpServerTransport&) = delete;

  [[nodiscard]] bool ok() const { return fd_ >= 0; }
  [[nodiscard]] std::uint16_t port() const { return port_; }
  /// Processes all currently queued datagrams; returns how many.
  std::size_t poll();

  [[nodiscard]] RpcServer& server() { return *server_; }

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::unique_ptr<RpcServer> server_;
};

/// Real-socket UDP client talking to a UdpServerTransport.
class UdpClientTransport {
 public:
  explicit UdpClientTransport(std::uint16_t server_port);
  ~UdpClientTransport();
  UdpClientTransport(const UdpClientTransport&) = delete;
  UdpClientTransport& operator=(const UdpClientTransport&) = delete;

  [[nodiscard]] bool ok() const { return fd_ >= 0; }
  /// Processes queued datagrams from the server; returns how many.
  std::size_t poll();
  /// Polls until a datagram arrives or `timeout_ms` elapses.
  bool wait(int timeout_ms);

  [[nodiscard]] RpcClient& client() { return *client_; }

 private:
  int fd_ = -1;
  std::unique_ptr<RpcClient> client_;
};

}  // namespace hw::hwdb::rpc
