// Transports binding RpcServer/RpcClient together.
//
// InProcRpcLink routes datagrams through the simulation event loop (with a
// configurable latency and loss model, since UDP gives no guarantees).
// UdpServerTransport/UdpClientTransport use real AF_INET sockets on
// loopback, preserving the paper's deployment shape; they are poll-driven so
// tests can pump them without threads.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "hwdb/rpc_client.hpp"
#include "hwdb/rpc_server.hpp"
#include "sim/event_loop.hpp"
#include "sim/fault_injector.hpp"
#include "util/rand.hpp"

namespace hw::hwdb::rpc {

/// Snapshot view over the link's fault-filter telemetry.
struct RpcLinkStats {
  std::uint64_t fault_dropped = 0;
  std::uint64_t fault_duplicated = 0;
  std::uint64_t fault_delayed = 0;
};

/// In-process datagram link between one server and N clients.
class InProcRpcLink {
 public:
  struct Config {
    Duration latency = 200;  // one-way, microseconds
    double loss_probability = 0.0;
  };

  /// `metrics` scopes the link's instruments and those of the server and
  /// every client it creates; defaults to the thread's active registry.
  InProcRpcLink(sim::EventLoop& loop, Database& db, Config config,
                Rng* rng = nullptr,
                telemetry::MetricRegistry& metrics =
                    telemetry::MetricRegistry::current());
  InProcRpcLink(sim::EventLoop& loop, Database& db)
      : InProcRpcLink(loop, db, Config{}) {}
  ~InProcRpcLink();

  /// Creates a fire-and-forget client attached to the link.
  RpcClient& make_client();
  /// Creates a client whose calls are retried on the link's event loop.
  RpcClient& make_client(RetryPolicy policy);

  /// Chaos hook (sim::FaultInjector::set_hwdb_fault): mangles datagrams in
  /// both directions while active. Pass a default DatagramFault to clear.
  void set_fault(const sim::DatagramFault& fault, Rng* rng);

  [[nodiscard]] RpcServer& server() { return *server_; }
  [[nodiscard]] RpcLinkStats stats() const {
    return {metrics_.fault_dropped.value(), metrics_.fault_duplicated.value(),
            metrics_.fault_delayed.value()};
  }

 private:
  /// Applies loss + the fault filter, then schedules `deliver` for every
  /// surviving copy of the datagram.
  void transmit(const Bytes& datagram, std::function<void(Bytes)> deliver);

  sim::EventLoop& loop_;
  Config config_;
  Rng* rng_;
  telemetry::MetricRegistry& registry_;  // handed to created clients
  sim::DatagramFault fault_;
  Rng* fault_rng_ = nullptr;
  std::unique_ptr<RpcServer> server_;
  std::vector<std::unique_ptr<RpcClient>> clients_;
  struct Instruments {
    explicit Instruments(telemetry::MetricRegistry& reg)
        : fault_dropped{reg, "hwdb.rpc_link.fault_dropped"},
          fault_duplicated{reg, "hwdb.rpc_link.fault_duplicated"},
          fault_delayed{reg, "hwdb.rpc_link.fault_delayed"} {}
    telemetry::Counter fault_dropped;
    telemetry::Counter fault_duplicated;
    telemetry::Counter fault_delayed;
  } metrics_;
};

/// Real-socket UDP server. Bind to 127.0.0.1:port (0 = ephemeral); call
/// poll() to drain pending datagrams.
class UdpServerTransport {
 public:
  UdpServerTransport(Database& db, std::uint16_t port,
                     telemetry::MetricRegistry& metrics =
                         telemetry::MetricRegistry::current());
  ~UdpServerTransport();
  UdpServerTransport(const UdpServerTransport&) = delete;
  UdpServerTransport& operator=(const UdpServerTransport&) = delete;

  [[nodiscard]] bool ok() const { return fd_ >= 0; }
  [[nodiscard]] std::uint16_t port() const { return port_; }
  /// Processes all currently queued datagrams; returns how many.
  std::size_t poll();

  [[nodiscard]] RpcServer& server() { return *server_; }

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::unique_ptr<RpcServer> server_;
};

/// Real-socket UDP client talking to a UdpServerTransport. Optionally bound
/// to a simulation EventLoop: wait() then drains already-due events before
/// blocking, but never advances virtual time.
class UdpClientTransport {
 public:
  explicit UdpClientTransport(std::uint16_t server_port,
                              sim::EventLoop* loop = nullptr,
                              telemetry::MetricRegistry& metrics =
                                  telemetry::MetricRegistry::current());
  ~UdpClientTransport();
  UdpClientTransport(const UdpClientTransport&) = delete;
  UdpClientTransport& operator=(const UdpClientTransport&) = delete;

  [[nodiscard]] bool ok() const { return fd_ >= 0; }
  /// Processes queued datagrams from the server; returns how many.
  std::size_t poll();
  /// Blocks until a datagram arrives or `timeout_ms` elapses — one
  /// event-driven ::poll on the socket for the whole budget, never a
  /// busy-poll loop. A timed-out wait consumes zero simulation events and
  /// leaves the virtual clock untouched (events already due when wait() is
  /// entered are drained first so sim-scheduled sends are not starved).
  bool wait(int timeout_ms);

  [[nodiscard]] RpcClient& client() { return *client_; }

 private:
  int fd_ = -1;
  sim::EventLoop* loop_ = nullptr;
  std::unique_ptr<RpcClient> client_;
};

}  // namespace hw::hwdb::rpc
