// Wire codec for hwdb's "simple UDP-based RPC interface" (paper §2).
// Datagram layout:
//   request : u32 request_id | u8 opcode | body
//   response: u32 request_id | u8 status  | body     (status 0=ok, 1=error)
//   push    : u32 0          | u8 opcode=Publish | u64 sub_id | resultset
// Every multi-byte field is network byte order.
#pragma once

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "hwdb/query.hpp"
#include "util/bytes.hpp"

namespace hw::hwdb::rpc {

enum class Opcode : std::uint8_t {
  Insert = 1,
  Query = 2,
  Subscribe = 3,
  Unsubscribe = 4,
  Ping = 5,
  Publish = 6,  // server→client push
};

struct InsertRequest {
  std::string table;
  std::vector<Value> values;
};

struct QueryRequest {
  std::string cql;
};

struct SubscribeRequest {
  std::string cql;
  bool on_insert = false;   // false: periodic
  std::uint32_t period_ms = 1000;
};

struct UnsubscribeRequest {
  std::uint64_t sub_id = 0;
};

struct PingRequest {};

using RequestBody = std::variant<InsertRequest, QueryRequest, SubscribeRequest,
                                 UnsubscribeRequest, PingRequest>;

struct Request {
  std::uint32_t request_id = 0;
  RequestBody body;
};

struct Response {
  std::uint32_t request_id = 0;
  bool ok = true;
  std::string error;            // when !ok
  std::optional<ResultSet> result;   // Query
  std::optional<std::uint64_t> sub_id;  // Subscribe
};

struct Publish {
  std::uint64_t sub_id = 0;
  ResultSet result;
};

Bytes encode(const Request& req);
Bytes encode(const Response& resp);
Bytes encode(const Publish& push);

/// Datagram classification after decoding.
using Decoded = std::variant<Request, Response, Publish>;
Result<Decoded> decode(std::span<const std::uint8_t> datagram,
                       bool from_server);

/// Shared helpers (exposed for tests).
void write_result_set(ByteWriter& w, const ResultSet& rs);
Result<ResultSet> read_result_set(ByteReader& r);
void write_value(ByteWriter& w, const Value& v);
Result<Value> read_value(ByteReader& r);

}  // namespace hw::hwdb::rpc
