// Wire codec for hwdb's "simple UDP-based RPC interface" (paper §2).
// Datagram layout:
//   request : u32 request_id | u8 opcode | body
//   response: u32 request_id | u8 status  | body     (status 0=ok, 1=error)
//   push    : u32 0          | u8 opcode=Publish | u64 sub_id | resultset
// Every multi-byte field is network byte order.
#pragma once

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "hwdb/query.hpp"
#include "util/bytes.hpp"

namespace hw::hwdb::rpc {

enum class Opcode : std::uint8_t {
  Insert = 1,
  Query = 2,
  Subscribe = 3,
  Unsubscribe = 4,
  Ping = 5,
  Publish = 6,  // server→client push
  // Live-operations verbs (src/live, docs/liveops.md). They share this wire
  // protocol so livectl and the paper's satellite interfaces speak one
  // dialect, but only a LiveServer answers them; the hwdb RpcServer rejects
  // them with an error response.
  SubscribeSeries = 7,
  Mutate = 8,
  Delta = 9,  // server→client push
};

struct InsertRequest {
  std::string table;
  std::vector<Value> values;
};

struct QueryRequest {
  std::string cql;
};

struct SubscribeRequest {
  std::string cql;
  bool on_insert = false;   // false: periodic
  std::uint32_t period_ms = 1000;
};

struct UnsubscribeRequest {
  std::uint64_t sub_id = 0;
};

struct PingRequest {};

/// Home selector meaning "the whole fleet, merged in home-id order".
constexpr std::uint32_t kAllHomes = 0xffffffffu;

/// Subscribe to telemetry series streamed from a running LiveFleet. The
/// server answers with a sub_id and then pushes Delta frames at barrier
/// cadence (every `every`-th barrier), bounded per subscription by
/// `max_queue` frames (drop-oldest under backpressure).
struct SubscribeSeriesRequest {
  /// Exact `layer.module.name`, or a prefix ending in '*' ("live.home.*").
  std::string pattern = "*";
  std::uint32_t home = kAllHomes;
  std::uint32_t every = 1;
  std::uint32_t max_queue = 64;
};

/// Control-mutation verbs against a running fleet (live::Mutation mirrors
/// this; the codec only fixes the wire values).
enum class MutateKind : std::uint8_t {
  Admit = 1,        // text = device name (or MAC)
  Expel = 2,        // text = device name (or MAC)
  ApplyPolicy = 3,  // text = policy id, aux = policy JSON body
  RevokePolicy = 4, // text = policy id
  Checkpoint = 5,   // fleet-wide consistent capture at the barrier
  InjectFault = 6,  // text = fault kind, aux = loss, arg0 = offset, arg1 = len
  Pause = 7,        // freeze the virtual clock at the barrier
  Resume = 8,
  Step = 9,         // arg0 = barriers to run while paused (default 1)
  Replay = 10,      // re-execute from the last checkpoint and verify
  Hibernate = 11,   // force-evict a home to its snapshot image (residency)
  Wake = 12,        // page a hibernated home back in
};

struct MutateRequest {
  MutateKind kind = MutateKind::Admit;
  std::uint32_t home = 0;
  std::string text;
  std::string aux;
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
};

using RequestBody = std::variant<InsertRequest, QueryRequest, SubscribeRequest,
                                 UnsubscribeRequest, PingRequest,
                                 SubscribeSeriesRequest, MutateRequest>;

struct Request {
  std::uint32_t request_id = 0;
  RequestBody body;
};

struct Response {
  std::uint32_t request_id = 0;
  bool ok = true;
  std::string error;            // when !ok
  std::optional<ResultSet> result;   // Query
  std::optional<std::uint64_t> sub_id;  // Subscribe / SubscribeSeries
  /// Mutate: the virtual-time barrier the mutation lands on.
  std::optional<Timestamp> applied_at;
};

struct Publish {
  std::uint64_t sub_id = 0;
  ResultSet result;
};

/// One streamed telemetry frame. `values` carries absolute series values
/// (telemetry::scalar_delta semantics): a delta frame lists only series that
/// changed since the previous frame, a snapshot frame lists every matched
/// series (first frame of a subscription, and the resync frame after the
/// server dropped queued frames under backpressure). `seq` is monotonic per
/// subscription; `dropped` counts frames shed since the last delivery.
struct DeltaPush {
  std::uint64_t sub_id = 0;
  std::uint64_t seq = 0;
  Timestamp vtime = 0;
  std::uint32_t home = kAllHomes;
  bool snapshot = false;
  std::uint64_t dropped = 0;
  std::vector<std::pair<std::string, double>> values;
};

Bytes encode(const Request& req);
Bytes encode(const Response& resp);
Bytes encode(const Publish& push);
Bytes encode(const DeltaPush& push);

/// Datagram classification after decoding.
using Decoded = std::variant<Request, Response, Publish, DeltaPush>;
Result<Decoded> decode(std::span<const std::uint8_t> datagram,
                       bool from_server);

/// Shared helpers (exposed for tests).
void write_result_set(ByteWriter& w, const ResultSet& rs);
Result<ResultSet> read_result_set(ByteReader& r);
void write_value(ByteWriter& w, const Value& v);
Result<Value> read_value(ByteReader& r);

}  // namespace hw::hwdb::rpc
