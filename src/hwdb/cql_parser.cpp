#include "hwdb/cql_parser.hpp"

#include <cctype>
#include <charconv>

#include "util/strings.hpp"

namespace hw::hwdb {
namespace {

struct Token {
  enum class Kind { Ident, Number, String, Symbol, End };
  Kind kind = Kind::End;
  std::string text;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<Token> next() {
    skip_ws();
    if (pos_ >= text_.size()) return Token{Token::Kind::End, ""};
    const char c = text_[pos_];

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_' || text_[pos_] == '.')) {
        ++pos_;
      }
      return Token{Token::Kind::Ident, std::string(text_.substr(start, pos_ - start))};
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && pos_ + 1 < text_.size() &&
         std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))) {
      std::size_t start = pos_;
      ++pos_;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '.')) {
        ++pos_;
      }
      return Token{Token::Kind::Number, std::string(text_.substr(start, pos_ - start))};
    }
    if (c == '\'' || c == '"') {
      const char quote = c;
      ++pos_;
      std::string out;
      while (pos_ < text_.size() && text_[pos_] != quote) {
        out += text_[pos_++];
      }
      if (pos_ >= text_.size()) return make_error("CQL: unterminated string");
      ++pos_;
      return Token{Token::Kind::String, std::move(out)};
    }
    // Multi-char operators.
    if (c == '<' || c == '>' || c == '!') {
      if (pos_ + 1 < text_.size() &&
          (text_[pos_ + 1] == '=' || (c == '<' && text_[pos_ + 1] == '>'))) {
        std::string sym = std::string(text_.substr(pos_, 2));
        pos_ += 2;
        return Token{Token::Kind::Symbol, std::move(sym)};
      }
    }
    ++pos_;
    return Token{Token::Kind::Symbol, std::string(1, c)};
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

class Parser {
 public:
  explicit Parser(std::string_view text) : lexer_(text) {}

  Result<SelectQuery> parse() {
    if (auto s = advance(); !s.ok()) return s.error();
    if (!accept_keyword("SELECT")) return make_error("CQL: expected SELECT");

    SelectQuery q;
    // Projections.
    while (true) {
      auto proj = parse_projection();
      if (!proj) return proj.error();
      q.projections.push_back(std::move(proj).take());
      if (!accept_symbol(",")) break;
    }
    // A lone '*' projection means select-all.
    if (q.projections.size() == 1 && q.projections[0].fn == AggFn::None &&
        q.projections[0].column == "*") {
      q.projections.clear();
    }

    if (!accept_keyword("FROM")) return make_error("CQL: expected FROM");
    if (cur_.kind != Token::Kind::Ident) return make_error("CQL: expected table name");
    q.table = cur_.text;
    if (auto s = advance(); !s.ok()) return s.error();

    // Window.
    if (accept_symbol("[")) {
      auto window = parse_window();
      if (!window) return window.error();
      q.window = window.value();
      if (!accept_symbol("]")) return make_error("CQL: expected ']'");
    }

    // Temporal as-of join: JOIN other ON left_col = right_col.
    if (accept_keyword("JOIN")) {
      JoinClause join;
      if (cur_.kind != Token::Kind::Ident) {
        return make_error("CQL: expected table after JOIN");
      }
      join.table = cur_.text;
      if (auto s = advance(); !s.ok()) return s.error();
      if (!accept_keyword("ON")) return make_error("CQL: expected ON");
      if (cur_.kind != Token::Kind::Ident) {
        return make_error("CQL: expected column in ON");
      }
      join.left_column = cur_.text;
      if (auto s = advance(); !s.ok()) return s.error();
      if (!accept_symbol("=")) return make_error("CQL: expected '=' in ON");
      if (cur_.kind != Token::Kind::Ident) {
        return make_error("CQL: expected column in ON");
      }
      join.right_column = cur_.text;
      if (auto s = advance(); !s.ok()) return s.error();
      // Strip "table." qualifiers on the ON columns when present.
      auto strip = [](std::string& col, const std::string& table) {
        const auto dot = col.find('.');
        if (dot != std::string::npos && iequals(col.substr(0, dot), table)) {
          col = col.substr(dot + 1);
        }
      };
      strip(join.left_column, q.table);
      strip(join.right_column, join.table);
      q.join = std::move(join);
    }

    if (accept_keyword("WHERE")) {
      auto pred = parse_or();
      if (!pred) return pred.error();
      q.where = std::move(pred).take();
    }

    if (accept_keyword("GROUP")) {
      if (!accept_keyword("BY")) return make_error("CQL: expected BY after GROUP");
      while (true) {
        if (cur_.kind != Token::Kind::Ident) {
          return make_error("CQL: expected column in GROUP BY");
        }
        q.group_by.push_back(cur_.text);
        if (auto s = advance(); !s.ok()) return s.error();
        if (!accept_symbol(",")) break;
      }
    }

    if (accept_keyword("LIMIT")) {
      if (cur_.kind != Token::Kind::Number) {
        return make_error("CQL: expected number after LIMIT");
      }
      std::uint64_t n = 0;
      std::from_chars(cur_.text.data(), cur_.text.data() + cur_.text.size(), n);
      if (n == 0) return make_error("CQL: LIMIT must be positive");
      q.limit = n;
      if (auto s = advance(); !s.ok()) return s.error();
    }

    if (cur_.kind != Token::Kind::End) {
      return make_error("CQL: unexpected trailing token '" + cur_.text + "'");
    }

    // Aggregate/group sanity: non-aggregate projections must be grouped.
    if (q.has_aggregates() || !q.group_by.empty()) {
      for (const auto& p : q.projections) {
        if (p.fn != AggFn::None) continue;
        bool grouped = false;
        for (const auto& g : q.group_by) {
          if (iequals(g, p.column)) grouped = true;
        }
        if (!grouped) {
          return make_error("CQL: column " + p.column +
                            " must appear in GROUP BY or an aggregate");
        }
      }
      if (q.projections.empty()) {
        return make_error("CQL: SELECT * cannot be combined with GROUP BY");
      }
    }
    return q;
  }

 private:
  Status advance() {
    auto t = lexer_.next();
    if (!t) return Status::failure(t.error().message);
    cur_ = std::move(t).take();
    return {};
  }

  bool accept_keyword(std::string_view kw) {
    if (cur_.kind == Token::Kind::Ident && iequals(cur_.text, kw)) {
      (void)advance();
      return true;
    }
    return false;
  }

  bool accept_symbol(std::string_view sym) {
    if (cur_.kind == Token::Kind::Symbol && cur_.text == sym) {
      (void)advance();
      return true;
    }
    return false;
  }

  static std::optional<AggFn> agg_from_name(const std::string& name) {
    if (iequals(name, "count")) return AggFn::Count;
    if (iequals(name, "sum")) return AggFn::Sum;
    if (iequals(name, "avg")) return AggFn::Avg;
    if (iequals(name, "min")) return AggFn::Min;
    if (iequals(name, "max")) return AggFn::Max;
    if (iequals(name, "last")) return AggFn::Last;
    if (iequals(name, "stddev")) return AggFn::Stddev;
    return std::nullopt;
  }

  Result<Projection> parse_projection() {
    Projection p;
    if (cur_.kind == Token::Kind::Symbol && cur_.text == "*") {
      p.column = "*";
      if (auto s = advance(); !s.ok()) return s.error();
      return p;
    }
    if (cur_.kind != Token::Kind::Ident) {
      return make_error("CQL: expected column or aggregate");
    }
    const std::string name = cur_.text;
    if (auto s = advance(); !s.ok()) return s.error();

    if (accept_symbol("(")) {
      auto fn = agg_from_name(name);
      if (!fn) return make_error("CQL: unknown aggregate '" + name + "'");
      p.fn = *fn;
      if (cur_.kind == Token::Kind::Symbol && cur_.text == "*") {
        if (p.fn != AggFn::Count) {
          return make_error("CQL: only count(*) may use '*'");
        }
        p.column = "*";
        if (auto s = advance(); !s.ok()) return s.error();
      } else if (cur_.kind == Token::Kind::Ident) {
        p.column = cur_.text;
        if (auto s = advance(); !s.ok()) return s.error();
      } else {
        return make_error("CQL: expected column inside aggregate");
      }
      if (!accept_symbol(")")) return make_error("CQL: expected ')'");
      return p;
    }
    p.column = name;
    return p;
  }

  Result<Window> parse_window() {
    Window w;
    if (accept_keyword("RANGE")) {
      if (cur_.kind != Token::Kind::Number) {
        return make_error("CQL: expected number after RANGE");
      }
      std::uint64_t n = 0;
      std::from_chars(cur_.text.data(), cur_.text.data() + cur_.text.size(), n);
      if (auto s = advance(); !s.ok()) return s.error();
      std::uint64_t scale = 1;
      if (accept_keyword("SECONDS") || accept_keyword("SECOND")) {
        scale = 1;
      } else if (accept_keyword("MINUTES") || accept_keyword("MINUTE")) {
        scale = 60;
      } else if (accept_keyword("HOURS") || accept_keyword("HOUR")) {
        scale = 3600;
      } else {
        return make_error("CQL: expected time unit after RANGE n");
      }
      w.kind = Window::Kind::Range;
      w.amount = n * scale;
      return w;
    }
    if (accept_keyword("ROWS")) {
      if (cur_.kind != Token::Kind::Number) {
        return make_error("CQL: expected number after ROWS");
      }
      std::uint64_t n = 0;
      std::from_chars(cur_.text.data(), cur_.text.data() + cur_.text.size(), n);
      if (auto s = advance(); !s.ok()) return s.error();
      w.kind = Window::Kind::Rows;
      w.amount = n;
      return w;
    }
    if (accept_keyword("NOW")) {
      w.kind = Window::Kind::Now;
      return w;
    }
    if (accept_keyword("SINCE")) {
      if (cur_.kind != Token::Kind::Number) {
        return make_error("CQL: expected timestamp after SINCE");
      }
      std::uint64_t n = 0;
      std::from_chars(cur_.text.data(), cur_.text.data() + cur_.text.size(), n);
      if (auto s = advance(); !s.ok()) return s.error();
      w.kind = Window::Kind::Since;
      w.amount = n;
      return w;
    }
    return make_error("CQL: expected RANGE, ROWS, NOW or SINCE in window");
  }

  Result<std::unique_ptr<Predicate>> parse_or() {
    auto left = parse_and();
    if (!left) return left;
    while (accept_keyword("OR")) {
      auto right = parse_and();
      if (!right) return right;
      auto node = std::make_unique<Predicate>();
      node->kind = Predicate::Kind::Or;
      node->children.push_back(std::move(left).take());
      node->children.push_back(std::move(right).take());
      left = std::move(node);
    }
    return left;
  }

  Result<std::unique_ptr<Predicate>> parse_and() {
    auto left = parse_unary();
    if (!left) return left;
    while (accept_keyword("AND")) {
      auto right = parse_unary();
      if (!right) return right;
      auto node = std::make_unique<Predicate>();
      node->kind = Predicate::Kind::And;
      node->children.push_back(std::move(left).take());
      node->children.push_back(std::move(right).take());
      left = std::move(node);
    }
    return left;
  }

  Result<std::unique_ptr<Predicate>> parse_unary() {
    if (accept_keyword("NOT")) {
      auto child = parse_unary();
      if (!child) return child;
      auto node = std::make_unique<Predicate>();
      node->kind = Predicate::Kind::Not;
      node->children.push_back(std::move(child).take());
      return node;
    }
    if (accept_symbol("(")) {
      auto inner = parse_or();
      if (!inner) return inner;
      if (!accept_symbol(")")) return make_error("CQL: expected ')'");
      return inner;
    }
    return parse_compare();
  }

  Result<std::unique_ptr<Predicate>> parse_compare() {
    if (cur_.kind != Token::Kind::Ident) {
      return make_error("CQL: expected column in comparison");
    }
    auto node = std::make_unique<Predicate>();
    node->kind = Predicate::Kind::Compare;
    node->column = cur_.text;
    if (auto s = advance(); !s.ok()) return s.error();

    if (accept_keyword("CONTAINS")) {
      node->op = CmpOp::Contains;
    } else if (cur_.kind == Token::Kind::Symbol) {
      const std::string& sym = cur_.text;
      if (sym == "=") node->op = CmpOp::Eq;
      else if (sym == "!=" || sym == "<>") node->op = CmpOp::Ne;
      else if (sym == "<") node->op = CmpOp::Lt;
      else if (sym == "<=") node->op = CmpOp::Le;
      else if (sym == ">") node->op = CmpOp::Gt;
      else if (sym == ">=") node->op = CmpOp::Ge;
      else return make_error("CQL: unknown operator '" + sym + "'");
      if (auto s = advance(); !s.ok()) return s.error();
    } else {
      return make_error("CQL: expected comparison operator");
    }

    switch (cur_.kind) {
      case Token::Kind::Number: {
        if (cur_.text.find('.') != std::string::npos) {
          double v = 0;
          std::from_chars(cur_.text.data(), cur_.text.data() + cur_.text.size(), v);
          node->literal = Value{v};
        } else {
          std::int64_t v = 0;
          std::from_chars(cur_.text.data(), cur_.text.data() + cur_.text.size(), v);
          node->literal = Value{v};
        }
        break;
      }
      case Token::Kind::String:
      case Token::Kind::Ident:  // bare words allowed as text literals
        node->literal = Value{cur_.text};
        break;
      default:
        return make_error("CQL: expected literal");
    }
    if (auto s = advance(); !s.ok()) return s.error();
    return node;
  }

  Lexer lexer_;
  Token cur_;
};

}  // namespace

Result<SelectQuery> parse_query(std::string_view text) {
  return Parser(text).parse();
}

}  // namespace hw::hwdb
