#include "hwdb/value.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace hw::hwdb {

const char* to_string(ColumnType t) {
  switch (t) {
    case ColumnType::Int: return "int";
    case ColumnType::Real: return "real";
    case ColumnType::Text: return "text";
    case ColumnType::Ts: return "ts";
  }
  return "?";
}

std::int64_t Value::as_int() const {
  switch (v_.index()) {
    case 0: return std::get<0>(v_);
    case 1: return static_cast<std::int64_t>(std::get<1>(v_));
    case 3: return static_cast<std::int64_t>(std::get<3>(v_).t);
    default: return 0;
  }
}

double Value::as_real() const {
  switch (v_.index()) {
    case 0: return static_cast<double>(std::get<0>(v_));
    case 1: return std::get<1>(v_);
    case 3: return static_cast<double>(std::get<3>(v_).t);
    default: return 0;
  }
}

const std::string& Value::as_text() const {
  static const std::string empty;
  return v_.index() == 2 ? std::get<2>(v_) : empty;
}

Timestamp Value::as_ts() const {
  switch (v_.index()) {
    case 3: return std::get<3>(v_).t;
    case 0: return static_cast<Timestamp>(std::get<0>(v_));
    case 1: return static_cast<Timestamp>(std::get<1>(v_));
    default: return 0;
  }
}

std::string Value::to_string() const {
  switch (v_.index()) {
    case 0: return std::to_string(std::get<0>(v_));
    case 1: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.6g", std::get<1>(v_));
      return buf;
    }
    case 2: return std::get<2>(v_);
    default: return std::to_string(std::get<3>(v_).t);
  }
}

Result<Value> Value::from_string(ColumnType type, const std::string& text) {
  switch (type) {
    case ColumnType::Int: {
      std::int64_t v = 0;
      auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
      if (ec != std::errc{} || p != text.data() + text.size()) {
        return make_error("bad int literal: " + text);
      }
      return Value{v};
    }
    case ColumnType::Real: {
      double v = 0;
      auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
      if (ec != std::errc{} || p != text.data() + text.size()) {
        return make_error("bad real literal: " + text);
      }
      return Value{v};
    }
    case ColumnType::Text:
      return Value{text};
    case ColumnType::Ts: {
      Timestamp v = 0;
      auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
      if (ec != std::errc{} || p != text.data() + text.size()) {
        return make_error("bad timestamp literal: " + text);
      }
      return Value::ts(v);
    }
  }
  return make_error("unknown column type");
}

int Value::compare(const Value& other) const {
  const bool both_numeric = is_numeric() && other.is_numeric();
  if (both_numeric) {
    const double a = as_real();
    const double b = other.as_real();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  const std::string a = to_string();
  const std::string b = other.to_string();
  return a.compare(b) < 0 ? -1 : (a == b ? 0 : 1);
}

}  // namespace hw::hwdb
