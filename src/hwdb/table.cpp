#include "hwdb/table.hpp"

#include "util/strings.hpp"

namespace hw::hwdb {

int Schema::column_index(const std::string& column) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (iequals(columns_[i].name, column)) return static_cast<int>(i);
  }
  return -1;
}

Status Table::insert(Timestamp now, std::vector<Value> values) {
  if (values.size() != schema_.width()) {
    return Status::failure("insert into " + schema_.name() + ": expected " +
                           std::to_string(schema_.width()) + " values, got " +
                           std::to_string(values.size()));
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    const ColumnType want = schema_.columns()[i].type;
    const ColumnType got = values[i].type();
    if (want == got) continue;
    // Numeric cross-conversions are accepted; anything else is an error.
    if (want == ColumnType::Real && got == ColumnType::Int) {
      values[i] = Value{values[i].as_real()};
    } else if (want == ColumnType::Int && got == ColumnType::Real) {
      values[i] = Value{values[i].as_int()};
    } else if (want == ColumnType::Ts && got == ColumnType::Int) {
      values[i] = Value::ts(static_cast<Timestamp>(values[i].as_int()));
    } else {
      return Status::failure("insert into " + schema_.name() + ": column " +
                             schema_.columns()[i].name + " wants " +
                             std::string(to_string(want)) + ", got " +
                             std::string(to_string(got)));
    }
  }
  rows_.push(Row{now, std::move(values)});
  ++inserted_;
  return {};
}

Status Table::restore_rows(std::vector<Row> rows, std::uint64_t inserted,
                           std::uint64_t evicted) {
  for (const Row& row : rows) {
    if (row.values.size() != schema_.width()) {
      return Status::failure("restore into " + schema_.name() +
                             ": row width mismatch");
    }
  }
  rows_.clear();
  for (Row& row : rows) rows_.push(std::move(row));
  inserted_ = inserted;
  rows_.restore_evicted(evicted);
  return {};
}

}  // namespace hw::hwdb
