// Persistence sink: subscribes to a continuous query and appends each result
// batch to a file (TSV with a '#' batch header) — the paper's "persisting
// output as desired".
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "hwdb/database.hpp"

namespace hw::hwdb {

/// Snapshots a whole table to TSV: header line "#ts<TAB>col..." then one row
/// per line, oldest first. Returns rows written.
Result<std::size_t> dump_table_tsv(const Table& table, const std::string& path);

/// Loads a snapshot produced by dump_table_tsv into an existing table with a
/// matching schema. Rows keep their recorded timestamps (they must be
/// non-decreasing and are inserted directly, bypassing the virtual clock).
/// Returns rows loaded.
Result<std::size_t> load_table_tsv(Table& table, const std::string& path);

class PersistSink {
 public:
  /// Subscribes to `query_text` on `db`, appending batches to `path`.
  /// Check ok() after construction.
  PersistSink(Database& db, std::string query_text, SubscriptionMode mode,
              Duration period, const std::string& path);
  ~PersistSink();
  PersistSink(const PersistSink&) = delete;
  PersistSink& operator=(const PersistSink&) = delete;

  [[nodiscard]] bool ok() const { return file_ != nullptr && sub_id_ != 0; }
  [[nodiscard]] std::uint64_t batches_written() const { return batches_; }
  [[nodiscard]] std::uint64_t rows_written() const { return rows_; }
  /// Flushes buffered output to disk.
  void flush();

 private:
  Database& db_;
  std::FILE* file_ = nullptr;
  SubscriptionId sub_id_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t rows_ = 0;
};

}  // namespace hw::hwdb
