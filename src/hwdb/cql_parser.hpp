// Parser for the hwdb CQL variant. Grammar (case-insensitive keywords):
//
//   query   := SELECT proj (',' proj)* FROM ident window? join? where?
//              group? limit?
//   proj    := '*' | ident | fn '(' ('*' | ident) ')'
//   fn      := COUNT | SUM | AVG | MIN | MAX | LAST | STDDEV
//   join    := JOIN ident ON ident '=' ident   (temporal as-of join)
//   window  := '[' RANGE number (SECONDS|MINUTES|HOURS) ']'
//            | '[' ROWS number ']' | '[' NOW ']' | '[' SINCE number ']'
//   where   := WHERE orexpr
//   orexpr  := andexpr (OR andexpr)*
//   andexpr := unary (AND unary)*
//   unary   := NOT unary | '(' orexpr ')' | cmp
//   cmp     := ident op literal
//   op      := '=' | '!=' | '<>' | '<' | '<=' | '>' | '>=' | CONTAINS
//   literal := number | 'single-quoted string' | "double-quoted string"
//   group   := GROUP BY ident (',' ident)*
//   limit   := LIMIT number
#pragma once

#include <string_view>

#include "hwdb/query.hpp"
#include "util/result.hpp"

namespace hw::hwdb {

Result<SelectQuery> parse_query(std::string_view text);

}  // namespace hw::hwdb
