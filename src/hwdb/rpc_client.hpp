// Client-side RPC stub: request/response correlation plus push dispatch.
// Transport-independent; pair with InProcRpcLink (simulation) or
// UdpTransport (real sockets).
#pragma once

#include <functional>
#include <map>

#include "hwdb/rpc_codec.hpp"
#include "sim/event_loop.hpp"

namespace hw::hwdb::rpc {

class RpcClient {
 public:
  using SendFn = std::function<void(const Bytes&)>;
  using ResponseCallback = std::function<void(const Response&)>;
  using PushCallback = std::function<void(std::uint64_t sub_id, const ResultSet&)>;

  explicit RpcClient(SendFn send) : send_(std::move(send)) {}

  /// Sends a request; `cb` fires when the matching response arrives.
  void call(RequestBody body, ResponseCallback cb);

  /// Push handler for subscription publishes.
  void on_push(PushCallback cb) { push_ = std::move(cb); }

  /// Feed a datagram received from the server.
  void handle_datagram(std::span<const std::uint8_t> datagram);

  // Convenience wrappers.
  void insert(std::string table, std::vector<Value> values,
              ResponseCallback cb = {});
  void query(std::string cql, std::function<void(Result<ResultSet>)> cb);
  void subscribe(std::string cql, bool on_insert, std::uint32_t period_ms,
                 std::function<void(Result<std::uint64_t>)> cb);
  void unsubscribe(std::uint64_t sub_id);

  [[nodiscard]] std::size_t pending() const { return pending_.size(); }

 private:
  SendFn send_;
  PushCallback push_;
  std::map<std::uint32_t, ResponseCallback> pending_;
  std::uint32_t next_request_id_ = 1;
};

}  // namespace hw::hwdb::rpc
