// Client-side RPC stub: request/response correlation plus push dispatch.
// Transport-independent; pair with InProcRpcLink (simulation) or
// UdpTransport (real sockets).
//
// The transport is plain UDP (paper §2), so the client owns reliability:
// every call carries a request id, and — when constructed with an event
// loop and a RetryPolicy — a per-call timeout with bounded exponential
// backoff resends. Retried writes stay idempotent because the server
// suppresses duplicate request ids (see RpcServer); the client just has to
// reuse the id on every resend, which it does by retransmitting the
// original encoded datagram verbatim.
#pragma once

#include <functional>
#include <map>

#include "hwdb/rpc_codec.hpp"
#include "sim/event_loop.hpp"
#include "telemetry/metrics.hpp"

namespace hw::hwdb::rpc {

/// Retry schedule for calls over a lossy transport. Attempt n (0-based) is
/// given `timeout + retry_backoff(n)` to complete before the next resend;
/// after `max_attempts` sends the call fails with an error response. The
/// schedule is purely deterministic (no jitter) so chaos runs replay
/// byte-identically.
struct RetryPolicy {
  int max_attempts = 1;  // total transmissions; 1 = fire once, never retry
  Duration timeout = 250 * kMillisecond;        // per-attempt response budget
  Duration backoff_base = 100 * kMillisecond;   // doubles per retry
  Duration backoff_cap = 2 * kSecond;           // backoff growth ceiling

  /// Extra delay added to the n-th retry's timeout (n = 0 for the first
  /// retry): min(cap, base << n). Exposed so the property suite can check
  /// the schedule is monotone and bounded without driving a transport.
  [[nodiscard]] Duration retry_backoff(int retry_index) const;
  /// Full inter-send delay sequence for a call: entry n is how long the
  /// client waits after send n before resending (or failing).
  [[nodiscard]] std::vector<Duration> schedule() const;
};

/// Snapshot view over the client's telemetry instruments.
struct RpcClientStats {
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;
};

class RpcClient {
 public:
  using SendFn = std::function<void(const Bytes&)>;
  using ResponseCallback = std::function<void(const Response&)>;
  using PushCallback = std::function<void(std::uint64_t sub_id, const ResultSet&)>;
  using DeltaCallback = std::function<void(const DeltaPush&)>;

  /// Fire-and-forget client: no timeouts, no retries (legacy behaviour).
  explicit RpcClient(SendFn send, telemetry::MetricRegistry& metrics =
                                      telemetry::MetricRegistry::current())
      : send_(std::move(send)), metrics_(metrics) {}
  /// Reliable client: unanswered calls are retried on `loop` per `policy`.
  RpcClient(SendFn send, sim::EventLoop& loop, RetryPolicy policy,
            telemetry::MetricRegistry& metrics =
                telemetry::MetricRegistry::current())
      : send_(std::move(send)), loop_(&loop), policy_(policy),
        metrics_(metrics) {}
  ~RpcClient();
  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  /// Sends a request; `cb` fires when the matching response arrives, or —
  /// with retries enabled — with an error response after the last attempt
  /// times out.
  void call(RequestBody body, ResponseCallback cb);

  /// Push handler for subscription publishes.
  void on_push(PushCallback cb) { push_ = std::move(cb); }
  /// Push handler for live telemetry delta frames (LiveServer streams).
  void on_delta(DeltaCallback cb) { delta_ = std::move(cb); }

  /// Feed a datagram received from the server.
  void handle_datagram(std::span<const std::uint8_t> datagram);

  // Convenience wrappers.
  void insert(std::string table, std::vector<Value> values,
              ResponseCallback cb = {});
  void query(std::string cql, std::function<void(Result<ResultSet>)> cb);
  void subscribe(std::string cql, bool on_insert, std::uint32_t period_ms,
                 std::function<void(Result<std::uint64_t>)> cb);
  void unsubscribe(std::uint64_t sub_id);

  [[nodiscard]] std::size_t pending() const { return pending_.size(); }
  [[nodiscard]] const RetryPolicy& policy() const { return policy_; }
  [[nodiscard]] RpcClientStats stats() const {
    return {metrics_.retries.value(), metrics_.timeouts.value()};
  }

 private:
  struct PendingCall {
    Bytes datagram;  // resent verbatim so the request id is stable
    ResponseCallback cb;
    int attempts = 1;  // transmissions so far
    sim::EventLoop::EventId timer = 0;
  };

  void arm_timer(std::uint32_t request_id);
  void handle_timeout(std::uint32_t request_id);

  SendFn send_;
  PushCallback push_;
  DeltaCallback delta_;
  sim::EventLoop* loop_ = nullptr;
  RetryPolicy policy_;
  std::map<std::uint32_t, PendingCall> pending_;
  std::uint32_t next_request_id_ = 1;
  struct Instruments {
    explicit Instruments(telemetry::MetricRegistry& reg)
        : retries{reg, "hwdb.rpc.retries"},
          timeouts{reg, "hwdb.rpc.timeouts"} {}
    telemetry::Counter retries;
    telemetry::Counter timeouts;
  } metrics_;
};

}  // namespace hw::hwdb::rpc
