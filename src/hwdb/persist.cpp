#include "hwdb/persist.hpp"

#include <cstring>

#include "util/logging.hpp"
#include "util/strings.hpp"

namespace hw::hwdb {

Result<std::size_t> dump_table_tsv(const Table& table, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return make_error("cannot open " + path);
  std::fprintf(f, "#ts");
  for (const auto& col : table.schema().columns()) {
    std::fprintf(f, "\t%s:%s", col.name.c_str(), to_string(col.type));
  }
  std::fputc('\n', f);
  std::size_t rows = 0;
  table.rows().for_each([&](const Row& row) {
    std::fprintf(f, "%llu", static_cast<unsigned long long>(row.ts));
    for (const auto& v : row.values) {
      std::fprintf(f, "\t%s", v.to_string().c_str());
    }
    std::fputc('\n', f);
    ++rows;
    return true;
  });
  std::fclose(f);
  return rows;
}

Result<std::size_t> load_table_tsv(Table& table, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return make_error("cannot open " + path);

  // Two-phase load: parse and validate the whole file into a staging buffer
  // first, insert only once everything checked out. A malformed file —
  // truncated mid-line, wrong column count, timestamps running backwards —
  // therefore never partially mutates the table.
  struct StagedRow {
    Timestamp ts = 0;
    std::vector<Value> values;
  };
  std::vector<StagedRow> staged;
  std::string line;
  int lineno = 0;
  Timestamp prev_ts = 0;
  bool have_prev = false;
  const auto fail = [&](const std::string& what) {
    std::fclose(f);
    return make_error(path + ":" + std::to_string(lineno) + ": " + what);
  };
  for (;;) {
    line.clear();
    int c = 0;
    while ((c = std::fgetc(f)) != EOF && c != '\n') {
      line.push_back(static_cast<char>(c));
    }
    if (c == EOF) {
      // dump_table_tsv terminates every line, header included. Data with no
      // final newline is a torn write, not a last line.
      if (!line.empty()) return fail("truncated file (no trailing newline)");
      break;
    }
    ++lineno;
    const std::string_view text = trim(line);
    if (text.empty() || text[0] == '#') continue;
    const auto fields = split(text, '\t');
    if (fields.size() != table.schema().width() + 1) {
      return fail("expected " + std::to_string(table.schema().width() + 1) +
                  " fields, got " + std::to_string(fields.size()));
    }
    auto ts = Value::from_string(ColumnType::Ts, fields[0]);
    if (!ts) return fail("bad ts");
    const Timestamp row_ts = ts.value().as_ts();
    if (have_prev && row_ts < prev_ts) {
      return fail("non-monotonic timestamp");
    }
    prev_ts = row_ts;
    have_prev = true;
    StagedRow row;
    row.ts = row_ts;
    row.values.reserve(fields.size() - 1);
    for (std::size_t i = 1; i < fields.size(); ++i) {
      auto v = Value::from_string(table.schema().columns()[i - 1].type,
                                  fields[i]);
      if (!v) return fail(v.error().message);
      row.values.push_back(std::move(v).take());
    }
    staged.push_back(std::move(row));
  }
  std::fclose(f);

  for (auto& row : staged) {
    if (auto s = table.insert(row.ts, std::move(row.values)); !s.ok()) {
      return s.error();
    }
  }
  return staged.size();
}

PersistSink::PersistSink(Database& db, std::string query_text,
                         SubscriptionMode mode, Duration period,
                         const std::string& path)
    : db_(db) {
  file_ = std::fopen(path.c_str(), "a");
  if (file_ == nullptr) {
    HW_LOG_ERROR("hwdb-persist", "cannot open %s", path.c_str());
    return;
  }
  auto sub = db_.subscribe(
      query_text, mode, period, [this](SubscriptionId, const ResultSet& rs) {
        if (file_ == nullptr) return;
        std::fprintf(file_, "# batch t=%llu rows=%zu\n",
                     static_cast<unsigned long long>(db_.loop().now()),
                     rs.rows.size());
        for (const auto& row : rs.rows) {
          for (std::size_t i = 0; i < row.size(); ++i) {
            std::fprintf(file_, "%s%s", i ? "\t" : "", row[i].to_string().c_str());
          }
          std::fputc('\n', file_);
          ++rows_;
        }
        ++batches_;
      });
  if (sub) sub_id_ = sub.value();
}

PersistSink::~PersistSink() {
  if (sub_id_ != 0) db_.unsubscribe(sub_id_);
  if (file_ != nullptr) std::fclose(file_);
}

void PersistSink::flush() {
  if (file_ != nullptr) std::fflush(file_);
}

}  // namespace hw::hwdb
