// hwdb tables: typed schemas over fixed-size circular buffers. "…an active
// ephemeral stream database which stores ephemeral events into a fixed size
// memory buffer. It links events into tables…" (paper §2).
#pragma once

#include <string>
#include <vector>

#include "hwdb/value.hpp"
#include "util/result.hpp"
#include "util/ring_buffer.hpp"

namespace hw::hwdb {

struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::Text;
};

class Schema {
 public:
  Schema() = default;
  Schema(std::string table_name, std::vector<ColumnDef> columns)
      : name_(std::move(table_name)), columns_(std::move(columns)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<ColumnDef>& columns() const { return columns_; }
  /// Column index by (case-insensitive) name, -1 if absent.
  [[nodiscard]] int column_index(const std::string& column) const;
  [[nodiscard]] std::size_t width() const { return columns_.size(); }

 private:
  std::string name_;
  std::vector<ColumnDef> columns_;
};

/// One stored event: insertion timestamp plus column values.
struct Row {
  Timestamp ts = 0;
  std::vector<Value> values;
};

class Table {
 public:
  Table(Schema schema, std::size_t capacity)
      : schema_(std::move(schema)), rows_(capacity) {}

  [[nodiscard]] const Schema& schema() const { return schema_; }
  [[nodiscard]] std::size_t size() const { return rows_.size(); }
  [[nodiscard]] std::size_t capacity() const { return rows_.capacity(); }
  [[nodiscard]] std::uint64_t evicted() const { return rows_.evicted(); }
  [[nodiscard]] std::uint64_t inserted() const { return inserted_; }

  /// Validates arity and types (Int accepted where Real expected and vice
  /// versa with conversion) and appends the row, evicting the oldest when
  /// full.
  Status insert(Timestamp now, std::vector<Value> values);

  [[nodiscard]] const RingBuffer<Row>& rows() const { return rows_; }
  /// Newest insertion timestamp (0 when empty).
  [[nodiscard]] Timestamp newest_ts() const {
    return rows_.empty() ? 0 : rows_.newest().ts;
  }

  void clear() { rows_.clear(); }

  /// Snapshot restore: replaces the ring contents with `rows` (validated,
  /// oldest first) and overwrites the inserted/evicted lifetime counters the
  /// captured table reported. Fails — table untouched — on arity mismatch.
  Status restore_rows(std::vector<Row> rows, std::uint64_t inserted,
                      std::uint64_t evicted);

 private:
  Schema schema_;
  RingBuffer<Row> rows_;
  std::uint64_t inserted_ = 0;
};

}  // namespace hw::hwdb
