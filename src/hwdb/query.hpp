// AST for the hwdb CQL variant: windowed SELECTs with filters, grouping and
// aggregates, able to "express temporal and relational operations" (paper §2).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "hwdb/value.hpp"

namespace hw::hwdb {

/// Window over the stream, CQL-style bracket clause after the table name.
struct Window {
  enum class Kind {
    All,    // no bracket: everything still in the ring
    Range,  // [RANGE n SECONDS|MINUTES|HOURS]
    Rows,   // [ROWS n]
    Now,    // [NOW] — rows bearing the newest timestamp
    Since,  // [SINCE t] — rows with ts >= t (microseconds)
  };
  Kind kind = Kind::All;
  std::uint64_t amount = 0;  // seconds for Range, count for Rows, ts for Since
};

enum class AggFn {
  None,   // plain column reference
  Count,  // count(*) or count(col)
  Sum,
  Avg,
  Min,
  Max,
  Last,   // newest value in window (hwdb extension for "current" queries)
  Stddev, // population standard deviation
};

struct Projection {
  AggFn fn = AggFn::None;
  std::string column;  // "*" for count(*) / select-all
  [[nodiscard]] std::string display_name() const;
};

enum class CmpOp { Eq, Ne, Lt, Le, Gt, Ge, Contains };

/// WHERE expression tree: comparisons combined with AND/OR/NOT.
struct Predicate {
  enum class Kind { Compare, And, Or, Not };
  Kind kind = Kind::Compare;

  // Compare
  std::string column;
  CmpOp op = CmpOp::Eq;
  Value literal;

  // And/Or/Not
  std::vector<std::unique_ptr<Predicate>> children;
};

/// Temporal ("as-of") join clause: `JOIN other ON left_col = right_col`.
/// Each row of the driving table is joined with the *newest* row of the
/// right table bearing an equal key and an insertion time no later than the
/// left row's — i.e. the right table's state as of that event. Rows with no
/// match are dropped (inner join).
struct JoinClause {
  std::string table;        // right-hand table
  std::string left_column;  // column of the driving table
  std::string right_column; // column of the right table
};

struct SelectQuery {
  std::vector<Projection> projections;  // empty means SELECT *
  std::string table;
  std::optional<JoinClause> join;
  Window window;
  std::unique_ptr<Predicate> where;  // may be null
  std::vector<std::string> group_by;
  /// Caps the number of result rows (0 = unlimited). For plain selects the
  /// newest rows win (the chronological tail); for grouped queries the first
  /// groups in key order.
  std::uint64_t limit = 0;

  [[nodiscard]] bool has_aggregates() const {
    for (const auto& p : projections) {
      if (p.fn != AggFn::None) return true;
    }
    return false;
  }
};

/// Query result: column names plus value rows.
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<std::vector<Value>> rows;

  [[nodiscard]] std::string to_string() const;
  /// Index of a result column by name, -1 if absent.
  [[nodiscard]] int column_index(const std::string& name) const;
};

}  // namespace hw::hwdb
