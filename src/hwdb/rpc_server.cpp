#include "hwdb/rpc_server.hpp"

#include "util/logging.hpp"

namespace hw::hwdb::rpc {
namespace {
constexpr std::string_view kLog = "hwdb-rpc";
}  // namespace

const Bytes* DedupCache::find(ClientAddress from,
                              std::uint32_t request_id) const {
  const auto client = clients_.find(from);
  if (client == clients_.end()) return nullptr;
  const auto it = client->second.responses.find(request_id);
  return it == client->second.responses.end() ? nullptr : &it->second;
}

void DedupCache::remember(ClientAddress from, std::uint32_t request_id,
                          Bytes response) {
  State& state = clients_[from];
  state.responses[request_id] = std::move(response);
  state.order.push_back(request_id);
  if (state.order.size() > window_) {
    state.responses.erase(state.order.front());
    state.order.pop_front();
  }
}

void DedupCache::drop_client(ClientAddress from) { clients_.erase(from); }

RpcServer::~RpcServer() {
  for (const auto& [sub_id, _] : sub_owner_) db_.unsubscribe(sub_id);
}

void RpcServer::handle_datagram(ClientAddress from,
                                std::span<const std::uint8_t> datagram) {
  auto decoded = decode(datagram, /*from_server=*/false);
  if (!decoded) {
    metrics_.errors.inc();
    HW_LOG_WARN(kLog, "bad request datagram: %s", decoded.error().message.c_str());
    return;
  }
  const auto* req = std::get_if<Request>(&decoded.value());
  if (req == nullptr) {
    metrics_.errors.inc();
    return;
  }
  metrics_.requests.inc();

  // A retransmission of an already-answered request replays the cached
  // response without re-executing the body — this is what keeps retried
  // inserts/subscribes idempotent over the lossy UDP transport.
  if (const Bytes* cached = dedup_.find(from, req->request_id)) {
    metrics_.dup_suppressed.inc();
    send_(from, *cached);
    return;
  }

  Bytes encoded_resp = encode(process(from, *req));
  dedup_.remember(from, req->request_id, encoded_resp);
  send_(from, encoded_resp);
}

Response RpcServer::process(ClientAddress from, const Request& req) {
  Response resp;
  resp.request_id = req.request_id;

  std::visit(
      [&](const auto& body) {
        using T = std::decay_t<decltype(body)>;
        if constexpr (std::is_same_v<T, InsertRequest>) {
          auto status = db_.insert(body.table, body.values);
          if (!status.ok()) {
            resp.ok = false;
            resp.error = status.error().message;
          }
        } else if constexpr (std::is_same_v<T, QueryRequest>) {
          auto rs = db_.query(body.cql);
          if (!rs) {
            resp.ok = false;
            resp.error = rs.error().message;
          } else {
            resp.result = std::move(rs).take();
          }
        } else if constexpr (std::is_same_v<T, SubscribeRequest>) {
          const auto mode = body.on_insert ? SubscriptionMode::OnInsert
                                           : SubscriptionMode::Periodic;
          auto sub = db_.subscribe(
              body.cql, mode,
              static_cast<Duration>(body.period_ms) * kMillisecond,
              [this, from](SubscriptionId id, const ResultSet& rs) {
                metrics_.pushes.inc();
                send_(from, encode(Publish{id, rs}));
              });
          if (!sub) {
            resp.ok = false;
            resp.error = sub.error().message;
          } else {
            sub_owner_[sub.value()] = from;
            resp.sub_id = sub.value();
          }
        } else if constexpr (std::is_same_v<T, UnsubscribeRequest>) {
          db_.unsubscribe(body.sub_id);
          sub_owner_.erase(body.sub_id);
        } else if constexpr (std::is_same_v<T, SubscribeSeriesRequest> ||
                             std::is_same_v<T, MutateRequest>) {
          // Live-operations verbs only make sense against a LiveServer.
          resp.ok = false;
          resp.error = "RPC: live verb on an hwdb endpoint";
        } else {
          // Ping: empty ok response.
        }
      },
      req.body);
  if (!resp.ok) metrics_.errors.inc();
  return resp;
}

void RpcServer::drop_client(ClientAddress addr) {
  dedup_.drop_client(addr);
  for (auto it = sub_owner_.begin(); it != sub_owner_.end();) {
    if (it->second == addr) {
      db_.unsubscribe(it->first);
      it = sub_owner_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace hw::hwdb::rpc
