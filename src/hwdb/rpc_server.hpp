// Transport-independent RPC service endpoint binding a Database. Satellite
// devices (the paper's visualization/control interfaces) talk to this over
// UDP; tests and the in-process UIs use it directly.
//
// Reliability contract with RpcClient: clients may retransmit a request
// (same request id) when the response is lost. The server keeps a bounded
// per-client window of recently answered request ids and replays the cached
// response for a duplicate instead of re-executing it, so retried writes
// (inserts, subscribes) stay idempotent.
#pragma once

#include <deque>
#include <functional>
#include <map>

#include "hwdb/database.hpp"
#include "hwdb/rpc_codec.hpp"
#include "telemetry/metrics.hpp"

namespace hw::hwdb::rpc {

/// Opaque client address a transport hands in with each datagram and uses to
/// route responses/pushes back.
using ClientAddress = std::uint64_t;

/// Bounded per-client window of recently answered request ids with their
/// encoded responses. Both RPC endpoints (the hwdb RpcServer here and the
/// live-operations LiveServer) answer a retransmitted request by replaying
/// the cached response instead of re-executing it — that is the whole
/// idempotency contract with RpcClient's retry path.
class DedupCache {
 public:
  explicit DedupCache(std::size_t window) : window_(window) {}

  /// Cached response for (from, request_id), or nullptr when unseen.
  [[nodiscard]] const Bytes* find(ClientAddress from,
                                  std::uint32_t request_id) const;
  /// Remembers a freshly computed response, evicting FIFO past the window.
  void remember(ClientAddress from, std::uint32_t request_id, Bytes response);
  void drop_client(ClientAddress from);

 private:
  struct State {
    std::map<std::uint32_t, Bytes> responses;
    std::deque<std::uint32_t> order;
  };
  std::size_t window_;
  std::map<ClientAddress, State> clients_;
};

/// Snapshot view over the RPC server's telemetry instruments.
struct ServerStats {
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  std::uint64_t pushes = 0;
  std::uint64_t dup_suppressed = 0;
};

class RpcServer {
 public:
  /// `send` transmits a datagram back to a client (responses and pushes).
  using SendFn = std::function<void(ClientAddress, const Bytes&)>;

  RpcServer(Database& db, SendFn send,
            telemetry::MetricRegistry& metrics =
                telemetry::MetricRegistry::current())
      : db_(db), send_(std::move(send)), metrics_(metrics) {}
  ~RpcServer();
  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// Processes one request datagram from `from`; sends the response (and
  /// registers push routes for subscribes) through the SendFn.
  void handle_datagram(ClientAddress from, std::span<const std::uint8_t> datagram);

  /// Drops all subscriptions owned by a client (transport saw it vanish).
  void drop_client(ClientAddress addr);

  [[nodiscard]] ServerStats stats() const {
    return {metrics_.requests.value(), metrics_.errors.value(),
            metrics_.pushes.value(), metrics_.dup_suppressed.value()};
  }

  /// Duplicate-suppression window per client (answered request ids whose
  /// responses are kept for replay).
  static constexpr std::size_t kDedupWindow = 128;

 private:
  Response process(ClientAddress from, const Request& req);

  Database& db_;
  SendFn send_;
  struct Instruments {
    explicit Instruments(telemetry::MetricRegistry& reg)
        : requests{reg, "hwdb.rpc_server.requests"},
          errors{reg, "hwdb.rpc_server.errors"},
          pushes{reg, "hwdb.rpc_server.pushes"},
          dup_suppressed{reg, "hwdb.rpc.dup_suppressed"} {}
    telemetry::Counter requests;
    telemetry::Counter errors;
    telemetry::Counter pushes;
    telemetry::Counter dup_suppressed;
  } metrics_;
  /// subscription id → owning client.
  std::map<SubscriptionId, ClientAddress> sub_owner_;
  DedupCache dedup_{kDedupWindow};
};

}  // namespace hw::hwdb::rpc
