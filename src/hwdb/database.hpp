// The Homework Database: named ephemeral tables, ad-hoc queries, and
// continuous queries (subscriptions) re-evaluated either periodically or on
// insert, pushing deltas/results to registered callbacks. "The database
// supports a simple UDP-based RPC interface enabling applications to
// subscribe to query results, persisting output as desired." (paper §2)
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "hwdb/cql_parser.hpp"
#include "hwdb/executor.hpp"
#include "hwdb/table.hpp"
#include "sim/event_loop.hpp"
#include "snapshot/snapshottable.hpp"
#include "telemetry/metrics.hpp"

namespace hw::hwdb {

using SubscriptionId = std::uint64_t;
using SubscriptionCallback =
    std::function<void(SubscriptionId, const ResultSet&)>;

enum class SubscriptionMode {
  Periodic,  // re-run every `period`
  OnInsert,  // re-run whenever the queried table receives an insert
};

/// Snapshot view over the database's telemetry instruments.
struct DatabaseStats {
  std::uint64_t inserts = 0;
  std::uint64_t queries = 0;
  std::uint64_t subscription_fires = 0;
  std::uint64_t insert_errors = 0;
};

class Database final : public snapshot::Snapshottable {
 public:
  /// `metrics` scopes the database's instruments; defaults to the calling
  /// thread's active registry so each fleet home measures itself.
  explicit Database(sim::EventLoop& loop,
                    telemetry::MetricRegistry& metrics =
                        telemetry::MetricRegistry::current())
      : loop_(loop), metrics_(metrics) {}
  ~Database() override = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // -- Snapshottable (one 'HTBL' chunk per table + 'HMET' metadata) -----------
  // Captures every table's schema, ring contents and lifetime counters, plus
  // the next subscription id. Restore refills the rings directly — no
  // subscription fires, no insert telemetry, no re-stamping with now() —
  // and leaves live subscriptions registered: owners re-register on a fresh
  // home, a warm restart keeps them.
  void save(snapshot::Writer& w) const override;
  Status restore(const snapshot::Reader& r) override;

  /// Creates a table with a fixed-capacity ring buffer. Fails if the name is
  /// taken.
  Status create_table(Schema schema, std::size_t capacity);
  [[nodiscard]] Table* table(const std::string& name);
  [[nodiscard]] const Table* table(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> table_names() const;

  /// Inserts a row stamped with the current virtual time.
  Status insert(const std::string& table_name, std::vector<Value> values);

  /// Parses and runs a query text.
  Result<ResultSet> query(std::string_view text) const;
  /// Runs a pre-parsed query.
  Result<ResultSet> query(const SelectQuery& q) const;

  /// Registers a continuous query. Periodic mode re-runs every `period`;
  /// OnInsert mode fires after each insert into the query's table. Returns
  /// an id for unsubscribe(). Fails if the query doesn't parse or its table
  /// doesn't exist.
  Result<SubscriptionId> subscribe(std::string_view query_text,
                                   SubscriptionMode mode, Duration period,
                                   SubscriptionCallback cb);
  void unsubscribe(SubscriptionId id);
  [[nodiscard]] std::size_t subscription_count() const { return subs_.size(); }

  [[nodiscard]] DatabaseStats stats() const {
    return {metrics_.inserts.value(), metrics_.queries.value(),
            metrics_.subscription_fires.value(), metrics_.insert_errors.value()};
  }
  /// Insert latency histogram (nanoseconds) — the instrument hwdb_perf and
  /// MetricsExport report from.
  [[nodiscard]] const telemetry::Histogram& insert_latency() const {
    return metrics_.insert_ns;
  }
  [[nodiscard]] sim::EventLoop& loop() const { return loop_; }

 private:
  struct Subscription {
    SubscriptionId id = 0;
    SelectQuery query;
    SubscriptionMode mode = SubscriptionMode::Periodic;
    SubscriptionCallback cb;
    std::unique_ptr<sim::PeriodicTimer> timer;
  };

  void fire(Subscription& sub);

  sim::EventLoop& loop_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::map<SubscriptionId, std::unique_ptr<Subscription>> subs_;
  SubscriptionId next_sub_id_ = 1;
  // Mutable: query() is logically const but still counts.
  mutable struct Instruments {
    explicit Instruments(telemetry::MetricRegistry& reg)
        : inserts{reg, "hwdb.database.inserts"},
          queries{reg, "hwdb.database.queries"},
          subscription_fires{reg, "hwdb.database.subscription_fires"},
          insert_errors{reg, "hwdb.database.insert_errors"},
          tables{reg, "hwdb.database.tables"},
          insert_ns{reg, "hwdb.database.insert_ns"} {}
    telemetry::Counter inserts;
    telemetry::Counter queries;
    telemetry::Counter subscription_fires;
    telemetry::Counter insert_errors;
    telemetry::Gauge tables;
    telemetry::Histogram insert_ns;
  } metrics_;
};

}  // namespace hw::hwdb
