// Typed values for hwdb rows. The Homework Database stores ephemeral events
// as typed tuples (Sventek et al., IM 2011); we support the four column
// types its standard tables need.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "util/result.hpp"
#include "util/types.hpp"

namespace hw::hwdb {

enum class ColumnType : std::uint8_t {
  Int = 0,   // 64-bit signed
  Real = 1,  // double
  Text = 2,  // UTF-8 string (also used for MAC/IP addresses)
  Ts = 3,    // microsecond timestamp
};

const char* to_string(ColumnType t);

class Value {
 public:
  Value() : v_(std::int64_t{0}) {}
  Value(std::int64_t i) : v_(i) {}        // NOLINT
  Value(int i) : v_(std::int64_t{i}) {}   // NOLINT
  Value(double d) : v_(d) {}              // NOLINT
  Value(std::string s) : v_(std::move(s)) {}  // NOLINT
  Value(const char* s) : v_(std::string(s)) {}  // NOLINT
  static Value ts(Timestamp t) {
    Value v;
    v.v_ = TsBox{t};
    return v;
  }

  [[nodiscard]] ColumnType type() const {
    switch (v_.index()) {
      case 0: return ColumnType::Int;
      case 1: return ColumnType::Real;
      case 2: return ColumnType::Text;
      default: return ColumnType::Ts;
    }
  }

  [[nodiscard]] bool is_numeric() const {
    return type() == ColumnType::Int || type() == ColumnType::Real ||
           type() == ColumnType::Ts;
  }

  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] double as_real() const;
  [[nodiscard]] const std::string& as_text() const;
  [[nodiscard]] Timestamp as_ts() const;

  /// Renders for RPC text transport and report output.
  [[nodiscard]] std::string to_string() const;

  /// Parses `text` as the given column type.
  static Result<Value> from_string(ColumnType type, const std::string& text);

  /// Ordering across numeric values uses numeric comparison; text compares
  /// lexicographically; mixed text/number compares by rendered text.
  [[nodiscard]] int compare(const Value& other) const;
  bool operator==(const Value& other) const { return compare(other) == 0; }

 private:
  struct TsBox {
    Timestamp t;
  };
  std::variant<std::int64_t, double, std::string, TsBox> v_;
};

}  // namespace hw::hwdb
