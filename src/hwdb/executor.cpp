#include "hwdb/executor.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <map>
#include <unordered_map>

#include "util/strings.hpp"

namespace hw::hwdb {
namespace {

const char* agg_name(AggFn fn) {
  switch (fn) {
    case AggFn::None: return "";
    case AggFn::Count: return "count";
    case AggFn::Sum: return "sum";
    case AggFn::Avg: return "avg";
    case AggFn::Min: return "min";
    case AggFn::Max: return "max";
    case AggFn::Last: return "last";
    case AggFn::Stddev: return "stddev";
  }
  return "";
}

/// Column namespace over the driving table and (optionally) a joined table:
/// resolves bare and "table.column"-qualified names to combined-row indexes.
/// Combined rows are laid out left columns then right columns.
class ColumnSpace {
 public:
  ColumnSpace(const Schema& left, const Schema* right)
      : left_(left), right_(right) {}

  /// Returns the combined index, -2 for the ts pseudo-column, or -1.
  [[nodiscard]] int resolve(const std::string& name) const {
    const auto dot = name.find('.');
    if (dot != std::string::npos) {
      const std::string qualifier = name.substr(0, dot);
      const std::string column = name.substr(dot + 1);
      if (iequals(qualifier, left_.name())) {
        if (iequals(column, "ts")) return -2;
        return left_.column_index(column);
      }
      if (right_ != nullptr && iequals(qualifier, right_->name())) {
        const int idx = right_->column_index(column);
        return idx < 0 ? -1 : idx + static_cast<int>(left_.width());
      }
      return -1;
    }
    if (iequals(name, "ts")) return -2;
    const int left_idx = left_.column_index(name);
    if (left_idx >= 0) return left_idx;
    if (right_ != nullptr) {
      const int idx = right_->column_index(name);
      if (idx >= 0) return idx + static_cast<int>(left_.width());
    }
    return -1;
  }

  /// Every column name, qualified where both tables are present.
  [[nodiscard]] std::vector<std::string> all_names() const {
    std::vector<std::string> out;
    const bool qualify = right_ != nullptr;
    for (const auto& c : left_.columns()) {
      out.push_back(qualify ? left_.name() + "." + c.name : c.name);
    }
    if (right_ != nullptr) {
      for (const auto& c : right_->columns()) {
        out.push_back(right_->name() + "." + c.name);
      }
    }
    return out;
  }

 private:
  const Schema& left_;
  const Schema* right_;
};

/// Aggregate accumulator.
struct Accumulator {
  AggFn fn = AggFn::None;
  int column = -1;  // combined index; -1 for count(*), -2 for ts
  std::uint64_t count = 0;
  double sum = 0;
  double sum_sq = 0;
  bool integral = true;  // sum of only Int values renders as Int
  Value min_v;
  Value max_v;
  Value last_v;
  bool any = false;

  // Rows are fed newest-first, so the first value seen is the LAST value.
  void feed(const Row& row) {
    ++count;
    if (fn == AggFn::Count && column == -1) return;
    const Value v = column == -2
                        ? Value::ts(row.ts)
                        : row.values[static_cast<std::size_t>(column)];
    if (v.type() != ColumnType::Int) integral = false;
    if (!any) {
      min_v = v;
      max_v = v;
      last_v = v;
      any = true;
    } else {
      if (v.compare(min_v) < 0) min_v = v;
      if (v.compare(max_v) > 0) max_v = v;
    }
    sum += v.as_real();
    sum_sq += v.as_real() * v.as_real();
  }

  [[nodiscard]] Value result() const {
    switch (fn) {
      case AggFn::Count:
        return Value{static_cast<std::int64_t>(count)};
      case AggFn::Sum:
        return integral ? Value{static_cast<std::int64_t>(sum)} : Value{sum};
      case AggFn::Avg:
        return count == 0 ? Value{0.0} : Value{sum / static_cast<double>(count)};
      case AggFn::Min:
        return any ? min_v : Value{};
      case AggFn::Max:
        return any ? max_v : Value{};
      case AggFn::Last:
        return any ? last_v : Value{};
      case AggFn::Stddev: {
        if (count == 0) return Value{0.0};
        const double n = static_cast<double>(count);
        const double mean = sum / n;
        const double variance = std::max(0.0, sum_sq / n - mean * mean);
        return Value{std::sqrt(variance)};
      }
      case AggFn::None:
        break;
    }
    return Value{};
  }
};

Result<bool> eval(const Predicate& p, const ColumnSpace& cols, const Row& row);

Result<bool> eval_compare(const Predicate& p, const ColumnSpace& cols,
                          const Row& row) {
  const int idx = cols.resolve(p.column);
  if (idx == -1) return make_error("unknown column in WHERE: " + p.column);
  const Value lhs =
      idx == -2 ? Value::ts(row.ts) : row.values[static_cast<std::size_t>(idx)];
  switch (p.op) {
    case CmpOp::Eq: return lhs.compare(p.literal) == 0;
    case CmpOp::Ne: return lhs.compare(p.literal) != 0;
    case CmpOp::Lt: return lhs.compare(p.literal) < 0;
    case CmpOp::Le: return lhs.compare(p.literal) <= 0;
    case CmpOp::Gt: return lhs.compare(p.literal) > 0;
    case CmpOp::Ge: return lhs.compare(p.literal) >= 0;
    case CmpOp::Contains:
      return lhs.to_string().find(p.literal.to_string()) != std::string::npos;
  }
  return make_error("bad comparison operator");
}

Result<bool> eval(const Predicate& p, const ColumnSpace& cols, const Row& row) {
  switch (p.kind) {
    case Predicate::Kind::Compare:
      return eval_compare(p, cols, row);
    case Predicate::Kind::And: {
      for (const auto& c : p.children) {
        auto r = eval(*c, cols, row);
        if (!r) return r;
        if (!r.value()) return false;
      }
      return true;
    }
    case Predicate::Kind::Or: {
      for (const auto& c : p.children) {
        auto r = eval(*c, cols, row);
        if (!r) return r;
        if (r.value()) return true;
      }
      return false;
    }
    case Predicate::Kind::Not: {
      auto r = eval(*p.children[0], cols, row);
      if (!r) return r;
      return !r.value();
    }
  }
  return make_error("bad predicate kind");
}

/// The query pipeline over an abstract newest-first row stream.
/// `visit(fn)` must call fn for each candidate row newest-first and stop when
/// fn returns false; rows are already window-filtered except for max_rows.
Result<ResultSet> run_pipeline(
    const SelectQuery& q, const ColumnSpace& cols, std::uint64_t max_rows,
    const std::function<void(const std::function<bool(const Row&)>&)>& visit) {
  // Resolve projections.
  struct ResolvedProj {
    Projection proj;
    int column = -1;  // combined index; -2 ts pseudo-column; -1 count(*)
  };
  std::vector<ResolvedProj> projs;
  ResultSet rs;

  if (q.projections.empty()) {
    projs.push_back({Projection{AggFn::None, "ts"}, -2});
    rs.columns.push_back("ts");
    int idx = 0;
    for (const auto& name : cols.all_names()) {
      projs.push_back({Projection{AggFn::None, name}, idx++});
      rs.columns.push_back(name);
    }
  } else {
    for (const auto& p : q.projections) {
      ResolvedProj rp{p, -1};
      if (p.fn == AggFn::Count && p.column == "*") {
        rp.column = -1;
      } else {
        rp.column = cols.resolve(p.column);
        if (rp.column == -1) return make_error("unknown column: " + p.column);
      }
      rs.columns.push_back(p.display_name());
      projs.push_back(std::move(rp));
    }
  }

  // Resolve grouping columns.
  std::vector<int> group_cols;
  for (const auto& g : q.group_by) {
    const int idx = cols.resolve(g);
    if (idx == -1) return make_error("unknown GROUP BY column: " + g);
    group_cols.push_back(idx);
  }

  const bool aggregating = q.has_aggregates() || !q.group_by.empty();
  std::string error;

  auto value_at = [](const Row& row, int idx) {
    return idx == -2 ? Value::ts(row.ts)
                     : row.values[static_cast<std::size_t>(idx)];
  };

  if (!aggregating) {
    std::uint64_t taken = 0;
    visit([&](const Row& row) {
      if (taken >= max_rows) return false;
      if (q.where != nullptr) {
        auto keep = eval(*q.where, cols, row);
        if (!keep) {
          error = keep.error().message;
          return false;
        }
        if (!keep.value()) return true;
      }
      ++taken;
      std::vector<Value> out;
      out.reserve(projs.size());
      for (const auto& rp : projs) out.push_back(value_at(row, rp.column));
      rs.rows.push_back(std::move(out));
      return true;
    });
    if (!error.empty()) return make_error(error);
    std::reverse(rs.rows.begin(), rs.rows.end());  // chronological output
    if (q.limit > 0 && rs.rows.size() > q.limit) {
      // LIMIT keeps the newest rows: the tail of the chronological output.
      rs.rows.erase(rs.rows.begin(),
                    rs.rows.end() - static_cast<std::ptrdiff_t>(q.limit));
    }
    return rs;
  }

  // Aggregation path: group key is the rendered tuple of group columns.
  struct Group {
    std::vector<Value> key_values;
    std::vector<Accumulator> accs;
  };
  std::map<std::string, Group> groups;
  std::uint64_t taken = 0;

  visit([&](const Row& row) {
    if (taken >= max_rows) return false;
    if (q.where != nullptr) {
      auto keep = eval(*q.where, cols, row);
      if (!keep) {
        error = keep.error().message;
        return false;
      }
      if (!keep.value()) return true;
    }
    ++taken;

    std::string key;
    std::vector<Value> key_values;
    for (int col : group_cols) {
      const Value v = value_at(row, col);
      key += v.to_string();
      key += '\x1f';
      key_values.push_back(v);
    }

    auto [it, inserted] = groups.try_emplace(key);
    if (inserted) {
      it->second.key_values = std::move(key_values);
      for (const auto& rp : projs) {
        Accumulator acc;
        acc.fn = rp.proj.fn;
        acc.column = rp.column;
        it->second.accs.push_back(acc);
      }
    }
    for (auto& acc : it->second.accs) acc.feed(row);
    return true;
  });
  if (!error.empty()) return make_error(error);

  for (auto& [key, group] : groups) {
    if (q.limit > 0 && rs.rows.size() >= q.limit) break;
    std::vector<Value> out;
    out.reserve(projs.size());
    for (std::size_t i = 0; i < projs.size(); ++i) {
      const auto& rp = projs[i];
      if (rp.proj.fn == AggFn::None) {
        bool found = false;
        for (std::size_t g = 0; g < group_cols.size(); ++g) {
          if (iequals(q.group_by[g], rp.proj.column)) {
            out.push_back(group.key_values[g]);
            found = true;
            break;
          }
        }
        if (!found) out.push_back(Value{});
      } else {
        out.push_back(group.accs[i].result());
      }
    }
    rs.rows.push_back(std::move(out));
  }
  return rs;
}

/// As-of index over the right table of a join: per key, row indexes ordered
/// by insertion (oldest → newest).
class AsOfIndex {
 public:
  AsOfIndex(const Table& right, int key_column) : right_(right) {
    right.rows().for_each([&](const Row& row) {
      // for_each is oldest-first; positions stored in that order.
      keys_[row.values[static_cast<std::size_t>(key_column)].to_string()]
          .push_back(pos_++);
      return true;
    });
  }

  /// Newest right row with the given key and ts <= `as_of`, or nullptr.
  [[nodiscard]] const Row* lookup(const Value& key, Timestamp as_of) const {
    auto it = keys_.find(key.to_string());
    if (it == keys_.end()) return nullptr;
    const auto& positions = it->second;
    // Binary search for the last position with ts <= as_of.
    const Row* best = nullptr;
    std::size_t lo = 0, hi = positions.size();
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      const Row& row = right_.rows().at(positions[mid]);
      if (row.ts <= as_of) {
        best = &row;
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return best;
  }

 private:
  const Table& right_;
  std::unordered_map<std::string, std::vector<std::size_t>> keys_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string Projection::display_name() const {
  if (fn == AggFn::None) return column;
  return std::string(agg_name(fn)) + "(" + column + ")";
}

int ResultSet::column_index(const std::string& name) const {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (iequals(columns[i], name)) return static_cast<int>(i);
  }
  return -1;
}

std::string ResultSet::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i) out += "\t";
    out += columns[i];
  }
  out += "\n";
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out += "\t";
      out += row[i].to_string();
    }
    out += "\n";
  }
  return out;
}

Result<bool> eval_predicate(const Predicate& p, const Schema& schema,
                            const Row& row) {
  return eval(p, ColumnSpace(schema, nullptr), row);
}

Result<ResultSet> execute(const SelectQuery& q, const Table& table,
                          const Table* right, Timestamp now) {
  // Window bounds over the driving table.
  Timestamp min_ts = 0;
  std::uint64_t max_rows = std::numeric_limits<std::uint64_t>::max();
  switch (q.window.kind) {
    case Window::Kind::All:
      break;
    case Window::Kind::Range:
      min_ts = now >= q.window.amount * kSecond ? now - q.window.amount * kSecond
                                                : 0;
      break;
    case Window::Kind::Rows:
      max_rows = q.window.amount;
      break;
    case Window::Kind::Now:
      min_ts = table.newest_ts();
      break;
    case Window::Kind::Since:
      min_ts = q.window.amount;
      break;
  }

  if (!q.join) {
    const ColumnSpace cols(table.schema(), nullptr);
    return run_pipeline(q, cols, max_rows, [&](const auto& fn) {
      table.rows().for_each_newest_first([&](const Row& row) {
        if (row.ts < min_ts) return false;
        return fn(row);
      });
    });
  }

  // Join path.
  if (right == nullptr) return make_error("join table missing: " + q.join->table);
  const int left_key = table.schema().column_index(q.join->left_column);
  if (left_key < 0) {
    return make_error("unknown join column: " + q.join->left_column);
  }
  const int right_key = right->schema().column_index(q.join->right_column);
  if (right_key < 0) {
    return make_error("unknown join column: " + q.join->right_column);
  }

  const AsOfIndex index(*right, right_key);
  const ColumnSpace cols(table.schema(), &right->schema());

  return run_pipeline(q, cols, max_rows, [&](const auto& fn) {
    table.rows().for_each_newest_first([&](const Row& left_row) {
      if (left_row.ts < min_ts) return false;
      const Value& key =
          left_row.values[static_cast<std::size_t>(left_key)];
      const Row* match = index.lookup(key, left_row.ts);
      if (match == nullptr) return true;  // inner join: drop unmatched
      Row combined;
      combined.ts = left_row.ts;
      combined.values.reserve(left_row.values.size() + match->values.size());
      combined.values = left_row.values;
      combined.values.insert(combined.values.end(), match->values.begin(),
                             match->values.end());
      return fn(combined);
    });
  });
}

Result<ResultSet> execute(const SelectQuery& q, const Table& table,
                          Timestamp now) {
  return execute(q, table, nullptr, now);
}

}  // namespace hw::hwdb
