#include "hwdb/rpc_codec.hpp"

#include <bit>
#include <cstring>

namespace hw::hwdb::rpc {
namespace {

void write_str16(ByteWriter& w, const std::string& s) {
  const std::size_t len = std::min<std::size_t>(s.size(), 0xffff);
  w.u16(static_cast<std::uint16_t>(len));
  w.raw(s.data(), len);
}

Result<std::string> read_str16(ByteReader& r) {
  auto len = r.u16();
  if (!len) return len.error();
  return r.fixed_string(len.value());
}

}  // namespace

void write_value(ByteWriter& w, const Value& v) {
  w.u8(static_cast<std::uint8_t>(v.type()));
  switch (v.type()) {
    case ColumnType::Int:
      w.u64(static_cast<std::uint64_t>(v.as_int()));
      break;
    case ColumnType::Real: {
      w.u64(std::bit_cast<std::uint64_t>(v.as_real()));
      break;
    }
    case ColumnType::Text:
      write_str16(w, v.as_text());
      break;
    case ColumnType::Ts:
      w.u64(v.as_ts());
      break;
  }
}

Result<Value> read_value(ByteReader& r) {
  auto type = r.u8();
  if (!type) return type.error();
  if (type.value() > 3) return make_error("RPC: bad value type tag");
  switch (static_cast<ColumnType>(type.value())) {
    case ColumnType::Int: {
      auto v = r.u64();
      if (!v) return v.error();
      return Value{static_cast<std::int64_t>(v.value())};
    }
    case ColumnType::Real: {
      auto v = r.u64();
      if (!v) return v.error();
      return Value{std::bit_cast<double>(v.value())};
    }
    case ColumnType::Text: {
      auto s = read_str16(r);
      if (!s) return s.error();
      return Value{std::move(s).take()};
    }
    case ColumnType::Ts: {
      auto v = r.u64();
      if (!v) return v.error();
      return Value::ts(v.value());
    }
  }
  return make_error("RPC: unreachable value type");
}

void write_result_set(ByteWriter& w, const ResultSet& rs) {
  w.u16(static_cast<std::uint16_t>(rs.columns.size()));
  for (const auto& c : rs.columns) write_str16(w, c);
  w.u32(static_cast<std::uint32_t>(rs.rows.size()));
  for (const auto& row : rs.rows) {
    for (const auto& v : row) write_value(w, v);
  }
}

Result<ResultSet> read_result_set(ByteReader& r) {
  ResultSet rs;
  auto ncols = r.u16();
  if (!ncols) return ncols.error();
  for (int i = 0; i < ncols.value(); ++i) {
    auto name = read_str16(r);
    if (!name) return name.error();
    rs.columns.push_back(std::move(name).take());
  }
  auto nrows = r.u32();
  if (!nrows) return nrows.error();
  if (nrows.value() > 10'000'000) return make_error("RPC: implausible row count");
  rs.rows.reserve(nrows.value());
  for (std::uint32_t i = 0; i < nrows.value(); ++i) {
    std::vector<Value> row;
    row.reserve(rs.columns.size());
    for (std::size_t c = 0; c < rs.columns.size(); ++c) {
      auto v = read_value(r);
      if (!v) return v.error();
      row.push_back(std::move(v).take());
    }
    rs.rows.push_back(std::move(row));
  }
  return rs;
}

Bytes encode(const Request& req) {
  ByteWriter w(64);
  w.u32(req.request_id);
  std::visit(
      [&](const auto& body) {
        using T = std::decay_t<decltype(body)>;
        if constexpr (std::is_same_v<T, InsertRequest>) {
          w.u8(static_cast<std::uint8_t>(Opcode::Insert));
          write_str16(w, body.table);
          w.u16(static_cast<std::uint16_t>(body.values.size()));
          for (const auto& v : body.values) write_value(w, v);
        } else if constexpr (std::is_same_v<T, QueryRequest>) {
          w.u8(static_cast<std::uint8_t>(Opcode::Query));
          write_str16(w, body.cql);
        } else if constexpr (std::is_same_v<T, SubscribeRequest>) {
          w.u8(static_cast<std::uint8_t>(Opcode::Subscribe));
          write_str16(w, body.cql);
          w.u8(body.on_insert ? 1 : 0);
          w.u32(body.period_ms);
        } else if constexpr (std::is_same_v<T, UnsubscribeRequest>) {
          w.u8(static_cast<std::uint8_t>(Opcode::Unsubscribe));
          w.u64(body.sub_id);
        } else if constexpr (std::is_same_v<T, SubscribeSeriesRequest>) {
          w.u8(static_cast<std::uint8_t>(Opcode::SubscribeSeries));
          write_str16(w, body.pattern);
          w.u32(body.home);
          w.u32(body.every);
          w.u32(body.max_queue);
        } else if constexpr (std::is_same_v<T, MutateRequest>) {
          w.u8(static_cast<std::uint8_t>(Opcode::Mutate));
          w.u8(static_cast<std::uint8_t>(body.kind));
          w.u32(body.home);
          write_str16(w, body.text);
          write_str16(w, body.aux);
          w.u64(body.arg0);
          w.u64(body.arg1);
        } else {
          w.u8(static_cast<std::uint8_t>(Opcode::Ping));
        }
      },
      req.body);
  return std::move(w).take();
}

Bytes encode(const Response& resp) {
  ByteWriter w(64);
  w.u32(resp.request_id);
  w.u8(resp.ok ? 0 : 1);
  if (!resp.ok) {
    write_str16(w, resp.error);
    return std::move(w).take();
  }
  // Body discriminator: 0 none, 1 resultset, 2 sub_id, 3 applied_at.
  if (resp.result) {
    w.u8(1);
    write_result_set(w, *resp.result);
  } else if (resp.sub_id) {
    w.u8(2);
    w.u64(*resp.sub_id);
  } else if (resp.applied_at) {
    w.u8(3);
    w.u64(*resp.applied_at);
  } else {
    w.u8(0);
  }
  return std::move(w).take();
}

Bytes encode(const Publish& push) {
  ByteWriter w(64);
  w.u32(0);
  w.u8(static_cast<std::uint8_t>(Opcode::Publish));
  w.u64(push.sub_id);
  write_result_set(w, push.result);
  return std::move(w).take();
}

Bytes encode(const DeltaPush& push) {
  ByteWriter w(64);
  w.u32(0);
  w.u8(static_cast<std::uint8_t>(Opcode::Delta));
  w.u64(push.sub_id);
  w.u64(push.seq);
  w.u64(push.vtime);
  w.u32(push.home);
  w.u8(push.snapshot ? 1 : 0);
  w.u64(push.dropped);
  w.u32(static_cast<std::uint32_t>(push.values.size()));
  for (const auto& [name, value] : push.values) {
    write_str16(w, name);
    w.u64(std::bit_cast<std::uint64_t>(value));
  }
  return std::move(w).take();
}

Result<Decoded> decode(std::span<const std::uint8_t> datagram, bool from_server) {
  ByteReader r(datagram);
  auto request_id = r.u32();
  if (!request_id) return request_id.error();

  if (from_server) {
    // Either a push (request_id 0, opcode Publish or Delta) or a response.
    if (request_id.value() == 0) {
      auto opcode = r.u8();
      if (!opcode) return opcode.error();
      if (opcode.value() == static_cast<std::uint8_t>(Opcode::Delta)) {
        DeltaPush push;
        auto sub = r.u64();
        if (!sub) return sub.error();
        push.sub_id = sub.value();
        auto seq = r.u64();
        if (!seq) return seq.error();
        push.seq = seq.value();
        auto vtime = r.u64();
        if (!vtime) return vtime.error();
        push.vtime = vtime.value();
        auto home = r.u32();
        if (!home) return home.error();
        push.home = home.value();
        auto kind = r.u8();
        if (!kind) return kind.error();
        push.snapshot = kind.value() != 0;
        auto dropped = r.u64();
        if (!dropped) return dropped.error();
        push.dropped = dropped.value();
        auto count = r.u32();
        if (!count) return count.error();
        if (count.value() > 1'000'000) {
          return make_error("RPC: implausible delta size");
        }
        push.values.reserve(count.value());
        for (std::uint32_t i = 0; i < count.value(); ++i) {
          auto name = read_str16(r);
          if (!name) return name.error();
          auto bits = r.u64();
          if (!bits) return bits.error();
          push.values.emplace_back(std::move(name).take(),
                                   std::bit_cast<double>(bits.value()));
        }
        return Decoded{std::move(push)};
      }
      if (opcode.value() != static_cast<std::uint8_t>(Opcode::Publish)) {
        return make_error("RPC: expected Publish opcode");
      }
      Publish push;
      auto sub = r.u64();
      if (!sub) return sub.error();
      push.sub_id = sub.value();
      auto rs = read_result_set(r);
      if (!rs) return rs.error();
      push.result = std::move(rs).take();
      return Decoded{std::move(push)};
    }
    Response resp;
    resp.request_id = request_id.value();
    auto status = r.u8();
    if (!status) return status.error();
    resp.ok = status.value() == 0;
    if (!resp.ok) {
      auto err = read_str16(r);
      if (!err) return err.error();
      resp.error = std::move(err).take();
      return Decoded{std::move(resp)};
    }
    auto disc = r.u8();
    if (!disc) return disc.error();
    if (disc.value() == 1) {
      auto rs = read_result_set(r);
      if (!rs) return rs.error();
      resp.result = std::move(rs).take();
    } else if (disc.value() == 2) {
      auto sub = r.u64();
      if (!sub) return sub.error();
      resp.sub_id = sub.value();
    } else if (disc.value() == 3) {
      auto at = r.u64();
      if (!at) return at.error();
      resp.applied_at = at.value();
    } else if (disc.value() != 0) {
      return make_error("RPC: bad response discriminator");
    }
    return Decoded{std::move(resp)};
  }

  // Client → server: request.
  Request req;
  req.request_id = request_id.value();
  auto opcode = r.u8();
  if (!opcode) return opcode.error();
  switch (static_cast<Opcode>(opcode.value())) {
    case Opcode::Insert: {
      InsertRequest body;
      auto table = read_str16(r);
      if (!table) return table.error();
      body.table = std::move(table).take();
      auto n = r.u16();
      if (!n) return n.error();
      for (int i = 0; i < n.value(); ++i) {
        auto v = read_value(r);
        if (!v) return v.error();
        body.values.push_back(std::move(v).take());
      }
      req.body = std::move(body);
      return Decoded{std::move(req)};
    }
    case Opcode::Query: {
      auto cql = read_str16(r);
      if (!cql) return cql.error();
      req.body = QueryRequest{std::move(cql).take()};
      return Decoded{std::move(req)};
    }
    case Opcode::Subscribe: {
      SubscribeRequest body;
      auto cql = read_str16(r);
      if (!cql) return cql.error();
      body.cql = std::move(cql).take();
      auto mode = r.u8();
      if (!mode) return mode.error();
      body.on_insert = mode.value() != 0;
      auto period = r.u32();
      if (!period) return period.error();
      body.period_ms = period.value();
      req.body = std::move(body);
      return Decoded{std::move(req)};
    }
    case Opcode::Unsubscribe: {
      auto sub = r.u64();
      if (!sub) return sub.error();
      req.body = UnsubscribeRequest{sub.value()};
      return Decoded{std::move(req)};
    }
    case Opcode::Ping:
      req.body = PingRequest{};
      return Decoded{std::move(req)};
    case Opcode::SubscribeSeries: {
      SubscribeSeriesRequest body;
      auto pattern = read_str16(r);
      if (!pattern) return pattern.error();
      body.pattern = std::move(pattern).take();
      auto home = r.u32();
      if (!home) return home.error();
      body.home = home.value();
      auto every = r.u32();
      if (!every) return every.error();
      body.every = every.value();
      auto max_queue = r.u32();
      if (!max_queue) return max_queue.error();
      body.max_queue = max_queue.value();
      req.body = std::move(body);
      return Decoded{std::move(req)};
    }
    case Opcode::Mutate: {
      MutateRequest body;
      auto kind = r.u8();
      if (!kind) return kind.error();
      if (kind.value() < 1 ||
          kind.value() > static_cast<std::uint8_t>(MutateKind::Wake)) {
        return make_error("RPC: bad mutate kind");
      }
      body.kind = static_cast<MutateKind>(kind.value());
      auto home = r.u32();
      if (!home) return home.error();
      body.home = home.value();
      auto text = read_str16(r);
      if (!text) return text.error();
      body.text = std::move(text).take();
      auto aux = read_str16(r);
      if (!aux) return aux.error();
      body.aux = std::move(aux).take();
      auto arg0 = r.u64();
      if (!arg0) return arg0.error();
      body.arg0 = arg0.value();
      auto arg1 = r.u64();
      if (!arg1) return arg1.error();
      body.arg1 = arg1.value();
      req.body = std::move(body);
      return Decoded{std::move(req)};
    }
    case Opcode::Publish:
    case Opcode::Delta:
      break;
  }
  return make_error("RPC: bad request opcode");
}

}  // namespace hw::hwdb::rpc
