#include "hwdb/rpc_client.hpp"

#include "util/logging.hpp"

namespace hw::hwdb::rpc {
namespace {
constexpr std::string_view kLog = "hwdb-rpc";
}  // namespace

Duration RetryPolicy::retry_backoff(int retry_index) const {
  if (retry_index < 0) retry_index = 0;
  // Saturate the shift well before Duration overflows.
  Duration backoff = backoff_base;
  for (int i = 0; i < retry_index && backoff < backoff_cap; ++i) backoff *= 2;
  return backoff < backoff_cap ? backoff : backoff_cap;
}

std::vector<Duration> RetryPolicy::schedule() const {
  std::vector<Duration> out;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    // After the n-th transmission the client waits the base timeout plus the
    // backoff earned by the retries already spent.
    out.push_back(timeout + (attempt == 0 ? 0 : retry_backoff(attempt - 1)));
  }
  return out;
}

RpcClient::~RpcClient() {
  if (loop_ == nullptr) return;
  for (auto& [id, call] : pending_) loop_->cancel(call.timer);
}

void RpcClient::call(RequestBody body, ResponseCallback cb) {
  Request req;
  req.request_id = next_request_id_++;
  if (req.request_id == 0) req.request_id = next_request_id_++;
  req.body = std::move(body);
  Bytes datagram = encode(req);

  // A reliable client tracks every call (it needs the datagram to resend);
  // the legacy fire-and-forget client only tracks calls that want replies.
  if (loop_ != nullptr) {
    PendingCall pc;
    pc.datagram = datagram;
    pc.cb = std::move(cb);
    pending_[req.request_id] = std::move(pc);
    arm_timer(req.request_id);
  } else if (cb) {
    pending_[req.request_id] = PendingCall{{}, std::move(cb), 1, 0};
  }
  send_(datagram);
}

void RpcClient::arm_timer(std::uint32_t request_id) {
  auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  const Duration wait =
      policy_.timeout + (it->second.attempts == 1
                             ? 0
                             : policy_.retry_backoff(it->second.attempts - 2));
  it->second.timer = loop_->schedule(
      wait, [this, request_id] { handle_timeout(request_id); });
}

void RpcClient::handle_timeout(std::uint32_t request_id) {
  auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  if (it->second.attempts >= policy_.max_attempts) {
    metrics_.timeouts.inc();
    auto cb = std::move(it->second.cb);
    pending_.erase(it);
    HW_LOG_WARN(kLog, "request %u timed out after %d attempts", request_id,
                policy_.max_attempts);
    if (cb) {
      Response failure;
      failure.request_id = request_id;
      failure.ok = false;
      failure.error = "RPC: timed out";
      cb(failure);
    }
    return;
  }
  ++it->second.attempts;
  metrics_.retries.inc();
  send_(it->second.datagram);
  arm_timer(request_id);
}

void RpcClient::handle_datagram(std::span<const std::uint8_t> datagram) {
  auto decoded = decode(datagram, /*from_server=*/true);
  if (!decoded) {
    HW_LOG_WARN(kLog, "bad server datagram: %s", decoded.error().message.c_str());
    return;
  }
  if (auto* push = std::get_if<Publish>(&decoded.value())) {
    if (push_) push_(push->sub_id, push->result);
    return;
  }
  if (auto* delta = std::get_if<DeltaPush>(&decoded.value())) {
    if (delta_) delta_(*delta);
    return;
  }
  if (auto* resp = std::get_if<Response>(&decoded.value())) {
    auto it = pending_.find(resp->request_id);
    if (it == pending_.end()) return;  // late duplicate of an answered call
    if (loop_ != nullptr) loop_->cancel(it->second.timer);
    auto cb = std::move(it->second.cb);
    pending_.erase(it);
    if (cb) cb(*resp);
  }
}

void RpcClient::insert(std::string table, std::vector<Value> values,
                       ResponseCallback cb) {
  call(InsertRequest{std::move(table), std::move(values)}, std::move(cb));
}

void RpcClient::query(std::string cql, std::function<void(Result<ResultSet>)> cb) {
  call(QueryRequest{std::move(cql)}, [cb = std::move(cb)](const Response& resp) {
    if (!resp.ok) {
      cb(make_error(resp.error));
    } else if (resp.result) {
      cb(*resp.result);
    } else {
      cb(make_error("RPC: query response missing result"));
    }
  });
}

void RpcClient::subscribe(std::string cql, bool on_insert, std::uint32_t period_ms,
                          std::function<void(Result<std::uint64_t>)> cb) {
  call(SubscribeRequest{std::move(cql), on_insert, period_ms},
       [cb = std::move(cb)](const Response& resp) {
         if (!resp.ok) {
           cb(make_error(resp.error));
         } else if (resp.sub_id) {
           cb(*resp.sub_id);
         } else {
           cb(make_error("RPC: subscribe response missing id"));
         }
       });
}

void RpcClient::unsubscribe(std::uint64_t sub_id) {
  call(UnsubscribeRequest{sub_id}, {});
}

}  // namespace hw::hwdb::rpc
