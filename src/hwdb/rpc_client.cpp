#include "hwdb/rpc_client.hpp"

#include "util/logging.hpp"

namespace hw::hwdb::rpc {
namespace {
constexpr std::string_view kLog = "hwdb-rpc";
}  // namespace

void RpcClient::call(RequestBody body, ResponseCallback cb) {
  Request req;
  req.request_id = next_request_id_++;
  if (req.request_id == 0) req.request_id = next_request_id_++;
  req.body = std::move(body);
  if (cb) pending_[req.request_id] = std::move(cb);
  send_(encode(req));
}

void RpcClient::handle_datagram(std::span<const std::uint8_t> datagram) {
  auto decoded = decode(datagram, /*from_server=*/true);
  if (!decoded) {
    HW_LOG_WARN(kLog, "bad server datagram: %s", decoded.error().message.c_str());
    return;
  }
  if (auto* push = std::get_if<Publish>(&decoded.value())) {
    if (push_) push_(push->sub_id, push->result);
    return;
  }
  if (auto* resp = std::get_if<Response>(&decoded.value())) {
    auto it = pending_.find(resp->request_id);
    if (it == pending_.end()) return;
    auto cb = std::move(it->second);
    pending_.erase(it);
    cb(*resp);
  }
}

void RpcClient::insert(std::string table, std::vector<Value> values,
                       ResponseCallback cb) {
  call(InsertRequest{std::move(table), std::move(values)}, std::move(cb));
}

void RpcClient::query(std::string cql, std::function<void(Result<ResultSet>)> cb) {
  call(QueryRequest{std::move(cql)}, [cb = std::move(cb)](const Response& resp) {
    if (!resp.ok) {
      cb(make_error(resp.error));
    } else if (resp.result) {
      cb(*resp.result);
    } else {
      cb(make_error("RPC: query response missing result"));
    }
  });
}

void RpcClient::subscribe(std::string cql, bool on_insert, std::uint32_t period_ms,
                          std::function<void(Result<std::uint64_t>)> cb) {
  call(SubscribeRequest{std::move(cql), on_insert, period_ms},
       [cb = std::move(cb)](const Response& resp) {
         if (!resp.ok) {
           cb(make_error(resp.error));
         } else if (resp.sub_id) {
           cb(*resp.sub_id);
         } else {
           cb(make_error("RPC: subscribe response missing id"));
         }
       });
}

void RpcClient::unsubscribe(std::uint64_t sub_id) {
  call(UnsubscribeRequest{sub_id}, {});
}

}  // namespace hw::hwdb::rpc
