#include "scenario/dhcp_starvation.hpp"

#include <memory>
#include <set>

#include "homework/device_registry.hpp"
#include "homework/dhcp_server.hpp"

namespace hw::scenario {

namespace {
/// Spoofed source MACs live far above the home's real device indices.
constexpr std::uint32_t kSpoofBase = 0x100000u;
}  // namespace

workload::HomeScenario::Config DhcpStarvationScenario::home_config() const {
  workload::HomeScenario::Config cfg;
  // Open admission: the flood must be able to drain the pool — the attack
  // models a home where the owner enabled guest auto-admit.
  cfg.router.admission = homework::DeviceRegistry::AdmissionDefault::PermitAll;
  cfg.router.lease_secs = params_.lease_secs;
  cfg.router.dhcp_offer_hold = params_.offer_hold;
  return cfg;
}

void DhcpStarvationScenario::populate(workload::HomeScenario& home) {
  sim::EventLoop& loop = home.loop();
  for (std::size_t i = 0; i < params_.residents; ++i) {
    const std::size_t idx = home.add_device(
        {"resident" + std::to_string(i), workload::DeviceKind::Laptop,
         std::nullopt});
    sim::Host* host = home.devices()[idx].host.get();
    loop.schedule(static_cast<Duration>(i + 1) * 50 * kMillisecond,
                  [host] { host->start_dhcp(); });
  }
  attacker_index_ =
      home.add_device({"attacker", workload::DeviceKind::Artifact, std::nullopt});

  // Three fresh legitimate joiners arrive after the attack; their bind
  // latency (measured from the end of the attack) is the recovery series.
  late_joiner_index_ = home.devices().size();
  for (std::size_t i = 0; i < 3; ++i) {
    const std::size_t idx = home.add_device(
        {"latecomer" + std::to_string(i), workload::DeviceKind::Phone,
         std::nullopt});
    sim::Host* host = home.devices()[idx].host.get();
    auto bound = std::make_shared<bool>(false);
    host->on_bound([this, &loop, bound] {
      if (*bound) return;
      *bound = true;
      record_recovery(loop.now() - params_.attack_end);
      late_joiner_bound_at_ = loop.now();
    });
    loop.schedule_at(params_.late_join_at +
                         static_cast<Duration>(i) * 200 * kMillisecond,
                     [host] { host->start_dhcp(); });
  }
}

void DhcpStarvationScenario::drive(sim::EventLoop& loop) {
  set_attack_window(params_.attack_start, params_.attack_end);
  for (Timestamp t = params_.attack_start; t < params_.attack_end;
       t += params_.flood_interval) {
    const auto mac = MacAddress::from_index(
        kSpoofBase +
        static_cast<std::uint32_t>(attack_rng().uniform(params_.spoofed_macs)));
    const auto xid =
        static_cast<std::uint32_t>(attack_rng().uniform(0xffffffffu) + 1);
    const Bytes frame = spoofed_discover(mac, xid, "spoof");
    loop.schedule_at(t, [this, frame] { inject(attacker_index_, frame); });
    record_attack();
  }
}

void DhcpStarvationScenario::verify(Report& report) {
  const auto dhcp = router().dhcp().stats();
  expect(report, "pool-exhausted-counted", dhcp.pool_exhausted > 0,
         "pool_exhausted=" + std::to_string(dhcp.pool_exhausted));

  // No legitimate lease lost: every resident still holds its address, was
  // never NAKed, and renewed at least once during/after the attack.
  bool leases_kept = true;
  bool renewed = true;
  std::string detail;
  for (std::size_t i = 0; i < params_.residents; ++i) {
    const auto& dev = home().devices()[i];
    const auto ip = dev.host->ip();
    const auto* rec = router().registry().find(dev.host->mac());
    const bool kept = ip && rec != nullptr && rec->lease &&
                      rec->lease->ip == *ip &&
                      dev.host->stats().dhcp_naks == 0;
    leases_kept = leases_kept && kept;
    renewed = renewed && dev.host->stats().dhcp_acks >= 2;
    if (!kept) detail += dev.name + " lost its lease; ";
  }
  expect(report, "no-legitimate-lease-lost", leases_kept, detail);
  expect(report, "renewals-survive-attack", renewed,
         "every resident re-ACKed mid-attack (acks >= 2)");

  // The scope never double-allocates: all current leases are distinct.
  std::set<std::uint32_t> ips;
  std::size_t leased = 0;
  bool distinct = true;
  for (const auto* rec : router().registry().all()) {
    if (!rec->lease) continue;
    ++leased;
    distinct = distinct && ips.insert(rec->lease->ip.value()).second;
  }
  expect(report, "no-double-allocation", distinct,
         std::to_string(leased) + " leases, all distinct addresses");

  // Pool recovery: unclaimed spoofed offers expired back into the pool and
  // the late joiners all bound.
  bool late_bound = true;
  for (std::size_t i = late_joiner_index_; i < home().devices().size(); ++i) {
    late_bound = late_bound && home().devices()[i].host->ip().has_value();
  }
  expect(report, "pool-recovers-after-attack",
         late_bound && dhcp.offers_expired > 0,
         "offers_expired=" + std::to_string(dhcp.offers_expired) +
             ", late joiners bound=" + (late_bound ? "yes" : "no"));
}

}  // namespace hw::scenario
