// Flow-table exhaustion under hostile churn: a compromised resident sprays
// short flows at ever-new destinations until the (deliberately small) table
// rejects adds with OFPET_FLOW_MOD_FAILED / ALL_TABLES_FULL, while a
// mid-attack controller outage forces the datapath through fail-safe mode.
// Promises: the table never exceeds capacity, the rejections surface as
// controller-visible errors, fail-safe is entered AND left, the datapath
// never wedges (post-attack traffic still sets up flows), and the
// reconciler converges the table after the dust settles.
#pragma once

#include "scenario/scenario.hpp"

namespace hw::scenario {

class TableExhaustionScenario final : public HomeAttackScenario {
 public:
  struct Params {
    /// Small on purpose: the attack must hit TableFull quickly.
    std::size_t table_capacity = 64;
    std::size_t microflow_capacity = 64;
    Duration attack_start = 2 * kSecond;
    Duration attack_end = 20 * kSecond;
    /// One hostile flow (fresh destination address) per interval.
    Duration hostile_flow_interval = 4 * kMillisecond;
    /// Mid-attack controller outage window (drives fail-safe mode).
    Duration outage_start = 8 * kSecond;
    Duration outage_end = 12 * kSecond;
    Duration controller_dead_interval = 2 * kSecond;
    /// Post-attack probe: a clean device pings the router and opens a fresh
    /// flow; the reply latency is the recovery sample.
    Duration probe_at = 26 * kSecond;
  };

  TableExhaustionScenario(Config config, Params params)
      : HomeAttackScenario("table-exhaustion", config), params_(params) {}
  explicit TableExhaustionScenario(Config config = default_config())
      : TableExhaustionScenario(config, Params{}) {}

  static Config default_config() {
    Config config;
    config.duration = 32 * kSecond;
    return config;
  }

  [[nodiscard]] const Params& params() const { return params_; }

 protected:
  [[nodiscard]] workload::HomeScenario::Config home_config() const override;
  void populate(workload::HomeScenario& home) override;
  void drive(sim::EventLoop& loop) override;
  void verify(Report& report) override;

 private:
  Params params_;
  std::unique_ptr<sim::PeriodicTimer> sampler_;
  std::size_t max_table_size_ = 0;
  bool saw_fail_safe_ = false;
  std::uint64_t flows_installed_before_probe_ = 0;
  std::uint64_t table_full_before_probe_ = 0;
  bool probe_reply_seen_ = false;
};

}  // namespace hw::scenario
