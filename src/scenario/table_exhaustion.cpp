#include "scenario/table_exhaustion.hpp"

#include <map>

#include "homework/device_registry.hpp"
#include "homework/forwarding.hpp"
#include "openflow/datapath.hpp"
#include "reconcile/reconciler.hpp"

namespace hw::scenario {

workload::HomeScenario::Config TableExhaustionScenario::home_config() const {
  workload::HomeScenario::Config cfg;
  cfg.router.admission = homework::DeviceRegistry::AdmissionDefault::PermitAll;
  cfg.router.datapath.table_capacity = params_.table_capacity;
  cfg.router.datapath.microflow_capacity = params_.microflow_capacity;
  cfg.router.datapath.controller_dead_interval =
      params_.controller_dead_interval;
  cfg.router.liveness.probe_interval = kSecond;
  return cfg;
}

void TableExhaustionScenario::populate(workload::HomeScenario& home) {
  sim::EventLoop& loop = home.loop();
  const std::size_t victim = home.add_device(
      {"victim", workload::DeviceKind::Laptop, std::nullopt});
  const std::size_t compromised = home.add_device(
      {"compromised", workload::DeviceKind::Tv, std::nullopt});
  sim::Host* victim_host = home.devices()[victim].host.get();
  sim::Host* attacker_host = home.devices()[compromised].host.get();
  loop.schedule(50 * kMillisecond, [victim_host] { victim_host->start_dhcp(); });
  loop.schedule(100 * kMillisecond,
                [attacker_host] { attacker_host->start_dhcp(); });

  // The victim's steady flow: one established connection that must survive
  // the attack and the fail-safe window (fail-safe permits established).
  const Ipv4Address steady_dst{93, 184, 216, 34};
  for (Timestamp t = kSecond; t < config_.duration - kSecond;
       t += 500 * kMillisecond) {
    loop.schedule_at(t, [victim_host, steady_dst] {
      (void)victim_host->send_udp(steady_dst, 42000, 443, 128);
    });
  }

  // Mid-attack controller outage: compose it into whatever chaos plan the
  // caller provided so fail-safe entry/exit happens under fire.
  if (!config_.faults) config_.faults.emplace();
  config_.faults->seed = config_.faults->seed ^ config_.seed;
  sim::FaultWindow outage;
  outage.kind = sim::FaultKind::ControllerOutage;
  outage.start = params_.outage_start;
  outage.duration = params_.outage_end - params_.outage_start;
  config_.faults->windows.push_back(outage);

  // Table-size / fail-safe sampler: the capacity invariant is checked
  // continuously, not just at the end.
  ofp::Datapath* dp = &home.router().datapath();
  sampler_ = std::make_unique<sim::PeriodicTimer>(
      loop, 100 * kMillisecond, [this, dp] {
        max_table_size_ = std::max(max_table_size_, dp->table().size());
        saw_fail_safe_ = saw_fail_safe_ || dp->fail_safe();
      });
  sampler_->start();

  // Post-attack probes: pings answered through the packet-in path, and —
  // once the hostile entries have idle-expired — one fresh flow that must
  // install without tripping TableFull again.
  auto sent = std::make_shared<std::map<std::uint16_t, Timestamp>>();
  victim_host->on_echo_reply([this, sent, &loop](Ipv4Address, std::uint16_t seq) {
    auto it = sent->find(seq);
    if (it == sent->end()) return;
    record_recovery(loop.now() - it->second);
    sent->erase(it);
    probe_reply_seen_ = true;
  });
  const Ipv4Address router_ip = home.router().config().router_ip;
  for (std::uint16_t i = 0; i < 3; ++i) {
    const Timestamp at = params_.probe_at + i * 500 * kMillisecond;
    loop.schedule_at(at, [victim_host, router_ip, sent, at, i, &loop] {
      (void)loop;
      (*sent)[i] = at;
      (void)victim_host->ping(router_ip, i);
    });
  }
  const Timestamp fresh_at = config_.duration - 1500 * kMillisecond;
  homework::Forwarding* fwd = &home.router().forwarding();
  loop.schedule_at(fresh_at - 100 * kMillisecond, [this, fwd] {
    flows_installed_before_probe_ = fwd->stats().flows_installed;
    table_full_before_probe_ = router().datapath().table().stats().table_full;
  });
  loop.schedule_at(fresh_at, [victim_host] {
    (void)victim_host->send_udp(Ipv4Address{93, 184, 216, 99}, 42001, 8080, 64);
  });
}

void TableExhaustionScenario::drive(sim::EventLoop& loop) {
  set_attack_window(params_.attack_start, params_.attack_end);
  sim::Host* attacker_host = home().device("compromised")->host.get();
  std::uint32_t n = 0;
  for (Timestamp t = params_.attack_start; t < params_.attack_end;
       t += params_.hostile_flow_interval) {
    // Every datagram targets a fresh destination, so each one asks the
    // controller for a brand-new flow pair.
    const Ipv4Address dst{10, static_cast<std::uint8_t>(1 + (n >> 16)),
                          static_cast<std::uint8_t>(n >> 8),
                          static_cast<std::uint8_t>(n)};
    ++n;
    loop.schedule_at(t, [attacker_host, dst] {
      (void)attacker_host->send_udp(dst, 41000, 9999, 64);
    });
    record_attack();
  }
}

void TableExhaustionScenario::verify(Report& report) {
  ofp::Datapath& dp = router().datapath();
  const auto table = dp.table().stats();
  const auto ctl = router().controller().stats();
  expect(report, "table-full-surfaces-as-errors",
         table.table_full > 0 && ctl.errors > 0,
         "table_full=" + std::to_string(table.table_full) +
             " controller_errors=" + std::to_string(ctl.errors));
  expect(report, "capacity-never-exceeded",
         max_table_size_ > 0 && max_table_size_ <= params_.table_capacity,
         "max_observed=" + std::to_string(max_table_size_) + "/" +
             std::to_string(params_.table_capacity));
  expect(report, "failsafe-entered-and-cleared",
         saw_fail_safe_ && !dp.fail_safe(),
         std::string("entered=") + (saw_fail_safe_ ? "yes" : "no") +
             " at_end=" + (dp.fail_safe() ? "STUCK" : "clear"));
  const auto fwd = router().forwarding().stats();
  const bool fresh_flow_clean =
      fwd.flows_installed > flows_installed_before_probe_ &&
      dp.table().stats().table_full == table_full_before_probe_;
  expect(report, "datapath-never-wedges",
         probe_reply_seen_ && fresh_flow_clean,
         std::string("echo=") + (probe_reply_seen_ ? "yes" : "no") +
             " post-expiry flow install clean=" +
             (fresh_flow_clean ? "yes" : "no"));
  const auto dpstats = dp.stats();
  expect(report, "microflow-survives-churn",
         dpstats.microflow_hits > 0 && dpstats.microflow_invalidations > 0,
         "hits=" + std::to_string(dpstats.microflow_hits) + " invalidations=" +
             std::to_string(dpstats.microflow_invalidations));
  auto* reconciler = router().reconciler();
  const bool converged =
      reconciler != nullptr &&
      reconciler->verify_converged(dp.id(), dp.table());
  expect(report, "reconcile-converges-post-attack", converged);
}

}  // namespace hw::scenario
