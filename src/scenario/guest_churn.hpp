// Flash-crowd guest churn: bursts of unknown devices are admitted through
// the control API (the party starts), then expelled again (the party ends),
// while a quarantine policy is installed and removed against one guest
// mid-crowd. Exercises the Figure 3 admission path — registry, control API,
// DHCP NAK-on-deny, policy lowering — under churn rates a situated display
// would never produce. Promises: every admitted guest binds (permit→bind
// latency is the recovery series), expelled guests end up Denied and
// unbound, the final burst and the residents keep their leases, the API
// accounting matches the bursts exactly, and the policy 201/204 round-trip
// actually drops the quarantined guest's flows.
#pragma once

#include "scenario/scenario.hpp"

namespace hw::scenario {

class GuestChurnScenario final : public HomeAttackScenario {
 public:
  struct Params {
    std::size_t residents = 2;
    std::size_t bursts = 3;
    std::size_t burst_size = 6;
    Duration first_burst = 3 * kSecond;
    Duration burst_spacing = 5 * kSecond;
    /// Every burst but the last is expelled this long after it arrived.
    Duration expel_after = 3500 * kMillisecond;
    /// Quarantine policy timeline against one final-burst guest.
    Duration policy_install_at = 14 * kSecond;
    Duration policy_delete_at = 16 * kSecond;
  };

  GuestChurnScenario(Config config, Params params)
      : HomeAttackScenario("guest-churn", config), params_(params) {}
  explicit GuestChurnScenario(Config config = default_config())
      : GuestChurnScenario(config, Params{}) {}

  static Config default_config() {
    Config config;
    config.duration = 18 * kSecond;
    return config;
  }

  [[nodiscard]] const Params& params() const { return params_; }

 protected:
  [[nodiscard]] workload::HomeScenario::Config home_config() const override;
  void populate(workload::HomeScenario& home) override;
  void drive(sim::EventLoop& loop) override;
  void verify(Report& report) override;

 private:
  [[nodiscard]] std::size_t guest_count() const {
    return params_.bursts * params_.burst_size;
  }

  Params params_;
  std::size_t guest_binds_ = 0;
  int policy_install_status_ = 0;
  int policy_delete_status_ = 0;
  /// Compiled `policy:block` drop flows observed mid-quarantine, and the
  /// packets they swallowed (the guest's probes die in the table, so the
  /// proof of enforcement is the drop rules' own counters).
  std::size_t quarantine_drop_flows_ = 0;
  std::uint64_t quarantine_dropped_packets_ = 0;
};

}  // namespace hw::scenario
