// DHCP pool starvation: an attacker floods spoofed-MAC DISCOVERs until the
// per-dpid scope runs dry. The platform's promises: the pool exhausts
// cleanly (counter, no crash, no double allocation), legitimate devices
// keep their leases and renew successfully THROUGH the attack, and once the
// unclaimed offers expire the pool recovers for new legitimate joiners.
#pragma once

#include "scenario/scenario.hpp"

namespace hw::scenario {

class DhcpStarvationScenario final : public HomeAttackScenario {
 public:
  struct Params {
    std::size_t residents = 3;
    /// Distinct spoofed source MACs; larger than the pool so the flood can
    /// always drain it.
    std::size_t spoofed_macs = 140;
    Duration attack_start = 2 * kSecond;
    Duration attack_end = 14 * kSecond;
    Duration flood_interval = 5 * kMillisecond;
    /// Short leases so residents renew mid-attack (at lease/2).
    std::uint32_t lease_secs = 20;
    /// How long the server holds an offered-but-never-ACKed allocation.
    Duration offer_hold = 4 * kSecond;
    /// A fresh legitimate device joins after the attack; its bind must
    /// succeed once expired offers return to the pool.
    Duration late_join_at = 20 * kSecond + 100 * kMillisecond;
  };

  DhcpStarvationScenario(Config config, Params params)
      : HomeAttackScenario("dhcp-starvation", config), params_(params) {}
  explicit DhcpStarvationScenario(Config config = Config{})
      : DhcpStarvationScenario(config, Params{}) {}

  [[nodiscard]] const Params& params() const { return params_; }

 protected:
  [[nodiscard]] workload::HomeScenario::Config home_config() const override;
  void populate(workload::HomeScenario& home) override;
  void drive(sim::EventLoop& loop) override;
  void verify(Report& report) override;

 private:
  Params params_;
  std::size_t attacker_index_ = 0;
  std::size_t late_joiner_index_ = 0;
  Timestamp late_joiner_bound_at_ = 0;
};

}  // namespace hw::scenario
