// IoT swarm: hundreds of low-rate devices join the home in a tight stagger
// and then chatter to their cloud endpoints — not malicious packets, but a
// hostile *scale* for per-dpid registry, DHCP scope, policy and flow-table
// bookkeeping sized around a family's worth of devices. Promises: every
// device binds (bind latency is the recovery series), every lease is
// distinct, the chatter sets up per-device flows without tripping TableFull
// or pool exhaustion, and the registry tracks the whole swarm.
#pragma once

#include "scenario/scenario.hpp"

namespace hw::scenario {

class IotSwarmScenario final : public HomeAttackScenario {
 public:
  struct Params {
    /// Swarm size; the pool below leaves headroom (.10–.250 = 241 leases).
    std::size_t devices = 180;
    Duration join_start = 200 * kMillisecond;
    /// One join per stagger step — a "smart home" powering on, not a botnet
    /// burst, but still ~50x a normal home's admission rate.
    Duration join_stagger = 20 * kMillisecond;
    Duration chatter_start = 6 * kSecond;
    Duration chatter_end = 10 * kSecond;
    Duration chatter_interval = kSecond;
    std::size_t chatter_bytes = 64;
  };

  IotSwarmScenario(Config config, Params params)
      : HomeAttackScenario("iot-swarm", config), params_(params) {}
  explicit IotSwarmScenario(Config config = default_config())
      : IotSwarmScenario(config, Params{}) {}

  static Config default_config() {
    Config config;
    config.duration = 12 * kSecond;
    return config;
  }

  [[nodiscard]] const Params& params() const { return params_; }

 protected:
  [[nodiscard]] workload::HomeScenario::Config home_config() const override;
  void populate(workload::HomeScenario& home) override;
  void drive(sim::EventLoop& loop) override;
  void verify(Report& report) override;

 private:
  Params params_;
  std::size_t bound_count_ = 0;
};

}  // namespace hw::scenario
