#include "scenario/guest_churn.hpp"

#include "homework/control_api.hpp"
#include "homework/device_registry.hpp"
#include "homework/forwarding.hpp"
#include "openflow/datapath.hpp"
#include "reconcile/reconciler.hpp"

namespace hw::scenario {

workload::HomeScenario::Config GuestChurnScenario::home_config() const {
  workload::HomeScenario::Config cfg;
  // Unknown devices wait for the user's drag-to-permitted — the whole point
  // of the flash crowd is driving that decision path at burst rate.
  cfg.router.admission = homework::DeviceRegistry::AdmissionDefault::Pending;
  return cfg;
}

void GuestChurnScenario::populate(workload::HomeScenario& home) {
  for (std::size_t i = 0; i < params_.residents; ++i) {
    const std::string name = "resident-" + std::to_string(i);
    home.add_device({name, workload::DeviceKind::Laptop, std::nullopt});
    home.permit(name);
    sim::Host* host = home.devices().back().host.get();
    home.loop().schedule(100 * kMillisecond + i * 50 * kMillisecond,
                         [host] { host->start_dhcp(); });
  }
  for (std::size_t g = 0; g < guest_count(); ++g) {
    home.add_device({"guest-" + std::to_string(g),
                     workload::DeviceKind::Phone, std::nullopt});
  }
}

void GuestChurnScenario::drive(sim::EventLoop& loop) {
  const Duration last_burst =
      params_.first_burst + (params_.bursts - 1) * params_.burst_spacing;
  set_attack_window(params_.first_burst, last_burst + params_.expel_after);

  auto& devices = home().devices();
  homework::ControlApi* api = &router().control_api();
  for (std::size_t b = 0; b < params_.bursts; ++b) {
    const Timestamp burst_at = params_.first_burst + b * params_.burst_spacing;
    for (std::size_t i = 0; i < params_.burst_size; ++i) {
      const std::size_t g = b * params_.burst_size + i;
      sim::Host* host = devices[params_.residents + g].host.get();
      const std::string mac = host->mac().to_string();

      // Admit through the API (the Figure 3 drag), then the guest DHCPs.
      loop.schedule_at(burst_at, [this, api, mac] {
        homework::HttpRequest req;
        req.method = "POST";
        req.path = "/api/devices/" + mac + "/permit";
        (void)api->handle(req);
        record_attack();
      });
      auto first = std::make_shared<bool>(true);
      host->on_bound([this, first, burst_at, &loop] {
        if (!*first) return;
        *first = false;
        ++guest_binds_;
        record_recovery(loop.now() - burst_at);
      });
      loop.schedule_at(burst_at + 50 * kMillisecond + i * 10 * kMillisecond,
                       [host] { host->start_dhcp(); });

      // Every burst but the last gets expelled; the rude guest immediately
      // asks again and must be NAKed into staying unbound.
      if (b + 1 < params_.bursts) {
        const Timestamp expel_at = burst_at + params_.expel_after;
        loop.schedule_at(expel_at, [this, api, mac] {
          homework::HttpRequest req;
          req.method = "POST";
          req.path = "/api/devices/" + mac + "/deny";
          (void)api->handle(req);
          record_attack();
        });
        loop.schedule_at(expel_at + 100 * kMillisecond,
                         [host] { host->start_dhcp(); });
      }
    }
  }

  // Quarantine one final-burst guest by policy for a window: install → the
  // guest's traffic must be dropped → delete.
  sim::Host* quarantined =
      devices[params_.residents + (params_.bursts - 1) * params_.burst_size]
          .host.get();
  const std::string qmac = quarantined->mac().to_string();
  loop.schedule_at(params_.policy_install_at, [this, api, qmac] {
    homework::HttpRequest req;
    req.method = "POST";
    req.path = "/api/policies";
    req.body = "{\"id\":\"quarantine\",\"who\":{\"macs\":[\"" + qmac +
               "\"]},\"block_network\":true}";
    policy_install_status_ = api->handle(req).status;
    record_attack();
  });
  const Ipv4Address outside{198, 51, 100, 7};
  for (int i = 0; i < 3; ++i) {
    loop.schedule_at(
        params_.policy_install_at + 500 * kMillisecond * (i + 1),
        [quarantined, outside] {
          (void)quarantined->send_udp(outside, 33000, 443, 64);
        });
  }
  // The compiled policy layer drops the quarantined traffic *in the table*
  // (no packet-in reaches the reactive deny path), so sample the block
  // rules' own match counters just before the policy comes back out.
  loop.schedule_at(params_.policy_delete_at - 100 * kMillisecond, [this] {
    router().datapath().table().for_each([this](const ofp::FlowEntry& e) {
      if (e.priority != 0x9100) return;  // reconciler's kPolicyBlockPriority
      ++quarantine_drop_flows_;
      quarantine_dropped_packets_ += e.packet_count;
    });
  });
  loop.schedule_at(params_.policy_delete_at, [this, api] {
    homework::HttpRequest req;
    req.method = "DELETE";
    req.path = "/api/policies/quarantine";
    policy_delete_status_ = api->handle(req).status;
    record_attack();
  });
}

void GuestChurnScenario::verify(Report& report) {
  expect(report, "every-admitted-guest-bound", guest_binds_ == guest_count(),
         std::to_string(guest_binds_) + "/" + std::to_string(guest_count()) +
             " bound");

  auto& devices = home().devices();
  auto& registry = router().registry();
  const std::size_t expelled = (params_.bursts - 1) * params_.burst_size;
  std::size_t expelled_ok = 0;
  std::size_t kept_ok = 0;
  for (std::size_t g = 0; g < guest_count(); ++g) {
    sim::Host* host = devices[params_.residents + g].host.get();
    const auto* rec = registry.find(host->mac());
    if (g < expelled) {
      if (!host->ip().has_value() && rec != nullptr &&
          rec->state == homework::DeviceState::Denied) {
        ++expelled_ok;
      }
    } else if (host->ip().has_value() && rec != nullptr &&
               rec->state == homework::DeviceState::Permitted && rec->lease) {
      ++kept_ok;
    }
  }
  expect(report, "expelled-guests-denied-and-unbound",
         expelled_ok == expelled,
         std::to_string(expelled_ok) + "/" + std::to_string(expelled));
  std::size_t residents_bound = 0;
  for (std::size_t i = 0; i < params_.residents; ++i) {
    if (devices[i].host->ip().has_value()) ++residents_bound;
  }
  expect(report, "final-burst-and-residents-keep-leases",
         kept_ok == params_.burst_size &&
             residents_bound == params_.residents,
         "kept=" + std::to_string(kept_ok) + "/" +
             std::to_string(params_.burst_size) + " residents=" +
             std::to_string(residents_bound));

  const auto api = router().control_api().stats();
  expect(report, "api-accounting-matches-bursts",
         api.permits == guest_count() && api.denies == expelled,
         "permits=" + std::to_string(api.permits) + " denies=" +
             std::to_string(api.denies));

  // The 201/204 must have actually moved packets: block flows present and
  // matching mid-window, then compiled back out once the policy was deleted.
  std::size_t block_flows_left = 0;
  router().datapath().table().for_each([&](const ofp::FlowEntry& e) {
    if (e.priority == 0x9100) ++block_flows_left;
  });
  expect(report, "policy-quarantine-round-trip",
         policy_install_status_ == 201 && policy_delete_status_ == 204 &&
             quarantine_drop_flows_ >= 2 && quarantine_dropped_packets_ > 0 &&
             block_flows_left == 0,
         "install=" + std::to_string(policy_install_status_) + " delete=" +
             std::to_string(policy_delete_status_) + " drop_flows=" +
             std::to_string(quarantine_drop_flows_) + " dropped_pkts=" +
             std::to_string(quarantine_dropped_packets_) + " left=" +
             std::to_string(block_flows_left));

  auto* reconciler = router().reconciler();
  const auto& dp = router().datapath();
  expect(report, "reconcile-converges-after-churn",
         reconciler != nullptr &&
             reconciler->verify_converged(dp.id(), dp.table()));
}

}  // namespace hw::scenario
