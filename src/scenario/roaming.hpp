// Cross-home roaming in the shared-controller fleet: a phone walks next
// door. Home pairs (2p, 2p+1) share a shard; the odd home's roamer device
// detaches mid-run and re-associates with the even home's datapath, re-DHCPs
// behind the new dpid, and talks to a local peer there. Promises: the
// roamer re-binds at the destination (rebind latency is the recovery
// series), the origin home's (dpid, mac) state is untouched, the roamer's
// unique MAC never leaks outside its pair, every home converges, and the
// merged non-histogram telemetry is bit-identical at every thread count —
// the same-seed differential the fleet's determinism contract demands.
#pragma once

#include "fleet/shared.hpp"
#include "scenario/scenario.hpp"

namespace hw::scenario {

class RoamingScenario final : public Scenario {
 public:
  struct Params {
    std::size_t homes = 8;  // 4 roaming pairs
    std::size_t devices_per_home = 2;
    Timestamp roam_at = 3500 * kMillisecond;
    /// Worker-pool sizes the same seed must fingerprint identically across.
    std::vector<std::size_t> thread_counts{1, 2, 8};
  };

  RoamingScenario(Config config, Params params)
      : Scenario("roaming", config), params_(std::move(params)) {}
  explicit RoamingScenario(Config config = default_config())
      : RoamingScenario(config, Params{}) {}

  static Config default_config() {
    Config config;
    config.duration = 6 * kSecond;
    return config;
  }

  [[nodiscard]] const Params& params() const { return params_; }

  [[nodiscard]] Report run() override;

 private:
  [[nodiscard]] fleet::SharedFleetConfig fleet_config(
      std::size_t threads) const;

  Params params_;
};

}  // namespace hw::scenario
