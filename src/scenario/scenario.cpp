#include "scenario/scenario.hpp"

#include <algorithm>
#include <cstdio>

#include "net/dhcp.hpp"
#include "net/packet.hpp"

namespace hw::scenario {

bool Report::ok() const {
  return !invariants.empty() &&
         std::all_of(invariants.begin(), invariants.end(),
                     [](const Invariant& i) { return i.held; });
}

double Report::attack_rate() const {
  if (attack_seconds <= 0.0) return 0.0;
  return static_cast<double>(attack_events) / attack_seconds;
}

namespace {

Duration percentile(std::vector<Duration> samples, double p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(rank, samples.size() - 1)];
}

}  // namespace

Duration Report::recovery_p50() const { return percentile(recovery_samples, 0.50); }
Duration Report::recovery_p99() const { return percentile(recovery_samples, 0.99); }

std::string Report::to_string() const {
  std::string out = scenario + " (seed " + std::to_string(seed) + "): " +
                    (ok() ? "OK" : "FAIL") + "\n";
  for (const Invariant& inv : invariants) {
    out += std::string("  [") + (inv.held ? "pass" : "FAIL") + "] " + inv.name;
    if (!inv.detail.empty()) out += " — " + inv.detail;
    out += "\n";
  }
  char line[128];
  std::snprintf(line, sizeof line,
                "  attack: %llu events, %.2f ev/s; recovery p50 %llu us, "
                "p99 %llu us (%zu samples)\n",
                static_cast<unsigned long long>(attack_events), attack_rate(),
                static_cast<unsigned long long>(recovery_p50()),
                static_cast<unsigned long long>(recovery_p99()),
                recovery_samples.size());
  out += line;
  return out;
}

namespace {
std::uint64_t derive_attack_seed(std::uint64_t seed) {
  std::uint64_t state = seed ^ 0x5ce9a2101ull;
  return splitmix64(state);
}
}  // namespace

Scenario::Scenario(std::string name, Config config)
    : config_(config),
      name_(std::move(name)),
      attack_rng_(derive_attack_seed(config.seed)) {}

Scenario::~Scenario() = default;

void Scenario::record_attack(std::uint64_t n) {
  metrics_.events.inc(n);
  attack_events_ += n;
}

void Scenario::record_recovery(Duration latency) {
  metrics_.recovery_ns.record(static_cast<std::uint64_t>(latency) * 1000u);
  recovery_samples_.push_back(latency);
}

void Scenario::expect(Report& report, std::string name, bool held,
                      std::string detail) {
  if (held) {
    metrics_.invariants_ok.inc();
  } else {
    metrics_.invariants_failed.inc();
  }
  report.invariants.push_back({std::move(name), held, std::move(detail)});
}

Report Scenario::make_report() {
  Report report;
  report.scenario = name_;
  report.seed = config_.seed;
  report.attack_events = attack_events_;
  report.attack_seconds = attack_seconds_;
  report.recovery_samples = recovery_samples_;
  return report;
}

void Scenario::set_attack_window(Duration start, Duration end) {
  attack_seconds_ =
      end > start ? static_cast<double>(end - start) / kSecond : 0.0;
}

workload::HomeScenario::Config HomeAttackScenario::home_config() const {
  return {};
}

Report HomeAttackScenario::run() {
  count_run();
  workload::HomeScenario::Config cfg = home_config();
  cfg.seed = config_.seed;
  home_ = std::make_unique<workload::HomeScenario>(cfg);
  home_->start();
  populate(*home_);
  if (config_.faults) {
    faults_ = std::make_unique<sim::FaultInjector>(home_->loop());
    home_->router().attach_faults(*faults_);
    for (const auto& dev : home_->devices()) {
      if (dev.attachment.link != nullptr) {
        faults_->add_link(dev.name, *dev.attachment.link);
      }
    }
    faults_->arm(*config_.faults);
  }
  drive(home_->loop());
  home_->loop().run_until(config_.duration);
  Report report = make_report();
  verify(report);
  return report;
}

void HomeAttackScenario::inject(std::size_t device, const Bytes& frame) {
  auto& devices = home_->devices();
  if (device >= devices.size()) return;
  sim::DuplexLink* link = devices[device].attachment.link;
  if (link == nullptr) return;
  // a_to_b is the device→router direction (HomeworkRouter::attach_device
  // connects it to the port ingress).
  (void)link->a_to_b().send(frame);
}

Bytes spoofed_discover(MacAddress mac, std::uint32_t xid,
                       const std::string& hostname) {
  const Bytes payload = net::DhcpMessage::discover(xid, mac, hostname).serialize();
  return net::build_dhcp_frame(mac, MacAddress::broadcast(),
                               Ipv4Address::any(), Ipv4Address::broadcast(),
                               /*from_client=*/true, payload);
}

}  // namespace hw::scenario
