#include "scenario/iot_swarm.hpp"

#include <set>

#include "homework/device_registry.hpp"
#include "homework/dhcp_server.hpp"
#include "homework/forwarding.hpp"
#include "openflow/datapath.hpp"
#include "reconcile/reconciler.hpp"

namespace hw::scenario {

workload::HomeScenario::Config IotSwarmScenario::home_config() const {
  workload::HomeScenario::Config cfg;
  cfg.router.admission = homework::DeviceRegistry::AdmissionDefault::PermitAll;
  cfg.router.pool_start = Ipv4Address{192, 168, 1, 10};
  cfg.router.pool_end = Ipv4Address{192, 168, 1, 250};
  return cfg;
}

void IotSwarmScenario::populate(workload::HomeScenario& home) {
  for (std::size_t i = 0; i < params_.devices; ++i) {
    home.add_device({"iot-" + std::to_string(i),
                     workload::DeviceKind::Printer, std::nullopt});
  }
}

void IotSwarmScenario::drive(sim::EventLoop& loop) {
  set_attack_window(params_.join_start, params_.chatter_end);
  auto& devices = home().devices();
  const Ipv4Address cloud{203, 0, 113, 10};
  for (std::size_t i = 0; i < params_.devices; ++i) {
    sim::Host* host = devices[i].host.get();
    const Timestamp join_at = params_.join_start + i * params_.join_stagger;
    // Bind latency from the moment the device powered on — the swarm's DHCP
    // service time under mass admission is the recovery series.
    auto first = std::make_shared<bool>(true);
    host->on_bound([this, first, join_at, &loop] {
      if (!*first) return;
      *first = false;
      ++bound_count_;
      record_recovery(loop.now() - join_at);
    });
    loop.schedule_at(join_at, [host] { host->start_dhcp(); });
    record_attack();

    // Low-rate cloud chatter: one distinct 5-tuple per device, with a
    // per-device phase so the rounds don't land as a thundering herd.
    const Duration phase = attack_rng().uniform(500) * kMillisecond;
    const auto sport = static_cast<std::uint16_t>(20000 + i);
    for (Timestamp t = params_.chatter_start + phase; t < params_.chatter_end;
         t += params_.chatter_interval) {
      loop.schedule_at(t, [this, host, cloud, sport] {
        if (host->send_udp(cloud, sport, 8883, params_.chatter_bytes)) {
          record_attack();
        }
      });
    }
  }
}

void IotSwarmScenario::verify(Report& report) {
  expect(report, "swarm-fully-bound", bound_count_ == params_.devices,
         std::to_string(bound_count_) + "/" +
             std::to_string(params_.devices) + " bound");

  // Registry + scope scale: every device has a record with a live lease and
  // every lease is a distinct address.
  auto& registry = router().registry();
  std::set<Ipv4Address> ips;
  std::size_t leased = 0;
  for (const auto* rec : registry.all()) {
    if (rec->lease) {
      ++leased;
      ips.insert(rec->lease->ip);
    }
  }
  expect(report, "registry-tracks-swarm",
         registry.size() == params_.devices && leased == params_.devices,
         "records=" + std::to_string(registry.size()) + " leased=" +
             std::to_string(leased));
  expect(report, "leases-all-distinct", ips.size() == leased,
         std::to_string(ips.size()) + " distinct of " +
             std::to_string(leased));

  const auto dhcp = router().dhcp().stats();
  const auto dp = router().datapath().stats();
  expect(report, "no-starvation-at-scale",
         dhcp.pool_exhausted == 0 && dp.failsafe_entries == 0,
         "pool_exhausted=" + std::to_string(dhcp.pool_exhausted) +
             " failsafe_entries=" + std::to_string(dp.failsafe_entries));

  const auto table = router().datapath().table().stats();
  const std::size_t size = router().datapath().table().size();
  const std::size_t capacity = router().config().datapath.table_capacity;
  const auto fwd = router().forwarding().stats();
  expect(report, "chatter-flows-within-capacity",
         fwd.flows_installed >= params_.devices && table.table_full == 0 &&
             size <= capacity,
         "flows_installed=" + std::to_string(fwd.flows_installed) +
             " table=" + std::to_string(size) + "/" +
             std::to_string(capacity) +
             " table_full=" + std::to_string(table.table_full));

  auto* reconciler = router().reconciler();
  const auto& dpath = router().datapath();
  expect(report, "reconcile-converges-at-scale",
         reconciler != nullptr &&
             reconciler->verify_converged(dpath.id(), dpath.table()));
}

}  // namespace hw::scenario
