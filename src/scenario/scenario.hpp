// Adversarial scenario library: seeded hostile workloads paired with
// machine-checked invariants, turning the home/fleet simulator into a
// correctness harness (ROADMAP item 5). Where FaultPlan scripts *failures*
// (lossy links, severed channels), a Scenario scripts an *attacker* — DHCP
// pool starvation, flow-table exhaustion, IoT swarms, guest flash crowds,
// cross-home roaming — and then holds the platform to explicit promises
// ("no legitimate lease lost", "the datapath never wedges after TableFull",
// "reconcile converges post-attack") evaluated against telemetry and
// registry state at the end of the run.
//
// Determinism contract: a scenario draws randomness only from its seeded
// Rng and the virtual clock, so a (seed, params) pair replays the same
// attack — and produces the same non-histogram telemetry fingerprint — on
// every run, at any worker-thread count. Recovery latencies are virtual
// time, so p50/p99 are deterministic too.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/event_loop.hpp"
#include "sim/fault_injector.hpp"
#include "telemetry/metrics.hpp"
#include "util/rand.hpp"
#include "util/types.hpp"
#include "workload/scenario.hpp"

namespace hw::scenario {

/// One machine-checked promise. `held` is the verdict; `detail` carries the
/// observed numbers so a failing invariant explains itself.
struct Invariant {
  std::string name;
  bool held = false;
  std::string detail;
};

/// The outcome of one scenario run: the verdicts plus the attack/recovery
/// series the bench reports (attack throughput sustained, recovery p50/p99).
struct Report {
  std::string scenario;
  std::uint64_t seed = 0;
  std::vector<Invariant> invariants;
  /// Hostile events injected (spoofed frames, hostile flows, API bursts…).
  std::uint64_t attack_events = 0;
  /// Virtual seconds the attack window spanned.
  double attack_seconds = 0.0;
  /// Virtual-time recovery latencies (µs): how long after the attack (or
  /// after a legitimate action during it) the platform served the victim.
  std::vector<Duration> recovery_samples;

  [[nodiscard]] bool ok() const;
  /// Attack events per virtual second of attack window.
  [[nodiscard]] double attack_rate() const;
  [[nodiscard]] Duration recovery_p50() const;
  [[nodiscard]] Duration recovery_p99() const;
  /// Human-readable verdict block (one line per invariant).
  [[nodiscard]] std::string to_string() const;
};

/// Base of every scenario: a name, a seed, a duration and an optional chaos
/// plan (so hostile workloads compose with PR 3 fault injection — the suite
/// must not assume a fault-free channel). Subclasses implement run().
class Scenario {
 public:
  struct Config {
    std::uint64_t seed = 2011;
    /// Total virtual runtime, including the post-attack recovery tail.
    Duration duration = 30 * kSecond;
    /// Chaos composition: armed on the scenario's fault surfaces before the
    /// attack starts. Windows and the attack share the virtual clock.
    std::optional<sim::FaultPlan> faults;
  };

  Scenario(std::string name, Config config);
  virtual ~Scenario();
  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const Config& config() const { return config_; }

  /// Builds the world, drives the hostile workload to completion and
  /// evaluates the invariants. Deterministic per (config, params) pair.
  [[nodiscard]] virtual Report run() = 0;

 protected:
  /// Scenario-private randomness, derived from the config seed and kept
  /// separate from the home's own stream so the attack schedule does not
  /// perturb legitimate-device draws.
  [[nodiscard]] Rng& attack_rng() { return attack_rng_; }

  /// Counts hostile events into scenario.events and the report.
  void record_attack(std::uint64_t n = 1);
  /// Records a virtual-time recovery latency sample.
  void record_recovery(Duration latency);
  /// Appends a verdict to the report and counts it in scenario.invariants_*.
  void expect(Report& report, std::string name, bool held,
              std::string detail = {});
  /// Fresh report pre-filled with the accumulated attack/recovery series.
  [[nodiscard]] Report make_report();
  void count_run() { metrics_.runs.inc(); }

  Config config_;

 private:
  std::string name_;
  Rng attack_rng_;
  std::uint64_t attack_events_ = 0;
  double attack_seconds_ = 0.0;
  std::vector<Duration> recovery_samples_;

 protected:
  /// Virtual span of the attack window, for the report's rate computation.
  void set_attack_window(Duration start, Duration end);

 private:
  struct Instruments {
    telemetry::Counter runs{"scenario.runs"};
    telemetry::Counter events{"scenario.events"};
    telemetry::Counter invariants_ok{"scenario.invariants_ok"};
    telemetry::Counter invariants_failed{"scenario.invariants_failed"};
    telemetry::Histogram recovery_ns{"scenario.recovery_ns"};
  } metrics_;
};

/// Template-method base for single-home attacks: builds a HomeScenario,
/// wires the chaos injector over the router's fault surfaces and the device
/// links, schedules the hostile workload via drive(), runs the loop to
/// config.duration and hands the report to verify().
class HomeAttackScenario : public Scenario {
 public:
  [[nodiscard]] Report run() final;

 protected:
  using Scenario::Scenario;

  /// The home under attack. Subclasses override to shape the router config
  /// (pool bounds, table capacity, admission default…); the base forces the
  /// scenario seed into the returned config.
  [[nodiscard]] virtual workload::HomeScenario::Config home_config() const;
  /// Populates the home: devices, admission, legitimate workload.
  virtual void populate(workload::HomeScenario& home) = 0;
  /// Schedules the hostile workload on the home's loop (the attack itself).
  virtual void drive(sim::EventLoop& loop) = 0;
  /// Evaluates invariants against telemetry and registry state at the end.
  virtual void verify(Report& report) = 0;

  [[nodiscard]] workload::HomeScenario& home() { return *home_; }
  [[nodiscard]] homework::HomeworkRouter& router() { return home_->router(); }
  /// Injects a raw frame toward the router through `device`'s link — the
  /// attacker rides a real (possibly chaos-degraded) attachment, it does not
  /// get a magic side channel into the datapath.
  void inject(std::size_t device, const Bytes& frame);

 private:
  std::unique_ptr<workload::HomeScenario> home_;
  std::unique_ptr<sim::FaultInjector> faults_;
};

/// A spoofed-MAC DHCPDISCOVER frame as an attacker NIC would emit it
/// (broadcast, 0.0.0.0 source). Shared by the starvation scenario and the
/// DHCP exhaustion regression tests.
[[nodiscard]] Bytes spoofed_discover(MacAddress mac, std::uint32_t xid,
                                     const std::string& hostname = {});

}  // namespace hw::scenario
