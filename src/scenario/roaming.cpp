#include "scenario/roaming.hpp"

#include <algorithm>

namespace hw::scenario {

fleet::SharedFleetConfig RoamingScenario::fleet_config(
    std::size_t threads) const {
  fleet::SharedFleetConfig cfg;
  cfg.homes = params_.homes;
  cfg.threads = threads;
  cfg.seed = config_.seed;
  cfg.duration = config_.duration;
  cfg.devices_per_home = params_.devices_per_home;
  cfg.roam = true;
  cfg.roam_at = params_.roam_at;
  cfg.collect_state = true;
  return cfg;
}

Report RoamingScenario::run() {
  count_run();
  set_attack_window(params_.roam_at, config_.duration);

  std::vector<fleet::SharedFleetResult> results;
  for (const std::size_t threads : params_.thread_counts) {
    fleet::SharedFleetRunner runner(fleet_config(threads));
    results.push_back(runner.run());
    record_attack(params_.homes / 2);  // one re-association per pair
  }
  Report report = make_report();
  if (results.empty()) return report;

  // Same seed, different worker pools: the merged scalar totals must agree
  // to the bit (histograms time wall-clock and are excluded by contract).
  bool stable = true;
  std::string stable_detail;
  for (std::size_t i = 1; i < results.size(); ++i) {
    if (results[i].scalar_totals != results[0].scalar_totals) {
      stable = false;
      stable_detail += "threads=" + std::to_string(params_.thread_counts[i]) +
                       " diverged from threads=" +
                       std::to_string(params_.thread_counts[0]) + "; ";
    }
  }
  expect(report, "fingerprint-stable-across-thread-counts", stable,
         stable ? std::to_string(results.size()) + " pools compared"
                : stable_detail);

  // Per-home promises, checked on every run (they are identical by the
  // invariant above, but a determinism bug must not mask an isolation bug).
  const auto lease_row = [](MacAddress mac, std::uint8_t last) {
    return mac.to_string() + "|192.168.1." + std::to_string(last);
  };
  const auto has = [](const std::vector<std::string>& rows,
                      const std::string& row) {
    return std::find(rows.begin(), rows.end(), row) != rows.end();
  };
  bool rebound = true, origin_kept = true, no_leak = true, all_ok = true;
  std::string rebound_detail, leak_detail;
  for (std::size_t r = 0; r < results.size(); ++r) {
    const auto& result = results[r];
    all_ok = all_ok && result.homes_ok == params_.homes;
    for (const auto& home : result.homes) {
      const std::size_t pair = home.home_id / 2;
      const MacAddress roamer =
          MacAddress::from_index(0xaa0000u + static_cast<std::uint32_t>(pair));
      if (home.home_id % 2 == 0) {
        // Destination: granted the roamer a lease from its own scope (its
        // native devices hold .100/.101) and measured the rebind.
        const auto expected = lease_row(
            roamer, static_cast<std::uint8_t>(100 + params_.devices_per_home));
        if (home.roam_rebind_us == 0 || !has(home.leases, expected)) {
          rebound = false;
          rebound_detail += "home" + std::to_string(home.home_id) +
                            " (threads=" +
                            std::to_string(params_.thread_counts[r]) + "); ";
        }
        if (r == 0 && home.roam_rebind_us > 0) {
          record_recovery(home.roam_rebind_us);
        }
      } else {
        // Origin: the roamer's sticky allocation stays behind the odd dpid.
        origin_kept = origin_kept && has(home.leases, lease_row(roamer, 100));
      }
      // The pair's roamer MAC must never appear under any other dpid.
      for (const auto& other : result.homes) {
        if (other.home_id / 2 == pair) continue;
        for (const auto& lease : other.leases) {
          if (lease.rfind(roamer.to_string() + "|", 0) == 0) {
            no_leak = false;
            leak_detail += roamer.to_string() + " in home" +
                           std::to_string(other.home_id) + "; ";
          }
        }
      }
    }
  }
  expect(report, "roamer-rebinds-at-destination", rebound, rebound_detail);
  expect(report, "origin-home-state-untouched", origin_kept);
  expect(report, "roamer-mac-never-leaks-across-pairs", no_leak, leak_detail);
  expect(report, "all-homes-bound-and-converged", all_ok);

  // Refresh the recovery series gathered above into the report.
  Report final_report = make_report();
  final_report.invariants = std::move(report.invariants);
  return final_report;
}

}  // namespace hw::scenario
