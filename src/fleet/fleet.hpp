// Fleet simulator: run thousands of independent homes in parallel on a
// fixed-size worker pool. Each home is a complete per-home stack — its own
// sim::EventLoop, HomeworkRouter, hwdb measurement plane, device population
// and (optionally) a scripted FaultPlan — built from a seed derived from the
// fleet seed with a SplitMix64 step, so home k always replays the same world
// no matter which worker picks it up or in what order.
//
// Isolation model: every home gets its own telemetry::MetricRegistry,
// installed as the worker thread's scoped registry for the home's whole
// lifetime, so every instrument down to per-host and per-link cells lands in
// that home's registry and homes never contend on shared counters. The only
// cross-thread structure is the pre-sized results vector; each slot is
// written by exactly one worker and the join provides the happens-before for
// the aggregation pass.
//
// Determinism contract: per-home results depend only on the home seed (the
// simulation runs on a virtual clock with seeded randomness), and fleet-wide
// aggregation always iterates homes in home-id order, so the merged
// non-histogram telemetry is bit-identical for a given fleet seed regardless
// of worker-pool size. Histogram series time wall-clock nanoseconds and are
// therefore merged but excluded from determinism comparisons.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "residency/image_store.hpp"
#include "residency/profile.hpp"
#include "sim/fault_injector.hpp"
#include "snapshot/coordinator.hpp"
#include "telemetry/metrics.hpp"
#include "util/types.hpp"

namespace hw::fleet {

struct FleetConfig {
  /// Number of independent homes to simulate.
  std::size_t homes = 100;
  /// Worker threads; 0 means one per hardware thread. Never more than homes.
  std::size_t threads = 1;
  /// Fleet seed; home k runs with seed splitmix64(seed ^ k-mix).
  std::uint64_t seed = 1;
  /// Virtual time each home simulates.
  Duration duration = 30 * kSecond;
  /// Devices attached per home (kinds and positions derive from the seed).
  std::size_t devices_per_home = 3;
  /// Start each device's application mix once leases are bound.
  bool run_apps = true;
  /// Arm a per-home FaultPlan (windows and intensities derive from the seed).
  bool chaos = false;

  /// Periodic whole-home checkpoints. Captures land at
  /// k * checkpoint_interval + HomeworkRouter::kBootSettle — past the
  /// integer-second module timer ticks, so no echo probe or RPC exchange
  /// straddles the image.
  bool checkpoints = false;
  Duration checkpoint_interval = 5 * kSecond;

  /// Kill this home's worker at kill_at (virtual time) and resume it from
  /// its last periodic checkpoint. With apps and chaos off, the resumed
  /// home's non-histogram telemetry at `duration` is bit-identical to an
  /// uninterrupted run; apps re-arm their traffic timers from the resume
  /// point and chaos plans drop already-finished windows, so either makes
  /// the resume behavioural rather than bit-exact. Requires checkpoints.
  std::optional<std::size_t> kill_home;
  Timestamp kill_at = 0;

  /// When set (and checkpoints are on), every home's latest periodic image
  /// is deposited here under its home id as the run finishes — feeding the
  /// residency plane's content-addressed store (docs/residency.md). The
  /// store is thread-safe; workers deposit concurrently.
  residency::ImageStore* image_store = nullptr;
};

/// Everything harvested from one finished home, on the worker that ran it.
struct HomeResult {
  std::size_t home_id = 0;
  std::uint64_t seed = 0;

  /// Non-histogram telemetry (name -> summed counter/gauge value). The
  /// deterministic view; diffing this across runs is the fleet's replay test.
  std::map<std::string, double> scalars;
  /// Raw histogram state per series (mergeable; wall-clock latencies).
  std::map<std::string, telemetry::HistogramState> histograms;

  // Scenario verdict.
  std::size_t devices = 0;
  std::size_t devices_bound = 0;   // hold a DHCP lease at end of run
  bool all_bound = false;
  bool fail_safe_at_end = false;   // datapath stuck in fail-safe
  bool inserts_exactly_once = false;  // no hwdb seq applied twice, acks subset
  std::uint64_t inserts_acked = 0;
  std::uint64_t inserts_applied = 0;
  std::size_t flow_entries = 0;
  sim::FaultInjectorStats faults;

  /// Frames carried on device links (the fleet's packet-throughput figure).
  std::uint64_t frames = 0;

  /// Wall-clock cost of this home (excluded from determinism comparisons).
  double wall_ms = 0.0;

  [[nodiscard]] bool ok() const {
    return all_bound && !fail_safe_at_end && inserts_exactly_once;
  }
};

/// Distribution of one telemetry series across homes.
struct SeriesStat {
  double min = 0.0;
  double median = 0.0;
  double max = 0.0;
  double sum = 0.0;
  std::size_t homes = 0;  // homes reporting the series
};

struct FleetResult {
  /// Per-home results, sorted by home_id.
  std::vector<HomeResult> homes;
  /// Counter/gauge sums across all homes (accumulated in home-id order).
  std::map<std::string, double> scalar_totals;
  /// Bucket-merged histogram state across all homes.
  std::map<std::string, telemetry::HistogramState> histograms;
  /// Per-series distribution (min/median/max across homes).
  std::map<std::string, SeriesStat> series;

  std::size_t homes_ok = 0;
  std::uint64_t total_frames = 0;
  std::size_t threads_used = 0;
  double wall_ms = 0.0;

  [[nodiscard]] double homes_per_sec() const {
    return wall_ms <= 0.0 ? 0.0 : static_cast<double>(homes.size()) * 1e3 / wall_ms;
  }
  [[nodiscard]] double frames_per_sec() const {
    return wall_ms <= 0.0 ? 0.0 : static_cast<double>(total_frames) * 1e3 / wall_ms;
  }
};

/// Runs a fleet described by FleetConfig on a worker pool and merges the
/// per-home results. run() may be called repeatedly (each call spawns and
/// joins its own pool); a FleetRunner holds no state between runs.
class FleetRunner {
 public:
  explicit FleetRunner(FleetConfig config);

  [[nodiscard]] const FleetConfig& config() const { return config_; }
  /// The shared immutable per-fleet tables (seeds, device populations) every
  /// home reads instead of re-deriving.
  [[nodiscard]] const std::shared_ptr<const residency::FleetProfile>& profile()
      const {
    return profile_;
  }

  /// Seed for home `home_id` under fleet seed `fleet_seed` (SplitMix64 over
  /// the fleet seed advanced past the home id — decorrelates neighbouring
  /// homes even for small fleet seeds). Delegates to
  /// residency::FleetProfile::home_seed, the one shared derivation.
  [[nodiscard]] static std::uint64_t home_seed(std::uint64_t fleet_seed,
                                               std::size_t home_id);

  /// The scripted fault plan home `seed` runs under when chaos is on. Public
  /// so tests can assert plans differ across homes and replay one home.
  [[nodiscard]] static sim::FaultPlan chaos_plan(std::uint64_t seed,
                                                 Duration duration);

  /// Simulates one home start-to-finish on the calling thread, under its own
  /// metric registry. Exposed for tests and single-home debugging.
  [[nodiscard]] HomeResult run_home(std::size_t home_id) const;

  /// Runs the whole fleet on `config.threads` workers.
  [[nodiscard]] FleetResult run() const;

 private:
  /// One life of a home: fresh from t=0 when `resume` is null, or restored
  /// from `resume` (loop origin = captured_at - kBootSettle, boot, restore,
  /// re-arm phase-aligned driver timers). Runs to `end_at` and harvests.
  /// When `checkpoint_out` is non-null the coordinator's last image (if any)
  /// is copied out for the next life.
  [[nodiscard]] HomeResult run_life(
      std::size_t home_id, std::uint64_t seed,
      const snapshot::SnapshotImage* resume, Timestamp end_at,
      std::optional<snapshot::SnapshotImage>* checkpoint_out) const;

  FleetConfig config_;
  std::shared_ptr<const residency::FleetProfile> profile_;
};

}  // namespace hw::fleet
