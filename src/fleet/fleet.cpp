#include "fleet/fleet.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <thread>

#include "homework/router.hpp"
#include "hwdb/udp_transport.hpp"
#include "snapshot/codec.hpp"
#include "util/rand.hpp"
#include "workload/scenario.hpp"

namespace hw::fleet {
namespace {

constexpr std::uint32_t kRngTag = snapshot::tag("RNGS");
constexpr std::uint32_t kDriverTag = snapshot::tag("FDRV");

double wall_ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Smallest phase + k * period strictly after `now` — re-arms a restored
/// home's periodic drivers on the same absolute tick grid the uninterrupted
/// run uses.
Timestamp next_phase_tick(Timestamp now, Duration period, Duration phase) {
  if (now < phase) return phase;
  return phase + ((now - phase) / period + 1) * period;
}

}  // namespace

FleetRunner::FleetRunner(FleetConfig config)
    : config_(std::move(config)),
      profile_(residency::FleetProfile::build(config_.seed, config_.homes,
                                              config_.devices_per_home)) {}

std::uint64_t FleetRunner::home_seed(std::uint64_t fleet_seed,
                                     std::size_t home_id) {
  return residency::FleetProfile::home_seed(fleet_seed, home_id);
}

sim::FaultPlan FleetRunner::chaos_plan(std::uint64_t seed, Duration duration) {
  sim::FaultPlan plan;
  plan.seed = seed;
  // Draws come from a dedicated stream so the plan shape never perturbs the
  // scenario's own randomness.
  std::uint64_t s = seed ^ 0xda3e39cb94b95bdbULL;

  const auto push_if_fits = [&](sim::FaultWindow w) {
    if (w.start + w.duration + kSecond < duration) plan.windows.push_back(w);
  };

  // Every home weathers a lossy-links window; placement and intensity vary.
  const Timestamp loss_at = 2 * kSecond + splitmix64(s) % (3 * kSecond);
  const Duration loss_len = 2 * kSecond + splitmix64(s) % (3 * kSecond);
  const double loss = 0.15 + static_cast<double>(splitmix64(s) % 20) / 100.0;
  push_if_fits({sim::FaultKind::LinkLoss, loss_at, loss_len, "*", loss, {}});

  // Roughly half the homes also see an hwdb drop/duplicate burst...
  if (splitmix64(s) % 2 == 0) {
    const Timestamp at = 5 * kSecond + splitmix64(s) % (2 * kSecond);
    push_if_fits({sim::FaultKind::HwdbFault, at, 2 * kSecond, "*", 0.0,
                  {0.3, 0.2, 2 * kMillisecond}});
  }
  // ...half a controller-channel outage...
  if (splitmix64(s) % 2 == 0) {
    const Timestamp at = 10 * kSecond + splitmix64(s) % (2 * kSecond);
    push_if_fits({sim::FaultKind::ControllerOutage, at, 3 * kSecond, "*", 0.0,
                  {}});
  }
  // ...and a quarter a datapath cold restart late in the run.
  if (splitmix64(s) % 4 == 0) {
    push_if_fits({sim::FaultKind::DatapathRestart, 20 * kSecond, 0, "*", 0.0,
                  {}});
  }
  // Another quarter crashes and comes back restoring the flow table from the
  // last snapshot (a cold restart when no checkpoint has been captured).
  if (splitmix64(s) % 4 == 1) {
    push_if_fits({sim::FaultKind::CrashRestartRestore, 22 * kSecond, 0, "*",
                  0.0, {}});
  }
  return plan;
}

HomeResult FleetRunner::run_home(std::size_t home_id) const {
  const std::uint64_t seed = home_seed(config_.seed, home_id);
  const bool kill = config_.kill_home && *config_.kill_home == home_id &&
                    config_.checkpoints && config_.kill_at > 0 &&
                    config_.kill_at < config_.duration;
  if (!kill) {
    return run_life(home_id, seed, nullptr, config_.duration, nullptr);
  }

  // First life runs to the kill point, checkpointing periodically; the home
  // is then torn down completely (worker "crash") and a second life resumes
  // from the last captured image. A kill before the first checkpoint simply
  // reruns the home from scratch.
  std::optional<snapshot::SnapshotImage> checkpoint;
  (void)run_life(home_id, seed, nullptr, config_.kill_at, &checkpoint);
  if (!checkpoint) {
    return run_life(home_id, seed, nullptr, config_.duration, nullptr);
  }
  return run_life(home_id, seed, &*checkpoint, config_.duration, nullptr);
}

HomeResult FleetRunner::run_life(
    std::size_t home_id, std::uint64_t seed,
    const snapshot::SnapshotImage* resume, Timestamp end_at,
    std::optional<snapshot::SnapshotImage>* checkpoint_out) const {
  const auto wall_start = std::chrono::steady_clock::now();

  // The home's own registry, installed for the home's entire lifetime so
  // every instrument — router subsystems, hosts, links, apps — lands in it.
  telemetry::MetricRegistry registry;
  telemetry::ScopedMetricRegistry scope(registry);

  workload::HomeScenario::Config sc;
  sc.seed = seed;
  sc.router.admission = homework::DeviceRegistry::AdmissionDefault::PermitAll;
  sc.router.liveness.probe_interval = kSecond;
  sc.router.liveness.max_misses = 2;
  sc.router.datapath.controller_dead_interval = 2 * kSecond;
  if (resume != nullptr) {
    // Start the loop one boot-settle before the capture instant: boot runs
    // the clock to exactly captured_at, module timers arm on the same
    // integer-second grid as the first life, and the restore below rewinds
    // the state they produced while settling.
    const Duration settle = homework::HomeworkRouter::kBootSettle;
    sc.clock_origin =
        resume->captured_at > settle ? resume->captured_at - settle : 0;
  }
  workload::HomeScenario home(sc, registry);
  home.start();

  // Device population from the shared per-fleet profile (the seed-derived
  // tables every plane reads; re-derived only for out-of-range ids a test
  // runs ad hoc).
  if (home_id < profile_->device_specs.size()) {
    for (const workload::DeviceSpec& spec : profile_->device_specs[home_id]) {
      home.add_device(spec);
    }
  } else {
    for (const workload::DeviceSpec& spec : residency::FleetProfile::
             derive_devices(seed, config_.devices_per_home)) {
      home.add_device(spec);
    }
  }

  HomeResult result;
  result.home_id = home_id;
  result.seed = seed;
  result.devices = home.devices().size();

  // The measurement plane under load: a reliable RPC client inserting a
  // monotone sequence into this home's hwdb (mangled by chaos when armed).
  const bool have_table =
      home.router()
          .db()
          .create_table(
              hwdb::Schema("FleetSamples", {{"seq", hwdb::ColumnType::Int}}),
              1024)
          .ok();
  hwdb::rpc::InProcRpcLink rpc_link(home.loop(), home.router().db());
  hwdb::rpc::RetryPolicy policy;
  policy.max_attempts = 6;
  policy.timeout = 100 * kMillisecond;
  policy.backoff_base = 50 * kMillisecond;
  policy.backoff_cap = 400 * kMillisecond;
  hwdb::rpc::RpcClient& rpc = rpc_link.make_client(policy);

  std::set<std::int64_t> acked;
  std::int64_t next_seq = 0;
  // Stop inserting before the end so in-flight retries settle by harvest.
  const Timestamp insert_until =
      config_.duration - std::min<Duration>(config_.duration / 6, 5 * kSecond);
  sim::PeriodicTimer inserter(home.loop(), 500 * kMillisecond, [&] {
    if (!have_table || home.loop().now() >= insert_until) return;
    const std::int64_t seq = next_seq++;
    rpc.insert("FleetSamples", {hwdb::Value{seq}},
               [&acked, seq](const auto& resp) {
                 if (resp.ok) acked.insert(seq);
               });
  });
  sim::FaultInjector faults(home.loop());
  if (config_.chaos) {
    home.router().attach_faults(faults);
    faults.set_hwdb_fault([&](const sim::DatagramFault& f, Rng* frng) {
      rpc_link.set_fault(f, frng);
    });
    for (auto& d : home.devices()) {
      faults.add_link(d.name, *d.attachment.link);
    }
    sim::FaultPlan plan = chaos_plan(seed, config_.duration);
    if (resume != nullptr) {
      // Windows that fully closed before the capture live on only through
      // the restored state; windows still open (or future) re-begin at
      // resume. Fault counters therefore drift from an uninterrupted run —
      // chaos resume is behavioural, not bit-exact.
      const Timestamp at = resume->captured_at;
      std::erase_if(plan.windows, [at](const sim::FaultWindow& w) {
        return w.start + w.duration <= at;
      });
    }
    faults.arm(plan);
  }

  // Checkpoint plumbing: the driver-side layers (scenario RNG stream, insert
  // sequence counter) and the telemetry layer join the router's five state
  // layers so an image carries everything a resumed life needs.
  auto& snaps = home.router().snapshots();
  snapshot::LambdaLayer rng_layer(
      [&home](snapshot::Writer& w) {
        ByteWriter& c = w.begin_chunk(kRngTag);
        for (const std::uint64_t word : home.rng().state()) c.u64(word);
        w.end_chunk();
      },
      [&home](const snapshot::Reader& r) -> Status {
        const Bytes* chunk = r.find(kRngTag);
        if (chunk == nullptr) return Status::success();
        ByteReader br(*chunk);
        std::array<std::uint64_t, 4> state{};
        for (auto& word : state) {
          auto v = br.u64();
          if (!v) return v.error();
          word = v.value();
        }
        home.rng().set_state(state);
        return Status::success();
      });
  snapshot::LambdaLayer driver_layer(
      [&next_seq](snapshot::Writer& w) {
        w.begin_chunk(kDriverTag).u64(static_cast<std::uint64_t>(next_seq));
        w.end_chunk();
      },
      [&next_seq](const snapshot::Reader& r) -> Status {
        const Bytes* chunk = r.find(kDriverTag);
        if (chunk == nullptr) return Status::success();
        ByteReader br(*chunk);
        auto v = br.u64();
        if (!v) return v.error();
        next_seq = static_cast<std::int64_t>(v.value());
        return Status::success();
      });
  snapshot::TelemetryLayer tele_layer(registry);
  const bool snapshotting = config_.checkpoints || resume != nullptr;
  if (snapshotting) {
    snaps.add_layer("rng", &rng_layer);
    snaps.add_layer("fleet-driver", &driver_layer);
  }

  // Chaos windows can exhaust a client's retry budget; periodically re-kick
  // any unbound device, exactly what a real DHCP client's INIT state does.
  // Armed on the absolute x.5s grid so a resumed life's kicks line up with
  // the uninterrupted run's.
  sim::PeriodicTimer rekick(home.loop(), 5 * kSecond, [&] {
    for (auto& d : home.devices()) {
      if (!d.host->ip()) d.host->start_dhcp();
    }
  });

  if (resume == nullptr) {
    if (snapshotting) snaps.add_layer("telemetry", &tele_layer);
    home.loop().schedule_at(kSecond, [&] { inserter.start(); });
    home.start_dhcp_all();
    rekick.start_at(5 * kSecond + 500 * kMillisecond);
    if (config_.run_apps) {
      // Let leases bind first so the app mixes resolve and flow immediately.
      (void)home.wait_all_bound(
          std::min<Duration>(10 * kSecond, config_.duration));
      home.start_apps_all();
    }
  } else {
    // Two-phase restore: state layers first, then — once apps and their
    // instruments exist — the telemetry layer, so restored counters land on
    // live series and erase the boot's own side effects.
    const bool restored = snaps.restore(*resume).ok();
    if (restored) {
      home.adopt_restored_leases();
      if (config_.run_apps) home.start_apps_all();
      // Boot-era channel messages (the devices' PORT_STATUS announcements)
      // are still in flight at the capture instant; drain them before the
      // telemetry restore so their rx counts are erased along with the rest
      // of the boot's side effects — the uninterrupted run counted them
      // before the capture, so the restored TELE chunk already has them.
      home.loop().run_for(kMillisecond);
      snaps.add_layer("telemetry", &tele_layer);
      (void)snaps.restore_layers(resume->bytes, {"telemetry"});
    } else {
      // Unrestorable image: behave like a fresh boot mid-timeline.
      snaps.add_layer("telemetry", &tele_layer);
      home.start_dhcp_all();
      if (config_.run_apps) home.start_apps_all();
    }
    const Timestamp now = home.loop().now();
    inserter.start_at(next_phase_tick(now, 500 * kMillisecond, 0));
    rekick.start_at(next_phase_tick(now, 5 * kSecond, 500 * kMillisecond));
  }

  if (config_.checkpoints) {
    snaps.start_periodic_captures(config_.checkpoint_interval, {},
                                  homework::HomeworkRouter::kBootSettle);
  }

  home.loop().run_until(end_at);

  // Harvest while everything is alive, still on this worker thread.
  result.scalars = registry.scalars();
  result.histograms = registry.histogram_states();
  for (auto& d : home.devices()) {
    if (d.host->ip()) ++result.devices_bound;
  }
  result.all_bound = result.devices_bound == result.devices;
  result.fail_safe_at_end = home.router().datapath().fail_safe();
  result.flow_entries = home.router().datapath().table().size();
  result.faults = faults.stats();
  result.inserts_acked = acked.size();
  std::multiset<std::int64_t> applied;
  if (auto rs = home.router().db().query("SELECT seq FROM FleetSamples");
      rs.ok()) {
    for (const auto& row : rs.value().rows) applied.insert(row[0].as_int());
  }
  result.inserts_applied = applied.size();
  const std::set<std::int64_t> distinct(applied.begin(), applied.end());
  result.inserts_exactly_once =
      distinct.size() == applied.size() &&
      std::all_of(acked.begin(), acked.end(),
                  [&](std::int64_t seq) { return distinct.count(seq) > 0; });
  if (const auto frames = registry.total("sim.link.tx_frames")) {
    result.frames = static_cast<std::uint64_t>(*frames);
  }
  if (checkpoint_out != nullptr) *checkpoint_out = snaps.last_image();
  if (config_.image_store != nullptr && snaps.last_image()) {
    // Deposit the home's latest periodic image into the residency store
    // (content-addressed, thread-safe) keyed by home id.
    (void)config_.image_store->put(home_id, *snaps.last_image());
  }
  result.wall_ms = wall_ms_since(wall_start);
  return result;
}

FleetResult FleetRunner::run() const {
  const auto wall_start = std::chrono::steady_clock::now();
  const std::size_t n = config_.homes;
  std::size_t threads = config_.threads != 0
                            ? config_.threads
                            : std::max(1u, std::thread::hardware_concurrency());
  threads = std::max<std::size_t>(1, std::min(threads, std::max<std::size_t>(n, 1)));

  // Each slot is written by exactly one worker; the joins below are the
  // happens-before edge for the aggregation pass.
  std::vector<HomeResult> results(n);
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    while (true) {
      const std::size_t id = next.fetch_add(1, std::memory_order_relaxed);
      if (id >= n) return;
      results[id] = run_home(id);
    }
  };
  if (threads == 1) {
    worker();  // inline: keeps single-threaded runs debuggable
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }

  FleetResult fleet;
  fleet.homes = std::move(results);
  fleet.threads_used = threads;

  // Merge strictly in home-id order: double accumulation order is fixed, so
  // the totals are bit-identical regardless of worker-pool size.
  std::map<std::string, std::vector<double>> by_series;
  for (const HomeResult& r : fleet.homes) {
    for (const auto& [name, value] : r.scalars) {
      fleet.scalar_totals[name] += value;
      by_series[name].push_back(value);
    }
    for (const auto& [name, h] : r.histograms) fleet.histograms[name].merge(h);
    if (r.ok()) ++fleet.homes_ok;
    fleet.total_frames += r.frames;
  }
  for (auto& [name, values] : by_series) {
    std::sort(values.begin(), values.end());
    SeriesStat stat;
    stat.homes = values.size();
    stat.min = values.front();
    stat.max = values.back();
    stat.median = values[values.size() / 2];
    for (const double v : values) stat.sum += v;
    fleet.series[name] = stat;
  }

  fleet.wall_ms = wall_ms_since(wall_start);
  return fleet;
}

}  // namespace hw::fleet
