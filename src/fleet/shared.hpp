// Shared-controller fleet: N home datapaths handshaking over framed stream
// channels into ONE controller event loop — the deployment the paper argues
// for in §4, where an ISP runs the NOX platform for many subscriber homes
// and each home keeps only a dumb OpenFlow switch.
//
// Topology: the fleet is split into `threads` shards. Each shard owns one
// sim::EventLoop, one nox::Controller with one set of Homework modules
// (DHCP, DNS proxy, forwarding) and one DeviceRegistry/PolicyEngine — and
// every home assigned to the shard contributes its own ofp::Datapath
// (dpid = home_id + 1) connected through its own ofp::StreamConnection.
// All controller-side state is keyed by datapath id, so homes that reuse
// the same device MACs and the same RFC1918 addresses (they all do — every
// home hands out 192.168.1.100+ to devices 02:..:01+) stay fully isolated.
//
// Determinism contract: every home runs the same virtual-time schedule and
// draws randomness only from its own seeded Rng, so each home's telemetry
// contribution is independent of which shard ran it and of how homes
// interleave inside a shard's loop. Counters are integer-valued and sum
// exactly in doubles, so the merged non-histogram totals are bit-identical
// across worker-pool sizes. Histograms time wall-clock nanoseconds and are
// merged but excluded from determinism comparisons.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "residency/profile.hpp"
#include "telemetry/metrics.hpp"
#include "util/types.hpp"

namespace hw::fleet {

struct SharedFleetConfig {
  /// Number of homes (one datapath each). Home k gets dpid k + 1.
  std::size_t homes = 16;
  /// Worker threads; each runs one controller shard. 0 = one per hardware
  /// thread. Never more shards than homes.
  std::size_t threads = 1;
  /// Fleet seed; home k draws from FleetRunner::home_seed(seed, k).
  std::uint64_t seed = 1;
  /// Virtual time each shard simulates.
  Duration duration = 5 * kSecond;
  /// Devices attached per home; identical MACs across homes on purpose.
  std::size_t devices_per_home = 2;
  /// Controller channel: one-way stream latency, per-send jitter, and max
  /// bytes per read (0 = unbounded; small values force frame reassembly).
  Duration channel_latency = 100;
  Duration channel_jitter = 0;
  std::size_t channel_mtu = 0;
  /// After binding, devices exchange UDP with a peer in their own home,
  /// driving proxy-ARP and flow setup through the shared controller.
  bool traffic = true;
  /// Per-dpid goal-state reconciliation: each shard runs a Reconciler and
  /// (re)joins converge through delta rounds instead of flow-setup replay.
  bool reconcile = true;
  /// Divergence workload at `restart_at`: every odd home's datapath
  /// cold-restarts (full divergence — the table is wiped) and every even
  /// home gets an admin re-sync over its intact table (zero divergence).
  bool restart_odd_homes = false;
  Duration restart_at = 3200 * kMillisecond;
  /// Harvest per-home flow rows and leases into SharedHomeStatus (for
  /// differential replay-vs-reconcile comparisons; off by default — the
  /// strings are not part of the fingerprint).
  bool collect_state = false;
  /// Roaming workload: homes are scheduled in PAIRS (2p, 2p+1) on one shard
  /// at any thread count, the odd home's device 0 carries a unique per-pair
  /// MAC (a phone that walks next door), and at roam_at it detaches from the
  /// odd home's datapath, re-associates on a fresh port of the even home's
  /// datapath and re-DHCPs behind the new dpid. The origin home keeps its
  /// own (dpid, mac) state; the destination grants a lease from its own
  /// scope — per-dpid isolation is what the roaming scenario verifies.
  bool roam = false;
  Timestamp roam_at = 3500 * kMillisecond;
};

/// Per-home verdict harvested on the shard that ran it.
struct SharedHomeStatus {
  std::size_t home_id = 0;
  std::uint64_t dpid = 0;
  std::size_t shard = 0;
  std::size_t devices = 0;
  std::size_t devices_bound = 0;  // hold a DHCP lease at end of run
  std::size_t flow_entries = 0;   // datapath flow-table size at end of run
  bool all_bound = false;
  /// Post-run goal-state check: desired state diffed against the home's
  /// final table yields an empty delta. Always true when reconcile is off.
  bool converged = true;
  /// Canonical "match|priority|actions|cookie" rows and "mac|ip" leases
  /// (sorted); only populated when collect_state is set.
  std::vector<std::string> flow_rows;
  std::vector<std::string> leases;
  /// Roam mode: virtual µs from roam_at until the roamer re-bound INTO this
  /// home (0 for homes that received no roamer).
  Duration roam_rebind_us = 0;

  [[nodiscard]] bool ok() const { return all_bound && converged; }
};

struct SharedFleetResult {
  /// Per-home statuses, sorted by home_id.
  std::vector<SharedHomeStatus> homes;
  /// Counter/gauge sums across all shards (the deterministic view).
  std::map<std::string, double> scalar_totals;
  /// Bucket-merged histogram state across shards (wall-clock latencies).
  std::map<std::string, telemetry::HistogramState> histograms;

  std::size_t shards_used = 0;
  std::size_t homes_ok = 0;
  double wall_ms = 0.0;
};

/// Runs a shared-controller fleet on a worker pool and merges per-shard
/// telemetry. Stateless between run() calls.
class SharedFleetRunner {
 public:
  explicit SharedFleetRunner(SharedFleetConfig config)
      : config_(config),
        profile_(residency::FleetProfile::build(config_.seed, config_.homes,
                                                config_.devices_per_home)) {}

  [[nodiscard]] const SharedFleetConfig& config() const { return config_; }

  [[nodiscard]] SharedFleetResult run() const;

 private:
  struct ShardOutcome {
    std::map<std::string, double> scalars;
    std::map<std::string, telemetry::HistogramState> histograms;
    std::vector<SharedHomeStatus> homes;
  };

  /// Simulates shard `shard` of `shards` (homes with home_id % shards ==
  /// shard) start-to-finish on the calling thread, under its own registry.
  [[nodiscard]] ShardOutcome run_shard(std::size_t shard,
                                       std::size_t shards) const;

  SharedFleetConfig config_;
  /// Shared immutable per-fleet tables; shards index home_seeds instead of
  /// re-deriving seeds per home.
  std::shared_ptr<const residency::FleetProfile> profile_;
};

}  // namespace hw::fleet
