#include "fleet/shared.hpp"

#include <algorithm>
#include <cstdio>
#include <chrono>
#include <deque>
#include <memory>
#include <thread>
#include <utility>

#include "fleet/fleet.hpp"
#include "homework/device_registry.hpp"
#include "homework/dhcp_server.hpp"
#include "homework/dns_proxy.hpp"
#include "homework/forwarding.hpp"
#include "nox/controller.hpp"
#include "openflow/datapath.hpp"
#include "openflow/stream_channel.hpp"
#include "policy/engine.hpp"
#include "reconcile/desired_state.hpp"
#include "reconcile/reconciler.hpp"
#include "sim/event_loop.hpp"
#include "sim/host.hpp"
#include "sim/link.hpp"
#include "util/rand.hpp"

namespace hw::fleet {
namespace {

/// Handshake settle before the per-home schedules start (matches
/// HomeworkRouter::kBootSettle so timings are comparable across modes).
constexpr Duration kBootSettle = 10 * kMillisecond;
/// Stagger between device DHCP starts inside a home: device i binds at
/// kBootSettle + (i+1) * kBindStagger in every home, so allocation order —
/// and thus the address each device gets — is identical across homes.
constexpr Duration kBindStagger = 50 * kMillisecond;
/// Traffic rounds: each bound device sends UDP to its next peer at
/// kTrafficStart + round * kTrafficPeriod.
constexpr Duration kTrafficStart = 2 * kSecond;
constexpr Duration kTrafficPeriod = 500 * kMillisecond;
constexpr int kTrafficRounds = 3;

double wall_ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

SharedFleetRunner::ShardOutcome SharedFleetRunner::run_shard(
    std::size_t shard, std::size_t shards) const {
  // Everything this shard builds — controller, datapaths, hosts, links —
  // registers its instruments in the shard registry.
  telemetry::MetricRegistry registry;
  telemetry::ScopedMetricRegistry scoped(registry);
  sim::EventLoop loop;

  // One controller, one module set, one device registry for every home on
  // this shard; per-home separation rests entirely on datapath-id keying.
  homework::DeviceRegistry devices(
      homework::DeviceRegistry::AdmissionDefault::PermitAll);
  policy::PolicyEngine policy([&loop] { return loop.now(); });
  nox::Controller controller(loop, registry);
  auto dhcp_owned = std::make_unique<homework::DhcpServer>(
      homework::DhcpServer::Config{}, devices);
  homework::DhcpServer* dhcp = dhcp_owned.get();
  controller.add_component(std::move(dhcp_owned));
  controller.add_component(std::make_unique<homework::DnsProxy>(
      homework::DnsProxy::Config{}, devices, policy));
  controller.add_component(std::make_unique<homework::Forwarding>(
      homework::Forwarding::Config{}, devices, policy));

  // Goal-state mode: one reconciler per shard, converging each of the
  // shard's dpids independently against the shared DesiredStore.
  std::unique_ptr<reconcile::DesiredStore> desired;
  reconcile::Reconciler* reconciler = nullptr;
  if (config_.reconcile) {
    desired = std::make_unique<reconcile::DesiredStore>();
    auto rec = std::make_unique<reconcile::Reconciler>(*desired, registry);
    reconciler = rec.get();
    controller.add_component(std::move(rec));
    reconciler->bind_policy(policy);
    controller.set_resync_hook([reconciler](nox::DatapathId dpid, bool resync) {
      reconciler->on_datapath_ready(dpid, resync);
    });
    reconcile::DesiredStore* store = desired.get();
    dhcp->set_allocation_observer([store](nox::DatapathId dpid, MacAddress mac,
                                          std::optional<Ipv4Address> ip) {
      store->state(dpid).device(mac.to_string()).lease_ip = ip;
    });
  }
  controller.start();

  struct Device {
    std::unique_ptr<sim::Host> host;
    std::unique_ptr<sim::DuplexLink> link;
  };
  struct Home {
    std::size_t home_id = 0;
    std::uint64_t dpid = 0;
    std::unique_ptr<Rng> rng;
    std::unique_ptr<ofp::Datapath> datapath;
    std::unique_ptr<ofp::StreamConnection> conn;
    std::vector<Device> devices;
  };
  std::deque<Home> homes;

  // Roam mode schedules homes in pairs so a pair always shares one loop —
  // the re-association below must be a same-shard rewire at every thread
  // count, or the merged fingerprint would depend on sharding.
  std::vector<std::size_t> assigned;
  if (config_.roam) {
    for (std::size_t p = shard; 2 * p < config_.homes; p += shards) {
      assigned.push_back(2 * p);
      if (2 * p + 1 < config_.homes) assigned.push_back(2 * p + 1);
    }
  } else {
    for (std::size_t h = shard; h < config_.homes; h += shards) {
      assigned.push_back(h);
    }
  }

  for (const std::size_t h : assigned) {
    Home home;
    home.home_id = h;
    home.dpid = static_cast<std::uint64_t>(h) + 1;
    home.rng = std::make_unique<Rng>(profile_->home_seeds[h]);

    ofp::Datapath::Config dp_config;
    dp_config.datapath_id = home.dpid;
    home.datapath = std::make_unique<ofp::Datapath>(loop, dp_config, registry);

    ofp::StreamConnection::Config chan;
    chan.link.latency = config_.channel_latency;
    chan.link.jitter = config_.channel_jitter;
    chan.link.mtu = config_.channel_mtu;
    home.conn =
        std::make_unique<ofp::StreamConnection>(loop, chan, home.rng.get());

    for (std::size_t i = 0; i < config_.devices_per_home; ++i) {
      sim::Host::Config host_config;
      host_config.name =
          "home" + std::to_string(h) + "-dev" + std::to_string(i);
      // Deliberately the SAME MAC in every home: the registry, DHCP scopes
      // and flow rules must keep them apart by datapath id alone. The one
      // exception is the roamer (odd home, device 0), whose MAC is unique
      // per pair so cross-home leakage of its state is detectable.
      if (config_.roam && h % 2 == 1 && i == 0) {
        host_config.mac = MacAddress::from_index(
            0xaa0000u + static_cast<std::uint32_t>(h / 2));
      } else {
        host_config.mac =
            MacAddress::from_index(1 + static_cast<std::uint32_t>(i));
      }
      auto host =
          std::make_unique<sim::Host>(loop, host_config, *home.rng);
      auto link = std::make_unique<sim::DuplexLink>(
          loop, sim::LinkChannel::Config{}, home.rng.get());
      const auto port = static_cast<std::uint16_t>(2 + i);  // 1 = uplink
      home.datapath->add_port(port, "port" + std::to_string(port),
                              MacAddress::from_index(0xfff000u + port),
                              &link->b_to_a());
      link->b_to_a().connect(host.get());
      link->a_to_b().connect(home.datapath->ingress(port));
      host->attach_uplink(&link->a_to_b());
      home.devices.push_back({std::move(host), std::move(link)});
    }

    home.datapath->connect(home.conn->datapath_end());
    controller.connect_datapath(home.conn->controller_end());
    homes.push_back(std::move(home));
  }

  // Per-home schedules (identical across homes, all in virtual time).
  for (Home& home : homes) {
    for (std::size_t i = 0; i < home.devices.size(); ++i) {
      sim::Host* host = home.devices[i].host.get();
      loop.schedule_at(
          kBootSettle + static_cast<Duration>(i + 1) * kBindStagger,
          [host] { host->start_dhcp(); });
    }
    if (config_.traffic && home.devices.size() >= 2) {
      const std::size_t n = home.devices.size();
      for (std::size_t i = 0; i < n; ++i) {
        sim::Host* host = home.devices[i].host.get();
        // The DHCP pool starts at .100 and binds happen in device order, so
        // device k holds 192.168.1.(100+k) — in every home at once; the
        // controller must tell the copies apart by dpid.
        const Ipv4Address peer{
            192, 168, 1, static_cast<std::uint8_t>(100 + (i + 1) % n)};
        const auto sport = static_cast<std::uint16_t>(40000 + i);
        for (int round = 0; round < kTrafficRounds; ++round) {
          loop.schedule_at(
              kTrafficStart + static_cast<Duration>(round) * kTrafficPeriod,
              [host, peer, sport] {
                (void)host->send_udp(peer, sport, 7777, 64);
              });
        }
      }
    }
  }

  // Divergence workload: odd homes cold-restart mid-run — the restart drops
  // the table and re-handshakes, so their re-sync must rebuild everything.
  // Even homes get an admin-triggered re-sync with their table fully intact
  // — zero actual divergence, the case where a delta-based re-sync sends
  // nothing while a blind replay re-sends every module flow.
  if (config_.restart_odd_homes) {
    for (Home& home : homes) {
      if (home.home_id % 2 == 1) {
        ofp::Datapath* dp = home.datapath.get();
        loop.schedule_at(config_.restart_at, [dp] { dp->restart(); });
      } else {
        const nox::DatapathId dpid = home.dpid;
        loop.schedule_at(config_.restart_at, [&controller, dpid] {
          controller.resync_datapath(dpid);
        });
      }
    }
  }

  // Roaming re-association: the odd home's roamer walks next door. Detach
  // from the odd datapath, attach on a fresh port of the paired even
  // datapath, re-DHCP behind the new dpid, then talk to a local peer there.
  std::map<std::size_t, Duration> rebind_by_home;
  if (config_.roam) {
    for (Home& odd : homes) {
      if (odd.home_id % 2 != 1 || odd.devices.empty()) continue;
      Home* even = nullptr;
      for (Home& cand : homes) {
        if (cand.home_id == odd.home_id - 1) even = &cand;
      }
      if (even == nullptr) continue;  // unpaired trailing home
      sim::Host* roamer = odd.devices[0].host.get();
      sim::DuplexLink* link = odd.devices[0].link.get();
      ofp::Datapath* from = odd.datapath.get();
      ofp::Datapath* to = even->datapath.get();
      const auto old_port = static_cast<std::uint16_t>(2);
      const auto new_port =
          static_cast<std::uint16_t>(2 + config_.devices_per_home);
      const std::size_t dst_home = even->home_id;
      loop.schedule_at(config_.roam_at, [this, roamer, link, from, to,
                                         old_port, new_port, dst_home,
                                         &rebind_by_home, &loop] {
        from->remove_port(old_port);
        to->add_port(new_port, "roam" + std::to_string(new_port),
                     MacAddress::from_index(0xfff000u + new_port),
                     &link->b_to_a());
        link->a_to_b().connect(to->ingress(new_port));
        roamer->on_bound([this, dst_home, &rebind_by_home, &loop] {
          if (rebind_by_home.count(dst_home) != 0) return;
          rebind_by_home[dst_home] = loop.now() - config_.roam_at;
        });
        roamer->start_dhcp();
      });
      if (config_.traffic) {
        // Post-roam round: the roamer reaches the destination home's own
        // device 0 (192.168.1.100 *behind the even dpid*), proving its
        // flows now live in the new home's table.
        const Ipv4Address peer{192, 168, 1, 100};
        loop.schedule_at(config_.roam_at + kSecond, [roamer, peer] {
          (void)roamer->send_udp(peer, 41000, 7777, 64);
        });
      }
    }
  }

  loop.run_until(config_.duration);

  ShardOutcome out;
  for (const Home& home : homes) {
    SharedHomeStatus status;
    status.home_id = home.home_id;
    status.dpid = home.dpid;
    status.shard = shard;
    status.devices = home.devices.size();
    for (const Device& dev : home.devices) {
      if (dev.host->ip()) ++status.devices_bound;
    }
    status.all_bound = status.devices_bound == status.devices;
    status.flow_entries = home.datapath->table().size();
    if (const auto it = rebind_by_home.find(home.home_id);
        it != rebind_by_home.end()) {
      status.roam_rebind_us = it->second;
    }
    if (reconciler != nullptr) {
      status.converged =
          reconciler->verify_converged(home.dpid, home.datapath->table());
    }
    if (config_.collect_state) {
      home.datapath->table().for_each([&](const ofp::FlowEntry& e) {
        char cookie[20];
        std::snprintf(cookie, sizeof cookie, "%016llx",
                      static_cast<unsigned long long>(e.cookie));
        status.flow_rows.push_back(e.match.to_string() + "|" +
                                   std::to_string(e.priority) + "|" +
                                   ofp::to_string(e.actions) + "|" + cookie);
      });
      std::sort(status.flow_rows.begin(), status.flow_rows.end());
      for (const auto* rec : devices.all(home.dpid)) {
        if (!rec->lease) continue;
        status.leases.push_back(rec->mac.to_string() + "|" +
                                rec->lease->ip.to_string());
      }
      std::sort(status.leases.begin(), status.leases.end());
    }
    out.homes.push_back(status);
  }
  out.scalars = registry.scalars();
  out.histograms = registry.histogram_states();
  return out;
}

SharedFleetResult SharedFleetRunner::run() const {
  const auto start = std::chrono::steady_clock::now();
  std::size_t shards =
      config_.threads == 0 ? std::thread::hardware_concurrency()
                           : config_.threads;
  shards = std::max<std::size_t>(
      1, std::min(shards, std::max<std::size_t>(config_.homes, 1)));

  std::vector<ShardOutcome> outcomes(shards);
  if (shards == 1) {
    outcomes[0] = run_shard(0, 1);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      pool.emplace_back(
          [this, s, shards, &outcomes] { outcomes[s] = run_shard(s, shards); });
    }
    for (std::thread& t : pool) t.join();
  }

  SharedFleetResult result;
  result.shards_used = shards;
  // Merge in shard order. Every scalar is a sum of integer-valued per-home
  // contributions (or of per-home gauges like flow-table sizes), and integer
  // sums in doubles are exact, so the totals do not depend on how homes were
  // sharded — the same property FleetRunner's home-id-order merge provides.
  for (const ShardOutcome& out : outcomes) {
    for (const auto& [name, value] : out.scalars) {
      result.scalar_totals[name] += value;
    }
    for (const auto& [name, state] : out.histograms) {
      result.histograms[name].merge(state);
    }
    result.homes.insert(result.homes.end(), out.homes.begin(),
                        out.homes.end());
  }
  std::sort(result.homes.begin(), result.homes.end(),
            [](const SharedHomeStatus& a, const SharedHomeStatus& b) {
              return a.home_id < b.home_id;
            });
  for (const SharedHomeStatus& home : result.homes) {
    if (home.ok()) ++result.homes_ok;
  }
  result.wall_ms = wall_ms_since(start);
  return result;
}

}  // namespace hw::fleet
