// Figure 3 backend: the situated control display. "This allows non-expert
// users to detect, interrogate and supply metadata for devices requesting
// access, and to control the DHCP server on a case-by-case basis by dragging
// the device's tab into the appropriate permitted/denied category."
//
// The board is a pure REST client of the control API — exactly the decoupling
// the paper's architecture prescribes.
#pragma once

#include <string>
#include <vector>

#include "homework/control_api.hpp"

namespace hw::ui {

struct DeviceTab {
  std::string mac;
  std::string label;       // name if set, else hostname, else MAC
  std::string state;       // "pending" | "permitted" | "denied"
  std::string ip;          // empty without a lease
  std::int64_t dhcp_requests = 0;
};

class DhcpControlBoard {
 public:
  explicit DhcpControlBoard(homework::ControlApi& api) : api_(api) {}

  /// Pulls the device list (GET /api/devices) into the three columns.
  void refresh();

  [[nodiscard]] const std::vector<DeviceTab>& pending() const { return pending_; }
  [[nodiscard]] const std::vector<DeviceTab>& permitted() const {
    return permitted_;
  }
  [[nodiscard]] const std::vector<DeviceTab>& denied() const { return denied_; }

  /// The drag gestures. Both refresh the board and return false on API error.
  bool drag_to_permitted(const std::string& mac);
  bool drag_to_denied(const std::string& mac);
  /// Metadata entry ("supply metadata for devices requesting access").
  bool set_label(const std::string& mac, const std::string& name);

  /// ASCII rendering of the three columns for terminal demos.
  [[nodiscard]] std::string render() const;

 private:
  bool post(const std::string& path);

  homework::ControlApi& api_;
  std::vector<DeviceTab> pending_;
  std::vector<DeviceTab> permitted_;
  std::vector<DeviceTab> denied_;
};

}  // namespace hw::ui
