// Figure 2 backend: the physical "network artifact" — a ring of RGB LEDs on
// an Arduino that renders network state ambiently. Three modes (paper §1):
//   Mode 1: wireless signal strength (RSSI) → number of lit LEDs, so users
//           can carry it around to map coverage;
//   Mode 2: current total bandwidth as a proportion of the last day's peak →
//           speed of an animation chasing across the face;
//   Mode 3: DHCP lease grants flash green, revocations blue, and a high
//           proportion of packet retries for any machine flashes red.
// The artifact is a pure hwdb client: Links for RSSI/retries, Flows for
// bandwidth, Leases for grant/revoke events.
#pragma once

#include <array>
#include <deque>
#include <string>
#include <vector>

#include "hwdb/database.hpp"

namespace hw::ui {

struct LedColor {
  std::uint8_t r = 0, g = 0, b = 0;
  bool operator==(const LedColor&) const = default;
};

inline constexpr LedColor kLedOff{0, 0, 0};
inline constexpr LedColor kLedWhite{255, 255, 255};
inline constexpr LedColor kLedGreen{0, 255, 0};
inline constexpr LedColor kLedBlue{0, 0, 255};
inline constexpr LedColor kLedRed{255, 0, 0};

using LedFrame = std::vector<LedColor>;

enum class ArtifactMode { SignalStrength = 1, Bandwidth = 2, Events = 3 };

class NetworkArtifact {
 public:
  struct Config {
    std::size_t led_count = 12;
    std::string own_mac;            // the artifact's own station (mode 1)
    std::uint32_t bandwidth_window_secs = 10;
    std::uint32_t peak_window_secs = 86400;  // "peak usage ... in the last day"
    double retry_flash_threshold = 0.25;     // retries/tx proportion → red
    Duration frame_interval = 250 * kMillisecond;
    int flash_frames = 3;  // frames each queued flash stays lit
  };

  NetworkArtifact(hwdb::Database& db, Config config);
  ~NetworkArtifact();

  /// Switching mode clears queued flashes and skips past historical events —
  /// the artifact shows what happens from now on, not a backlog.
  void set_mode(ArtifactMode mode);
  [[nodiscard]] ArtifactMode mode() const { return mode_; }

  /// Computes the current LED frame from the measurement plane.
  LedFrame render();

  /// Mode-1 helper: lit-LED count for the current RSSI (exposed for tests).
  [[nodiscard]] std::size_t lit_count_for_rssi(double rssi_dbm) const;
  /// Mode-2 helper: animation steps/sec for a bandwidth proportion.
  [[nodiscard]] double animation_speed(double proportion) const;

  [[nodiscard]] std::size_t pending_flashes() const { return flash_queue_.size(); }
  [[nodiscard]] std::uint64_t frames_rendered() const { return frames_; }

  /// ASCII rendering for terminal demos: one char per LED.
  static std::string to_string(const LedFrame& frame);

 private:
  void on_lease_event(const hwdb::ResultSet& rs);
  LedFrame render_signal();
  LedFrame render_bandwidth();
  LedFrame render_events();

  hwdb::Database& db_;
  Config config_;
  ArtifactMode mode_ = ArtifactMode::SignalStrength;
  hwdb::SubscriptionId lease_sub_ = 0;
  Timestamp last_lease_ts_ = 0;

  struct Flash {
    LedColor color;
    int frames_left;
  };
  std::deque<Flash> flash_queue_;
  double animation_pos_ = 0;
  std::uint64_t frames_ = 0;
};

}  // namespace hw::ui
