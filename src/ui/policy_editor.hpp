// Figure 4 backend: the "novel interactive policy interface" — a cartoon of
// panels from which non-expert users compose simple policies ("the kids can
// only use Facebook on weekdays after they've finished their homework").
// The editor produces a PolicyDocument, writes it onto a USB key image with
// the appropriate filesystem layout, and/or posts it to the control API.
#pragma once

#include <string>
#include <vector>

#include "homework/control_api.hpp"
#include "policy/usb.hpp"

namespace hw::ui {

/// One selectable option per panel, mirroring the cartoon's four panels.
struct PolicyPanels {
  // Panel 1 — who: a tag such as "kids", or explicit MACs.
  std::vector<std::string> who_tags;
  std::vector<std::string> who_macs;
  // Panel 2 — sites: pick the one service the selection is limited to
  // (allow-only), or services to block.
  bool limit_to_sites = true;
  std::vector<std::string> sites;
  // Panel 3 — when: weekday selection and a time-of-day window.
  std::vector<int> days;
  int start_minute = 0;
  int end_minute = 24 * 60;
  // Panel 4 — mediation: whether a responsible adult's key lifts the policy.
  bool key_unlocks = true;
  std::string unlock_token = "parent-key";
};

class PolicyEditor {
 public:
  explicit PolicyEditor(homework::ControlApi& api) : api_(api) {}

  /// Compiles the panel selections into a policy document.
  [[nodiscard]] policy::PolicyDocument compile(const std::string& id,
                                               const PolicyPanels& panels) const;

  /// Installs via POST /api/policies; returns false on rejection.
  bool submit(const policy::PolicyDocument& doc);
  /// Removes via DELETE /api/policies/:id.
  bool retract(const std::string& id);

  /// Burns the policy and unlock token onto a key image with the layout the
  /// router's udev hook expects.
  [[nodiscard]] static policy::UsbKeyImage make_unlock_key(
      const std::string& token);
  [[nodiscard]] static policy::UsbKeyImage make_policy_key(
      const std::string& token, const std::vector<policy::PolicyDocument>& docs);

  /// The canonical example from the paper, ready to submit.
  [[nodiscard]] policy::PolicyDocument kids_facebook_weekdays_example() const;

 private:
  homework::ControlApi& api_;
};

}  // namespace hw::ui
