// Figure 1 backend: "per-device per-protocol bandwidth consumption". The
// iPhone app subscribed to hwdb query results; this component does exactly
// that — it is a pure hwdb client (no private router hooks) and renders the
// same rows the display would plot.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "hwdb/database.hpp"

namespace hw::ui {

struct ProtocolUsage {
  std::string app;        // "web", "streaming", ... (the imperfect mapping)
  double bytes_per_sec = 0;
};

struct DeviceBandwidth {
  std::string device;     // MAC string as stored in Flows
  std::string label;      // friendly name if the caller supplied a mapping
  double total_bytes_per_sec = 0;
  std::vector<ProtocolUsage> protocols;  // sorted descending
};

class BandwidthMonitor {
 public:
  struct Config {
    std::uint32_t window_secs = 10;  // sliding window of the display
    Duration refresh = kSecond;      // subscription period
  };

  BandwidthMonitor(hwdb::Database& db, Config config);
  ~BandwidthMonitor();

  /// Optional MAC → friendly-name mapping (from GET /api/devices metadata).
  void set_label(const std::string& mac, std::string label);

  /// Latest per-device view (updated on each subscription fire).
  [[nodiscard]] const std::vector<DeviceBandwidth>& devices() const {
    return devices_;
  }
  /// Per-protocol breakdown for one device (the right-hand side of Fig 5's
  /// screenshot: usage per protocol for "Tom's Mac Air").
  [[nodiscard]] std::vector<ProtocolUsage> device_breakdown(
      const std::string& mac) const;
  [[nodiscard]] double total_bytes_per_sec() const;
  [[nodiscard]] std::uint64_t updates() const { return updates_; }

  /// Forces an immediate refresh (normally subscription-driven).
  void refresh();

  /// Text rendering of the display (examples/bench output).
  [[nodiscard]] std::string render() const;

 private:
  void apply(const hwdb::ResultSet& rs);

  hwdb::Database& db_;
  Config config_;
  hwdb::SubscriptionId sub_ = 0;
  std::vector<DeviceBandwidth> devices_;
  std::map<std::string, std::string> labels_;
  std::uint64_t updates_ = 0;
};

}  // namespace hw::ui
