#include "ui/artifact.hpp"

#include <algorithm>
#include <cmath>

#include "sim/wireless.hpp"

namespace hw::ui {

NetworkArtifact::NetworkArtifact(hwdb::Database& db, Config config)
    : db_(db), config_(config) {
  // Events that predate the artifact never flash.
  if (const auto* leases = db_.table("Leases")) {
    last_lease_ts_ = leases->newest_ts();
  }
  // Mode 3 event source: every Leases insert lands here.
  auto sub = db_.subscribe(
      "SELECT ts, mac, event FROM Leases [ROWS 8]",
      hwdb::SubscriptionMode::OnInsert, 0,
      [this](hwdb::SubscriptionId, const hwdb::ResultSet& rs) {
        on_lease_event(rs);
      });
  if (sub) lease_sub_ = sub.value();
}

void NetworkArtifact::set_mode(ArtifactMode mode) {
  mode_ = mode;
  flash_queue_.clear();
  if (const auto* leases = db_.table("Leases")) {
    last_lease_ts_ = leases->newest_ts();
  }
}

NetworkArtifact::~NetworkArtifact() {
  if (lease_sub_ != 0) db_.unsubscribe(lease_sub_);
}

void NetworkArtifact::on_lease_event(const hwdb::ResultSet& rs) {
  // Rows are chronological; queue flashes for events newer than the last
  // one we saw. Grants flash green, releases/expiries blue (paper §1).
  const int ts_col = rs.column_index("ts");
  const int event_col = rs.column_index("event");
  if (ts_col < 0 || event_col < 0) return;
  for (const auto& row : rs.rows) {
    const Timestamp ts = row[static_cast<std::size_t>(ts_col)].as_ts();
    if (ts <= last_lease_ts_) continue;
    last_lease_ts_ = ts;
    const std::string event = row[static_cast<std::size_t>(event_col)].to_string();
    if (event == "lease_granted" || event == "lease_renewed") {
      flash_queue_.push_back(Flash{kLedGreen, config_.flash_frames});
    } else if (event == "lease_released" || event == "lease_expired") {
      flash_queue_.push_back(Flash{kLedBlue, config_.flash_frames});
    }
  }
}

std::size_t NetworkArtifact::lit_count_for_rssi(double rssi_dbm) const {
  const double q = sim::rssi_quality(rssi_dbm);
  return static_cast<std::size_t>(
      std::lround(q * static_cast<double>(config_.led_count)));
}

double NetworkArtifact::animation_speed(double proportion) const {
  // 0 → barely moving, 1 → one full revolution per second.
  return 0.1 + 0.9 * std::clamp(proportion, 0.0, 1.0);
}

LedFrame NetworkArtifact::render() {
  ++frames_;
  switch (mode_) {
    case ArtifactMode::SignalStrength: return render_signal();
    case ArtifactMode::Bandwidth: return render_bandwidth();
    case ArtifactMode::Events: return render_events();
  }
  return LedFrame(config_.led_count, kLedOff);
}

LedFrame NetworkArtifact::render_signal() {
  LedFrame frame(config_.led_count, kLedOff);
  // The artifact's own RSSI as the router sees it, newest sample wins.
  auto rs = db_.query("SELECT last(rssi) FROM Links [RANGE 5 SECONDS] WHERE mac = '" +
                      config_.own_mac + "' GROUP BY mac");
  if (!rs || rs.value().rows.empty()) return frame;
  const double rssi = rs.value().rows.front()[0].as_real();
  const std::size_t lit = lit_count_for_rssi(rssi);
  for (std::size_t i = 0; i < lit && i < frame.size(); ++i) frame[i] = kLedWhite;
  return frame;
}

LedFrame NetworkArtifact::render_bandwidth() {
  LedFrame frame(config_.led_count, kLedOff);
  auto current = db_.query("SELECT sum(bytes) FROM Flows [RANGE " +
                           std::to_string(config_.bandwidth_window_secs) +
                           " SECONDS] GROUP BY app");
  auto peak = db_.query("SELECT max(bytes) FROM Flows [RANGE " +
                        std::to_string(config_.peak_window_secs) +
                        " SECONDS] GROUP BY device");
  double current_rate = 0;
  if (current) {
    for (const auto& row : current.value().rows) current_rate += row[0].as_real();
    current_rate /= static_cast<double>(config_.bandwidth_window_secs);
  }
  double peak_rate = 1;
  if (peak) {
    for (const auto& row : peak.value().rows) {
      peak_rate = std::max(peak_rate, row[0].as_real());
    }
  }
  const double proportion = std::clamp(current_rate / peak_rate, 0.0, 1.0);
  // Advance the chase animation: more bandwidth, faster sweep.
  animation_pos_ += animation_speed(proportion) *
                    static_cast<double>(config_.led_count) *
                    (static_cast<double>(config_.frame_interval) / 1e6);
  const auto head = static_cast<std::size_t>(animation_pos_) % config_.led_count;
  frame[head] = kLedWhite;
  frame[(head + config_.led_count - 1) % config_.led_count] =
      LedColor{96, 96, 96};
  return frame;
}

LedFrame NetworkArtifact::render_events() {
  // Retry proportion across all stations in the last few seconds.
  auto rs = db_.query(
      "SELECT mac, sum(retries), sum(tx) FROM Links [RANGE 5 SECONDS] "
      "GROUP BY mac");
  bool retry_alarm = false;
  if (rs) {
    for (const auto& row : rs.value().rows) {
      const double retries = row[1].as_real();
      const double tx = row[2].as_real();
      if (tx >= 10 && retries / tx >= config_.retry_flash_threshold) {
        retry_alarm = true;
        break;
      }
    }
  }

  LedFrame frame(config_.led_count, kLedOff);
  if (!flash_queue_.empty()) {
    Flash& flash = flash_queue_.front();
    std::fill(frame.begin(), frame.end(), flash.color);
    if (--flash.frames_left <= 0) flash_queue_.pop_front();
    return frame;
  }
  if (retry_alarm) {
    std::fill(frame.begin(), frame.end(), kLedRed);
  }
  return frame;
}

std::string NetworkArtifact::to_string(const LedFrame& frame) {
  std::string out;
  out.reserve(frame.size());
  for (const auto& led : frame) {
    if (led == kLedOff) out += '.';
    else if (led == kLedGreen) out += 'G';
    else if (led == kLedBlue) out += 'B';
    else if (led == kLedRed) out += 'R';
    else if (led.r == led.g && led.g == led.b && led.r > 0 && led.r < 255)
      out += '+';
    else out += '#';
  }
  return out;
}

}  // namespace hw::ui
