#include "ui/policy_editor.hpp"

namespace hw::ui {

policy::PolicyDocument PolicyEditor::compile(const std::string& id,
                                             const PolicyPanels& panels) const {
  policy::PolicyDocument doc;
  doc.id = id;
  doc.who.tags = panels.who_tags;
  doc.who.macs = panels.who_macs;
  doc.sites.kind = panels.limit_to_sites ? policy::SiteRuleKind::AllowOnly
                                         : policy::SiteRuleKind::Block;
  doc.sites.domains = panels.sites;
  doc.when.days = panels.days;
  doc.when.start_minute = panels.start_minute;
  doc.when.end_minute = panels.end_minute;
  doc.unlock = panels.key_unlocks ? policy::UnlockEffect::LiftAll
                                  : policy::UnlockEffect::None;
  doc.unlock_token = panels.key_unlocks ? panels.unlock_token : "";
  return doc;
}

bool PolicyEditor::submit(const policy::PolicyDocument& doc) {
  homework::HttpRequest req;
  req.method = "POST";
  req.path = "/api/policies";
  req.body = doc.to_json().dump();
  return api_.handle(req).status < 400;
}

bool PolicyEditor::retract(const std::string& id) {
  homework::HttpRequest req;
  req.method = "DELETE";
  req.path = "/api/policies/" + id;
  return api_.handle(req).status < 400;
}

policy::UsbKeyImage PolicyEditor::make_unlock_key(const std::string& token) {
  return policy::UsbKeyImage::make_key(token, {});
}

policy::UsbKeyImage PolicyEditor::make_policy_key(
    const std::string& token, const std::vector<policy::PolicyDocument>& docs) {
  return policy::UsbKeyImage::make_key(token, docs);
}

policy::PolicyDocument PolicyEditor::kids_facebook_weekdays_example() const {
  PolicyPanels panels;
  panels.who_tags = {"kids"};
  panels.limit_to_sites = true;
  panels.sites = {"*.facebook.com"};
  panels.days = {1, 2, 3, 4, 5};       // weekdays
  panels.start_minute = 16 * 60;       // after homework: 16:00
  panels.end_minute = 21 * 60;         // until 21:00
  panels.key_unlocks = true;
  panels.unlock_token = "parent-key";
  return compile("kids-facebook-weekdays", panels);
}

}  // namespace hw::ui
