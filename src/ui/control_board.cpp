#include "ui/control_board.hpp"

namespace hw::ui {

void DhcpControlBoard::refresh() {
  pending_.clear();
  permitted_.clear();
  denied_.clear();

  homework::HttpRequest req;
  req.method = "GET";
  req.path = "/api/devices";
  const auto resp = api_.handle(req);
  if (resp.status != 200) return;
  auto body = resp.json_body();
  if (!body) return;

  for (const auto& d : body.value().as_array()) {
    DeviceTab tab;
    tab.mac = d["mac"].as_string();
    tab.state = d["state"].as_string();
    tab.label = d["name"].as_string();
    if (tab.label.empty()) tab.label = d["hostname"].as_string();
    if (tab.label.empty()) tab.label = tab.mac;
    if (d["lease"].is_object()) tab.ip = d["lease"]["ip"].as_string();
    tab.dhcp_requests = d["dhcp_requests"].as_int();

    if (tab.state == "permitted") {
      permitted_.push_back(std::move(tab));
    } else if (tab.state == "denied") {
      denied_.push_back(std::move(tab));
    } else {
      pending_.push_back(std::move(tab));
    }
  }
}

bool DhcpControlBoard::post(const std::string& path) {
  homework::HttpRequest req;
  req.method = "POST";
  req.path = path;
  const auto resp = api_.handle(req);
  refresh();
  return resp.status < 400;
}

bool DhcpControlBoard::drag_to_permitted(const std::string& mac) {
  return post("/api/devices/" + mac + "/permit");
}

bool DhcpControlBoard::drag_to_denied(const std::string& mac) {
  return post("/api/devices/" + mac + "/deny");
}

bool DhcpControlBoard::set_label(const std::string& mac,
                                 const std::string& name) {
  homework::HttpRequest req;
  req.method = "PUT";
  req.path = "/api/devices/" + mac + "/metadata";
  Json body(JsonObject{});
  body.set("name", name);
  req.body = body.dump();
  const auto resp = api_.handle(req);
  refresh();
  return resp.status < 400;
}

std::string DhcpControlBoard::render() const {
  std::string out = "=== DHCP control board ===\n";
  auto column = [&](const char* title, const std::vector<DeviceTab>& tabs) {
    out += std::string("[") + title + "]\n";
    for (const auto& t : tabs) {
      out += "  " + t.label + " (" + t.mac + ")";
      if (!t.ip.empty()) out += " ip=" + t.ip;
      out += " requests=" + std::to_string(t.dhcp_requests) + "\n";
    }
  };
  column("requesting access", pending_);
  column("permitted", permitted_);
  column("denied", denied_);
  return out;
}

}  // namespace hw::ui
