#include "ui/bandwidth_monitor.hpp"

#include <algorithm>
#include <cstdio>

namespace hw::ui {

BandwidthMonitor::BandwidthMonitor(hwdb::Database& db, Config config)
    : db_(db), config_(config) {
  const std::string query =
      "SELECT device, app, sum(bytes) FROM Flows [RANGE " +
      std::to_string(config_.window_secs) + " SECONDS] GROUP BY device, app";
  auto sub = db_.subscribe(query, hwdb::SubscriptionMode::Periodic,
                           config_.refresh,
                           [this](hwdb::SubscriptionId, const hwdb::ResultSet& rs) {
                             apply(rs);
                           });
  if (sub) sub_ = sub.value();
}

BandwidthMonitor::~BandwidthMonitor() {
  if (sub_ != 0) db_.unsubscribe(sub_);
}

void BandwidthMonitor::set_label(const std::string& mac, std::string label) {
  labels_[mac] = std::move(label);
}

void BandwidthMonitor::refresh() {
  const std::string query =
      "SELECT device, app, sum(bytes) FROM Flows [RANGE " +
      std::to_string(config_.window_secs) + " SECONDS] GROUP BY device, app";
  auto rs = db_.query(query);
  if (rs) apply(rs.value());
}

void BandwidthMonitor::apply(const hwdb::ResultSet& rs) {
  ++updates_;
  std::map<std::string, DeviceBandwidth> by_device;
  const double window = static_cast<double>(config_.window_secs);

  for (const auto& row : rs.rows) {
    if (row.size() < 3) continue;
    const std::string device = row[0].to_string();
    const std::string app = row[1].to_string();
    const double rate = row[2].as_real() / window;

    auto& entry = by_device[device];
    entry.device = device;
    auto it = labels_.find(device);
    entry.label = it == labels_.end() ? device : it->second;
    entry.total_bytes_per_sec += rate;
    entry.protocols.push_back(ProtocolUsage{app, rate});
  }

  devices_.clear();
  for (auto& [_, entry] : by_device) {
    std::sort(entry.protocols.begin(), entry.protocols.end(),
              [](const ProtocolUsage& a, const ProtocolUsage& b) {
                return a.bytes_per_sec > b.bytes_per_sec;
              });
    devices_.push_back(std::move(entry));
  }
  std::sort(devices_.begin(), devices_.end(),
            [](const DeviceBandwidth& a, const DeviceBandwidth& b) {
              return a.total_bytes_per_sec > b.total_bytes_per_sec;
            });
}

std::vector<ProtocolUsage> BandwidthMonitor::device_breakdown(
    const std::string& mac) const {
  for (const auto& d : devices_) {
    if (d.device == mac) return d.protocols;
  }
  return {};
}

double BandwidthMonitor::total_bytes_per_sec() const {
  double total = 0;
  for (const auto& d : devices_) total += d.total_bytes_per_sec;
  return total;
}

std::string BandwidthMonitor::render() const {
  std::string out = "=== per-device bandwidth (last " +
                    std::to_string(config_.window_secs) + "s) ===\n";
  char line[160];
  for (const auto& d : devices_) {
    std::snprintf(line, sizeof line, "%-24s %10.1f KB/s\n", d.label.c_str(),
                  d.total_bytes_per_sec / 1024.0);
    out += line;
    for (const auto& p : d.protocols) {
      std::snprintf(line, sizeof line, "    %-12s %10.1f KB/s\n", p.app.c_str(),
                    p.bytes_per_sec / 1024.0);
      out += line;
    }
  }
  return out;
}

}  // namespace hw::ui
