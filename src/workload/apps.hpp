// Application traffic models. Each TrafficApp drives a sim::Host through a
// realistic session: resolve the service's domain through the router's DNS
// proxy, open a TCP exchange (or UDP stream), then emit request segments on
// an application-specific cadence — producing the flow mix the Figure 1
// display breaks down per device and per protocol.
#pragma once

#include <memory>
#include <string>

#include "sim/event_loop.hpp"
#include "sim/host.hpp"
#include "telemetry/metrics.hpp"
#include "util/rand.hpp"

namespace hw::workload {

enum class AppKind { Web, Streaming, VoIP, Gaming, Bulk, Email };

const char* to_string(AppKind kind);

struct AppProfile {
  AppKind kind = AppKind::Web;
  std::string domain = "www.example.com";
  std::uint16_t dst_port = 80;
  bool tcp = true;
  /// Mean seconds between requests (exponential).
  double request_interval_mean = 2.0;
  /// Request payload bytes (uniform in [min,max]).
  std::size_t request_min = 200;
  std::size_t request_max = 1200;

  static AppProfile web(std::string domain);
  static AppProfile streaming(std::string domain);
  static AppProfile voip(std::string domain);
  static AppProfile gaming(std::string domain);
  static AppProfile bulk(std::string domain);
  static AppProfile email(std::string domain);
};

/// Snapshot view over the app's telemetry instruments.
struct AppStats {
  std::uint64_t requests_sent = 0;
  std::uint64_t dns_failures = 0;
  bool resolved = false;
};

/// One running session. start() resolves and begins sending; stop() ends it.
class TrafficApp {
 public:
  TrafficApp(sim::EventLoop& loop, sim::Host& host, Rng& rng, AppProfile profile);
  ~TrafficApp();
  TrafficApp(const TrafficApp&) = delete;
  TrafficApp& operator=(const TrafficApp&) = delete;

  void start();
  void stop();
  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] AppStats stats() const {
    return {metrics_.requests_sent.value(), metrics_.dns_failures.value(),
            resolved_};
  }
  [[nodiscard]] const AppProfile& profile() const { return profile_; }

 private:
  void resolved(Ipv4Address server);
  void send_next();

  sim::EventLoop& loop_;
  sim::Host& host_;
  Rng& rng_;
  AppProfile profile_;
  struct Instruments {
    telemetry::Counter requests_sent{"workload.app.requests_sent"};
    telemetry::Counter dns_failures{"workload.app.dns_failures"};
  } metrics_;
  bool resolved_ = false;
  bool running_ = false;
  bool handshake_done_ = false;
  std::optional<Ipv4Address> server_;
  std::uint16_t src_port_ = 0;
  sim::EventLoop::EventId timer_ = 0;
};

}  // namespace hw::workload
