#include "workload/scenario.hpp"

namespace hw::workload {

const char* to_string(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::Laptop: return "laptop";
    case DeviceKind::Phone: return "phone";
    case DeviceKind::Tablet: return "tablet";
    case DeviceKind::Tv: return "tv";
    case DeviceKind::Console: return "console";
    case DeviceKind::Printer: return "printer";
    case DeviceKind::Artifact: return "artifact";
  }
  return "?";
}

HomeScenario::HomeScenario(Config config, telemetry::MetricRegistry& metrics)
    : config_(config),
      metrics_(metrics),
      loop_(config.clock_origin),
      rng_(config.seed) {
  router_ = std::make_unique<homework::HomeworkRouter>(loop_, rng_,
                                                       config_.router, metrics_);
}

HomeScenario::~HomeScenario() {
  // Apps reference hosts; drop them before the hosts.
  for (auto& d : devices_) d.apps.clear();
}

void HomeScenario::register_services() {
  auto& up = router_->upstream();
  up.add_zone_entry("www.bbc.co.uk", Ipv4Address{212, 58, 233, 1});
  up.add_zone_entry("www.facebook.com", Ipv4Address{31, 13, 72, 1});
  up.add_zone_entry("facebook.com", Ipv4Address{31, 13, 72, 2});
  up.add_zone_entry("video.netflix.com", Ipv4Address{45, 57, 3, 1});
  up.add_zone_entry("stream.iplayer.co.uk", Ipv4Address{212, 58, 244, 9});
  up.add_zone_entry("mail.google.com", Ipv4Address{142, 250, 1, 17});
  up.add_zone_entry("voice.skype.com", Ipv4Address{52, 113, 194, 132});
  up.add_zone_entry("play.xbox.com", Ipv4Address{40, 64, 89, 7});
  up.add_zone_entry("updates.ubuntu.com", Ipv4Address{91, 189, 91, 38});
  up.add_zone_entry("www.example.com", Ipv4Address{93, 184, 216, 34});
}

void HomeScenario::start() {
  register_services();
  router_->start();
}

std::size_t HomeScenario::add_device(const DeviceSpec& spec) {
  // Hosts carry bare instruments (sim.host.*); scope them to this home.
  telemetry::ScopedMetricRegistry scope(metrics_);
  sim::Host::Config host_config;
  host_config.name = spec.name;
  host_config.mac = MacAddress::from_index(next_mac_index_++);
  host_config.hostname = spec.name;

  Device d;
  d.name = spec.name;
  d.kind = spec.kind;
  d.host = std::make_unique<sim::Host>(loop_, host_config, rng_);
  d.attachment = router_->attach_device(*d.host, spec.position);
  devices_.push_back(std::move(d));
  return devices_.size() - 1;
}

void HomeScenario::populate_standard_home() {
  add_device({"toms-mac-air", DeviceKind::Laptop, sim::Position{8, 3}});
  add_device({"kates-phone", DeviceKind::Phone, sim::Position{12, 9}});
  add_device({"living-room-tv", DeviceKind::Tv, sim::Position{2, 7}});
  add_device({"kids-console", DeviceKind::Console, sim::Position{14, 14}});
  add_device({"printer", DeviceKind::Printer, std::nullopt});
  add_device({"network-artifact", DeviceKind::Artifact, sim::Position{5, 5}});
}

HomeScenario::Device* HomeScenario::device(const std::string& name) {
  for (auto& d : devices_) {
    if (d.name == name) return &d;
  }
  return nullptr;
}

void HomeScenario::permit_all() {
  for (auto& d : devices_) {
    router_->registry().set_state(d.host->mac(),
                                  homework::DeviceState::Permitted, loop_.now());
  }
}

void HomeScenario::permit(const std::string& name) {
  if (Device* d = device(name)) {
    router_->registry().set_state(d->host->mac(),
                                  homework::DeviceState::Permitted, loop_.now());
  }
}

void HomeScenario::start_dhcp(const std::string& name) {
  if (Device* d = device(name)) d->host->start_dhcp();
}

void HomeScenario::start_dhcp_all() {
  for (auto& d : devices_) d.host->start_dhcp();
}

bool HomeScenario::wait_all_bound(Duration deadline) {
  const Timestamp until = loop_.now() + deadline;
  while (loop_.now() < until) {
    bool all = true;
    for (auto& d : devices_) {
      const auto* rec = router_->registry().find(d.host->mac());
      // A device is expected to obtain a lease if it is already permitted,
      // or has not yet been seen under a permit-all admission default.
      const bool expects_lease =
          (rec != nullptr && rec->state == homework::DeviceState::Permitted) ||
          (rec == nullptr &&
           router_->registry().admission_default() ==
               homework::DeviceRegistry::AdmissionDefault::PermitAll);
      if (expects_lease && !d.host->ip()) {
        all = false;
        break;
      }
    }
    if (all) return true;
    loop_.run_for(100 * kMillisecond);
  }
  return false;
}

void HomeScenario::adopt_restored_leases() {
  const auto& dhcp = router_->dhcp().config();
  for (auto& d : devices_) {
    const auto* rec = router_->registry().find(d.host->mac());
    if (rec == nullptr || rec->state != homework::DeviceState::Permitted ||
        !rec->lease) {
      continue;
    }
    d.host->adopt_lease(rec->lease->ip, dhcp.server_ip, dhcp.server_ip,
                        dhcp.server_ip, dhcp.lease_secs);
  }
}

std::vector<AppProfile> HomeScenario::app_mix(DeviceKind kind) const {
  switch (kind) {
    case DeviceKind::Laptop:
      return {AppProfile::web("www.bbc.co.uk"),
              AppProfile::bulk("updates.ubuntu.com"),
              AppProfile::email("mail.google.com")};
    case DeviceKind::Phone:
      return {AppProfile::web("www.facebook.com"),
              AppProfile::voip("voice.skype.com")};
    case DeviceKind::Tablet:
      return {AppProfile::web("www.facebook.com"),
              AppProfile::streaming("stream.iplayer.co.uk")};
    case DeviceKind::Tv:
      return {AppProfile::streaming("video.netflix.com")};
    case DeviceKind::Console:
      return {AppProfile::gaming("play.xbox.com"),
              AppProfile::web("www.facebook.com")};
    case DeviceKind::Printer:
      return {};
    case DeviceKind::Artifact:
      return {};
  }
  return {};
}

void HomeScenario::start_apps(const std::string& name) {
  Device* d = device(name);
  if (d == nullptr) return;
  // Traffic apps carry bare instruments (workload.app.*); scope them too.
  telemetry::ScopedMetricRegistry scope(metrics_);
  for (const auto& profile : app_mix(d->kind)) {
    d->apps.push_back(
        std::make_unique<TrafficApp>(loop_, *d->host, rng_, profile));
    d->apps.back()->start();
  }
}

void HomeScenario::start_apps_all() {
  for (auto& d : devices_) start_apps(d.name);
}

void HomeScenario::stop_apps_all() {
  for (auto& d : devices_) {
    for (auto& app : d.apps) app->stop();
  }
}

}  // namespace hw::workload
