#include "workload/apps.hpp"

namespace hw::workload {

const char* to_string(AppKind kind) {
  switch (kind) {
    case AppKind::Web: return "web";
    case AppKind::Streaming: return "streaming";
    case AppKind::VoIP: return "voip";
    case AppKind::Gaming: return "gaming";
    case AppKind::Bulk: return "bulk";
    case AppKind::Email: return "email";
  }
  return "?";
}

AppProfile AppProfile::web(std::string domain) {
  AppProfile p;
  p.kind = AppKind::Web;
  p.domain = std::move(domain);
  p.dst_port = 80;
  p.request_interval_mean = 3.0;
  p.request_min = 300;
  p.request_max = 1400;
  return p;
}

AppProfile AppProfile::streaming(std::string domain) {
  AppProfile p;
  p.kind = AppKind::Streaming;
  p.domain = std::move(domain);
  p.dst_port = 1935;
  p.request_interval_mean = 1.0;  // chunk fetch per second
  p.request_min = 400;
  p.request_max = 800;
  return p;
}

AppProfile AppProfile::voip(std::string domain) {
  AppProfile p;
  p.kind = AppKind::VoIP;
  p.domain = std::move(domain);
  p.dst_port = 5060;
  p.tcp = false;
  p.request_interval_mean = 0.05;  // 20 ms RTP cadence (mean)
  p.request_min = 160;
  p.request_max = 220;
  return p;
}

AppProfile AppProfile::gaming(std::string domain) {
  AppProfile p;
  p.kind = AppKind::Gaming;
  p.domain = std::move(domain);
  p.dst_port = 3074;
  p.tcp = false;
  p.request_interval_mean = 0.1;
  p.request_min = 60;
  p.request_max = 240;
  return p;
}

AppProfile AppProfile::bulk(std::string domain) {
  AppProfile p;
  p.kind = AppKind::Bulk;
  p.domain = std::move(domain);
  p.dst_port = 443;
  p.request_interval_mean = 0.3;
  p.request_min = 1000;
  p.request_max = 1400;
  return p;
}

AppProfile AppProfile::email(std::string domain) {
  AppProfile p;
  p.kind = AppKind::Email;
  p.domain = std::move(domain);
  p.dst_port = 993;
  p.request_interval_mean = 20.0;
  p.request_min = 200;
  p.request_max = 4000;
  return p;
}

TrafficApp::TrafficApp(sim::EventLoop& loop, sim::Host& host, Rng& rng,
                       AppProfile profile)
    : loop_(loop), host_(host), rng_(rng), profile_(std::move(profile)) {
  src_port_ = static_cast<std::uint16_t>(20000 + rng_.uniform(20000));
}

TrafficApp::~TrafficApp() { stop(); }

void TrafficApp::start() {
  if (running_) return;
  running_ = true;
  host_.resolve(profile_.domain,
                [this](Result<Ipv4Address> result, const std::string&) {
                  if (!running_) return;
                  if (!result) {
                    metrics_.dns_failures.inc();
                    // Blocked or failed: retry occasionally, as apps do.
                    timer_ = loop_.schedule(10 * kSecond, [this] {
                      if (running_) {
                        running_ = false;
                        start();
                      }
                    });
                    return;
                  }
                  resolved_ = true;
                  resolved(result.value());
                });
}

void TrafficApp::resolved(Ipv4Address server) {
  server_ = server;
  if (profile_.tcp) {
    host_.send_tcp(server, src_port_, profile_.dst_port, net::TcpFlags::kSyn, 0);
    handshake_done_ = false;
    // Data follows after a handshake-ish delay.
    timer_ = loop_.schedule(100 * kMillisecond, [this] {
      handshake_done_ = true;
      send_next();
    });
  } else {
    send_next();
  }
}

void TrafficApp::send_next() {
  if (!running_ || !server_) return;
  const std::size_t size = static_cast<std::size_t>(rng_.uniform_range(
      static_cast<std::int64_t>(profile_.request_min),
      static_cast<std::int64_t>(profile_.request_max)));
  if (profile_.tcp) {
    host_.send_tcp(*server_, src_port_, profile_.dst_port,
                   net::TcpFlags::kAck | net::TcpFlags::kPsh, size);
  } else {
    host_.send_udp(*server_, src_port_, profile_.dst_port, size);
  }
  metrics_.requests_sent.inc();
  const double wait = rng_.exponential(profile_.request_interval_mean);
  timer_ = loop_.schedule(static_cast<Duration>(wait * 1e6) + 1,
                          [this] { send_next(); });
}

void TrafficApp::stop() {
  if (!running_) return;
  running_ = false;
  loop_.cancel(timer_);
  if (profile_.tcp && server_ && handshake_done_) {
    host_.send_tcp(*server_, src_port_, profile_.dst_port, net::TcpFlags::kFin,
                   0);
  }
}

}  // namespace hw::workload
