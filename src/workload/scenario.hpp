// Home scenario builder: a router plus a realistic population of family
// devices and upstream services, with helpers to admit devices, start their
// application mixes and run scripted episodes. Every example and bench
// builds on this so figures regenerate from one consistent world.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "homework/router.hpp"
#include "workload/apps.hpp"

namespace hw::workload {

enum class DeviceKind { Laptop, Phone, Tablet, Tv, Console, Printer, Artifact };

const char* to_string(DeviceKind kind);

struct DeviceSpec {
  std::string name;
  DeviceKind kind = DeviceKind::Laptop;
  /// Wireless position in the home; nullopt = wired.
  std::optional<sim::Position> position;
};

class HomeScenario {
 public:
  struct Config {
    homework::HomeworkRouter::Config router;
    std::uint64_t seed = 42;
    /// Virtual time the home's clock starts at. A home resumed from a
    /// snapshot is constructed with the capture time so restored absolute
    /// timestamps (leases, flow entries, hwdb rows) stay meaningful.
    Timestamp clock_origin = 0;
  };

  /// `metrics` scopes every instrument the scenario creates (router, hosts,
  /// links, traffic apps); defaults to the calling thread's active registry.
  /// The fleet runner passes each home's own registry here.
  explicit HomeScenario(Config config,
                        telemetry::MetricRegistry& metrics =
                            telemetry::MetricRegistry::current());
  ~HomeScenario();
  HomeScenario(const HomeScenario&) = delete;
  HomeScenario& operator=(const HomeScenario&) = delete;

  /// Boots the router and registers the standard upstream services.
  void start();

  struct Device {
    std::string name;
    DeviceKind kind;
    std::unique_ptr<sim::Host> host;
    homework::HomeworkRouter::Attachment attachment;
    std::vector<std::unique_ptr<TrafficApp>> apps;
  };

  /// Adds a device (attached but not yet DHCP'd). Returns its index.
  std::size_t add_device(const DeviceSpec& spec);
  /// The family from the paper's figures: Tom's Mac Air, a phone, the TV,
  /// a games console, a wired printer and the network artifact.
  void populate_standard_home();

  /// Admission helpers.
  void permit_all();
  void permit(const std::string& name);
  void start_dhcp(const std::string& name);
  void start_dhcp_all();
  /// Runs the loop until every permitted device holds a lease (or deadline).
  bool wait_all_bound(Duration deadline = 30 * kSecond);

  /// Snapshot resume: every device whose restored registry record is
  /// Permitted with a live lease adopts it silently (bound state + renewal
  /// timer, no DHCP exchange, no on_bound callbacks). Call after restoring
  /// a snapshot into this home.
  void adopt_restored_leases();

  /// Starts the app mix appropriate to each device's kind.
  void start_apps(const std::string& name);
  void start_apps_all();
  void stop_apps_all();

  [[nodiscard]] Device* device(const std::string& name);
  [[nodiscard]] std::vector<Device>& devices() { return devices_; }
  [[nodiscard]] homework::HomeworkRouter& router() { return *router_; }
  [[nodiscard]] sim::EventLoop& loop() { return loop_; }
  [[nodiscard]] Rng& rng() { return rng_; }
  [[nodiscard]] telemetry::MetricRegistry& metrics() { return metrics_; }

  /// Advances virtual time.
  void run_for(Duration d) { loop_.run_for(d); }

 private:
  [[nodiscard]] std::vector<AppProfile> app_mix(DeviceKind kind) const;
  void register_services();

  Config config_;
  telemetry::MetricRegistry& metrics_;
  sim::EventLoop loop_;  // initialized with config_.clock_origin in the ctor
  Rng rng_;
  std::unique_ptr<homework::HomeworkRouter> router_;
  std::vector<Device> devices_;
  std::uint32_t next_mac_index_ = 1;
};

}  // namespace hw::workload
