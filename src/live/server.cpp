#include "live/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "util/logging.hpp"

namespace hw::live {
namespace {
constexpr std::string_view kLog = "live-server";
constexpr std::size_t kMaxDatagram = 65536;
}  // namespace

// ---------------------------------------------------------------------------
// LiveServer

LiveServer::LiveServer(LiveFleet& fleet, SendFn send,
                       telemetry::MetricRegistry& metrics)
    : fleet_(fleet), send_(std::move(send)), metrics_(metrics) {}

bool LiveServer::series_matches(const std::string& pattern,
                                const std::string& name) {
  if (pattern.empty() || pattern == "*") return true;
  if (pattern.back() == '*') {
    const std::string prefix = pattern.substr(0, pattern.size() - 1);
    return name.compare(0, prefix.size(), prefix) == 0;
  }
  return name == pattern;
}

void LiveServer::handle_datagram(ClientAddress from,
                                 std::span<const std::uint8_t> datagram) {
  auto decoded = hwdb::rpc::decode(datagram, /*from_server=*/false);
  if (!decoded) {
    metrics_.errors.inc();
    HW_LOG_WARN(kLog, "bad request datagram: %s",
                decoded.error().message.c_str());
    return;
  }
  const auto* req = std::get_if<hwdb::rpc::Request>(&decoded.value());
  if (req == nullptr) {
    metrics_.errors.inc();
    return;
  }
  metrics_.requests.inc();

  // Same idempotency contract as the hwdb endpoint: a retransmitted request
  // replays the cached response. Without this a retried SubscribeSeries
  // would mint a second subscription streaming duplicate frames, and a
  // retried Mutate would land the mutation twice.
  if (const Bytes* cached = dedup_.find(from, req->request_id)) {
    metrics_.dup_suppressed.inc();
    send_(from, *cached);
    return;
  }

  Bytes encoded_resp = encode(process(from, *req));
  dedup_.remember(from, req->request_id, encoded_resp);
  send_(from, encoded_resp);
}

hwdb::rpc::Response LiveServer::process(ClientAddress from,
                                        const hwdb::rpc::Request& req) {
  hwdb::rpc::Response resp;
  resp.request_id = req.request_id;

  std::visit(
      [&](const auto& body) {
        using T = std::decay_t<decltype(body)>;
        if constexpr (std::is_same_v<T, hwdb::rpc::SubscribeSeriesRequest>) {
          Subscription sub;
          sub.id = next_sub_id_++;
          sub.client = from;
          sub.pattern = body.pattern;
          sub.home = body.home;
          sub.every = std::max<std::uint32_t>(1, body.every);
          sub.max_queue = std::max<std::uint32_t>(1, body.max_queue);
          resp.sub_id = sub.id;
          // An operator watching one home is an external stimulus: page it
          // back in at the next barrier (docs/residency.md).
          if (body.home != hwdb::rpc::kAllHomes) fleet_.touch(body.home);
          subs_.emplace(sub.id, std::move(sub));
          metrics_.subs.set(static_cast<std::int64_t>(subs_.size()));
        } else if constexpr (std::is_same_v<T, hwdb::rpc::UnsubscribeRequest>) {
          subs_.erase(body.sub_id);
          metrics_.subs.set(static_cast<std::int64_t>(subs_.size()));
        } else if constexpr (std::is_same_v<T, hwdb::rpc::MutateRequest>) {
          metrics_.mutations.inc();
          switch (body.kind) {
            case MutateKind::Pause:
              paused_ = true;
              resp.applied_at = fleet_.submit(from_request(body)).applied_at;
              break;
            case MutateKind::Resume:
              paused_ = false;
              pending_steps_ = 0;
              resp.applied_at = fleet_.submit(from_request(body)).applied_at;
              break;
            case MutateKind::Step:
              pending_steps_ += std::max<std::uint64_t>(1, body.arg0);
              resp.applied_at = fleet_.submit(from_request(body)).applied_at;
              break;
            case MutateKind::Replay: {
              // Synchronous verification of the time-travel contract: resume
              // the last checkpoint on a single-threaded replica, re-apply
              // the logged mutation tail, and compare fingerprints.
              if (fleet_.checkpoints().empty()) {
                resp.ok = false;
                resp.error = "live: no checkpoint to replay from";
                break;
              }
              // Hibernated homes serve stale frozen scalars; page them
              // through so both fingerprints speak for the current barrier.
              fleet_.refresh_telemetry();
              auto replayed = LiveFleet::replay_fingerprint(
                  fleet_.config(), fleet_.checkpoints().back(), fleet_.log(),
                  fleet_.now(), /*threads=*/1);
              if (!replayed) {
                resp.ok = false;
                resp.error = replayed.error().message;
              } else if (replayed.value() != fleet_.fingerprint()) {
                resp.ok = false;
                resp.error = "live: replay fingerprint mismatch";
              } else {
                resp.applied_at = fleet_.now();
              }
              break;
            }
            default:
              resp.applied_at = fleet_.submit(from_request(body)).applied_at;
              break;
          }
        } else if constexpr (std::is_same_v<T, hwdb::rpc::PingRequest>) {
          // Empty ok response.
        } else {
          // Insert / Query / Subscribe belong to the measurement plane.
          resp.ok = false;
          resp.error = "RPC: hwdb verb on a live endpoint";
        }
      },
      req.body);
  if (!resp.ok) metrics_.errors.inc();
  return resp;
}

Timestamp LiveServer::pump() {
  const bool advance = !paused_ || pending_steps_ > 0;
  if (advance) {
    fleet_.step();
    if (pending_steps_ > 0) --pending_steps_;
    for (auto& [id, sub] : subs_) sample(sub);
  }
  flush();
  return fleet_.now();
}

telemetry::ScalarMap LiveServer::collect(const Subscription& sub) const {
  telemetry::ScalarMap out;
  for (auto& [name, value] : fleet_.scalars(sub.home)) {
    if (series_matches(sub.pattern, name)) out.emplace(name, value);
  }
  return out;
}

void LiveServer::sample(Subscription& sub) {
  if (++sub.barriers % sub.every != 0) return;
  telemetry::ScalarMap cur = collect(sub);

  hwdb::rpc::DeltaPush frame;
  frame.sub_id = sub.id;
  frame.vtime = fleet_.now();
  frame.home = sub.home;
  if (!sub.synced) {
    // First frame of the subscription, or resync after drops: a full
    // snapshot carrying the accumulated dropped count.
    frame.snapshot = true;
    frame.dropped = sub.dropped_pending;
    sub.dropped_pending = 0;
    frame.values.assign(cur.begin(), cur.end());
    sub.synced = true;
  } else {
    telemetry::ScalarMap delta = telemetry::scalar_delta(sub.prev, cur);
    if (delta.empty()) {
      sub.prev = std::move(cur);
      return;  // nothing changed; no frame
    }
    frame.values.assign(delta.begin(), delta.end());
  }
  sub.prev = std::move(cur);
  frame.seq = sub.next_seq++;
  enqueue(sub, std::move(frame));
}

void LiveServer::enqueue(Subscription& sub, hwdb::rpc::DeltaPush frame) {
  sub.queue.push_back(std::move(frame));
  while (sub.queue.size() > sub.max_queue) {
    // Drop-oldest backpressure: the client detects the seq gap; the next
    // generated frame will be a snapshot so it can resynchronize.
    sub.queue.pop_front();
    ++sub.dropped_pending;
    metrics_.dropped.inc();
    sub.synced = false;
  }
}

void LiveServer::flush() {
  std::size_t budget = flush_budget_;
  for (auto& [id, sub] : subs_) {
    while (!sub.queue.empty() && budget > 0) {
      send_(sub.client, encode(sub.queue.front()));
      sub.queue.pop_front();
      metrics_.frames.inc();
      --budget;
    }
  }
}

void LiveServer::drop_client(ClientAddress addr) {
  dedup_.drop_client(addr);
  for (auto it = subs_.begin(); it != subs_.end();) {
    if (it->second.client == addr) {
      it = subs_.erase(it);
    } else {
      ++it;
    }
  }
  metrics_.subs.set(static_cast<std::int64_t>(subs_.size()));
}

// ---------------------------------------------------------------------------
// InProcLiveLink

InProcLiveLink::InProcLiveLink(sim::EventLoop& loop, LiveFleet& fleet,
                               Config config,
                               telemetry::MetricRegistry& metrics)
    : loop_(loop), config_(config), registry_(metrics) {
  server_ = std::make_unique<LiveServer>(
      fleet,
      [this](ClientAddress to, const Bytes& datagram) {
        transmit(datagram, [this, to](Bytes d) {
          const std::size_t idx = static_cast<std::size_t>(to);
          if (idx < clients_.size()) clients_[idx]->handle_datagram(d);
        });
      },
      registry_);
}

InProcLiveLink::~InProcLiveLink() = default;

hwdb::rpc::RpcClient& InProcLiveLink::make_client(
    hwdb::rpc::RetryPolicy policy) {
  const ClientAddress addr = clients_.size();
  clients_.push_back(std::make_unique<hwdb::rpc::RpcClient>(
      [this, addr](const Bytes& d) {
        transmit(d,
                 [this, addr](Bytes dg) { server_->handle_datagram(addr, dg); });
      },
      loop_, policy, registry_));
  return *clients_.back();
}

void InProcLiveLink::set_fault(const sim::DatagramFault& fault, Rng* rng) {
  fault_ = fault;
  fault_rng_ = rng;
}

void InProcLiveLink::transmit(const Bytes& datagram,
                              std::function<void(Bytes)> deliver) {
  Duration latency = config_.latency;
  std::size_t copies = 1;
  if (fault_rng_ != nullptr) {
    if (fault_.drop > 0 && fault_rng_->chance(fault_.drop)) return;
    if (fault_.duplicate > 0 && fault_rng_->chance(fault_.duplicate)) {
      copies = 2;
    }
    if (fault_.extra_delay > 0) latency += fault_.extra_delay;
  }
  for (std::size_t i = 0; i < copies; ++i) {
    // Duplicates trail the original by one extra latency (same reordering
    // exposure as the hwdb link).
    loop_.schedule(latency + static_cast<Duration>(i) * config_.latency,
                   [datagram, deliver]() { deliver(datagram); });
  }
}

// ---------------------------------------------------------------------------
// LiveUdpServer

LiveUdpServer::LiveUdpServer(LiveFleet& fleet, std::uint16_t port,
                             telemetry::MetricRegistry& metrics) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
  if (fd_ < 0) {
    HW_LOG_ERROR(kLog, "socket() failed: %s", std::strerror(errno));
    return;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    HW_LOG_ERROR(kLog, "bind() failed: %s", std::strerror(errno));
    ::close(fd_);
    fd_ = -1;
    return;
  }
  socklen_t len = sizeof addr;
  ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  server_ = std::make_unique<LiveServer>(
      fleet,
      [this](ClientAddress to, const Bytes& datagram) {
        sockaddr_in peer{};
        peer.sin_family = AF_INET;
        peer.sin_addr.s_addr = htonl(static_cast<std::uint32_t>(to >> 16));
        peer.sin_port = htons(static_cast<std::uint16_t>(to & 0xffff));
        ::sendto(fd_, datagram.data(), datagram.size(), 0,
                 reinterpret_cast<sockaddr*>(&peer), sizeof peer);
      },
      metrics);
}

LiveUdpServer::~LiveUdpServer() {
  if (fd_ >= 0) ::close(fd_);
}

std::size_t LiveUdpServer::poll() {
  if (fd_ < 0) return 0;
  std::size_t handled = 0;
  Bytes buf(kMaxDatagram);
  while (true) {
    sockaddr_in peer{};
    socklen_t peer_len = sizeof peer;
    const ssize_t n = ::recvfrom(fd_, buf.data(), buf.size(), 0,
                                 reinterpret_cast<sockaddr*>(&peer), &peer_len);
    if (n < 0) break;  // EWOULDBLOCK: drained
    const ClientAddress from =
        (static_cast<ClientAddress>(ntohl(peer.sin_addr.s_addr)) << 16) |
        ntohs(peer.sin_port);
    server_->handle_datagram(
        from, std::span(buf.data(), static_cast<std::size_t>(n)));
    ++handled;
  }
  return handled;
}

}  // namespace hw::live
