// LiveServer: the operator-facing RPC endpoint over a running LiveFleet.
// It speaks the same UDP wire dialect as the hwdb measurement plane
// (hwdb::rpc codec, request-id dedup, retried-call idempotency) so livectl
// and the paper's satellite interfaces need exactly one protocol — but it
// answers the live verbs the hwdb endpoint rejects: SubscribeSeries streams
// telemetry deltas at barrier cadence, Mutate lands control mutations on
// deterministic barriers, and Replay re-executes the run from its last
// checkpoint to prove the time-travel contract on demand.
//
// Streaming model (docs/liveops.md): each subscription samples its matched
// series after every `every`-th barrier. The first frame — and the resync
// frame after backpressure drops — is a full snapshot; later frames carry
// only changed series (absolute values, telemetry::scalar_delta). Frames
// queue per subscription, bounded by max_queue with drop-oldest; a drop
// marks the subscription unsynced so the next generated frame is a snapshot
// carrying the accumulated dropped count, and seq stays monotonic so
// clients detect the gap.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "hwdb/rpc_server.hpp"
#include "hwdb/udp_transport.hpp"
#include "live/fleet.hpp"
#include "telemetry/delta.hpp"

namespace hw::live {

using hwdb::rpc::ClientAddress;

/// Snapshot view over the server's telemetry instruments.
struct LiveServerStats {
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  std::uint64_t mutations = 0;
  std::uint64_t dup_suppressed = 0;
  std::uint64_t frames = 0;
  std::uint64_t dropped = 0;
  std::int64_t subs = 0;
};

class LiveServer {
 public:
  using SendFn = hwdb::rpc::RpcServer::SendFn;

  LiveServer(LiveFleet& fleet, SendFn send,
             telemetry::MetricRegistry& metrics =
                 telemetry::MetricRegistry::current());

  /// Processes one operator datagram. Retransmitted requests replay the
  /// cached response (same DedupCache contract as the hwdb RpcServer).
  void handle_datagram(ClientAddress from,
                       std::span<const std::uint8_t> datagram);

  /// One operator-plane tick: advance the fleet a barrier (unless paused),
  /// sample every subscription, flush queued frames. Returns the fleet's
  /// new now().
  Timestamp pump();

  /// Frames sent per pump across all subscriptions (tests shrink this to
  /// force backpressure; default effectively unbounded).
  void set_flush_budget(std::size_t frames) { flush_budget_ = frames; }

  [[nodiscard]] bool paused() const { return paused_; }
  [[nodiscard]] std::size_t subscriptions() const { return subs_.size(); }
  void drop_client(ClientAddress addr);

  [[nodiscard]] LiveServerStats stats() const {
    return {metrics_.requests.value(),      metrics_.errors.value(),
            metrics_.mutations.value(),     metrics_.dup_suppressed.value(),
            metrics_.frames.value(),        metrics_.dropped.value(),
            metrics_.subs.value()};
  }

  /// True when `name` matches `pattern` (exact, or prefix ending in '*').
  [[nodiscard]] static bool series_matches(const std::string& pattern,
                                           const std::string& name);

 private:
  struct Subscription {
    std::uint64_t id = 0;
    ClientAddress client = 0;
    std::string pattern;
    std::uint32_t home = kAllHomes;
    std::uint32_t every = 1;
    std::size_t max_queue = 64;
    std::uint64_t barriers = 0;       // barriers seen since subscribe
    std::uint64_t next_seq = 1;
    bool synced = false;              // next frame must be a full snapshot
    std::uint64_t dropped_pending = 0;
    telemetry::ScalarMap prev;        // base of the next delta
    std::deque<hwdb::rpc::DeltaPush> queue;
  };

  hwdb::rpc::Response process(ClientAddress from,
                              const hwdb::rpc::Request& req);
  void sample(Subscription& sub);
  void enqueue(Subscription& sub, hwdb::rpc::DeltaPush frame);
  void flush();
  [[nodiscard]] telemetry::ScalarMap collect(const Subscription& sub) const;

  LiveFleet& fleet_;
  SendFn send_;
  std::map<std::uint64_t, Subscription> subs_;
  std::uint64_t next_sub_id_ = 1;
  bool paused_ = false;
  std::uint64_t pending_steps_ = 0;
  std::size_t flush_budget_ = static_cast<std::size_t>(-1);
  hwdb::rpc::DedupCache dedup_{hwdb::rpc::RpcServer::kDedupWindow};

  struct Instruments {
    explicit Instruments(telemetry::MetricRegistry& reg)
        : requests{reg, "live.server.requests"},
          errors{reg, "live.server.errors"},
          mutations{reg, "live.server.mutations"},
          dup_suppressed{reg, "live.server.dup_suppressed"},
          frames{reg, "live.stream.frames"},
          dropped{reg, "live.stream.dropped"},
          subs{reg, "live.stream.subs"} {}
    telemetry::Counter requests;
    telemetry::Counter errors;
    telemetry::Counter mutations;
    telemetry::Counter dup_suppressed;
    telemetry::Counter frames;
    telemetry::Counter dropped;
    telemetry::Gauge subs;
  } metrics_;
};

/// In-process datagram link between a LiveServer and N operator clients,
/// routed through an operator-side event loop (latency + optional datagram
/// mangling in both directions — the retried-subscribe regression runs on
/// this). Drive the loop to the fleet's virtual time after each pump().
class InProcLiveLink {
 public:
  struct Config {
    Duration latency = 200;  // one-way, microseconds
  };

  InProcLiveLink(sim::EventLoop& loop, LiveFleet& fleet, Config config,
                 telemetry::MetricRegistry& metrics =
                     telemetry::MetricRegistry::current());
  InProcLiveLink(sim::EventLoop& loop, LiveFleet& fleet)
      : InProcLiveLink(loop, fleet, Config{}) {}
  ~InProcLiveLink();
  InProcLiveLink(const InProcLiveLink&) = delete;
  InProcLiveLink& operator=(const InProcLiveLink&) = delete;

  /// Creates a reliable client (retries on the operator loop).
  hwdb::rpc::RpcClient& make_client(hwdb::rpc::RetryPolicy policy);

  /// Datagram mangling in both directions (drop/duplicate/delay); pass a
  /// default DatagramFault to clear. `rng` drives the draws.
  void set_fault(const sim::DatagramFault& fault, Rng* rng);

  [[nodiscard]] LiveServer& server() { return *server_; }
  [[nodiscard]] sim::EventLoop& loop() { return loop_; }

 private:
  void transmit(const Bytes& datagram, std::function<void(Bytes)> deliver);

  sim::EventLoop& loop_;
  Config config_;
  telemetry::MetricRegistry& registry_;
  sim::DatagramFault fault_;
  Rng* fault_rng_ = nullptr;
  std::unique_ptr<LiveServer> server_;
  std::vector<std::unique_ptr<hwdb::rpc::RpcClient>> clients_;
};

/// Real-socket UDP front-end for a LiveServer (loopback, port 0 =
/// ephemeral) — livectl's transport. poll() drains pending operator
/// datagrams; pair with LiveServer::pump() in the serve loop.
class LiveUdpServer {
 public:
  LiveUdpServer(LiveFleet& fleet, std::uint16_t port,
                telemetry::MetricRegistry& metrics =
                    telemetry::MetricRegistry::current());
  ~LiveUdpServer();
  LiveUdpServer(const LiveUdpServer&) = delete;
  LiveUdpServer& operator=(const LiveUdpServer&) = delete;

  [[nodiscard]] bool ok() const { return fd_ >= 0; }
  [[nodiscard]] std::uint16_t port() const { return port_; }
  std::size_t poll();

  [[nodiscard]] LiveServer& server() { return *server_; }

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::unique_ptr<LiveServer> server_;
};

}  // namespace hw::live
