// Control mutations against a running LiveFleet. A Mutation is the in-memory
// form of the wire-level hwdb::rpc::MutateRequest: submitted from any thread
// (or decoded off the operator socket), stamped with the deterministic
// virtual-time barrier it will land on, applied on the owning worker, and
// recorded in the fleet's mutation log so a mutated run stays replayable —
// replaying (checkpoint, seeds, log tail) reproduces the live run's
// non-histogram telemetry bit-identically.
#pragma once

#include <string>
#include <vector>

#include "hwdb/rpc_codec.hpp"
#include "util/types.hpp"

namespace hw::live {

using hwdb::rpc::kAllHomes;
using hwdb::rpc::MutateKind;

const char* to_string(MutateKind kind);

struct Mutation {
  MutateKind kind = MutateKind::Admit;
  /// Target home, or kAllHomes for fleet-wide verbs (Checkpoint, Pause…).
  std::uint32_t home = 0;
  /// Device name / policy id, per-kind (see hwdb::rpc::MutateKind).
  std::string text;
  /// Policy JSON body (ApplyPolicy) or fault parameter string (InjectFault).
  std::string aux;
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;

  /// Assigned by the fleet at the barrier that ingests the mutation — the
  /// replay order key. 0 while the mutation is still in flight.
  std::uint64_t id = 0;
  /// The virtual-time barrier the mutation applies at.
  Timestamp applied_at = 0;
};

// -- Factories for the common verbs -----------------------------------------
[[nodiscard]] Mutation admit(std::uint32_t home, std::string device);
[[nodiscard]] Mutation expel(std::uint32_t home, std::string device);
/// Installs a block-network policy for `mac` (policy id "live-q-<mac>").
[[nodiscard]] Mutation quarantine(std::uint32_t home, const std::string& mac);
/// Deletes the policy quarantine() installed for `mac`.
[[nodiscard]] Mutation release(std::uint32_t home, const std::string& mac);
[[nodiscard]] Mutation checkpoint();
/// Opens a FaultWindow on `home`: `kind` as in sim::to_string(FaultKind),
/// starting `offset` after the barrier and lasting `duration`.
[[nodiscard]] Mutation inject_fault(std::uint32_t home, std::string kind,
                                    double loss, Duration offset,
                                    Duration duration);
[[nodiscard]] Mutation pause();
[[nodiscard]] Mutation resume_clock();
[[nodiscard]] Mutation step(std::uint64_t barriers = 1);
/// Force-evicts `home` (or every home, kAllHomes) to its snapshot image at
/// the next checkpoint-aligned barrier (docs/residency.md).
[[nodiscard]] Mutation hibernate_home(std::uint32_t home);
/// Pages a hibernated home back in at the next barrier; a no-op (beyond
/// refreshing residency recency) when the home is already resident.
[[nodiscard]] Mutation wake_home(std::uint32_t home);

/// Wire conversions (livectl and the LiveServer share these).
[[nodiscard]] hwdb::rpc::MutateRequest to_request(const Mutation& m);
[[nodiscard]] Mutation from_request(const hwdb::rpc::MutateRequest& req);

}  // namespace hw::live
