// Operator-side view of a live telemetry stream. LiveClient wraps an
// hwdb::rpc::RpcClient (any transport) and owns the stream-consistency
// logic the wire pushes onto receivers: per-subscription sequence gating
// (UDP duplicates are dropped, not re-applied), gap detection (a missing
// seq marks the view unsynced until the server's next snapshot frame), and
// delta merging into a rolling absolute-value map. Mutations go out through
// the same client and come back with the deterministic barrier they landed
// on.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "hwdb/rpc_client.hpp"
#include "live/mutation.hpp"
#include "telemetry/delta.hpp"

namespace hw::live {

/// Rolling state of one subscription as seen by the operator.
struct View {
  std::uint64_t sub_id = 0;
  std::uint64_t last_seq = 0;
  std::uint64_t frames = 0;   // frames applied (dups excluded)
  std::uint64_t dups = 0;     // duplicate frames discarded by seq gating
  std::uint64_t gaps = 0;     // seq discontinuities observed
  std::uint64_t dropped = 0;  // server-reported frames shed to backpressure
  Timestamp vtime = 0;        // virtual time of the last applied frame
  /// False between a detected gap and the next snapshot frame; delta frames
  /// arriving unsynced are not merged (their base is unknown).
  bool synced = false;
  telemetry::ScalarMap values;
};

class LiveClient {
 public:
  using MutateCallback =
      std::function<void(bool ok, Timestamp applied_at, std::string error)>;
  using SubscribeCallback = std::function<void(Result<std::uint64_t>)>;

  explicit LiveClient(hwdb::rpc::RpcClient& rpc);

  /// Subscribes to series matching `pattern` (exact name or prefix ending in
  /// '*') for one home or the merged fleet; `cb` receives the sub id.
  void subscribe_series(std::string pattern, std::uint32_t home,
                        std::uint32_t every, std::uint32_t max_queue,
                        SubscribeCallback cb);
  void unsubscribe(std::uint64_t sub_id);

  /// Sends a control mutation; `cb` fires with the barrier it will apply at.
  void mutate(const Mutation& m, MutateCallback cb = {});

  /// View for a subscription (created on subscribe, updated per frame).
  [[nodiscard]] const View* view(std::uint64_t sub_id) const;
  /// The only view, when exactly one subscription exists (demo convenience).
  [[nodiscard]] const View* sole_view() const;

  /// Invoked after every applied frame (tailing UIs).
  void on_frame(std::function<void(const View&)> cb) { frame_ = std::move(cb); }

 private:
  void handle_delta(const hwdb::rpc::DeltaPush& frame);

  hwdb::rpc::RpcClient& rpc_;
  std::map<std::uint64_t, View> views_;
  std::function<void(const View&)> frame_;
};

}  // namespace hw::live
