#include "live/fleet.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "homework/router.hpp"
#include "scenario/scenario.hpp"
#include "sim/fault_injector.hpp"
#include "snapshot/codec.hpp"
#include "util/logging.hpp"
#include "workload/scenario.hpp"

namespace hw::live {
namespace {

constexpr std::string_view kLog = "live";
constexpr std::uint32_t kRngTag = snapshot::tag("RNGS");
constexpr std::uint32_t kDriverTag = snapshot::tag("LDRV");
constexpr Duration kBootSettle = homework::HomeworkRouter::kBootSettle;

/// Smallest phase + k * period strictly after `now` (same grid re-arm the
/// fleet runner uses for restored periodic drivers).
Timestamp next_phase_tick(Timestamp now, Duration period, Duration phase) {
  if (now < phase) return phase;
  return phase + ((now - phase) / period + 1) * period;
}

std::optional<sim::FaultKind> parse_fault_kind(const std::string& name) {
  for (const sim::FaultKind kind :
       {sim::FaultKind::LinkLoss, sim::FaultKind::LinkPartition,
        sim::FaultKind::ControllerOutage, sim::FaultKind::HwdbFault,
        sim::FaultKind::DatapathRestart, sim::FaultKind::CrashRestartRestore}) {
    if (name == sim::to_string(kind)) return kind;
  }
  return std::nullopt;
}

/// Series excluded from the determinism fingerprint. snapshot.* counters
/// legitimately differ (the replay restores, the live run doesn't). The
/// openflow cache-warmth series count hit/miss splits of pure lookup caches
/// the datapath intentionally cold-starts on restore — same packets, same
/// forwarding decisions, different hit accounting — and an LRU of live
/// FlowEntry handles is not serialisable state.
bool transient_series(const std::string& name) {
  if (name.rfind("snapshot.", 0) == 0) return true;
  if (name.rfind("openflow.datapath.microflow_", 0) == 0) return true;
  return name == "openflow.datapath.buffer_evictions" ||
         name == "openflow.flow_table.subtable_scans";
}

/// Reads the CaptureTag out of an encoded image without restoring anything.
Result<snapshot::CaptureTag> read_capture_tag(const Bytes& image) {
  auto reader = snapshot::Reader::parse(image);
  if (!reader) return reader.error();
  snapshot::CaptureTagLayer probe;
  if (auto s = probe.restore(reader.value()); !s.ok()) return s.error();
  return probe.value();
}

/// Mutation kinds that act on one home's live stack — the kinds that page a
/// hibernated target back in before applying (wake-before-apply: a stored
/// image always reflects every mutation ever applied to its home).
bool targets_home(MutateKind kind) {
  switch (kind) {
    case MutateKind::Admit:
    case MutateKind::Expel:
    case MutateKind::ApplyPolicy:
    case MutateKind::RevokePolicy:
    case MutateKind::InjectFault:
    case MutateKind::Wake:
      return true;
    default:
      return false;
  }
}

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

}  // namespace

struct LiveFleet::Home {
  std::size_t id = 0;
  std::uint64_t seed = 0;
  std::size_t device_count = 0;
  std::string error;

  // registry first: it must outlive every instrument the home constructs.
  telemetry::MetricRegistry registry;
  std::unique_ptr<workload::HomeScenario> scenario;
  std::unique_ptr<sim::FaultInjector> faults;
  std::unique_ptr<snapshot::LambdaLayer> rng_layer;
  std::unique_ptr<snapshot::LambdaLayer> driver_layer;
  snapshot::CaptureTagLayer ftag;
  std::unique_ptr<snapshot::TelemetryLayer> tele_layer;
  std::unique_ptr<sim::PeriodicTimer> attack_timer;
  std::unique_ptr<sim::PeriodicTimer> rekick;

  /// Hostile events emitted so far — also the attack's MAC/xid sequence
  /// counter, so it snapshots (LDRV) and a resumed attack continues the
  /// exact stream.
  std::uint64_t attack_sent = 0;
  std::size_t guest_index = static_cast<std::size_t>(-1);

  struct Gauges {
    explicit Gauges(telemetry::MetricRegistry& reg)
        : devices_bound{reg, "live.home.devices_bound"},
          flow_entries{reg, "live.home.flow_entries"},
          block_flows{reg, "live.home.block_flows"},
          block_drops{reg, "live.home.block_drops"},
          attack_sent{reg, "live.home.attack_sent"} {}
    telemetry::Gauge devices_bound;
    telemetry::Gauge flow_entries;
    telemetry::Gauge block_flows;
    telemetry::Gauge block_drops;
    telemetry::Gauge attack_sent;
  };
  std::optional<Gauges> gauges;

  std::optional<snapshot::SnapshotImage> capture_out;
};

LiveFleet::LiveFleet(LiveConfig config, telemetry::MetricRegistry& metrics)
    : config_(std::move(config)),
      store_(metrics),
      residency_(config_.residency, metrics),
      metrics_(metrics) {
  if (config_.homes == 0) config_.homes = 1;
  nthreads_ = std::max<std::size_t>(1, std::min(config_.threads, config_.homes));
  profile_ = residency::FleetProfile::build(config_.seed, config_.homes,
                                            config_.devices_per_home);
}

LiveFleet::~LiveFleet() {
  if (started_) {
    // Homes were constructed on their owner workers; PeriodicTimer/app
    // destructors cancel loop events, so destruction must happen there too.
    run_on_workers([this](std::size_t w) {
      for (std::size_t i = w; i < homes_.size(); i += nthreads_) {
        homes_[i].reset();
      }
    });
  }
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(pool_mu_);
      shutdown_ = true;
    }
    pool_cv_.notify_all();
    for (auto& t : workers_) t.join();
  }
}

void LiveFleet::start_workers() {
  if (nthreads_ <= 1) return;  // inline mode: jobs run on the driving thread
  workers_.reserve(nthreads_);
  for (std::size_t i = 0; i < nthreads_; ++i) {
    workers_.emplace_back([this, i] {
      std::uint64_t seen = 0;
      while (true) {
        std::function<void(std::size_t)> job;
        {
          std::unique_lock<std::mutex> lock(pool_mu_);
          pool_cv_.wait(lock,
                        [&] { return shutdown_ || generation_ != seen; });
          if (generation_ == seen) return;  // shutdown, no new job
          seen = generation_;
          job = job_;
        }
        job(i);
        {
          std::lock_guard<std::mutex> lock(pool_mu_);
          ++done_;
        }
        pool_cv_.notify_all();
      }
    });
  }
}

void LiveFleet::run_on_workers(const std::function<void(std::size_t)>& job) {
  if (workers_.empty()) {
    for (std::size_t i = 0; i < nthreads_; ++i) job(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    job_ = job;
    done_ = 0;
    ++generation_;
  }
  pool_cv_.notify_all();
  std::unique_lock<std::mutex> lock(pool_mu_);
  pool_cv_.wait(lock, [&] { return done_ == workers_.size(); });
}

void LiveFleet::build_home(std::size_t id,
                           const snapshot::SnapshotImage* resume) {
  auto h = std::make_unique<Home>();
  h->id = id;
  h->seed = profile_->home_seeds[id];
  telemetry::ScopedMetricRegistry scope(h->registry);

  workload::HomeScenario::Config sc;
  sc.seed = h->seed;
  sc.router.admission = homework::DeviceRegistry::AdmissionDefault::PermitAll;
  sc.router.liveness.probe_interval = kSecond;
  sc.router.liveness.max_misses = 2;
  sc.router.datapath.controller_dead_interval = 2 * kSecond;
  // Spoofed-DISCOVER floods leave unclaimed offers pending across
  // checkpoints; the reclaim sweep runs on a boot-relative grid, so the
  // default holds offers past the run, keeping live tail and replay tail
  // byte-identical (residency tests shrink the hold to watch expiry fire).
  sc.router.dhcp_offer_hold = config_.dhcp_offer_hold;
  if (resume != nullptr) {
    sc.clock_origin = resume->captured_at > kBootSettle
                          ? resume->captured_at - kBootSettle
                          : 0;
  }
  h->scenario = std::make_unique<workload::HomeScenario>(sc, h->registry);
  h->scenario->start();

  // Same seed-derived population as the fleet runners, read from the shared
  // immutable profile so hibernate/wake cycles never re-derive it.
  for (const workload::DeviceSpec& spec : profile_->device_specs[id]) {
    h->scenario->add_device(spec);
  }
  const bool attack_home = config_.attack.kind != LiveAttack::Kind::None &&
                           config_.attack.home == id;
  if (attack_home) {
    h->guest_index = h->scenario->add_device(
        {"guest", workload::DeviceKind::Phone, std::nullopt});
  }
  h->device_count = h->scenario->devices().size();

  // Fault surfaces: armed with an empty plan so the injector RNG is seeded
  // deterministically before any mid-run InjectFault mutation draws from it.
  h->faults = std::make_unique<sim::FaultInjector>(h->scenario->loop());
  h->scenario->router().attach_faults(*h->faults);
  h->faults->set_hwdb_fault({});
  for (auto& d : h->scenario->devices()) {
    h->faults->add_link(d.name, *d.attachment.link);
  }
  sim::FaultPlan empty_plan;
  empty_plan.seed = h->seed ^ 0xa0761d6478bd642fULL;
  h->faults->arm(empty_plan);

  // Snapshot layers on top of the router's state layers: scenario RNG,
  // the live driver counters, the fleet capture tag, telemetry last.
  auto& snaps = h->scenario->router().snapshots();
  workload::HomeScenario* scenario = h->scenario.get();
  h->rng_layer = std::make_unique<snapshot::LambdaLayer>(
      [scenario](snapshot::Writer& w) {
        ByteWriter& c = w.begin_chunk(kRngTag);
        for (const std::uint64_t word : scenario->rng().state()) c.u64(word);
        w.end_chunk();
      },
      [scenario](const snapshot::Reader& r) -> Status {
        const Bytes* chunk = r.find(kRngTag);
        if (chunk == nullptr) return Status::success();
        ByteReader br(*chunk);
        std::array<std::uint64_t, 4> state{};
        for (auto& word : state) {
          auto v = br.u64();
          if (!v) return v.error();
          word = v.value();
        }
        scenario->rng().set_state(state);
        return Status::success();
      });
  Home* hp = h.get();
  h->driver_layer = std::make_unique<snapshot::LambdaLayer>(
      [hp](snapshot::Writer& w) {
        ByteWriter& c = w.begin_chunk(kDriverTag);
        c.u64(hp->attack_sent);
        // Host-side ARP caches: resolved next-hops are host state the router
        // layers cannot see, but a replayed tail must not re-ARP what the
        // first life resolved before the capture.
        auto& devices = hp->scenario->devices();
        c.u32(static_cast<std::uint32_t>(devices.size()));
        for (auto& d : devices) {
          std::vector<std::pair<Ipv4Address, MacAddress>> entries(
              d.host->arp_cache().begin(), d.host->arp_cache().end());
          std::sort(entries.begin(), entries.end());
          c.u32(static_cast<std::uint32_t>(entries.size()));
          for (const auto& [ip, mac] : entries) {
            c.u32(ip.value());
            for (const std::uint8_t octet : mac.octets()) c.u8(octet);
          }
        }
        w.end_chunk();
      },
      [hp](const snapshot::Reader& r) -> Status {
        const Bytes* chunk = r.find(kDriverTag);
        if (chunk == nullptr) return Status::success();
        ByteReader br(*chunk);
        auto v = br.u64();
        if (!v) return v.error();
        hp->attack_sent = v.value();
        auto ndevices = br.u32();
        if (!ndevices) return ndevices.error();
        auto& devices = hp->scenario->devices();
        for (std::uint32_t i = 0; i < ndevices.value(); ++i) {
          auto nentries = br.u32();
          if (!nentries) return nentries.error();
          for (std::uint32_t e = 0; e < nentries.value(); ++e) {
            auto ip = br.u32();
            if (!ip) return ip.error();
            std::array<std::uint8_t, 6> octets{};
            for (auto& octet : octets) {
              auto b = br.u8();
              if (!b) return b.error();
              octet = b.value();
            }
            if (i < devices.size()) {
              devices[i].host->seed_arp(Ipv4Address{ip.value()},
                                        MacAddress{octets});
            }
          }
        }
        return Status::success();
      });
  snaps.add_layer("rng", h->rng_layer.get());
  snaps.add_layer("live-driver", h->driver_layer.get());
  snaps.add_layer("capture-tag", &h->ftag);
  h->tele_layer = std::make_unique<snapshot::TelemetryLayer>(h->registry);
  h->gauges.emplace(h->registry);

  const LiveAttack attack = config_.attack;
  h->attack_timer = std::make_unique<sim::PeriodicTimer>(
      h->scenario->loop(), attack.period, [hp, attack] {
        auto& devices = hp->scenario->devices();
        if (hp->guest_index >= devices.size()) return;
        auto& guest = devices[hp->guest_index];
        if (guest.attachment.link == nullptr) return;
        for (std::size_t j = 0; j < attack.per_tick; ++j) {
          const auto n = static_cast<std::uint32_t>(hp->attack_sent);
          const Bytes frame = scenario::spoofed_discover(
              MacAddress::from_index(0x800000 + n), 0x51000000u + n,
              "flood-" + std::to_string(n));
          (void)guest.attachment.link->a_to_b().send(frame);
          ++hp->attack_sent;
        }
        // The attacker's own traffic — what a quarantine mutation blocks.
        if (guest.host->ip()) {
          (void)guest.host->send_udp(Ipv4Address{198, 51, 100, 7}, 33000, 443,
                                     64);
        }
      });
  h->rekick = std::make_unique<sim::PeriodicTimer>(
      h->scenario->loop(), 5 * kSecond, [hp] {
        for (auto& d : hp->scenario->devices()) {
          if (!d.host->ip()) d.host->start_dhcp();
        }
      });

  if (resume == nullptr) {
    snaps.add_layer("telemetry", h->tele_layer.get());
    h->scenario->start_dhcp_all();
    h->rekick->start_at(5 * kSecond + 500 * kMillisecond);
    if (attack_home) h->attack_timer->start_at(attack.start);
    if (config_.run_apps) {
      (void)h->scenario->wait_all_bound(10 * kSecond);
      h->scenario->start_apps_all();
    }
  } else {
    // The proven resume recipe (fleet::FleetRunner::run_life): state layers,
    // lease adoption, a 1 ms drain for boot-era in-flight frames, then the
    // telemetry layer so restored counters erase the boot's side effects.
    const Status restored = snaps.restore(*resume);
    if (!restored.ok()) {
      h->error = restored.error().message;
      homes_[id] = std::move(h);
      return;
    }
    h->scenario->adopt_restored_leases();
    if (config_.run_apps) h->scenario->start_apps_all();
    h->scenario->loop().run_for(kMillisecond);
    snaps.add_layer("telemetry", h->tele_layer.get());
    if (auto s = snaps.restore_layers(resume->bytes, {"telemetry"});
        !s.ok()) {
      h->error = s.error().message;
    }
    const Timestamp now = h->scenario->loop().now();
    h->rekick->start_at(
        next_phase_tick(now, 5 * kSecond, 5 * kSecond + 500 * kMillisecond));
    if (attack_home) {
      h->attack_timer->start_at(
          next_phase_tick(now, attack.period, attack.start));
    }
  }
  homes_[id] = std::move(h);
}

void LiveFleet::start() {
  if (started_) return;
  homes_.resize(config_.homes);
  frozen_.resize(config_.homes);
  hstage_.resize(config_.homes);
  wake_images_.resize(config_.homes);
  wake_ns_.assign(config_.homes, 0);
  start_workers();
  if (config_.residency.hibernate_on_start) {
    // Staged boot: each worker builds one owned home at a time, runs it to
    // the first capture-aligned barrier and hibernates it before building
    // the next — peak residency during start is the worker count, not the
    // fleet size.
    const Timestamp first = kBootSettle + kCheckpointAlign;
    residency_.reset(config_.homes, first);
    run_on_workers([this, first](std::size_t w) {
      for (std::size_t i = w; i < homes_.size(); i += nthreads_) {
        build_home(i, nullptr);
        {
          Home& h = *homes_[i];
          telemetry::ScopedMetricRegistry scope(h.registry);
          h.scenario->loop().run_until(first);
        }
        hibernate_on_worker(i, /*capture_id=*/first);
      }
    });
    for (std::size_t i = 0; i < homes_.size(); ++i) {
      (void)finish_hibernate(i, first);
    }
    now_ = first;
    resident_peak_ = std::min(nthreads_, homes_.size());
  } else {
    residency_.reset(config_.homes, kBootSettle);
    run_on_workers([this](std::size_t w) {
      for (std::size_t i = w; i < homes_.size(); i += nthreads_) {
        build_home(i, nullptr);
      }
    });
    now_ = kBootSettle;
    resident_peak_ = homes_.size();
  }
  started_ = true;
}

Status LiveFleet::resume(const FleetCheckpoint& cp,
                         std::vector<Mutation> tail) {
  if (started_) return make_error("live: fleet already started");
  if (cp.images.size() != config_.homes) {
    return make_error("live: checkpoint has " +
                      std::to_string(cp.images.size()) + " images for " +
                      std::to_string(config_.homes) + " homes");
  }
  // Reject stitched image sets before touching any home: every member must
  // carry the same capture id, its own position and the right fleet size.
  for (std::size_t i = 0; i < cp.images.size(); ++i) {
    auto tag = read_capture_tag(cp.images[i].bytes);
    if (!tag) return tag.error();
    if (tag.value().capture_id != cp.capture_id ||
        tag.value().member != i ||
        tag.value().members != cp.images.size()) {
      return make_error("live: capture tag mismatch on member " +
                        std::to_string(i) + " (capture " +
                        std::to_string(tag.value().capture_id) + ", member " +
                        std::to_string(tag.value().member) + ")");
    }
  }

  homes_.resize(config_.homes);
  frozen_.resize(config_.homes);
  hstage_.resize(config_.homes);
  wake_images_.resize(config_.homes);
  wake_ns_.assign(config_.homes, 0);
  residency_.reset(config_.homes, cp.captured_at);
  resident_peak_ = config_.homes;
  start_workers();
  // Every member boots resident. A mixed checkpoint (some members reused
  // from hibernation images) restores those homes at their older capture
  // times; the first step()'s run_until catches them up to the fleet
  // barrier, replaying their virtual timeline exactly.
  run_on_workers([this, &cp](std::size_t w) {
    for (std::size_t i = w; i < homes_.size(); i += nthreads_) {
      build_home(i, &cp.images[i]);
    }
  });
  for (const auto& h : homes_) {
    if (!h->error.empty()) {
      return make_error("live: home " + std::to_string(h->id) +
                        " failed to resume: " + h->error);
    }
  }

  now_ = cp.captured_at;
  next_mutation_id_ = cp.mutation_id + 1;
  next_capture_id_ = cp.capture_id + 1;
  for (Mutation& m : tail) {
    next_mutation_id_ = std::max(next_mutation_id_, m.id + 1);
    log_.push_back(m);
    if (m.kind == MutateKind::Checkpoint) {
      pending_checkpoints_.push_back(m);
    } else {
      pending_.push_back(m);
    }
  }
  metrics_.resumes.inc();
  started_ = true;
  return Status::success();
}

Timestamp LiveFleet::next_barrier() const {
  const Duration interval = config_.barrier_interval;
  if (now_ < kBootSettle) return kBootSettle + interval;
  return kBootSettle + ((now_ - kBootSettle) / interval + 1) * interval;
}

Timestamp LiveFleet::next_checkpoint_barrier() const {
  const Duration align = kCheckpointAlign;
  if (now_ < kBootSettle) return kBootSettle + align;
  return kBootSettle + ((now_ - kBootSettle) / align + 1) * align;
}

Mutation LiveFleet::submit(Mutation m) {
  m.id = 0;
  // Checkpoints and hibernations both land on the capture-aligned grid —
  // hibernation is a capture, and the alignment is the timer re-arm
  // precondition the eventual wake depends on.
  m.applied_at = m.kind == MutateKind::Checkpoint ||
                         m.kind == MutateKind::Hibernate
                     ? next_checkpoint_barrier()
                     : next_barrier();
  {
    std::lock_guard<std::mutex> lock(inbox_mu_);
    inbox_.push_back(m);
  }
  metrics_.mutations.inc();
  return m;
}

bool LiveFleet::checkpoint_pending_at(Timestamp barrier) const {
  for (const Mutation& m : pending_checkpoints_) {
    if (m.applied_at == barrier) return true;
  }
  return false;
}

Timestamp LiveFleet::step() {
  const Timestamp barrier = next_barrier();

  // Ingest the inbox. Checkpoints are ordered first and land on the aligned
  // capture grid; a mutation must never share a barrier with a capture —
  // the image has to show the pre-mutation state so the replayed tail
  // (ids > the checkpoint's) re-applies it exactly once.
  std::vector<Mutation> batch;
  {
    std::lock_guard<std::mutex> lock(inbox_mu_);
    batch.swap(inbox_);
  }
  std::stable_partition(batch.begin(), batch.end(), [](const Mutation& m) {
    return m.kind == MutateKind::Checkpoint;
  });
  for (Mutation& m : batch) {
    m.id = next_mutation_id_++;
    if (m.kind == MutateKind::Checkpoint) {
      m.applied_at = next_checkpoint_barrier();
      pending_checkpoints_.push_back(m);
    } else if (m.kind == MutateKind::Hibernate) {
      // Lands on the aligned grid (the wake's timer re-arm precondition) and
      // may share a barrier with a capture: the capture runs first and shows
      // the pre-hibernation state either way.
      m.applied_at = next_checkpoint_barrier();
      pending_.push_back(m);
    } else {
      m.applied_at = barrier;
      while (checkpoint_pending_at(m.applied_at)) {
        m.applied_at += config_.barrier_interval;
      }
      pending_.push_back(m);
    }
    HW_LOG_INFO(kLog, "mutation #%llu %s home=%u lands at t=%llu",
                static_cast<unsigned long long>(m.id), to_string(m.kind),
                m.home, static_cast<unsigned long long>(m.applied_at));
    log_.push_back(m);
  }

  // Page-in decision: which hibernated homes must be resident at this
  // barrier. External touches and due per-home mutations refresh recency and
  // force a wake (wake-before-apply); due scheduled events wake under
  // wake_on_due. Everything else stays paged out — the closed virtual world
  // guarantees a later catch-up replays the skipped interval bit-exactly.
  std::vector<std::uint8_t> wake(homes_.size(), 0);
  {
    std::vector<std::uint32_t> touched;
    {
      std::lock_guard<std::mutex> lock(touch_mu_);
      touched.swap(touched_);
    }
    for (const std::uint32_t id : touched) {
      if (id >= homes_.size()) continue;
      residency_.touch(id, barrier);
      if (residency_.hibernated(id)) wake[id] = 1;
    }
  }
  for (const Mutation& m : pending_) {
    if (m.applied_at > barrier || !targets_home(m.kind)) continue;
    if (m.home == kAllHomes) {
      for (std::size_t i = 0; i < homes_.size(); ++i) {
        if (residency_.hibernated(i)) wake[i] = 1;
      }
    } else if (m.home < homes_.size()) {
      residency_.touch(m.home, barrier);
      if (residency_.hibernated(m.home)) wake[m.home] = 1;
    }
  }
  for (const std::size_t id : residency_.due_wakeups(barrier)) wake[id] = 1;
  bool any_wake = false;
  for (std::size_t i = 0; i < homes_.size(); ++i) {
    if (!wake[i]) continue;
    auto img = store_.get(i);
    if (!img) {
      HW_LOG_ERROR(kLog, "wake of home %zu failed: %s", i,
                   img.error().message.c_str());
      wake[i] = 0;
      continue;
    }
    wake_images_[i] = std::move(img.value());
    any_wake = true;
  }

  // Quiesce every resident home at the barrier; woken homes rebuild from
  // their stored image and catch up on their owner worker.
  run_on_workers([this, barrier, &wake](std::size_t w) {
    for (std::size_t i = w; i < homes_.size(); i += nthreads_) {
      if (homes_[i] == nullptr) {
        if (!wake[i]) continue;
        const auto t0 = std::chrono::steady_clock::now();
        build_home(i, &*wake_images_[i]);
        Home& h = *homes_[i];
        telemetry::ScopedMetricRegistry scope(h.registry);
        h.scenario->loop().run_until(barrier);
        wake_ns_[i] = elapsed_ns(t0);
        continue;
      }
      Home& h = *homes_[i];
      telemetry::ScopedMetricRegistry scope(h.registry);
      h.scenario->loop().run_until(barrier);
    }
  });
  if (any_wake) {
    for (std::size_t i = 0; i < homes_.size(); ++i) {
      if (wake[i]) finish_wake(i, barrier);
    }
    resident_peak_ = std::max(resident_peak_, residency_.resident_count());
  }

  // Fleet-wide consistent capture, before any mutation due at this barrier.
  std::optional<std::uint64_t> capture_mutation;
  for (auto it = pending_checkpoints_.begin();
       it != pending_checkpoints_.end();) {
    if (it->applied_at == barrier) {
      if (!capture_mutation) capture_mutation = it->id;
      it = pending_checkpoints_.erase(it);
    } else {
      ++it;
    }
  }
  if (capture_mutation) {
    FleetCheckpoint cp;
    cp.capture_id = next_capture_id_++;
    cp.captured_at = barrier;
    cp.mutation_id = *capture_mutation;
    cp.images.resize(homes_.size());
    const std::uint64_t capture_id = cp.capture_id;
    run_on_workers([this, capture_id](std::size_t w) {
      for (std::size_t i = w; i < homes_.size(); i += nthreads_) {
        if (homes_[i] == nullptr) continue;
        Home& h = *homes_[i];
        telemetry::ScopedMetricRegistry scope(h.registry);
        h.ftag.value() = snapshot::CaptureTag{
            capture_id, static_cast<std::uint32_t>(h.id),
            static_cast<std::uint32_t>(homes_.size())};
        h.capture_out = h.scenario->router().snapshots().capture();
      }
    });
    for (std::size_t i = 0; i < homes_.size(); ++i) {
      if (homes_[i] != nullptr) {
        cp.images[i] = std::move(*homes_[i]->capture_out);
        homes_[i]->capture_out.reset();
        continue;
      }
      // Hibernated member: reuse its stored image, restamped with this
      // capture's tag. Wake-before-apply means the image already reflects
      // every mutation applied to the home; its older captured_at makes the
      // checkpoint "mixed" — resume catches the member up on the first step.
      const auto stored = store_.get(i);
      if (!stored) {
        HW_LOG_ERROR(kLog, "checkpoint %llu: no image for hibernated home %zu",
                     static_cast<unsigned long long>(capture_id), i);
        continue;
      }
      auto restamped = snapshot::with_capture_tag(
          stored.value().bytes,
          snapshot::CaptureTag{capture_id, static_cast<std::uint32_t>(i),
                               static_cast<std::uint32_t>(homes_.size())});
      if (!restamped) {
        HW_LOG_ERROR(kLog, "checkpoint %llu: restamp failed for home %zu: %s",
                     static_cast<unsigned long long>(capture_id), i,
                     restamped.error().message.c_str());
        continue;
      }
      cp.images[i].bytes = std::move(restamped.value());
      cp.images[i].captured_at = stored.value().captured_at;
    }
    checkpoints_.push_back(std::move(cp));
    metrics_.captures.inc();
  }

  // Apply due mutations in id order, then refresh the operator gauges.
  std::vector<Mutation> due;
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->applied_at <= barrier) {
      due.push_back(*it);
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  std::sort(due.begin(), due.end(),
            [](const Mutation& a, const Mutation& b) { return a.id < b.id; });
  run_on_workers([this, barrier, &due](std::size_t w) {
    for (std::size_t i = w; i < homes_.size(); i += nthreads_) {
      if (homes_[i] == nullptr) continue;  // hibernated: no mutation targets it
      Home& h = *homes_[i];
      telemetry::ScopedMetricRegistry scope(h.registry);
      for (const Mutation& m : due) {
        if (m.home == kAllHomes || m.home == h.id) apply_mutation(h, m);
      }
      h.scenario->loop().run_until(barrier);
      update_gauges(h);
    }
  });

  // Hibernation pass, only on the capture-aligned grid: due Hibernate verbs
  // plus the policy's deterministic eviction selection.
  if (aligned_barrier(barrier)) {
    std::vector<std::uint8_t> evict(homes_.size(), 0);
    for (const Mutation& m : due) {
      if (m.kind != MutateKind::Hibernate) continue;
      if (m.home == kAllHomes) {
        for (std::size_t i = 0; i < homes_.size(); ++i) evict[i] = 1;
      } else if (m.home < homes_.size()) {
        evict[m.home] = 1;
      }
    }
    for (const std::size_t id : residency_.select_evictions(barrier)) {
      evict[id] = 1;
    }
    bool any_evict = false;
    for (std::size_t i = 0; i < homes_.size(); ++i) {
      if (evict[i] && homes_[i] == nullptr) evict[i] = 0;  // already out
      any_evict |= evict[i] != 0;
    }
    if (any_evict) {
      // The hibernation image's FTAG id is the barrier itself: unique per
      // pass without consuming checkpoint capture ids (a checkpoint restamps
      // the tag anyway when it reuses the image).
      run_on_workers([this, barrier, &evict](std::size_t w) {
        for (std::size_t i = w; i < homes_.size(); i += nthreads_) {
          if (evict[i]) hibernate_on_worker(i, /*capture_id=*/barrier);
        }
      });
      for (std::size_t i = 0; i < homes_.size(); ++i) {
        if (evict[i]) (void)finish_hibernate(i, barrier);
      }
    }
  }

  now_ = barrier;
  metrics_.steps.inc();
  return now_;
}

void LiveFleet::advance_to(Timestamp t) {
  while (now_ < t) step();
}

bool LiveFleet::aligned_barrier(Timestamp barrier) const {
  return barrier > kBootSettle &&
         (barrier - kBootSettle) % kCheckpointAlign == 0;
}

void LiveFleet::touch(std::uint32_t home) {
  if (home >= config_.homes) return;
  std::lock_guard<std::mutex> lock(touch_mu_);
  touched_.push_back(home);
}

void LiveFleet::hibernate_on_worker(std::size_t id, std::uint64_t capture_id) {
  {
    Home& h = *homes_[id];
    telemetry::ScopedMetricRegistry scope(h.registry);
    update_gauges(h);
    HibernateOut out;
    h.ftag.value() = snapshot::CaptureTag{
        capture_id, static_cast<std::uint32_t>(id),
        static_cast<std::uint32_t>(homes_.size())};
    out.image = h.scenario->router().snapshots().capture();
    out.frozen.scalars = h.registry.scalars();
    for (const auto& d : h.scenario->devices()) {
      out.frozen.device_macs[d.name] = d.host->mac().to_string();
    }
    out.frozen.device_count = h.device_count;
    out.next_wakeup = h.scenario->loop().next_event_at();
    hstage_[id] = std::move(out);
  }
  // Teardown on the owner worker: timers and apps cancel their loop events
  // from the thread that owns the loop.
  homes_[id].reset();
}

bool LiveFleet::finish_hibernate(std::size_t id, Timestamp barrier) {
  if (!hstage_[id]) return false;
  HibernateOut out = std::move(*hstage_[id]);
  hstage_[id].reset();
  if (auto s = store_.put(id, out.image); !s.ok()) {
    HW_LOG_ERROR(kLog, "hibernate of home %zu failed to store image: %s", id,
                 s.error().message.c_str());
  }
  residency_.on_hibernated(id, barrier, out.next_wakeup);
  frozen_[id] = std::move(out.frozen);
  return true;
}

void LiveFleet::finish_wake(std::size_t id, Timestamp barrier) {
  wake_images_[id].reset();
  if (homes_[id] == nullptr) return;
  if (!homes_[id]->error.empty()) {
    HW_LOG_ERROR(kLog, "home %zu woke with restore error: %s", id,
                 homes_[id]->error.c_str());
  }
  residency_.on_resumed(id, barrier, wake_ns_[id]);
  frozen_[id].reset();
  store_.erase(id);
}

void LiveFleet::refresh_telemetry() {
  if (!started_) return;
  const Timestamp at = now_;
  std::vector<std::uint8_t> wake(homes_.size(), 0);
  bool any = false;
  for (std::size_t i = 0; i < homes_.size(); ++i) {
    if (homes_[i] != nullptr) continue;
    auto img = store_.get(i);
    if (!img) continue;
    // A home hibernated at this very barrier is already current: its frozen
    // scalars were harvested after the quiesce. Waking it would capture off
    // the aligned grid (the post-restore drain advances the loop 1 ms).
    if (img.value().captured_at >= at) continue;
    wake_images_[i] = std::move(img.value());
    wake[i] = 1;
    any = true;
  }
  if (!any) return;
  // On the aligned grid each woken home re-hibernates right after the
  // harvest (the worker pages homes through one at a time, so peak residency
  // stays near resident + workers); off-grid it must stay resident — a
  // mid-grid capture would break the wake's timer re-arm precondition.
  const bool realign = aligned_barrier(at);
  const std::size_t base = residency_.resident_count();
  run_on_workers([this, at, realign, &wake](std::size_t w) {
    for (std::size_t i = w; i < homes_.size(); i += nthreads_) {
      if (!wake[i]) continue;
      const auto t0 = std::chrono::steady_clock::now();
      build_home(i, &*wake_images_[i]);
      {
        Home& h = *homes_[i];
        telemetry::ScopedMetricRegistry scope(h.registry);
        h.scenario->loop().run_until(at);
        update_gauges(h);
      }
      wake_ns_[i] = elapsed_ns(t0);
      if (realign) hibernate_on_worker(i, /*capture_id=*/at);
    }
  });
  for (std::size_t i = 0; i < homes_.size(); ++i) {
    if (!wake[i]) continue;
    wake_images_[i].reset();
    residency_.on_resumed(i, at, wake_ns_[i]);
    if (realign && hstage_[i]) {
      (void)finish_hibernate(i, at);  // replaces the stored image + frozen
    } else {
      frozen_[i].reset();
      store_.erase(i);
    }
  }
  resident_peak_ = std::max(
      resident_peak_,
      realign ? std::min(homes_.size(), base + nthreads_)
              : residency_.resident_count());
}

void LiveFleet::apply_mutation(Home& h, const Mutation& m) {
  auto& api = h.scenario->router().control_api();
  switch (m.kind) {
    case MutateKind::Admit: {
      auto* dev = h.scenario->device(m.text);
      if (dev == nullptr) return;
      h.scenario->permit(m.text);
      dev->host->start_dhcp();
      return;
    }
    case MutateKind::Expel: {
      auto* dev = h.scenario->device(m.text);
      if (dev == nullptr) return;
      homework::HttpRequest req;
      req.method = "POST";
      req.path = "/api/devices/" + dev->host->mac().to_string() + "/deny";
      (void)api.handle(req);
      return;
    }
    case MutateKind::ApplyPolicy: {
      homework::HttpRequest req;
      req.method = "POST";
      req.path = "/api/policies";
      req.body = m.aux;
      (void)api.handle(req);
      return;
    }
    case MutateKind::RevokePolicy: {
      homework::HttpRequest req;
      req.method = "DELETE";
      req.path = "/api/policies/" + m.text;
      (void)api.handle(req);
      return;
    }
    case MutateKind::InjectFault: {
      const auto kind = parse_fault_kind(m.text);
      if (!kind) return;
      sim::FaultWindow w;
      w.kind = *kind;
      w.start = m.applied_at + static_cast<Duration>(m.arg0);
      w.duration = static_cast<Duration>(m.arg1);
      w.loss = m.aux.empty() ? 0.5 : std::strtod(m.aux.c_str(), nullptr);
      h.faults->inject(w);
      return;
    }
    case MutateKind::Checkpoint:
    case MutateKind::Pause:
    case MutateKind::Resume:
    case MutateKind::Step:
    case MutateKind::Replay:
    case MutateKind::Hibernate:
    case MutateKind::Wake:
      return;  // fleet/server-level verbs; nothing to do per home
  }
}

void LiveFleet::update_gauges(Home& h) {
  std::size_t bound = 0;
  for (auto& d : h.scenario->devices()) {
    if (d.host->ip()) ++bound;
  }
  std::size_t block_flows = 0;
  std::uint64_t block_drops = 0;
  auto& table = h.scenario->router().datapath().table();
  table.for_each([&](const ofp::FlowEntry& e) {
    if (e.priority != 0x9100) return;  // reconciler's kPolicyBlockPriority
    ++block_flows;
    block_drops += e.packet_count;
  });
  h.gauges->devices_bound.set(static_cast<std::int64_t>(bound));
  h.gauges->flow_entries.set(static_cast<std::int64_t>(table.size()));
  h.gauges->block_flows.set(static_cast<std::int64_t>(block_flows));
  h.gauges->block_drops.set(static_cast<std::int64_t>(block_drops));
  h.gauges->attack_sent.set(static_cast<std::int64_t>(h.attack_sent));
}

std::map<std::string, double> LiveFleet::scalars(std::uint32_t home) const {
  const auto home_scalars =
      [this](std::size_t i) -> std::map<std::string, double> {
    if (homes_[i] != nullptr) return homes_[i]->registry.scalars();
    // Hibernated: the telemetry frozen at hibernation time stands in until
    // the home pages back (refresh_telemetry() brings it current).
    return frozen_[i] ? frozen_[i]->scalars : std::map<std::string, double>{};
  };
  if (home != kAllHomes) {
    if (home >= homes_.size()) return {};
    return home_scalars(home);
  }
  // Merge in home-id order: fixed accumulation order keeps the totals
  // bit-identical at any thread count.
  std::map<std::string, double> out;
  for (std::size_t i = 0; i < homes_.size(); ++i) {
    for (const auto& [name, value] : home_scalars(i)) {
      out[name] += value;
    }
  }
  return out;
}

std::map<std::string, double> LiveFleet::fingerprint() const {
  std::map<std::string, double> out = scalars(kAllHomes);
  for (auto it = out.begin(); it != out.end();) {
    it = transient_series(it->first) ? out.erase(it) : std::next(it);
  }
  return out;
}

LiveHomeStatus LiveFleet::status(std::uint32_t home) const {
  LiveHomeStatus s;
  if (home >= homes_.size()) return s;
  if (homes_[home] == nullptr) {
    s.hibernated = true;
    if (!frozen_[home]) return s;
    const Frozen& f = *frozen_[home];
    s.devices = f.device_count;
    const auto gauge = [&f](const char* name) -> std::uint64_t {
      const auto it = f.scalars.find(name);
      return it != f.scalars.end() && it->second > 0
                 ? static_cast<std::uint64_t>(it->second)
                 : 0;
    };
    s.devices_bound = gauge("live.home.devices_bound");
    s.flow_entries = gauge("live.home.flow_entries");
    s.block_flows = gauge("live.home.block_flows");
    s.block_drops = gauge("live.home.block_drops");
    s.attack_sent = gauge("live.home.attack_sent");
    return s;
  }
  const Home& h = *homes_[home];
  s.devices = h.device_count;
  const auto gauge = [&h](const char* name) -> std::uint64_t {
    const auto v = h.registry.total(name);
    return v && *v > 0 ? static_cast<std::uint64_t>(*v) : 0;
  };
  s.devices_bound = gauge("live.home.devices_bound");
  s.flow_entries = gauge("live.home.flow_entries");
  s.block_flows = gauge("live.home.block_flows");
  s.block_drops = gauge("live.home.block_drops");
  s.attack_sent = gauge("live.home.attack_sent");
  return s;
}

std::string LiveFleet::device_mac(std::uint32_t home,
                                  const std::string& name) const {
  if (home >= homes_.size()) return {};
  if (homes_[home] == nullptr) {
    if (!frozen_[home]) return {};
    const auto it = frozen_[home]->device_macs.find(name);
    return it != frozen_[home]->device_macs.end() ? it->second
                                                  : std::string{};
  }
  for (auto& d : homes_[home]->scenario->devices()) {
    if (d.name == name) return d.host->mac().to_string();
  }
  return {};
}

Result<std::map<std::string, double>> LiveFleet::replay_fingerprint(
    LiveConfig config, const FleetCheckpoint& cp,
    const std::vector<Mutation>& full_log, Timestamp until,
    std::size_t threads) {
  config.threads = threads;
  LiveFleet replica(config);
  std::vector<Mutation> tail;
  for (const Mutation& m : full_log) {
    if (m.id > cp.mutation_id) tail.push_back(m);
  }
  if (auto s = replica.resume(cp, std::move(tail)); !s.ok()) {
    return s.error();
  }
  replica.advance_to(until);
  // Bring any home the replica's residency policy still has paged out
  // current before fingerprinting.
  replica.refresh_telemetry();
  return replica.fingerprint();
}

}  // namespace hw::live
