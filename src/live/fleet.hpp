// LiveFleet: a fleet of homes executing under operator control. Where
// fleet::FleetRunner runs homes start-to-finish and reports afterwards, a
// LiveFleet advances the whole fleet barrier by barrier on a persistent
// worker pool so an operator can observe telemetry, mutate the world and
// checkpoint it *while it executes* (the live-operations plane, docs/
// liveops.md).
//
// Execution model: virtual time is quantised into barriers at
// k * barrier_interval + HomeworkRouter::kBootSettle. step() runs every home
// to the next barrier (static partition home i -> worker i mod threads, so a
// home's event loop is only ever touched by its owner thread), applies the
// mutations due at that barrier in mutation-id order, and refreshes the
// per-home live.home.* gauges. Mutations submitted between steps are stamped
// with the barrier they will land on, making every mutated run a
// deterministic schedule: (seed, mutation log) fully determines the run.
//
// Checkpoints are fleet-wide consistent captures: every home's image is
// taken at the same barrier, stamped with a CaptureTag (capture id, member,
// fleet size) so a restore rejects image sets stitched from different
// captures. Capture barriers additionally align to kCheckpointAlign so the
// resumed home's module timers (liveness probes, DHCP sweeps) re-arm on the
// same absolute grid the first life used — the precondition for the
// time-travel contract: resuming a checkpoint and re-applying the logged
// mutation tail reproduces the live run's non-histogram telemetry
// bit-identically (snapshot.* and datapath cache-warmth series excluded —
// see fingerprint()), at any worker-thread count.
#pragma once

#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "live/mutation.hpp"
#include "residency/image_store.hpp"
#include "residency/profile.hpp"
#include "residency/residency.hpp"
#include "snapshot/coordinator.hpp"
#include "telemetry/metrics.hpp"
#include "util/types.hpp"

namespace hw::live {

/// Scripted in-fleet attacker (scenario-style hostile workload) so live runs
/// have something worth watching and mutating: one home hosts a "guest"
/// device that floods spoofed DHCPDISCOVERs (pool pressure) and probes an
/// outside address — the traffic a quarantine mutation measurably blocks.
struct LiveAttack {
  enum class Kind : std::uint8_t { None, DhcpFlood };
  Kind kind = Kind::None;
  /// Home hosting the attacker.
  std::uint32_t home = 0;
  /// First hostile tick. The 13 ms offset keeps the attack grid disjoint
  /// from the barrier grid (10 ms phase) and the resume drain window.
  Timestamp start = 3 * kSecond + 13 * kMillisecond;
  Duration period = 50 * kMillisecond;
  /// Spoofed DISCOVERs per tick.
  std::size_t per_tick = 4;
};

struct LiveConfig {
  std::size_t homes = 4;
  /// Worker threads (clamped to [1, homes]). Homes are statically
  /// partitioned, so thread count never changes per-home execution.
  std::size_t threads = 1;
  std::uint64_t seed = 1;
  std::size_t devices_per_home = 3;
  /// Barrier spacing. kCheckpointAlign must be a multiple of it.
  Duration barrier_interval = 250 * kMillisecond;
  /// Traffic apps re-arm from the resume point rather than replaying, which
  /// makes resumes behavioural instead of bit-exact — off by default.
  bool run_apps = false;
  LiveAttack attack;
  /// Residency policy: cold homes hibernate to their snapshot images at
  /// checkpoint-aligned barriers and page back on demand — next scheduled
  /// event due, RPC mutation, subscription touch, or operator Wake verb
  /// (docs/residency.md). Default: everything stays resident.
  residency::ResidencyPolicy residency;
  /// How long the DHCP server holds unclaimed offers. The default parks
  /// offers past any run so flood leftovers never straddle a checkpoint;
  /// tests shrink it to watch expiry sweeps fire across hibernation.
  Duration dhcp_offer_hold = 3600 * kSecond;
};

/// A fleet-wide consistent capture: one image per home, all taken at the
/// same barrier. `mutation_id` is the Checkpoint mutation's log id — the
/// replay tail is every logged mutation with a larger id.
struct FleetCheckpoint {
  std::uint64_t capture_id = 0;
  Timestamp captured_at = 0;
  std::uint64_t mutation_id = 0;
  /// Home-id order; images[i] carries CaptureTag{capture_id, i, homes}.
  std::vector<snapshot::SnapshotImage> images;
};

/// Operator-facing view of one home at the last barrier (read from the
/// live.home.* gauges, so no cross-thread touch of the home's loop).
struct LiveHomeStatus {
  std::size_t devices = 0;
  std::size_t devices_bound = 0;
  std::size_t flow_entries = 0;
  std::size_t block_flows = 0;
  std::uint64_t block_drops = 0;
  std::uint64_t attack_sent = 0;
  /// True when the home is paged out; gauges reflect its hibernation time.
  bool hibernated = false;
};

class LiveFleet {
 public:
  /// Capture barriers align to this grid (phase kBootSettle) so a resumed
  /// home's boot origin is congruent to the first life's modulo every module
  /// timer period — see the file comment. Must be a multiple of
  /// barrier_interval.
  static constexpr Duration kCheckpointAlign = 5 * kSecond;

  explicit LiveFleet(LiveConfig config,
                     telemetry::MetricRegistry& metrics =
                         telemetry::MetricRegistry::current());
  ~LiveFleet();
  LiveFleet(const LiveFleet&) = delete;
  LiveFleet& operator=(const LiveFleet&) = delete;

  /// Boots every home fresh at t=0. Call exactly one of start()/resume().
  void start();
  /// Boots every home from a checkpoint and loads `tail` (mutations with
  /// ids/applied_at already stamped — the live run's log past the
  /// checkpoint) for deterministic re-application. Rejects image sets whose
  /// capture tags don't form one consistent fleet capture.
  Status resume(const FleetCheckpoint& cp, std::vector<Mutation> tail);

  [[nodiscard]] bool started() const { return started_; }
  [[nodiscard]] const LiveConfig& config() const { return config_; }
  /// Virtual time of the last completed barrier.
  [[nodiscard]] Timestamp now() const { return now_; }
  [[nodiscard]] Timestamp next_barrier() const;
  /// Next capture-eligible barrier (kCheckpointAlign grid).
  [[nodiscard]] Timestamp next_checkpoint_barrier() const;

  /// Queues a mutation; it is stamped (id, applied_at) at the next step().
  /// Returns the prediction: applied_at set to the barrier it will land on
  /// (checkpoints: the next capture-eligible barrier), id still 0.
  Mutation submit(Mutation m);

  /// Advances every home one barrier: ingest queued mutations, run to the
  /// barrier, capture if a checkpoint is due, apply due mutations in id
  /// order, refresh gauges. Returns the new now().
  Timestamp step();
  /// Steps until now() >= t.
  void advance_to(Timestamp t);

  /// Every mutation ever ingested, in id order (the replay log).
  [[nodiscard]] const std::vector<Mutation>& log() const { return log_; }
  [[nodiscard]] const std::vector<FleetCheckpoint>& checkpoints() const {
    return checkpoints_;
  }

  /// Non-histogram telemetry: one home's, or the fleet merged in home-id
  /// order (bit-identical at any thread count).
  [[nodiscard]] std::map<std::string, double> scalars(
      std::uint32_t home = kAllHomes) const;
  /// The determinism fingerprint: merged scalars minus snapshot.* series
  /// (capture/restore counters legitimately differ between a live run and
  /// its replay — the replay restores, the live run doesn't) and minus the
  /// datapath cache-warmth series (microflow hit/miss split, subtable
  /// scans, packet-in buffer evictions): restores cold-start pure lookup
  /// caches, so these hit-accounting counters differ while every forwarding
  /// outcome stays identical. See docs/liveops.md.
  [[nodiscard]] std::map<std::string, double> fingerprint() const;

  [[nodiscard]] LiveHomeStatus status(std::uint32_t home) const;
  /// MAC of a named device in a home ("" when unknown) — quarantine targets.
  /// Served from the frozen device table while the home is hibernated.
  [[nodiscard]] std::string device_mac(std::uint32_t home,
                                       const std::string& name) const;

  // -- Residency (docs/residency.md) ---------------------------------------
  /// Records an external stimulus for `home` from any thread (operator
  /// subscription, roam partner activity): the home is paged back in at the
  /// next step() and its LRU recency refreshed.
  void touch(std::uint32_t home);
  /// Pages every hibernated home in on its owner worker, catches it up to
  /// now() and refreshes its telemetry, so scalars()/fingerprint() reflect
  /// the current barrier. When now() is on the checkpoint-aligned grid the
  /// home re-hibernates right after the harvest (peak residency stays near
  /// resident + workers); otherwise it stays resident. Call before
  /// comparing fingerprints against an always-resident run.
  void refresh_telemetry();
  [[nodiscard]] const residency::ResidencyManager& residency() const {
    return residency_;
  }
  [[nodiscard]] const residency::ImageStore& image_store() const {
    return store_;
  }
  /// Highest resident-home count observed at any completed barrier (the
  /// density bench's "fixed resident-memory budget" figure).
  [[nodiscard]] std::size_t resident_peak() const { return resident_peak_; }

  /// Time-travel helper: resume `cp` on a fresh replica with `threads`
  /// workers, re-apply the log tail (ids > cp.mutation_id), advance to
  /// `until` and return the replica's fingerprint.
  [[nodiscard]] static Result<std::map<std::string, double>>
  replay_fingerprint(LiveConfig config, const FleetCheckpoint& cp,
                     const std::vector<Mutation>& full_log, Timestamp until,
                     std::size_t threads);

 private:
  struct Home;
  /// What a hibernated home leaves behind for the operator plane: its last
  /// telemetry snapshot and device table, served until the home pages back.
  struct Frozen {
    std::map<std::string, double> scalars;
    std::map<std::string, std::string> device_macs;
    std::size_t device_count = 0;
  };
  /// Worker -> driving-thread staging for one hibernation.
  struct HibernateOut {
    snapshot::SnapshotImage image;
    Frozen frozen;
    Timestamp next_wakeup = residency::ResidencyManager::kNever;
  };

  void start_workers();
  /// Runs job(worker_index) on every worker and waits for all of them; the
  /// mutex/condvar handshake is the happens-before edge for everything the
  /// driving thread reads afterwards. Inline when threads == 1.
  void run_on_workers(const std::function<void(std::size_t)>& job);
  void build_home(std::size_t id, const snapshot::SnapshotImage* resume);
  void apply_mutation(Home& h, const Mutation& m);
  void update_gauges(Home& h);
  [[nodiscard]] bool checkpoint_pending_at(Timestamp barrier) const;
  /// Owner-worker half of a hibernation: stamp FTAG, capture, freeze the
  /// operator view, peek the next event, tear the stack down.
  void hibernate_on_worker(std::size_t id, std::uint64_t capture_id);
  /// Driving-thread half: store the image, update records. Returns false
  /// when the worker produced nothing (home wasn't resident).
  bool finish_hibernate(std::size_t id, Timestamp barrier);
  /// Driving-thread record-keeping after a worker woke home `id`.
  void finish_wake(std::size_t id, Timestamp barrier);
  [[nodiscard]] bool aligned_barrier(Timestamp barrier) const;

  LiveConfig config_;
  std::size_t nthreads_ = 1;
  bool started_ = false;
  Timestamp now_ = 0;

  std::vector<std::unique_ptr<Home>> homes_;

  // Residency plane (docs/residency.md). store_/residency_ register their
  // gauges in the fleet-level registry, never in a per-home one, so the
  // determinism fingerprint (merged per-home scalars) stays untouched by
  // residency scheduling.
  std::shared_ptr<const residency::FleetProfile> profile_;
  residency::ImageStore store_;
  residency::ResidencyManager residency_;
  std::vector<std::optional<Frozen>> frozen_;
  std::vector<std::optional<HibernateOut>> hstage_;
  std::vector<std::optional<snapshot::SnapshotImage>> wake_images_;
  std::vector<std::uint64_t> wake_ns_;
  std::mutex touch_mu_;
  std::vector<std::uint32_t> touched_;
  std::size_t resident_peak_ = 0;

  // Mutation plumbing (driving thread, except inbox_ which submit() guards).
  std::mutex inbox_mu_;
  std::vector<Mutation> inbox_;
  std::vector<Mutation> pending_;             // stamped, not yet applied
  std::vector<Mutation> pending_checkpoints_; // stamped, not yet captured
  std::vector<Mutation> log_;
  std::vector<FleetCheckpoint> checkpoints_;
  std::uint64_t next_mutation_id_ = 1;
  std::uint64_t next_capture_id_ = 1;

  // Worker pool (empty when threads == 1; jobs run inline).
  std::vector<std::thread> workers_;
  std::mutex pool_mu_;
  std::condition_variable pool_cv_;
  std::function<void(std::size_t)> job_;
  std::uint64_t generation_ = 0;
  std::size_t done_ = 0;
  bool shutdown_ = false;

  struct Instruments {
    explicit Instruments(telemetry::MetricRegistry& reg)
        : steps{reg, "live.fleet.steps"},
          mutations{reg, "live.fleet.mutations"},
          captures{reg, "live.fleet.captures"},
          resumes{reg, "live.fleet.resumes"} {}
    telemetry::Counter steps;
    telemetry::Counter mutations;
    telemetry::Counter captures;
    telemetry::Counter resumes;
  } metrics_;
};

}  // namespace hw::live
