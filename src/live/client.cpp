#include "live/client.hpp"

namespace hw::live {

LiveClient::LiveClient(hwdb::rpc::RpcClient& rpc) : rpc_(rpc) {
  rpc_.on_delta(
      [this](const hwdb::rpc::DeltaPush& frame) { handle_delta(frame); });
}

void LiveClient::subscribe_series(std::string pattern, std::uint32_t home,
                                  std::uint32_t every, std::uint32_t max_queue,
                                  SubscribeCallback cb) {
  hwdb::rpc::SubscribeSeriesRequest req;
  req.pattern = std::move(pattern);
  req.home = home;
  req.every = every;
  req.max_queue = max_queue;
  rpc_.call(req, [this, cb = std::move(cb)](const hwdb::rpc::Response& resp) {
    if (!resp.ok || !resp.sub_id) {
      if (cb) cb(Error{resp.error.empty() ? "subscribe failed" : resp.error});
      return;
    }
    views_[*resp.sub_id].sub_id = *resp.sub_id;
    if (cb) cb(*resp.sub_id);
  });
}

void LiveClient::unsubscribe(std::uint64_t sub_id) {
  views_.erase(sub_id);
  rpc_.call(hwdb::rpc::UnsubscribeRequest{sub_id},
            [](const hwdb::rpc::Response&) {});
}

void LiveClient::mutate(const Mutation& m, MutateCallback cb) {
  rpc_.call(to_request(m),
            [cb = std::move(cb)](const hwdb::rpc::Response& resp) {
              if (!cb) return;
              cb(resp.ok, resp.applied_at.value_or(0), resp.error);
            });
}

const View* LiveClient::view(std::uint64_t sub_id) const {
  const auto it = views_.find(sub_id);
  return it == views_.end() ? nullptr : &it->second;
}

const View* LiveClient::sole_view() const {
  return views_.size() == 1 ? &views_.begin()->second : nullptr;
}

void LiveClient::handle_delta(const hwdb::rpc::DeltaPush& frame) {
  auto it = views_.find(frame.sub_id);
  if (it == views_.end()) return;  // unsubscribed, or sub response still lost
  View& v = it->second;

  // Seq gating: UDP may duplicate or reorder frames. An already-seen seq is
  // discarded (deltas carry absolute values, so re-applying one would be
  // harmless — but a *stale* duplicate arriving late would not be).
  if (frame.seq <= v.last_seq) {
    ++v.dups;
    return;
  }
  if (frame.seq != v.last_seq + 1 && v.last_seq != 0) {
    ++v.gaps;
    v.synced = false;
  }
  v.last_seq = frame.seq;
  v.dropped += frame.dropped;
  v.vtime = frame.vtime;

  if (frame.snapshot) {
    v.values.clear();
    for (const auto& [name, value] : frame.values) v.values[name] = value;
    v.synced = true;
  } else if (v.synced) {
    for (const auto& [name, value] : frame.values) v.values[name] = value;
  }
  // An unsynced delta is counted but not merged; the server's next snapshot
  // resynchronizes the view.
  ++v.frames;
  if (frame_) frame_(v);
}

}  // namespace hw::live
