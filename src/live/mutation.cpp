#include "live/mutation.hpp"

namespace hw::live {

const char* to_string(MutateKind kind) {
  switch (kind) {
    case MutateKind::Admit: return "admit";
    case MutateKind::Expel: return "expel";
    case MutateKind::ApplyPolicy: return "apply-policy";
    case MutateKind::RevokePolicy: return "revoke-policy";
    case MutateKind::Checkpoint: return "checkpoint";
    case MutateKind::InjectFault: return "inject-fault";
    case MutateKind::Pause: return "pause";
    case MutateKind::Resume: return "resume";
    case MutateKind::Step: return "step";
    case MutateKind::Replay: return "replay";
    case MutateKind::Hibernate: return "hibernate";
    case MutateKind::Wake: return "wake";
  }
  return "?";
}

Mutation admit(std::uint32_t home, std::string device) {
  Mutation m;
  m.kind = MutateKind::Admit;
  m.home = home;
  m.text = std::move(device);
  return m;
}

Mutation expel(std::uint32_t home, std::string device) {
  Mutation m;
  m.kind = MutateKind::Expel;
  m.home = home;
  m.text = std::move(device);
  return m;
}

Mutation quarantine(std::uint32_t home, const std::string& mac) {
  Mutation m;
  m.kind = MutateKind::ApplyPolicy;
  m.home = home;
  m.text = "live-q-" + mac;
  m.aux = "{\"id\":\"live-q-" + mac + "\",\"who\":{\"macs\":[\"" + mac +
          "\"]},\"block_network\":true}";
  return m;
}

Mutation release(std::uint32_t home, const std::string& mac) {
  Mutation m;
  m.kind = MutateKind::RevokePolicy;
  m.home = home;
  m.text = "live-q-" + mac;
  return m;
}

Mutation checkpoint() {
  Mutation m;
  m.kind = MutateKind::Checkpoint;
  m.home = kAllHomes;
  return m;
}

Mutation inject_fault(std::uint32_t home, std::string kind, double loss,
                      Duration offset, Duration duration) {
  Mutation m;
  m.kind = MutateKind::InjectFault;
  m.home = home;
  m.text = std::move(kind);
  m.aux = std::to_string(loss);
  m.arg0 = static_cast<std::uint64_t>(offset);
  m.arg1 = static_cast<std::uint64_t>(duration);
  return m;
}

Mutation pause() {
  Mutation m;
  m.kind = MutateKind::Pause;
  m.home = kAllHomes;
  return m;
}

Mutation resume_clock() {
  Mutation m;
  m.kind = MutateKind::Resume;
  m.home = kAllHomes;
  return m;
}

Mutation step(std::uint64_t barriers) {
  Mutation m;
  m.kind = MutateKind::Step;
  m.home = kAllHomes;
  m.arg0 = barriers;
  return m;
}

Mutation hibernate_home(std::uint32_t home) {
  Mutation m;
  m.kind = MutateKind::Hibernate;
  m.home = home;
  return m;
}

Mutation wake_home(std::uint32_t home) {
  Mutation m;
  m.kind = MutateKind::Wake;
  m.home = home;
  return m;
}

hwdb::rpc::MutateRequest to_request(const Mutation& m) {
  hwdb::rpc::MutateRequest req;
  req.kind = m.kind;
  req.home = m.home;
  req.text = m.text;
  req.aux = m.aux;
  req.arg0 = m.arg0;
  req.arg1 = m.arg1;
  return req;
}

Mutation from_request(const hwdb::rpc::MutateRequest& req) {
  Mutation m;
  m.kind = req.kind;
  m.home = req.home;
  m.text = req.text;
  m.aux = req.aux;
  m.arg0 = req.arg0;
  m.arg1 = req.arg1;
  return m;
}

}  // namespace hw::live
