// USB storage key model + udev-style monitor. The paper's Figure 4 flow:
// "When the user plugs a USB storage device with appropriate filesystem
// layout into the router, it enables specific devices to connect to the
// network as well as limiting access to specified web-hosted services."
//
// Key layout (paths within the key's filesystem image):
//   homework/token            — the unlock token string (one line)
//   homework/policies/<n>.json — zero or more policy documents to install
//
// A key can therefore (a) carry an unlock token that suspends policies whose
// unlock_token matches, and/or (b) install new policies while inserted.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "policy/policy.hpp"

namespace hw::policy {

/// In-memory filesystem image of a USB key: path → file contents.
class UsbKeyImage {
 public:
  UsbKeyImage() = default;

  void write_file(std::string path, std::string contents) {
    files_[std::move(path)] = std::move(contents);
  }
  [[nodiscard]] const std::string* read_file(const std::string& path) const {
    auto it = files_.find(path);
    return it == files_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] std::vector<std::string> list(const std::string& prefix) const;
  [[nodiscard]] std::size_t file_count() const { return files_.size(); }

  /// Builds a well-formed policy key (convenience for tests/examples).
  static UsbKeyImage make_key(const std::string& token,
                              const std::vector<PolicyDocument>& policies);

 private:
  std::map<std::string, std::string> files_;
};

/// Parse result of an inserted key.
struct ParsedKey {
  std::string token;  // empty if no token file
  std::vector<PolicyDocument> policies;
};

/// Validates the "appropriate filesystem layout" and extracts the payload.
/// A key missing the homework/ directory entirely is rejected (it is just a
/// storage stick, not a policy key).
Result<ParsedKey> parse_policy_key(const UsbKeyImage& image);

/// udev-style hotplug monitor: devices are inserted/removed by the platform
/// (or tests); observers get ordered insert/remove callbacks with the parsed
/// payload. Keys that fail validation raise on_invalid instead.
class UsbMonitor {
 public:
  using SlotId = std::uint32_t;
  using InsertHandler = std::function<void(SlotId, const ParsedKey&)>;
  using RemoveHandler = std::function<void(SlotId, const ParsedKey&)>;
  using InvalidHandler = std::function<void(SlotId, const std::string& reason)>;

  void on_insert(InsertHandler h) { on_insert_ = std::move(h); }
  void on_remove(RemoveHandler h) { on_remove_ = std::move(h); }
  void on_invalid(InvalidHandler h) { on_invalid_ = std::move(h); }

  /// Plugs a key in; returns the slot id (0 on validation failure).
  SlotId insert(const UsbKeyImage& image);
  /// Unplugs; returns false if the slot is empty.
  bool remove(SlotId slot);

  [[nodiscard]] std::vector<std::string> inserted_tokens() const;
  [[nodiscard]] std::size_t inserted_count() const { return slots_.size(); }

 private:
  std::map<SlotId, ParsedKey> slots_;
  SlotId next_slot_ = 1;
  InsertHandler on_insert_;
  RemoveHandler on_remove_;
  InvalidHandler on_invalid_;
};

}  // namespace hw::policy
