// The visual policy language behind Figure 4. A policy document is the
// machine form of the "cartoon" panels: who it applies to, which web sites
// are involved, when it applies, and what the USB key mediates. The canonical
// example from the paper: "the kids can only use Facebook on weekdays after
// they've finished their homework" — network and DNS restrictions on the
// kids' devices that are lifted only while a suitably responsible adult's
// USB key is inserted.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/result.hpp"
#include "util/types.hpp"

namespace hw::policy {

/// Panel 1: who the policy applies to. Devices are selected by MAC address
/// ("aa:bb:..") or by tag ("kids") assigned through the control interface.
struct DeviceSelector {
  std::vector<std::string> macs;
  std::vector<std::string> tags;

  [[nodiscard]] bool selects(const std::string& mac,
                             const std::vector<std::string>& device_tags) const;
};

/// Panel 2: which sites. Domains use the usual "*.example.com" wildcard.
enum class SiteRuleKind {
  AllowOnly,  // only the listed domains may be resolved/contacted
  Block,      // the listed domains are refused, everything else allowed
};

struct SiteRule {
  SiteRuleKind kind = SiteRuleKind::Block;
  std::vector<std::string> domains;
};

/// Panel 3: when. Days use 0=Sunday..6=Saturday; times are minutes from
/// midnight, local (virtual) time. An empty schedule means "always".
struct Schedule {
  std::vector<int> days;          // empty = every day
  int start_minute = 0;           // inclusive
  int end_minute = 24 * 60;       // exclusive

  /// True when the instant `t` (microseconds since the simulation epoch,
  /// where the epoch is taken to be midnight on `epoch_weekday`) is covered.
  [[nodiscard]] bool active_at(Timestamp t, int epoch_weekday) const;
  [[nodiscard]] bool always() const {
    return days.empty() && start_minute == 0 && end_minute == 24 * 60;
  }
};

/// Panel 4: what the USB key does when inserted.
enum class UnlockEffect {
  None,          // key has no effect on this policy
  LiftAll,       // key suspends the whole policy (the paper's example)
  LiftSiteRule,  // key suspends only the site restrictions
};

struct PolicyDocument {
  std::string id;
  std::string description;
  DeviceSelector who;
  SiteRule sites;
  Schedule when;
  bool block_network = false;  // deny all traffic while active (not just DNS)
  /// Per-device bandwidth cap in bits/second (0 = uncapped) — enforced by
  /// the router through OpenFlow enqueue actions onto policing queues.
  std::uint64_t rate_limit_bps = 0;
  UnlockEffect unlock = UnlockEffect::None;
  /// Token that must be present on the inserted key for unlock to apply.
  std::string unlock_token;

  /// JSON (de)serialization — the format stored on the USB key and accepted
  /// by POST /api/policy.
  static Result<PolicyDocument> from_json(const Json& j);
  [[nodiscard]] Json to_json() const;
};

}  // namespace hw::policy
