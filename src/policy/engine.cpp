#include "policy/engine.hpp"

#include "util/strings.hpp"

namespace hw::policy {

PolicyEngine::PolicyEngine(std::function<Timestamp()> now_fn)
    : now_fn_(std::move(now_fn)) {
  usb_.on_insert([this](UsbMonitor::SlotId slot, const ParsedKey& key) {
    // Policies carried by the key are installed for its insertion lifetime.
    std::vector<std::string> ids;
    for (const auto& doc : key.policies) {
      ids.push_back(doc.id);
      installed_[doc.id] = doc;
    }
    key_policies_[slot] = std::move(ids);
    notify();
  });
  usb_.on_remove([this](UsbMonitor::SlotId slot, const ParsedKey&) {
    auto it = key_policies_.find(slot);
    if (it != key_policies_.end()) {
      for (const auto& id : it->second) installed_.erase(id);
      key_policies_.erase(it);
    }
    notify();
  });
}

void PolicyEngine::install(PolicyDocument doc) {
  installed_[doc.id] = std::move(doc);
  notify();
}

bool PolicyEngine::uninstall(const std::string& id) {
  const bool erased = installed_.erase(id) > 0;
  if (erased) notify();
  return erased;
}

std::vector<const PolicyDocument*> PolicyEngine::policies() const {
  std::vector<const PolicyDocument*> out;
  out.reserve(installed_.size());
  for (const auto& [_, doc] : installed_) out.push_back(&doc);
  return out;
}

void PolicyEngine::set_tags(const std::string& mac,
                            std::vector<std::string> tags) {
  tags_[to_lower(mac)] = std::move(tags);
  notify();
}

std::vector<std::string> PolicyEngine::tags_of(const std::string& mac) const {
  auto it = tags_.find(to_lower(mac));
  return it == tags_.end() ? std::vector<std::string>{} : it->second;
}

EvalContext PolicyEngine::context() const {
  EvalContext ctx;
  ctx.now = now_fn_();
  ctx.epoch_weekday = epoch_weekday_;
  ctx.inserted_tokens = usb_.inserted_tokens();
  return ctx;
}

DeviceRestriction PolicyEngine::restriction_for(const std::string& mac) const {
  std::vector<PolicyDocument> docs;
  docs.reserve(installed_.size());
  for (const auto& [_, doc] : installed_) docs.push_back(doc);
  return compile_restriction(docs, to_lower(mac), tags_of(mac), context());
}

}  // namespace hw::policy
