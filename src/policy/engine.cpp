#include "policy/engine.hpp"

#include "util/strings.hpp"

namespace hw::policy {

PolicyEngine::PolicyEngine(std::function<Timestamp()> now_fn)
    : now_fn_(std::move(now_fn)) {
  usb_.on_insert([this](UsbMonitor::SlotId slot, const ParsedKey& key) {
    // Policies carried by the key are installed for its insertion lifetime.
    std::vector<std::string> ids;
    for (const auto& doc : key.policies) {
      ids.push_back(doc.id);
      installed_[doc.id] = doc;
    }
    key_policies_[slot] = std::move(ids);
    notify();
  });
  usb_.on_remove([this](UsbMonitor::SlotId slot, const ParsedKey&) {
    auto it = key_policies_.find(slot);
    if (it != key_policies_.end()) {
      for (const auto& id : it->second) installed_.erase(id);
      key_policies_.erase(it);
    }
    notify();
  });
}

void PolicyEngine::install(PolicyDocument doc) {
  installed_[doc.id] = std::move(doc);
  notify();
}

bool PolicyEngine::uninstall(const std::string& id) {
  const bool erased = installed_.erase(id) > 0;
  if (erased) notify();
  return erased;
}

std::vector<const PolicyDocument*> PolicyEngine::policies() const {
  std::vector<const PolicyDocument*> out;
  out.reserve(installed_.size());
  for (const auto& [_, doc] : installed_) out.push_back(&doc);
  return out;
}

void PolicyEngine::set_tags(const std::string& mac,
                            std::vector<std::string> tags) {
  tags_[to_lower(mac)] = std::move(tags);
  notify();
}

void PolicyEngine::set_tags(std::uint64_t dpid, const std::string& mac,
                            std::vector<std::string> tags) {
  dpid_tags_[dpid][to_lower(mac)] = std::move(tags);
  notify();
}

std::vector<std::string> PolicyEngine::tags_of(const std::string& mac) const {
  auto it = tags_.find(to_lower(mac));
  return it == tags_.end() ? std::vector<std::string>{} : it->second;
}

std::vector<std::string> PolicyEngine::tags_of(std::uint64_t dpid,
                                               const std::string& mac) const {
  std::vector<std::string> out = tags_of(mac);
  auto home = dpid_tags_.find(dpid);
  if (home != dpid_tags_.end()) {
    auto it = home->second.find(to_lower(mac));
    if (it != home->second.end()) {
      out.insert(out.end(), it->second.begin(), it->second.end());
    }
  }
  return out;
}

EvalContext PolicyEngine::context() const {
  EvalContext ctx;
  ctx.now = now_fn_();
  ctx.epoch_weekday = epoch_weekday_;
  ctx.inserted_tokens = usb_.inserted_tokens();
  return ctx;
}

DeviceRestriction PolicyEngine::restriction_for(const std::string& mac) const {
  std::vector<PolicyDocument> docs;
  docs.reserve(installed_.size());
  for (const auto& [_, doc] : installed_) docs.push_back(doc);
  return compile_restriction(docs, to_lower(mac), tags_of(mac), context());
}

DeviceRestriction PolicyEngine::restriction_for(std::uint64_t dpid,
                                                const std::string& mac) const {
  std::vector<PolicyDocument> docs;
  docs.reserve(installed_.size());
  for (const auto& [_, doc] : installed_) docs.push_back(doc);
  return compile_restriction(docs, to_lower(mac), tags_of(dpid, mac),
                             context());
}

namespace {

constexpr std::uint32_t kPolicyTag = snapshot::tag("PLCY");

void put_string_list(ByteWriter& w, const std::vector<std::string>& list) {
  w.u32(static_cast<std::uint32_t>(list.size()));
  for (const std::string& s : list) snapshot::put_string(w, s);
}

Result<std::vector<std::string>> get_string_list(ByteReader& r) {
  auto count = r.u32();
  if (!count) return count.error();
  std::vector<std::string> out;
  out.reserve(count.value());
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto s = snapshot::get_string(r);
    if (!s) return s.error();
    out.push_back(std::move(s).take());
  }
  return out;
}

}  // namespace

void PolicyEngine::save(snapshot::Writer& w) const {
  ByteWriter& c = w.begin_chunk(kPolicyTag);
  c.u32(static_cast<std::uint32_t>(epoch_weekday_));
  c.u32(static_cast<std::uint32_t>(installed_.size()));
  for (const auto& [id, doc] : installed_) {
    snapshot::put_string(c, id);
    snapshot::put_string(c, doc.to_json().dump());
  }
  c.u32(static_cast<std::uint32_t>(key_policies_.size()));
  for (const auto& [slot, ids] : key_policies_) {
    c.u32(slot);
    put_string_list(c, ids);
  }
  c.u32(static_cast<std::uint32_t>(tags_.size()));
  for (const auto& [mac, tags] : tags_) {
    snapshot::put_string(c, mac);
    put_string_list(c, tags);
  }
  c.u32(static_cast<std::uint32_t>(dpid_tags_.size()));
  for (const auto& [dpid, home] : dpid_tags_) {
    c.u64(dpid);
    c.u32(static_cast<std::uint32_t>(home.size()));
    for (const auto& [mac, tags] : home) {
      snapshot::put_string(c, mac);
      put_string_list(c, tags);
    }
  }
  w.end_chunk();
}

Status PolicyEngine::restore(const snapshot::Reader& r) {
  const Bytes* chunk = r.find(kPolicyTag);
  if (chunk == nullptr) return Status::success();
  ByteReader br(*chunk);
  auto weekday = br.u32();
  auto ndocs = br.u32();
  if (!weekday || !ndocs) return make_error("policy snapshot: truncated header");
  std::map<std::string, PolicyDocument> installed;
  for (std::uint32_t i = 0; i < ndocs.value(); ++i) {
    auto id = snapshot::get_string(br);
    auto text = snapshot::get_string(br);
    if (!id || !text) return make_error("policy snapshot: truncated document");
    auto json = Json::parse(text.value());
    if (!json) return json.error();
    auto doc = PolicyDocument::from_json(json.value());
    if (!doc) return doc.error();
    installed.emplace(std::move(id).take(), std::move(doc).take());
  }
  auto nslots = br.u32();
  if (!nslots) return nslots.error();
  std::map<UsbMonitor::SlotId, std::vector<std::string>> key_policies;
  for (std::uint32_t i = 0; i < nslots.value(); ++i) {
    auto slot = br.u32();
    if (!slot) return slot.error();
    auto ids = get_string_list(br);
    if (!ids) return ids.error();
    key_policies.emplace(slot.value(), std::move(ids).take());
  }
  auto ntags = br.u32();
  if (!ntags) return ntags.error();
  std::map<std::string, std::vector<std::string>> tags;
  for (std::uint32_t i = 0; i < ntags.value(); ++i) {
    auto mac = snapshot::get_string(br);
    if (!mac) return mac.error();
    auto list = get_string_list(br);
    if (!list) return list.error();
    tags.emplace(std::move(mac).take(), std::move(list).take());
  }
  auto nhomes = br.u32();
  if (!nhomes) return nhomes.error();
  std::map<std::uint64_t, std::map<std::string, std::vector<std::string>>>
      dpid_tags;
  for (std::uint32_t h = 0; h < nhomes.value(); ++h) {
    auto dpid = br.u64();
    auto nmacs = br.u32();
    if (!dpid || !nmacs) return make_error("policy snapshot: truncated home");
    auto& home = dpid_tags[dpid.value()];
    for (std::uint32_t i = 0; i < nmacs.value(); ++i) {
      auto mac = snapshot::get_string(br);
      if (!mac) return mac.error();
      auto list = get_string_list(br);
      if (!list) return list.error();
      home.emplace(std::move(mac).take(), std::move(list).take());
    }
  }
  epoch_weekday_ = static_cast<int>(weekday.value());
  installed_ = std::move(installed);
  key_policies_ = std::move(key_policies);
  tags_ = std::move(tags);
  dpid_tags_ = std::move(dpid_tags);
  return Status::success();
}

}  // namespace hw::policy
