#include "policy/usb.hpp"

#include "util/strings.hpp"

namespace hw::policy {

std::vector<std::string> UsbKeyImage::list(const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [path, _] : files_) {
    if (path.rfind(prefix, 0) == 0) out.push_back(path);
  }
  return out;
}

UsbKeyImage UsbKeyImage::make_key(const std::string& token,
                                  const std::vector<PolicyDocument>& policies) {
  UsbKeyImage img;
  if (!token.empty()) img.write_file("homework/token", token + "\n");
  int n = 0;
  for (const auto& p : policies) {
    img.write_file("homework/policies/" + std::to_string(n++) + ".json",
                   p.to_json().dump(2));
  }
  return img;
}

Result<ParsedKey> parse_policy_key(const UsbKeyImage& image) {
  const bool has_dir = !image.list("homework/").empty();
  if (!has_dir) return make_error("usb: no homework/ directory on key");

  ParsedKey key;
  if (const std::string* token = image.read_file("homework/token")) {
    key.token = std::string(trim(*token));
    if (key.token.empty()) return make_error("usb: empty token file");
  }
  for (const auto& path : image.list("homework/policies/")) {
    const std::string* contents = image.read_file(path);
    auto json = Json::parse(*contents);
    if (!json) return make_error("usb: " + path + ": " + json.error().message);
    auto doc = PolicyDocument::from_json(json.value());
    if (!doc) return make_error("usb: " + path + ": " + doc.error().message);
    key.policies.push_back(std::move(doc).take());
  }
  if (key.token.empty() && key.policies.empty()) {
    return make_error("usb: key carries neither token nor policies");
  }
  return key;
}

UsbMonitor::SlotId UsbMonitor::insert(const UsbKeyImage& image) {
  auto parsed = parse_policy_key(image);
  if (!parsed) {
    if (on_invalid_) on_invalid_(0, parsed.error().message);
    return 0;
  }
  const SlotId slot = next_slot_++;
  slots_[slot] = std::move(parsed).take();
  if (on_insert_) on_insert_(slot, slots_[slot]);
  return slot;
}

bool UsbMonitor::remove(SlotId slot) {
  auto it = slots_.find(slot);
  if (it == slots_.end()) return false;
  ParsedKey key = std::move(it->second);
  slots_.erase(it);
  if (on_remove_) on_remove_(slot, key);
  return true;
}

std::vector<std::string> UsbMonitor::inserted_tokens() const {
  std::vector<std::string> out;
  for (const auto& [_, key] : slots_) {
    if (!key.token.empty()) out.push_back(key.token);
  }
  return out;
}

}  // namespace hw::policy
