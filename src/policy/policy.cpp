#include "policy/policy.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace hw::policy {

bool DeviceSelector::selects(const std::string& mac,
                             const std::vector<std::string>& device_tags) const {
  for (const auto& m : macs) {
    if (iequals(m, mac)) return true;
  }
  for (const auto& t : tags) {
    for (const auto& dt : device_tags) {
      if (iequals(t, dt)) return true;
    }
  }
  return false;
}

bool Schedule::active_at(Timestamp t, int epoch_weekday) const {
  const std::uint64_t day_index = t / kDay;
  const int weekday = static_cast<int>((day_index + static_cast<std::uint64_t>(
                                                        epoch_weekday)) %
                                       7);
  if (!days.empty() &&
      std::find(days.begin(), days.end(), weekday) == days.end()) {
    return false;
  }
  const int minute = static_cast<int>((t % kDay) / kMinute);
  if (start_minute <= end_minute) {
    return minute >= start_minute && minute < end_minute;
  }
  // Wrapping window (e.g. 21:00–07:00).
  return minute >= start_minute || minute < end_minute;
}

namespace {

std::vector<std::string> string_list(const Json& j) {
  std::vector<std::string> out;
  for (const auto& v : j.as_array()) {
    if (v.is_string()) out.push_back(v.as_string());
  }
  return out;
}

Json to_json_list(const std::vector<std::string>& list) {
  JsonArray arr;
  for (const auto& s : list) arr.emplace_back(s);
  return Json(std::move(arr));
}

}  // namespace

Result<PolicyDocument> PolicyDocument::from_json(const Json& j) {
  if (!j.is_object()) return make_error("policy: expected object");
  PolicyDocument p;
  p.id = j["id"].as_string();
  if (p.id.empty()) return make_error("policy: missing id");
  p.description = j["description"].as_string();

  const Json& who = j["who"];
  p.who.macs = string_list(who["macs"]);
  p.who.tags = string_list(who["tags"]);
  if (p.who.macs.empty() && p.who.tags.empty()) {
    return make_error("policy: selector selects nothing");
  }

  const Json& sites = j["sites"];
  if (!sites.is_null()) {
    const std::string kind = sites["kind"].as_string();
    if (iequals(kind, "allow_only")) {
      p.sites.kind = SiteRuleKind::AllowOnly;
    } else if (iequals(kind, "block") || kind.empty()) {
      p.sites.kind = SiteRuleKind::Block;
    } else {
      return make_error("policy: bad site rule kind: " + kind);
    }
    p.sites.domains = string_list(sites["domains"]);
  }

  const Json& when = j["when"];
  if (!when.is_null()) {
    for (const auto& d : when["days"].as_array()) {
      const int day = static_cast<int>(d.as_int(-1));
      if (day < 0 || day > 6) return make_error("policy: bad weekday");
      p.when.days.push_back(day);
    }
    if (when.contains("start_minute")) {
      p.when.start_minute = static_cast<int>(when["start_minute"].as_int());
    }
    if (when.contains("end_minute")) {
      p.when.end_minute = static_cast<int>(when["end_minute"].as_int());
    }
    if (p.when.start_minute < 0 || p.when.start_minute > 24 * 60 ||
        p.when.end_minute < 0 || p.when.end_minute > 24 * 60) {
      return make_error("policy: schedule minutes out of range");
    }
  }

  p.block_network = j["block_network"].as_bool(false);
  if (j.contains("rate_limit_bps")) {
    const auto rate = j["rate_limit_bps"].as_int(-1);
    if (rate < 0) return make_error("policy: bad rate_limit_bps");
    p.rate_limit_bps = static_cast<std::uint64_t>(rate);
  }

  const std::string unlock = j["unlock"].as_string();
  if (unlock.empty() || iequals(unlock, "none")) {
    p.unlock = UnlockEffect::None;
  } else if (iequals(unlock, "lift_all")) {
    p.unlock = UnlockEffect::LiftAll;
  } else if (iequals(unlock, "lift_sites")) {
    p.unlock = UnlockEffect::LiftSiteRule;
  } else {
    return make_error("policy: bad unlock effect: " + unlock);
  }
  p.unlock_token = j["unlock_token"].as_string();
  if (p.unlock != UnlockEffect::None && p.unlock_token.empty()) {
    return make_error("policy: unlock effect requires unlock_token");
  }
  return p;
}

Json PolicyDocument::to_json() const {
  Json j(JsonObject{});
  j.set("id", id);
  j.set("description", description);
  Json who(JsonObject{});
  who.set("macs", to_json_list(this->who.macs));
  who.set("tags", to_json_list(this->who.tags));
  j.set("who", std::move(who));
  Json sites(JsonObject{});
  sites.set("kind",
            this->sites.kind == SiteRuleKind::AllowOnly ? "allow_only" : "block");
  sites.set("domains", to_json_list(this->sites.domains));
  j.set("sites", std::move(sites));
  Json when(JsonObject{});
  JsonArray days;
  for (int d : this->when.days) days.emplace_back(d);
  when.set("days", Json(std::move(days)));
  when.set("start_minute", this->when.start_minute);
  when.set("end_minute", this->when.end_minute);
  j.set("when", std::move(when));
  j.set("block_network", block_network);
  j.set("rate_limit_bps", static_cast<std::int64_t>(rate_limit_bps));
  j.set("unlock", unlock == UnlockEffect::None       ? "none"
                  : unlock == UnlockEffect::LiftAll  ? "lift_all"
                                                     : "lift_sites");
  j.set("unlock_token", unlock_token);
  return j;
}

}  // namespace hw::policy
