#include "policy/compiler.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace hw::policy {

bool DeviceRestriction::domain_allowed(const std::string& domain) const {
  if (allow_only) {
    return std::any_of(allowed_domains.begin(), allowed_domains.end(),
                       [&](const std::string& pattern) {
                         return domain_matches(domain, pattern);
                       });
  }
  return std::none_of(blocked_domains.begin(), blocked_domains.end(),
                      [&](const std::string& pattern) {
                        return domain_matches(domain, pattern);
                      });
}

bool policy_unlocked(const PolicyDocument& p, const EvalContext& ctx) {
  if (p.unlock == UnlockEffect::None) return false;
  return std::any_of(ctx.inserted_tokens.begin(), ctx.inserted_tokens.end(),
                     [&](const std::string& t) { return t == p.unlock_token; });
}

namespace {

/// Folds one policy into a restriction (shared by both overloads).
void fold_policy(const PolicyDocument& p, const std::string& mac,
                 const std::vector<std::string>& tags, const EvalContext& ctx,
                 DeviceRestriction& r) {
  if (!p.who.selects(mac, tags)) return;
  if (!p.when.active_at(ctx.now, ctx.epoch_weekday)) return;
  const bool unlocked = policy_unlocked(p, ctx);
  if (unlocked && p.unlock == UnlockEffect::LiftAll) return;

  r.sources.push_back(p.id);
  if (p.block_network) r.network_blocked = true;
  if (p.rate_limit_bps > 0 &&
      (r.rate_limit_bps == 0 || p.rate_limit_bps < r.rate_limit_bps)) {
    r.rate_limit_bps = p.rate_limit_bps;
  }

  const bool sites_lifted = unlocked && p.unlock == UnlockEffect::LiftSiteRule;
  if (sites_lifted || p.sites.domains.empty()) return;

  if (p.sites.kind == SiteRuleKind::AllowOnly) {
    r.allow_only = true;
    r.allowed_domains.insert(r.allowed_domains.end(), p.sites.domains.begin(),
                             p.sites.domains.end());
  } else {
    r.blocked_domains.insert(r.blocked_domains.end(), p.sites.domains.begin(),
                             p.sites.domains.end());
  }
}

}  // namespace

DeviceRestriction compile_restriction(const std::vector<PolicyDocument>& policies,
                                      const std::string& mac,
                                      const std::vector<std::string>& tags,
                                      const EvalContext& ctx) {
  DeviceRestriction r;
  for (const auto& p : policies) fold_policy(p, mac, tags, ctx, r);
  return r;
}

DeviceRestriction compile_restriction(
    const std::vector<const PolicyDocument*>& policies, const std::string& mac,
    const std::vector<std::string>& tags, const EvalContext& ctx) {
  DeviceRestriction r;
  for (const PolicyDocument* p : policies) fold_policy(*p, mac, tags, ctx, r);
  return r;
}

std::vector<LoweredStatement> lower_policies(
    const std::vector<const PolicyDocument*>& policies,
    std::vector<LoweredDevice> devices, const EvalContext& ctx) {
  std::sort(devices.begin(), devices.end(),
            [](const LoweredDevice& a, const LoweredDevice& b) {
              return a.mac < b.mac;
            });
  std::vector<LoweredStatement> out;
  for (const LoweredDevice& dev : devices) {
    const DeviceRestriction r =
        compile_restriction(policies, dev.mac, dev.tags, ctx);
    if (r.network_blocked) {
      LoweredStatement s;
      s.verb = LoweredStatement::Verb::BlockNetwork;
      s.mac = dev.mac;
      s.ip = dev.ip;
      s.sources = r.sources;
      out.push_back(std::move(s));
    }
    if (r.rate_limit_bps > 0) {
      LoweredStatement s;
      s.verb = LoweredStatement::Verb::RateLimit;
      s.mac = dev.mac;
      s.ip = dev.ip;
      s.rate_bps = r.rate_limit_bps;
      s.sources = r.sources;
      out.push_back(std::move(s));
    }
  }
  return out;
}

}  // namespace hw::policy
