#include "policy/compiler.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace hw::policy {

bool DeviceRestriction::domain_allowed(const std::string& domain) const {
  if (allow_only) {
    return std::any_of(allowed_domains.begin(), allowed_domains.end(),
                       [&](const std::string& pattern) {
                         return domain_matches(domain, pattern);
                       });
  }
  return std::none_of(blocked_domains.begin(), blocked_domains.end(),
                      [&](const std::string& pattern) {
                        return domain_matches(domain, pattern);
                      });
}

bool policy_unlocked(const PolicyDocument& p, const EvalContext& ctx) {
  if (p.unlock == UnlockEffect::None) return false;
  return std::any_of(ctx.inserted_tokens.begin(), ctx.inserted_tokens.end(),
                     [&](const std::string& t) { return t == p.unlock_token; });
}

DeviceRestriction compile_restriction(const std::vector<PolicyDocument>& policies,
                                      const std::string& mac,
                                      const std::vector<std::string>& tags,
                                      const EvalContext& ctx) {
  DeviceRestriction r;
  for (const auto& p : policies) {
    if (!p.who.selects(mac, tags)) continue;
    if (!p.when.active_at(ctx.now, ctx.epoch_weekday)) continue;
    const bool unlocked = policy_unlocked(p, ctx);
    if (unlocked && p.unlock == UnlockEffect::LiftAll) continue;

    r.sources.push_back(p.id);
    if (p.block_network) r.network_blocked = true;
    if (p.rate_limit_bps > 0 &&
        (r.rate_limit_bps == 0 || p.rate_limit_bps < r.rate_limit_bps)) {
      r.rate_limit_bps = p.rate_limit_bps;
    }

    const bool sites_lifted = unlocked && p.unlock == UnlockEffect::LiftSiteRule;
    if (sites_lifted || p.sites.domains.empty()) continue;

    if (p.sites.kind == SiteRuleKind::AllowOnly) {
      r.allow_only = true;
      r.allowed_domains.insert(r.allowed_domains.end(), p.sites.domains.begin(),
                               p.sites.domains.end());
    } else {
      r.blocked_domains.insert(r.blocked_domains.end(), p.sites.domains.begin(),
                               p.sites.domains.end());
    }
  }
  return r;
}

}  // namespace hw::policy
