// PolicyEngine: the live policy state of the router. Owns installed policy
// documents (from the control API and from inserted USB keys), the USB
// monitor, and per-device tags; answers the two questions the enforcement
// path asks — "may this device use the network now?" and "may this device
// talk to this domain now?" — and notifies listeners when any answer may
// have changed so flows/DNS state can be re-evaluated.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "policy/compiler.hpp"
#include "policy/usb.hpp"
#include "snapshot/snapshottable.hpp"

namespace hw::policy {

class PolicyEngine final : public snapshot::Snapshottable {
 public:
  /// `now_fn` supplies virtual time for schedule evaluation.
  explicit PolicyEngine(std::function<Timestamp()> now_fn);

  // -- Policy management -------------------------------------------------------
  /// Installs or replaces (by id) a persistent policy.
  void install(PolicyDocument doc);
  /// Removes a persistent policy; false if unknown.
  bool uninstall(const std::string& id);
  [[nodiscard]] std::vector<const PolicyDocument*> policies() const;

  // -- Device tags ("the kids") ----------------------------------------------
  // Tags come in two buckets: global (single-home compat, applied in every
  // home) and per-datapath (a shared controller serving many homes tags each
  // home's devices independently). Queries merge both.
  void set_tags(const std::string& mac, std::vector<std::string> tags);
  void set_tags(std::uint64_t dpid, const std::string& mac,
                std::vector<std::string> tags);
  [[nodiscard]] std::vector<std::string> tags_of(const std::string& mac) const;
  [[nodiscard]] std::vector<std::string> tags_of(std::uint64_t dpid,
                                                 const std::string& mac) const;

  // -- USB mediation ------------------------------------------------------------
  [[nodiscard]] UsbMonitor& usb() { return usb_; }

  // -- Enforcement queries ------------------------------------------------------
  [[nodiscard]] DeviceRestriction restriction_for(const std::string& mac) const;
  [[nodiscard]] DeviceRestriction restriction_for(std::uint64_t dpid,
                                                  const std::string& mac) const;
  [[nodiscard]] bool network_allowed(const std::string& mac) const {
    return !restriction_for(mac).network_blocked;
  }
  [[nodiscard]] bool network_allowed(std::uint64_t dpid,
                                     const std::string& mac) const {
    return !restriction_for(dpid, mac).network_blocked;
  }
  [[nodiscard]] bool domain_allowed(const std::string& mac,
                                    const std::string& domain) const {
    const auto r = restriction_for(mac);
    return !r.network_blocked && r.domain_allowed(domain);
  }
  [[nodiscard]] bool domain_allowed(std::uint64_t dpid, const std::string& mac,
                                    const std::string& domain) const {
    const auto r = restriction_for(dpid, mac);
    return !r.network_blocked && r.domain_allowed(domain);
  }

  /// Fired whenever policy state changed (install/uninstall/usb/tags): the
  /// enforcement layer revokes cached flows and DNS verdicts, and the
  /// reconciler recompiles desired state. Listeners accumulate and run in
  /// registration order.
  void on_change(std::function<void()> fn) {
    on_change_.push_back(std::move(fn));
  }

  /// The current evaluation inputs (virtual time, weekday, inserted unlock
  /// tokens) — what the lowering pass needs alongside policies().
  [[nodiscard]] EvalContext eval_context() const { return context(); }

  [[nodiscard]] int epoch_weekday() const { return epoch_weekday_; }
  void set_epoch_weekday(int weekday) { epoch_weekday_ = weekday; }

  // -- Snapshottable ('PLCY' chunk) -------------------------------------------
  // Captures installed documents (as their JSON form), key-slot bindings,
  // device tags and the epoch weekday. Restore is silent: the on_change
  // listener is NOT fired — the restoring home re-evaluates enforcement
  // through its own warm-restart path.
  void save(snapshot::Writer& w) const override;
  Status restore(const snapshot::Reader& r) override;

 private:
  void notify() {
    for (const auto& fn : on_change_) fn();
  }
  [[nodiscard]] EvalContext context() const;

  std::function<Timestamp()> now_fn_;
  std::map<std::string, PolicyDocument> installed_;
  /// Policies installed by an inserted key, keyed by slot (removed with it).
  std::map<UsbMonitor::SlotId, std::vector<std::string>> key_policies_;
  std::map<std::string, std::vector<std::string>> tags_;  // global bucket
  std::map<std::uint64_t, std::map<std::string, std::vector<std::string>>>
      dpid_tags_;
  UsbMonitor usb_;
  std::vector<std::function<void()>> on_change_;
  int epoch_weekday_ = 1;  // Monday
};

}  // namespace hw::policy
