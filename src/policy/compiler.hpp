// Compiles policy documents into the per-device restriction set the router
// enforces: "This is mapped to per-device network and DNS access
// restrictions" (paper §1).
#pragma once

#include <string>
#include <vector>

#include "policy/policy.hpp"

namespace hw::policy {

/// The effective restriction for one device at one instant.
struct DeviceRestriction {
  bool network_blocked = false;
  /// Tightest bandwidth cap among active policies (0 = uncapped).
  std::uint64_t rate_limit_bps = 0;
  /// When true, only `allowed_domains` resolve; otherwise everything except
  /// `blocked_domains` resolves.
  bool allow_only = false;
  std::vector<std::string> allowed_domains;
  std::vector<std::string> blocked_domains;
  /// Policy ids that contributed (for UI display / debugging).
  std::vector<std::string> sources;

  [[nodiscard]] bool unrestricted() const {
    return !network_blocked && !allow_only && blocked_domains.empty() &&
           rate_limit_bps == 0;
  }
  /// May this device resolve/contact `domain`?
  [[nodiscard]] bool domain_allowed(const std::string& domain) const;
};

/// Evaluation inputs that change over time.
struct EvalContext {
  Timestamp now = 0;
  int epoch_weekday = 1;  // simulation epoch is a Monday by default
  /// Unlock tokens present on currently inserted USB keys.
  std::vector<std::string> inserted_tokens;
};

/// Computes the effective restriction of `mac` (with `tags`) under a policy
/// set. Multiple matching policies compose: network blocks OR together;
/// allow-only lists intersect semantics are approximated by unioning
/// allow-lists and switching to allow-only if any active policy demands it.
DeviceRestriction compile_restriction(const std::vector<PolicyDocument>& policies,
                                      const std::string& mac,
                                      const std::vector<std::string>& tags,
                                      const EvalContext& ctx);

/// True if `p` is currently suspended by an inserted unlock token.
bool policy_unlocked(const PolicyDocument& p, const EvalContext& ctx);

}  // namespace hw::policy
