// Compiles policy documents into the per-device restriction set the router
// enforces: "This is mapped to per-device network and DNS access
// restrictions" (paper §1).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "policy/policy.hpp"
#include "util/addr.hpp"

namespace hw::policy {

/// The effective restriction for one device at one instant.
struct DeviceRestriction {
  bool network_blocked = false;
  /// Tightest bandwidth cap among active policies (0 = uncapped).
  std::uint64_t rate_limit_bps = 0;
  /// When true, only `allowed_domains` resolve; otherwise everything except
  /// `blocked_domains` resolves.
  bool allow_only = false;
  std::vector<std::string> allowed_domains;
  std::vector<std::string> blocked_domains;
  /// Policy ids that contributed (for UI display / debugging).
  std::vector<std::string> sources;

  [[nodiscard]] bool unrestricted() const {
    return !network_blocked && !allow_only && blocked_domains.empty() &&
           rate_limit_bps == 0;
  }
  /// May this device resolve/contact `domain`?
  [[nodiscard]] bool domain_allowed(const std::string& domain) const;
};

/// Evaluation inputs that change over time.
struct EvalContext {
  Timestamp now = 0;
  int epoch_weekday = 1;  // simulation epoch is a Monday by default
  /// Unlock tokens present on currently inserted USB keys.
  std::vector<std::string> inserted_tokens;
};

/// Computes the effective restriction of `mac` (with `tags`) under a policy
/// set. Multiple matching policies compose: network blocks OR together;
/// allow-only lists intersect semantics are approximated by unioning
/// allow-lists and switching to allow-only if any active policy demands it.
DeviceRestriction compile_restriction(const std::vector<PolicyDocument>& policies,
                                      const std::string& mac,
                                      const std::vector<std::string>& tags,
                                      const EvalContext& ctx);
/// Pointer-set overload (the PolicyEngine's view of its installed set).
DeviceRestriction compile_restriction(
    const std::vector<const PolicyDocument*>& policies, const std::string& mac,
    const std::vector<std::string>& tags, const EvalContext& ctx);

/// True if `p` is currently suspended by an inserted unlock token.
bool policy_unlocked(const PolicyDocument& p, const EvalContext& ctx);

// ---------------------------------------------------------------------------
// Lowering stage: rule documents → imperative desired-state statements.
//
// The reconciler feeds the home's device population in, and each statement
// comes back as something it can turn directly into a desired-state entry —
// a drop-flow pair for a network block, a QoS intent for a rate cap. DNS
// restrictions stay in the DNS proxy's verdict path (they gate lookups, not
// flows) and are deliberately not lowered.

/// One device as the lowering pass sees it.
struct LoweredDevice {
  std::string mac;
  std::vector<std::string> tags;
  /// Leased address, when bound — needed to materialize drop flows.
  std::optional<Ipv4Address> ip;
};

/// One imperative statement compiled from the active policy set.
struct LoweredStatement {
  enum class Verb : std::uint8_t { BlockNetwork, RateLimit };
  Verb verb = Verb::BlockNetwork;
  std::string mac;
  std::optional<Ipv4Address> ip;       // set when the device holds a lease
  std::uint64_t rate_bps = 0;          // RateLimit only
  std::vector<std::string> sources;    // contributing policy ids
};

/// Lowers the active policy set over a device population into statements,
/// in deterministic (mac-sorted) order.
std::vector<LoweredStatement> lower_policies(
    const std::vector<const PolicyDocument*>& policies,
    std::vector<LoweredDevice> devices, const EvalContext& ctx);

}  // namespace hw::policy
