#include "net/app_map.hpp"

#include <algorithm>

namespace hw::net {
namespace {

bool port_is(const FiveTuple& t, std::uint16_t port) {
  return t.src_port == port || t.dst_port == port;
}

bool port_in(const FiveTuple& t, std::initializer_list<std::uint16_t> ports) {
  return std::any_of(ports.begin(), ports.end(),
                     [&](std::uint16_t p) { return port_is(t, p); });
}

}  // namespace

AppProtocol classify_app(const FiveTuple& t) {
  if (t.protocol == 1) return AppProtocol::Icmp;
  if (t.protocol == 17 && (port_is(t, 67) || port_is(t, 68))) return AppProtocol::Dhcp;
  if (port_is(t, 53)) return AppProtocol::Dns;
  if (port_is(t, 80) || port_is(t, 8080)) return AppProtocol::Web;
  if (port_is(t, 443) || port_is(t, 8443)) return AppProtocol::WebSecure;
  if (port_in(t, {25, 110, 143, 465, 587, 993, 995})) return AppProtocol::Email;
  if (port_in(t, {554, 1935, 5004, 5005, 8554})) return AppProtocol::Streaming;
  if (port_in(t, {5060, 5061})) return AppProtocol::VoIP;
  if (port_in(t, {3074, 3478, 3479, 3658, 27015, 27016})) return AppProtocol::Gaming;
  if (port_in(t, {20, 21, 139, 445, 548}) ||
      (t.dst_port >= 6881 && t.dst_port <= 6889) ||
      (t.src_port >= 6881 && t.src_port <= 6889)) {
    return AppProtocol::FileShare;
  }
  return AppProtocol::Other;
}

std::string app_protocol_name(AppProtocol app) {
  switch (app) {
    case AppProtocol::Web: return "web";
    case AppProtocol::WebSecure: return "web-tls";
    case AppProtocol::Dns: return "dns";
    case AppProtocol::Email: return "email";
    case AppProtocol::Streaming: return "streaming";
    case AppProtocol::Gaming: return "gaming";
    case AppProtocol::VoIP: return "voip";
    case AppProtocol::FileShare: return "fileshare";
    case AppProtocol::Dhcp: return "dhcp";
    case AppProtocol::Icmp: return "icmp";
    case AppProtocol::Other: return "other";
  }
  return "other";
}

}  // namespace hw::net
