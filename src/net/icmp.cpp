#include "net/icmp.hpp"

namespace hw::net {

Result<IcmpHeader> IcmpHeader::parse(ByteReader& r) {
  IcmpHeader h;
  auto type = r.u8();
  if (!type) return type.error();
  h.type = static_cast<IcmpType>(type.value());
  auto code = r.u8();
  if (!code) return code.error();
  h.code = code.value();
  if (auto c = r.u16(); !c) return c.error();  // checksum
  auto ident = r.u16();
  if (!ident) return ident.error();
  h.identifier = ident.value();
  auto seq = r.u16();
  if (!seq) return seq.error();
  h.sequence = seq.value();
  return h;
}

void IcmpHeader::serialize(ByteWriter& w) const {
  w.u8(static_cast<std::uint8_t>(type));
  w.u8(code);
  w.u16(0);  // checksum elided in the simulator
  w.u16(identifier);
  w.u16(sequence);
}

}  // namespace hw::net
