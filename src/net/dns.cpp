#include "net/dns.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace hw::net {
namespace {

constexpr std::uint16_t kFlagResponse = 0x8000;
constexpr std::uint16_t kFlagAuthoritative = 0x0400;
constexpr std::uint16_t kFlagRecursionDesired = 0x0100;
constexpr std::uint16_t kFlagRecursionAvailable = 0x0080;

/// Parses a possibly-compressed domain name starting at reader position.
/// `whole` is the full message for pointer chasing.
Result<std::string> parse_name(ByteReader& r, std::span<const std::uint8_t> whole) {
  std::string out;
  int jumps = 0;
  // Local cursor within `whole` once we follow a pointer.
  std::size_t cursor = 0;
  bool jumped = false;

  auto read_byte = [&](std::uint8_t& b) -> bool {
    if (!jumped) {
      auto v = r.u8();
      if (!v) return false;
      b = v.value();
      return true;
    }
    if (cursor >= whole.size()) return false;
    b = whole[cursor++];
    return true;
  };

  while (true) {
    std::uint8_t len = 0;
    if (!read_byte(len)) return make_error("DNS: truncated name");
    if (len == 0) break;
    if ((len & 0xc0) == 0xc0) {
      std::uint8_t lo = 0;
      if (!read_byte(lo)) return make_error("DNS: truncated pointer");
      const std::size_t offset = (static_cast<std::size_t>(len & 0x3f) << 8) | lo;
      if (offset >= whole.size()) return make_error("DNS: pointer out of range");
      if (++jumps > 16) return make_error("DNS: pointer loop");
      cursor = offset;
      jumped = true;
      continue;
    }
    if (len > 63) return make_error("DNS: label too long");
    if (!out.empty()) out += '.';
    for (std::uint8_t i = 0; i < len; ++i) {
      std::uint8_t c = 0;
      if (!read_byte(c)) return make_error("DNS: truncated label");
      out += static_cast<char>(std::tolower(c));
    }
    if (out.size() > 253) return make_error("DNS: name too long");
  }
  return out;
}

void write_name(ByteWriter& w, const std::string& name) {
  if (!name.empty()) {
    for (const auto& label : split(name, '.')) {
      const std::size_t len = std::min<std::size_t>(label.size(), 63);
      w.u8(static_cast<std::uint8_t>(len));
      w.raw(label.data(), len);
    }
  }
  w.u8(0);
}

Result<DnsRecord> parse_record(ByteReader& r, std::span<const std::uint8_t> whole) {
  DnsRecord rec;
  auto name = parse_name(r, whole);
  if (!name) return name.error();
  rec.name = std::move(name).take();
  auto rtype = r.u16();
  if (!rtype) return rtype.error();
  rec.rtype = static_cast<DnsType>(rtype.value());
  auto rclass = r.u16();
  if (!rclass) return rclass.error();
  rec.rclass = rclass.value();
  auto ttl = r.u32();
  if (!ttl) return ttl.error();
  rec.ttl = ttl.value();
  auto rdlen = r.u16();
  if (!rdlen) return rdlen.error();

  switch (rec.rtype) {
    case DnsType::A: {
      if (rdlen.value() != 4) return make_error("DNS: bad A rdata length");
      auto addr = r.u32();
      if (!addr) return addr.error();
      rec.address = Ipv4Address{addr.value()};
      break;
    }
    case DnsType::Cname:
    case DnsType::Ptr:
    case DnsType::Ns: {
      auto target = parse_name(r, whole);
      if (!target) return target.error();
      rec.target = std::move(target).take();
      break;
    }
    default: {
      auto raw = r.raw(rdlen.value());
      if (!raw) return raw.error();
      rec.rdata = std::move(raw).take();
      break;
    }
  }
  return rec;
}

void write_record(ByteWriter& w, const DnsRecord& rec) {
  write_name(w, rec.name);
  w.u16(static_cast<std::uint16_t>(rec.rtype));
  w.u16(rec.rclass);
  w.u32(rec.ttl);
  switch (rec.rtype) {
    case DnsType::A:
      w.u16(4);
      w.u32(rec.address.value());
      break;
    case DnsType::Cname:
    case DnsType::Ptr:
    case DnsType::Ns: {
      ByteWriter tmp;
      write_name(tmp, rec.target);
      w.u16(static_cast<std::uint16_t>(tmp.size()));
      w.raw(tmp.bytes());
      break;
    }
    default:
      w.u16(static_cast<std::uint16_t>(rec.rdata.size()));
      w.raw(rec.rdata);
      break;
  }
}

}  // namespace

DnsRecord DnsRecord::a(std::string name, Ipv4Address addr, std::uint32_t ttl) {
  DnsRecord r;
  r.name = std::move(name);
  r.rtype = DnsType::A;
  r.ttl = ttl;
  r.address = addr;
  return r;
}

DnsRecord DnsRecord::cname(std::string name, std::string target, std::uint32_t ttl) {
  DnsRecord r;
  r.name = std::move(name);
  r.rtype = DnsType::Cname;
  r.ttl = ttl;
  r.target = std::move(target);
  return r;
}

DnsRecord DnsRecord::ptr(std::string name, std::string target, std::uint32_t ttl) {
  DnsRecord r;
  r.name = std::move(name);
  r.rtype = DnsType::Ptr;
  r.ttl = ttl;
  r.target = std::move(target);
  return r;
}

Result<DnsMessage> DnsMessage::parse(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  DnsMessage m;
  auto id = r.u16();
  if (!id) return id.error();
  m.id = id.value();
  auto flags = r.u16();
  if (!flags) return flags.error();
  m.is_response = (flags.value() & kFlagResponse) != 0;
  m.authoritative = (flags.value() & kFlagAuthoritative) != 0;
  m.recursion_desired = (flags.value() & kFlagRecursionDesired) != 0;
  m.recursion_available = (flags.value() & kFlagRecursionAvailable) != 0;
  m.rcode = static_cast<DnsRcode>(flags.value() & 0x0f);

  auto qd = r.u16();
  if (!qd) return qd.error();
  auto an = r.u16();
  if (!an) return an.error();
  auto ns = r.u16();
  if (!ns) return ns.error();
  auto ar = r.u16();
  if (!ar) return ar.error();

  // Sanity cap: a home-router DNS message never carries thousands of records.
  if (qd.value() > 32 || an.value() > 256 || ns.value() > 256 || ar.value() > 256) {
    return make_error("DNS: implausible section counts");
  }

  for (int i = 0; i < qd.value(); ++i) {
    DnsQuestion q;
    auto name = parse_name(r, payload);
    if (!name) return name.error();
    q.name = std::move(name).take();
    auto qtype = r.u16();
    if (!qtype) return qtype.error();
    q.qtype = static_cast<DnsType>(qtype.value());
    auto qclass = r.u16();
    if (!qclass) return qclass.error();
    q.qclass = qclass.value();
    m.questions.push_back(std::move(q));
  }
  for (int i = 0; i < an.value(); ++i) {
    auto rec = parse_record(r, payload);
    if (!rec) return rec.error();
    m.answers.push_back(std::move(rec).take());
  }
  for (int i = 0; i < ns.value(); ++i) {
    auto rec = parse_record(r, payload);
    if (!rec) return rec.error();
    m.authorities.push_back(std::move(rec).take());
  }
  for (int i = 0; i < ar.value(); ++i) {
    auto rec = parse_record(r, payload);
    if (!rec) return rec.error();
    m.additionals.push_back(std::move(rec).take());
  }
  return m;
}

Bytes DnsMessage::serialize() const {
  ByteWriter w(128);
  w.u16(id);
  std::uint16_t flags = 0;
  if (is_response) flags |= kFlagResponse;
  if (authoritative) flags |= kFlagAuthoritative;
  if (recursion_desired) flags |= kFlagRecursionDesired;
  if (recursion_available) flags |= kFlagRecursionAvailable;
  flags |= static_cast<std::uint16_t>(rcode);
  w.u16(flags);
  w.u16(static_cast<std::uint16_t>(questions.size()));
  w.u16(static_cast<std::uint16_t>(answers.size()));
  w.u16(static_cast<std::uint16_t>(authorities.size()));
  w.u16(static_cast<std::uint16_t>(additionals.size()));
  for (const auto& q : questions) {
    write_name(w, q.name);
    w.u16(static_cast<std::uint16_t>(q.qtype));
    w.u16(q.qclass);
  }
  for (const auto& rec : answers) write_record(w, rec);
  for (const auto& rec : authorities) write_record(w, rec);
  for (const auto& rec : additionals) write_record(w, rec);
  return std::move(w).take();
}

DnsMessage DnsMessage::query(std::uint16_t id, std::string name, DnsType qtype) {
  DnsMessage m;
  m.id = id;
  m.is_response = false;
  m.questions.push_back(DnsQuestion{to_lower(name), qtype, 1});
  return m;
}

DnsMessage DnsMessage::make_response() const {
  DnsMessage resp;
  resp.id = id;
  resp.is_response = true;
  resp.recursion_desired = recursion_desired;
  resp.recursion_available = true;
  resp.questions = questions;
  return resp;
}

std::string DnsMessage::reverse_name(Ipv4Address addr) {
  const std::uint32_t v = addr.value();
  return std::to_string(v & 0xff) + "." + std::to_string((v >> 8) & 0xff) + "." +
         std::to_string((v >> 16) & 0xff) + "." + std::to_string(v >> 24) +
         ".in-addr.arpa";
}

}  // namespace hw::net
