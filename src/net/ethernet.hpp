// Ethernet II framing.
#pragma once

#include <cstdint>
#include <span>

#include "util/addr.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"

namespace hw::net {

enum class EtherType : std::uint16_t {
  Ipv4 = 0x0800,
  Arp = 0x0806,
  Vlan = 0x8100,
  Ipv6 = 0x86dd,
};

inline constexpr std::size_t kEthernetHeaderSize = 14;
inline constexpr std::size_t kMaxFrameSize = 1518;

struct EthernetHeader {
  MacAddress dst;
  MacAddress src;
  std::uint16_t ethertype = 0;

  static Result<EthernetHeader> parse(ByteReader& r);
  void serialize(ByteWriter& w) const;

  [[nodiscard]] EtherType type() const { return static_cast<EtherType>(ethertype); }
};

}  // namespace hw::net
