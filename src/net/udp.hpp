// UDP header (RFC 768).
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace hw::net {

inline constexpr std::size_t kUdpHeaderSize = 8;

struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;  // header + payload; filled by serialize when 0

  static Result<UdpHeader> parse(ByteReader& r);
  void serialize(ByteWriter& w, std::size_t payload_len) const;
};

}  // namespace hw::net
