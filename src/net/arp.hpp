// ARP (RFC 826) for Ethernet/IPv4.
#pragma once

#include "util/addr.hpp"
#include "util/bytes.hpp"

namespace hw::net {

enum class ArpOp : std::uint16_t { Request = 1, Reply = 2 };

struct ArpMessage {
  ArpOp op = ArpOp::Request;
  MacAddress sender_mac;
  Ipv4Address sender_ip;
  MacAddress target_mac;
  Ipv4Address target_ip;

  static Result<ArpMessage> parse(ByteReader& r);
  void serialize(ByteWriter& w) const;
};

}  // namespace hw::net
