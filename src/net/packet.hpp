// Whole-frame construction and dissection. Frames travel through the system
// as raw bytes (as on a real wire); ParsedPacket is the dissected view used
// by the datapath's flow extraction and by the NOX modules.
#pragma once

#include <optional>
#include <string>

#include "net/arp.hpp"
#include "net/ethernet.hpp"
#include "net/icmp.hpp"
#include "net/ipv4.hpp"
#include "net/tcp.hpp"
#include "net/udp.hpp"
#include "util/bytes.hpp"

namespace hw::net {

/// Classic 5-tuple identifying a flow (the rows of hwdb's Flows table).
struct FiveTuple {
  Ipv4Address src_ip;
  Ipv4Address dst_ip;
  std::uint8_t protocol = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;

  auto operator<=>(const FiveTuple&) const = default;
  [[nodiscard]] FiveTuple reversed() const {
    return {dst_ip, src_ip, protocol, dst_port, src_port};
  }
  [[nodiscard]] std::string to_string() const;
};

/// Dissected frame: layers are present as far as parsing succeeded.
struct ParsedPacket {
  EthernetHeader eth;
  std::optional<ArpMessage> arp;
  std::optional<Ipv4Header> ip;
  std::optional<UdpHeader> udp;
  std::optional<TcpHeader> tcp;
  std::optional<IcmpHeader> icmp;
  /// L4 payload (UDP data / TCP segment data), view into the original frame.
  Bytes l4_payload;
  std::size_t frame_size = 0;

  /// Dissects as deep as the frame allows; the Ethernet layer must parse or
  /// an error is returned. Unknown ethertypes/protocols keep outer layers.
  static Result<ParsedPacket> parse(std::span<const std::uint8_t> frame);

  [[nodiscard]] bool is_ipv4() const { return ip.has_value(); }
  [[nodiscard]] std::optional<FiveTuple> five_tuple() const;
  /// True for UDP src/dst port 67/68 BOOTP traffic.
  [[nodiscard]] bool is_dhcp() const;
  /// True for UDP port 53 traffic.
  [[nodiscard]] bool is_dns() const;
};

/// Frame builders used by simulated hosts and by the router's packet-outs.
Bytes build_ethernet(MacAddress src, MacAddress dst, EtherType type,
                     std::span<const std::uint8_t> payload);
Bytes build_arp(const ArpMessage& arp);
Bytes build_udp(MacAddress src_mac, MacAddress dst_mac, Ipv4Address src_ip,
                Ipv4Address dst_ip, std::uint16_t src_port, std::uint16_t dst_port,
                std::span<const std::uint8_t> payload, std::uint8_t ttl = 64);
Bytes build_tcp(MacAddress src_mac, MacAddress dst_mac, Ipv4Address src_ip,
                Ipv4Address dst_ip, const TcpHeader& tcp,
                std::span<const std::uint8_t> payload);
Bytes build_icmp_echo(MacAddress src_mac, MacAddress dst_mac, Ipv4Address src_ip,
                      Ipv4Address dst_ip, IcmpType type, std::uint16_t ident,
                      std::uint16_t seq);

/// DHCP frames are UDP broadcasts until the client has an address.
Bytes build_dhcp_frame(MacAddress src_mac, MacAddress dst_mac, Ipv4Address src_ip,
                       Ipv4Address dst_ip, bool from_client,
                       std::span<const std::uint8_t> dhcp_payload);

}  // namespace hw::net

template <>
struct std::hash<hw::net::FiveTuple> {
  std::size_t operator()(const hw::net::FiveTuple& t) const noexcept {
    std::uint64_t h = t.src_ip.value();
    h = h * 0x100000001b3ull ^ t.dst_ip.value();
    h = h * 0x100000001b3ull ^ t.protocol;
    h = h * 0x100000001b3ull ^ (static_cast<std::uint32_t>(t.src_port) << 16 | t.dst_port);
    return static_cast<std::size_t>(h);
  }
};
