// ICMP echo (ping) subset — used for reachability checks in examples/tests.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace hw::net {

enum class IcmpType : std::uint8_t {
  EchoReply = 0,
  DestinationUnreachable = 3,
  EchoRequest = 8,
};

struct IcmpHeader {
  IcmpType type = IcmpType::EchoRequest;
  std::uint8_t code = 0;
  std::uint16_t identifier = 0;
  std::uint16_t sequence = 0;

  static Result<IcmpHeader> parse(ByteReader& r);
  void serialize(ByteWriter& w) const;
};

}  // namespace hw::net
