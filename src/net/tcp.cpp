#include "net/tcp.hpp"

namespace hw::net {

Result<TcpHeader> TcpHeader::parse(ByteReader& r) {
  TcpHeader h;
  auto sp = r.u16();
  if (!sp) return sp.error();
  h.src_port = sp.value();
  auto dp = r.u16();
  if (!dp) return dp.error();
  h.dst_port = dp.value();
  auto seq = r.u32();
  if (!seq) return seq.error();
  h.seq = seq.value();
  auto ack = r.u32();
  if (!ack) return ack.error();
  h.ack = ack.value();
  auto off_flags = r.u16();
  if (!off_flags) return off_flags.error();
  const std::size_t data_offset = ((off_flags.value() >> 12) & 0xf) * 4u;
  if (data_offset < kTcpMinHeaderSize) return make_error("TCP: bad data offset");
  h.flags = static_cast<std::uint8_t>(off_flags.value() & 0x3f);
  auto window = r.u16();
  if (!window) return window.error();
  h.window = window.value();
  if (auto c = r.u16(); !c) return c.error();  // checksum
  if (auto u = r.u16(); !u) return u.error();  // urgent pointer
  if (auto s = r.skip(data_offset - kTcpMinHeaderSize); !s.ok()) return s.error();
  return h;
}

void TcpHeader::serialize(ByteWriter& w) const {
  w.u16(src_port);
  w.u16(dst_port);
  w.u32(seq);
  w.u32(ack);
  w.u16(static_cast<std::uint16_t>((5u << 12) | flags));
  w.u16(window);
  w.u16(0);  // checksum elided in the simulator
  w.u16(0);  // urgent
}

}  // namespace hw::net
