#include "net/arp.hpp"

namespace hw::net {
namespace {

Result<MacAddress> read_mac(ByteReader& r) {
  auto raw = r.raw(6);
  if (!raw) return raw.error();
  std::array<std::uint8_t, 6> octets{};
  std::copy(raw.value().begin(), raw.value().end(), octets.begin());
  return MacAddress{octets};
}

}  // namespace

Result<ArpMessage> ArpMessage::parse(ByteReader& r) {
  auto htype = r.u16();
  if (!htype) return htype.error();
  auto ptype = r.u16();
  if (!ptype) return ptype.error();
  auto hlen = r.u8();
  if (!hlen) return hlen.error();
  auto plen = r.u8();
  if (!plen) return plen.error();
  if (htype.value() != 1 || ptype.value() != 0x0800 || hlen.value() != 6 ||
      plen.value() != 4) {
    return make_error("ARP: unsupported hardware/protocol type");
  }
  auto op = r.u16();
  if (!op) return op.error();
  if (op.value() != 1 && op.value() != 2) return make_error("ARP: bad opcode");

  ArpMessage m;
  m.op = static_cast<ArpOp>(op.value());
  auto smac = read_mac(r);
  if (!smac) return smac.error();
  m.sender_mac = smac.value();
  auto sip = r.u32();
  if (!sip) return sip.error();
  m.sender_ip = Ipv4Address{sip.value()};
  auto tmac = read_mac(r);
  if (!tmac) return tmac.error();
  m.target_mac = tmac.value();
  auto tip = r.u32();
  if (!tip) return tip.error();
  m.target_ip = Ipv4Address{tip.value()};
  return m;
}

void ArpMessage::serialize(ByteWriter& w) const {
  w.u16(1);       // Ethernet
  w.u16(0x0800);  // IPv4
  w.u8(6);
  w.u8(4);
  w.u16(static_cast<std::uint16_t>(op));
  w.raw(sender_mac.octets().data(), 6);
  w.u32(sender_ip.value());
  w.raw(target_mac.octets().data(), 6);
  w.u32(target_ip.value());
}

}  // namespace hw::net
