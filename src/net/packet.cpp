#include "net/packet.hpp"

#include "net/dhcp.hpp"

namespace hw::net {

std::string FiveTuple::to_string() const {
  const char* proto_name = protocol == 6 ? "tcp" : protocol == 17 ? "udp"
                           : protocol == 1 ? "icmp" : "ip";
  return src_ip.to_string() + ":" + std::to_string(src_port) + " -> " +
         dst_ip.to_string() + ":" + std::to_string(dst_port) + " (" + proto_name +
         ")";
}

Result<ParsedPacket> ParsedPacket::parse(std::span<const std::uint8_t> frame) {
  ByteReader r(frame);
  ParsedPacket p;
  p.frame_size = frame.size();

  auto eth = EthernetHeader::parse(r);
  if (!eth) return eth.error();
  p.eth = eth.value();

  switch (p.eth.type()) {
    case EtherType::Arp: {
      auto arp = ArpMessage::parse(r);
      if (!arp) return arp.error();
      p.arp = arp.value();
      return p;
    }
    case EtherType::Ipv4:
      break;
    default:
      return p;  // unknown L3: Ethernet view only
  }

  auto ip = Ipv4Header::parse(r);
  if (!ip) return ip.error();
  p.ip = ip.value();

  switch (p.ip->proto()) {
    case IpProto::Udp: {
      auto udp = UdpHeader::parse(r);
      if (!udp) return udp.error();
      p.udp = udp.value();
      const std::size_t payload_len = p.udp->length > kUdpHeaderSize
                                          ? p.udp->length - kUdpHeaderSize
                                          : 0;
      auto payload = r.raw(std::min(payload_len, r.remaining()));
      if (!payload) return payload.error();
      p.l4_payload = std::move(payload).take();
      break;
    }
    case IpProto::Tcp: {
      auto tcp = TcpHeader::parse(r);
      if (!tcp) return tcp.error();
      p.tcp = tcp.value();
      auto payload = r.raw(r.remaining());
      if (!payload) return payload.error();
      p.l4_payload = std::move(payload).take();
      break;
    }
    case IpProto::Icmp: {
      auto icmp = IcmpHeader::parse(r);
      if (!icmp) return icmp.error();
      p.icmp = icmp.value();
      break;
    }
    default:
      break;
  }
  return p;
}

std::optional<FiveTuple> ParsedPacket::five_tuple() const {
  if (!ip) return std::nullopt;
  FiveTuple t;
  t.src_ip = ip->src;
  t.dst_ip = ip->dst;
  t.protocol = ip->protocol;
  if (udp) {
    t.src_port = udp->src_port;
    t.dst_port = udp->dst_port;
  } else if (tcp) {
    t.src_port = tcp->src_port;
    t.dst_port = tcp->dst_port;
  }
  return t;
}

bool ParsedPacket::is_dhcp() const {
  return udp && ((udp->src_port == 68 && udp->dst_port == 67) ||
                 (udp->src_port == 67 && udp->dst_port == 68));
}

bool ParsedPacket::is_dns() const {
  return udp && (udp->src_port == 53 || udp->dst_port == 53);
}

Bytes build_ethernet(MacAddress src, MacAddress dst, EtherType type,
                     std::span<const std::uint8_t> payload) {
  ByteWriter w(kEthernetHeaderSize + payload.size());
  EthernetHeader{dst, src, static_cast<std::uint16_t>(type)}.serialize(w);
  w.raw(payload);
  return std::move(w).take();
}

Bytes build_arp(const ArpMessage& arp) {
  ByteWriter body;
  arp.serialize(body);
  const MacAddress dst =
      arp.op == ArpOp::Request ? MacAddress::broadcast() : arp.target_mac;
  return build_ethernet(arp.sender_mac, dst, EtherType::Arp, body.bytes());
}

Bytes build_udp(MacAddress src_mac, MacAddress dst_mac, Ipv4Address src_ip,
                Ipv4Address dst_ip, std::uint16_t src_port, std::uint16_t dst_port,
                std::span<const std::uint8_t> payload, std::uint8_t ttl) {
  ByteWriter w(kEthernetHeaderSize + kIpv4MinHeaderSize + kUdpHeaderSize +
               payload.size());
  EthernetHeader{dst_mac, src_mac, static_cast<std::uint16_t>(EtherType::Ipv4)}
      .serialize(w);
  Ipv4Header ip;
  ip.src = src_ip;
  ip.dst = dst_ip;
  ip.ttl = ttl;
  ip.protocol = static_cast<std::uint8_t>(IpProto::Udp);
  ip.serialize(w, kUdpHeaderSize + payload.size());
  UdpHeader{src_port, dst_port, 0}.serialize(w, payload.size());
  w.raw(payload);
  return std::move(w).take();
}

Bytes build_tcp(MacAddress src_mac, MacAddress dst_mac, Ipv4Address src_ip,
                Ipv4Address dst_ip, const TcpHeader& tcp,
                std::span<const std::uint8_t> payload) {
  ByteWriter w(kEthernetHeaderSize + kIpv4MinHeaderSize + kTcpMinHeaderSize +
               payload.size());
  EthernetHeader{dst_mac, src_mac, static_cast<std::uint16_t>(EtherType::Ipv4)}
      .serialize(w);
  Ipv4Header ip;
  ip.src = src_ip;
  ip.dst = dst_ip;
  ip.protocol = static_cast<std::uint8_t>(IpProto::Tcp);
  ip.serialize(w, kTcpMinHeaderSize + payload.size());
  tcp.serialize(w);
  w.raw(payload);
  return std::move(w).take();
}

Bytes build_icmp_echo(MacAddress src_mac, MacAddress dst_mac, Ipv4Address src_ip,
                      Ipv4Address dst_ip, IcmpType type, std::uint16_t ident,
                      std::uint16_t seq) {
  ByteWriter w;
  EthernetHeader{dst_mac, src_mac, static_cast<std::uint16_t>(EtherType::Ipv4)}
      .serialize(w);
  Ipv4Header ip;
  ip.src = src_ip;
  ip.dst = dst_ip;
  ip.protocol = static_cast<std::uint8_t>(IpProto::Icmp);
  ip.serialize(w, 8);
  IcmpHeader{type, 0, ident, seq}.serialize(w);
  return std::move(w).take();
}

Bytes build_dhcp_frame(MacAddress src_mac, MacAddress dst_mac, Ipv4Address src_ip,
                       Ipv4Address dst_ip, bool from_client,
                       std::span<const std::uint8_t> dhcp_payload) {
  const std::uint16_t sport = from_client ? kDhcpClientPort : kDhcpServerPort;
  const std::uint16_t dport = from_client ? kDhcpServerPort : kDhcpClientPort;
  return build_udp(src_mac, dst_mac, src_ip, dst_ip, sport, dport, dhcp_payload);
}

}  // namespace hw::net
