// The paper's "imperfect application–protocol mapping" (§1): the bandwidth
// UI groups traffic per application by mapping protocol/port to an app label.
#pragma once

#include <cstdint>
#include <string>

#include "net/packet.hpp"

namespace hw::net {

/// Application categories shown by the Figure 1 interface.
enum class AppProtocol {
  Web,        // HTTP 80
  WebSecure,  // HTTPS 443
  Dns,        // 53
  Email,      // 25/110/143/465/587/993/995
  Streaming,  // RTSP/RTP/1935 and video CDN heuristics
  Gaming,     // common console ports
  VoIP,       // SIP 5060/5061
  FileShare,  // SMB/AFP/FTP/BitTorrent range
  Dhcp,
  Icmp,
  Other,
};

/// Best-effort classification from the 5-tuple. Deliberately imperfect, as
/// the paper notes — e.g. all TCP/443 is "WebSecure" even if it is video.
AppProtocol classify_app(const FiveTuple& t);

/// Human-readable label ("web", "dns", ...), stable across runs; used as the
/// protocol key in hwdb Flows aggregation and the UI.
std::string app_protocol_name(AppProtocol app);

}  // namespace hw::net
