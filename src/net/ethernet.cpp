#include "net/ethernet.hpp"

namespace hw::net {

Result<EthernetHeader> EthernetHeader::parse(ByteReader& r) {
  auto dst = r.raw(6);
  if (!dst) return dst.error();
  auto src = r.raw(6);
  if (!src) return src.error();
  auto ethertype = r.u16();
  if (!ethertype) return ethertype.error();

  EthernetHeader h;
  std::array<std::uint8_t, 6> octets{};
  std::copy(dst.value().begin(), dst.value().end(), octets.begin());
  h.dst = MacAddress{octets};
  std::copy(src.value().begin(), src.value().end(), octets.begin());
  h.src = MacAddress{octets};
  h.ethertype = ethertype.value();
  return h;
}

void EthernetHeader::serialize(ByteWriter& w) const {
  w.raw(dst.octets().data(), 6);
  w.raw(src.octets().data(), 6);
  w.u16(ethertype);
}

}  // namespace hw::net
