#include "net/ipv4.hpp"

#include "net/checksum.hpp"

namespace hw::net {

Result<Ipv4Header> Ipv4Header::parse(ByteReader& r) {
  const std::size_t header_start = r.position();
  auto ver_ihl = r.u8();
  if (!ver_ihl) return ver_ihl.error();
  const std::uint8_t version = ver_ihl.value() >> 4;
  const std::size_t ihl = (ver_ihl.value() & 0x0f) * 4u;
  if (version != 4) return make_error("IPv4: bad version");
  if (ihl < kIpv4MinHeaderSize) return make_error("IPv4: bad IHL");

  Ipv4Header h;
  auto dscp = r.u8();
  if (!dscp) return dscp.error();
  h.dscp = dscp.value();
  auto total_length = r.u16();
  if (!total_length) return total_length.error();
  h.total_length = total_length.value();
  if (h.total_length < ihl) return make_error("IPv4: total length < header");
  auto ident = r.u16();
  if (!ident) return ident.error();
  h.identification = ident.value();
  auto flags_frag = r.u16();
  if (!flags_frag) return flags_frag.error();
  auto ttl = r.u8();
  if (!ttl) return ttl.error();
  h.ttl = ttl.value();
  auto proto = r.u8();
  if (!proto) return proto.error();
  h.protocol = proto.value();
  auto checksum = r.u16();
  if (!checksum) return checksum.error();
  auto src = r.u32();
  if (!src) return src.error();
  h.src = Ipv4Address{src.value()};
  auto dst = r.u32();
  if (!dst) return dst.error();
  h.dst = Ipv4Address{dst.value()};
  // Skip options.
  if (auto s = r.skip(ihl - kIpv4MinHeaderSize); !s.ok()) return s.error();
  (void)header_start;
  return h;
}

void Ipv4Header::serialize(ByteWriter& w, std::size_t payload_len) const {
  ByteWriter hdr(kIpv4MinHeaderSize);
  hdr.u8(0x45);  // version 4, IHL 5
  hdr.u8(dscp);
  const std::uint16_t len =
      total_length != 0
          ? total_length
          : static_cast<std::uint16_t>(kIpv4MinHeaderSize + payload_len);
  hdr.u16(len);
  hdr.u16(identification);
  hdr.u16(0x4000);  // DF, no fragmentation in the home LAN model
  hdr.u8(ttl);
  hdr.u8(protocol);
  hdr.u16(0);  // checksum placeholder
  hdr.u32(src.value());
  hdr.u32(dst.value());
  Bytes bytes = std::move(hdr).take();
  const std::uint16_t sum = internet_checksum(bytes);
  bytes[10] = static_cast<std::uint8_t>(sum >> 8);
  bytes[11] = static_cast<std::uint8_t>(sum);
  w.raw(bytes);
}

}  // namespace hw::net
