#include "net/dhcp.hpp"

namespace hw::net {
namespace {

constexpr std::uint32_t kMagicCookie = 0x63825363;
constexpr std::size_t kChaddrLen = 16;
constexpr std::size_t kSnameLen = 64;
constexpr std::size_t kFileLen = 128;

}  // namespace

Result<DhcpMessage> DhcpMessage::parse(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  DhcpMessage m;

  auto op = r.u8();
  if (!op) return op.error();
  if (op.value() != 1 && op.value() != 2) return make_error("DHCP: bad op");
  m.is_request = op.value() == 1;

  auto htype = r.u8();
  if (!htype) return htype.error();
  auto hlen = r.u8();
  if (!hlen) return hlen.error();
  if (htype.value() != 1 || hlen.value() != 6) {
    return make_error("DHCP: unsupported hardware type");
  }
  if (auto hops = r.u8(); !hops) return hops.error();
  auto xid = r.u32();
  if (!xid) return xid.error();
  m.xid = xid.value();
  auto secs = r.u16();
  if (!secs) return secs.error();
  m.secs = secs.value();
  auto flags = r.u16();
  if (!flags) return flags.error();
  m.broadcast_flag = (flags.value() & 0x8000) != 0;

  auto ciaddr = r.u32();
  if (!ciaddr) return ciaddr.error();
  m.ciaddr = Ipv4Address{ciaddr.value()};
  auto yiaddr = r.u32();
  if (!yiaddr) return yiaddr.error();
  m.yiaddr = Ipv4Address{yiaddr.value()};
  auto siaddr = r.u32();
  if (!siaddr) return siaddr.error();
  m.siaddr = Ipv4Address{siaddr.value()};
  auto giaddr = r.u32();
  if (!giaddr) return giaddr.error();
  m.giaddr = Ipv4Address{giaddr.value()};

  auto chaddr = r.raw(kChaddrLen);
  if (!chaddr) return chaddr.error();
  std::array<std::uint8_t, 6> mac{};
  std::copy_n(chaddr.value().begin(), 6, mac.begin());
  m.chaddr = MacAddress{mac};

  if (auto s = r.skip(kSnameLen + kFileLen); !s.ok()) return s.error();

  auto cookie = r.u32();
  if (!cookie) return cookie.error();
  if (cookie.value() != kMagicCookie) return make_error("DHCP: bad magic cookie");

  bool saw_message_type = false;
  while (!r.empty()) {
    auto code = r.u8();
    if (!code) return code.error();
    const auto opt = static_cast<DhcpOption>(code.value());
    if (opt == DhcpOption::Pad) continue;
    if (opt == DhcpOption::End) break;
    auto len = r.u8();
    if (!len) return len.error();
    auto body = r.view(len.value());
    if (!body) return body.error();
    ByteReader br(body.value());

    switch (opt) {
      case DhcpOption::MessageType: {
        auto t = br.u8();
        if (!t) return t.error();
        if (t.value() < 1 || t.value() > 8) return make_error("DHCP: bad message type");
        m.message_type = static_cast<DhcpMessageType>(t.value());
        saw_message_type = true;
        break;
      }
      case DhcpOption::RequestedIp: {
        auto v = br.u32();
        if (!v) return v.error();
        m.requested_ip = Ipv4Address{v.value()};
        break;
      }
      case DhcpOption::ServerIdentifier: {
        auto v = br.u32();
        if (!v) return v.error();
        m.server_identifier = Ipv4Address{v.value()};
        break;
      }
      case DhcpOption::LeaseTime: {
        auto v = br.u32();
        if (!v) return v.error();
        m.lease_time_secs = v.value();
        break;
      }
      case DhcpOption::SubnetMask: {
        auto v = br.u32();
        if (!v) return v.error();
        m.subnet_mask = Ipv4Address{v.value()};
        break;
      }
      case DhcpOption::Router: {
        auto v = br.u32();
        if (!v) return v.error();
        m.router = Ipv4Address{v.value()};
        break;
      }
      case DhcpOption::DnsServer: {
        while (br.remaining() >= 4) {
          auto v = br.u32();
          if (!v) return v.error();
          m.dns_servers.push_back(Ipv4Address{v.value()});
        }
        break;
      }
      case DhcpOption::Hostname: {
        auto s = br.fixed_string(br.remaining());
        if (!s) return s.error();
        m.hostname = std::move(s).take();
        break;
      }
      default:
        break;  // ignore unknown options (ParameterRequestList etc.)
    }
  }
  if (!saw_message_type) return make_error("DHCP: missing message type option");
  return m;
}

Bytes DhcpMessage::serialize() const {
  ByteWriter w(300);
  w.u8(is_request ? 1 : 2);
  w.u8(1);  // Ethernet
  w.u8(6);
  w.u8(0);  // hops
  w.u32(xid);
  w.u16(secs);
  w.u16(broadcast_flag ? 0x8000 : 0);
  w.u32(ciaddr.value());
  w.u32(yiaddr.value());
  w.u32(siaddr.value());
  w.u32(giaddr.value());
  w.raw(chaddr.octets().data(), 6);
  w.zeros(kChaddrLen - 6);
  w.zeros(kSnameLen + kFileLen);
  w.u32(kMagicCookie);

  auto put_opt_u8 = [&](DhcpOption opt, std::uint8_t v) {
    w.u8(static_cast<std::uint8_t>(opt));
    w.u8(1);
    w.u8(v);
  };
  auto put_opt_u32 = [&](DhcpOption opt, std::uint32_t v) {
    w.u8(static_cast<std::uint8_t>(opt));
    w.u8(4);
    w.u32(v);
  };

  put_opt_u8(DhcpOption::MessageType, static_cast<std::uint8_t>(message_type));
  if (requested_ip) put_opt_u32(DhcpOption::RequestedIp, requested_ip->value());
  if (server_identifier) {
    put_opt_u32(DhcpOption::ServerIdentifier, server_identifier->value());
  }
  if (lease_time_secs) put_opt_u32(DhcpOption::LeaseTime, *lease_time_secs);
  if (subnet_mask) put_opt_u32(DhcpOption::SubnetMask, subnet_mask->value());
  if (router) put_opt_u32(DhcpOption::Router, router->value());
  if (!dns_servers.empty()) {
    w.u8(static_cast<std::uint8_t>(DhcpOption::DnsServer));
    w.u8(static_cast<std::uint8_t>(dns_servers.size() * 4));
    for (auto d : dns_servers) w.u32(d.value());
  }
  if (!hostname.empty()) {
    w.u8(static_cast<std::uint8_t>(DhcpOption::Hostname));
    w.u8(static_cast<std::uint8_t>(std::min<std::size_t>(hostname.size(), 255)));
    w.raw(hostname.data(), std::min<std::size_t>(hostname.size(), 255));
  }
  w.u8(static_cast<std::uint8_t>(DhcpOption::End));
  return std::move(w).take();
}

DhcpMessage DhcpMessage::discover(std::uint32_t xid, MacAddress mac,
                                  std::string hostname) {
  DhcpMessage m;
  m.is_request = true;
  m.xid = xid;
  m.chaddr = mac;
  m.broadcast_flag = true;
  m.message_type = DhcpMessageType::Discover;
  m.hostname = std::move(hostname);
  return m;
}

DhcpMessage DhcpMessage::request(std::uint32_t xid, MacAddress mac,
                                 Ipv4Address requested, Ipv4Address server,
                                 std::string hostname) {
  DhcpMessage m;
  m.is_request = true;
  m.xid = xid;
  m.chaddr = mac;
  m.broadcast_flag = true;
  m.message_type = DhcpMessageType::Request;
  m.requested_ip = requested;
  m.server_identifier = server;
  m.hostname = std::move(hostname);
  return m;
}

DhcpMessage DhcpMessage::release(std::uint32_t xid, MacAddress mac,
                                 Ipv4Address leased, Ipv4Address server) {
  DhcpMessage m;
  m.is_request = true;
  m.xid = xid;
  m.chaddr = mac;
  m.ciaddr = leased;
  m.message_type = DhcpMessageType::Release;
  m.server_identifier = server;
  return m;
}

}  // namespace hw::net
