// TCP header (RFC 793) — header-level model; the simulator generates segment
// streams rather than running a full congestion-controlled stack.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace hw::net {

inline constexpr std::size_t kTcpMinHeaderSize = 20;

struct TcpFlags {
  static constexpr std::uint8_t kFin = 0x01;
  static constexpr std::uint8_t kSyn = 0x02;
  static constexpr std::uint8_t kRst = 0x04;
  static constexpr std::uint8_t kPsh = 0x08;
  static constexpr std::uint8_t kAck = 0x10;
};

struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  std::uint16_t window = 65535;

  static Result<TcpHeader> parse(ByteReader& r);
  void serialize(ByteWriter& w) const;

  [[nodiscard]] bool syn() const { return flags & TcpFlags::kSyn; }
  [[nodiscard]] bool fin() const { return flags & TcpFlags::kFin; }
  [[nodiscard]] bool rst() const { return flags & TcpFlags::kRst; }
  [[nodiscard]] bool ack_set() const { return flags & TcpFlags::kAck; }
};

}  // namespace hw::net
