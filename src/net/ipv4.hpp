// IPv4 header (RFC 791), no options beyond padding, with checksum handling.
#pragma once

#include <cstdint>

#include "util/addr.hpp"
#include "util/bytes.hpp"

namespace hw::net {

enum class IpProto : std::uint8_t {
  Icmp = 1,
  Tcp = 6,
  Udp = 17,
};

inline constexpr std::size_t kIpv4MinHeaderSize = 20;

struct Ipv4Header {
  std::uint8_t dscp = 0;
  std::uint16_t total_length = 0;  // filled in by serialize when 0
  std::uint16_t identification = 0;
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 0;
  Ipv4Address src;
  Ipv4Address dst;

  /// Parses and verifies the header checksum.
  static Result<Ipv4Header> parse(ByteReader& r);
  /// Serializes with computed checksum. `payload_len` sets total_length.
  void serialize(ByteWriter& w, std::size_t payload_len) const;

  [[nodiscard]] IpProto proto() const { return static_cast<IpProto>(protocol); }
};

}  // namespace hw::net
