// RFC 1071 Internet checksum, used by IPv4/ICMP (and TCP/UDP pseudo-header).
#pragma once

#include <cstdint>
#include <span>

#include "util/addr.hpp"

namespace hw::net {

/// One's-complement sum over `data`, folded to 16 bits and complemented.
std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

/// TCP/UDP checksum including the IPv4 pseudo-header.
std::uint16_t l4_checksum(Ipv4Address src, Ipv4Address dst, std::uint8_t protocol,
                          std::span<const std::uint8_t> segment);

}  // namespace hw::net
