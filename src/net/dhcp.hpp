// DHCP message codec (RFC 2131/2132 subset used by home clients).
// The Homework DHCP server is a NOX module; clients' DISCOVER/REQUEST arrive
// as OpenFlow packet-ins and the server's OFFER/ACK leave as packet-outs, so
// full BOOTP + options wire fidelity matters.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/addr.hpp"
#include "util/bytes.hpp"

namespace hw::net {

inline constexpr std::uint16_t kDhcpServerPort = 67;
inline constexpr std::uint16_t kDhcpClientPort = 68;

enum class DhcpMessageType : std::uint8_t {
  Discover = 1,
  Offer = 2,
  Request = 3,
  Decline = 4,
  Ack = 5,
  Nak = 6,
  Release = 7,
  Inform = 8,
};

enum class DhcpOption : std::uint8_t {
  Pad = 0,
  SubnetMask = 1,
  Router = 3,
  DnsServer = 6,
  Hostname = 12,
  RequestedIp = 50,
  LeaseTime = 51,
  MessageType = 53,
  ServerIdentifier = 54,
  ParameterRequestList = 55,
  ClientIdentifier = 61,
  End = 255,
};

struct DhcpMessage {
  // BOOTP fixed fields.
  bool is_request = true;            // op: BOOTREQUEST / BOOTREPLY
  std::uint32_t xid = 0;             // transaction id
  std::uint16_t secs = 0;
  bool broadcast_flag = false;
  Ipv4Address ciaddr;                // client's current address
  Ipv4Address yiaddr;                // "your" address (assigned)
  Ipv4Address siaddr;                // next server
  Ipv4Address giaddr;                // relay agent
  MacAddress chaddr;                 // client hardware address

  // Decoded options.
  DhcpMessageType message_type = DhcpMessageType::Discover;
  std::optional<Ipv4Address> requested_ip;
  std::optional<Ipv4Address> server_identifier;
  std::optional<std::uint32_t> lease_time_secs;
  std::optional<Ipv4Address> subnet_mask;
  std::optional<Ipv4Address> router;
  std::vector<Ipv4Address> dns_servers;
  std::string hostname;

  static Result<DhcpMessage> parse(std::span<const std::uint8_t> payload);
  [[nodiscard]] Bytes serialize() const;

  /// Client-side constructors.
  static DhcpMessage discover(std::uint32_t xid, MacAddress mac,
                              std::string hostname = {});
  static DhcpMessage request(std::uint32_t xid, MacAddress mac,
                             Ipv4Address requested, Ipv4Address server,
                             std::string hostname = {});
  static DhcpMessage release(std::uint32_t xid, MacAddress mac, Ipv4Address leased,
                             Ipv4Address server);
};

}  // namespace hw::net
