#include "net/udp.hpp"

namespace hw::net {

Result<UdpHeader> UdpHeader::parse(ByteReader& r) {
  UdpHeader h;
  auto sp = r.u16();
  if (!sp) return sp.error();
  h.src_port = sp.value();
  auto dp = r.u16();
  if (!dp) return dp.error();
  h.dst_port = dp.value();
  auto len = r.u16();
  if (!len) return len.error();
  h.length = len.value();
  if (h.length < kUdpHeaderSize) return make_error("UDP: bad length");
  if (auto c = r.u16(); !c) return c.error();  // checksum (unvalidated: 0 allowed)
  return h;
}

void UdpHeader::serialize(ByteWriter& w, std::size_t payload_len) const {
  w.u16(src_port);
  w.u16(dst_port);
  w.u16(length != 0 ? length
                    : static_cast<std::uint16_t>(kUdpHeaderSize + payload_len));
  w.u16(0);  // checksum optional in IPv4
}

}  // namespace hw::net
