// DNS message codec (RFC 1035 subset: A, PTR, CNAME, AAAA pass-through).
// The Homework DNS proxy intercepts outgoing queries and inspects responses,
// so both directions must round-trip, including compressed names on parse.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/addr.hpp"
#include "util/bytes.hpp"

namespace hw::net {

inline constexpr std::uint16_t kDnsPort = 53;

enum class DnsType : std::uint16_t {
  A = 1,
  Ns = 2,
  Cname = 5,
  Ptr = 12,
  Txt = 16,
  Aaaa = 28,
};

enum class DnsRcode : std::uint8_t {
  NoError = 0,
  FormErr = 1,
  ServFail = 2,
  NxDomain = 3,
  Refused = 5,
};

struct DnsQuestion {
  std::string name;  // lower-case, no trailing dot
  DnsType qtype = DnsType::A;
  std::uint16_t qclass = 1;  // IN
};

struct DnsRecord {
  std::string name;
  DnsType rtype = DnsType::A;
  std::uint16_t rclass = 1;
  std::uint32_t ttl = 300;
  // Exactly one of the following is meaningful, keyed on rtype:
  Ipv4Address address;     // A
  std::string target;      // CNAME/PTR/NS
  Bytes rdata;             // anything else, raw

  static DnsRecord a(std::string name, Ipv4Address addr, std::uint32_t ttl = 300);
  static DnsRecord cname(std::string name, std::string target,
                         std::uint32_t ttl = 300);
  static DnsRecord ptr(std::string name, std::string target,
                       std::uint32_t ttl = 300);
};

struct DnsMessage {
  std::uint16_t id = 0;
  bool is_response = false;
  bool recursion_desired = true;
  bool recursion_available = false;
  bool authoritative = false;
  DnsRcode rcode = DnsRcode::NoError;
  std::vector<DnsQuestion> questions;
  std::vector<DnsRecord> answers;
  std::vector<DnsRecord> authorities;
  std::vector<DnsRecord> additionals;

  static Result<DnsMessage> parse(std::span<const std::uint8_t> payload);
  [[nodiscard]] Bytes serialize() const;

  /// Convenience: single-question A query.
  static DnsMessage query(std::uint16_t id, std::string name,
                          DnsType qtype = DnsType::A);
  /// Convenience: response template copying the question section.
  [[nodiscard]] DnsMessage make_response() const;

  /// "a.b.c" for PTR of 192.0.2.1 → "1.2.0.192.in-addr.arpa".
  static std::string reverse_name(Ipv4Address addr);
};

}  // namespace hw::net
