#include "openflow/datapath.hpp"

#include <algorithm>

#include "net/packet.hpp"
#include "util/logging.hpp"

namespace hw::ofp {
namespace {

constexpr std::string_view kLog = "datapath";

/// Re-serializes a frame after header rewrites. Returns the original frame
/// if it cannot be parsed (rewrite actions then have no effect).
Bytes rewrite_frame(const Bytes& frame, const std::function<void(net::ParsedPacket&)>& edit) {
  auto parsed = net::ParsedPacket::parse(frame);
  if (!parsed) return frame;
  auto p = std::move(parsed).take();
  edit(p);

  // Rebuild from the parsed layers.
  if (p.arp) {
    return net::build_ethernet(p.eth.src, p.eth.dst,
                               static_cast<net::EtherType>(p.eth.ethertype),
                               [&] {
                                 ByteWriter w;
                                 p.arp->serialize(w);
                                 return std::move(w).take();
                               }());
  }
  if (p.ip) {
    ByteWriter w(frame.size());
    p.eth.serialize(w);
    if (p.udp) {
      p.ip->serialize(w, net::kUdpHeaderSize + p.l4_payload.size());
      p.udp->length = 0;  // recompute
      p.udp->serialize(w, p.l4_payload.size());
      w.raw(p.l4_payload);
    } else if (p.tcp) {
      p.ip->serialize(w, net::kTcpMinHeaderSize + p.l4_payload.size());
      p.tcp->serialize(w);
      w.raw(p.l4_payload);
    } else if (p.icmp) {
      p.ip->serialize(w, 8);
      p.icmp->serialize(w);
    } else {
      p.ip->serialize(w, 0);
    }
    return std::move(w).take();
  }
  return frame;
}

}  // namespace

Datapath::Datapath(sim::EventLoop& loop, Config config,
                   telemetry::MetricRegistry& metrics)
    : loop_(loop),
      config_(config),
      table_(config.table_capacity, metrics),
      microflow_(config.microflow_capacity),
      metrics_(metrics) {
  buffers_.reserve(config_.n_buffers);
  expiry_timer_ = std::make_unique<sim::PeriodicTimer>(
      loop_, config_.expiry_interval, [this] { sweep_timeouts(); });
  expiry_timer_->start();
}

Datapath::~Datapath() = default;

void Datapath::connect(ChannelEndpoint& channel) {
  channel_ = &channel;
  channel_->on_receive([this](const Bytes& encoded) {
    handle_channel_message(encoded);
  });
  last_channel_rx_ = loop_.now();
  send_to_controller(Hello{}, next_xid_++);
}

void Datapath::restart() {
  metrics_.restarts.inc();
  table_.clear();
  microflow_.clear();
  buffers_.clear();
  mac_table_.clear();
  next_buffer_id_ = 1;
  if (fail_safe_) {
    fail_safe_ = false;
    metrics_.fail_safe.set(0);
  }
  last_channel_rx_ = loop_.now();
  // Fresh HELLO: the controller treats a renewed handshake on an identified
  // connection as a restart and re-installs its flows.
  if (channel_ != nullptr) send_to_controller(Hello{}, next_xid_++);
}

void Datapath::add_port(std::uint16_t port, std::string name, MacAddress hw_addr,
                        sim::FrameSink* out) {
  if (auto existing = ports_.find(port); existing != ports_.end()) {
    existing->second.name = std::move(name);
    existing->second.hw_addr = hw_addr;
    existing->second.out = out;
    return;
  }
  PortState state;
  state.name = std::move(name);
  state.hw_addr = hw_addr;
  state.out = out;
  state.ingress_adapter = std::make_unique<sim::CallbackSink>(
      [this, port](const Bytes& frame) { receive_frame(port, frame); });
  auto [it, inserted] = ports_.emplace(port, std::move(state));
  (void)inserted;
  if (channel_ != nullptr) {
    PortStatus status;
    status.reason = PortReason::Add;
    status.desc = PhyPort{port, it->second.hw_addr, it->second.name, 0, 0, 0};
    send_to_controller(std::move(status), next_xid_++);
  }
}

void Datapath::remove_port(std::uint16_t port) {
  auto it = ports_.find(port);
  if (it == ports_.end()) return;
  PhyPort desc{port, it->second.hw_addr, it->second.name, 0, 0, 0};
  ports_.erase(it);
  // Purge learned MACs on that port.
  for (auto mit = mac_table_.begin(); mit != mac_table_.end();) {
    if (mit->second == port) {
      mit = mac_table_.erase(mit);
    } else {
      ++mit;
    }
  }
  if (channel_ != nullptr) {
    PortStatus status;
    status.reason = PortReason::Delete;
    status.desc = desc;
    send_to_controller(std::move(status), next_xid_++);
  }
}

sim::FrameSink* Datapath::ingress(std::uint16_t port) {
  auto it = ports_.find(port);
  return it == ports_.end() ? nullptr : it->second.ingress_adapter.get();
}

const PortCounters* Datapath::port_counters(std::uint16_t port) const {
  auto it = ports_.find(port);
  return it == ports_.end() ? nullptr : &it->second.counters;
}

std::vector<PhyPort> Datapath::port_descriptions() const {
  std::vector<PhyPort> out;
  out.reserve(ports_.size());
  for (const auto& [no, state] : ports_) {
    out.push_back(PhyPort{no, state.hw_addr, state.name, 0, 0, 0});
  }
  return out;
}

void Datapath::receive_frame(std::uint16_t in_port, const Bytes& frame) {
  auto it = ports_.find(in_port);
  if (it == ports_.end()) return;
  ++it->second.counters.rx_packets;
  it->second.counters.rx_bytes += frame.size();
  process_frame(in_port, frame);
}

void Datapath::process_frame(std::uint16_t in_port, const Bytes& frame) {
  auto parsed = net::ParsedPacket::parse(frame);
  if (!parsed) {
    auto it = ports_.find(in_port);
    if (it != ports_.end()) ++it->second.counters.rx_dropped;
    return;
  }
  // Opportunistic L2 learning keeps NORMAL working regardless of rules.
  if (!parsed.value().eth.src.is_multicast()) {
    mac_table_[parsed.value().eth.src] = in_port;
  }

  // Tier 1: the exact-match microflow cache. A hit skips the classifier
  // entirely; only the first packet of a flow (or the first after a table
  // mutation) pays the tuple-space search.
  const FlowKey key =
      FlowKey::from_match(Match::from_packet(parsed.value(), in_port));
  const std::uint64_t generation = table_.generation();
  const MicroflowCache::Probe cached = microflow_.probe(key, generation);
  if (cached.flushed) metrics_.microflow_invalidations.inc();
  FlowEntry* entry = cached.entry;
  if (entry != nullptr) {
    metrics_.microflow_hits.inc();
    table_.record_hit(*entry, loop_.now(), frame.size());
  } else {
    metrics_.microflow_misses.inc();
    entry = table_.lookup(key, loop_.now(), frame.size());
    if (entry != nullptr) microflow_.insert(key, entry, generation);
  }
  if (entry == nullptr) {
    send_packet_in(in_port, frame, PacketInReason::NoMatch,
                   config_.miss_send_len);
    return;
  }
  apply_actions(entry->actions, in_port, frame);
}

void Datapath::apply_actions(const ActionList& actions, std::uint16_t in_port,
                             Bytes frame) {
  if (actions.empty()) return;  // drop

  for (const auto& action : actions) {
    std::visit(
        [&](const auto& a) {
          using T = std::decay_t<decltype(a)>;
          if constexpr (std::is_same_v<T, ActionOutput>) {
            output(a.port, in_port, frame, a.max_len);
          } else if constexpr (std::is_same_v<T, ActionSetDlSrc>) {
            frame = rewrite_frame(frame, [&](net::ParsedPacket& p) { p.eth.src = a.mac; });
          } else if constexpr (std::is_same_v<T, ActionSetDlDst>) {
            frame = rewrite_frame(frame, [&](net::ParsedPacket& p) { p.eth.dst = a.mac; });
          } else if constexpr (std::is_same_v<T, ActionSetNwSrc>) {
            frame = rewrite_frame(frame, [&](net::ParsedPacket& p) {
              if (p.ip) p.ip->src = a.addr;
            });
          } else if constexpr (std::is_same_v<T, ActionSetNwDst>) {
            frame = rewrite_frame(frame, [&](net::ParsedPacket& p) {
              if (p.ip) p.ip->dst = a.addr;
            });
          } else if constexpr (std::is_same_v<T, ActionSetTpSrc>) {
            frame = rewrite_frame(frame, [&](net::ParsedPacket& p) {
              if (p.udp) p.udp->src_port = a.port;
              if (p.tcp) p.tcp->src_port = a.port;
            });
          } else if constexpr (std::is_same_v<T, ActionSetTpDst>) {
            frame = rewrite_frame(frame, [&](net::ParsedPacket& p) {
              if (p.udp) p.udp->dst_port = a.port;
              if (p.tcp) p.tcp->dst_port = a.port;
            });
          } else if constexpr (std::is_same_v<T, ActionEnqueue>) {
            auto it = queues_.find({a.port, a.queue_id});
            if (it == queues_.end()) {
              // Unconfigured queue degrades to a plain output (OVS behaviour).
              output(a.port, in_port, frame);
            } else if (it->second.bucket.try_consume(loop_.now(), frame.size())) {
              ++it->second.counters.tx_packets;
              it->second.counters.tx_bytes += frame.size();
              output(a.port, in_port, frame);
            } else {
              ++it->second.counters.dropped;  // policed
            }
          }
        },
        action);
  }
}

void Datapath::output(std::uint16_t out_port, std::uint16_t in_port,
                      const Bytes& frame, std::uint16_t controller_max_len) {
  switch (out_port) {
    case port_no(Port::Controller):
      send_packet_in(in_port, frame, PacketInReason::Action, controller_max_len);
      return;
    case port_no(Port::Flood):
      flood(in_port, frame, /*include_in_port=*/false);
      return;
    case port_no(Port::All):
      flood(in_port, frame, /*include_in_port=*/false);
      return;
    case port_no(Port::InPort):
      out_port = in_port;
      break;
    case port_no(Port::Normal):
      do_normal(in_port, frame);
      return;
    case port_no(Port::Local):
    case port_no(Port::Table):
    case port_no(Port::None):
      return;  // LOCAL handled by modules via controller in this platform
    default:
      break;
  }
  auto it = ports_.find(out_port);
  if (it == ports_.end() || it->second.out == nullptr) return;
  ++it->second.counters.tx_packets;
  it->second.counters.tx_bytes += frame.size();
  it->second.out->deliver(frame);
}

void Datapath::flood(std::uint16_t in_port, const Bytes& frame,
                     bool include_in_port) {
  for (auto& [no, state] : ports_) {
    if (!include_in_port && no == in_port) continue;
    if (state.out == nullptr) continue;
    ++state.counters.tx_packets;
    state.counters.tx_bytes += frame.size();
    state.out->deliver(frame);
  }
}

void Datapath::do_normal(std::uint16_t in_port, const Bytes& frame) {
  auto parsed = net::ParsedPacket::parse(frame);
  if (!parsed) return;
  const MacAddress dst = parsed.value().eth.dst;
  if (dst.is_broadcast() || dst.is_multicast()) {
    flood(in_port, frame, false);
    return;
  }
  auto it = mac_table_.find(dst);
  if (it == mac_table_.end()) {
    flood(in_port, frame, false);
    return;
  }
  if (it->second == in_port) return;  // already on the right segment
  output(it->second, in_port, frame);
}

void Datapath::send_packet_in(std::uint16_t in_port, const Bytes& frame,
                              PacketInReason reason, std::uint16_t max_len) {
  if (channel_ == nullptr) return;
  if (fail_safe_) {
    // Deny-new: with the controller dead nobody can answer a packet-in, so
    // queuing it would only stall the buffer pool. Established flows never
    // reach here — they match the table and keep forwarding.
    metrics_.failsafe_dropped_packet_ins.inc();
    return;
  }
  PacketIn pi;
  pi.in_port = in_port;
  pi.reason = reason;
  pi.total_len = static_cast<std::uint16_t>(frame.size());

  // Buffer the full frame and send a (possibly truncated) copy.
  if (buffers_.size() >= config_.n_buffers) {
    buffers_.erase(buffers_.begin());
    metrics_.buffer_evictions.inc();
  }
  BufferedPacket buf;
  buf.id = next_buffer_id_++;
  buf.in_port = in_port;
  buf.frame = frame;
  pi.buffer_id = buf.id;
  buffers_.push_back(std::move(buf));

  // max_len 0 means "whole packet" (the OFPCML_NO_BUFFER convention).
  const std::size_t send_len =
      max_len == 0 ? frame.size() : std::min<std::size_t>(frame.size(), max_len);
  pi.data.assign(frame.begin(), frame.begin() + static_cast<std::ptrdiff_t>(send_len));

  metrics_.packet_ins.inc();
  send_to_controller(std::move(pi), next_xid_++);
}

std::optional<Bytes> Datapath::take_buffered(std::uint32_t buffer_id) {
  auto it = std::find_if(buffers_.begin(), buffers_.end(),
                         [&](const BufferedPacket& b) { return b.id == buffer_id; });
  if (it == buffers_.end()) return std::nullopt;
  Bytes frame = std::move(it->frame);
  buffers_.erase(it);
  return frame;
}

void Datapath::send_to_controller(Message msg, std::uint32_t xid) {
  if (channel_ == nullptr) return;
  channel_->send(encode(Envelope{xid, std::move(msg)}));
}

void Datapath::send_error(ErrorType type, std::uint16_t code, std::uint32_t xid,
                          const Bytes& offending) {
  ErrorMsg err;
  err.type = type;
  err.code = code;
  const std::size_t keep = std::min<std::size_t>(offending.size(), 64);
  err.data.assign(offending.begin(),
                  offending.begin() + static_cast<std::ptrdiff_t>(keep));
  send_to_controller(std::move(err), xid);
}

void Datapath::handle_channel_message(const Bytes& encoded) {
  auto env = decode(encoded);
  if (!env) {
    HW_LOG_WARN(kLog, "undecodable controller message: %s",
                env.error().message.c_str());
    return;
  }
  const std::uint32_t xid = env.value().xid;
  last_channel_rx_ = loop_.now();
  if (fail_safe_) {
    // Any controller traffic proves the channel is back.
    fail_safe_ = false;
    metrics_.fail_safe.set(0);
    HW_LOG_INFO(kLog, "controller heard again; leaving fail-safe mode");
  }

  std::visit(
      [&](auto&& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, Hello>) {
          // version negotiation trivially succeeds (both speak 0x01)
        } else if constexpr (std::is_same_v<T, EchoRequest>) {
          send_to_controller(EchoReply{m.data}, xid);
        } else if constexpr (std::is_same_v<T, FeaturesRequest>) {
          FeaturesReply reply;
          reply.datapath_id = config_.datapath_id;
          reply.n_buffers = static_cast<std::uint32_t>(config_.n_buffers);
          reply.ports = port_descriptions();
          send_to_controller(std::move(reply), xid);
        } else if constexpr (std::is_same_v<T, BarrierRequest>) {
          send_to_controller(BarrierReply{}, xid);
        } else if constexpr (std::is_same_v<T, FlowMod>) {
          handle_flow_mod(m, xid);
        } else if constexpr (std::is_same_v<T, PacketOut>) {
          handle_packet_out(m, xid);
        } else if constexpr (std::is_same_v<T, StatsRequest>) {
          handle_stats_request(m, xid);
        } else {
          send_error(ErrorType::BadRequest, /*OFPBRC_BAD_TYPE=*/1, xid, encoded);
        }
      },
      std::move(env).take().msg);
}

void Datapath::handle_flow_mod(const FlowMod& mod, std::uint32_t xid) {
  metrics_.flow_mods.inc();
  if (flow_mod_observer_) flow_mod_observer_(mod);
  std::vector<FlowEntry> removed;
  const FlowModResult result = table_.apply(mod, loop_.now(), &removed);

  if (result == FlowModResult::Overlap) {
    send_error(ErrorType::FlowModFailed, /*OFPFMFC_OVERLAP=*/2, xid, {});
    return;
  }
  if (result == FlowModResult::TableFull) {
    send_error(ErrorType::FlowModFailed, /*OFPFMFC_ALL_TABLES_FULL=*/0, xid, {});
    return;
  }

  for (const auto& e : removed) {
    if (!e.send_flow_removed) continue;
    FlowRemoved fr;
    fr.match = e.match;
    fr.cookie = e.cookie;
    fr.priority = e.priority;
    fr.reason = FlowRemovedReason::Delete;
    fr.duration_sec =
        static_cast<std::uint32_t>((loop_.now() - e.install_time) / kSecond);
    fr.idle_timeout = e.idle_timeout;
    fr.packet_count = e.packet_count;
    fr.byte_count = e.byte_count;
    metrics_.flow_removed_sent.inc();
    send_to_controller(std::move(fr), next_xid_++);
  }

  // A buffered packet attached to an ADD is released through the new rule.
  if (mod.buffer_id != kNoBuffer &&
      (mod.command == FlowModCommand::Add ||
       mod.command == FlowModCommand::Modify ||
       mod.command == FlowModCommand::ModifyStrict)) {
    if (auto frame = take_buffered(mod.buffer_id)) {
      apply_actions(mod.actions, mod.match.in_port, std::move(*frame));
    }
  }
}

void Datapath::handle_packet_out(const PacketOut& po, std::uint32_t xid) {
  metrics_.packet_outs.inc();
  Bytes frame;
  if (po.buffer_id != kNoBuffer) {
    auto buffered = take_buffered(po.buffer_id);
    if (!buffered) {
      send_error(ErrorType::BadRequest, /*OFPBRC_BUFFER_UNKNOWN=*/8, xid, {});
      return;
    }
    frame = std::move(*buffered);
  } else {
    frame = po.data;
  }
  apply_actions(po.actions, po.in_port, std::move(frame));
}

void Datapath::handle_stats_request(const StatsRequest& req, std::uint32_t xid) {
  StatsReply reply;
  reply.type = req.type;
  switch (req.type) {
    case StatsType::Desc:
      reply.body = DescStats{};
      break;
    case StatsType::Flow: {
      const auto* filter = std::get_if<FlowStatsRequest>(&req.body);
      const Match match = filter != nullptr ? filter->match : Match::any();
      const std::uint16_t out_port =
          filter != nullptr ? filter->out_port : port_no(Port::None);
      // The u16 length in the OF 1.0 header caps a frame at 64 KiB; a large
      // table's reply paginates with OFPSF_REPLY_MORE, as the spec
      // prescribes. The budget stays well under the cap so action lists
      // never push a fragment over.
      constexpr std::size_t kFragmentBudget = 32 * 1024;
      std::vector<FlowStatsEntry> batch;
      std::size_t batch_bytes = 0;
      for (const FlowEntry* e : table_.query(match, out_port)) {
        FlowStatsEntry fs;
        fs.match = e->match;
        fs.priority = e->priority;
        fs.idle_timeout = e->idle_timeout;
        fs.hard_timeout = e->hard_timeout;
        fs.cookie = e->cookie;
        fs.duration_sec =
            static_cast<std::uint32_t>((loop_.now() - e->install_time) / kSecond);
        fs.duration_nsec = static_cast<std::uint32_t>(
            ((loop_.now() - e->install_time) % kSecond) * 1000);
        fs.packet_count = e->packet_count;
        fs.byte_count = e->byte_count;
        fs.actions = e->actions;
        const std::size_t wire = 88 + 16 * fs.actions.size();
        if (!batch.empty() && batch_bytes + wire > kFragmentBudget) {
          StatsReply fragment;
          fragment.type = StatsType::Flow;
          fragment.flags = kStatsReplyMore;
          fragment.body = std::move(batch);
          send_to_controller(std::move(fragment), xid);
          batch.clear();
          batch_bytes = 0;
        }
        batch_bytes += wire;
        batch.push_back(std::move(fs));
      }
      reply.body = std::move(batch);
      break;
    }
    case StatsType::Aggregate: {
      const auto* filter = std::get_if<FlowStatsRequest>(&req.body);
      const Match match = filter != nullptr ? filter->match : Match::any();
      AggregateStatsReplyBody agg;
      for (const FlowEntry* e : table_.query(match)) {
        agg.packet_count += e->packet_count;
        agg.byte_count += e->byte_count;
        ++agg.flow_count;
      }
      reply.body = agg;
      break;
    }
    case StatsType::Port: {
      const auto* filter = std::get_if<PortStatsRequest>(&req.body);
      const std::uint16_t want =
          filter != nullptr ? filter->port_no : port_no(Port::None);
      std::vector<PortStatsEntry> entries;
      for (const auto& [no, state] : ports_) {
        if (want != port_no(Port::None) && want != 0xffff && want != no) continue;
        PortStatsEntry ps;
        ps.port_no = no;
        ps.rx_packets = state.counters.rx_packets;
        ps.tx_packets = state.counters.tx_packets;
        ps.rx_bytes = state.counters.rx_bytes;
        ps.tx_bytes = state.counters.tx_bytes;
        ps.rx_dropped = state.counters.rx_dropped;
        ps.tx_dropped = state.counters.tx_dropped;
        entries.push_back(ps);
      }
      reply.body = std::move(entries);
      break;
    }
    default:
      send_error(ErrorType::BadRequest, /*OFPBRC_BAD_STAT=*/5, xid, {});
      return;
  }
  send_to_controller(std::move(reply), xid);
}

void Datapath::configure_queue(std::uint16_t port, std::uint32_t queue_id,
                               std::uint64_t rate_bps, std::uint64_t burst_bytes) {
  Queue queue;
  queue.bucket = TokenBucket(rate_bps / 8, burst_bytes);
  queues_[{port, queue_id}] = queue;
}

void Datapath::remove_queue(std::uint16_t port, std::uint32_t queue_id) {
  queues_.erase({port, queue_id});
}

const Datapath::QueueCounters* Datapath::queue_counters(
    std::uint16_t port, std::uint32_t queue_id) const {
  auto it = queues_.find({port, queue_id});
  return it == queues_.end() ? nullptr : &it->second.counters;
}

void Datapath::sweep_timeouts() {
  if (!fail_safe_ && channel_ != nullptr &&
      config_.controller_dead_interval > 0 &&
      loop_.now() - last_channel_rx_ > config_.controller_dead_interval) {
    fail_safe_ = true;
    metrics_.failsafe_entries.inc();
    metrics_.fail_safe.set(1);
    HW_LOG_WARN(kLog,
                "no controller traffic for %llu us; entering fail-safe mode",
                static_cast<unsigned long long>(loop_.now() - last_channel_rx_));
  }
  for (auto& [entry, reason] : table_.expire(loop_.now(), fail_safe_)) {
    if (!entry.send_flow_removed) continue;
    FlowRemoved fr;
    fr.match = entry.match;
    fr.cookie = entry.cookie;
    fr.priority = entry.priority;
    fr.reason = reason;
    fr.duration_sec =
        static_cast<std::uint32_t>((loop_.now() - entry.install_time) / kSecond);
    fr.idle_timeout = entry.idle_timeout;
    fr.packet_count = entry.packet_count;
    fr.byte_count = entry.byte_count;
    metrics_.flow_removed_sent.inc();
    send_to_controller(std::move(fr), next_xid_++);
  }
}

}  // namespace hw::ofp
