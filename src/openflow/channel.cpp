#include "openflow/channel.hpp"

namespace hw::ofp {

class InProcConnection::End final : public ChannelEndpoint {
 public:
  End(sim::EventLoop& loop, Duration latency) : loop_(loop), latency_(latency) {}

  void set_peer(End* peer) { peer_ = peer; }
  void mark_disconnected() { connected_ = false; }
  void mark_connected() { connected_ = true; }

  void send(const Bytes& encoded) override {
    if (!connected_ || peer_ == nullptr) {
      note_dropped();
      return;
    }
    note_sent(encoded.size());
    End* peer = peer_;
    if (latency_ == 0) {
      // Still defer through the loop so handlers never re-enter senders.
      loop_.schedule(0, [peer, encoded] {
        if (peer->connected()) peer->dispatch(encoded);
      });
    } else {
      loop_.schedule(latency_, [peer, encoded] {
        if (peer->connected()) peer->dispatch(encoded);
      });
    }
  }

 private:
  sim::EventLoop& loop_;
  Duration latency_;
  End* peer_ = nullptr;
};

InProcConnection::InProcConnection(sim::EventLoop& loop, Duration latency)
    : a_(std::make_unique<End>(loop, latency)),
      b_(std::make_unique<End>(loop, latency)) {
  a_->set_peer(b_.get());
  b_->set_peer(a_.get());
}

InProcConnection::~InProcConnection() = default;

ChannelEndpoint& InProcConnection::datapath_end() { return *a_; }
ChannelEndpoint& InProcConnection::controller_end() { return *b_; }

void InProcConnection::disconnect() {
  a_->mark_disconnected();
  b_->mark_disconnected();
}

void InProcConnection::reconnect() {
  a_->mark_connected();
  b_->mark_connected();
}

bool InProcConnection::connected() const { return a_->connected(); }

}  // namespace hw::ofp
