#include "openflow/microflow_cache.hpp"

namespace hw::ofp {

MicroflowCache::Probe MicroflowCache::probe(const FlowKey& key,
                                            std::uint64_t generation) {
  Probe result;
  if (generation != generation_) {
    result.flushed = !index_.empty();
    clear();
    generation_ = generation;
    return result;
  }
  const auto it = index_.find(key);
  if (it == index_.end()) return result;
  lru_.splice(lru_.begin(), lru_, it->second);
  result.entry = it->second->second;
  return result;
}

void MicroflowCache::insert(const FlowKey& key, FlowEntry* entry,
                            std::uint64_t generation) {
  if (capacity_ == 0) return;
  if (generation != generation_) {
    clear();
    generation_ = generation;
  }
  if (const auto it = index_.find(key); it != index_.end()) {
    it->second->second = entry;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (index_.size() >= capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
  lru_.emplace_front(key, entry);
  index_.emplace(key, lru_.begin());
}

void MicroflowCache::clear() {
  lru_.clear();
  index_.clear();
}

}  // namespace hw::ofp
