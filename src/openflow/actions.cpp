#include "openflow/actions.hpp"

#include "openflow/match.hpp"

namespace hw::ofp {
namespace {

enum ActionType : std::uint16_t {
  kOutput = 0,
  kSetDlSrc = 4,
  kSetDlDst = 5,
  kSetNwSrc = 6,
  kSetNwDst = 7,
  kSetTpSrc = 9,
  kSetTpDst = 10,
  kEnqueue = 11,
};

Result<MacAddress> read_mac(ByteReader& r) {
  auto raw = r.raw(6);
  if (!raw) return raw.error();
  std::array<std::uint8_t, 6> octets{};
  std::copy(raw.value().begin(), raw.value().end(), octets.begin());
  return MacAddress{octets};
}

}  // namespace

void serialize_actions(ByteWriter& w, const ActionList& actions) {
  for (const auto& action : actions) {
    std::visit(
        [&](const auto& a) {
          using T = std::decay_t<decltype(a)>;
          if constexpr (std::is_same_v<T, ActionOutput>) {
            w.u16(kOutput);
            w.u16(8);
            w.u16(a.port);
            w.u16(a.max_len);
          } else if constexpr (std::is_same_v<T, ActionSetDlSrc>) {
            w.u16(kSetDlSrc);
            w.u16(16);
            w.raw(a.mac.octets().data(), 6);
            w.zeros(6);
          } else if constexpr (std::is_same_v<T, ActionSetDlDst>) {
            w.u16(kSetDlDst);
            w.u16(16);
            w.raw(a.mac.octets().data(), 6);
            w.zeros(6);
          } else if constexpr (std::is_same_v<T, ActionSetNwSrc>) {
            w.u16(kSetNwSrc);
            w.u16(8);
            w.u32(a.addr.value());
          } else if constexpr (std::is_same_v<T, ActionSetNwDst>) {
            w.u16(kSetNwDst);
            w.u16(8);
            w.u32(a.addr.value());
          } else if constexpr (std::is_same_v<T, ActionSetTpSrc>) {
            w.u16(kSetTpSrc);
            w.u16(8);
            w.u16(a.port);
            w.zeros(2);
          } else if constexpr (std::is_same_v<T, ActionSetTpDst>) {
            w.u16(kSetTpDst);
            w.u16(8);
            w.u16(a.port);
            w.zeros(2);
          } else if constexpr (std::is_same_v<T, ActionEnqueue>) {
            w.u16(kEnqueue);
            w.u16(16);
            w.u16(a.port);
            w.zeros(6);
            w.u32(a.queue_id);
          }
        },
        action);
  }
}

Result<ActionList> parse_actions(ByteReader& r, std::size_t actions_len) {
  ActionList out;
  std::size_t consumed = 0;
  while (consumed < actions_len) {
    auto type = r.u16();
    if (!type) return type.error();
    auto len = r.u16();
    if (!len) return len.error();
    if (len.value() < 8 || len.value() % 8 != 0) {
      return make_error("OF action: bad length");
    }
    const std::size_t body_len = len.value() - 4u;
    switch (type.value()) {
      case kOutput: {
        auto port = r.u16();
        if (!port) return port.error();
        auto max_len = r.u16();
        if (!max_len) return max_len.error();
        out.push_back(ActionOutput{port.value(), max_len.value()});
        break;
      }
      case kSetDlSrc: {
        auto mac = read_mac(r);
        if (!mac) return mac.error();
        if (auto s = r.skip(6); !s.ok()) return s.error();
        out.push_back(ActionSetDlSrc{mac.value()});
        break;
      }
      case kSetDlDst: {
        auto mac = read_mac(r);
        if (!mac) return mac.error();
        if (auto s = r.skip(6); !s.ok()) return s.error();
        out.push_back(ActionSetDlDst{mac.value()});
        break;
      }
      case kSetNwSrc: {
        auto addr = r.u32();
        if (!addr) return addr.error();
        out.push_back(ActionSetNwSrc{Ipv4Address{addr.value()}});
        break;
      }
      case kSetNwDst: {
        auto addr = r.u32();
        if (!addr) return addr.error();
        out.push_back(ActionSetNwDst{Ipv4Address{addr.value()}});
        break;
      }
      case kSetTpSrc: {
        auto port = r.u16();
        if (!port) return port.error();
        if (auto s = r.skip(2); !s.ok()) return s.error();
        out.push_back(ActionSetTpSrc{port.value()});
        break;
      }
      case kSetTpDst: {
        auto port = r.u16();
        if (!port) return port.error();
        if (auto s = r.skip(2); !s.ok()) return s.error();
        out.push_back(ActionSetTpDst{port.value()});
        break;
      }
      case kEnqueue: {
        auto port = r.u16();
        if (!port) return port.error();
        if (auto s = r.skip(6); !s.ok()) return s.error();
        auto queue = r.u32();
        if (!queue) return queue.error();
        out.push_back(ActionEnqueue{port.value(), queue.value()});
        break;
      }
      default:
        // Unknown action: skip its body to preserve framing.
        if (auto s = r.skip(body_len); !s.ok()) return s.error();
        break;
    }
    consumed += len.value();
  }
  if (consumed != actions_len) return make_error("OF action: length overrun");
  return out;
}

std::string to_string(const Action& action) {
  return std::visit(
      [](const auto& a) -> std::string {
        using T = std::decay_t<decltype(a)>;
        if constexpr (std::is_same_v<T, ActionOutput>) {
          switch (a.port) {
            case 0xfffd: return "output:CONTROLLER";
            case 0xfffb: return "output:FLOOD";
            case 0xfffc: return "output:ALL";
            case 0xfffa: return "output:NORMAL";
            case 0xfffe: return "output:LOCAL";
            case 0xfff8: return "output:IN_PORT";
            default: return "output:" + std::to_string(a.port);
          }
        } else if constexpr (std::is_same_v<T, ActionSetDlSrc>) {
          return "set_dl_src:" + a.mac.to_string();
        } else if constexpr (std::is_same_v<T, ActionSetDlDst>) {
          return "set_dl_dst:" + a.mac.to_string();
        } else if constexpr (std::is_same_v<T, ActionSetNwSrc>) {
          return "set_nw_src:" + a.addr.to_string();
        } else if constexpr (std::is_same_v<T, ActionSetNwDst>) {
          return "set_nw_dst:" + a.addr.to_string();
        } else if constexpr (std::is_same_v<T, ActionSetTpSrc>) {
          return "set_tp_src:" + std::to_string(a.port);
        } else if constexpr (std::is_same_v<T, ActionSetTpDst>) {
          return "set_tp_dst:" + std::to_string(a.port);
        } else {
          return "enqueue:" + std::to_string(a.port) + ":q" +
                 std::to_string(a.queue_id);
        }
      },
      action);
}

std::string to_string(const ActionList& actions) {
  if (actions.empty()) return "drop";
  std::string out;
  for (std::size_t i = 0; i < actions.size(); ++i) {
    if (i) out += ",";
    out += to_string(actions[i]);
  }
  return out;
}

ActionList output_to(std::uint16_t port) { return {ActionOutput{port, 0}}; }

ActionList send_to_controller(std::uint16_t max_len) {
  return {ActionOutput{port_no(Port::Controller), max_len}};
}

}  // namespace hw::ofp
