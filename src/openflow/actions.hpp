// OpenFlow 1.0 actions. The paper notes "four basic types of action":
// drop (empty list), forward (output), send to controller, and send through
// the normal pipeline; plus header modification while forwarding.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "util/addr.hpp"
#include "util/bytes.hpp"

namespace hw::ofp {

/// OFPAT_OUTPUT — forward to a port (physical or OFPP_* reserved).
struct ActionOutput {
  std::uint16_t port = 0;
  std::uint16_t max_len = 128;  // bytes sent to controller
  bool operator==(const ActionOutput&) const = default;
};

/// OFPAT_SET_DL_SRC / OFPAT_SET_DL_DST.
struct ActionSetDlSrc {
  MacAddress mac;
  bool operator==(const ActionSetDlSrc&) const = default;
};
struct ActionSetDlDst {
  MacAddress mac;
  bool operator==(const ActionSetDlDst&) const = default;
};

/// OFPAT_SET_NW_SRC / OFPAT_SET_NW_DST.
struct ActionSetNwSrc {
  Ipv4Address addr;
  bool operator==(const ActionSetNwSrc&) const = default;
};
struct ActionSetNwDst {
  Ipv4Address addr;
  bool operator==(const ActionSetNwDst&) const = default;
};

/// OFPAT_SET_TP_SRC / OFPAT_SET_TP_DST.
struct ActionSetTpSrc {
  std::uint16_t port = 0;
  bool operator==(const ActionSetTpSrc&) const = default;
};
struct ActionSetTpDst {
  std::uint16_t port = 0;
  bool operator==(const ActionSetTpDst&) const = default;
};

/// OFPAT_ENQUEUE — forward through a configured port queue (rate limiting).
/// Queues themselves are configured out-of-band (ovs-vsctl in deployment;
/// Datapath::configure_queue here).
struct ActionEnqueue {
  std::uint16_t port = 0;
  std::uint32_t queue_id = 0;
  bool operator==(const ActionEnqueue&) const = default;
};

using Action = std::variant<ActionOutput, ActionSetDlSrc, ActionSetDlDst,
                            ActionSetNwSrc, ActionSetNwDst, ActionSetTpSrc,
                            ActionSetTpDst, ActionEnqueue>;
using ActionList = std::vector<Action>;

/// Wire codecs (each action is TLV: type, len, body padded to 8 bytes).
void serialize_actions(ByteWriter& w, const ActionList& actions);
Result<ActionList> parse_actions(ByteReader& r, std::size_t actions_len);

std::string to_string(const Action& action);
std::string to_string(const ActionList& actions);

/// Convenience builders.
ActionList output_to(std::uint16_t port);
ActionList send_to_controller(std::uint16_t max_len = 128);
inline ActionList drop() { return {}; }

}  // namespace hw::ofp
